"""The silent-data-corruption defense, end to end.

Walks the whole ladder on a simulated A100:

1. **ABFT repair** — a transient ``corrupt`` fault flips one output
   element of a batched LU launch; the checksum flags it, the launch
   re-executes, and the factors come out **bitwise identical** to a
   fault-free run.
2. **Typed detection** — a persistent corruption exhausts the bounded
   re-execution budget and raises
   :class:`~repro.errors.CorruptionDetected` naming the launch site and
   batch member; it is never returned as a wrong answer.
3. **Front quarantine** — the multifrontal driver isolates a
   persistently corrupt front (``report.info == -2``) and keeps the rest
   of the factorization; ``check_factors_ok`` refuses to solve through
   the quarantined front.
4. **Circuit breaker** — a :class:`~repro.serve.SolverService` under a
   sustained corruption storm: the breaker opens, dispatch degrades off
   the compiled fast path (every completed request still bitwise
   correct), and once the storm clears a half-open probe re-closes it
   and compiled dispatch resumes.

Run:  PYTHONPATH=src python examples/sdc_defense.py
"""

import numpy as np
import scipy.sparse as sp

from repro.batched import IrrBatch, irr_getrf
from repro.device import A100, PERSISTENT, Device, FaultPlan, FaultRule
from repro.errors import CorruptionDetected
from repro.serve import CoalescingPolicy, SolverService
from repro.sparse import (multifrontal_factor_gpu, nested_dissection,
                          symbolic_analysis)

rng = np.random.default_rng(0)


def grid2d(nx, ny):
    """Unsymmetric-valued 5-point grid operator."""
    g = np.random.default_rng(0)
    rows, cols, vals = [], [], []
    for i in range(nx):
        for j in range(ny):
            k = i * ny + j
            rows.append(k); cols.append(k); vals.append(4.0 + g.random())
            for di, dj in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                ii, jj = i + di, j + dj
                if 0 <= ii < nx and 0 <= jj < ny:
                    rows.append(k)
                    cols.append(ii * ny + jj)
                    vals.append(-1.0 - 0.3 * g.random())
    n = nx * ny
    return sp.csr_matrix((vals, (rows, cols)), shape=(n, n))


def spd_ish(n):
    a = rng.standard_normal((n, n))
    a[np.diag_indices(n)] += n
    return a


# ---------------------------------------------------------------- 1. repair
print("=== 1. ABFT repair of a transient corruption ===")
mats = [spd_ish(n) for n in (24, 40, 33)]

ref_dev = Device(A100())
ref = IrrBatch.from_host(ref_dev, [m.copy() for m in mats])
irr_getrf(ref_dev, ref)

dev = Device(A100())
batch = IrrBatch.from_host(dev, [m.copy() for m in mats])
plan = FaultPlan([FaultRule("corrupt", at=0, match="irrgemm")], seed=7)
with dev.fault_scope(plan) as inj:
    irr_getrf(dev, batch)
bitwise = all(np.array_equal(batch.arrays[i].data, ref.arrays[i].data)
              for i in range(len(mats)))
print(f"  injected: {[(f.kind, f.site) for f in inj.injected]}")
print(f"  kernel re-executions: {dev.recovery_log.count('kernel-reexec')}")
print(f"  factors bitwise identical to fault-free run: {bitwise}")
assert bitwise

# --------------------------------------------------------------- 2. typed
print("\n=== 2. persistent corruption is a typed failure ===")
dev = Device(A100())
batch = IrrBatch.from_host(dev, [m.copy() for m in mats])
storm = FaultPlan([FaultRule("corrupt", at=0, times=PERSISTENT,
                             match="irrgemm")], seed=7)
try:
    with dev.fault_scope(storm):
        irr_getrf(dev, batch)
except CorruptionDetected as exc:
    print(f"  CorruptionDetected: site={exc.site!r} "
          f"batch_index={exc.batch_index}")

# ----------------------------------------------------------- 3. quarantine
print("\n=== 3. multifrontal front quarantine ===")
a = grid2d(12, 12)
nd = nested_dissection(a, leaf_size=8)
ap = a[nd.perm][:, nd.perm].tocsr()
symb = symbolic_analysis(ap, nd)
dev = Device(A100())
plan = FaultPlan([FaultRule("corrupt", at=0, times=PERSISTENT,
                            match="irrgemm:schur")], seed=3)
with dev.fault_scope(plan):
    res = multifrontal_factor_gpu(dev, ap, symb, breakdown="report",
                                  host_fallback=False)
bad = res.report.corrupted_fronts()
print(f"  quarantined fronts: {bad.tolist()} "
      f"(of {len(res.report.info)})")
print(f"  report: {res.report.summary()}")

# -------------------------------------------------------------- 4. breaker
print("\n=== 4. circuit breaker under a corruption storm ===")
a = rng.standard_normal((48, 48)) + 48 * np.eye(48)
dev = Device(A100())
svc = SolverService(dev, policy=CoalescingPolicy(
    max_batch=4, compile_hot=True, hot_threshold=2), start=False)
ref_handle = svc.factor(a)


def round_trip():
    fut = svc.submit_factor(a)
    svc.run_once()
    return fut.result(0)


round_trip()          # warm the compiled fast path
storm = FaultPlan([FaultRule("corrupt", at=0, times=PERSISTENT,
                             match="fused[")], seed=5)
with dev.fault_scope(storm):
    for _ in range(10):
        h = round_trip()
        assert np.array_equal(h.lu, ref_handle.lu)
snap = svc.stats.snapshot()
print(f"  during storm : breaker={snap['breaker_state']!r} "
      f"corruptions={snap['corruptions_detected']} "
      f"reexecs={snap['kernel_reexecs']} "
      f"degraded_dispatches={snap['degraded_dispatches']} "
      f"failed={snap['failed']}")
print(f"  degraded_reason: {snap['degraded_reason']}")

before = snap["compiled_dispatches"]
for _ in range(20):   # storm over: probes close the breaker
    h = round_trip()
    assert np.array_equal(h.lu, ref_handle.lu)
snap = svc.stats.snapshot()
print(f"  after storm  : breaker={snap['breaker_state']!r} "
      f"probes={svc.breaker.probes} "
      f"compiled dispatches resumed="
      f"{snap['compiled_dispatches'] > before}")
svc.close()
print("\nEvery request completed bitwise-correct throughout.")
