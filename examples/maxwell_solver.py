"""The paper's application: an indefinite Maxwell problem solved by the
multifrontal sparse direct solver with batched irr kernels (§V-B).

Assembles (∇×E, ∇×E') − Ω²(E, E') with first-order Nédélec elements on a
toroidal hex mesh (Ω = 16, κ = Ω/1.05, the paper's parameters), factors
the highly indefinite system on the simulated A100, and solves to machine
precision with one step of iterative refinement.

Run:  python examples/maxwell_solver.py
"""

import numpy as np

from repro.device import A100, Device
from repro.fem import HexMesh, MaxwellProblem, torus_map
from repro.sparse import SparseLU

# --- discretize the torus ------------------------------------------------
mesh = HexMesh(16, 8, 8, periodic_x=True, mapping=torus_map())
problem = MaxwellProblem.build(mesh, omega=16.0)
A, b = problem.reduced_system()
print(f"mesh: {mesh!r}")
print(f"system: {A.shape[0]} interior edge dofs, {A.nnz} nonzeros, "
      f"omega = {problem.omega}, kappa = {problem.kappa:.3f}\n")

# --- phase 1+2: analyze and factor on the simulated GPU ------------------
solver = SparseLU(A, leaf_size=16)
solver.analyze()
stats = solver.symb.level_statistics()
print(f"assembly tree: {len(solver.symb.fronts)} fronts, "
      f"{len(stats)} levels, root front {stats[-1]['max_size']}")

device = Device(A100())
solver.factor(backend="batched", device=device)
res = solver.factor_result
print(f"numerical factorization (A100 model): {res.elapsed * 1e3:.2f} ms, "
      f"{res.counters['launch_count']} launches")
print("breakdown:", {k: f"{v * 1e3:.2f} ms"
                     for k, v in sorted(res.breakdown.items())})

# --- phase 3: solve + iterative refinement --------------------------------
x, info = solver.solve(b, refine_steps=1)
print(f"\nresiduals: initial {info.residuals[0]:.3e} -> "
      f"after 1 refinement step {info.residuals[-1]:.3e}")

# reuse the factorization for another right-hand side (cf. §I)
b2 = np.sin(np.arange(A.shape[0]))
x2, info2 = solver.solve(b2)
print(f"second RHS with the same factors: residual "
      f"{info2.final_residual:.3e}")
