"""Tune the irrLU panel width (the §IV-E design parameter).

The paper fixes the panel width per run ("say typically 16 – 32 columns
per iteration") because the best value depends on the size distribution
and on the GPU's shared memory.  This example sweeps it for two very
different batches and shows why there is no single best answer — the
auto-tuning open problem the paper's conclusion mentions.

Run:  python examples/panel_tuning.py
"""

from repro.analysis import format_table, getrf_flops_paper_square
from repro.batched import IrrBatch, irr_getrf
from repro.device import A100, Device
from repro.workloads import large_square_batch, random_square_batch

workloads = {
    "many small (300 x U[1,96])": random_square_batch(300, 96, seed=1),
    "few large (6 x 1024)": large_square_batch(6, 1024, seed=2),
}

rows = []
for label, mats in workloads.items():
    flops = sum(getrf_flops_paper_square(m.shape[0]) for m in mats)
    best = None
    for nb in (8, 16, 32, 64):
        dev = Device(A100())
        b = IrrBatch.from_host(dev, [m.copy() for m in mats])
        with dev.timed_region() as t:
            irr_getrf(dev, b, nb=nb)
        rate = flops / t["elapsed"] / 1e9
        rows.append([label, nb, rate, t["launch_count"]])
        if best is None or rate > best[1]:
            best = (nb, rate)
    rows.append([label, "best", f"nb={best[0]}", ""])

print(format_table(["workload", "panel width", "Gflop/s", "launches"],
                   rows, title="panel-width tuning on the A100 model"))
