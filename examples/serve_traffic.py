"""Serving mixed traffic: concurrent requests coalesced into one batch.

Eight client threads fire independent factor/solve/factor_solve
requests at a :class:`~repro.serve.service.SolverService`.  The service
groups compatible requests from its admission queue and runs each group
as ONE irregular-batch launch sequence — the same amortization the
paper's kernels give a hand-built batch, won back for requests that
arrive one at a time.

Run:  PYTHONPATH=src python examples/serve_traffic.py
"""

import threading

import numpy as np
import scipy.sparse as sp

from repro.device import A100, Device
from repro.serve import CoalescingPolicy, SolverService


def grid2d(nx: int, ny: int, seed: int = 0) -> sp.csr_matrix:
    """Unsymmetric-valued 5-point grid operator (symmetric pattern)."""
    g = np.random.default_rng(seed)
    n = nx * ny
    rows, cols, vals = [], [], []
    for i in range(nx):
        for j in range(ny):
            k = i * ny + j
            rows.append(k), cols.append(k), vals.append(4.0 + g.random())
            for di, dj in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                ii, jj = i + di, j + dj
                if 0 <= ii < nx and 0 <= jj < ny:
                    rows.append(k)
                    cols.append(ii * ny + jj)
                    vals.append(-1.0 - 0.3 * g.random())
    return sp.csr_matrix((vals, (rows, cols)), shape=(n, n))

rng = np.random.default_rng(7)

# --- the service: one device, one dispatcher, shared sparse budget ------
device = Device(A100())
service = SolverService(
    device,
    policy=CoalescingPolicy(max_batch=16, max_wait=2e-3),
    sparse_memory_budget=8 << 20,
)

# --- eight clients, three request shapes --------------------------------
results = {}
lock = threading.Lock()


def dense_client(cid: int) -> None:
    """factor_solve on a random small dense system."""
    n = int(rng.integers(8, 48))
    a = np.asarray(rng.standard_normal((n, n))) + n * np.eye(n)
    b = np.asarray(rng.standard_normal(n))
    x, handle = service.factor_solve(a, b)
    residual = float(np.linalg.norm(a @ x - b) / np.linalg.norm(b))
    with lock:
        results[cid] = (f"dense {n:2d}x{n:<2d}", residual,
                        f"growth={handle.growth:.1f}")


def repeat_solver(cid: int) -> None:
    """factor once, then three coalescible repeated solves."""
    n = int(rng.integers(8, 32))
    a = np.asarray(rng.standard_normal((n, n))) + n * np.eye(n)
    handle = service.factor(a)
    worst = 0.0
    for _ in range(3):
        b = np.asarray(rng.standard_normal(n))
        x = service.solve(handle, b)
        worst = max(worst, float(np.linalg.norm(a @ x - b)
                                 / np.linalg.norm(b)))
    with lock:
        results[cid] = (f"dense {n:2d}x{n:<2d}", worst, "3 solves/handle")


def sparse_client(cid: int) -> None:
    """sparse factor -> session -> served solve under the arbiter."""
    a = grid2d(10, 10, seed=cid)
    with service.factor(a) as session:
        b = np.asarray(rng.standard_normal(session.n))
        x, info = service.solve(session, b)
        residual = float(np.linalg.norm(a @ x - b) / np.linalg.norm(b))
    with lock:
        results[cid] = (f"sparse n={session.n}", residual,
                        f"budget share={session.budget or 0:>8d}B")


threads = [threading.Thread(target=fn, args=(i,))
           for i, fn in enumerate([dense_client] * 4
                                  + [repeat_solver] * 2
                                  + [sparse_client] * 2)]
for t in threads:
    t.start()
for t in threads:
    t.join()

# --- what happened ------------------------------------------------------
for cid in sorted(results):
    kind, residual, note = results[cid]
    print(f"client {cid}: {kind:14s} residual {residual:.2e}   {note}")

snap = service.stats.snapshot()
print(f"\n{snap['submitted']} requests -> {snap['dispatches']} dispatches "
      f"(coalescing ratio {snap['coalescing_ratio']:.1f} requests/launch "
      f"group)")
print(f"wait p95 {snap['wait']['p95'] * 1e3:.2f} ms, "
      f"exec p95 {snap['exec']['p95'] * 1e3:.2f} ms, "
      f"queue peak {snap['queue_peak']}")
service.close()
assert device.allocated_bytes == 0
