"""Mixed precision end to end: FP32 factors, FP64 answers.

Three acts:

1. A well-conditioned grid operator factored in single precision — half
   the factor bytes to move and hold resident — whose solve refines in
   FP64 against the original matrix down to the 1e-12 backward-error
   target.  Under a memory budget the FP64 factors must stream while
   the FP32 factors stay resident, and the simulated solve time shows
   it.
2. A pathological system (1-D Laplacian squared, condition number ~1e9)
   that defeats FP32-corrected refinement: the solve escalates through
   GMRES-IR, then transparently re-factors in FP64 — the returned
   solution is bitwise identical to the native FP64 path, and the
   fallback is a logged recovery event, not a silent downgrade.
3. The serving layer taking ``precision="fp32"`` per request: reduced
   requests coalesce with each other (never with native FP32 traffic)
   and every future resolves with an FP64-refined answer.

Run:  PYTHONPATH=src python examples/mixed_precision.py
"""

import numpy as np
import scipy.sparse as sp

from repro.device import A100, Device
from repro.serve import CoalescingPolicy, SolverService
from repro.sparse import SparseLU
from repro.sparse.numeric.solve_plan import SolvePlan
from repro.sparse.solver import REFINE_TARGET

rng = np.random.default_rng(0)


def grid2d(nx: int, ny: int, seed: int = 0) -> sp.csr_matrix:
    """Unsymmetric-valued 5-point grid operator (symmetric pattern)."""
    g = np.random.default_rng(seed)
    n = nx * ny
    rows, cols, vals = [], [], []
    for i in range(nx):
        for j in range(ny):
            k = i * ny + j
            rows.append(k), cols.append(k), vals.append(4.0 + g.random())
            for di, dj in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                ii, jj = i + di, j + dj
                if 0 <= ii < nx and 0 <= jj < ny:
                    rows.append(k)
                    cols.append(ii * ny + jj)
                    vals.append(-1.0 - 0.3 * g.random())
    return sp.csr_matrix((vals, (rows, cols)), shape=(n, n))


# --- act 1: half-priced factors, full-precision answers -----------------
print("=== FP32 factors + FP64 refinement (well-conditioned) ===")
a = grid2d(20, 20)
b = rng.standard_normal(a.shape[0])

# Budget sized so FP64 factors must stream but FP32 factors fit whole.
probe = SparseLU(a).factor()
budget = int(0.6 * SolvePlan(probe.factors).total_nbytes())

for precision in ("fp64", "fp32"):
    dev = Device(A100())
    s = SparseLU(a).analyze()
    s.factor(backend="batched", device=dev, precision=precision)
    s.solve(b, device=dev, memory_budget=budget)   # cold: builds the cache
    dev.synchronize()
    t0 = dev.device_time
    x, info = s.solve(b, device=dev, memory_budget=budget)
    dev.synchronize()
    err = np.linalg.norm(b - a @ x) / np.linalg.norm(b)
    cache = s.solve_cache
    print(f"  {precision}: warm solve {dev.device_time - t0:.6f} sim-s, "
          f"resident {cache.resident_nbytes:>7d} B, "
          f"sweeps {len(info.residuals)}, backward error {err:.2e}")
    print(f"        residual ladder: "
          + " -> ".join(f"{r:.1e}" for r in info.residuals))
assert err <= REFINE_TARGET

# --- act 2: the pathological case takes the FP64 fallback ---------------
print("\n=== Escalation and fallback (Laplacian^2, kappa ~ 1e9) ===")
L = sp.diags([-1.0, 2.0, -1.0], [-1, 0, 1], shape=(120, 120), format="csr")
a_bad = sp.csr_matrix(L @ L)
b_bad = rng.standard_normal(120)

s = SparseLU(a_bad).factor(precision="fp32")
x_bad, info = s.solve(b_bad)
ref, _ = SparseLU(a_bad).factor().solve(b_bad)
print(f"  escalated to GMRES-IR : {info.escalated} "
      f"({info.gmres_cycles} cycle(s))")
print(f"  FP64 fallback taken   : {info.fallback} "
      f"(handle healed: solver.precision == {s.precision!r})")
print(f"  recovery events       : "
      + ", ".join(e.action for e in info.recovery.events))
print(f"  bitwise == native FP64: {np.array_equal(x_bad, ref)}")
assert info.fallback and np.array_equal(x_bad, ref)

# --- act 3: per-request precision through the service -------------------
print("\n=== Serving with per-request precision ===")
svc = SolverService(Device(A100()),
                    policy=CoalescingPolicy(max_batch=8), start=False)
sizes = [12, 24, 17, 33]
mats = [np.asarray(rng.standard_normal((n, n))) + n * np.eye(n)
        for n in sizes]
rhss = [np.asarray(rng.standard_normal(n)) for n in sizes]
futs = [svc.submit_factor_solve(m, r, precision="fp32")
        for m, r in zip(mats, rhss)]
groups = svc.run_once()
print(f"  {len(sizes)} fp32 requests -> {groups} coalesced launch group(s)")
for n, m, r, fut in zip(sizes, mats, rhss, futs):
    x, h = fut.result(0)
    err = np.linalg.norm(r - m @ x) / np.linalg.norm(r)
    print(f"  n={n:2d}: factors {h.lu.dtype}, answer {x.dtype}, "
          f"backward error {err:.2e}")
    assert err <= REFINE_TARGET and h.lu.dtype == np.float32
snap = svc.stats.snapshot()
print(f"  refine passes {snap['refine_passes']}, "
      f"precision fallbacks {snap['precision_fallbacks']}")
svc.close()
