"""Analyze the front-size distribution of a sparse matrix (Fig 13 style).

Shows how the assembly tree of a multifrontal factorization produces the
irregular batched workloads irrLU-GPU is designed for: thousands of small
fronts at the leaves shrinking to a single large front at the root.

Run:  python examples/front_distribution.py
"""

import numpy as np
import scipy.sparse as sp

from repro.analysis import format_table
from repro.sparse import nested_dissection, symbolic_analysis


def laplacian_3d(n: int) -> sp.csr_matrix:
    """7-point Laplacian on an n^3 grid — a typical PDE sparsity."""
    one = sp.eye(n)
    d1 = sp.diags([-1, 2, -1], [-1, 0, 1], shape=(n, n))
    return (sp.kron(sp.kron(d1, one), one) +
            sp.kron(sp.kron(one, d1), one) +
            sp.kron(sp.kron(one, one), d1)).tocsr()


a = laplacian_3d(12)
print(f"matrix: {a.shape[0]} unknowns, {a.nnz} nonzeros (12^3 grid)\n")

nd = nested_dissection(a, leaf_size=16)
ap = a[nd.perm][:, nd.perm].tocsr()
symb = symbolic_analysis(ap, nd)

rows = []
for s in reversed(symb.level_statistics()):
    rows.append([s["level"], s["batch_size"], s["min_size"],
                 round(s["mean_size"], 1), s["max_size"]])
print(format_table(
    ["level", "batch size", "min front", "mean front", "max front"],
    rows, title="front distribution per assembly-tree level (root = 0)"))

print(f"\nfactor nonzeros: {symb.factor_nonzeros():,} "
      f"(vs {a.nnz:,} in A)")
print(f"factor flops:    {symb.factor_flops():.3e}")

# The irregularity irrLU-GPU must handle: sizes within one batch.
widest = max(symb.levels(), key=len)
sizes = np.array([symb.fronts[f].order for f in widest])
print(f"\nwidest level: batch of {len(sizes)} fronts, sizes "
      f"{sizes.min()}..{sizes.max()} "
      f"(mean {sizes.mean():.1f}) — no uniform-batch interface fits this.")
