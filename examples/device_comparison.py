"""Run the same irregular workload on different device models.

Demonstrates the architectural effects §V discusses: the MI100's smaller
shared memory forces deeper panel splits, its higher launch overheads
hurt fine-grained phases, and a hypothetical device with huge shared
memory keeps the fused panel kernel everywhere.

Run:  python examples/device_comparison.py
"""

from dataclasses import replace

from repro.analysis import format_table, getrf_flops_paper_square
from repro.batched import IrrBatch, irr_getrf
from repro.device import A100, MI100, Device
from repro.workloads import random_square_batch

batch = 150
max_size = 512
mats = random_square_batch(batch, max_size, seed=42)
flops = sum(getrf_flops_paper_square(m.shape[0]) for m in mats)

specs = [
    A100(),
    MI100(),
    replace(A100(), name="A100/8KB-smem", max_shared_per_block=8 * 1024),
    replace(A100(), name="A100/zero-launch-cost", launch_overhead_host=0.0,
            launch_overhead_device=0.0),
]

rows = []
for spec in specs:
    dev = Device(spec)
    b = IrrBatch.from_host(dev, [m.copy() for m in mats])
    with dev.timed_region() as t:
        irr_getrf(dev, b)
    agg = dev.profiler.by_kernel()
    fused = sum(s.count for n, s in agg.items() if n.startswith("irrgetf2"))
    colwise = sum(s.count for n, s in agg.items()
                  if n.startswith("irrpanel"))
    rows.append([spec.name, flops / t["elapsed"] / 1e9,
                 t["launch_count"], fused, colwise,
                 t["host_launch_time"] * 1e3])

print(format_table(
    ["device", "Gflop/s", "launches", "fused panels", "columnwise launches",
     "host launch ms"],
    rows,
    title=(f"irrLU on {batch} matrices, sizes ~ U[1, {max_size}] — "
           "device-model comparison")))

print("\nTakeaways: shared-memory capacity moves panel work between the "
      "fused and\ncolumn-wise paths; launch overhead is a first-order cost "
      "for irregular batches.")
