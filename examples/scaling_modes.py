"""Scaling the factorization beyond one device's memory and one device.

Demonstrates the two §III-A mechanisms for problems that outgrow a GPU:

1. **Out-of-core traversals** — "if the entire assembly tree does not fit
   in the device memory, then the factorization is split in multiple
   traversals of subtrees that do fit on the device";
2. **Distributed memory** — "the assembly tree is split in multiple
   subtrees, each of which is assigned to a single MPI rank and
   corresponding GPU, while the top log P levels ... [use] ScaLAPACK
   (CPU-only) or SLATE".

Both modes produce bit-identical factors to the plain single-device run.

Run:  python examples/scaling_modes.py
"""

import numpy as np
import scipy.sparse as sp

from repro.analysis import format_table
from repro.device import A100, Device
from repro.sparse import multifrontal_factor_distributed, \
    multifrontal_factor_gpu, nested_dissection, plan_traversals, \
    symbolic_analysis


def laplacian_3d(n):
    one = sp.eye(n)
    d1 = sp.diags([-1.0, 2.0, -1.0], [-1, 0, 1], shape=(n, n))
    a = (sp.kron(sp.kron(d1, one), one) + sp.kron(sp.kron(one, d1), one) +
         sp.kron(sp.kron(one, one), d1)).tocsr()
    return a + 0.1 * sp.eye(n ** 3)


a = laplacian_3d(9)
nd = nested_dissection(a, leaf_size=16)
ap = a[nd.perm][:, nd.perm].tocsr()
symb = symbolic_analysis(ap, nd)
front_bytes = sum(8 * f.order ** 2 for f in symb.fronts)
print(f"problem: {a.shape[0]} unknowns, {len(symb.fronts)} fronts, "
      f"{front_bytes / 1e6:.2f} MB of frontal matrices\n")

# --- baseline: everything resident on one device --------------------------
ref = multifrontal_factor_gpu(Device(A100()), ap, symb)
print(f"single device, fully resident: {ref.elapsed * 1e3:.2f} ms\n")

# --- out-of-core: shrink the budget, watch the traversal count ------------
rows = []
for frac in (1.0, 0.5, 0.25, 0.1):
    budget = max(int(front_bytes * frac),
                 max(8 * f.order ** 2 for f in symb.fronts))
    chunks = plan_traversals(symb, budget)
    dev = Device(A100())
    res = multifrontal_factor_gpu(dev, ap, symb, memory_budget=budget)
    same = all(np.array_equal(f1.f11, f2.f11) for f1, f2 in
               zip(ref.factors.fronts, res.factors.fronts))
    rows.append([f"{frac:.0%}", len(chunks), res.elapsed * 1e3,
                 dev.profiler.transfer_count, same])
print(format_table(
    ["memory budget", "traversals", "factor ms", "transfers", "identical"],
    rows, title="out-of-core traversals vs device memory budget"))

# --- distributed: rank-per-subtree -----------------------------------------
rows = []
for p in (1, 2, 4, 8):
    res = multifrontal_factor_distributed(A100(), ap, symb, p)
    same = all(np.array_equal(f1.f11, f2.f11) for f1, f2 in
               zip(ref.factors.fronts, res.factors.fronts))
    rows.append([p, max(res.per_rank_seconds) * 1e3,
                 res.gather_seconds * 1e3, res.top_seconds * 1e3,
                 res.comm_bytes // 1024,
                 f"{res.assignment.imbalance:.2f}", same])
print()
print(format_table(
    ["ranks", "local ms (max)", "gather ms", "top ms", "comm KB",
     "imbalance", "identical"],
    rows, title="distributed factorization (rank-per-subtree + top part)"))

print("\nThe subtree phase scales with ranks; the top of the tree and the "
      "Schur\ngather are the serial fraction — Amdahl in action, visible "
      "even in a model.")
