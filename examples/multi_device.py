"""A four-GPU node end to end: sharded factorization, solve, serving.

The paper's distributed design (§III-A) assigns assembly-tree subtrees
to ranks with their own GPUs and handles the top ``log P`` levels with
ScaLAPACK or SLATE.  This walks the single-node, multi-GPU realisation:

1. build a :class:`~repro.device.node.Node` — four simulated A100s
   joined by NVLink-class peer-to-peer links;
2. factor a 3-D problem **sharded** across the node
   (``SparseLU.factor(backend="sharded")``) and check the factors are
   bitwise identical to the single-device run;
3. solve against the sharded factors as usual;
4. serve a mixed workload through a
   :class:`~repro.serve.pool.DevicePool` and watch the per-device
   counters and the throughput scaling.

Run:  python examples/multi_device.py
"""

import numpy as np
import scipy.sparse as sp

from repro.device import A100, Device, Node
from repro.serve import CoalescingPolicy, DevicePool
from repro.sparse import SparseLU


def laplacian_3d(n):
    one = sp.eye(n)
    d1 = sp.diags([-1.0, 2.0, -1.0], [-1, 0, 1], shape=(n, n))
    a = (sp.kron(sp.kron(d1, one), one) + sp.kron(sp.kron(one, d1), one) +
         sp.kron(sp.kron(one, one), d1)).tocsr()
    return a + 0.1 * sp.eye(n ** 3)


rng = np.random.default_rng(0)

# --- 1. the node ----------------------------------------------------------
node = Node(A100(), 4)
print(f"node: {len(node)} x {node.spec.name}, "
      f"p2p {node.p2p_link.bandwidth / 1e9:.0f} GB/s\n")

# --- 2. sharded factorization --------------------------------------------
a = laplacian_3d(9)
lu = SparseLU(a).factor(backend="sharded", device=node)
res = lu.factor_result
ref = SparseLU(a).factor(backend="batched", device=Device(A100()))
same = all(np.array_equal(x.f11, y.f11) and np.array_equal(x.ipiv, y.ipiv)
           for x, y in zip(lu.factors.fronts, ref.factors.fronts))
print(f"sharded factor: {a.shape[0]} unknowns, "
      f"imbalance {res.assignment.imbalance:.2f}")
print(f"  makespan {res.elapsed * 1e3:.2f} ms  "
      f"(per device {[f'{s * 1e3:.2f}' for s in res.per_device_seconds]} ms,"
      f" top {res.top_seconds * 1e3:.2f} ms)")
print(f"  {res.link_bytes / 1e3:.1f} kB over the links; "
      f"bitwise identical to single device: {same}\n")

# --- 3. solve against the sharded factors ---------------------------------
b = rng.standard_normal(a.shape[0])
x, info = lu.solve(b)
print(f"solve: backward error {info.final_residual:.2e}\n")

# --- 4. pooled serving ----------------------------------------------------
work = []
for _ in range(128):
    n = int(rng.integers(16, 64))
    m = rng.standard_normal((n, n)) + n * np.eye(n)
    work.append((m, rng.standard_normal(n)))

print("pooled serving, 128 mixed factor_solve requests:")
base = None
for n_dev in (1, 2, 4):
    pool_node = Node(A100(), n_dev)
    pool = DevicePool(pool_node, policy=CoalescingPolicy(max_batch=8),
                      start=False)
    futs = [pool.submit_factor_solve(m, rhs) for m, rhs in work]
    while any(not f.done() for f in futs):
        pool.run_once()
    xs = [f.result()[0] for f in futs]
    thr = len(work) / pool_node.synchronize()
    base = base or thr
    devs = pool.stats.snapshot()["devices"]
    spread = {i: d["dispatches"] for i, d in devs.items()}
    pool.close()
    print(f"  {n_dev} device(s): {thr:>9.0f} req/s "
          f"({thr / base:.2f}x), dispatches {spread}")
