"""Batched least squares with irrQR — the paper's future-work extension.

"The proposed interface and the DCWI layer would work seamlessly for
other decompositions, such as the QR factorization" (§VI).  This example
fits polynomial models of *different degrees to series of different
lengths* — an irregular batch no uniform QR interface accepts — with one
``irr_geqrf`` call.

Run:  python examples/batched_least_squares.py
"""

import numpy as np

from repro.batched import IrrBatch, irr_geqrf, qr_least_squares
from repro.device import A100, Device

rng = np.random.default_rng(7)

# --- an irregular regression workload ------------------------------------
# Each problem: m_i noisy samples of a polynomial, fit degree d_i.
problems = []
for _ in range(12):
    m = int(rng.integers(20, 200))
    degree = int(rng.integers(1, 6))
    t = np.sort(rng.uniform(-1, 1, m))
    coeffs = rng.standard_normal(degree + 1)
    y = np.polyval(coeffs, t) + 0.01 * rng.standard_normal(m)
    vander = np.vander(t, degree + 1)       # m x (d+1) design matrix
    problems.append((vander, y, coeffs))

print(f"{len(problems)} regression problems, designs from "
      f"{min(p[0].shape for p in problems)} to "
      f"{max(p[0].shape for p in problems)}\n")

# --- one batched QR over all design matrices ------------------------------
device = Device(A100())
batch = IrrBatch.from_host(device, [p[0].copy() for p in problems])
taus = irr_geqrf(device, batch)
device.synchronize()
print(f"batched QR: {device.profiler.launch_count} launches, "
      f"{device.host_time * 1e6:.1f} us simulated\n")

# --- back-substitute each fit and compare to the ground truth -------------
print(f"{'m':>5} {'degree':>7} {'coeff err':>12} {'resid':>10}")
for i, (vander, y, coeffs) in enumerate(problems):
    x = qr_least_squares(batch.matrix(i), taus[i], y)
    coeff_err = np.abs(x - coeffs).max()
    resid = np.linalg.norm(vander @ x - y) / np.linalg.norm(y)
    print(f"{vander.shape[0]:>5} {vander.shape[1] - 1:>7} "
          f"{coeff_err:>12.2e} {resid:>10.2e}")

print("\nEvery fit recovers its coefficients to the noise floor from one "
      "irregular batched call.")
