"""Compiled factor+solve replay on the Maxwell mesh.

A time-stepping or parameter-sweep loop re-factors the same sparsity
structure with new values on every step.  ``engine="compiled"`` pays
the planning cost (DCWI inference, bucketing, permutation rehearsal,
buffer allocation) exactly once: the first ``factor`` compiles the
multifrontal level schedule into a ``FactorProgram``, and every
``update_values`` + ``factor`` after that replays it — no re-planning,
no new device allocations, bitwise-identical results.

Run:  python examples/compiled_pipeline.py
"""

import time

import numpy as np

from repro.device import A100, Device
from repro.sparse import SparseLU
from repro.workloads import build_maxwell_workload

# --- build the Maxwell system (Ω = 16, the paper's parameters) -----------
wl = build_maxwell_workload(6, leaf_size=16)
A, b = wl.matrix, wl.rhs
print(f"system: {A.shape[0]} dofs, {A.nnz} nonzeros, "
      f"{len(wl.symb.fronts)} fronts\n")

device = Device(A100())
solver = SparseLU(A, use_mc64=False)   # MC64 is value-dependent: off

# --- first factor: compiles the level schedule ---------------------------
t0 = time.perf_counter()
solver.factor(backend="batched", device=device, engine="compiled")
compile_s = time.perf_counter() - t0
prog = solver._factor_program
print(f"compile + first factor: {compile_s * 1e3:8.1f} ms "
      f"({len(prog._steps)} recorded steps)")

x, info = solver.solve(b, device=device)
print(f"initial solve residual: {info.final_residual:.3e}\n")

# --- sweep: new values, same structure -> pure replay --------------------
rng = np.random.default_rng(0)
for step in range(1, 6):
    a_step = A.copy()
    a_step.data = A.data * (1.0 + 0.01 * step
                            * rng.standard_normal(A.data.shape))
    solver.update_values(a_step)

    alloc0 = device.alloc_count
    t0 = time.perf_counter()
    solver.factor(backend="batched", device=device, engine="compiled")
    replay_s = time.perf_counter() - t0
    assert device.alloc_count == alloc0, "replay must not allocate"

    x, info = solver.solve(b, device=device)
    assert solver.factor_result.counters.get("compiled_replay") == 1
    print(f"step {step}: replay {replay_s * 1e3:8.1f} ms "
          f"(x{compile_s / replay_s:5.1f} vs compile), "
          f"residual {info.final_residual:.3e}")

print(f"\n{prog.runs} replays, zero new device allocations per replay — "
      "the schedule was planned once and replayed.")
