"""Quickstart: factor a batch of matrices of completely arbitrary sizes.

The headline capability of irrLU-GPU: one batched LU over matrices from
1×1 up to whatever fits in device memory, no grouping, no padding.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.analysis import lu_backward_error
from repro.batched import IrrBatch, irr_getrf, lu_solve_factored
from repro.device import A100, Device

rng = np.random.default_rng(0)

# --- a wildly irregular batch: 1x1 up to 300x300, plus rectangles -------
sizes = [1, 2, 7, 33, 64, 150, 300]
matrices = [rng.standard_normal((n, n)) for n in sizes]
matrices += [rng.standard_normal((40, 90)), rng.standard_normal((90, 40))]

# --- upload to the simulated device and factor --------------------------
device = Device(A100())
batch = IrrBatch.from_host(device, [m.copy() for m in matrices])

pivots = irr_getrf(device, batch)          # one call factors everything
device.synchronize()

print(f"factored {len(batch)} matrices "
      f"(sizes {batch.m_vec.tolist()} x {batch.n_vec.tolist()})")
print(f"simulated device time: {device.host_time * 1e6:.1f} us, "
      f"{device.profiler.launch_count} kernel launches\n")

# --- check the factorization quality ------------------------------------
for i, a in enumerate(matrices):
    err = lu_backward_error(a, batch.matrix(i), pivots[i])
    print(f"matrix {i}: {a.shape[0]:>3d} x {a.shape[1]:<3d} "
          f"backward error = {err:.2e}  info = {pivots.info[i]}")

# --- use the packed factors to solve a system ---------------------------
i = sizes.index(150)
b = rng.standard_normal(150)
x = lu_solve_factored(batch.matrix(i), pivots[i], b)
residual = np.linalg.norm(matrices[i] @ x - b) / np.linalg.norm(b)
print(f"\nsolve with the 150x150 factors: relative residual {residual:.2e}")
