"""Online policy autotuning under live traffic, in virtual time.

Replays the standard "steady" and "closed-loop" traffic mixes against
a :class:`~repro.serve.service.SolverService` twice — once under the
static default :class:`~repro.serve.scheduler.CoalescingPolicy`, once
with an :class:`~repro.serve.autotune.OnlineAutotuner` hot-swapping
refined policies mid-run — and shows:

* the tuner's decisions (swaps / rollbacks / final knobs),
* per-class p50/p99 latency against each class's soft SLO,
* throughput, and
* that every per-request result is **bitwise identical** across the two
  runs: tuning changes launch shapes, never bits.

The replay is thread-free and deterministic: a virtual clock is
injected as the service clock, arrivals land at generated timestamps,
and the clock advances by each dispatch's *simulated* device seconds —
so the same seed reproduces the same decisions on any machine.

Run:  PYTHONPATH=src python examples/autotuned_serving.py
"""

import numpy as np

from repro.serve import AutotuneConfig, CoalescingPolicy, OnlineAutotuner
from repro.workloads import run_mix, standard_mix

SEED = 7

policy = CoalescingPolicy(max_queue=4096)
cfg = AutotuneConfig(min_requests=12, min_dispatches=2)


def tuner_factory(svc, clock):
    return OnlineAutotuner(svc, clock=clock, config=cfg, seed=SEED)


for name in ("steady", "closed-loop"):
    mix = standard_mix(name)
    static = run_mix(mix, policy=policy, seed=SEED)
    tuned = run_mix(mix, policy=policy, seed=SEED,
                    autotuner=tuner_factory, tune_every=1e-2)

    parity = all(
        (a is None and b is None) or
        (a is not None and b is not None and np.array_equal(a, b))
        for a, b in zip(static.results, tuned.results))

    print(f"=== {mix.name}: {mix.count} requests, "
          f"{mix.arrival} arrivals ===")
    print(f"  static : {static.throughput:8.1f} req/s over "
          f"{static.makespan * 1e3:6.1f} ms virtual, "
          f"{static.dispatches} dispatches")
    print(f"  tuned  : {tuned.throughput:8.1f} req/s over "
          f"{tuned.makespan * 1e3:6.1f} ms virtual, "
          f"{tuned.dispatches} dispatches")
    t = tuned.tuner
    print(f"  tuner  : {t['windows']} windows, {t['swaps']} swaps, "
          f"{t['rollbacks']} rollbacks")
    knobs = tuned.policy
    print(f"  final policy: max_batch={knobs['max_batch']} "
          f"max_wait={knobs['max_wait']:.2g}s "
          f"hot_threshold={knobs['hot_threshold']} "
          f"panel_regime={knobs['panel_regime']}")
    for cls, entry in sorted(tuned.per_class.items()):
        slo = entry["slo"]
        print(f"  class {cls:>14}: p50={entry['p50'] * 1e3:6.2f} ms  "
              f"p99={entry['p99'] * 1e3:6.2f} ms  "
              f"slo={'-' if slo is None else f'{slo * 1e3:.0f} ms'}  "
              f"met={entry['met']}")
    print(f"  bitwise parity static vs tuned: {parity}")
    assert parity, "tuning must never change result bits"
    print()
