"""Tests for the restricted-pivoting stability diagnostics (§III-A)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.analysis import front_pivot_report, growth_factor
from repro.sparse import SparseLU

from ..sparse.util import grid2d


def factored_solver(a, use_mc64=False):
    return SparseLU(a, use_mc64=use_mc64).analyze().factor()


class TestGrowthFactor:
    def test_well_conditioned_growth_modest(self, rng):
        a = grid2d(12, 12)
        s = factored_solver(a)
        rep = growth_factor(abs(s.a_perm).max(), s.factors)
        assert rep.stable
        assert rep.growth < 100.0
        assert rep.n_fronts == len(s.symb.fronts)
        assert 0 <= rep.worst_front < rep.n_fronts

    def test_mc64_controls_growth_on_weak_diagonals(self, rng):
        """The §III-A claim: restricted pivoting + MC64 keeps growth
        tame even when the raw diagonal is tiny."""
        a = grid2d(10, 10, diag=1e-6)
        s_plain = factored_solver(a)
        rep_plain = growth_factor(abs(s_plain.a_perm).max(),
                                  s_plain.factors)
        s_mc = factored_solver(a, use_mc64=True)
        rep_mc = growth_factor(abs(s_mc.a_perm).max(), s_mc.factors)
        assert rep_mc.growth <= rep_plain.growth
        assert rep_mc.stable

    def test_pivot_range_sane(self, rng):
        a = grid2d(9, 9)
        s = factored_solver(a)
        rep = growth_factor(abs(s.a_perm).max(), s.factors)
        assert 0 < rep.min_pivot <= rep.max_pivot

    def test_zero_matrix_max_guard(self, rng):
        a = grid2d(5, 5)
        s = factored_solver(a)
        rep = growth_factor(0.0, s.factors)  # degenerate denom guarded
        assert np.isfinite(rep.growth)


class TestFrontPivotReport:
    def test_one_entry_per_nonempty_front(self, rng):
        a = grid2d(8, 8)
        s = factored_solver(a)
        rows = front_pivot_report(s.factors)
        nonempty = sum(1 for f in s.factors.fronts if f.f11.size)
        assert len(rows) == nonempty
        for r in rows:
            assert r["min_pivot"] <= r["max_pivot"]
            assert r["order"] >= 1
