"""Tests for the error metrics."""

import numpy as np
import scipy.linalg as sla

from repro.analysis import lu_backward_error, max_trsm_backward_error, \
    relative_residual, trsm_backward_error


class TestTrsmBackwardError:
    def test_exact_solution_zero_error(self, rng):
        t = np.tril(rng.standard_normal((6, 6))) + 6 * np.eye(6)
        x = rng.standard_normal((6, 2))
        b = np.tril(t) @ x
        assert trsm_backward_error(t, x, b) < 1e-14

    def test_detects_wrong_solution(self, rng):
        t = np.tril(rng.standard_normal((6, 6))) + 6 * np.eye(6)
        x = rng.standard_normal((6, 2))
        b = np.tril(t) @ x
        assert trsm_backward_error(t, x + 1.0, b) > 1e-2

    def test_unit_diagonal_option(self, rng):
        t = np.tril(rng.standard_normal((5, 5)), -1) + 7 * np.eye(5)
        x = rng.standard_normal((5, 1))
        b = (np.tril(t, -1) + np.eye(5)) @ x
        assert trsm_backward_error(t, x, b, unit_diagonal=True) < 1e-14

    def test_upper_and_trans(self, rng):
        t = np.triu(rng.standard_normal((5, 5))) + 5 * np.eye(5)
        x = rng.standard_normal((5, 3))
        b = np.triu(t).T @ x
        assert trsm_backward_error(t, x, b, uplo="U", trans="T") < 1e-14

    def test_zero_rhs(self):
        t = np.eye(3)
        assert trsm_backward_error(t, np.zeros((3, 1)),
                                   np.zeros((3, 1))) == 0.0

    def test_batch_max(self, rng):
        t = np.tril(rng.standard_normal((4, 4))) + 4 * np.eye(4)
        x = rng.standard_normal((4, 1))
        b = np.tril(t) @ x
        errs = max_trsm_backward_error([t, t], [x, x + 1], [b, b])
        assert errs > 1e-2


class TestLuBackwardError:
    def test_scipy_factors_small_error(self, rng):
        a = rng.standard_normal((20, 20))
        lu, piv = sla.lu_factor(a)
        assert lu_backward_error(a, lu, piv) < 1e-14

    def test_wrong_factors_large_error(self, rng):
        a = rng.standard_normal((10, 10))
        lu, piv = sla.lu_factor(a)
        assert lu_backward_error(a, lu + 0.1, piv) > 1e-3


class TestRelativeResidual:
    def test_dense(self, rng):
        a = rng.standard_normal((8, 8)) + 8 * np.eye(8)
        x = rng.standard_normal(8)
        assert relative_residual(a, x, a @ x) < 1e-14

    def test_callable_operator(self, rng):
        a = rng.standard_normal((8, 8))
        x = rng.standard_normal(8)
        assert relative_residual(lambda v: a @ v, x, a @ x) < 1e-14

    def test_zero_rhs(self):
        a = np.eye(3)
        assert relative_residual(a, np.zeros(3), np.zeros(3)) == 0.0
