"""Tests for report formatting."""

from repro.analysis import fmt_rate, fmt_time, format_series, format_table


class TestFormatTable:
    def test_contains_headers_and_rows(self):
        out = format_table(["a", "bb"], [[1, 2.5], [3, 4.0]])
        assert "a" in out and "bb" in out
        assert "2.5" in out

    def test_title(self):
        out = format_table(["x"], [[1]], title="Table I")
        assert out.startswith("Table I")

    def test_column_alignment(self):
        out = format_table(["col"], [["verylongvalue"], ["s"]])
        lines = out.splitlines()
        assert len(lines[1]) == len("verylongvalue")

    def test_scientific_for_extreme_floats(self):
        out = format_table(["x"], [[1.23e-9]])
        assert "e-09" in out


class TestFormatSeries:
    def test_series_columns(self):
        out = format_series("Fig 10", "size", [32, 64],
                            {"irrLU": [1.0, 2.0], "CPU": [0.5, 0.8]})
        assert "irrLU" in out and "CPU" in out
        assert "size" in out
        assert "Fig 10" in out


class TestFormatters:
    def test_fmt_time_ranges(self):
        assert fmt_time(2.0).endswith(" s")
        assert fmt_time(2e-3).endswith(" ms")
        assert fmt_time(2e-6).endswith(" us")

    def test_fmt_rate(self):
        assert fmt_rate(2e9, 2.0) == 1.0
        assert fmt_rate(1.0, 0.0) == 0.0
