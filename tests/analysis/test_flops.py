"""Tests for the flop-count formulas."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.analysis import batch_getrf_flops, batch_trsm_flops, gemm_flops, \
    getrf_flops, getrf_flops_paper_square, trsm_flops


def brute_force_getrf_flops(m, n):
    total = 0
    for c in range(min(m, n)):
        if c + 1 <= m - 1:
            total += m - c - 1                      # column scaling
            total += 2 * (m - c - 1) * (n - c - 1)  # rank-1 update
    return total


class TestGetrfFlops:
    @pytest.mark.parametrize("m,n", [(1, 1), (2, 2), (5, 5), (10, 3),
                                     (3, 10), (64, 64), (7, 1), (1, 7)])
    def test_matches_brute_force(self, m, n):
        assert getrf_flops(m, n) == pytest.approx(
            brute_force_getrf_flops(m, n))

    def test_zero_sizes(self):
        assert getrf_flops(0, 5) == 0
        assert getrf_flops(5, 0) == 0

    def test_square_close_to_paper_formula(self):
        # Same leading term; the paper's printed low-order terms differ by
        # O(n²) (the §III-B vs §V-A discrepancy documented in flops.py).
        n = 1000
        assert getrf_flops(n, n) == pytest.approx(
            getrf_flops_paper_square(n), rel=1e-2)

    @given(st.integers(1, 80), st.integers(1, 80))
    def test_property_matches_brute_force(self, m, n):
        assert getrf_flops(m, n) == pytest.approx(
            brute_force_getrf_flops(m, n))


class TestOtherCounts:
    def test_trsm(self):
        assert trsm_flops(10, 4) == 4 * 100

    def test_gemm(self):
        assert gemm_flops(2, 3, 4) == 48

    def test_batch_aggregates(self):
        assert batch_getrf_flops([2, 3], [2, 3]) == \
            getrf_flops(2, 2) + getrf_flops(3, 3)
        assert batch_trsm_flops([2, 3], [1, 2]) == \
            trsm_flops(2, 1) + trsm_flops(3, 2)
