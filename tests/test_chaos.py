"""Seeded chaos suite (``-m chaos``): the full pipeline under fault storms.

Acceptance contract, checked for every seeded schedule:

- the pipeline never returns silent garbage: each run either produces a
  solution with a small backward error or raises a *typed* error
  (``TransferError`` / ``ResourceExhausted`` / ``KernelLaunchError``);
- runs recovered without a host fallback are **bitwise identical** to a
  fault-free run;
- every resilience action is enumerated in the recovery log; and
- device memory accounting returns to baseline, success or failure.

Schedules are pure functions of ``(seed, rules)``, so a failing seed
reproduces exactly.
"""

import numpy as np
import pytest

from repro.device import A100, PERSISTENT, Device, FaultPlan, FaultRule
from repro.errors import (FactorizationError, KernelLaunchError,
                          ResourceExhausted, TransferError)
from repro.sparse import (SparseLU, multifrontal_factor_gpu,
                          multifrontal_solve_gpu, nested_dissection,
                          symbolic_analysis)

pytestmark = [pytest.mark.chaos,
              pytest.mark.filterwarnings("error::RuntimeWarning")]

TYPED_FAILURES = (TransferError, ResourceExhausted, KernelLaunchError)
SEEDS = [3, 17, 101, 2024, 90210]


def storm(seed, p=0.02):
    """A transient-fault storm: every fault site misbehaves sometimes."""
    return FaultPlan([FaultRule("alloc", probability=p),
                      FaultRule("h2d", probability=p),
                      FaultRule("d2h", probability=p),
                      FaultRule("launch", probability=p),
                      FaultRule("stall", probability=p, stall=1e-4)],
                     seed=seed)


def prepare(a, leaf_size=8):
    nd = nested_dissection(a, leaf_size=leaf_size)
    ap = a[nd.perm][:, nd.perm].tocsr()
    return nd, ap, symbolic_analysis(ap, nd)


def grid2d(nx, ny, seed=0):
    from .sparse.util import grid2d as g
    return g(nx, ny, seed=seed)


class TestFactorChaos:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_factor_survives_fault_storm(self, seed):
        a = grid2d(10, 10)
        nd, ap, symb = prepare(a)
        ref = multifrontal_factor_gpu(Device(A100()), ap, symb)
        dev = Device(A100())
        try:
            with dev.fault_scope(storm(seed)):
                res = multifrontal_factor_gpu(dev, ap, symb)
        except TYPED_FAILURES:
            pass        # typed failure is within contract
        else:
            rec = res.report.recovery
            if "host-fallback" not in rec.actions:
                for f_ref, f_res in zip(ref.factors.fronts,
                                        res.factors.fronts):
                    np.testing.assert_array_equal(f_ref.f11, f_res.f11)
                    np.testing.assert_array_equal(f_ref.f12, f_res.f12)
                    np.testing.assert_array_equal(f_ref.f21, f_res.f21)
                    np.testing.assert_array_equal(f_ref.ipiv, f_res.ipiv)
        assert dev.allocated_bytes == 0

    @pytest.mark.parametrize("seed", SEEDS)
    def test_streaming_factor_survives_fault_storm(self, seed):
        a = grid2d(10, 10)
        nd, ap, symb = prepare(a)
        floor = max(8 * f.order ** 2 for f in symb.fronts)
        dev = Device(A100())
        try:
            with dev.fault_scope(storm(seed)):
                res = multifrontal_factor_gpu(dev, ap, symb,
                                              memory_budget=4 * floor)
        except TYPED_FAILURES:
            pass
        else:
            assert res.report.ok
        assert dev.allocated_bytes == 0


class TestSolveChaos:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_end_to_end_solve_survives_fault_storm(self, seed):
        rng = np.random.default_rng(seed)
        a = grid2d(9, 9)
        b = rng.standard_normal(81)
        s = SparseLU(a).factor()
        dev = Device(A100())
        with dev.fault_scope(storm(seed)):
            x, info = s.solve(b, device=dev)
        # SparseLU.solve owns the last rung (host fallback): it must
        # always deliver, whatever the schedule did to the device
        assert np.abs(a @ x - b).max() < 1e-10
        assert info.recovery is not None
        # only the (intentionally) warm factor cache may hold memory
        if s.solve_cache is not None:
            s.solve_cache.free()
        assert dev.allocated_bytes == 0

    def test_failing_seed_reproduces_identical_schedule(self):
        a = grid2d(8, 8)
        nd, ap, symb = prepare(a)

        def run():
            dev = Device(A100())
            with dev.fault_scope(storm(7, p=0.1)) as inj:
                try:
                    multifrontal_factor_gpu(dev, ap, symb)
                except TYPED_FAILURES as exc:
                    return [(f.kind, f.site, f.index)
                            for f in inj.injected], type(exc).__name__
            return [(f.kind, f.site, f.index) for f in inj.injected], None

        assert run() == run()


class TestGalleryChaos:
    @pytest.mark.parametrize("seed", [5, 23])
    def test_gallery_contract_holds_under_fault_storm(self, seed):
        # the PR-3 numerical contract must survive system-fault storms:
        # solved to small backward error, or a typed breakdown with a
        # report — never silent garbage, whatever the device does
        from repro.workloads import GALLERY, run_gallery
        dev = Device(A100())
        with dev.fault_scope(storm(seed)):
            res = run_gallery(dev, backend="batched")
        assert set(res) == {e.name for e in GALLERY}
        for name, rec in res.items():
            if rec["outcome"] == "solved":
                assert rec["berr"] <= 1e-12, (name, rec["berr"])
            else:
                assert rec["outcome"] in ("factor_breakdown",
                                          "solve_breakdown"), name
                assert rec["report"] is not None, name


def sdc_storm(seed, p=0.05):
    """A silent-data-corruption storm over every registered output
    site, mixed with the transient system faults of :func:`storm`."""
    return FaultPlan([FaultRule("corrupt", probability=p),
                      FaultRule("h2d", probability=0.01),
                      FaultRule("launch", probability=0.01)],
                     seed=seed)


@pytest.mark.sdc
class TestCorruptionChaos:
    """Zero-undetected-corruption contract: every injected ``corrupt``
    fault is either repaired (results bitwise identical to fault-free)
    or surfaced as a quarantined front / typed failure — a corrupted
    factorization is never returned as a clean success."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_corruption_storm_never_returns_silent_garbage(self, seed):
        from repro.sparse.numeric.report import check_factors_ok
        a = grid2d(10, 10)
        nd, ap, symb = prepare(a)
        ref = multifrontal_factor_gpu(Device(A100()), ap, symb)
        dev = Device(A100())
        res = None
        try:
            with dev.fault_scope(sdc_storm(seed)):
                res = multifrontal_factor_gpu(dev, ap, symb,
                                              breakdown="report",
                                              host_fallback=False)
        except TYPED_FAILURES:
            pass        # system faults may exhaust the ladder: typed
        if res is not None:
            rec = res.report.recovery
            if res.report.ok:
                if "host-fallback" not in rec.actions:
                    for f_ref, f_res in zip(ref.factors.fronts,
                                            res.factors.fronts):
                        np.testing.assert_array_equal(f_ref.f11,
                                                      f_res.f11)
                        np.testing.assert_array_equal(f_ref.ipiv,
                                                      f_res.ipiv)
            else:
                # unrepaired corruption must be visible AND the broken
                # factors must refuse to solve
                assert len(res.report.corrupted_fronts()) > 0
                assert rec.count("front-quarantine") > 0
                with pytest.raises(FactorizationError):
                    check_factors_ok(res.factors, "solve")
        assert dev.allocated_bytes == 0

    def test_persistent_corruption_quarantines_and_raises(self):
        from repro.sparse.numeric.gpu_factor import CORRUPT_FRONT_INFO
        a = grid2d(10, 10)
        nd, ap, symb = prepare(a)
        plan = FaultPlan([FaultRule("corrupt", at=0, times=PERSISTENT,
                                    match="irrgemm:schur")], seed=7)
        dev = Device(A100())
        with dev.fault_scope(plan):
            res = multifrontal_factor_gpu(dev, ap, symb,
                                          breakdown="report",
                                          host_fallback=False)
        assert not res.report.ok
        bad = res.report.corrupted_fronts()
        assert len(bad) > 0
        assert (res.report.info[bad] == CORRUPT_FRONT_INFO).all()
        assert "quarantined" in res.report.summary()
        rec = res.report.recovery
        assert rec.count("front-quarantine") == len(bad)
        assert rec.count("kernel-reexec") > 0
        # breakdown="raise" surfaces the same damage as a typed error
        dev2 = Device(A100())
        with dev2.fault_scope(FaultPlan(plan.rules, seed=7)):
            with pytest.raises(FactorizationError, match="quarantined"):
                multifrontal_factor_gpu(dev2, ap, symb,
                                        host_fallback=False)
        assert dev.allocated_bytes == dev2.allocated_bytes == 0

    def test_transient_corruption_repaired_bitwise(self):
        a = grid2d(10, 10)
        nd, ap, symb = prepare(a)
        ref = multifrontal_factor_gpu(Device(A100()), ap, symb)
        dev = Device(A100())
        plan = FaultPlan([FaultRule("corrupt", at=0, match="irrgemm"),
                          FaultRule("corrupt", at=0, match="irrtrsm")],
                         seed=5)
        with dev.fault_scope(plan) as inj:
            res = multifrontal_factor_gpu(dev, ap, symb)
        assert inj.n_injected == 2
        assert res.report.ok
        assert res.report.recovery.count("kernel-reexec") >= 1
        for f_ref, f_res in zip(ref.factors.fronts, res.factors.fronts):
            np.testing.assert_array_equal(f_ref.f11, f_res.f11)
            np.testing.assert_array_equal(f_ref.f12, f_res.f12)
            np.testing.assert_array_equal(f_ref.f21, f_res.f21)
            np.testing.assert_array_equal(f_ref.ipiv, f_res.ipiv)
        assert dev.allocated_bytes == 0

    def test_corrupt_schedule_reproduces_exactly(self):
        a = grid2d(8, 8)
        nd, ap, symb = prepare(a)

        def run():
            dev = Device(A100())
            with dev.fault_scope(sdc_storm(13, p=0.2)) as inj:
                try:
                    multifrontal_factor_gpu(dev, ap, symb,
                                            breakdown="report",
                                            host_fallback=False)
                except TYPED_FAILURES as exc:
                    return ([(f.kind, f.site, f.index)
                             for f in inj.injected], type(exc).__name__)
            return [(f.kind, f.site, f.index)
                    for f in inj.injected], None

        assert run() == run()


class TestMaxwellChaosSmoke:
    def test_maxwell_pipeline_under_faults(self):
        from repro.fem import HexMesh, MaxwellProblem
        prob = MaxwellProblem.build(HexMesh(6, 6, 6), omega=16.0)
        A, b = prob.reduced_system()
        s = SparseLU(A).analyze()
        dev = Device(A100())
        with dev.fault_scope(storm(42, p=0.01)):
            s.factor(backend="batched", device=dev)
            x, info = s.solve(b, device=dev, refine_steps=1)
        assert info.final_residual < 1e-12
        if s.solve_cache is not None:
            s.solve_cache.free()
        assert dev.allocated_bytes == 0
