"""Sharded multifrontal factorization: bitwise parity with the
single-device path at every device count (the tentpole contract)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.device import A100, Device, Node
from repro.errors import FactorizationError
from repro.sparse import SparseLU, multifrontal_factor_distributed, \
    multifrontal_factor_gpu, multifrontal_factor_sharded, \
    multifrontal_solve, nested_dissection, symbolic_analysis

from .util import grid2d, grid3d

pytestmark = pytest.mark.multidev


def prepare(a, leaf_size=16):
    nd = nested_dissection(a, leaf_size=leaf_size)
    ap = a[nd.perm][:, nd.perm].tocsr()
    return nd, ap, symbolic_analysis(ap, nd)


def singular(k=40):
    """Grid operator with row+column k zeroed — exactly singular, with a
    guaranteed all-zero pivot column in the front that owns k."""
    a = grid2d(9, 9).tolil()
    a[k, :] = 0.0
    a[:, k] = 0.0
    return sp.csr_matrix(a)


def assert_factors_equal(fa, fb):
    assert len(fa.fronts) == len(fb.fronts)
    for x, y in zip(fa.fronts, fb.fronts):
        assert np.array_equal(x.f11, y.f11)
        assert np.array_equal(x.f12, y.f12)
        assert np.array_equal(x.f21, y.f21)
        assert np.array_equal(x.ipiv, y.ipiv)
        assert x.info == y.info


class TestShardedParity:
    @pytest.mark.parametrize("n_devices", [1, 2, 4, 8])
    def test_bitwise_parity_with_single_device(self, n_devices):
        _, ap, symb = prepare(grid3d(7))
        ref = multifrontal_factor_gpu(Device(A100()), ap, symb)
        node = Node(A100(), n_devices)
        res = multifrontal_factor_sharded(node, ap, symb)
        assert_factors_equal(ref.factors, res.factors)
        assert res.report is not None and bool(res.report.ok)
        assert np.array_equal(res.report.info, ref.report.info)
        assert node.allocated_bytes == 0

    def test_diagnostics_shape(self):
        _, ap, symb = prepare(grid3d(6))
        node = Node(A100(), 4)
        res = multifrontal_factor_sharded(node, ap, symb)
        assert res.elapsed > 0
        assert len(res.per_device_seconds) == 4
        assert res.gather_seconds >= 0 and res.top_seconds > 0
        assert res.link_bytes == node.p2p_bytes + node.staged_bytes
        assert res.link_bytes > 0
        assert len(res.rank_link_stats) == 4
        # rank_link_stats includes the owner's own (non-travelling)
        # contributions, so it dominates the physical byte count
        assert sum(nb for nb, _ in res.rank_link_stats) >= res.link_bytes

    def test_solve_against_sharded_factors(self, rng):
        a = grid2d(12, 11)
        nd, ap, symb = prepare(a)
        node = Node(A100(), 4)
        res = multifrontal_factor_sharded(node, ap, symb)
        b = rng.standard_normal(a.shape[0])
        x = multifrontal_solve(res.factors, b[nd.perm])[np.argsort(nd.perm)]
        assert np.linalg.norm(a @ x - b) / np.linalg.norm(b) < 1e-10

    @pytest.mark.parametrize("kw", [
        dict(static_pivot=True, pivot_tol=1e-10),
        dict(pivot_tol=1e-12, replace_scale=1e4),
        dict(gemm_mode="vendor", nb=16),
    ])
    def test_pivot_policy_parity(self, kw):
        _, ap, symb = prepare(grid2d(11, 10))
        ref = multifrontal_factor_gpu(Device(A100()), ap, symb, **kw)
        res = multifrontal_factor_sharded(Node(A100(), 4), ap, symb, **kw)
        assert_factors_equal(ref.factors, res.factors)
        assert np.array_equal(res.report.n_replaced, ref.report.n_replaced)

    def test_breakdown_report_parity(self):
        _, ap, symb = prepare(singular())
        ref = multifrontal_factor_gpu(Device(A100()), ap, symb,
                                      breakdown="report")
        res = multifrontal_factor_sharded(Node(A100(), 4), ap, symb,
                                          breakdown="report")
        assert not bool(res.report.ok)
        assert np.array_equal(res.report.info, ref.report.info)

    def test_breakdown_raise_parity(self):
        _, ap, symb = prepare(singular())
        with pytest.raises(FactorizationError):
            multifrontal_factor_gpu(Device(A100()), ap, symb)
        node = Node(A100(), 4)
        with pytest.raises(FactorizationError):
            multifrontal_factor_sharded(node, ap, symb)
        assert node.allocated_bytes == 0

    def test_rejects_bad_arguments(self):
        _, ap, symb = prepare(grid2d(6, 6))
        node = Node(A100(), 2)
        with pytest.raises(ValueError, match="strategy"):
            multifrontal_factor_sharded(node, ap, symb, strategy="nope")
        with pytest.raises(ValueError, match="top_mode"):
            multifrontal_factor_sharded(node, ap, symb, top_mode="mpi")
        with pytest.raises(ValueError, match="top_device"):
            multifrontal_factor_sharded(node, ap, symb, top_device=5)

    def test_scalapack_top_matches_numerics(self):
        _, ap, symb = prepare(grid3d(6))
        ref = multifrontal_factor_gpu(Device(A100()), ap, symb)
        res = multifrontal_factor_sharded(Node(A100(), 4), ap, symb,
                                          top_mode="scalapack")
        assert_factors_equal(ref.factors, res.factors)
        assert res.top_seconds > 0


class TestSparseLUSharded:
    def test_backend_sharded_end_to_end(self, rng):
        a = grid2d(13, 12)
        node = Node(A100(), 4)
        lu = SparseLU(a).factor(backend="sharded", device=node)
        ref = SparseLU(a).factor(backend="batched", device=Device(A100()))
        assert_factors_equal(lu.factors, ref.factors)
        b = rng.standard_normal(a.shape[0])
        x, info = lu.solve(b)
        assert info.final_residual < 1e-12
        assert np.array_equal(x, ref.solve(b)[0])

    def test_backend_sharded_needs_a_node(self):
        a = grid2d(6, 6)
        with pytest.raises(ValueError, match="Node"):
            SparseLU(a).factor(backend="sharded", device=Device(A100()))


class TestDistributedWrapper:
    """The simulated-MPI path is now a thin wrapper over the sharded
    engine — same pivot policy, same breakdown semantics."""

    def test_breakdown_parity_with_gpu_path(self):
        _, ap, symb = prepare(singular())
        ref = multifrontal_factor_gpu(Device(A100()), ap, symb,
                                      breakdown="report")
        res = multifrontal_factor_distributed(A100(), ap, symb, 4,
                                              breakdown="report")
        assert res.report is not None
        assert np.array_equal(res.report.info, ref.report.info)

    def test_raise_on_breakdown(self):
        _, ap, symb = prepare(singular())
        with pytest.raises(FactorizationError):
            multifrontal_factor_distributed(A100(), ap, symb, 4)

    def test_pivot_policy_threads_through(self):
        _, ap, symb = prepare(grid2d(10, 10))
        ref = multifrontal_factor_gpu(Device(A100()), ap, symb,
                                      static_pivot=True, pivot_tol=1e-10)
        res = multifrontal_factor_distributed(
            A100(), ap, symb, 4, static_pivot=True, pivot_tol=1e-10)
        assert_factors_equal(ref.factors, res.factors)
        assert res.report.static_pivot is True
