"""Tests for the adjacency-graph utilities."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.sparse.graph import bfs_levels, connected_components, \
    pseudo_peripheral_vertex, subgraph, symmetrize_pattern

from .util import grid2d


def path_graph(n):
    rows = list(range(n - 1)) + list(range(1, n))
    cols = list(range(1, n)) + list(range(n - 1))
    return sp.csr_matrix((np.ones(len(rows)), (rows, cols)), shape=(n, n))


class TestSymmetrizePattern:
    def test_symmetric_no_diagonal(self):
        a = sp.csr_matrix(np.array([[1.0, 2.0, 0.0],
                                    [0.0, 3.0, 0.0],
                                    [4.0, 0.0, 5.0]]))
        g = symmetrize_pattern(a)
        d = g.toarray()
        assert np.all(d == d.T)
        assert np.all(np.diag(d) == 0)
        assert d[0, 1] and d[1, 0]          # from a[0,1]
        assert d[0, 2] and d[2, 0]          # from a[2,0]

    def test_rejects_rectangular(self):
        with pytest.raises(ValueError, match="square"):
            symmetrize_pattern(sp.csr_matrix(np.ones((2, 3))))


class TestBfs:
    def test_path_levels(self):
        g = path_graph(5)
        level = bfs_levels(g, 0)
        assert level.tolist() == [0, 1, 2, 3, 4]

    def test_mask_restricts(self):
        g = path_graph(5)
        mask = np.array([True, True, False, True, True])
        level = bfs_levels(g, 0, mask)
        assert level[1] == 1
        assert level[3] == -1  # cut off by the mask

    def test_masked_start_rejected(self):
        g = path_graph(3)
        mask = np.array([False, True, True])
        with pytest.raises(ValueError):
            bfs_levels(g, 0, mask)


class TestPseudoPeripheral:
    def test_path_graph_finds_endpoint(self):
        g = path_graph(30)
        v = pseudo_peripheral_vertex(g, np.arange(30))
        assert v in (0, 29)

    def test_empty_set_rejected(self):
        g = path_graph(3)
        with pytest.raises(ValueError):
            pseudo_peripheral_vertex(g, np.array([], dtype=np.int64))


class TestComponents:
    def test_single_component(self):
        g = symmetrize_pattern(grid2d(4, 4))
        comps = connected_components(g, np.arange(16))
        assert len(comps) == 1
        assert len(comps[0]) == 16

    def test_two_components(self):
        g = path_graph(4).tolil()
        g[1, 2] = 0
        g[2, 1] = 0
        g = symmetrize_pattern(g.tocsr())
        comps = connected_components(g, np.arange(4))
        assert sorted(len(c) for c in comps) == [2, 2]

    def test_restricted_vertex_set(self):
        g = path_graph(6)
        comps = connected_components(g, np.array([0, 1, 4, 5]))
        assert sorted(len(c) for c in comps) == [2, 2]


class TestSubgraph:
    def test_induced(self):
        g = symmetrize_pattern(grid2d(3, 3))
        sub, back = subgraph(g, np.array([0, 1, 3, 4]))
        assert sub.shape == (4, 4)
        assert back.tolist() == [0, 1, 3, 4]
        # vertices 0-1 adjacent in the grid
        assert sub[0, 1] != 0
