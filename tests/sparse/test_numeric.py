"""Tests for the numeric factorization phases (CPU and GPU backends)."""

import numpy as np
import pytest
import scipy.sparse as sp
import scipy.sparse.linalg as spla
from hypothesis import given, settings, strategies as st

from repro.device import A100, MI100, Device
from repro.sparse import multifrontal_factor_cpu, multifrontal_factor_gpu, \
    multifrontal_solve, nested_dissection, symbolic_analysis
from repro.sparse.numeric.cpu_factor import factor_front_blocks

from .util import grid2d, grid3d, random_sparse


def prepare(a, leaf_size=8):
    nd = nested_dissection(a, leaf_size=leaf_size)
    ap = a[nd.perm][:, nd.perm].tocsr()
    symb = symbolic_analysis(ap, nd)
    return nd, ap, symb


def solve_via(factors, nd, a, b):
    xp = multifrontal_solve(factors, b[nd.perm])
    x = np.empty_like(xp)
    x[nd.perm] = xp
    return x


class TestFactorFrontBlocks:
    def test_full_factorization_when_no_update(self, rng):
        F = rng.standard_normal((8, 8))
        orig = F.copy()
        fac, schur = factor_front_blocks(F.copy(), 8)
        assert schur.shape == (0, 0)
        from repro.batched import lu_reconstruct
        np.testing.assert_allclose(lu_reconstruct(fac.f11, fac.ipiv), orig,
                                   rtol=1e-11, atol=1e-12)

    def test_schur_complement_value(self, rng):
        F = rng.standard_normal((10, 10)) + 10 * np.eye(10)
        orig = F.copy()
        fac, schur = factor_front_blocks(F.copy(), 6)
        want = orig[6:, 6:] - orig[6:, :6] @ np.linalg.inv(orig[:6, :6]) \
            @ orig[:6, 6:]
        np.testing.assert_allclose(schur, want, rtol=1e-10, atol=1e-10)

    def test_zero_pivot_block_raises(self):
        F = np.zeros((4, 4))
        F[2:, 2:] = np.eye(2)
        with pytest.raises(np.linalg.LinAlgError, match="zero pivot"):
            factor_front_blocks(F, 2)


class TestCpuFactor:
    def test_solve_matches_scipy(self, rng):
        a = grid2d(13, 17)
        nd, ap, symb = prepare(a)
        fac = multifrontal_factor_cpu(ap, symb)
        b = rng.standard_normal(a.shape[0])
        x = solve_via(fac, nd, a, b)
        ref = spla.spsolve(a.tocsc(), b)
        np.testing.assert_allclose(x, ref, rtol=1e-9, atol=1e-11)

    def test_multiple_rhs(self, rng):
        a = grid2d(9, 9)
        nd, ap, symb = prepare(a)
        fac = multifrontal_factor_cpu(ap, symb)
        B = rng.standard_normal((81, 3))
        X = solve_via(fac, nd, a, B)
        np.testing.assert_allclose(a @ X, B, rtol=1e-9, atol=1e-10)

    def test_3d_problem(self, rng):
        a = grid3d(5)
        nd, ap, symb = prepare(a, leaf_size=16)
        fac = multifrontal_factor_cpu(ap, symb)
        b = rng.standard_normal(125)
        x = solve_via(fac, nd, a, b)
        assert np.abs(a @ x - b).max() < 1e-10

    def test_unsymmetric_values(self, rng):
        a = random_sparse(80, seed=9)
        nd, ap, symb = prepare(a)
        fac = multifrontal_factor_cpu(ap, symb)
        b = rng.standard_normal(80)
        x = solve_via(fac, nd, a, b)
        assert np.abs(a @ x - b).max() / np.abs(b).max() < 1e-10

    def test_rhs_size_mismatch(self, rng):
        a = grid2d(5, 5)
        nd, ap, symb = prepare(a)
        fac = multifrontal_factor_cpu(ap, symb)
        with pytest.raises(ValueError, match="expected"):
            multifrontal_solve(fac, np.zeros(7))

    @settings(max_examples=10, deadline=None)
    @given(st.integers(3, 10), st.integers(3, 10),
           st.integers(0, 2 ** 31 - 1), st.integers(2, 16))
    def test_property_solve(self, nx, ny, seed, leaf):
        a = grid2d(nx, ny, seed=seed)
        nd, ap, symb = prepare(a, leaf_size=leaf)
        fac = multifrontal_factor_cpu(ap, symb)
        rng = np.random.default_rng(seed)
        b = rng.standard_normal(nx * ny)
        x = solve_via(fac, nd, a, b)
        assert np.abs(a @ x - b).max() / max(np.abs(b).max(), 1) < 1e-9


class TestGpuFactorStrategies:
    @pytest.mark.parametrize("strategy", ["batched", "looped", "strumpack"])
    def test_matches_cpu_factors(self, rng, strategy):
        a = grid2d(11, 11)
        nd, ap, symb = prepare(a)
        ref = multifrontal_factor_cpu(ap, symb)
        dev = Device(A100())
        res = multifrontal_factor_gpu(dev, ap, symb, strategy=strategy)
        for f_gpu, f_cpu in zip(res.factors.fronts, ref.fronts):
            np.testing.assert_allclose(f_gpu.f11, f_cpu.f11, rtol=1e-10,
                                       atol=1e-12)
            np.testing.assert_array_equal(f_gpu.ipiv, f_cpu.ipiv)
            np.testing.assert_allclose(f_gpu.f12, f_cpu.f12, rtol=1e-10,
                                       atol=1e-12)
            np.testing.assert_allclose(f_gpu.f21, f_cpu.f21, rtol=1e-10,
                                       atol=1e-12)

    @pytest.mark.parametrize("gemm_mode", ["irr", "vendor", "hybrid"])
    def test_gemm_modes_agree(self, rng, gemm_mode):
        a = grid2d(12, 12)
        nd, ap, symb = prepare(a)
        dev = Device(A100())
        res = multifrontal_factor_gpu(dev, ap, symb, strategy="batched",
                                      gemm_mode=gemm_mode,
                                      hybrid_cutoff=16)
        b = np.random.default_rng(0).standard_normal(144)
        x = solve_via(res.factors, nd, a, b)
        assert np.abs(a @ x - b).max() < 1e-9

    def test_invalid_strategy(self, rng):
        a = grid2d(5, 5)
        nd, ap, symb = prepare(a)
        dev = Device(A100())
        with pytest.raises(ValueError, match="strategy"):
            multifrontal_factor_gpu(dev, ap, symb, strategy="warp")

    def test_invalid_gemm_mode(self, rng):
        a = grid2d(5, 5)
        nd, ap, symb = prepare(a)
        dev = Device(A100())
        with pytest.raises(ValueError, match="gemm_mode"):
            multifrontal_factor_gpu(dev, ap, symb, gemm_mode="tensor")

    def test_device_memory_returns_to_baseline(self, rng):
        a = grid2d(8, 8)
        nd, ap, symb = prepare(a)
        dev = Device(A100())
        before = dev.allocated_bytes
        multifrontal_factor_gpu(dev, ap, symb)
        assert dev.allocated_bytes == before

    def test_mi100_also_correct(self, rng):
        a = grid2d(10, 10)
        nd, ap, symb = prepare(a)
        dev = Device(MI100())
        res = multifrontal_factor_gpu(dev, ap, symb)
        b = rng.standard_normal(100)
        x = solve_via(res.factors, nd, a, b)
        assert np.abs(a @ x - b).max() < 1e-9


class TestTableIOrderings:
    def test_batched_fastest(self, rng):
        """Table I shape: the irr-batched backend beats the naive loop and
        the STRUMPACK model on a front-rich problem."""
        a = grid3d(6)
        nd, ap, symb = prepare(a, leaf_size=16)
        times = {}
        for strategy in ("batched", "looped", "strumpack"):
            dev = Device(A100())
            res = multifrontal_factor_gpu(dev, ap, symb, strategy=strategy)
            times[strategy] = res.elapsed
        assert times["batched"] < times["looped"]
        assert times["batched"] < times["strumpack"]

    def test_batched_reduces_launch_and_sync_counters(self, rng):
        """The Nsight observation: launch and synchronize totals shrink by
        an order of magnitude vs the STRUMPACK model."""
        a = grid3d(6)
        nd, ap, symb = prepare(a, leaf_size=16)
        dev_b, dev_s = Device(A100()), Device(A100())
        res_b = multifrontal_factor_gpu(dev_b, ap, symb, strategy="batched")
        res_s = multifrontal_factor_gpu(dev_s, ap, symb,
                                        strategy="strumpack")
        assert res_s.counters["launch_count"] > \
            5 * res_b.counters["launch_count"]
        assert res_s.counters["sync_count"] > res_b.counters["sync_count"]
