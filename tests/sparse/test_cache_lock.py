"""Concurrent solves on one SparseLU handle share one factor cache.

The serving layer multiplexes sessions: two `solve()` calls on the same
handle can land on different threads, yet they share a single
:class:`DeviceFactorCache`.  Without per-handle serialization, one
solve's LRU eviction interleaves with the other's upload and corrupts
the residency bookkeeping (or frees blocks out from under a running
sweep).  These tests storm a shared handle from many threads and assert
the solves stay bitwise-identical to sequential execution and the
device accounting stays exact.
"""

import threading

import numpy as np
import pytest

from repro.device import A100, Device
from repro.sparse import DeviceFactorCache, SolvePlan, SparseLU, \
    multifrontal_factor_cpu, nested_dissection, symbolic_analysis

from .util import grid2d

pytestmark = pytest.mark.serve

N_THREADS = 6
N_SOLVES = 5


def _run_threads(fn, n=N_THREADS):
    errors = []

    def wrap(tid):
        try:
            fn(tid)
        except BaseException as exc:  # noqa: BLE001 - reraised below
            errors.append(exc)

    threads = [threading.Thread(target=wrap, args=(t,)) for t in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]


def _factored_solver(budget_frac=None):
    """A factored handle + a budget that forces mid-solve evictions."""
    solver = SparseLU(grid2d(12, 12)).analyze().factor(backend="cpu")
    budget = None
    if budget_frac is not None:
        plan = SolvePlan(solver.factors)
        budget = max(1, plan.total_nbytes() // budget_frac)
    return solver, budget


class TestSharedHandleSolves:
    def test_concurrent_solves_match_sequential(self):
        # Budget holds roughly a third of the levels, so each sweep both
        # uploads and evicts — the interleaving a missing lock corrupts.
        solver, budget = _factored_solver(budget_frac=3)
        dev = Device(A100())
        rng = np.random.default_rng(7)
        rhs = [rng.standard_normal(144) for _ in range(N_THREADS)]
        want = [solver.solve(b, device=dev, memory_budget=budget)[0]
                for b in rhs]
        steady = dev.allocated_bytes  # resident levels stay on device

        def worker(tid):
            for _ in range(N_SOLVES):
                x, info = solver.solve(rhs[tid], device=dev,
                                       memory_budget=budget)
                # device never fell back to the host mid-storm
                assert not any(ev.action == "host-fallback"
                               for ev in info.recovery)
                assert np.array_equal(x, want[tid])

        _run_threads(worker)
        assert dev.allocated_bytes == steady
        solver.solve_cache.free()
        assert dev.allocated_bytes == 0

    def test_budget_churn_across_threads(self):
        # Threads alternate between two budgets on one handle: every
        # switch frees the old cache and builds a new one — the exact
        # window where an unsynchronized solve would sweep over freed
        # blocks.  Serialized, every solve still matches the host.
        solver, small = _factored_solver(budget_frac=4)
        dev = Device(A100())
        rng = np.random.default_rng(11)
        b = rng.standard_normal(144)
        want, _ = solver.solve(b)  # host reference

        def worker(tid):
            budget = small if tid % 2 else None
            for _ in range(N_SOLVES):
                x, _info = solver.solve(b, device=dev, memory_budget=budget)
                np.testing.assert_allclose(x, want, rtol=1e-12, atol=1e-14)

        _run_threads(worker)
        solver.solve_cache.free()
        assert dev.allocated_bytes == 0


class TestCacheExclusive:
    def _fixture(self):
        a = grid2d(9, 9)
        nd = nested_dissection(a, leaf_size=8)
        ap = a[nd.perm][:, nd.perm].tocsr()
        fac = multifrontal_factor_cpu(ap, symbolic_analysis(ap, nd))
        plan = SolvePlan(fac)
        dev = Device(A100())
        return dev, fac, plan

    def test_exclusive_is_reentrant_with_operations(self):
        dev, fac, plan = self._fixture()
        cache = DeviceFactorCache(dev, fac, plan,
                                  memory_budget=plan.total_nbytes() // 2)
        li = min(cache.resident_levels) if cache.resident_levels else 0
        with cache.exclusive():
            blocks, owned = cache.acquire(li, "fwd")
            if owned:
                blocks.free()
            cache.evict_lru()   # nests under exclusive() without deadlock
            cache.free()
        assert dev.allocated_bytes == 0

    def test_exclusive_blocks_second_holder(self):
        dev, fac, plan = self._fixture()
        cache = DeviceFactorCache(dev, fac, plan)
        order = []
        entered = threading.Event()
        release = threading.Event()

        def holder():
            with cache.exclusive():
                entered.set()
                release.wait(timeout=5)
                order.append("holder-exit")

        def contender():
            entered.wait(timeout=5)
            with cache.exclusive():
                order.append("contender-enter")

        t1 = threading.Thread(target=holder)
        t2 = threading.Thread(target=contender)
        t1.start()
        t2.start()
        entered.wait(timeout=5)
        release.set()
        t1.join(timeout=5)
        t2.join(timeout=5)
        assert order == ["holder-exit", "contender-enter"]
        cache.free()
