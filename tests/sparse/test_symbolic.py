"""Tests for the symbolic factorization."""

import numpy as np
import pytest

from repro.sparse.ordering import nested_dissection
from repro.sparse.symbolic import symbolic_analysis

from .util import grid2d, grid3d


def analyzed(a, leaf_size=8):
    nd = nested_dissection(a, leaf_size=leaf_size)
    ap = a[nd.perm][:, nd.perm].tocsr()
    return nd, ap, symbolic_analysis(ap, nd)


class TestFrontStructure:
    def test_postorder_children_before_parents(self):
        _, _, symb = analyzed(grid2d(10, 10))
        for fid, f in enumerate(symb.fronts):
            for c in f.children:
                assert c < fid
            if f.parent >= 0:
                assert f.parent > fid

    def test_root_has_no_update_set(self):
        _, _, symb = analyzed(grid2d(10, 10))
        root = symb.fronts[symb.root]
        assert root.parent == -1
        assert root.upd_size == 0

    def test_update_indices_above_subtree(self):
        _, _, symb = analyzed(grid2d(12, 12))
        for f in symb.fronts:
            assert np.all(f.upd >= f.node.hi)

    def test_update_contains_direct_connections(self):
        _, ap, symb = analyzed(grid2d(10, 10))
        pat = ((ap != 0) + (ap != 0).T).tocsr()
        for f in symb.fronts:
            for r in range(f.sep_begin, f.sep_end):
                for c in pat.indices[pat.indptr[r]:pat.indptr[r + 1]]:
                    if c >= f.node.hi:
                        assert c in set(f.upd.tolist())

    def test_child_updates_covered_by_parent(self):
        _, _, symb = analyzed(grid2d(12, 12))
        for f in symb.fronts:
            if f.parent < 0:
                continue
            p = symb.fronts[f.parent]
            pidx = set(p.indices.tolist())
            for g in f.upd:
                assert int(g) in pidx

    def test_front_order(self):
        _, _, symb = analyzed(grid2d(8, 8))
        for f in symb.fronts:
            assert f.order == f.sep_size + f.upd_size
            assert len(f.indices) == f.order

    def test_size_mismatch_rejected(self):
        a = grid2d(5, 5)
        nd = nested_dissection(a)
        with pytest.raises(ValueError, match="does not match"):
            symbolic_analysis(grid2d(6, 6), nd)


class TestLevels:
    def test_levels_deepest_first(self):
        _, _, symb = analyzed(grid2d(12, 12))
        levels = symb.levels()
        # last group is the root alone
        assert levels[-1] == [symb.root]
        # every front appears exactly once
        all_fids = sorted(f for lev in levels for f in lev)
        assert all_fids == list(range(len(symb.fronts)))

    def test_level_members_independent(self):
        # no front in a level is an ancestor of another in the same level
        _, _, symb = analyzed(grid2d(12, 12))
        for lev in symb.levels():
            for f in lev:
                anc = symb.fronts[f].parent
                while anc >= 0:
                    assert anc not in lev
                    anc = symb.fronts[anc].parent

    def test_fig13_shape(self):
        """Fig 13: toward the root, mean front size grows and batch size
        shrinks."""
        _, _, symb = analyzed(grid3d(7), 16)
        stats = symb.level_statistics()  # deepest level first
        assert stats[0]["batch_size"] > stats[-1]["batch_size"]
        assert stats[-1]["mean_size"] > stats[0]["mean_size"]
        assert stats[-1]["batch_size"] == 1

    def test_statistics_consistent(self):
        _, _, symb = analyzed(grid2d(10, 10))
        stats = symb.level_statistics()
        assert sum(s["batch_size"] for s in stats) == len(symb.fronts)
        for s in stats:
            assert s["min_size"] <= s["mean_size"] <= s["max_size"]


class TestCounts:
    def test_factor_nonzeros_positive(self):
        _, _, symb = analyzed(grid2d(10, 10))
        assert symb.factor_nonzeros() >= (grid2d(10, 10) != 0).sum()

    def test_factor_flops_positive_and_superlinear(self):
        _, _, s1 = analyzed(grid2d(8, 8))
        _, _, s2 = analyzed(grid2d(16, 16))
        assert s2.factor_flops() > 4 * s1.factor_flops()
