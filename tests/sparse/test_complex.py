"""Complex-valued systems through the full solver stack (A in C^{NxN},
the setting of §III-A)."""

import numpy as np
import pytest
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.batched import IrrBatch, irr_getrf, irr_trsm, lu_reconstruct
from repro.device import A100, Device
from repro.sparse import SparseLU

from .util import grid2d


def complex_system(n_grid, seed=0):
    rng = np.random.default_rng(seed)
    K = grid2d(n_grid, n_grid, seed=seed)
    n = K.shape[0]
    M = sp.diags(1.0 + rng.random(n)).tocsr()
    A = (K - (3.0 + 0.7j) * M).tocsr()
    b = rng.standard_normal(n) + 1j * rng.standard_normal(n)
    return A, b


class TestComplexBatched:
    def test_complex_lu_reconstruction(self, a100, rng):
        mats = [(rng.standard_normal((n, n)) +
                 1j * rng.standard_normal((n, n)))
                for n in (1, 9, 40, 77)]
        b = IrrBatch.from_host(a100, [m.copy() for m in mats])
        assert b.dtype == np.complex128
        assert b.peak_scale == 0.25
        piv = irr_getrf(a100, b)
        for i, a in enumerate(mats):
            rec = lu_reconstruct(b.matrix(i), piv[i])
            assert np.abs(rec - a).max() < 1e-12 * max(1, np.abs(a).max())

    def test_complex_pivoting_by_magnitude(self, a100):
        a = np.array([[1.0 + 0j, 2.0], [0.0 + 5.0j, 3.0]])
        b = IrrBatch.from_host(a100, [a])
        piv = irr_getrf(a100, b)
        assert piv[0][0] == 1  # |5i| > |1|

    def test_complex_trsm(self, a100, rng):
        n = 48
        t = np.tril(rng.standard_normal((n, n)) +
                    1j * rng.standard_normal((n, n)))
        t += n * np.eye(n)
        bmat = rng.standard_normal((n, 3)) + 1j * rng.standard_normal((n, 3))
        T = IrrBatch.from_host(a100, [t])
        B = IrrBatch.from_host(a100, [bmat.copy()])
        irr_trsm(a100, "L", "L", "N", "N", n, 3, 1.0, T, (0, 0), B, (0, 0))
        res = np.abs(np.tril(t) @ B.to_host()[0] - bmat).max()
        assert res < 1e-12

    def test_complex64_supported(self, a100, rng):
        a = (rng.standard_normal((8, 8)) +
             1j * rng.standard_normal((8, 8))).astype(np.complex64)
        b = IrrBatch.from_host(a100, [a])
        assert b.dtype == np.complex64
        assert b.peak_scale == 0.5


class TestComplexSparse:
    @pytest.mark.parametrize("backend", ["cpu", "batched"])
    def test_solve_matches_scipy(self, rng, backend):
        A, b = complex_system(9)
        dev = None if backend == "cpu" else Device(A100())
        s = SparseLU(A).analyze().factor(backend=backend, device=dev)
        x, info = s.solve(b)
        assert info.final_residual < 1e-13
        ref = spla.spsolve(A.tocsc(), b)
        np.testing.assert_allclose(x, ref, rtol=1e-8)

    def test_complex_with_mc64(self, rng):
        A, b = complex_system(8, seed=3)
        s = SparseLU(A, use_mc64=True).analyze().factor()
        x, info = s.solve(b)
        assert info.final_residual < 1e-13

    def test_refinement_on_complex(self, rng):
        A, b = complex_system(10)
        s = SparseLU(A).factor()
        x, info = s.solve(b, refine_steps=1)
        assert info.residuals[-1] < 5e-15


class TestLossyMaxwell:
    def test_operator_complex_symmetric(self):
        from repro.fem import HexMesh, MaxwellProblem
        prob = MaxwellProblem.build(HexMesh(4, 4, 4), omega=8.0, sigma=0.1)
        A = prob.operator
        assert np.iscomplexobj(A.data)
        assert abs(A - A.T).max() < 1e-12       # complex symmetric
        assert abs(A - A.conj().T).max() > 0.0  # but not Hermitian

    def test_lossy_system_solves(self, rng):
        from repro.device import A100, Device
        from repro.fem import HexMesh, MaxwellProblem
        prob = MaxwellProblem.build(HexMesh(5, 5, 5), omega=8.0, sigma=0.2)
        A, b = prob.reduced_system()
        s = SparseLU(A).analyze()
        s.factor(backend="batched", device=Device(A100()))
        x, info = s.solve(b, refine_steps=1)
        assert info.residuals[-1] < 1e-13

    def test_sigma_zero_stays_real(self):
        from repro.fem import HexMesh, MaxwellProblem
        prob = MaxwellProblem.build(HexMesh(3, 3, 3), omega=4.0, sigma=0.0)
        assert not np.iscomplexobj(prob.operator.data)
