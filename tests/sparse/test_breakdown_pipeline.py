"""End-to-end pivot-breakdown semantics of the multifrontal pipeline.

Factorization-time detection/recovery, the per-front ``FactorReport``,
solve-phase refusals (plan, device cache, host sweep), escalated
iterative refinement, and the typed ``FactorizationError`` surface.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.batched.panel import DEFAULT_REPLACE_SCALE
from repro.device import A100, Device
from repro.errors import FactorizationError
from repro.sparse import FactorReport, SparseLU, multifrontal_factor_cpu
from repro.sparse.numeric.solve_plan import DeviceFactorCache, SolvePlan
from repro.sparse.numeric.triangular import multifrontal_solve
from repro.sparse.solver import ESCALATED_REFINE_STEPS

from .util import grid2d


def singular_grid(k: int = 40) -> sp.csr_matrix:
    """Grid operator with row+column k zeroed — exactly singular, with a
    guaranteed all-zero pivot column in the front that owns k."""
    a = grid2d(9, 9).tolil()
    a[k, :] = 0.0
    a[:, k] = 0.0
    return sp.csr_matrix(a)


class TestFactorBreakdown:
    def test_cpu_factor_raises_typed_error_with_report(self):
        s = SparseLU(singular_grid()).analyze()
        with pytest.raises(FactorizationError, match="pivot breakdown") \
                as exc:
            s.factor()
        rep = exc.value.report
        assert isinstance(rep, FactorReport)
        assert not rep.ok and rep.n_failed >= 1
        assert len(rep.failed_fronts()) == rep.n_failed
        # the report is kept on the solver even though factor() failed
        assert s.factor_report is rep
        with pytest.raises(RuntimeError, match="factor"):
            s.solve(np.ones(81))

    def test_error_is_linalgerror_subclass(self):
        # back-compat: callers catching np.linalg.LinAlgError still work
        with pytest.raises(np.linalg.LinAlgError):
            SparseLU(singular_grid()).factor()

    @pytest.mark.parametrize("backend", ["batched", "looped", "strumpack",
                                         "superlu"])
    def test_gpu_backends_raise_with_per_front_status(self, backend):
        s = SparseLU(singular_grid()).analyze()
        with pytest.raises(FactorizationError) as exc:
            s.factor(backend=backend, device=Device(A100()))
        rep = exc.value.report
        assert rep is not None and not rep.ok
        assert np.all(rep.info[rep.failed_fronts()] > 0)

    def test_report_mode_returns_quarantined_factors(self):
        factors = multifrontal_factor_cpu(
            *_permuted(singular_grid()), breakdown="report")
        assert not factors.report.ok
        # quarantined fronts stay finite — no NaN/Inf anywhere
        for f in factors.fronts:
            for blk in (f.f11, f.f12, f.f21):
                assert np.all(np.isfinite(blk))

    def test_report_levels_and_sizes_match_symbolic(self):
        s = SparseLU(grid2d(8, 8)).factor()
        rep = s.factor_report
        assert rep.ok and rep.n_fronts == len(s.symb.fronts)
        assert np.array_equal(rep.sep_size,
                              [f.sep_size for f in s.symb.fronts])
        assert rep.max_growth >= 1.0
        assert "clean" in rep.summary()


def _permuted(a):
    s = SparseLU(a).analyze()
    return s.a_perm, s.symb


class TestStaticPivotRecovery:
    def test_factor_succeeds_with_replacement(self):
        s = SparseLU(singular_grid()).factor(static_pivot=True)
        rep = s.factor_report
        assert rep.ok and rep.total_replaced >= 1
        assert rep.static_pivot
        assert rep.perturbed_fronts().size >= 1

    def test_singular_system_raises_at_solve_not_nan(self):
        s = SparseLU(singular_grid()).factor(static_pivot=True)
        b = np.random.default_rng(3).standard_normal(81)
        with pytest.raises(FactorizationError, match="stagnated") as exc:
            s.solve(b)
        assert exc.value.report is s.factor_report

    def test_recoverable_pivot_escalates_and_converges(self):
        n = 30
        d = np.ones(n)
        d[7] = DEFAULT_REPLACE_SCALE * 1.001
        a = sp.csr_matrix(sp.diags(d))
        b = np.random.default_rng(0).standard_normal(n)
        s = SparseLU(a).factor(pivot_tol=1e-6, static_pivot=True)
        assert s.factor_report.total_replaced == 1
        x, info = s.solve(b, refine_steps=1)
        assert info.escalated
        assert 1 < len(info.residuals) <= ESCALATED_REFINE_STEPS + 1
        assert info.final_residual <= 1e-12
        np.testing.assert_allclose(x, b / d, rtol=1e-10)

    def test_unperturbed_solve_runs_exact_step_count(self, rng):
        # back-compat: no escalation when nothing was replaced
        s = SparseLU(grid2d(8, 8)).factor(static_pivot=True)
        _, info = s.solve(rng.standard_normal(64), refine_steps=2)
        assert not info.escalated
        assert len(info.residuals) == 3
        assert info.report is s.factor_report


class TestSolvePhaseRefusals:
    def _broken_factors(self):
        return multifrontal_factor_cpu(*_permuted(singular_grid()),
                                       breakdown="report")

    def test_host_sweep_refuses(self):
        with pytest.raises(FactorizationError, match="refusing to"):
            multifrontal_solve(self._broken_factors(), np.ones(81))

    def test_solve_plan_refuses(self):
        with pytest.raises(FactorizationError, match="solve plan"):
            SolvePlan(self._broken_factors())

    def test_device_cache_refuses(self):
        factors = self._broken_factors()
        with pytest.raises(FactorizationError, match="cache"):
            DeviceFactorCache(Device(A100()), factors, None)

    def test_failed_refactor_invalidates_cache(self, rng):
        # Satellite contract: after a failed re-factorization the old
        # plan/cache must not keep serving solves from stale factors.
        a = grid2d(8, 8)
        dev = Device(A100())
        s = SparseLU(a).factor()
        s.solve(rng.standard_normal(64), device=dev)
        assert dev.allocated_bytes > 0
        with pytest.raises(FactorizationError):
            s.factor(pivot_tol=10.0)  # every pivot below 10·max|A|
        assert s.solve_cache is None and s.solve_plan is None
        assert dev.allocated_bytes == 0
        with pytest.raises(RuntimeError, match="factor"):
            s.solve(rng.standard_normal(64), device=dev)
        # a clean re-factor brings the pipeline back
        s.factor()
        _, info = s.solve(rng.standard_normal(64), device=dev)
        assert info.final_residual < 1e-13


class TestRefineStepsValidation:
    def test_negative_refine_steps_rejected(self, rng):
        s = SparseLU(grid2d(5, 5)).factor()
        with pytest.raises(ValueError, match="refine_steps"):
            s.solve(rng.standard_normal(25), refine_steps=-1)

    def test_zero_refine_steps_records_initial_residual(self, rng):
        s = SparseLU(grid2d(5, 5)).factor()
        _, info = s.solve(rng.standard_normal(25), refine_steps=0)
        assert len(info.residuals) == 1
        assert np.isfinite(info.final_residual)
