"""Resource-exhaustion recovery: budget validation, OOM ladders, typed
failures, leak regressions, and bitwise identity of recovered runs."""

import dataclasses

import numpy as np
import pytest

from repro.device import (A100, PERSISTENT, Device, DeviceOutOfMemory,
                          FaultPlan, FaultRule)
from repro.errors import ResourceExhausted, TransferError
from repro.recovery import RecoveryLog
from repro.sparse import (DeviceFactorCache, SolvePlan, SparseLU,
                          multifrontal_factor_cpu, multifrontal_factor_gpu,
                          multifrontal_solve_gpu, nested_dissection,
                          symbolic_analysis)
from repro.sparse.numeric.gpu_factor import plan_traversals

from .util import grid2d, grid3d


def prepare(a, leaf_size=16):
    nd = nested_dissection(a, leaf_size=leaf_size)
    ap = a[nd.perm][:, nd.perm].tocsr()
    return nd, ap, symbolic_analysis(ap, nd)


def front_floor(symb):
    """Bytes of the largest single front — the shrink ladder's floor."""
    return max(8 * f.order ** 2 for f in symb.fronts)


def assert_factors_equal(ref, res):
    for f_ref, f_res in zip(ref.fronts, res.fronts):
        np.testing.assert_array_equal(f_ref.f11, f_res.f11)
        np.testing.assert_array_equal(f_ref.f12, f_res.f12)
        np.testing.assert_array_equal(f_ref.f21, f_res.f21)
        np.testing.assert_array_equal(f_ref.ipiv, f_res.ipiv)


class TestBudgetValidation:
    """One ValueError, same message, at every public budget entry point."""

    BAD = [0, -4, 2.5, True, "1GB"]

    @pytest.mark.parametrize("bad", BAD)
    def test_factor_rejects_bad_budget(self, bad):
        _, ap, symb = prepare(grid2d(6, 6))
        with pytest.raises(ValueError, match="positive integer"):
            multifrontal_factor_gpu(Device(A100()), ap, symb,
                                    memory_budget=bad)

    @pytest.mark.parametrize("bad", BAD)
    def test_cache_rejects_bad_budget(self, bad):
        nd, ap, symb = prepare(grid2d(6, 6))
        fac = multifrontal_factor_cpu(ap, symb)
        plan = SolvePlan(fac)
        with pytest.raises(ValueError, match="positive integer"):
            DeviceFactorCache(Device(A100()), fac, plan, memory_budget=bad)

    @pytest.mark.parametrize("bad", BAD)
    def test_solver_rejects_bad_budget(self, bad, rng):
        s = SparseLU(grid2d(6, 6)).factor()
        with pytest.raises(ValueError, match="positive integer"):
            s.solve(rng.standard_normal(36), device=Device(A100()),
                    memory_budget=bad)

    def test_none_budget_still_means_unbounded(self, rng):
        _, ap, symb = prepare(grid2d(6, 6))
        res = multifrontal_factor_gpu(Device(A100()), ap, symb,
                                      memory_budget=None)
        assert res.counters["traversals"] == 1


class TestOutOfCoreEdgeCases:
    def test_floor_budget_makes_single_front_chunks(self):
        _, _, symb = prepare(grid2d(10, 10))
        chunks = plan_traversals(symb, front_floor(symb))
        assert any(len(c) == 1 for c in chunks)
        assert [f for c in chunks for f in c] == list(range(len(symb.fronts)))

    def test_floor_budget_factorization_bitwise_identical(self):
        _, ap, symb = prepare(grid2d(10, 10))
        ref = multifrontal_factor_gpu(Device(A100()), ap, symb)
        res = multifrontal_factor_gpu(Device(A100()), ap, symb,
                                      memory_budget=front_floor(symb))
        assert res.counters["traversals"] > 1
        assert_factors_equal(ref.factors, res.factors)

    def test_static_infeasibility_raises_eagerly(self):
        # "largest front needs X bytes" is a contract violation of the
        # requested budget — it must raise even with host_fallback on,
        # and before any device work happens
        _, ap, symb = prepare(grid2d(10, 10))
        dev = Device(A100())
        with pytest.raises(DeviceOutOfMemory, match="largest front"):
            multifrontal_factor_gpu(dev, ap, symb,
                                    memory_budget=front_floor(symb) - 8,
                                    host_fallback=True)
        assert dev.allocated_bytes == 0
        assert dev.profiler.launch_count == 0


class TestLeakRegression:
    def test_no_leak_on_success(self):
        _, ap, symb = prepare(grid2d(10, 10))
        dev = Device(A100())
        multifrontal_factor_gpu(dev, ap, symb,
                                memory_budget=front_floor(symb))
        assert dev.allocated_bytes == 0

    def test_no_leak_on_unrecoverable_failure(self):
        _, ap, symb = prepare(grid2d(8, 8))
        dev = Device(A100())
        plan = FaultPlan([FaultRule("alloc", at=0, times=PERSISTENT)])
        with dev.fault_scope(plan):
            with pytest.raises(ResourceExhausted):
                multifrontal_factor_gpu(dev, ap, symb, host_fallback=False)
        assert dev.allocated_bytes == 0

    def test_no_leak_on_transfer_failure(self, rng):
        # d2h corruption hits the factor download (flush_chunk)
        _, ap, symb = prepare(grid2d(8, 8))
        dev = Device(A100())
        plan = FaultPlan([FaultRule("d2h", at=0, times=PERSISTENT)])
        with dev.fault_scope(plan):
            with pytest.raises(TransferError):
                multifrontal_factor_gpu(dev, ap, symb, host_fallback=False)
        assert dev.allocated_bytes == 0

    def test_no_leak_after_solve_failure(self, rng):
        a = grid2d(9, 9)
        nd, ap, symb = prepare(a, leaf_size=8)
        fac = multifrontal_factor_cpu(ap, symb)
        dev = Device(A100())
        plan = FaultPlan([FaultRule("alloc", at=0, times=PERSISTENT)])
        with dev.fault_scope(plan):
            with pytest.raises(ResourceExhausted):
                multifrontal_solve_gpu(dev, fac, rng.standard_normal(81))
        assert dev.allocated_bytes == 0


class TestRecoveredRunsBitwiseIdentical:
    """The acceptance bar: a recovered run is indistinguishable (bitwise)
    from a fault-free run, and its RecoveryLog enumerates every action."""

    def _reference(self, ap, symb):
        return multifrontal_factor_gpu(Device(A100()), ap, symb)

    def test_transient_alloc_failure_recovered(self):
        _, ap, symb = prepare(grid2d(10, 10))
        ref = self._reference(ap, symb)
        dev = Device(A100())
        with dev.fault_scope(FaultPlan([FaultRule("alloc", at=5)])) as inj:
            res = multifrontal_factor_gpu(dev, ap, symb)
        assert inj.n_injected == 1
        assert_factors_equal(ref.factors, res.factors)
        assert "alloc-retry" in res.report.recovery.actions
        assert dev.allocated_bytes == 0

    def test_transient_launch_failure_recovered(self):
        _, ap, symb = prepare(grid2d(10, 10))
        ref = self._reference(ap, symb)
        dev = Device(A100())
        with dev.fault_scope(FaultPlan([FaultRule("launch", at=3)])) as inj:
            res = multifrontal_factor_gpu(dev, ap, symb)
        assert inj.n_injected == 1
        assert_factors_equal(ref.factors, res.factors)
        assert "launch-retry" in res.report.recovery.actions

    def test_transient_d2h_corruption_recovered(self):
        _, ap, symb = prepare(grid2d(10, 10))
        ref = self._reference(ap, symb)
        dev = Device(A100())
        with dev.fault_scope(FaultPlan([FaultRule("d2h", at=1)])) as inj:
            res = multifrontal_factor_gpu(dev, ap, symb)
        assert inj.n_injected == 1
        assert_factors_equal(ref.factors, res.factors)
        assert "transfer-retry" in res.report.recovery.actions

    def test_transient_h2d_corruption_recovered_while_streaming(self):
        # H2D transfers only exist in out-of-core mode (cross-traversal
        # Schur re-uploads); corrupt the first one
        _, ap, symb = prepare(grid2d(10, 10))
        budget = front_floor(symb) * 2
        ref = multifrontal_factor_gpu(Device(A100()), ap, symb,
                                      memory_budget=budget)
        dev = Device(A100())
        with dev.fault_scope(FaultPlan([FaultRule("h2d", at=0)])) as inj:
            res = multifrontal_factor_gpu(dev, ap, symb,
                                          memory_budget=budget)
        assert inj.n_injected == 1
        assert_factors_equal(ref.factors, res.factors)
        assert "transfer-retry" in res.report.recovery.actions

    def test_combined_schedule_recovered(self, rng):
        a = grid2d(11, 9)
        nd, ap, symb = prepare(a, leaf_size=8)
        ref = self._reference(ap, symb)
        dev = Device(A100())
        plan = FaultPlan([FaultRule("alloc", at=4),
                          FaultRule("launch", at=2),
                          FaultRule("h2d", at=3),
                          FaultRule("d2h", at=0)], seed=11)
        with dev.fault_scope(plan) as inj:
            res = multifrontal_factor_gpu(
                dev, ap, symb, memory_budget=front_floor(symb) * 2)
        assert inj.n_injected >= 4
        assert_factors_equal(ref.factors, res.factors)
        rec = res.report.recovery
        assert rec.count("launch-retry") >= 1
        assert rec.count("transfer-retry") >= 2
        assert dev.allocated_bytes == 0

    def test_recovery_log_scoped_per_call(self):
        # two factorizations on one device: each report carries only its
        # own slice of the shared canonical log
        _, ap, symb = prepare(grid2d(8, 8))
        dev = Device(A100())
        with dev.fault_scope(FaultPlan([FaultRule("launch", at=1)])):
            r1 = multifrontal_factor_gpu(dev, ap, symb)
        r2 = multifrontal_factor_gpu(dev, ap, symb)
        assert r1.report.recovery.count("launch-retry") == 1
        assert len(r2.report.recovery) == 0

    def test_fault_free_run_has_empty_recovery(self):
        _, ap, symb = prepare(grid2d(8, 8))
        res = multifrontal_factor_gpu(Device(A100()), ap, symb)
        assert isinstance(res.report.recovery, RecoveryLog)
        assert not res.report.recovery
        assert res.report.recovery.summary() == "no recovery actions"


class TestExhaustionAndFallback:
    def test_exhausted_ladder_raises_typed_error_with_log(self):
        _, ap, symb = prepare(grid2d(8, 8))
        dev = Device(A100())
        plan = FaultPlan([FaultRule("alloc", at=0, times=PERSISTENT)])
        with dev.fault_scope(plan):
            with pytest.raises(ResourceExhausted) as ei:
                multifrontal_factor_gpu(dev, ap, symb, host_fallback=False)
        assert isinstance(ei.value.log, RecoveryLog)
        assert ei.value.log.count("chunk-shrink") >= 1
        assert isinstance(ei.value.__cause__, DeviceOutOfMemory)
        # never a bare MemoryError at the public boundary
        assert not isinstance(ei.value, MemoryError)

    def test_host_fallback_produces_working_factors(self, rng):
        a = grid2d(9, 9)
        nd, ap, symb = prepare(a, leaf_size=8)
        dev = Device(A100())
        plan = FaultPlan([FaultRule("alloc", at=0, times=PERSISTENT)])
        with dev.fault_scope(plan):
            res = multifrontal_factor_gpu(dev, ap, symb)   # default fallback
        assert res.counters.get("host_fallback") == 1
        assert "host-fallback" in res.report.recovery.actions
        cpu = multifrontal_factor_cpu(ap, symb)
        assert_factors_equal(cpu, res.factors)
        assert dev.allocated_bytes == 0

    def test_persistent_transfer_corruption_is_typed(self):
        _, ap, symb = prepare(grid2d(10, 10))
        dev = Device(A100())
        plan = FaultPlan([FaultRule("h2d", at=0, times=PERSISTENT)])
        with dev.fault_scope(plan):
            with pytest.raises(TransferError) as ei:
                multifrontal_factor_gpu(
                    dev, ap, symb, memory_budget=front_floor(symb) * 2,
                    host_fallback=False)
        assert ei.value.direction == "h2d"
        assert ei.value.attempts == 4
        assert dev.allocated_bytes == 0

    def test_solver_falls_back_to_host_path(self, rng):
        a = grid2d(9, 9)
        b = rng.standard_normal(81)
        s = SparseLU(a).factor()
        dev = Device(A100())
        plan = FaultPlan([FaultRule("alloc", at=0, times=PERSISTENT)])
        with dev.fault_scope(plan):
            x, info = s.solve(b, device=dev)
        assert info.final_residual < 1e-12
        assert "host-fallback" in info.recovery.actions
        x_ref, _ = s.solve(b)
        np.testing.assert_allclose(x, x_ref, rtol=1e-12, atol=1e-14)
        assert dev.allocated_bytes == 0

    def test_solver_survives_persistent_transfer_corruption(self, rng):
        a = grid2d(8, 8)
        b = rng.standard_normal(64)
        s = SparseLU(a).factor()
        dev = Device(A100())
        plan = FaultPlan([FaultRule("h2d", at=0, times=PERSISTENT)])
        with dev.fault_scope(plan):
            x, info = s.solve(b, device=dev)
        assert info.final_residual < 1e-12
        assert "host-fallback" in info.recovery.actions

    def test_clean_solve_attaches_empty_recovery(self, rng):
        s = SparseLU(grid2d(8, 8)).factor()
        x, info = s.solve(np.ones(64), device=Device(A100()))
        assert isinstance(info.recovery, RecoveryLog)
        assert not info.recovery

    def test_host_only_solve_has_no_recovery(self, rng):
        s = SparseLU(grid2d(8, 8)).factor()
        x, info = s.solve(np.ones(64))
        assert info.recovery is None


class TestCacheEviction:
    def _warm_cache(self):
        a = grid2d(11, 11)
        nd, ap, symb = prepare(a, leaf_size=8)
        fac = multifrontal_factor_cpu(ap, symb)
        plan = SolvePlan(fac)
        dev = Device(A100())
        cache = DeviceFactorCache(dev, fac, plan)
        return dev, cache, plan

    def test_evict_lru_frees_least_recent(self):
        dev, cache, plan = self._warm_cache()
        assert len(plan.levels) >= 3
        cache.acquire(0, "fwd")
        cache.acquire(1, "fwd")
        before = dev.allocated_bytes
        li = cache.evict_lru(exclude=1)
        assert li == 0
        assert 0 not in cache.resident_levels
        assert dev.allocated_bytes < before
        assert cache.evictions == 1
        assert dev.recovery_log.count("cache-evict") == 1

    def test_evict_empty_cache_returns_none(self):
        dev, cache, plan = self._warm_cache()
        assert cache.evict_lru() is None
        assert cache.evictions == 0

    def test_oom_during_acquire_spills_and_retries(self):
        dev, cache, plan = self._warm_cache()
        cache.acquire(0, "fwd")
        cache.acquire(1, "fwd")
        last = len(plan.levels) - 1
        with dev.fault_scope(FaultPlan([FaultRule("alloc", at=0)])):
            blocks, owned = cache.acquire(last, "fwd")
        assert not owned
        assert cache.evictions == 1
        assert 0 not in cache.resident_levels       # LRU victim
        assert last in cache.resident_levels
        assert dev.recovery_log.count("cache-evict") == 1

    def test_evicted_level_streams_again(self):
        dev, cache, plan = self._warm_cache()
        cache.acquire(0, "fwd")
        cache.evict_lru()
        blocks, owned = cache.acquire(0, "fwd")
        assert owned                    # streamed now: caller frees
        blocks.free()
        cache.free()
        assert dev.allocated_bytes == 0

    def test_solve_correct_after_eviction(self, rng):
        a = grid2d(11, 11)
        nd, ap, symb = prepare(a, leaf_size=8)
        fac = multifrontal_factor_cpu(ap, symb)
        b = rng.standard_normal(121)
        ref = multifrontal_solve_gpu(Device(A100()), fac, b)
        plan = SolvePlan(fac)
        dev = Device(A100())
        cache = DeviceFactorCache(dev, fac, plan)
        cache.acquire(0, "fwd")     # give the LRU policy a victim
        # first f21-stack upload of the solve hits a transient OOM
        fault = FaultRule("alloc", at=1, match="pack_to_device")
        with dev.fault_scope(FaultPlan([fault])):
            res = multifrontal_solve_gpu(dev, fac, b, plan=plan, cache=cache)
        assert cache.evictions == 1
        np.testing.assert_array_equal(res.x, ref.x)
        assert "cache-evict" in res.recovery.actions
