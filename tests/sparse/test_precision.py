"""Mixed-precision SparseLU: FP32 factors with FP64 iterative refinement.

The contract under test (§ mixed precision): ``factor(precision="fp32")``
casts the permuted matrix once and runs every backend's kernels in the
working dtype; ``solve`` always refines in FP64 against the *original*
matrix until the backward error meets ``REFINE_TARGET``, escalating to
bounded GMRES-IR on stagnation and finally re-factoring in FP64 — so a
well-conditioned system gets FP64 answers from half-priced factors, and
a pathological one transparently lands on exactly the answer the native
FP64 path gives.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.device import A100, Device
from repro.errors import FactorizationError, PrecisionFallback
from repro.sparse import SparseLU
from repro.sparse.solver import REFINE_TARGET, _REDUCED_OF

from .util import grid2d

pytestmark = pytest.mark.precision

GPU_BACKENDS = ["batched", "looped", "strumpack", "superlu"]


def laplacian_power(n, k=2):
    """1-D Laplacian raised to the k-th power: condition number grows
    like n**(2k), which defeats FP32 factors (κ ≳ 1/eps32) long before
    it troubles FP64."""
    L = sp.diags([-1.0, 2.0, -1.0], [-1, 0, 1], shape=(n, n),
                 format="csr")
    a = L
    for _ in range(k - 1):
        a = a @ L
    return sp.csr_matrix(a)


def underflow_grid(n=6):
    """Well-conditioned operator scaled below the FP32 normal range:
    every pivot underflows the working precision's breakdown threshold,
    while the FP64 factorization is perfectly healthy."""
    return sp.csr_matrix(grid2d(n, n) * 1e-40)


class TestReducedFactors:
    def test_cpu_factors_are_float32(self, rng):
        s = SparseLU(grid2d(10, 10)).factor(precision="fp32")
        assert s.precision == "fp32"
        for f in s.factors.fronts:
            assert f.f11.dtype == np.float32

    @pytest.mark.parametrize("backend", GPU_BACKENDS)
    def test_gpu_backends_factor_reduced(self, rng, backend):
        a = grid2d(10, 10)
        s = SparseLU(a).analyze()
        s.factor(backend=backend, device=Device(A100()),
                 precision="fp32")
        assert s.precision == "fp32"
        for f in s.factors.fronts:
            assert f.f11.dtype == np.float32
        x, info = s.solve(rng.standard_normal(100))
        assert info.precision == "fp32" and not info.fallback
        assert info.final_residual <= REFINE_TARGET
        assert x.dtype == np.float64

    def test_complex_reduces_to_complex64(self, rng):
        a = grid2d(8, 8)
        a = sp.csr_matrix(a + 1j * sp.diags(0.3 * np.ones(64)))
        assert a.dtype == np.complex128
        s = SparseLU(a).factor(precision="fp32")
        for f in s.factors.fronts:
            assert f.f11.dtype == np.complex64
        b = rng.standard_normal(64) + 1j * rng.standard_normal(64)
        x, info = s.solve(b)
        assert x.dtype == np.complex128
        assert info.precision == "fp32"
        assert info.final_residual <= REFINE_TARGET

    def test_fp64_spelling_is_native_path(self, rng):
        a, b = grid2d(8, 8), rng.standard_normal(64)
        ref, _ = SparseLU(a).factor().solve(b)
        x, info = SparseLU(a).factor(precision="fp64").solve(b)
        np.testing.assert_array_equal(x, ref)
        assert info.precision == "fp64" and not info.fallback

    def test_unknown_precision_rejected(self):
        with pytest.raises(ValueError, match="unknown precision"):
            SparseLU(grid2d(4, 4)).factor(precision="fp16")

    def test_reduced_dtype_map(self):
        assert _REDUCED_OF[np.dtype(np.float64)] == np.float32
        assert _REDUCED_OF[np.dtype(np.complex128)] == np.complex64


class TestRefinement:
    def test_refines_to_fp64_target(self, rng):
        a = grid2d(12, 12)
        s = SparseLU(a).factor(precision="fp32")
        b = rng.standard_normal(144)
        x, info = s.solve(b)
        assert info.final_residual <= REFINE_TARGET
        # the first sweep is genuinely single precision: its backward
        # error sits far above the final one
        assert info.residuals[0] > 10 * info.residuals[-1]
        assert not info.fallback and info.gmres_cycles == 0

    def test_matches_fp64_solution_to_fp64_accuracy(self, rng):
        a = grid2d(12, 12)
        b = rng.standard_normal(144)
        ref, _ = SparseLU(a).factor().solve(b)
        x, _ = SparseLU(a).factor(precision="fp32").solve(b)
        scale = np.abs(ref).max()
        assert np.abs(x - ref).max() / scale < 1e-10

    def test_multiple_rhs(self, rng):
        a = grid2d(9, 9)
        s = SparseLU(a).factor(precision="fp32")
        B = rng.standard_normal((81, 3))
        X, info = s.solve(B)
        assert X.shape == (81, 3)
        assert info.final_residual <= REFINE_TARGET

    def test_device_solve_refines(self, rng):
        dev = Device(A100())
        s = SparseLU(grid2d(10, 10)).analyze()
        s.factor(backend="batched", device=dev, precision="fp32")
        x, info = s.solve(rng.standard_normal(100), device=dev)
        assert info.precision == "fp32"
        assert info.final_residual <= REFINE_TARGET
        assert info.recovery is not None       # device solve slice

    def test_refactor_restores_native_precision(self, rng):
        a, b = grid2d(8, 8), rng.standard_normal(64)
        s = SparseLU(a).factor(precision="fp32")
        s.factor()                              # back to the default
        assert s.precision == "fp64"
        x, info = s.solve(b)
        ref, _ = SparseLU(a).factor().solve(b)
        np.testing.assert_array_equal(x, ref)


class TestEscalationAndFallback:
    def test_ill_conditioned_takes_fp64_fallback(self, rng):
        a = laplacian_power(120, 2)            # κ ~ 1e9: defeats FP32
        b = rng.standard_normal(120)
        s = SparseLU(a).factor(precision="fp32")
        x, info = s.solve(b)
        assert info.escalated                  # stagnation escalated
        assert info.fallback and info.precision == "fp64"
        assert s.precision == "fp64"           # handle healed in place
        assert info.recovery is not None
        assert any(e.action == "precision-fallback"
                   for e in info.recovery.events)
        # the fallback IS the native FP64 path — bit for bit
        ref, ref_info = SparseLU(a).factor().solve(b)
        np.testing.assert_array_equal(x, ref)
        assert info.final_residual == ref_info.final_residual

    def test_gmres_attempted_before_fallback(self, rng):
        a = laplacian_power(120, 2)
        s = SparseLU(a).factor(precision="fp32")
        _, info = s.solve(rng.standard_normal(120))
        assert info.gmres_cycles >= 1

    def test_strict_mode_raises_typed_error(self, rng):
        a = laplacian_power(120, 2)
        s = SparseLU(a).factor(precision="fp32",
                               precision_fallback=False)
        with pytest.raises(PrecisionFallback) as exc:
            s.solve(rng.standard_normal(120))
        err = exc.value
        assert err.target == REFINE_TARGET
        assert err.achieved > err.target
        assert isinstance(err, FactorizationError)

    def test_factor_breakdown_refactors_in_fp64(self, rng):
        a = underflow_grid(6)
        s = SparseLU(a).factor(precision="fp32")
        assert s.precision == "fp64"           # silently re-factored
        assert s.factor_report is not None and s.factor_report.ok
        rec = s.factor_report.recovery
        assert rec is not None and any(
            e.action == "precision-fallback" for e in rec.events)
        x, info = s.solve(rng.standard_normal(36))
        assert info.final_residual < 1e-12

    def test_factor_breakdown_strict_raises(self):
        with pytest.raises(PrecisionFallback,
                           match="precision_fallback=False"):
            SparseLU(underflow_grid(6)).factor(
                precision="fp32", precision_fallback=False)

    def test_device_factor_breakdown_logs_on_device(self):
        dev = Device(A100())
        s = SparseLU(underflow_grid(6)).analyze()
        s.factor(backend="batched", device=dev, precision="fp32")
        assert s.precision == "fp64"
        assert any(e.action == "precision-fallback"
                   for e in dev.recovery_log.events)
