"""Tests for the batched GPU solve phase."""

import numpy as np
import pytest

from repro.device import A100, Device
from repro.sparse import SparseLU, multifrontal_factor_cpu, \
    multifrontal_solve, multifrontal_solve_gpu, nested_dissection, \
    symbolic_analysis

from .util import grid2d, grid3d


def factored(a, leaf_size=8):
    nd = nested_dissection(a, leaf_size=leaf_size)
    ap = a[nd.perm][:, nd.perm].tocsr()
    symb = symbolic_analysis(ap, nd)
    return nd, multifrontal_factor_cpu(ap, symb)


class TestGpuSolve:
    def test_matches_host_solve(self, a100, rng):
        a = grid2d(13, 11)
        nd, fac = factored(a)
        b = rng.standard_normal(143)
        ref = multifrontal_solve(fac, b[nd.perm])
        res = multifrontal_solve_gpu(a100, fac, b[nd.perm])
        np.testing.assert_allclose(res.x, ref, rtol=1e-12, atol=1e-14)

    def test_multiple_rhs(self, a100, rng):
        a = grid3d(4)
        nd, fac = factored(a, leaf_size=16)
        B = rng.standard_normal((64, 5))
        ref = multifrontal_solve(fac, B[nd.perm])
        res = multifrontal_solve_gpu(a100, fac, B[nd.perm])
        np.testing.assert_allclose(res.x, ref, rtol=1e-12, atol=1e-14)

    def test_complex_system(self, a100, rng):
        import scipy.sparse as sp
        a = (grid2d(8, 8) - (2.0 + 1.0j) * sp.eye(64)).tocsr()
        nd, fac = factored(a)
        b = rng.standard_normal(64) + 1j * rng.standard_normal(64)
        ref = multifrontal_solve(fac, b[nd.perm])
        res = multifrontal_solve_gpu(a100, fac, b[nd.perm])
        np.testing.assert_allclose(res.x, ref, rtol=1e-12)

    def test_rhs_size_mismatch(self, a100, rng):
        a = grid2d(5, 5)
        _nd, fac = factored(a)
        with pytest.raises(ValueError, match="expected"):
            multifrontal_solve_gpu(a100, fac, np.zeros(7))

    def test_batched_launch_structure(self, a100, rng):
        # per level (with nonzero pivots): fwd = 3 launches, bwd = 2.
        a = grid2d(12, 12)
        nd, fac = factored(a)
        levels = [lev for lev in fac.symb.levels()
                  if any(fac.symb.fronts[f].sep_size for f in lev)]
        n0 = a100.profiler.launch_count
        multifrontal_solve_gpu(a100, fac, rng.standard_normal(144))
        launches = a100.profiler.launch_count - n0
        assert launches == 5 * len(levels)

    def test_no_device_memory_leak(self, a100, rng):
        a = grid2d(9, 9)
        nd, fac = factored(a)
        before = a100.allocated_bytes
        multifrontal_solve_gpu(a100, fac, rng.standard_normal(81))
        assert a100.allocated_bytes == before

    def test_elapsed_positive(self, a100, rng):
        a = grid2d(8, 8)
        nd, fac = factored(a)
        res = multifrontal_solve_gpu(a100, fac, rng.standard_normal(64))
        assert res.elapsed > 0


class TestSolverIntegration:
    def test_sparse_lu_device_solve(self, rng):
        a = grid3d(5)
        b = rng.standard_normal(125)
        dev = Device(A100())
        s = SparseLU(a).analyze().factor(backend="batched", device=dev)
        x_gpu, info_gpu = s.solve(b, device=dev)
        x_cpu, info_cpu = s.solve(b)
        np.testing.assert_allclose(x_gpu, x_cpu, rtol=1e-12)
        assert info_gpu.final_residual < 5e-15

    def test_device_solve_with_mc64(self, rng):
        a = grid2d(9, 9, diag=0.1)
        b = rng.standard_normal(81)
        dev = Device(A100())
        s = SparseLU(a, use_mc64=True).analyze().factor()
        x, info = s.solve(b, device=dev)
        assert info.final_residual < 1e-12
