"""Tests for the batched GPU solve phase."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.device import A100, Device
from repro.sparse import DeviceFactorCache, SolvePlan, SparseLU, \
    multifrontal_factor_cpu, multifrontal_solve, multifrontal_solve_gpu, \
    nested_dissection, symbolic_analysis

from .util import grid2d, grid3d


def factored(a, leaf_size=8):
    nd = nested_dissection(a, leaf_size=leaf_size)
    ap = a[nd.perm][:, nd.perm].tocsr()
    symb = symbolic_analysis(ap, nd)
    return nd, multifrontal_factor_cpu(ap, symb)


def _records(dev):
    return [(r.name, r.cost.flops, r.cost.bytes_read, r.cost.bytes_written,
             r.cost.blocks, r.cost.compute_ramp, r.cost.kernel_class)
            for r in dev.profiler.records]


def _both_engines(fac, b, **kw):
    d_naive, d_buck = Device(A100()), Device(A100())
    rn = multifrontal_solve_gpu(d_naive, fac, b, engine="naive")
    rb = multifrontal_solve_gpu(d_buck, fac, b, engine="bucketed", **kw)
    return rn, rb, d_naive, d_buck


class TestGpuSolve:
    def test_matches_host_solve(self, a100, rng):
        a = grid2d(13, 11)
        nd, fac = factored(a)
        b = rng.standard_normal(143)
        ref = multifrontal_solve(fac, b[nd.perm])
        res = multifrontal_solve_gpu(a100, fac, b[nd.perm])
        np.testing.assert_allclose(res.x, ref, rtol=1e-12, atol=1e-14)

    def test_multiple_rhs(self, a100, rng):
        a = grid3d(4)
        nd, fac = factored(a, leaf_size=16)
        B = rng.standard_normal((64, 5))
        ref = multifrontal_solve(fac, B[nd.perm])
        res = multifrontal_solve_gpu(a100, fac, B[nd.perm])
        np.testing.assert_allclose(res.x, ref, rtol=1e-12, atol=1e-14)

    def test_complex_system(self, a100, rng):
        import scipy.sparse as sp
        a = (grid2d(8, 8) - (2.0 + 1.0j) * sp.eye(64)).tocsr()
        nd, fac = factored(a)
        b = rng.standard_normal(64) + 1j * rng.standard_normal(64)
        ref = multifrontal_solve(fac, b[nd.perm])
        res = multifrontal_solve_gpu(a100, fac, b[nd.perm])
        np.testing.assert_allclose(res.x, ref, rtol=1e-12)

    def test_rhs_size_mismatch(self, a100, rng):
        a = grid2d(5, 5)
        _nd, fac = factored(a)
        with pytest.raises(ValueError, match="expected"):
            multifrontal_solve_gpu(a100, fac, np.zeros(7))

    def test_batched_launch_structure(self, a100, rng):
        # per level (with nonzero pivots): fwd = 3 launches, bwd = 2.
        a = grid2d(12, 12)
        nd, fac = factored(a)
        levels = [lev for lev in fac.symb.levels()
                  if any(fac.symb.fronts[f].sep_size for f in lev)]
        n0 = a100.profiler.launch_count
        multifrontal_solve_gpu(a100, fac, rng.standard_normal(144))
        launches = a100.profiler.launch_count - n0
        assert launches == 5 * len(levels)

    def test_no_device_memory_leak(self, a100, rng):
        a = grid2d(9, 9)
        nd, fac = factored(a)
        before = a100.allocated_bytes
        multifrontal_solve_gpu(a100, fac, rng.standard_normal(81))
        assert a100.allocated_bytes == before

    def test_elapsed_positive(self, a100, rng):
        a = grid2d(8, 8)
        nd, fac = factored(a)
        res = multifrontal_solve_gpu(a100, fac, rng.standard_normal(64))
        assert res.elapsed > 0


class TestEngineParity:
    """Planned (bucketed) path vs the streamed naive reference."""

    @pytest.mark.parametrize("nrhs", [1, 3, 17])
    def test_bitwise_and_cost_parity(self, rng, nrhs):
        a = grid2d(13, 11)
        nd, fac = factored(a)
        b = rng.standard_normal((143, nrhs)) if nrhs > 1 else \
            rng.standard_normal(143)
        rn, rb, dn, db = _both_engines(fac, b)
        assert np.array_equal(rn.x, rb.x)
        assert _records(dn) == _records(db)
        ref = multifrontal_solve(fac, b)
        np.testing.assert_allclose(rb.x, ref, rtol=1e-12, atol=1e-14)

    def test_complex128_parity(self, rng):
        a = (grid2d(8, 8) - (2.0 + 1.0j) * sp.eye(64)).tocsr()
        nd, fac = factored(a)
        b = rng.standard_normal((64, 3)) + 1j * rng.standard_normal((64, 3))
        rn, rb, dn, db = _both_engines(fac, b)
        assert rb.x.dtype == np.complex128
        assert np.array_equal(rn.x, rb.x)
        assert _records(dn) == _records(db)

    def test_complex_rhs_on_real_factors(self, rng):
        # mixed dtype: real f11/f21/f12 against a complex solution vector
        a = grid2d(9, 9)
        nd, fac = factored(a)
        b = rng.standard_normal(81) + 1j * rng.standard_normal(81)
        rn, rb, dn, db = _both_engines(fac, b)
        assert np.array_equal(rn.x, rb.x)
        assert _records(dn) == _records(db)
        np.testing.assert_allclose(rb.x, multifrontal_solve(fac, b),
                                   rtol=1e-12, atol=1e-14)

    def test_upd_size_zero_fronts(self, rng):
        # a block-diagonal system: every tree root has an empty update set
        a = sp.block_diag([grid2d(6, 5, seed=1), grid2d(4, 7, seed=2),
                           grid2d(5, 5, seed=3)]).tocsr()
        nd, fac = factored(a)
        assert any(fac.symb.fronts[f].upd_size == 0
                   for lev in fac.symb.levels() for f in lev)
        b = rng.standard_normal(a.shape[0])
        rn, rb, dn, db = _both_engines(fac, b)
        assert np.array_equal(rn.x, rb.x)
        assert _records(dn) == _records(db)

    def test_gpu_matches_host_multi_rhs(self, a100, rng):
        a = grid3d(4)
        nd, fac = factored(a, leaf_size=16)
        for nrhs in (1, 3, 17):
            B = rng.standard_normal((64, nrhs))
            ref = multifrontal_solve(fac, B[nd.perm])
            res = multifrontal_solve_gpu(a100, fac, B[nd.perm])
            np.testing.assert_allclose(res.x, ref, rtol=1e-12, atol=1e-14)


class TestSolvePlanCache:
    def test_warm_cache_matches_cold_path(self, rng):
        a = grid2d(12, 12)
        nd, fac = factored(a)
        b = rng.standard_normal(144)
        dev = Device(A100())
        plan = SolvePlan(fac)
        cache = DeviceFactorCache(dev, fac, plan)
        cold = multifrontal_solve_gpu(dev, fac, b, plan=plan, cache=cache)
        uploads = cache.uploads
        assert uploads == len(plan.levels)
        warm = multifrontal_solve_gpu(dev, fac, b, plan=plan, cache=cache)
        assert cache.uploads == uploads  # zero re-uploads when warm
        assert np.array_equal(cold.x, warm.x)
        assert warm.elapsed < cold.elapsed  # transfers amortized away
        # one-shot path (no cache) streams and matches too
        one_shot = multifrontal_solve_gpu(Device(A100()), fac, b)
        assert np.array_equal(one_shot.x, cold.x)
        cache.free()
        assert dev.allocated_bytes == 0

    def test_memory_budget_eviction(self, rng):
        a = grid2d(12, 12)
        nd, fac = factored(a)
        b = rng.standard_normal(144)
        plan = SolvePlan(fac)
        total = plan.total_nbytes()
        dev = Device(A100())
        cache = DeviceFactorCache(dev, fac, plan, memory_budget=total // 2)
        assert 0 < len(cache.resident_levels) < len(plan.levels)
        assert cache.resident_nbytes <= total // 2
        res = multifrontal_solve_gpu(dev, fac, b, plan=plan, cache=cache)
        full = multifrontal_solve_gpu(Device(A100()), fac, b)
        assert np.array_equal(res.x, full.x)
        # evicted levels stream per sweep; device holds only residents
        assert dev.allocated_bytes == cache.resident_nbytes
        cache.free()
        assert dev.allocated_bytes == 0

    def test_tiny_budget_streams_everything(self, rng):
        a = grid2d(9, 9)
        nd, fac = factored(a)
        plan = SolvePlan(fac)
        dev = Device(A100())
        # 1 byte fits no level, so every level is streamed per sweep
        cache = DeviceFactorCache(dev, fac, plan, memory_budget=1)
        assert cache.resident_levels == set()
        res = multifrontal_solve_gpu(dev, fac, rng.standard_normal(81),
                                     plan=plan, cache=cache)
        assert dev.allocated_bytes == 0
        # each level uploaded once per sweep direction
        assert cache.uploads == 2 * len(plan.levels)
        assert res.elapsed > 0

    def test_rhs_block_matches_full_pass(self, rng):
        a = grid2d(11, 9)
        nd, fac = factored(a)
        B = rng.standard_normal((99, 7))
        full = multifrontal_solve_gpu(Device(A100()), fac, B)
        blocked = multifrontal_solve_gpu(Device(A100()), fac, B,
                                         rhs_block=3)
        # blocking changes the GEMM column counts, so identity is to
        # rounding, not bitwise
        np.testing.assert_allclose(blocked.x, full.x, rtol=1e-12,
                                   atol=1e-14)

    def test_plan_reports_nbytes(self, rng):
        a = grid2d(8, 8)
        nd, fac = factored(a)
        plan = SolvePlan(fac)
        assert plan.total_nbytes() == sum(plan.level_nbytes(lp)
                                          for lp in plan.levels)
        assert plan.total_nbytes() > 0


class TestSolverIntegration:
    def test_sparse_lu_device_solve(self, rng):
        a = grid3d(5)
        b = rng.standard_normal(125)
        dev = Device(A100())
        s = SparseLU(a).analyze().factor(backend="batched", device=dev)
        x_gpu, info_gpu = s.solve(b, device=dev)
        x_cpu, info_cpu = s.solve(b)
        np.testing.assert_allclose(x_gpu, x_cpu, rtol=1e-12)
        assert info_gpu.final_residual < 5e-15

    def test_device_solve_with_mc64(self, rng):
        a = grid2d(9, 9, diag=0.1)
        b = rng.standard_normal(81)
        dev = Device(A100())
        s = SparseLU(a, use_mc64=True).analyze().factor()
        x, info = s.solve(b, device=dev)
        assert info.final_residual < 1e-12
