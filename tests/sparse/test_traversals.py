"""Tests for the §III-A multi-traversal (memory-budgeted) factorization.

"If the entire assembly tree does not fit in the device memory, then the
factorization is split in multiple traversals of subtrees that do fit on
the device."
"""

import numpy as np
import pytest

from repro.device import A100, Device, DeviceOutOfMemory
from repro.sparse import multifrontal_factor_gpu, multifrontal_solve, \
    nested_dissection, symbolic_analysis
from repro.sparse.numeric.gpu_factor import plan_traversals

from .util import grid2d, grid3d


def prepare(a, leaf_size=16):
    nd = nested_dissection(a, leaf_size=leaf_size)
    ap = a[nd.perm][:, nd.perm].tocsr()
    return nd, ap, symbolic_analysis(ap, nd)


def total_front_bytes(symb):
    return sum(8 * f.order ** 2 for f in symb.fronts)


class TestPlanTraversals:
    def test_no_budget_single_traversal(self, rng):
        _, _, symb = prepare(grid2d(10, 10))
        chunks = plan_traversals(symb, None)
        assert len(chunks) == 1
        assert chunks[0] == list(range(len(symb.fronts)))

    def test_chunks_partition_postorder(self, rng):
        _, _, symb = prepare(grid3d(5))
        chunks = plan_traversals(symb, total_front_bytes(symb) // 4)
        flat = [f for c in chunks for f in c]
        assert flat == list(range(len(symb.fronts)))
        assert len(chunks) > 1

    def test_front_buffer_bytes_within_budget(self, rng):
        _, _, symb = prepare(grid3d(5))
        budget = total_front_bytes(symb) // 3
        for chunk in plan_traversals(symb, budget):
            assert sum(8 * symb.fronts[f].order ** 2
                       for f in chunk) <= budget

    def test_huge_budget_single_chunk(self, rng):
        _, _, symb = prepare(grid2d(8, 8))
        assert len(plan_traversals(symb, 10 ** 12)) == 1

    def test_too_small_budget_raises(self, rng):
        _, _, symb = prepare(grid2d(10, 10))
        with pytest.raises(DeviceOutOfMemory, match="largest front"):
            plan_traversals(symb, 64)


class TestStreamingFactorization:
    def test_factors_identical_to_resident_mode(self, rng):
        a = grid3d(5)
        nd, ap, symb = prepare(a)
        dev1, dev2 = Device(A100()), Device(A100())
        ref = multifrontal_factor_gpu(dev1, ap, symb)
        budget = total_front_bytes(symb) // 4
        res = multifrontal_factor_gpu(dev2, ap, symb,
                                      memory_budget=budget)
        assert res.counters["traversals"] > 1
        for f_ref, f_str in zip(ref.factors.fronts, res.factors.fronts):
            np.testing.assert_array_equal(f_ref.f11, f_str.f11)
            np.testing.assert_array_equal(f_ref.f12, f_str.f12)
            np.testing.assert_array_equal(f_ref.f21, f_str.f21)
            np.testing.assert_array_equal(f_ref.ipiv, f_str.ipiv)

    def test_streaming_solve_correct(self, rng):
        a = grid2d(14, 14)
        nd, ap, symb = prepare(a, leaf_size=8)
        dev = Device(A100())
        res = multifrontal_factor_gpu(
            dev, ap, symb, memory_budget=total_front_bytes(symb) // 6)
        b = rng.standard_normal(a.shape[0])
        xp = multifrontal_solve(res.factors, b[nd.perm])
        x = np.empty_like(xp)
        x[nd.perm] = xp
        assert np.abs(a @ x - b).max() < 1e-10

    def test_streaming_pays_extra_transfers(self, rng):
        a = grid3d(5)
        nd, ap, symb = prepare(a)
        dev1, dev2 = Device(A100()), Device(A100())
        multifrontal_factor_gpu(dev1, ap, symb)
        multifrontal_factor_gpu(dev2, ap, symb,
                                memory_budget=total_front_bytes(symb) // 4)
        assert dev2.profiler.transfer_count > dev1.profiler.transfer_count

    def test_memory_stays_bounded(self, rng):
        a = grid3d(5)
        nd, ap, symb = prepare(a)
        dev = Device(A100())
        budget = total_front_bytes(symb) // 4
        a_bytes = ap.data.nbytes + ap.indices.nbytes + ap.indptr.nbytes
        multifrontal_factor_gpu(dev, ap, symb, memory_budget=budget)
        # the budget governs the frontal working set; A stays resident
        assert dev.peak_allocated_bytes <= budget + a_bytes

    def test_no_leak_after_streaming(self, rng):
        a = grid2d(10, 10)
        nd, ap, symb = prepare(a)
        dev = Device(A100())
        before = dev.allocated_bytes
        multifrontal_factor_gpu(dev, ap, symb,
                                memory_budget=total_front_bytes(symb) // 3)
        assert dev.allocated_bytes == before

    @pytest.mark.parametrize("strategy", ["looped", "strumpack"])
    def test_other_strategies_support_streaming(self, rng, strategy):
        a = grid2d(10, 10)
        nd, ap, symb = prepare(a, leaf_size=8)
        dev = Device(A100())
        res = multifrontal_factor_gpu(
            dev, ap, symb, strategy=strategy,
            memory_budget=total_front_bytes(symb) // 3)
        assert res.counters["traversals"] > 1
        b = rng.standard_normal(100)
        xp = multifrontal_solve(res.factors, b[nd.perm])
        x = np.empty_like(xp)
        x[nd.perm] = xp
        assert np.abs(a @ x - b).max() < 1e-10

    def test_solver_passes_budget_through(self, rng):
        from repro.sparse import SparseLU
        a = grid2d(12, 12)
        s = SparseLU(a, leaf_size=8).analyze()
        budget = total_front_bytes(s.symb) // 3
        s.factor(backend="batched", device=Device(A100()),
                 memory_budget=budget)
        assert s.factor_result.counters["traversals"] > 1
        x, info = s.solve(rng.standard_normal(144))
        assert info.final_residual < 1e-12
