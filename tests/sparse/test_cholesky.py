"""Tests for the SPD multifrontal Cholesky solver."""

import numpy as np
import pytest
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.batched import NotPositiveDefiniteError
from repro.device import A100, Device
from repro.sparse import SparseCholesky, SparseLU

from .util import grid2d, grid3d


def spd_grid(n2d=None, n3d=None, shift=3.0, seed=0):
    a0 = grid2d(*n2d, seed=seed) if n2d else grid3d(n3d, seed=seed)
    n = a0.shape[0]
    return sp.csr_matrix((a0 + a0.T) / 2 + shift * sp.eye(n))


class TestSparseCholesky:
    @pytest.mark.parametrize("backend", ["cpu", "batched"])
    def test_solve_matches_scipy(self, rng, backend):
        a = spd_grid(n2d=(11, 9))
        b = rng.standard_normal(a.shape[0])
        dev = None if backend == "cpu" else Device(A100())
        s = SparseCholesky(a).analyze().factor(backend=backend, device=dev)
        x, info = s.solve(b)
        assert info.final_residual < 1e-13
        np.testing.assert_allclose(x, spla.spsolve(a.tocsc(), b),
                                   rtol=1e-8)

    def test_cpu_gpu_factors_match(self, rng):
        a = spd_grid(n3d=5)
        s1 = SparseCholesky(a).analyze().factor()
        s2 = SparseCholesky(a).analyze().factor(backend="batched",
                                                device=Device(A100()))
        for l1, l2 in zip(s1.factors.l11, s2.factors.l11):
            np.testing.assert_allclose(l1, l2, rtol=1e-12, atol=1e-13)
        for l1, l2 in zip(s1.factors.l21, s2.factors.l21):
            np.testing.assert_allclose(l1, l2, rtol=1e-12, atol=1e-13)

    def test_multiple_rhs(self, rng):
        a = spd_grid(n2d=(8, 8))
        B = rng.standard_normal((64, 3))
        s = SparseCholesky(a).factor()
        X, info = s.solve(B)
        assert np.abs(a @ X - B).max() < 1e-12

    def test_not_spd_raises(self, rng):
        a0 = grid2d(6, 6)
        a = sp.csr_matrix((a0 + a0.T) / 2 - 50 * sp.eye(36))  # indefinite
        with pytest.raises(NotPositiveDefiniteError):
            SparseCholesky(a).analyze().factor()

    def test_unsymmetric_rejected(self, rng):
        a = grid2d(5, 5)  # unsymmetric values
        with pytest.raises(ValueError, match="symmetric"):
            SparseCholesky(a)

    def test_rectangular_rejected(self):
        with pytest.raises(ValueError, match="square"):
            SparseCholesky(sp.csr_matrix(np.ones((2, 3))))

    def test_unknown_backend(self, rng):
        s = SparseCholesky(spd_grid(n2d=(4, 4)))
        with pytest.raises(ValueError, match="backend"):
            s.factor(backend="gpu2")

    def test_solve_before_factor(self, rng):
        s = SparseCholesky(spd_grid(n2d=(4, 4)))
        with pytest.raises(RuntimeError, match="factor"):
            s.solve(np.zeros(16))

    def test_cholesky_cheaper_than_lu(self, rng):
        """No pivoting, no LASWP, half the off-diagonal factor storage:
        the SPD path must beat SparseLU on the same (SPD) system."""
        a = spd_grid(n3d=6)
        dev1, dev2 = Device(A100()), Device(A100())
        chol = SparseCholesky(a, leaf_size=16).analyze()
        chol.factor(backend="batched", device=dev1)
        lu = SparseLU(a, leaf_size=16).analyze()
        lu.factor(backend="batched", device=dev2)
        assert chol.factor_result.elapsed < lu.factor_result.elapsed
        assert chol.factor_result.counters["launch_count"] < \
            lu.factor_result.counters["launch_count"]

    def test_refinement_improves(self, rng):
        a = spd_grid(n2d=(10, 10), shift=0.5)
        b = rng.standard_normal(100)
        s = SparseCholesky(a).factor()
        _, info = s.solve(b, refine_steps=2)
        assert info.residuals[-1] <= info.residuals[0]
        assert info.residuals[-1] < 1e-13
