"""Property tests for :func:`partition_tree` (assembly-tree sharding)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sparse import RankAssignment, nested_dissection, \
    partition_tree, symbolic_analysis

from .util import grid2d, grid3d

pytestmark = pytest.mark.multidev


def prepare(a, leaf_size=16):
    nd = nested_dissection(a, leaf_size=leaf_size)
    ap = a[nd.perm][:, nd.perm].tocsr()
    return symbolic_analysis(ap, nd)


def check_assignment(symb, assign, n_ranks):
    nf = len(symb.fronts)
    # every front assigned exactly once: top ∪ rank subtrees partition
    owned = list(assign.top_fronts)
    for rf in assign.rank_fronts:
        owned.extend(rf)
    assert sorted(owned) == list(range(nf))
    assert len(assign.rank_fronts) == n_ranks
    # rank_of_front agrees with the listings (-1 marks the top part)
    for f in assign.top_fronts:
        assert assign.rank_of_front[f] == -1
    for r, rf in enumerate(assign.rank_fronts):
        for f in rf:
            assert assign.rank_of_front[f] == r
    # children precede parents within a rank (postorder), so the
    # per-device level schedule can consume them bottom-up
    for rf in assign.rank_fronts:
        pos = {f: i for i, f in enumerate(rf)}
        for f in rf:
            for c in symb.fronts[f].children:
                if c in pos:
                    assert pos[c] < pos[f]
    assert assign.imbalance >= 1.0


class TestPartitionProperties:
    @pytest.mark.parametrize("n_ranks", [1, 2, 3, 4, 8])
    def test_exact_cover_2d(self, n_ranks):
        symb = prepare(grid2d(12, 11))
        check_assignment(symb, partition_tree(symb, n_ranks), n_ranks)

    @pytest.mark.parametrize("n_ranks", [2, 4, 7])
    def test_exact_cover_3d(self, n_ranks):
        symb = prepare(grid3d(6))
        check_assignment(symb, partition_tree(symb, n_ranks), n_ranks)

    def test_single_rank_has_no_top_part(self):
        symb = prepare(grid2d(10, 10))
        assign = partition_tree(symb, 1)
        assert assign.top_fronts == []
        assert assign.rank_fronts[0] == list(range(len(symb.fronts)))
        assert assign.imbalance == 1.0

    def test_rejects_zero_ranks(self):
        symb = prepare(grid2d(6, 6))
        with pytest.raises(ValueError, match="at least one rank"):
            partition_tree(symb, 0)

    def test_more_ranks_than_subtrees(self):
        # a tiny tree: some ranks legitimately end up with nothing
        symb = prepare(grid2d(5, 5), leaf_size=32)
        n_ranks = 16
        assign = partition_tree(symb, n_ranks)
        check_assignment(symb, assign, n_ranks)
        assert any(not rf for rf in assign.rank_fronts)

    def test_single_front_tree(self):
        # leaf_size swallows the whole matrix -> one front, no top work
        symb = prepare(grid2d(4, 4), leaf_size=1024)
        assert len(symb.fronts) == 1
        for n_ranks in (1, 2, 4):
            assign = partition_tree(symb, n_ranks)
            check_assignment(symb, assign, n_ranks)

    def test_all_zero_flop_ranks_report_perfect_balance(self):
        assign = RankAssignment(
            n_ranks=2, rank_of_front=np.zeros(0, dtype=np.int64),
            top_fronts=[], rank_fronts=[[], []], rank_flops=[0.0, 0.0])
        assert assign.imbalance == 1.0

    def test_lpt_balances_better_than_worst_case(self):
        symb = prepare(grid3d(6))
        assign = partition_tree(symb, 4)
        # LPT guarantees max load <= (4/3 - 1/3m) * optimum; sanity-check
        # the far weaker claim that no rank owns everything
        busy = [f for f in assign.rank_flops if f > 0]
        assert len(busy) > 1
        total = sum(assign.rank_flops)
        assert max(assign.rank_flops) < total

    @settings(max_examples=15, deadline=None)
    @given(st.integers(4, 12), st.integers(4, 12), st.integers(1, 9))
    def test_property_sweep(self, nx, ny, n_ranks):
        symb = prepare(grid2d(nx, ny))
        check_assignment(symb, partition_tree(symb, n_ranks), n_ranks)
