"""Tests for the simulated distributed-memory factorization (§III-A)."""

import numpy as np
import pytest

from repro.device import A100, Device
from repro.sparse import multifrontal_factor_distributed, \
    multifrontal_factor_gpu, multifrontal_solve, nested_dissection, \
    partition_tree, symbolic_analysis

from .util import grid2d, grid3d


def prepare(a, leaf_size=16):
    nd = nested_dissection(a, leaf_size=leaf_size)
    ap = a[nd.perm][:, nd.perm].tocsr()
    return nd, ap, symbolic_analysis(ap, nd)


class TestPartition:
    def test_single_rank_owns_everything(self, rng):
        _, _, symb = prepare(grid2d(10, 10))
        assign = partition_tree(symb, 1)
        assert assign.top_fronts == []
        assert assign.rank_fronts[0] == list(range(len(symb.fronts)))

    def test_partition_is_exact(self, rng):
        _, _, symb = prepare(grid3d(6))
        assign = partition_tree(symb, 4)
        owned = sorted(f for rf in assign.rank_fronts for f in rf)
        owned += assign.top_fronts
        assert sorted(owned) == list(range(len(symb.fronts)))

    def test_top_is_top_levels(self, rng):
        _, _, symb = prepare(grid3d(6))
        assign = partition_tree(symb, 4)   # ceil(log2 4) = 2 levels
        for f in assign.top_fronts:
            assert symb.fronts[f].level < 2
        for rf in assign.rank_fronts:
            for f in rf:
                assert symb.fronts[f].level >= 2

    def test_subtrees_stay_whole(self, rng):
        # a front and its children live on the same rank (unless top)
        _, _, symb = prepare(grid3d(6))
        assign = partition_tree(symb, 4)
        for fid, f in enumerate(symb.fronts):
            r = assign.rank_of_front[fid]
            if r < 0:
                continue
            for c in f.children:
                assert assign.rank_of_front[c] == r

    def test_balance_reasonable(self, rng):
        _, _, symb = prepare(grid3d(7))
        assign = partition_tree(symb, 4)
        assert assign.imbalance < 2.0

    def test_invalid_rank_count(self, rng):
        _, _, symb = prepare(grid2d(6, 6))
        with pytest.raises(ValueError, match="at least one rank"):
            partition_tree(symb, 0)


class TestDistributedFactorization:
    def test_identical_to_single_device(self, rng):
        a = grid3d(6)
        _, ap, symb = prepare(a)
        ref = multifrontal_factor_gpu(Device(A100()), ap, symb)
        res = multifrontal_factor_distributed(A100(), ap, symb, 4)
        for f1, f2 in zip(ref.factors.fronts, res.factors.fronts):
            np.testing.assert_array_equal(f1.f11, f2.f11)
            np.testing.assert_array_equal(f1.f12, f2.f12)
            np.testing.assert_array_equal(f1.f21, f2.f21)
            np.testing.assert_array_equal(f1.ipiv, f2.ipiv)

    def test_solve_correct(self, rng):
        a = grid3d(6)
        nd, ap, symb = prepare(a)
        res = multifrontal_factor_distributed(A100(), ap, symb, 3)
        b = rng.standard_normal(a.shape[0])
        xp = multifrontal_solve(res.factors, b[nd.perm])
        x = np.empty_like(xp)
        x[nd.perm] = xp
        assert np.abs(a @ x - b).max() < 1e-10

    def test_local_makespan_shrinks_with_ranks(self, rng):
        a = grid3d(7)
        _, ap, symb = prepare(a)
        locals_ = []
        for p in (1, 4):
            res = multifrontal_factor_distributed(A100(), ap, symb, p)
            locals_.append(max(res.per_rank_seconds))
        assert locals_[1] < 0.7 * locals_[0]

    def test_communication_accounted(self, rng):
        a = grid3d(6)
        _, ap, symb = prepare(a)
        res = multifrontal_factor_distributed(A100(), ap, symb, 4)
        assert res.comm_bytes > 0
        assert res.gather_seconds > 0
        # every boundary Schur crosses the network exactly once
        expected = sum(
            8 * symb.fronts[f].upd_size ** 2
            for f in range(len(symb.fronts))
            if res.assignment.rank_of_front[f] >= 0
            and symb.fronts[f].parent >= 0
            and res.assignment.rank_of_front[symb.fronts[f].parent] == -1)
        assert res.comm_bytes == expected

    def test_scalapack_top_mode(self, rng):
        a = grid3d(6)
        nd, ap, symb = prepare(a)
        res = multifrontal_factor_distributed(A100(), ap, symb, 4,
                                              top_mode="scalapack")
        assert res.top_seconds > 0
        b = rng.standard_normal(a.shape[0])
        xp = multifrontal_solve(res.factors, b[nd.perm])
        x = np.empty_like(xp)
        x[nd.perm] = xp
        assert np.abs(a @ x - b).max() < 1e-10

    def test_invalid_top_mode(self, rng):
        _, ap, symb = prepare(grid2d(6, 6))
        with pytest.raises(ValueError, match="top_mode"):
            multifrontal_factor_distributed(A100(), ap, symb, 2,
                                            top_mode="mpi")

    def test_single_rank_equals_plain_gpu_elapsed_shape(self, rng):
        a = grid2d(12, 12)
        _, ap, symb = prepare(a, leaf_size=8)
        res = multifrontal_factor_distributed(A100(), ap, symb, 1)
        assert res.comm_bytes == 0
        assert res.top_seconds == 0.0
        assert res.elapsed == pytest.approx(res.per_rank_seconds[0])
