"""Tests for bisection, minimum degree, nested dissection and MC64."""

import numpy as np
import pytest
import scipy.sparse as sp
import scipy.sparse.linalg as spla
from hypothesis import given, settings, strategies as st

from repro.sparse.graph import symmetrize_pattern
from repro.sparse.ordering import StructurallySingularError, bisect, mc64, \
    minimum_degree_order, nested_dissection

from .util import grid2d, grid3d, random_sparse


class TestBisect:
    def test_separator_separates(self):
        g = symmetrize_pattern(grid2d(12, 12))
        cut = bisect(g, np.arange(144))
        amask = np.zeros(144, dtype=bool)
        amask[cut.part_a] = True
        bmask = np.zeros(144, dtype=bool)
        bmask[cut.part_b] = True
        # no direct edge between A and B
        coo = g.tocoo()
        for r, c in zip(coo.row, coo.col):
            assert not (amask[r] and bmask[c])

    def test_partition_is_exact(self):
        g = symmetrize_pattern(grid2d(9, 7))
        verts = np.arange(63)
        cut = bisect(g, verts)
        combined = np.sort(np.concatenate(
            [cut.part_a, cut.part_b, cut.separator]))
        np.testing.assert_array_equal(combined, verts)

    def test_balanced_parts(self):
        g = symmetrize_pattern(grid2d(16, 16))
        cut = bisect(g, np.arange(256))
        ratio = len(cut.part_a) / max(len(cut.part_b), 1)
        assert 0.3 < ratio < 3.0

    def test_grid_separator_size_scales_like_sqrt(self):
        g = symmetrize_pattern(grid2d(20, 20))
        cut = bisect(g, np.arange(400))
        assert len(cut.separator) <= 3 * 20  # geometric separator

    def test_tiny_sets(self):
        g = symmetrize_pattern(grid2d(2, 2))
        cut = bisect(g, np.array([0]))
        assert cut.part_a.tolist() == [0]
        assert len(cut.separator) == 0


class TestMinimumDegree:
    def test_is_permutation(self):
        g = symmetrize_pattern(grid2d(5, 5))
        order = minimum_degree_order(g, np.arange(25))
        assert sorted(order.tolist()) == list(range(25))

    def test_subset_ordering(self):
        g = symmetrize_pattern(grid2d(5, 5))
        verts = np.array([3, 7, 11, 19])
        order = minimum_degree_order(g, verts)
        assert sorted(order.tolist()) == sorted(verts.tolist())

    def test_star_graph_center_last(self):
        # center vertex 0 has degree n-1, leaves degree 1: all leaves first.
        n = 8
        rows = [0] * (n - 1) + list(range(1, n))
        cols = list(range(1, n)) + [0] * (n - 1)
        g = sp.csr_matrix((np.ones(len(rows)), (rows, cols)), shape=(n, n))
        order = minimum_degree_order(g, np.arange(n))
        # the center survives until only degree-ties remain
        assert order.tolist().index(0) >= n - 2


class TestNestedDissection:
    def test_perm_is_permutation(self):
        nd = nested_dissection(grid2d(13, 11))
        assert sorted(nd.perm.tolist()) == list(range(143))
        np.testing.assert_array_equal(nd.perm[nd.iperm], np.arange(143))

    def test_tree_ranges_partition(self):
        nd = nested_dissection(grid2d(10, 10), leaf_size=8)

        def check(node):
            if node.is_leaf:
                assert node.sep_size == node.hi - node.lo
                return
            assert len(node.children) == 2
            c0, c1 = node.children
            assert c0.lo == node.lo
            assert c1.lo == c0.hi
            assert c1.hi == node.sep_begin
            for c in node.children:
                check(c)

        check(nd.tree)

    def test_separator_indices_highest_in_subtree(self):
        nd = nested_dissection(grid2d(12, 12), leaf_size=8)
        root = nd.tree
        assert root.hi == 144
        assert root.sep_size > 0

    def test_reduces_fill_vs_natural_order(self):
        a = grid2d(24, 24, diag=8.0)
        nd = nested_dissection(a)
        ap = a[nd.perm][:, nd.perm].tocsc()
        lu_nd = spla.splu(ap, permc_spec="NATURAL",
                          options=dict(SymmetricMode=True))
        lu_nat = spla.splu(a.tocsc(), permc_spec="NATURAL",
                           options=dict(SymmetricMode=True))
        assert lu_nd.nnz < 0.7 * lu_nat.nnz

    def test_leaf_size_respected(self):
        nd = nested_dissection(grid2d(16, 16), leaf_size=10)
        for node in nd.tree.postorder():
            if node.is_leaf:
                assert node.hi - node.lo <= 10 or node.sep_size == \
                    node.hi - node.lo

    def test_invalid_leaf_size(self):
        with pytest.raises(ValueError):
            nested_dissection(grid2d(3, 3), leaf_size=0)

    def test_empty_matrix(self):
        nd = nested_dissection(sp.csr_matrix((0, 0)))
        assert nd.n == 0

    def test_disconnected_graph(self):
        a = sp.block_diag([grid2d(5, 5, seed=1), grid2d(6, 6, seed=2)],
                          format="csr")
        nd = nested_dissection(a)
        assert sorted(nd.perm.tolist()) == list(range(61))

    @settings(max_examples=10, deadline=None)
    @given(st.integers(2, 12), st.integers(2, 12), st.integers(1, 20))
    def test_property_permutation_valid(self, nx, ny, leaf):
        nd = nested_dissection(grid2d(nx, ny), leaf_size=leaf)
        assert sorted(nd.perm.tolist()) == list(range(nx * ny))


class TestMc64:
    def test_unit_diagonal_and_bounded_offdiag(self):
        a = random_sparse(60, seed=3)
        res = mc64(a)
        s = np.abs(res.apply(a).toarray())
        np.testing.assert_allclose(np.diag(s), 1.0, rtol=1e-12)
        assert s.max() <= 1.0 + 1e-12

    def test_matching_is_permutation(self):
        a = random_sparse(40, seed=4)
        res = mc64(a)
        assert sorted(res.row_of_col.tolist()) == list(range(40))

    def test_maximizes_product_on_small_case(self):
        # 2x2 where the off-diagonal product beats the diagonal one.
        a = sp.csr_matrix(np.array([[1.0, 10.0], [10.0, 1.0]]))
        res = mc64(a)
        assert res.row_of_col.tolist() in ([1, 0],)

    def test_already_dominant_diagonal_identity(self):
        a = sp.csr_matrix(np.diag([5.0, 3.0, 7.0]) +
                          0.1 * np.ones((3, 3)))
        res = mc64(a)
        assert res.row_of_col.tolist() == [0, 1, 2]

    def test_structurally_singular_raises(self):
        a = sp.csr_matrix(np.array([[1.0, 1.0], [0.0, 0.0]]).T)
        with pytest.raises(StructurallySingularError):
            mc64(a)

    def test_empty_column_raises(self):
        a = sp.csc_matrix((3, 3))
        a[0, 0] = a[1, 1] = 1.0
        with pytest.raises(StructurallySingularError):
            mc64(a.tocsc())

    def test_rectangular_rejected(self):
        with pytest.raises(ValueError, match="square"):
            mc64(sp.csr_matrix(np.ones((2, 3))))

    def test_grid_matrix(self):
        a = grid2d(8, 8, diag=0.2)  # weak diagonal: matching must work
        res = mc64(a)
        s = np.abs(res.apply(a).toarray())
        np.testing.assert_allclose(np.diag(s), 1.0, rtol=1e-12)
        assert s.max() <= 1.0 + 1e-12

    @settings(max_examples=15, deadline=None)
    @given(st.integers(2, 25), st.integers(0, 2 ** 31 - 1))
    def test_property_contract(self, n, seed):
        a = random_sparse(n, density=0.2, seed=seed)
        res = mc64(a)
        s = np.abs(res.apply(a).toarray())
        assert np.allclose(np.diag(s), 1.0, rtol=1e-10)
        assert s.max() <= 1.0 + 1e-10
