"""Tests for the SparseLU front-end and the baseline backends."""

import numpy as np
import pytest
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.device import A100, Device
from repro.sparse import SparseLU

from .util import grid2d, grid3d, random_sparse


class TestPipeline:
    def test_cpu_backend_solves(self, rng):
        a = grid2d(12, 12)
        b = rng.standard_normal(144)
        s = SparseLU(a).analyze().factor()
        x, info = s.solve(b)
        assert info.final_residual < 1e-13
        np.testing.assert_allclose(x, spla.spsolve(a.tocsc(), b), rtol=1e-8)

    @pytest.mark.parametrize("backend", ["batched", "looped", "strumpack",
                                         "superlu"])
    def test_gpu_backends_solve(self, rng, backend):
        a = grid2d(10, 10)
        b = rng.standard_normal(100)
        s = SparseLU(a).analyze()
        s.factor(backend=backend, device=Device(A100()))
        x, info = s.solve(b)
        assert info.final_residual < 1e-13
        assert s.factor_result is not None
        assert s.factor_result.elapsed > 0

    def test_gpu_backend_requires_device(self, rng):
        s = SparseLU(grid2d(5, 5)).analyze()
        with pytest.raises(ValueError, match="needs a device"):
            s.factor(backend="batched")

    def test_unknown_backend(self):
        s = SparseLU(grid2d(5, 5)).analyze()
        with pytest.raises(ValueError, match="unknown backend"):
            s.factor(backend="quantum")

    def test_solve_before_factor_raises(self):
        s = SparseLU(grid2d(5, 5))
        with pytest.raises(RuntimeError, match="factor"):
            s.solve(np.zeros(25))

    def test_rectangular_rejected(self):
        with pytest.raises(ValueError, match="square"):
            SparseLU(sp.csr_matrix(np.ones((3, 4))))

    def test_factor_auto_analyzes(self, rng):
        a = grid2d(6, 6)
        s = SparseLU(a).factor()
        x, info = s.solve(rng.standard_normal(36))
        assert info.final_residual < 1e-13


class TestMc64Integration:
    def test_weak_diagonal_system(self, rng):
        # Diagonal ~0.05: static pivoting by MC64 keeps the restricted-
        # pivoting factorization stable.
        a = grid2d(10, 10, diag=0.05)
        b = rng.standard_normal(100)
        s = SparseLU(a, use_mc64=True).analyze().factor()
        x, info = s.solve(b)
        assert info.final_residual < 1e-12

    def test_mc64_on_hard_scaling_backward_stable(self, rng):
        # wildly scaled rows: the normwise metric saturates at
        # eps*||A||*||x||/||b||, so judge by the scaled backward error.
        a = grid2d(8, 8)
        scale = 10.0 ** rng.integers(-6, 6, size=64)
        a = sp.csr_matrix(sp.diags(scale) @ a)
        b = rng.standard_normal(64)
        s = SparseLU(a, use_mc64=True).analyze().factor()
        x, info = s.solve(b, refine_steps=2)
        norm_a = abs(a).max()
        norm_x = np.abs(x).max()
        backward = np.abs(a @ x - b).max() / (norm_a * norm_x +
                                              np.abs(b).max())
        assert backward < 1e-13

    def test_multiple_rhs(self, rng):
        a = grid2d(7, 7)
        B = rng.standard_normal((49, 4))
        s = SparseLU(a, use_mc64=True).factor()
        X, info = s.solve(B)
        assert np.abs(a @ X - B).max() < 1e-11


class TestIterativeRefinement:
    def test_residual_decreases_to_machine_precision(self, rng):
        """§V-B: the solution reaches ~machine precision after one step of
        iterative refinement."""
        a = grid3d(5)
        b = rng.standard_normal(125)
        s = SparseLU(a).factor()
        x, info = s.solve(b, refine_steps=1)
        assert len(info.residuals) == 2
        assert info.residuals[1] <= info.residuals[0]
        assert info.residuals[1] < 5e-15

    def test_zero_refine_steps(self, rng):
        a = grid2d(6, 6)
        s = SparseLU(a).factor()
        _, info = s.solve(rng.standard_normal(36), refine_steps=0)
        assert len(info.residuals) == 1

    def test_zero_rhs(self):
        a = grid2d(6, 6)
        s = SparseLU(a).factor()
        x, info = s.solve(np.zeros(36))
        assert np.allclose(x, 0.0)


class TestReuseOfFactorization:
    def test_factor_once_solve_many(self, rng):
        # §I: "the factorization of the operator can be reused multiple
        # times for the solution of different linear systems".
        a = grid2d(9, 9)
        s = SparseLU(a).factor()
        for _ in range(3):
            b = rng.standard_normal(81)
            x, info = s.solve(b)
            assert info.final_residual < 1e-13

    def test_device_solves_reuse_factor_cache(self, rng):
        # warm path: the refinement pass and every later solve perform
        # zero factor re-uploads (§V-B amortization)
        a = grid2d(10, 10)
        dev = Device(A100())
        s = SparseLU(a).factor()
        x, info = s.solve(rng.standard_normal(100), device=dev,
                          refine_steps=1)
        assert info.final_residual < 1e-13
        cache = s.solve_cache
        assert cache is not None
        uploads = cache.uploads
        assert uploads == len(s.solve_plan.levels)  # first pass only
        for _ in range(3):
            _, info = s.solve(rng.standard_normal(100), device=dev,
                              refine_steps=1)
            assert info.final_residual < 1e-13
        assert cache.uploads == uploads  # fully warm: zero re-uploads
        assert cache.hits > 0

    def test_refactor_invalidates_solve_cache(self, rng):
        a = grid2d(8, 8)
        dev = Device(A100())
        s = SparseLU(a).factor()
        s.solve(rng.standard_normal(64), device=dev)
        held = dev.allocated_bytes
        assert held > 0  # cache keeps factors resident
        s.factor()
        assert s.solve_cache is None
        assert dev.allocated_bytes == 0  # old cache released
        _, info = s.solve(rng.standard_normal(64), device=dev)
        assert info.final_residual < 1e-13

    def test_naive_engine_matches_bucketed(self, rng):
        a = grid2d(9, 9)
        b = rng.standard_normal(81)
        s = SparseLU(a).factor()
        xb, _ = s.solve(b, device=Device(A100()), engine="bucketed")
        xn, _ = s.solve(b, device=Device(A100()), engine="naive")
        assert np.array_equal(xb, xn)

    def test_memory_budget_and_rhs_block_kwargs(self, rng):
        a = grid2d(9, 9)
        B = rng.standard_normal((81, 5))
        s = SparseLU(a).factor()
        dev = Device(A100())
        x1, info = s.solve(B, device=dev, memory_budget=1, rhs_block=2)
        assert s.solve_cache.resident_levels == set()
        assert dev.allocated_bytes == 0
        assert info.final_residual < 1e-13
        x2, _ = s.solve(B)
        np.testing.assert_allclose(x1, x2, rtol=1e-12, atol=1e-14)


class TestDtypePromotion:
    def test_complex_rhs_real_matrix_not_downcast(self, rng):
        # regression: np.asarray(b, dtype=a.dtype) silently dropped the
        # imaginary part of a complex b against a real A
        a = grid2d(8, 8)
        b = rng.standard_normal(64) + 1j * rng.standard_normal(64)
        s = SparseLU(a).factor()
        x, info = s.solve(b)
        assert np.iscomplexobj(x)
        assert info.final_residual < 1e-13
        np.testing.assert_allclose(a @ x, b, rtol=1e-10, atol=1e-12)

    def test_complex_rhs_real_matrix_device(self, rng):
        a = grid2d(8, 8)
        b = rng.standard_normal(64) + 1j * rng.standard_normal(64)
        s = SparseLU(a).factor()
        x_host, _ = s.solve(b)
        x_dev, info = s.solve(b, device=Device(A100()))
        assert np.iscomplexobj(x_dev)
        assert info.final_residual < 1e-13
        np.testing.assert_allclose(x_dev, x_host, rtol=1e-12, atol=1e-14)

    def test_real_rhs_complex_matrix_promotes(self, rng):
        a = (grid2d(7, 7) - (1.0 + 0.5j) * sp.eye(49)).tocsr()
        s = SparseLU(a).factor()
        x, info = s.solve(rng.standard_normal(49))
        assert np.iscomplexobj(x)
        assert info.final_residual < 1e-13
