"""Tests for the SparseLU front-end and the baseline backends."""

import numpy as np
import pytest
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.device import A100, Device
from repro.sparse import SparseLU

from .util import grid2d, grid3d, random_sparse


class TestPipeline:
    def test_cpu_backend_solves(self, rng):
        a = grid2d(12, 12)
        b = rng.standard_normal(144)
        s = SparseLU(a).analyze().factor()
        x, info = s.solve(b)
        assert info.final_residual < 1e-13
        np.testing.assert_allclose(x, spla.spsolve(a.tocsc(), b), rtol=1e-8)

    @pytest.mark.parametrize("backend", ["batched", "looped", "strumpack",
                                         "superlu"])
    def test_gpu_backends_solve(self, rng, backend):
        a = grid2d(10, 10)
        b = rng.standard_normal(100)
        s = SparseLU(a).analyze()
        s.factor(backend=backend, device=Device(A100()))
        x, info = s.solve(b)
        assert info.final_residual < 1e-13
        assert s.factor_result is not None
        assert s.factor_result.elapsed > 0

    def test_gpu_backend_requires_device(self, rng):
        s = SparseLU(grid2d(5, 5)).analyze()
        with pytest.raises(ValueError, match="needs a device"):
            s.factor(backend="batched")

    def test_unknown_backend(self):
        s = SparseLU(grid2d(5, 5)).analyze()
        with pytest.raises(ValueError, match="unknown backend"):
            s.factor(backend="quantum")

    def test_solve_before_factor_raises(self):
        s = SparseLU(grid2d(5, 5))
        with pytest.raises(RuntimeError, match="factor"):
            s.solve(np.zeros(25))

    def test_rectangular_rejected(self):
        with pytest.raises(ValueError, match="square"):
            SparseLU(sp.csr_matrix(np.ones((3, 4))))

    def test_factor_auto_analyzes(self, rng):
        a = grid2d(6, 6)
        s = SparseLU(a).factor()
        x, info = s.solve(rng.standard_normal(36))
        assert info.final_residual < 1e-13


class TestMc64Integration:
    def test_weak_diagonal_system(self, rng):
        # Diagonal ~0.05: static pivoting by MC64 keeps the restricted-
        # pivoting factorization stable.
        a = grid2d(10, 10, diag=0.05)
        b = rng.standard_normal(100)
        s = SparseLU(a, use_mc64=True).analyze().factor()
        x, info = s.solve(b)
        assert info.final_residual < 1e-12

    def test_mc64_on_hard_scaling_backward_stable(self, rng):
        # wildly scaled rows: the normwise metric saturates at
        # eps*||A||*||x||/||b||, so judge by the scaled backward error.
        a = grid2d(8, 8)
        scale = 10.0 ** rng.integers(-6, 6, size=64)
        a = sp.csr_matrix(sp.diags(scale) @ a)
        b = rng.standard_normal(64)
        s = SparseLU(a, use_mc64=True).analyze().factor()
        x, info = s.solve(b, refine_steps=2)
        norm_a = abs(a).max()
        norm_x = np.abs(x).max()
        backward = np.abs(a @ x - b).max() / (norm_a * norm_x +
                                              np.abs(b).max())
        assert backward < 1e-13

    def test_multiple_rhs(self, rng):
        a = grid2d(7, 7)
        B = rng.standard_normal((49, 4))
        s = SparseLU(a, use_mc64=True).factor()
        X, info = s.solve(B)
        assert np.abs(a @ X - B).max() < 1e-11


class TestIterativeRefinement:
    def test_residual_decreases_to_machine_precision(self, rng):
        """§V-B: the solution reaches ~machine precision after one step of
        iterative refinement."""
        a = grid3d(5)
        b = rng.standard_normal(125)
        s = SparseLU(a).factor()
        x, info = s.solve(b, refine_steps=1)
        assert len(info.residuals) == 2
        assert info.residuals[1] <= info.residuals[0]
        assert info.residuals[1] < 5e-15

    def test_zero_refine_steps(self, rng):
        a = grid2d(6, 6)
        s = SparseLU(a).factor()
        _, info = s.solve(rng.standard_normal(36), refine_steps=0)
        assert len(info.residuals) == 1

    def test_zero_rhs(self):
        a = grid2d(6, 6)
        s = SparseLU(a).factor()
        x, info = s.solve(np.zeros(36))
        assert np.allclose(x, 0.0)


class TestReuseOfFactorization:
    def test_factor_once_solve_many(self, rng):
        # §I: "the factorization of the operator can be reused multiple
        # times for the solution of different linear systems".
        a = grid2d(9, 9)
        s = SparseLU(a).factor()
        for _ in range(3):
            b = rng.standard_normal(81)
            x, info = s.solve(b)
            assert info.final_residual < 1e-13
