"""Shared sparse-test matrix generators."""

import numpy as np
import scipy.sparse as sp


def grid2d(nx, ny, seed=0, diag=4.0):
    """Unsymmetric-valued 5-point grid operator (symmetric pattern)."""
    rng = np.random.default_rng(seed)
    rows, cols, vals = [], [], []

    def idx(i, j):
        return i * ny + j

    for i in range(nx):
        for j in range(ny):
            k = idx(i, j)
            rows.append(k)
            cols.append(k)
            vals.append(diag + rng.random())
            for di, dj in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                ii, jj = i + di, j + dj
                if 0 <= ii < nx and 0 <= jj < ny:
                    rows.append(k)
                    cols.append(idx(ii, jj))
                    vals.append(-1.0 - 0.3 * rng.random())
    n = nx * ny
    return sp.csr_matrix((vals, (rows, cols)), shape=(n, n))


def grid3d(n, seed=0, diag=7.0):
    """7-point 3-D grid operator."""
    rng = np.random.default_rng(seed)
    rows, cols, vals = [], [], []

    def idx(i, j, k):
        return (i * n + j) * n + k

    for i in range(n):
        for j in range(n):
            for k in range(n):
                r = idx(i, j, k)
                rows.append(r)
                cols.append(r)
                vals.append(diag + rng.random())
                for d in ((1, 0, 0), (-1, 0, 0), (0, 1, 0), (0, -1, 0),
                          (0, 0, 1), (0, 0, -1)):
                    ii, jj, kk = i + d[0], j + d[1], k + d[2]
                    if 0 <= ii < n and 0 <= jj < n and 0 <= kk < n:
                        rows.append(r)
                        cols.append(idx(ii, jj, kk))
                        vals.append(-1.0 - 0.2 * rng.random())
    m = n ** 3
    return sp.csr_matrix((vals, (rows, cols)), shape=(m, m))


def random_sparse(n, density=0.05, seed=0):
    """Random sparse matrix with a guaranteed nonzero diagonal and a
    symmetric pattern (as the solver's symmetrized analysis assumes)."""
    rng = np.random.default_rng(seed)
    a = sp.random(n, n, density=density, random_state=rng,
                  data_rvs=rng.standard_normal)
    a = a + a.T  # symmetric pattern (values stay unsymmetric enough)
    a = a + sp.diags(n * (1.0 + rng.random(n)))
    return sp.csr_matrix(a)
