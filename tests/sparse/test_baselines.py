"""Direct tests for the comparator solver backends."""

import numpy as np
import pytest

from repro.device import A100, MI100, Device
from repro.sparse import multifrontal_solve, nested_dissection, \
    superlu_like_factor, symbolic_analysis
from repro.sparse.baselines.superlu_like import _panel_seconds
from repro.sparse.numeric.gpu_factor import STRUMPACK_BATCH_LIMIT, \
    multifrontal_factor_gpu

from .util import grid2d, grid3d


def prepare(a, leaf_size=8):
    nd = nested_dissection(a, leaf_size=leaf_size)
    ap = a[nd.perm][:, nd.perm].tocsr()
    return nd, ap, symbolic_analysis(ap, nd)


class TestSuperluLike:
    def test_factors_solve_correctly(self, rng):
        a = grid2d(11, 11)
        nd, ap, symb = prepare(a)
        res = superlu_like_factor(Device(A100()), ap, symb)
        b = rng.standard_normal(121)
        xp = multifrontal_solve(res.factors, b[nd.perm])
        x = np.empty_like(xp)
        x[nd.perm] = xp
        assert np.abs(a @ x - b).max() < 1e-10

    def test_host_panel_time_positive_and_monotone(self):
        from repro.device.spec import XEON_6140_2S
        cpu = XEON_6140_2S()
        t_small = _panel_seconds(8, 32, cpu, 16)
        t_big = _panel_seconds(64, 512, cpu, 16)
        assert 0 < t_small < t_big

    def test_charges_transfers_per_front(self, rng):
        a = grid2d(9, 9)
        nd, ap, symb = prepare(a)
        dev = Device(A100())
        superlu_like_factor(dev, ap, symb)
        # at least one H2D + D2H per front with an update block
        fronts_with_upd = sum(1 for f in symb.fronts if f.upd_size)
        assert dev.profiler.transfer_count >= 2 * fronts_with_upd

    def test_syncs_per_front(self, rng):
        a = grid2d(9, 9)
        nd, ap, symb = prepare(a)
        dev = Device(A100())
        res = superlu_like_factor(dev, ap, symb)
        assert res.counters["sync_count"] >= sum(
            1 for f in symb.fronts if f.upd_size)


class TestStrumpackPath:
    def test_small_pivot_blocks_use_naive_batch(self, rng):
        # leaf_size small => many fronts with sep <= 32 exercise the
        # columnwise naive batch; factors must still be exact.
        a = grid3d(5)
        nd, ap, symb = prepare(a, leaf_size=8)
        assert any(f.sep_size <= STRUMPACK_BATCH_LIMIT
                   for f in symb.fronts)
        dev = Device(A100())
        res = multifrontal_factor_gpu(dev, ap, symb, strategy="strumpack")
        b = rng.standard_normal(125)
        xp = multifrontal_solve(res.factors, b[nd.perm])
        x = np.empty_like(xp)
        x[nd.perm] = xp
        assert np.abs(a @ x - b).max() < 1e-10

    def test_strumpack_syncs_dominate(self, rng):
        a = grid2d(12, 12)
        nd, ap, symb = prepare(a)
        dev_s, dev_b = Device(A100()), Device(A100())
        res_s = multifrontal_factor_gpu(dev_s, ap, symb,
                                        strategy="strumpack")
        res_b = multifrontal_factor_gpu(dev_b, ap, symb,
                                        strategy="batched")
        assert res_s.counters["sync_count"] > res_b.counters["sync_count"]

    def test_mi100_strumpack_slower_than_a100(self, rng):
        # higher launch overhead hits the fine-grained strategy hardest
        a = grid2d(12, 12)
        nd, ap, symb = prepare(a)
        times = {}
        for spec in (A100(), MI100()):
            dev = Device(spec)
            res = multifrontal_factor_gpu(dev, ap, symb,
                                          strategy="strumpack")
            times[spec.name] = res.elapsed
        assert times["MI100"] > times["A100-SXM4"]


class TestMc64Apply:
    def test_apply_result_contract(self, rng):
        from repro.sparse import mc64
        from .util import random_sparse
        a = random_sparse(30, seed=11)
        res = mc64(a)
        s = res.apply(a)
        assert s.shape == a.shape
        d = np.abs(s.diagonal())
        np.testing.assert_allclose(d, 1.0, rtol=1e-12)
        assert np.abs(s.toarray()).max() <= 1.0 + 1e-12

    def test_apply_preserves_solvability(self, rng):
        import scipy.sparse.linalg as spla
        from repro.sparse import mc64
        from .util import random_sparse
        a = random_sparse(25, seed=12)
        res = mc64(a)
        s = res.apply(a)
        # scaled+permuted matrix must be nonsingular alongside A
        x = spla.spsolve(s.tocsc(), np.ones(25))
        assert np.all(np.isfinite(x))
