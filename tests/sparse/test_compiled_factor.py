"""Compiled level-schedule factorization for :class:`SparseLU` (§IV).

``factor(engine="compiled")`` compiles the multifrontal level schedule
into a :class:`FactorProgram` on the first call, then — after
``update_values`` on the same structure — replays it: no re-planning,
no new device allocations, results bitwise identical to the plain
bucketed engine on every run.
"""

import numpy as np
import pytest

from repro.device import A100, Device
from repro.sparse.solver import SparseLU
from repro.workloads.fronts import build_maxwell_workload

pytestmark = pytest.mark.compiled


@pytest.fixture(scope="module")
def maxwell():
    return build_maxwell_workload(4, leaf_size=16)


def perturbed(a, seed, scale=0.05):
    rng = np.random.default_rng(seed)
    a2 = a.copy()
    a2.data = a2.data * (1.0 + scale * rng.standard_normal(a2.data.shape))
    return a2


def factor_bucketed(a, rhs):
    dev = Device(A100())
    slu = SparseLU(a, use_mc64=False)
    slu.factor(backend="batched", device=dev, engine="bucketed")
    x, _ = slu.solve(rhs, device=dev)
    return slu, x


def assert_fronts_equal(fb, fc, diagnostics=True):
    assert len(fb.fronts) == len(fc.fronts)
    for fid in range(len(fb.fronts)):
        a1, a2 = fb.fronts[fid], fc.fronts[fid]
        np.testing.assert_array_equal(a1.f11, a2.f11)
        np.testing.assert_array_equal(a1.f12, a2.f12)
        np.testing.assert_array_equal(a1.f21, a2.f21)
        np.testing.assert_array_equal(a1.ipiv, a2.ipiv)
        assert a1.info == a2.info
        if diagnostics:
            assert a1.n_replaced == a2.n_replaced
            assert a1.min_pivot == a2.min_pivot
            assert a1.growth == a2.growth


class TestCompileParity:
    def test_first_factor_matches_bucketed_bitwise(self, maxwell):
        slu_b, x_b = factor_bucketed(maxwell.matrix, maxwell.rhs)

        dev = Device(A100())
        slu_c = SparseLU(maxwell.matrix, use_mc64=False)
        slu_c.factor(backend="batched", device=dev, engine="compiled")
        assert slu_c._factor_program is not None

        assert_fronts_equal(slu_b.factor_result.factors,
                            slu_c.factor_result.factors)
        x_c, _ = slu_c.solve(maxwell.rhs, device=dev)
        np.testing.assert_array_equal(x_b, x_c)

    def test_report_parity(self, maxwell):
        slu_b, _ = factor_bucketed(maxwell.matrix, maxwell.rhs)
        dev = Device(A100())
        slu_c = SparseLU(maxwell.matrix, use_mc64=False)
        slu_c.factor(backend="batched", device=dev, engine="compiled")
        rb, rc = slu_b.factor_report, slu_c.factor_report
        np.testing.assert_array_equal(rb.n_replaced, rc.n_replaced)
        assert rb.max_growth == rc.max_growth
        assert rb.ok == rc.ok


class TestReplay:
    def test_update_values_replays_program(self, maxwell):
        a, rhs = maxwell.matrix, maxwell.rhs
        dev = Device(A100())
        slu = SparseLU(a, use_mc64=False)
        slu.factor(backend="batched", device=dev, engine="compiled")
        prog = slu._factor_program
        alloc0 = dev.alloc_count

        a2 = perturbed(a, seed=7)
        slu_ref, x_ref = factor_bucketed(a2, rhs)

        slu.update_values(a2)
        assert slu._factor_program is prog
        slu.factor(backend="batched", device=dev, engine="compiled")
        assert slu._factor_program is prog
        assert prog.runs == 1
        assert dev.alloc_count == alloc0
        assert slu.factor_result.counters.get("compiled_replay") == 1

        assert_fronts_equal(slu_ref.factor_result.factors,
                            slu.factor_result.factors)
        x, _ = slu.solve(rhs, device=dev)
        np.testing.assert_array_equal(x_ref, x)

    def test_repeated_replays_stay_bitwise(self, maxwell):
        a, rhs = maxwell.matrix, maxwell.rhs
        dev = Device(A100())
        slu = SparseLU(a, use_mc64=False)
        slu.factor(backend="batched", device=dev, engine="compiled")
        prog = slu._factor_program
        for i in range(3):
            a2 = perturbed(a, seed=20 + i)
            slu_ref, x_ref = factor_bucketed(a2, rhs)
            slu.update_values(a2)
            slu.factor(backend="batched", device=dev, engine="compiled")
            assert slu._factor_program is prog
            assert prog.runs == i + 1
            assert_fronts_equal(slu_ref.factor_result.factors,
                                slu.factor_result.factors)
            x, _ = slu.solve(rhs, device=dev)
            np.testing.assert_array_equal(x_ref, x)

    def test_device_change_recompiles(self, maxwell):
        a = maxwell.matrix
        dev1 = Device(A100())
        slu = SparseLU(a, use_mc64=False)
        slu.factor(backend="batched", device=dev1, engine="compiled")
        prog1 = slu._factor_program
        slu.update_values(perturbed(a, seed=3))
        dev2 = Device(A100())
        slu.factor(backend="batched", device=dev2, engine="compiled")
        assert slu._factor_program is not prog1


class TestGuardFallback:
    def test_breakdown_falls_back_to_bucketed(self, maxwell):
        a, rhs = maxwell.matrix, maxwell.rhs
        dev = Device(A100())
        slu = SparseLU(a, use_mc64=False)
        slu.factor(backend="batched", device=dev, engine="compiled")

        a_bad = a.copy()
        a_bad.data = np.zeros_like(a_bad.data)
        slu.update_values(a_bad)
        slu.factor(backend="batched", device=dev, engine="compiled",
                   breakdown="report")
        assert any(ev.action == "compiled-fallback"
                   for ev in dev.recovery_log.events)
        assert slu.factor_report.n_failed > 0

        # the fallback result matches a plain bucketed factorization on
        # the same symbolic structure (the all-zero values would give a
        # fresh SparseLU a different dissection tree)
        dev_b = Device(A100())
        slu_b = SparseLU(a, use_mc64=False)
        slu_b.factor(backend="batched", device=dev_b, engine="bucketed")
        slu_b.update_values(a_bad)
        slu_b.factor(backend="batched", device=dev_b, engine="bucketed",
                     breakdown="report")
        assert_fronts_equal(slu_b.factor_result.factors,
                            slu.factor_result.factors)


class TestCompiledGuards:
    def test_memory_budget_bypasses_compilation(self, maxwell):
        dev = Device(A100())
        slu = SparseLU(maxwell.matrix, use_mc64=False)
        slu.factor(backend="batched", device=dev, engine="compiled",
                   memory_budget=1 << 30)
        assert slu._factor_program is None
        assert slu.factor_report.ok

    def test_update_values_requires_no_mc64(self, maxwell):
        slu = SparseLU(maxwell.matrix, use_mc64=True)
        with pytest.raises(ValueError, match="use_mc64"):
            slu.update_values(maxwell.matrix)

    def test_update_values_rejects_structure_change(self, maxwell):
        a = maxwell.matrix
        slu = SparseLU(a, use_mc64=False)
        a2 = a.copy().tolil()
        i = 0
        j = int(a.shape[1] - 1)
        if a2[i, j] != 0:
            j -= 1
        a2[i, j] = 1.0
        with pytest.raises(ValueError, match="structure"):
            slu.update_values(a2.tocsr())

    def test_non_batched_strategy_rejected(self, maxwell):
        dev = Device(A100())
        slu = SparseLU(maxwell.matrix, use_mc64=False)
        with pytest.raises(ValueError, match="batched"):
            slu.factor(backend="batched", device=dev, engine="compiled",
                       strategy="rightlooking")
