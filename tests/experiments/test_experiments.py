"""Integration tests: every experiment runs (tiny configs) and the
paper-shape assertions hold.

These use scaled-down workloads (smaller even than "fast" mode) so the
whole file runs in tens of seconds; the benchmarks regenerate the real
fast/full-mode outputs.
"""

import numpy as np
import pytest

from repro.experiments import common, fig06_trsm, fig07_panel, \
    fig10_irrlu, fig11_large, fig13_levels, fig14_breakdown, table1_solvers


class TestCommon:
    def test_fast_mode_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        assert common.is_fast_mode()
        assert common.resolve_fast(None) is True
        assert common.resolve_fast(False) is False

    def test_full_mode_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL", "1")
        assert not common.is_fast_mode()
        assert common.resolve_fast(None) is False


class TestFig06:
    @pytest.fixture(scope="class")
    def results(self):
        return fig06_trsm.run(fast=True)

    def test_speedup_grows_with_rhs(self, results):
        s = results["speedup"]
        assert s[-1] > 2.0          # clear asymptotic win
        assert s[-1] > s[0]         # growing with rhs count

    def test_accuracy_comparable(self, results):
        for e_irr, e_m in zip(results["irrTRSM_err"], results["magma_err"]):
            assert e_irr < 1e-12
            assert e_irr <= 10 * e_m

    def test_report_renders(self, results):
        out = fig06_trsm.report(results)
        assert "irrTRSM" in out and "MAGMA" in out


class TestFig07:
    @pytest.fixture(scope="class")
    def results(self):
        return fig07_panel.run(fast=True)

    def test_fused_beats_columnwise_when_it_fits(self, results):
        for fused, col, fits in zip(results["fused_gflops"],
                                    results["columnwise_gflops"],
                                    results["fused_fits"]):
            if fits:
                assert fused > col

    def test_report_renders(self, results):
        assert "irrGETF2" in fig07_panel.report(results)


class TestFig10:
    @pytest.fixture(scope="class")
    def results(self):
        # tiny sweep: the assertions below are the figure's shape
        import repro.experiments.fig10_irrlu as f
        res = f.run(fast=True)
        return res

    def test_streamed_far_below_batched(self, results):
        for irr, st in zip(results["irrLU_A100"], results["streamed_A100"]):
            assert st < irr

    def test_a100_beats_cpu_for_large_workloads(self, results):
        assert results["irrLU_A100"][-1] > 2 * results["CPU_MKL"][-1]

    def test_mi100_trails_cpu_for_small_workloads(self, results):
        # "the performance of the CPU is quite competitive, especially
        # against the MI100 GPU"
        assert results["irrLU_MI100"][0] < 3 * results["CPU_MKL"][0]

    def test_report_renders(self, results):
        assert "irrLU" in fig10_irrlu.report(results)


class TestFig13:
    @pytest.fixture(scope="class")
    def results(self):
        return fig13_levels.run(fast=True, torus=False)

    def test_batch_size_decreases_toward_root(self, results):
        stats = results["levels"]  # deepest first
        assert stats[0]["batch_size"] > stats[-1]["batch_size"]
        assert stats[-1]["batch_size"] == 1

    def test_mean_size_increases_toward_root(self, results):
        stats = results["levels"]
        assert stats[-1]["mean_size"] > stats[0]["mean_size"]

    def test_report_renders(self, results):
        assert "Fig 13" in fig13_levels.report(results)


class TestTable1:
    @pytest.fixture(scope="class")
    def results(self):
        return table1_solvers.run(fast=True)

    def _time(self, results, solver, device):
        for r in results["rows"]:
            if r["solver"] == solver and r["device"].startswith(device):
                return r["factor_seconds"]
        raise KeyError((solver, device))

    def test_batched_fastest_overall(self, results):
        t_b = self._time(results, "irr-batched", "A100")
        for r in results["rows"]:
            if r["solver"] != "irr-batched":
                assert t_b < r["factor_seconds"]

    def test_batched_beats_loop_on_both_devices(self, results):
        for dev in ("A100", "MI100"):
            assert self._time(results, "irr-batched", dev) < \
                self._time(results, "cuBLAS/cuSOLVER loop", dev)

    def test_counters_shrink(self, results):
        c = results["counters"]
        assert c["batched"]["sync_wait"] < c["strumpack"]["sync_wait"]
        assert c["batched"]["launch_time"] < c["strumpack"]["launch_time"]

    def test_machine_precision_after_one_refinement(self, results):
        res = results["residuals"]
        assert res[-1] < 1e-14

    def test_report_renders(self, results):
        out = table1_solvers.report(results)
        assert "Table I" in out and "STRUMPACK" in out


class TestFig11AndFig14Smoke:
    def test_fig11_runs_and_reports(self):
        # miniature: the crossover itself needs full mode; just exercise
        import repro.experiments.fig11_large as f
        res = f.run(fast=True)
        assert len(res["irrLU"]) == len(res["sizes"])
        assert "Fig 11" in f.report(res)

    def test_fig14_batched_lu_wins_at_deep_levels(self):
        res = fig14_breakdown.run(fast=True)
        deep = res["levels"][0]  # deepest level: many small fronts
        assert deep["batched"]["lu"] < deep["looped"]["lu"]
        assert "Fig 14" in fig14_breakdown.report(res)
