"""Tests for the Fig 12 experiment and the experiments CLI."""

import pathlib

import pytest

from repro.experiments import fig12_problem
from repro.experiments.__main__ import main as cli_main


class TestFig12:
    @pytest.fixture(scope="class")
    def results(self):
        return fig12_problem.run(fast=True, n_rhs=2)

    def test_machine_precision_every_solve(self, results):
        assert all(r < 1e-13 for r in results["residuals"])

    def test_fill_exceeds_input(self, results):
        assert results["factor_nnz"] > results["nnz"]

    def test_torus_geometry(self, results):
        assert "periodic_x=True" in results["mesh"]

    def test_paper_parameters(self, results):
        assert results["omega"] == 16.0
        assert results["kappa"] == pytest.approx(16.0 / 1.05)

    def test_report_renders(self, results):
        out = fig12_problem.report(results)
        assert "Fig 12" in out
        assert "amortiz" in out.lower() or "amortization" in out


class TestCli:
    def test_unknown_experiment_rejected(self, capsys):
        rc = cli_main(["figNaN"])
        assert rc == 2
        assert "unknown experiment" in capsys.readouterr().out

    def test_runs_named_experiment(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        rc = cli_main(["fig13"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Fig 13" in out
        assert (tmp_path / "results" / "fig13.txt").exists()
