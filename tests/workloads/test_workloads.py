"""Tests for the workload generators."""

import numpy as np
import pytest

from repro.workloads import build_maxwell_workload, large_square_batch, \
    level_front_dims, panel_batch, random_square_batch, \
    synthetic_front_batch, triangular_batch, uniform_random_sizes


class TestRandomBatches:
    def test_sizes_within_range(self):
        sizes = uniform_random_sizes(500, 64, seed=1)
        assert sizes.min() >= 1
        assert sizes.max() <= 64
        assert len(sizes) == 500

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            uniform_random_sizes(10, 2, min_size=5)

    def test_deterministic_by_seed(self):
        a = uniform_random_sizes(100, 32, seed=7)
        b = uniform_random_sizes(100, 32, seed=7)
        np.testing.assert_array_equal(a, b)

    def test_square_batch_shapes(self):
        mats = random_square_batch(20, 50, seed=2)
        for m in mats:
            assert m.shape[0] == m.shape[1]
            assert 1 <= m.shape[0] <= 50

    def test_large_batch_uniform(self):
        mats = large_square_batch(3, 128, seed=0)
        assert all(m.shape == (128, 128) for m in mats)

    def test_triangular_batch_well_scaled(self):
        ts, bs = triangular_batch(30, 64, 4, seed=3)
        for t, b in zip(ts, bs):
            assert b.shape == (t.shape[0], 4)
            assert np.abs(np.diag(t)).min() >= 0.5
            assert np.allclose(t, np.tril(t))

    def test_panel_batch(self):
        mats = panel_batch(10, 100, 16, seed=4)
        for m in mats:
            assert m.shape[1] == 16
            assert 16 <= m.shape[0] <= 100
        fixed = panel_batch(10, 100, 16, vary=False)
        assert all(m.shape == (100, 16) for m in fixed)


class TestMaxwellWorkload:
    def test_build_and_levels(self):
        wl = build_maxwell_workload(5)
        assert wl.matrix.shape[0] == wl.symb.n
        dims = level_front_dims(wl.symb)
        assert sum(len(d) for d in dims) == len(wl.symb.fronts)
        # root level has one front
        assert len(dims[-1]) == 1

    def test_torus_variant(self):
        wl = build_maxwell_workload(4, torus=True)
        assert wl.problem.mesh.periodic_x
        assert wl.matrix.shape[0] > 0

    def test_synthetic_fronts_match_dims(self):
        fronts = synthetic_front_batch([(3, 5), (0, 2), (4, 0)], seed=1)
        assert fronts[0].shape == (8, 8)
        assert fronts[1].shape == (2, 2)
        assert fronts[2].shape == (4, 4)

    def test_synthetic_pivot_blocks_nonsingular(self):
        fronts = synthetic_front_batch([(16, 8)] * 5, seed=2)
        for f in fronts:
            assert np.abs(np.linalg.det(f[:16, :16])) > 0
