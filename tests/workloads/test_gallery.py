"""Validation harness over the pathological-matrix gallery.

Acceptance contract (run under ``-W error::RuntimeWarning`` via the
``gallery`` marker's CI job): every gallery matrix either solves to a
scaled backward error ≤ 1e-12 or raises a typed ``FactorizationError``
carrying a per-front ``FactorReport`` — never silent NaN/Inf — on both
execution engines, with bitwise-identical diagnostics between them.
"""

import numpy as np
import pytest

from repro.device import A100, Device
from repro.workloads import GALLERY, gallery_entry, gallery_names, \
    run_gallery

pytestmark = [pytest.mark.gallery,
              pytest.mark.filterwarnings("error::RuntimeWarning")]

BERR_TOL = 1e-12
DIAG_FIELDS = ("info", "n_replaced", "min_pivot", "growth", "level",
               "sep_size")


def assert_contract(results):
    """Solved with small backward error, or a typed error with report."""
    for name, rec in results.items():
        if rec["outcome"] == "solved":
            assert rec["berr"] <= BERR_TOL, (name, rec["berr"])
        else:
            assert rec["outcome"] in ("factor_breakdown",
                                      "solve_breakdown"), name
            assert rec["error"], name
            assert rec["report"] is not None, name


class TestGalleryRegistry:
    def test_names_unique_and_lookup(self):
        names = gallery_names()
        assert len(names) == len(set(names))
        for n in names:
            assert gallery_entry(n).name == n
        with pytest.raises(KeyError):
            gallery_entry("nope")

    def test_covers_required_pathologies(self):
        kinds = {e.kind for e in GALLERY}
        assert kinds == {"solvable", "singular", "indefinite"}
        assert len([e for e in GALLERY if e.kind == "singular"]) >= 2


class TestGalleryCpu:
    @pytest.mark.parametrize("static", [False, True])
    def test_contract_holds(self, static):
        assert_contract(run_gallery(static_pivot=static))

    def test_outcomes_by_kind_without_static(self):
        res = run_gallery()
        for e in GALLERY:
            rec = res[e.name]
            if e.kind == "singular":
                assert rec["outcome"] == "factor_breakdown", e.name
                assert not rec["report"].ok
            else:
                assert rec["outcome"] == "solved", (e.name, rec)
                assert rec["report"].ok
                assert rec["report"].total_replaced == 0

    def test_singular_entries_raise_through_solve_with_static(self):
        res = run_gallery(static_pivot=True)
        for e in GALLERY:
            rec = res[e.name]
            if e.kind == "singular":
                assert rec["outcome"] == "solve_breakdown", e.name
                assert rec["report"].total_replaced >= 1
            else:
                assert rec["outcome"] == "solved", e.name


class TestGalleryEngines:
    @pytest.mark.parametrize("engine", ["bucketed", "naive"])
    @pytest.mark.parametrize("static", [False, True])
    def test_contract_holds_on_device(self, engine, static):
        assert_contract(run_gallery(Device(A100()), engine=engine,
                                    static_pivot=static))

    @pytest.mark.parametrize("static", [False, True])
    def test_engines_bitwise_identical(self, static):
        res = {eng: run_gallery(Device(A100()), engine=eng,
                                static_pivot=static)
               for eng in ("bucketed", "naive")}
        for e in GALLERY:
            rb, rn = res["bucketed"][e.name], res["naive"][e.name]
            assert rb["outcome"] == rn["outcome"], e.name
            assert rb["berr"] == rn["berr"], e.name
            if rb["report"] is None:
                assert rn["report"] is None
                continue
            for f in DIAG_FIELDS:
                assert np.array_equal(getattr(rb["report"], f),
                                      getattr(rn["report"], f)), \
                    (e.name, f)

    def test_batched_outcomes_match_cpu(self):
        cpu = run_gallery(static_pivot=True)
        dev = run_gallery(Device(A100()), static_pivot=True)
        for e in GALLERY:
            assert cpu[e.name]["outcome"] == dev[e.name]["outcome"], e.name
