"""Cross-module property-based invariants.

Each property here is something the system's correctness *rests on*, as
opposed to the per-module behaviour tests: extend-add algebra, DCWI
consistency against dense references under random offsets, permutation
algebra of the row interchanges, and conservation laws of the simulator.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.batched import IrrBatch, PanelPivots, fused_getf2, irr_gemm, \
    irr_laswp, lu_reconstruct
from repro.device import A100, Device, KernelCost
from repro.sparse import nested_dissection, symbolic_analysis
from repro.sparse.numeric.factors import assemble_front

from .sparse.util import grid2d


# ----------------------------------------------------------------------
# extend-add algebra
# ----------------------------------------------------------------------

class TestExtendAddAlgebra:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 2 ** 31 - 1))
    def test_extend_add_is_order_independent(self, seed):
        """Scattering children contributions commutes — required for any
        per-level batching order to be legal."""
        rng = np.random.default_rng(seed)
        a = grid2d(8, 8, seed=seed % 100)
        nd = nested_dissection(a, leaf_size=8)
        ap = a[nd.perm][:, nd.perm].tocsr()
        symb = symbolic_analysis(ap, nd)
        # find a front with >= 2 children
        target = next((f for f in symb.fronts if len(f.children) >= 2),
                      None)
        if target is None:
            return
        contribs = []
        for c in target.children:
            u = symb.fronts[c].upd
            contribs.append((rng.standard_normal((len(u), len(u))), u))
        f1 = assemble_front(ap, target, contribs)
        f2 = assemble_front(ap, target, contribs[::-1])
        np.testing.assert_allclose(f1, f2, atol=1e-14)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 2 ** 31 - 1))
    def test_extend_add_linear(self, seed):
        rng = np.random.default_rng(seed)
        a = grid2d(6, 6, seed=1)
        nd = nested_dissection(a, leaf_size=6)
        ap = a[nd.perm][:, nd.perm].tocsr()
        symb = symbolic_analysis(ap, nd)
        target = next((f for f in symb.fronts if f.children), None)
        if target is None:
            return
        c = target.children[0]
        u = symb.fronts[c].upd
        s1 = rng.standard_normal((len(u), len(u)))
        s2 = rng.standard_normal((len(u), len(u)))
        base = assemble_front(ap, target, [])
        f_sum = assemble_front(ap, target, [(s1 + s2, u)])
        f_parts = assemble_front(ap, target, [(s1, u), (s2, u)])
        np.testing.assert_allclose(f_sum, f_parts, atol=1e-12)
        # and subtracting the base leaves exactly the scattered updates
        np.testing.assert_allclose((f_sum - base).sum(),
                                   (s1 + s2).sum(), atol=1e-9)


# ----------------------------------------------------------------------
# DCWI vs dense reference under random offsets
# ----------------------------------------------------------------------

class TestDcwiAgainstDense:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 2 ** 31 - 1), st.integers(1, 6),
           st.integers(0, 9), st.integers(0, 9))
    def test_offset_gemm_equals_dense_slice(self, seed, bs, oi, oj):
        """For any offsets, irrGEMM touches exactly the DCWI-predicted
        slice of every matrix and computes the dense product there."""
        rng = np.random.default_rng(seed)
        dev = Device(A100())
        sizes = rng.integers(1, 14, size=bs)
        mats = [rng.standard_normal((int(n), int(n))) for n in sizes]
        A = IrrBatch.from_host(dev, [m.copy() for m in mats])
        B = IrrBatch.from_host(dev, [m.copy() for m in mats])
        C = IrrBatch.from_host(dev, [m.copy() for m in mats])
        before = [m.copy() for m in mats]
        m = n = k = 5
        irr_gemm(dev, "N", "N", m, n, k, 1.0, A, (oi, oj), B, (oj, oi),
                 1.0, C, (oi, oi))
        for i, sz in enumerate(sizes):
            sz = int(sz)
            mi = max(0, min(m, sz - oi))
            ni = max(0, min(n, sz - oi))
            ki = max(0, min(k, sz - oj, sz - oj))
            want = before[i].copy()
            if mi and ni:
                ki_a = max(0, min(k, sz - oj))
                ki_b = max(0, min(k, sz - oj))
                ki = min(ki, ki_a, ki_b)
                if ki:
                    want[oi:oi + mi, oi:oi + ni] += (
                        before[i][oi:oi + mi, oj:oj + ki] @
                        before[i][oj:oj + ki, oi:oi + ni])
            np.testing.assert_allclose(C.matrix(i), want, rtol=1e-10,
                                       atol=1e-10)


# ----------------------------------------------------------------------
# row-interchange permutation algebra
# ----------------------------------------------------------------------

class TestLaswpAlgebra:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 2 ** 31 - 1))
    def test_laswp_applies_a_permutation(self, seed):
        """The interchange sequence is a permutation: row multisets are
        preserved exactly (no row duplicated or lost)."""
        rng = np.random.default_rng(seed)
        dev = Device(A100())
        n = int(rng.integers(8, 40))
        a = rng.standard_normal((n, n))
        b = IrrBatch.from_host(dev, [a.copy()])
        piv = PanelPivots(b)
        ib = min(8, n)
        fused_getf2(dev, b, piv, 0, ib)
        snapshot = np.sort(b.matrix(0)[:, ib:].copy(), axis=0) \
            if n > ib else None
        irr_laswp(dev, b, piv, 0, ib, "right", variant="rehearsed")
        if snapshot is not None:
            after = np.sort(b.matrix(0)[:, ib:], axis=0)
            np.testing.assert_allclose(after, snapshot, atol=0)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 2 ** 31 - 1))
    def test_factorization_pivots_reconstruct(self, seed):
        rng = np.random.default_rng(seed)
        dev = Device(A100())
        from repro.batched import irr_getrf
        sizes = rng.integers(1, 50, size=4)
        mats = [rng.standard_normal((int(n), int(n))) for n in sizes]
        b = IrrBatch.from_host(dev, [m.copy() for m in mats])
        piv = irr_getrf(dev, b, concurrent_swaps=bool(seed % 2))
        for i, a in enumerate(mats):
            rec = lu_reconstruct(b.matrix(i), piv[i])
            assert np.abs(rec - a).max() < 1e-10 * max(1, np.abs(a).max())


# ----------------------------------------------------------------------
# simulator conservation laws
# ----------------------------------------------------------------------

class TestSimulatorConservation:
    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 3), st.floats(1e5, 1e9)),
                    min_size=1, max_size=20))
    def test_causality_and_work_conservation(self, launches):
        """Every kernel starts at/after its issue, ends after it starts,
        streams stay FIFO, and the makespan is at least the critical
        stream's total intrinsic time."""
        dev = Device(A100())
        for sid, flops in launches:
            dev.launch(f"k{sid}", None,
                       KernelCost(flops=flops, blocks=32), stream=sid)
        dev.synchronize()
        per_stream: dict[int, list] = {}
        for r in dev.profiler.records:
            assert r.start >= r.host_issue - 1e-15
            assert r.end > r.start
            per_stream.setdefault(r.stream, []).append(r)
        for recs in per_stream.values():
            recs.sort(key=lambda r: r.seq)
            for a, b in zip(recs, recs[1:]):
                assert b.start >= a.end - 1e-15
            total = sum(r.intrinsic for r in recs)
            assert dev.device_time >= total - 1e-12

    @settings(max_examples=10, deadline=None)
    @given(st.integers(1, 30), st.integers(1, 8))
    def test_memory_conservation(self, n_allocs, size):
        dev = Device(A100())
        arrays = [dev.zeros((size, size)) for _ in range(n_allocs)]
        assert dev.allocated_bytes == n_allocs * size * size * 8
        for a in arrays:
            a.free()
        assert dev.allocated_bytes == 0
