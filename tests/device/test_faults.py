"""Fault injection: seeded schedules, corruption detection, recovery."""

import numpy as np
import pytest

from repro.device import (A100, CORRUPT_MAGNITUDE, FAULT_KINDS,
                          MAX_TRANSFER_ATTEMPTS, PERSISTENT, Device,
                          DeviceOutOfMemory, FaultInjector, FaultPlan,
                          FaultRule, KernelCost)
from repro.errors import KernelLaunchError, TransferError


class TestFaultRuleValidation:
    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultRule("cosmic-ray", at=0)

    def test_rule_needs_position_or_probability(self):
        with pytest.raises(ValueError, match="needs a position"):
            FaultRule("alloc")

    def test_negative_at_raises(self):
        with pytest.raises(ValueError, match="at must be >= 0"):
            FaultRule("h2d", at=-1)

    def test_zero_times_raises(self):
        with pytest.raises(ValueError, match="times"):
            FaultRule("alloc", at=0, times=0)

    def test_probability_out_of_range_raises(self):
        with pytest.raises(ValueError, match="probability"):
            FaultRule("d2h", probability=1.5)

    def test_stall_rule_needs_duration(self):
        with pytest.raises(ValueError, match="stall > 0"):
            FaultRule("stall", at=0)

    def test_plan_rejects_non_rules(self):
        with pytest.raises(TypeError, match="expected FaultRule"):
            FaultPlan(["alloc"])

    def test_fires_at_window(self):
        r = FaultRule("alloc", at=2, times=3)
        assert [r.fires_at(i) for i in range(6)] == \
            [False, False, True, True, True, False]

    def test_persistent_fires_forever(self):
        r = FaultRule("alloc", at=1, times=PERSISTENT)
        assert not r.fires_at(0)
        assert all(r.fires_at(i) for i in (1, 10, 10**6))


class TestDeterminism:
    def test_same_seed_same_probabilistic_schedule(self):
        plan = FaultPlan([FaultRule("alloc", probability=0.3)], seed=42)
        schedules = []
        for _ in range(2):
            inj = FaultInjector(plan)
            fired = [inj._fire("alloc", f"site{i}") is not None
                     for i in range(50)]
            schedules.append(fired)
        assert schedules[0] == schedules[1]
        assert any(schedules[0]) and not all(schedules[0])

    def test_different_seed_different_schedule(self):
        def schedule(seed):
            inj = FaultInjector(FaultPlan(
                [FaultRule("h2d", probability=0.5)], seed=seed))
            return [inj._fire("h2d", "s") is not None for i in range(64)]
        assert schedule(1) != schedule(2)

    def test_counters_are_per_kind(self):
        plan = FaultPlan([FaultRule("alloc", at=0),
                          FaultRule("h2d", at=0)])
        inj = FaultInjector(plan)
        assert inj._fire("alloc", "a") is not None
        # h2d counter untouched by the alloc op above
        assert inj._fire("h2d", "b") is not None
        assert inj.counters == {**{k: 0 for k in FAULT_KINDS},
                                "alloc": 1, "h2d": 1}

    def test_injected_records_kind_site_index(self):
        dev = Device(A100())
        plan = FaultPlan([FaultRule("launch", at=1)])
        with dev.fault_scope(plan) as inj:
            dev.launch("k0", None, KernelCost(flops=1))     # index 0 passes
            with pytest.raises(KernelLaunchError):
                dev.launch("k1", None, KernelCost(flops=1))
        assert [(f.kind, f.site, f.index) for f in inj.injected] == \
            [("launch", "k1", 1)]
        assert inj.injected_of("launch") == inj.injected
        assert inj.injected_of("alloc") == []


class TestAllocFaults:
    def test_transient_alloc_failure_then_success(self):
        dev = Device(A100())
        plan = FaultPlan([FaultRule("alloc", at=0)])
        with dev.fault_scope(plan) as inj:
            with pytest.raises(DeviceOutOfMemory, match="injected"):
                dev.zeros((8, 8))
            a = dev.zeros((8, 8))       # retry: counter moved past the rule
            assert dev.allocated_bytes == a.nbytes
            a.free()
        assert dev.allocated_bytes == 0
        assert inj.n_injected == 1

    def test_persistent_alloc_failure(self):
        dev = Device(A100())
        plan = FaultPlan([FaultRule("alloc", at=0, times=PERSISTENT)])
        with dev.fault_scope(plan):
            for _ in range(3):
                with pytest.raises(DeviceOutOfMemory):
                    dev.empty((4,))
        assert dev.allocated_bytes == 0

    def test_match_filters_alloc_site(self):
        dev = Device(A100())
        plan = FaultPlan([FaultRule("alloc", at=0, times=PERSISTENT,
                                    match="zeros")])
        with dev.fault_scope(plan):
            a = dev.empty((4,))         # site "empty": passes
            with pytest.raises(DeviceOutOfMemory):
                dev.zeros((4,))
            a.free()
        assert dev.allocated_bytes == 0


class TestTransferFaults:
    def test_transient_h2d_corruption_is_repaired(self, rng):
        dev = Device(A100())
        host = rng.standard_normal((16, 16))
        with dev.fault_scope(FaultPlan([FaultRule("h2d", at=0)])) as inj:
            a = dev.from_host(host)
            np.testing.assert_array_equal(a.data, host)
            a.free()
        assert inj.n_injected == 1
        retries = [e for e in dev.recovery_log if e.action == "transfer-retry"]
        assert len(retries) == 1 and retries[0].attempt == 1

    def test_persistent_h2d_raises_typed_transfer_error(self, rng):
        dev = Device(A100())
        host = rng.standard_normal(64)
        plan = FaultPlan([FaultRule("h2d", at=0, times=PERSISTENT)])
        with dev.fault_scope(plan):
            with pytest.raises(TransferError) as ei:
                dev.from_host(host)
        assert ei.value.attempts == MAX_TRANSFER_ATTEMPTS
        assert ei.value.direction == "h2d"
        # the failed upload released its claim
        assert dev.allocated_bytes == 0
        assert dev.recovery_log.count("transfer-retry") == \
            MAX_TRANSFER_ATTEMPTS - 1

    def test_transient_d2h_corruption_is_repaired(self, rng):
        dev = Device(A100())
        host = rng.standard_normal(32)
        a = dev.from_host(host)
        with dev.fault_scope(FaultPlan([FaultRule("d2h", at=0)])):
            np.testing.assert_array_equal(a.to_host(), host)
        a.free()

    def test_persistent_d2h_raises(self, rng):
        dev = Device(A100())
        a = dev.from_host(rng.standard_normal(32))
        plan = FaultPlan([FaultRule("d2h", at=0, times=PERSISTENT)])
        with dev.fault_scope(plan):
            with pytest.raises(TransferError, match="d2h"):
                a.to_host()
        a.free()
        assert dev.allocated_bytes == 0

    def test_unverified_corruption_lands_silently(self, rng):
        # the hazard the checksums exist for: verification off, the
        # bit-flip reaches device memory undetected
        dev = Device(A100())
        host = rng.standard_normal(64)
        plan = FaultPlan([FaultRule("h2d", at=0)])
        with dev.fault_scope(plan, verify_transfers=False):
            a = dev.from_host(host)
        assert not np.array_equal(a.data, host)
        assert (a.data != host).sum() == 1      # exactly one element flipped
        a.free()

    def test_each_retry_pays_the_bus(self, rng):
        dev = Device(A100())
        host = rng.standard_normal(1024)
        with dev.fault_scope(FaultPlan([FaultRule("h2d", at=0, times=2)])):
            a = dev.from_host(host)
        # 2 corrupted attempts + 1 clean = 3 transfers accounted
        assert dev.profiler.transfer_count == 3
        a.free()


class TestLaunchFaults:
    def test_launch_failure_is_typed_and_state_preserving(self):
        dev = Device(A100())
        touched = []
        plan = FaultPlan([FaultRule("launch", at=0)])
        with dev.fault_scope(plan):
            with pytest.raises(KernelLaunchError) as ei:
                dev.launch("irrgemm[f21]", lambda: touched.append(1))
        assert ei.value.kernel == "irrgemm[f21]"
        assert touched == []        # numerics never ran
        assert dev.profiler.launch_count == 0

    def test_match_filters_kernel_name(self):
        dev = Device(A100())
        plan = FaultPlan([FaultRule("launch", at=0, times=PERSISTENT,
                                    match="getrf")])
        with dev.fault_scope(plan):
            dev.launch("irrgemm", None, KernelCost(flops=1))    # passes
            with pytest.raises(KernelLaunchError):
                dev.launch("irrgetrf", None, KernelCost(flops=1))

    def test_stall_delays_the_stream(self):
        dev = Device(A100())
        cost = KernelCost(flops=1e6)
        dev.launch("warm", None, cost)
        base = dev.synchronize()
        dev.reset()
        with dev.fault_scope(FaultPlan([FaultRule("stall", at=0,
                                                  stall=0.25)])):
            dev.launch("warm", None, cost)
            stalled = dev.synchronize()
        # the kernel cannot start before the stall clears at t=0.25
        assert stalled >= 0.25
        assert stalled > base
        assert dev.profiler.stall_count == 1
        assert dev.profiler.stall_time == pytest.approx(0.25)

    def test_stall_is_timing_only(self, rng):
        dev = Device(A100())
        host = rng.standard_normal((4, 4))
        a = dev.from_host(host)
        with dev.fault_scope(FaultPlan([FaultRule("stall", at=0,
                                                  stall=1.0)])):
            def kern():
                a.data[...] *= 2.0
                return KernelCost(flops=16)
            dev.launch("scale", kern)
            dev.synchronize()
        np.testing.assert_array_equal(a.data, 2.0 * host)
        a.free()


class TestCorruptFaults:
    def test_corrupt_needs_registered_outputs(self):
        # launches that register no outputs are not corrupt sites: the
        # rule stays armed until an output-registering launch matches
        dev = Device(A100())
        a = dev.zeros((4, 4))
        plan = FaultPlan([FaultRule("corrupt", at=0)])
        with dev.fault_scope(plan) as inj:
            dev.launch("plain", None, KernelCost(flops=1))
            assert inj.n_injected == 0
            dev.launch("writer", None, KernelCost(flops=1),
                       outputs=lambda: [a.data])
            assert inj.n_injected == 1
        assert not np.array_equal(a.data, np.zeros((4, 4)))
        a.free()

    def test_corruption_is_scale_dominant(self, rng):
        dev = Device(A100())
        host = rng.standard_normal((8, 8))
        a = dev.from_host(host)
        with dev.fault_scope(FaultPlan([FaultRule("corrupt", at=0)])):
            dev.launch("writer", None, KernelCost(flops=1),
                       outputs=lambda: [a.data])
        diff = np.abs(a.data - host)
        assert (diff > 0).sum() == 1        # exactly one element hit
        # the written value dwarfs the buffer's own scale, so no
        # rounding-tolerance check can mistake it for noise
        assert np.abs(a.data).max() >= \
            CORRUPT_MAGNITUDE * np.abs(host).max()
        a.free()

    def test_corruption_pattern_is_seeded(self, rng):
        host = rng.standard_normal((6, 6))

        def run(seed):
            dev = Device(A100())
            a = dev.from_host(host)
            plan = FaultPlan([FaultRule("corrupt", at=0)], seed=seed)
            with dev.fault_scope(plan):
                dev.launch("writer", None, KernelCost(flops=1),
                           outputs=lambda: [a.data])
            out = a.data.copy()
            a.free()
            return out

        np.testing.assert_array_equal(run(3), run(3))
        assert not np.array_equal(run(3), run(4))

    def test_match_filters_corrupt_site(self):
        dev = Device(A100())
        a = dev.zeros((4,))
        plan = FaultPlan([FaultRule("corrupt", at=0, times=PERSISTENT,
                                    match="getrf")])
        with dev.fault_scope(plan) as inj:
            dev.launch("irrgemm", None, KernelCost(flops=1),
                       outputs=lambda: [a.data])
            assert inj.n_injected == 0
            dev.launch("irrgetrf", None, KernelCost(flops=1),
                       outputs=lambda: [a.data])
            assert inj.n_injected == 1
        a.free()

    def test_corrupt_plan_auto_enables_kernel_verification(self):
        dev = Device(A100())
        assert not dev.verify_kernels
        with dev.fault_scope(FaultPlan([FaultRule("corrupt", at=9)])):
            assert dev.verify_kernels
        assert not dev.verify_kernels
        # plans without corrupt rules keep verification off (existing
        # fault schedules stay byte-identical)
        with dev.fault_scope(FaultPlan([FaultRule("alloc", at=9)])):
            assert not dev.verify_kernels
        # explicit override wins over the automatic default
        with dev.fault_scope(FaultPlan([FaultRule("corrupt", at=9)]),
                             verify_kernels=False):
            assert not dev.verify_kernels


class TestFaultScope:
    def test_scope_restores_state(self):
        dev = Device(A100())
        assert dev._injector is None and not dev.verify_transfers
        with dev.fault_scope(FaultPlan([FaultRule("alloc", at=9)])) as inj:
            assert dev._injector is inj
            assert dev.verify_transfers
        assert dev._injector is None
        assert not dev.verify_transfers

    def test_scope_restores_on_exception(self):
        dev = Device(A100())
        with pytest.raises(RuntimeError, match="boom"):
            with dev.fault_scope(FaultPlan([])):
                raise RuntimeError("boom")
        assert dev._injector is None
        assert not dev.verify_transfers

    def test_scope_accepts_injector_to_share_counters(self):
        # one schedule spanning two scopes: the 2nd alloc overall fails
        inj = FaultInjector(FaultPlan([FaultRule("alloc", at=1)]))
        dev = Device(A100())
        with dev.fault_scope(inj):
            a = dev.empty((4,))
        with dev.fault_scope(inj):
            with pytest.raises(DeviceOutOfMemory):
                dev.empty((4,))
        a.free()
        assert dev.allocated_bytes == 0

    def test_nested_scope_restores_outer(self):
        dev = Device(A100())
        p1 = FaultPlan([FaultRule("alloc", at=99)])
        p2 = FaultPlan([FaultRule("h2d", at=99)])
        with dev.fault_scope(p1) as i1:
            with dev.fault_scope(p2) as i2:
                assert dev._injector is i2
            assert dev._injector is i1
        assert dev._injector is None

    def test_nested_scope_verification_is_sticky_on(self):
        # ABFT verification never weakens across nesting: a nested
        # non-corrupt plan (even one passing verify_kernels=False)
        # cannot switch off the protection the outer corrupt plan
        # turned on — and the outer exit restores the device default
        dev = Device(A100())
        with dev.fault_scope(FaultPlan([FaultRule("corrupt", at=99)])):
            assert dev.verify_kernels
            with dev.fault_scope(FaultPlan([FaultRule("alloc", at=99)])):
                assert dev.verify_kernels
            with dev.fault_scope(FaultPlan([]), verify_kernels=False):
                assert dev.verify_kernels
            assert dev.verify_kernels
        assert not dev.verify_kernels

    def test_inner_scope_faults_do_not_advance_outer_counters(self):
        # counters live on the injector, not the device: the inner
        # scope's operations must not consume the outer rule's position
        dev = Device(A100())
        outer = FaultPlan([FaultRule("alloc", at=1)])
        with dev.fault_scope(outer):
            with dev.fault_scope(FaultPlan([])):
                a = dev.empty((4,))     # alloc #0 of the INNER injector
                b = dev.empty((4,))
                a.free()
                b.free()
            c = dev.empty((4,))         # alloc #0 of the outer injector
            with pytest.raises(DeviceOutOfMemory):
                dev.empty((4,))         # alloc #1: outer rule fires
            c.free()
        assert dev.allocated_bytes == 0


class TestRuleExhaustion:
    def test_exhausted_window_never_refires(self):
        dev = Device(A100())
        plan = FaultPlan([FaultRule("alloc", at=0, times=2)])
        with dev.fault_scope(plan) as inj:
            for _ in range(2):
                with pytest.raises(DeviceOutOfMemory):
                    dev.empty((4,))
            for _ in range(20):         # window spent: everything passes
                dev.empty((4,)).free()
        assert inj.n_injected == 2
        assert dev.allocated_bytes == 0

    def test_rules_exhaust_independently_per_match(self):
        # two positional rules of the same kind count their OWN matched
        # operations; exhausting one leaves the other's position intact
        dev = Device(A100())
        plan = FaultPlan([FaultRule("launch", at=0, match="gemm"),
                          FaultRule("launch", at=1, match="trsm")])
        with dev.fault_scope(plan) as inj:
            with pytest.raises(KernelLaunchError):
                dev.launch("irrgemm", None, KernelCost(flops=1))
            dev.launch("irrgemm", None, KernelCost(flops=1))  # exhausted
            dev.launch("irrtrsm", None, KernelCost(flops=1))  # trsm #0
            with pytest.raises(KernelLaunchError):
                dev.launch("irrtrsm", None, KernelCost(flops=1))
        assert [(f.kind, f.site) for f in inj.injected] == \
            [("launch", "irrgemm"), ("launch", "irrtrsm")]

    def test_exhausted_plan_runs_clean_across_scopes(self):
        # sharing the injector across scopes preserves exhaustion: the
        # second scope sees a fully spent schedule and injects nothing
        inj = FaultInjector(FaultPlan([FaultRule("alloc", at=0)]))
        dev = Device(A100())
        with dev.fault_scope(inj):
            with pytest.raises(DeviceOutOfMemory):
                dev.empty((4,))
        with dev.fault_scope(inj):
            for _ in range(5):
                dev.empty((4,)).free()
        assert inj.n_injected == 1
        assert dev.allocated_bytes == 0

    def test_empty_plan_injects_nothing(self, rng):
        dev = Device(A100())
        host = rng.standard_normal((8, 8))
        with dev.fault_scope(FaultPlan([])) as inj:
            a = dev.from_host(host)
            dev.launch("k", None, KernelCost(flops=1),
                       outputs=lambda: [a.data])
            np.testing.assert_array_equal(a.to_host(), host)
            a.free()
        assert inj.n_injected == 0
        assert inj.counters == {**{k: 0 for k in FAULT_KINDS},
                                "alloc": 1, "h2d": 1, "d2h": 1,
                                "launch": 1, "stall": 1, "corrupt": 1}


class TestAccountingGuards:
    def test_negative_claim_raises(self):
        dev = Device(A100())
        with pytest.raises(ValueError):
            dev._claim(-1)

    def test_over_release_raises(self):
        dev = Device(A100())
        a = dev.empty((4,))
        a.free()
        with pytest.raises(RuntimeError, match="double release"):
            dev._release(a.nbytes)

    def test_free_is_idempotent(self):
        dev = Device(A100())
        a = dev.empty((8, 8))
        a.free()
        a.free()                            # no-op, no exception
        assert dev.allocated_bytes == 0

    def test_free_on_view_is_noop(self):
        dev = Device(A100())
        a = dev.empty((8, 8))
        v = a[2:4, :]
        v.free()                            # views own no bytes
        assert dev.allocated_bytes == a.nbytes
        a.free()
        assert dev.allocated_bytes == 0

    def test_context_manager_frees(self):
        dev = Device(A100())
        with dev.empty((16, 16)) as scratch:
            assert dev.allocated_bytes == scratch.nbytes
        assert dev.allocated_bytes == 0

    def test_context_manager_frees_on_exception(self):
        dev = Device(A100())
        with pytest.raises(RuntimeError):
            with dev.empty((16, 16)):
                raise RuntimeError("mid-kernel failure")
        assert dev.allocated_bytes == 0
