"""Additional coverage: device memory semantics and profiler accounting."""

import numpy as np
import pytest

from repro.device import A100, Device, DeviceOutOfMemory, KernelCost, \
    pack_to_device
from repro.device.memory import total_nbytes

from .test_simulator import tiny_spec


class TestDeviceArraySemantics:
    def test_view_of_view_shares_base(self, a100):
        a = a100.zeros((16, 16))
        v1 = a[2:10, 2:10]
        v2 = v1[1:3, 1:3]
        v2.data[...] = 7.0
        assert np.all(a.data[3:5, 3:5] == 7.0)
        assert v2.base is a

    def test_free_is_idempotent(self, a100):
        a = a100.zeros((8, 8))
        a.free()
        a.free()  # second free must not double-release
        assert a100.allocated_bytes >= 0

    def test_dtype_allocations(self, a100):
        for dtype, itemsize in [(np.float32, 4), (np.float64, 8),
                                (np.complex128, 16)]:
            before = a100.allocated_bytes
            arr = a100.zeros((10, 10), dtype=dtype)
            assert a100.allocated_bytes - before == 100 * itemsize
            arr.free()

    def test_transfer_time_scales_with_bytes(self):
        dev1, dev2 = Device(A100()), Device(A100())
        dev1.from_host(np.zeros(10))
        dev2.from_host(np.zeros(10_000_000))
        assert dev2.profiler.transfer_time > dev1.profiler.transfer_time

    def test_total_nbytes_helper(self):
        assert total_nbytes([(2, 3), (4,)], np.float64) == 6 * 8 + 4 * 8

    def test_oom_message_mentions_device(self):
        dev = Device(tiny_spec(memory_capacity=100))
        with pytest.raises(DeviceOutOfMemory, match="tiny"):
            dev.zeros(1000)

    def test_pack_to_device_single_transfer(self):
        # packing N equal-shape blocks pays the PCIE latency once, a
        # per-block from_host loop pays it N times
        blocks = [np.full((4, 3), float(i)) for i in range(16)]
        packed_dev, loop_dev = Device(A100()), Device(A100())
        stack = pack_to_device(packed_dev, blocks)
        assert stack.shape == (16, 4, 3)
        for i, b in enumerate(blocks):
            np.testing.assert_array_equal(stack.data[i], b)
        for b in blocks:
            loop_dev.from_host(b)
        assert packed_dev.allocated_bytes == loop_dev.allocated_bytes
        assert packed_dev.profiler.transfer_time < \
            loop_dev.profiler.transfer_time

    def test_pack_to_device_empty_and_dtype(self):
        dev = Device(A100())
        t0 = dev.profiler.transfer_time
        empty = pack_to_device(dev, [])
        assert empty.data.size == 0
        assert dev.profiler.transfer_time == t0  # nothing crossed the bus
        stack = pack_to_device(dev, [np.ones((2, 2), dtype=np.float64)],
                               dtype=np.complex128)
        assert stack.dtype == np.complex128


class TestProfilerAccounting:
    def test_snapshot_diff_isolates_region(self, a100):
        a100.launch("x", None, KernelCost(flops=1e6, blocks=4))
        a100.synchronize()
        snap = a100.profiler.snapshot()
        a100.launch("y", None, KernelCost(flops=1e6, blocks=4))
        a100.synchronize()
        after = a100.profiler.snapshot()
        assert after["launch_count"] - snap["launch_count"] == 1

    def test_clear_resets_everything(self, a100):
        a100.launch("x", None, KernelCost(flops=1e6, blocks=4))
        a100.synchronize()
        a100.profiler.clear()
        assert a100.profiler.launch_count == 0
        assert a100.profiler.total_kernel_time() == 0.0
        assert not a100.profiler.by_kernel()

    def test_mean_time(self, a100):
        for _ in range(4):
            a100.launch("k", None, KernelCost(flops=1e6, blocks=4))
        a100.synchronize()
        s = a100.profiler.by_kernel()["k"]
        assert s.mean_time == pytest.approx(s.total_time / 4)

    def test_kernel_record_durations_positive(self, a100):
        a100.launch("k", None, KernelCost(flops=1e6, blocks=4))
        a100.synchronize()
        assert all(r.duration > 0 for r in a100.profiler.records)


class TestPeakScaleRoofline:
    def test_fp32_kernel_faster(self):
        from repro.device import intrinsic_duration
        spec = A100()
        base = dict(flops=1e10, blocks=10000, kernel_class="gemm_irr")
        t64 = intrinsic_duration(KernelCost(peak_scale=1.0, **base), spec)
        t32 = intrinsic_duration(KernelCost(peak_scale=2.0, **base), spec)
        assert t32 < t64

    def test_complex_kernel_slower(self):
        from repro.device import intrinsic_duration
        spec = A100()
        base = dict(flops=1e10, blocks=10000, kernel_class="gemm_irr")
        t64 = intrinsic_duration(KernelCost(peak_scale=1.0, **base), spec)
        tc = intrinsic_duration(KernelCost(peak_scale=0.25, **base), spec)
        assert tc > 3 * t64

    def test_merged_takes_slower_dtype(self):
        a = KernelCost(peak_scale=2.0)
        b = KernelCost(peak_scale=0.25)
        assert a.merged(b).peak_scale == 0.25
