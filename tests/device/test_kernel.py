"""Tests for kernel cost descriptors and the roofline timing model."""

import pytest

from repro.device import A100, MI100, KernelCost, gemm_compute_ramp, \
    intrinsic_duration, sm_demand


class TestSmDemand:
    def test_single_block_uses_one_sm(self):
        assert sm_demand(KernelCost(blocks=1), A100()) == 1

    def test_many_blocks_capped_at_device(self):
        spec = A100()
        cost = KernelCost(blocks=100000)
        assert sm_demand(cost, spec) == spec.n_sm

    def test_shared_memory_reduces_occupancy_raises_demand(self):
        spec = A100()
        light = KernelCost(blocks=64, shared_mem_per_block=0)
        heavy = KernelCost(blocks=64,
                           shared_mem_per_block=spec.shared_mem_per_sm // 2)
        assert sm_demand(heavy, spec) > sm_demand(light, spec)

    def test_demand_at_least_one(self):
        assert sm_demand(KernelCost(blocks=0), A100()) == 1


class TestIntrinsicDuration:
    def test_includes_device_launch_overhead(self):
        spec = A100()
        t = intrinsic_duration(KernelCost(), spec)
        assert t >= spec.launch_overhead_device

    def test_compute_bound_scaling(self):
        spec = A100()
        t1 = intrinsic_duration(
            KernelCost(flops=1e9, blocks=10000, kernel_class="gemm_irr"), spec)
        t2 = intrinsic_duration(
            KernelCost(flops=2e9, blocks=10000, kernel_class="gemm_irr"), spec)
        overhead = spec.launch_overhead_device
        assert (t2 - overhead) == pytest.approx(2 * (t1 - overhead), rel=1e-9)

    def test_memory_bound_kernel_uses_bandwidth(self):
        spec = A100()
        nbytes = 1e9
        t = intrinsic_duration(
            KernelCost(bytes_read=nbytes, blocks=10000, kernel_class="swap"),
            spec)
        floor = nbytes / spec.mem_bandwidth
        assert t > floor  # efficiency < 1 means slower than raw peak

    def test_single_block_kernel_much_slower_than_wide_kernel(self):
        # The streamed-cuSOLVER effect: a one-matrix kernel occupies one
        # SM and runs at ~1/108th of device throughput.
        spec = A100()
        flops = 1e8
        narrow = intrinsic_duration(KernelCost(flops=flops, blocks=1), spec)
        wide = intrinsic_duration(KernelCost(flops=flops, blocks=1000), spec)
        assert narrow > 20 * wide

    def test_lower_efficiency_class_is_slower(self):
        spec = A100()
        base = dict(flops=1e9, blocks=1000)
        fast = intrinsic_duration(
            KernelCost(kernel_class="gemm_vendor", **base), spec)
        slow = intrinsic_duration(
            KernelCost(kernel_class="gemm_irr", **base), spec)
        assert slow > fast

    def test_compute_ramp_slows_small_kernels(self):
        spec = MI100()
        base = dict(flops=1e9, blocks=1000, kernel_class="gemm_irr")
        full = intrinsic_duration(KernelCost(compute_ramp=1.0, **base), spec)
        small = intrinsic_duration(KernelCost(compute_ramp=0.2, **base), spec)
        assert small > full


class TestGemmComputeRamp:
    def test_ramp_monotone(self):
        vals = [gemm_compute_ramp(s, s, s) for s in (1, 8, 64, 512)]
        assert all(b > a for a, b in zip(vals, vals[1:]))

    def test_ramp_bounded(self):
        assert 0 < gemm_compute_ramp(1, 1, 1) < 1
        assert gemm_compute_ramp(1e9, 1e9, 1e9) == pytest.approx(1.0, abs=1e-6)

    def test_ramp_uses_smallest_dimension(self):
        assert gemm_compute_ramp(1000, 1000, 4) == gemm_compute_ramp(4, 4, 4)


class TestKernelCostMerge:
    def test_merged_adds_work(self):
        a = KernelCost(flops=10, bytes_read=5, blocks=3)
        b = KernelCost(flops=20, bytes_written=7, blocks=9)
        m = a.merged(b)
        assert m.flops == 30
        assert m.bytes_total == 12
        assert m.blocks == 9

    def test_merged_keeps_worst_ramp(self):
        a = KernelCost(compute_ramp=0.9)
        b = KernelCost(compute_ramp=0.3)
        assert a.merged(b).compute_ramp == 0.3
