"""Thread-safety of device memory accounting and the recovery log.

Concurrent service workers share one :class:`Device` (allocations,
frees) and one device-owned :class:`RecoveryLog` (resilience events).
Before the serving layer these counters were mutated without locks; a
lost update would either leak simulated memory forever or, worse, let
two workers over-commit the device past its capacity.  These tests
hammer the shared structures from many threads and assert the
accounting stays exact.
"""

import dataclasses
import threading

import numpy as np
import pytest

from repro.batched import BatchEngine, PlanCache, irr_getrf
from repro.batched.interface import IrrBatch
from repro.device import A100, Device, DeviceOutOfMemory
from repro.recovery import RecoveryLog

pytestmark = pytest.mark.serve

N_THREADS = 8
N_ITERS = 150


def _run_threads(fn, n=N_THREADS):
    """Start n threads on fn(tid), propagate the first worker exception."""
    errors = []

    def wrap(tid):
        try:
            fn(tid)
        except BaseException as exc:  # noqa: BLE001 - reraised below
            errors.append(exc)

    threads = [threading.Thread(target=wrap, args=(t,))
               for t in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]


class TestMemoryAccountingConcurrency:
    def test_alloc_free_storm_returns_to_baseline(self):
        dev = Device(A100())
        baseline = dev.allocated_bytes

        def worker(tid):
            rng = np.random.default_rng(1000 + tid)
            for _ in range(N_ITERS):
                n = int(rng.integers(1, 64))
                arr = dev.empty((n, n))
                assert arr.nbytes_owned == n * n * 8
                arr.free()

        _run_threads(worker)
        assert dev.allocated_bytes == baseline
        assert dev.peak_allocated_bytes <= dev.spec.memory_capacity

    def test_capacity_is_never_overcommitted(self):
        # A tiny device: threads loop claim/release of just over a
        # quarter of the capacity, so at most three claims may legally
        # coexist.  An unsynchronized check-then-claim would let racing
        # threads pass the capacity test together and over-commit —
        # which the (locked) peak counter would record.
        small = dataclasses.replace(A100(), memory_capacity=1 << 20)
        dev = Device(small)
        chunk = small.memory_capacity // 4 + 1

        def worker(tid):
            for _ in range(N_ITERS):
                try:
                    dev._claim(chunk, site="stress")
                except DeviceOutOfMemory:
                    continue
                assert dev.allocated_bytes <= small.memory_capacity
                dev._release(chunk)

        _run_threads(worker)
        assert dev.allocated_bytes == 0
        assert dev.peak_allocated_bytes <= small.memory_capacity

    def test_held_claim_rejects_every_contender(self):
        # Main holds half+1 bytes; no worker claim of half+1 can ever
        # succeed, whatever the interleaving — the capacity check and
        # the increment are atomic.
        small = dataclasses.replace(A100(), memory_capacity=1 << 20)
        dev = Device(small)
        half = small.memory_capacity // 2 + 1
        dev._claim(half, site="holder")

        def worker(tid):
            for _ in range(N_ITERS):
                try:
                    dev._claim(half, site="stress")
                except DeviceOutOfMemory:
                    continue
                raise AssertionError("over-committed past capacity")

        _run_threads(worker)
        assert dev.allocated_bytes == half
        dev._release(half)
        assert dev.allocated_bytes == 0

    def test_racing_free_releases_exactly_once(self):
        dev = Device(A100())
        for _ in range(50):
            arr = dev.empty((32, 32))
            before = dev.allocated_bytes
            barrier = threading.Barrier(N_THREADS)

            def worker(tid, arr=arr, barrier=barrier):
                barrier.wait()
                arr.free()    # must not raise "double release"

            _run_threads(worker)
            assert dev.allocated_bytes == before - 32 * 32 * 8

    def test_view_free_is_noop_under_concurrency(self):
        dev = Device(A100())
        arr = dev.empty((64, 64))
        views = [arr[0:8, 0:8] for _ in range(N_THREADS)]

        def worker(tid):
            for _ in range(N_ITERS):
                views[tid].free()

        _run_threads(worker)
        assert dev.allocated_bytes == arr.nbytes_owned
        arr.free()
        assert dev.allocated_bytes == 0


class TestPlanCacheConcurrency:
    """Satellite of the compiled-workload PR: the service shares one
    :class:`BatchEngine` (one :class:`PlanCache`) across submitters and
    the dispatcher, and compiled programs assert *zero* misses on
    replay — so the cache's counters must stay exact under racing
    ``get_or_build`` calls, and its LRU bound must hold."""

    def test_get_or_build_coherent_across_threads(self):
        cache = PlanCache()
        builds = []

        def worker(tid):
            rng = np.random.default_rng(300 + tid)
            for _ in range(N_ITERS):
                key = ("plan", int(rng.integers(0, 10)))

                def build(key=key):
                    builds.append(key)
                    return ("built", key)

                assert cache.get_or_build(key, build) == ("built", key)

        _run_threads(worker)
        # every call either hit or missed; every miss ran one build
        assert cache.hits + cache.misses == N_THREADS * N_ITERS
        assert len(builds) == cache.misses
        assert len(cache) == 10
        assert cache.evictions == 0

    def test_lru_bound_holds_under_racing_inserts(self):
        cache = PlanCache(capacity=4)

        def worker(tid):
            rng = np.random.default_rng(700 + tid)
            for _ in range(N_ITERS):
                key = ("plan", int(rng.integers(0, 16)))
                cache.get_or_build(key, lambda key=key: ("built", key))
                assert len(cache) <= 4

        _run_threads(worker)
        assert len(cache) <= 4
        assert cache.evictions > 0
        assert cache.hits + cache.misses == N_THREADS * N_ITERS

    def test_shared_cache_identical_factors_across_threads(self):
        # Many workers, one PlanCache: each drives its own device and
        # engine (the device wants a single launch owner and the
        # engine's scratch buffers are single-thread state — the
        # service's dispatcher funnel), but all route planning through
        # the shared cache.  Racing plan builds must never change the
        # numerics — every thread's factors must equal the
        # single-threaded reference bitwise.
        rng = np.random.default_rng(42)
        mats = [rng.standard_normal((m, m)) + 2.0 * m * np.eye(m)
                for m in (8, 13, 21, 16)]

        def factor_once(engine):
            dev = Device(A100())
            batch = IrrBatch.from_host(dev, [a.copy() for a in mats])
            piv = irr_getrf(dev, batch, engine=engine)
            out = batch.to_host()
            batch.free()
            return out, [ip.copy() for ip in piv.ipiv]

        ref_lu, ref_ipiv = factor_once(BatchEngine("bucketed"))

        shared_cache = PlanCache()
        results = [None] * N_THREADS

        def worker(tid):
            engine = BatchEngine("bucketed", cache=shared_cache)
            results[tid] = factor_once(engine)

        _run_threads(worker)
        for lu, ipiv in results:
            for a, b in zip(lu, ref_lu):
                np.testing.assert_array_equal(a, b)
            for a, b in zip(ipiv, ref_ipiv):
                np.testing.assert_array_equal(a, b)
        # the recurring signature hit the shared cache across threads
        assert shared_cache.hits > 0
        assert shared_cache.hits + shared_cache.misses > 0


class TestRecoveryLogConcurrency:
    def test_concurrent_records_are_all_kept(self):
        log = RecoveryLog()

        def worker(tid):
            for i in range(N_ITERS):
                log.record("transfer-retry", site=f"w{tid}", attempt=i + 1)

        _run_threads(worker)
        assert len(log) == N_THREADS * N_ITERS
        counts = log.counts()
        assert counts == {"transfer-retry": N_THREADS * N_ITERS}
        # every worker's events survived, in a per-worker total of N_ITERS
        for tid in range(N_THREADS):
            assert sum(1 for ev in log if ev.site == f"w{tid}") == N_ITERS

    def test_mark_since_is_consistent_under_writers(self):
        log = RecoveryLog()
        stop = threading.Event()

        def writer(tid):
            while not stop.is_set():
                log.record("cache-evict", site=f"bg{tid}")

        threads = [threading.Thread(target=writer, args=(t,))
                   for t in range(2)]
        for t in threads:
            t.start()
        try:
            for _ in range(100):
                mark = log.mark()
                log.record("host-fallback", site="me")
                sl = log.since(mark)
                # my event is visible in my slice; the slice is a
                # consistent snapshot (no partial events, no crash).
                assert any(ev.action == "host-fallback" and ev.site == "me"
                           for ev in sl)
        finally:
            stop.set()
            for t in threads:
                t.join()
