"""Thread-safety of device memory accounting and the recovery log.

Concurrent service workers share one :class:`Device` (allocations,
frees) and one device-owned :class:`RecoveryLog` (resilience events).
Before the serving layer these counters were mutated without locks; a
lost update would either leak simulated memory forever or, worse, let
two workers over-commit the device past its capacity.  These tests
hammer the shared structures from many threads and assert the
accounting stays exact.
"""

import dataclasses
import threading

import numpy as np
import pytest

from repro.device import A100, Device, DeviceOutOfMemory
from repro.recovery import RecoveryLog

pytestmark = pytest.mark.serve

N_THREADS = 8
N_ITERS = 150


def _run_threads(fn, n=N_THREADS):
    """Start n threads on fn(tid), propagate the first worker exception."""
    errors = []

    def wrap(tid):
        try:
            fn(tid)
        except BaseException as exc:  # noqa: BLE001 - reraised below
            errors.append(exc)

    threads = [threading.Thread(target=wrap, args=(t,))
               for t in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]


class TestMemoryAccountingConcurrency:
    def test_alloc_free_storm_returns_to_baseline(self):
        dev = Device(A100())
        baseline = dev.allocated_bytes

        def worker(tid):
            rng = np.random.default_rng(1000 + tid)
            for _ in range(N_ITERS):
                n = int(rng.integers(1, 64))
                arr = dev.empty((n, n))
                assert arr.nbytes_owned == n * n * 8
                arr.free()

        _run_threads(worker)
        assert dev.allocated_bytes == baseline
        assert dev.peak_allocated_bytes <= dev.spec.memory_capacity

    def test_capacity_is_never_overcommitted(self):
        # A tiny device: threads loop claim/release of just over a
        # quarter of the capacity, so at most three claims may legally
        # coexist.  An unsynchronized check-then-claim would let racing
        # threads pass the capacity test together and over-commit —
        # which the (locked) peak counter would record.
        small = dataclasses.replace(A100(), memory_capacity=1 << 20)
        dev = Device(small)
        chunk = small.memory_capacity // 4 + 1

        def worker(tid):
            for _ in range(N_ITERS):
                try:
                    dev._claim(chunk, site="stress")
                except DeviceOutOfMemory:
                    continue
                assert dev.allocated_bytes <= small.memory_capacity
                dev._release(chunk)

        _run_threads(worker)
        assert dev.allocated_bytes == 0
        assert dev.peak_allocated_bytes <= small.memory_capacity

    def test_held_claim_rejects_every_contender(self):
        # Main holds half+1 bytes; no worker claim of half+1 can ever
        # succeed, whatever the interleaving — the capacity check and
        # the increment are atomic.
        small = dataclasses.replace(A100(), memory_capacity=1 << 20)
        dev = Device(small)
        half = small.memory_capacity // 2 + 1
        dev._claim(half, site="holder")

        def worker(tid):
            for _ in range(N_ITERS):
                try:
                    dev._claim(half, site="stress")
                except DeviceOutOfMemory:
                    continue
                raise AssertionError("over-committed past capacity")

        _run_threads(worker)
        assert dev.allocated_bytes == half
        dev._release(half)
        assert dev.allocated_bytes == 0

    def test_racing_free_releases_exactly_once(self):
        dev = Device(A100())
        for _ in range(50):
            arr = dev.empty((32, 32))
            before = dev.allocated_bytes
            barrier = threading.Barrier(N_THREADS)

            def worker(tid, arr=arr, barrier=barrier):
                barrier.wait()
                arr.free()    # must not raise "double release"

            _run_threads(worker)
            assert dev.allocated_bytes == before - 32 * 32 * 8

    def test_view_free_is_noop_under_concurrency(self):
        dev = Device(A100())
        arr = dev.empty((64, 64))
        views = [arr[0:8, 0:8] for _ in range(N_THREADS)]

        def worker(tid):
            for _ in range(N_ITERS):
                views[tid].free()

        _run_threads(worker)
        assert dev.allocated_bytes == arr.nbytes_owned
        arr.free()
        assert dev.allocated_bytes == 0


class TestRecoveryLogConcurrency:
    def test_concurrent_records_are_all_kept(self):
        log = RecoveryLog()

        def worker(tid):
            for i in range(N_ITERS):
                log.record("transfer-retry", site=f"w{tid}", attempt=i + 1)

        _run_threads(worker)
        assert len(log) == N_THREADS * N_ITERS
        counts = log.counts()
        assert counts == {"transfer-retry": N_THREADS * N_ITERS}
        # every worker's events survived, in a per-worker total of N_ITERS
        for tid in range(N_THREADS):
            assert sum(1 for ev in log if ev.site == f"w{tid}") == N_ITERS

    def test_mark_since_is_consistent_under_writers(self):
        log = RecoveryLog()
        stop = threading.Event()

        def writer(tid):
            while not stop.is_set():
                log.record("cache-evict", site=f"bg{tid}")

        threads = [threading.Thread(target=writer, args=(t,))
                   for t in range(2)]
        for t in threads:
            t.start()
        try:
            for _ in range(100):
                mark = log.mark()
                log.record("host-fallback", site="me")
                sl = log.since(mark)
                # my event is visible in my slice; the slice is a
                # consistent snapshot (no partial events, no crash).
                assert any(ev.action == "host-fallback" and ev.site == "me"
                           for ev in sl)
        finally:
            stop.set()
            for t in threads:
                t.join()
