"""Tests for device/CPU specifications and occupancy rules."""

import pytest

from repro.device import A100, MI100, XEON_6140_2S


class TestDeviceSpecs:
    def test_a100_parameters_match_paper(self):
        spec = A100()
        assert spec.n_sm == 108
        assert spec.shared_mem_per_sm == 192 * 1024
        assert spec.peak_flops_fp64 == pytest.approx(9.7e12)

    def test_mi100_parameters_match_paper(self):
        spec = MI100()
        assert spec.shared_mem_per_sm == 64 * 1024
        assert spec.peak_flops_fp64 == pytest.approx(11.5e12)

    def test_mi100_has_less_shared_memory_than_a100(self):
        # The architectural contrast §V-A attributes the fused-panel
        # fallback behaviour to.
        assert MI100().shared_mem_per_sm < A100().shared_mem_per_sm

    def test_mi100_has_higher_launch_overhead(self):
        assert MI100().launch_overhead_host > A100().launch_overhead_host

    def test_efficiency_lookup_with_default(self):
        spec = A100()
        assert 0 < spec.efficiency("gemm_irr") <= 1
        assert spec.efficiency("no-such-class", default=0.4) == 0.4

    def test_vendor_gemm_beats_irr_gemm_asymptote(self):
        # Required for the Fig 14 hybrid switch to exist.
        for spec in (A100(), MI100()):
            assert spec.efficiency("gemm_vendor") > spec.efficiency("gemm_irr")


class TestOccupancy:
    def test_zero_shared_memory_gives_max_blocks(self):
        spec = A100()
        assert spec.resident_blocks_per_sm(0) == spec.max_blocks_per_sm

    def test_shared_memory_limits_occupancy(self):
        spec = A100()
        per_block = spec.shared_mem_per_sm // 4
        assert spec.resident_blocks_per_sm(per_block) == 4

    def test_infeasible_block_returns_zero(self):
        spec = MI100()
        assert spec.resident_blocks_per_sm(spec.max_shared_per_block + 1) == 0

    def test_same_panel_fits_on_a100_but_not_mi100(self):
        # A 100 KB panel buffer: fine on A100 (163 KB/block limit), not on
        # MI100 (64 KB LDS) — this is what moves the irrGETF2 switch point.
        nbytes = 100 * 1024
        assert A100().resident_blocks_per_sm(nbytes) >= 1
        assert MI100().resident_blocks_per_sm(nbytes) == 0


class TestCpuSpec:
    def test_peak_flops(self):
        cpu = XEON_6140_2S()
        assert cpu.peak_flops == pytest.approx(36 * 2.3e9 * 32.0)

    def test_getrf_efficiency_monotone_in_size(self):
        cpu = XEON_6140_2S()
        effs = [cpu.getrf_efficiency(n) for n in (1, 8, 64, 512, 4096)]
        assert all(b >= a for a, b in zip(effs, effs[1:]))
        assert effs[0] >= cpu.eff_floor
        assert effs[-1] <= cpu.eff_ceiling

    def test_getrf_efficiency_nonpositive_size(self):
        cpu = XEON_6140_2S()
        assert cpu.getrf_efficiency(0) == cpu.eff_floor
        assert cpu.getrf_efficiency(-5) == cpu.eff_floor
