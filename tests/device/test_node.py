"""Tests for the multi-device :class:`Node` and its modeled links."""

import numpy as np
import pytest

from repro.device import A100, Device, Link, NVLINK, Node, PCIE_STAGING

pytestmark = pytest.mark.multidev


class TestLink:
    def test_seconds_is_latency_plus_bandwidth_term(self):
        link = Link(bandwidth=1e9, latency=1e-6)
        assert link.seconds(0) == pytest.approx(1e-6)
        assert link.seconds(10**9) == pytest.approx(1.0 + 1e-6)

    def test_defaults_are_sane(self):
        assert NVLINK.bandwidth > PCIE_STAGING.bandwidth
        assert NVLINK.latency < PCIE_STAGING.latency

    @pytest.mark.parametrize("bandwidth", [0.0, -1.0])
    def test_rejects_nonpositive_bandwidth(self, bandwidth):
        with pytest.raises(ValueError, match="bandwidth"):
            Link(bandwidth=bandwidth, latency=1e-6)

    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError, match="latency"):
            Link(bandwidth=1e9, latency=-1e-9)

    def test_rejects_negative_bytes(self):
        with pytest.raises(ValueError, match="transfer"):
            Link(bandwidth=1e9, latency=0.0).seconds(-1)


class TestNodeContainer:
    def test_members_are_independent_devices(self):
        node = Node(A100(), 3)
        assert len(node) == 3
        assert len({id(d) for d in node}) == 3
        for i, dev in enumerate(node):
            assert isinstance(dev, Device)
            assert node[i] is dev
            assert node.index_of(dev) == i

    def test_index_of_rejects_foreign_device(self):
        node = Node(A100(), 2)
        with pytest.raises(ValueError, match="not a member"):
            node.index_of(Device(A100()))

    def test_rejects_empty_node(self):
        with pytest.raises(ValueError, match="at least one device"):
            Node(A100(), 0)


class TestTransfer:
    def test_same_device_transfer_is_free(self):
        node = Node(A100(), 2)
        assert node.transfer(0, 0, 1 << 20) == 0.0
        assert node.p2p_bytes == 0
        assert node.link_bytes == [0, 0]

    def test_p2p_cost_and_counters(self):
        node = Node(A100(), 2)
        nbytes = 1 << 20
        seconds = node.transfer(0, 1, nbytes)
        assert seconds == pytest.approx(NVLINK.seconds(nbytes))
        assert node.p2p_bytes == nbytes
        assert node.staged_bytes == 0
        assert node.link_bytes == [nbytes, nbytes]

    def test_no_p2p_pays_two_staged_hops(self):
        nbytes = 1 << 20
        direct = Node(A100(), 2)
        staged = Node(A100(), 2, p2p_link=None)
        assert staged.transfer(0, 1, nbytes) == pytest.approx(
            2 * PCIE_STAGING.seconds(nbytes))
        assert staged.transfer(0, 1, nbytes) > direct.transfer(0, 1, nbytes)
        assert staged.p2p_bytes == 0
        assert staged.staged_bytes == 2 * nbytes

    def test_rendezvous_starts_at_later_endpoint(self):
        node = Node(A100(), 2)
        node[0].host_compute(1.0)     # sender is busy until t=1
        seconds = node.transfer(0, 1, 1 << 10)
        # receiver cannot consume bytes the sender has not produced
        assert node[1].host_time == pytest.approx(1.0 + seconds)
        assert node[0].host_time == pytest.approx(node[1].host_time)

    def test_transfer_shows_up_in_both_profilers(self):
        node = Node(A100(), 2)
        t0 = node[0].profiler.transfer_time
        t1 = node[1].profiler.transfer_time
        seconds = node.transfer(0, 1, 1 << 20)
        assert node[0].profiler.transfer_time == pytest.approx(
            t0 + seconds)
        assert node[1].profiler.transfer_time == pytest.approx(
            t1 + seconds)

    def test_rejects_negative_bytes(self):
        with pytest.raises(ValueError, match="transfer"):
            Node(A100(), 2).transfer(0, 1, -4)


class TestAggregates:
    def test_makespan_and_synchronize(self):
        node = Node(A100(), 3)
        node[1].host_compute(2.0)
        assert node.makespan == pytest.approx(2.0)
        assert node.synchronize() == pytest.approx(2.0)

    def test_allocated_bytes_sums_members(self):
        node = Node(A100(), 2)
        buf = node[1].from_host(np.zeros(1024))
        assert node.allocated_bytes == node[1].allocated_bytes > 0
        buf.free()
        assert node.allocated_bytes == 0

    def test_reset_clears_clocks_and_link_counters(self):
        node = Node(A100(), 2)
        node[0].host_compute(1.0)
        node.transfer(0, 1, 1 << 20)
        node.reset()
        assert node.makespan == 0.0
        assert node.p2p_bytes == 0
        assert node.staged_bytes == 0
        assert node.link_bytes == [0, 0]
