"""Tests for cross-stream events (cudaEvent semantics)."""

import numpy as np
import pytest

from repro.device import Device, Event, KernelCost

from .test_simulator import tiny_spec


class TestEventBasics:
    def test_record_captures_position(self):
        dev = Device(tiny_spec())
        dev.launch("a", None, KernelCost(flops=1e6, blocks=4), stream=1)
        ev = dev.record_event(stream=1)
        assert ev.stream == 1
        assert ev.seq == 0
        assert not ev.resolved

    def test_event_on_empty_stream_resolves_immediately(self):
        dev = Device(tiny_spec())
        ev = dev.record_event(stream=5)
        dev.launch("b", None, KernelCost(flops=4e6, blocks=400), stream=2,
                   wait_events=[ev])
        dev.synchronize()
        assert ev.resolved
        rec = dev.profiler.records[0]
        assert rec.start == pytest.approx(rec.host_issue)

    def test_new_stream_ids_unique(self):
        dev = Device(tiny_spec())
        s1 = dev.new_stream()
        s2 = dev.new_stream()
        assert s1.sid != s2.sid
        assert s1.sid != 0 and s2.sid != 0


class TestEventOrdering:
    def test_waiter_starts_after_recorded_work(self):
        dev = Device(tiny_spec())
        slow = KernelCost(flops=4e9, blocks=400)  # ~1 s
        fast = KernelCost(flops=4e6, blocks=400)
        dev.launch("producer", None, slow, stream=1)
        ev = dev.record_event(stream=1)
        dev.launch("consumer", None, fast, stream=2, wait_events=[ev])
        dev.synchronize()
        recs = {r.name: r for r in dev.profiler.records}
        assert recs["consumer"].start >= recs["producer"].end

    def test_work_after_record_does_not_gate(self):
        dev = Device(tiny_spec())
        fast = KernelCost(flops=4e6, blocks=400)
        slow = KernelCost(flops=4e9, blocks=400)
        dev.launch("early", None, fast, stream=1)
        ev = dev.record_event(stream=1)
        dev.launch("late-slow", None, slow, stream=1)  # after the record
        dev.launch("consumer", None, fast, stream=2, wait_events=[ev])
        dev.synchronize()
        recs = {r.name: r for r in dev.profiler.records}
        assert recs["consumer"].end < recs["late-slow"].end

    def test_independent_streams_still_overlap(self):
        dev = Device(tiny_spec())
        cost = KernelCost(flops=2e9, blocks=64)  # 2 SMs each
        dev.launch("x", None, cost, stream=1)
        ev = dev.record_event(stream=1)
        dev.launch("y", None, cost, stream=2, wait_events=[ev])
        dev.launch("z", None, cost, stream=3)  # no dependency
        dev.synchronize()
        recs = {r.name: r for r in dev.profiler.records}
        assert recs["z"].start < recs["x"].end  # overlapped with x

    def test_multiple_events(self):
        dev = Device(tiny_spec())
        cost = KernelCost(flops=4e8, blocks=400)
        dev.launch("p1", None, cost, stream=1)
        e1 = dev.record_event(stream=1)
        dev.launch("p2", None, cost, stream=2)
        e2 = dev.record_event(stream=2)
        dev.launch("join", None, cost, stream=3, wait_events=[e1, e2])
        dev.synchronize()
        recs = {r.name: r for r in dev.profiler.records}
        assert recs["join"].start >= max(recs["p1"].end, recs["p2"].end)

    def test_event_across_synchronize(self):
        dev = Device(tiny_spec())
        dev.launch("a", None, KernelCost(flops=4e6, blocks=400), stream=1)
        ev = dev.record_event(stream=1)
        dev.synchronize()
        # the recorded work already completed; the waiter is unblocked
        dev.launch("b", None, KernelCost(flops=4e6, blocks=400), stream=2,
                   wait_events=[ev])
        dev.synchronize()
        assert len(dev.profiler.records) == 2


class TestConcurrentSwaps:
    def test_getrf_with_concurrent_swaps_correct(self, rng):
        from repro.batched import IrrBatch, irr_getrf, lu_reconstruct
        from repro.device import A100
        dev = Device(A100())
        mats = [rng.standard_normal((int(n), int(n)))
                for n in rng.integers(2, 90, 12)]
        b = IrrBatch.from_host(dev, [m.copy() for m in mats])
        piv = irr_getrf(dev, b, concurrent_swaps=True)
        dev.synchronize()
        for i, a in enumerate(mats):
            rec = lu_reconstruct(b.matrix(i), piv[i])
            assert np.abs(rec - a).max() < 1e-11 * max(1, np.abs(a).max())

    def test_concurrent_swaps_not_slower(self, rng):
        from repro.batched import IrrBatch, irr_getrf
        from repro.device import A100
        from repro.workloads import random_square_batch
        mats = random_square_batch(80, 192, seed=9)
        times = {}
        for conc in (False, True):
            dev = Device(A100())
            b = IrrBatch.from_host(dev, [m.copy() for m in mats])
            with dev.timed_region() as t:
                irr_getrf(dev, b, concurrent_swaps=conc)
            times[conc] = t["elapsed"]
        assert times[True] <= times[False] * 1.02
