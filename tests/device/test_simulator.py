"""Tests for the discrete-event device simulator."""

import numpy as np
import pytest

from repro.device import A100, Device, DeviceOutOfMemory, KernelCost
from repro.device.spec import DeviceSpec


def tiny_spec(**over) -> DeviceSpec:
    """A small spec with round numbers so schedules are easy to verify."""
    params = dict(
        name="tiny",
        n_sm=4,
        shared_mem_per_sm=64 * 1024,
        max_shared_per_block=48 * 1024,
        peak_flops_fp64=4e9,       # 1 Gflop/s per SM
        mem_bandwidth=1e12,
        memory_capacity=1 << 30,
        launch_overhead_host=1e-3,
        launch_overhead_device=0.0,
        sync_overhead_host=0.0,
        sm_bw_saturation_frac=0.25,
        kernel_efficiency={"default": 1.0, "memory": 1.0},
    )
    params.update(over)
    return DeviceSpec(**params)


class TestMemory:
    def test_alloc_and_free_accounting(self):
        dev = Device(tiny_spec())
        a = dev.zeros((128, 128))
        assert dev.allocated_bytes == 128 * 128 * 8
        a.free()
        assert dev.allocated_bytes == 0

    def test_out_of_memory_raises(self):
        dev = Device(tiny_spec(memory_capacity=1024))
        with pytest.raises(DeviceOutOfMemory):
            dev.zeros((64, 64))

    def test_views_not_charged_twice(self):
        dev = Device(tiny_spec())
        a = dev.zeros((32, 32))
        before = dev.allocated_bytes
        v = a[4:10, 2:8]
        assert dev.allocated_bytes == before
        v.free()  # freeing a view is a no-op
        assert dev.allocated_bytes == before

    def test_host_roundtrip(self):
        dev = Device(tiny_spec())
        host = np.arange(12.0).reshape(3, 4)
        d = dev.from_host(host)
        d.data[0, 0] = 99.0
        out = d.to_host()
        assert out[0, 0] == 99.0
        assert host[0, 0] == 0.0  # device copy is independent

    def test_copy_from_host_shape_mismatch(self):
        dev = Device(tiny_spec())
        d = dev.zeros((2, 2))
        with pytest.raises(ValueError, match="shape mismatch"):
            d.copy_from_host(np.zeros((3, 3)))

    def test_peak_allocation_tracked(self):
        dev = Device(tiny_spec())
        a = dev.zeros(1000)
        a.free()
        dev.zeros(10)
        assert dev.peak_allocated_bytes == 8000


class TestLaunchSemantics:
    def test_numerics_run_eagerly(self):
        dev = Device(tiny_spec())
        a = dev.zeros(4)

        def kern():
            a.data += 1.0
            return KernelCost(flops=4)

        dev.launch("inc", kern)
        assert a.to_host().tolist() == [1.0] * 4  # before synchronize

    def test_launch_requires_cost(self):
        dev = Device(tiny_spec())
        with pytest.raises(ValueError, match="no KernelCost"):
            dev.launch("bad", lambda: None)

    def test_oversized_shared_memory_rejected(self):
        dev = Device(tiny_spec())
        cost = KernelCost(shared_mem_per_block=49 * 1024)
        with pytest.raises(ValueError, match="shared memory"):
            dev.launch("big-smem", None, cost)

    def test_host_clock_advances_per_launch(self):
        spec = tiny_spec()
        dev = Device(spec)
        for _ in range(10):
            dev.launch("k", None, KernelCost(flops=1))
        assert dev.host_time == pytest.approx(10 * spec.launch_overhead_host)
        assert dev.profiler.launch_count == 10


class TestScheduling:
    def test_same_stream_serializes(self):
        spec = tiny_spec()
        dev = Device(spec)
        # Each kernel: 4e9 flops over >=4 SMs -> 1 s at full device rate.
        cost = KernelCost(flops=4e9, blocks=400)
        dev.launch("a", None, cost, stream=0)
        dev.launch("b", None, cost, stream=0)
        dev.synchronize()
        recs = {r.name: r for r in dev.profiler.records}
        assert recs["b"].start == pytest.approx(recs["a"].end)
        # a starts at its issue time (1 launch overhead), b chains after.
        assert dev.device_time == pytest.approx(
            2.0 + spec.launch_overhead_host, rel=1e-6)

    def test_different_streams_overlap(self):
        dev = Device(tiny_spec())
        # Two kernels each demanding 2 of 4 SMs -> fully concurrent.
        cost = KernelCost(flops=2e9, blocks=64)  # 2 SMs, 1 s at 2 SM rate
        dev.launch("a", None, cost, stream=1)
        dev.launch("b", None, cost, stream=2)
        dev.synchronize()
        recs = {r.name: r for r in dev.profiler.records}
        assert recs["a"].end == pytest.approx(recs["b"].end, abs=1e-2)
        assert dev.device_time < 1.2  # far less than the serial 2 s

    def test_oversubscription_shares_rate(self):
        dev = Device(tiny_spec())
        # Four kernels each demanding all 4 SMs: rate share = 1/4 each.
        cost = KernelCost(flops=4e9, blocks=400)  # 1 s standalone
        for s in range(4):
            dev.launch(f"k{s}", None, cost, stream=s)
        dev.synchronize()
        assert dev.device_time == pytest.approx(4.0, rel=0.05)

    def test_single_block_kernels_fill_device(self):
        dev = Device(tiny_spec())
        # Four 1-block kernels run concurrently, each on its own SM at
        # 1 Gflop/s -> 1e9 flops each takes ~1 s total, not 4 s.
        cost = KernelCost(flops=1e9, blocks=1)
        for s in range(4):
            dev.launch(f"k{s}", None, cost, stream=s)
        dev.synchronize()
        assert dev.device_time == pytest.approx(1.0, rel=0.05)

    def test_kernel_waits_for_host_issue(self):
        spec = tiny_spec(launch_overhead_host=0.5)
        dev = Device(spec)
        cost = KernelCost(flops=4e6, blocks=400)  # 1 ms standalone
        dev.launch("a", None, cost, stream=0)
        dev.launch("b", None, cost, stream=1)
        dev.synchronize()
        recs = {r.name: r for r in dev.profiler.records}
        # b cannot start before its launch was issued at t=1.0.
        assert recs["b"].start >= 1.0

    def test_streams_fifo_across_synchronize(self):
        dev = Device(tiny_spec())
        cost = KernelCost(flops=4e9, blocks=400)
        dev.launch("a", None, cost, stream=0)
        dev.synchronize()
        t_a = dev.device_time
        dev.launch("b", None, cost, stream=0)
        dev.synchronize()
        recs = {r.name: r for r in dev.profiler.records}
        assert recs["b"].start >= t_a

    def test_synchronize_idempotent(self):
        dev = Device(tiny_spec())
        dev.launch("a", None, KernelCost(flops=1e6, blocks=4))
        t1 = dev.synchronize()
        t2 = dev.synchronize()
        assert t2 >= t1
        assert len(dev.profiler.records) == 1

    def test_sync_wait_recorded(self):
        dev = Device(tiny_spec())
        dev.launch("slow", None, KernelCost(flops=4e9, blocks=400))
        dev.synchronize()
        assert dev.profiler.sync_wait_time > 0.9


class TestTimedRegion:
    def test_timed_region_measures_elapsed_and_counters(self):
        dev = Device(tiny_spec())
        with dev.timed_region() as region:
            dev.launch("x", None, KernelCost(flops=4e9, blocks=400))
        assert region["elapsed"] == pytest.approx(
            1.0 + dev.spec.launch_overhead_host, rel=0.05)
        assert region["launch_count"] == 1

    def test_timed_region_excludes_prior_work(self):
        dev = Device(tiny_spec())
        dev.launch("before", None, KernelCost(flops=4e9, blocks=400))
        with dev.timed_region() as region:
            dev.launch("inside", None, KernelCost(flops=4e6, blocks=400))
        assert region["elapsed"] < 0.1

    def test_reset_clears_clocks_and_profiler(self):
        dev = Device(tiny_spec())
        dev.launch("x", None, KernelCost(flops=1e6, blocks=4))
        dev.synchronize()
        dev.reset()
        assert dev.host_time == 0.0
        assert dev.device_time == 0.0
        assert not dev.profiler.records


class TestProfilerReporting:
    def test_by_kernel_aggregates(self):
        dev = Device(tiny_spec())
        for _ in range(3):
            dev.launch("gemm:nn", None, KernelCost(flops=4e6, blocks=4))
        dev.launch("trsm:left", None, KernelCost(flops=4e6, blocks=4))
        dev.synchronize()
        agg = dev.profiler.by_kernel()
        assert agg["gemm:nn"].count == 3
        assert agg["trsm:left"].count == 1
        assert agg["gemm:nn"].mean_time > 0

    def test_by_prefix_groups_operations(self):
        dev = Device(tiny_spec())
        dev.launch("gemm:a", None, KernelCost(flops=4e6, blocks=4))
        dev.launch("gemm:b", None, KernelCost(flops=4e6, blocks=4))
        dev.launch("trsm:x", None, KernelCost(flops=4e6, blocks=4))
        dev.synchronize()
        groups = dev.profiler.by_prefix()
        assert set(groups) == {"gemm", "trsm"}
        assert groups["gemm"] > groups["trsm"]


class TestRealSpecSanity:
    def test_a100_device_constructs(self):
        dev = Device(A100())
        a = dev.from_host(np.ones((8, 8)))
        assert a.shape == (8, 8)
        assert dev.profiler.transfer_count == 1

    def test_thousand_small_launches_dominated_by_overhead(self):
        # 1000 tiny kernels: elapsed ~ 1000 * host launch overhead.
        spec = A100()
        dev = Device(spec)
        with dev.timed_region() as region:
            for i in range(1000):
                dev.launch("tiny", None,
                           KernelCost(flops=100, blocks=1), stream=i % 16)
        assert region["elapsed"] >= 1000 * spec.launch_overhead_host
