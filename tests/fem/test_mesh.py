"""Tests for the hexahedral mesh substrate."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.fem import HexMesh, torus_map


class TestCounts:
    @pytest.mark.parametrize("dims", [(1, 1, 1), (2, 3, 4), (5, 5, 5)])
    def test_entity_counts_box(self, dims):
        nx, ny, nz = dims
        m = HexMesh(nx, ny, nz)
        assert m.n_cells == nx * ny * nz
        assert m.n_vertices == (nx + 1) * (ny + 1) * (nz + 1)
        want_edges = (nx * (ny + 1) * (nz + 1) +
                      (nx + 1) * ny * (nz + 1) +
                      (nx + 1) * (ny + 1) * nz)
        assert m.n_edges == want_edges

    def test_entity_counts_periodic(self):
        nx, ny, nz = 6, 3, 4
        m = HexMesh(nx, ny, nz, periodic_x=True, mapping=torus_map())
        assert m.n_vertices == nx * (ny + 1) * (nz + 1)
        want_edges = (nx * (ny + 1) * (nz + 1) +
                      nx * ny * (nz + 1) +
                      nx * (ny + 1) * nz)
        assert m.n_edges == want_edges

    def test_needs_positive_cells(self):
        with pytest.raises(ValueError):
            HexMesh(0, 1, 1)

    def test_periodic_needs_three_cells(self):
        with pytest.raises(ValueError, match="at least 3"):
            HexMesh(2, 2, 2, periodic_x=True)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(1, 5), st.integers(1, 5), st.integers(1, 5))
    def test_euler_edge_count_property(self, nx, ny, nz):
        m = HexMesh(nx, ny, nz)
        # every cell references 12 distinct edges
        for c in range(m.n_cells):
            assert len(set(m.cell_edges[c])) == 12


class TestTopology:
    def test_every_edge_referenced(self):
        m = HexMesh(3, 3, 3)
        assert set(m.cell_edges.ravel()) == set(range(m.n_edges))

    def test_interior_edge_shared_by_four_cells(self):
        m = HexMesh(3, 3, 3)
        counts = np.zeros(m.n_edges, dtype=int)
        for c in range(m.n_cells):
            counts[m.cell_edges[c]] += 1
        assert counts.max() == 4
        # boundary mask == edges with fewer than 4 incident cells
        np.testing.assert_array_equal(m.boundary_edges, counts < 4)

    def test_single_cell_all_edges_boundary(self):
        m = HexMesh(1, 1, 1)
        assert m.boundary_edges.all()

    def test_interior_exists_for_3cubed(self):
        m = HexMesh(3, 3, 3)
        assert (~m.boundary_edges).sum() > 0

    def test_edges_point_positive(self):
        m = HexMesh(2, 2, 2)
        v = m.ref_vertices
        d = v[m.edges[:, 1]] - v[m.edges[:, 0]]
        # each edge differs in exactly one coordinate, positively
        nonzero = np.abs(d) > 1e-12
        assert np.all(nonzero.sum(axis=1) == 1)
        assert np.all(d[nonzero] > 0)

    def test_periodic_wrap_edges_exist(self):
        m = HexMesh(4, 2, 2, periodic_x=True, mapping=torus_map())
        v = m.ref_vertices
        d = v[m.edges[:, 1], 0] - v[m.edges[:, 0], 0]
        assert np.any(d < 0)  # the wrap edge jumps back to x=0


class TestGeometry:
    def test_box_vertices_in_unit_cube(self):
        m = HexMesh(3, 4, 5)
        assert m.vertices.min() >= 0.0
        assert m.vertices.max() <= 1.0

    def test_torus_radius(self):
        m = HexMesh(8, 2, 2, periodic_x=True,
                    mapping=torus_map(major_radius=3.0, width=0.5))
        r = np.hypot(m.vertices[:, 0], m.vertices[:, 1])
        assert r.min() >= 3.0 - 0.26
        assert r.max() <= 3.0 + 0.26

    def test_cell_coords_positive_jacobian_torus(self):
        from repro.fem.nedelec import geometry_jacobians
        from repro.fem.quadrature import cube_rule
        m = HexMesh(6, 3, 3, periodic_x=True, mapping=torus_map())
        pts, _ = cube_rule(2)
        J = geometry_jacobians(m.cell_vertex_coords(), pts)
        assert np.linalg.det(J).min() > 0

    def test_edge_midpoints_on_edges_box(self):
        m = HexMesh(2, 2, 2)
        mids = m.edge_midpoints()
        want = 0.5 * (m.vertices[m.edges[:, 0]] + m.vertices[m.edges[:, 1]])
        np.testing.assert_allclose(mids, want, atol=1e-12)

    def test_wrap_cell_corners_continuous(self):
        # the wrap cell's mapped corners must be near each other, not
        # jumping across the torus
        m = HexMesh(8, 2, 2, periodic_x=True, mapping=torus_map())
        cc = m.cell_vertex_coords()
        spans = np.linalg.norm(cc.max(axis=1) - cc.min(axis=1), axis=1)
        assert spans.max() < 2.5  # no cell spans the torus diameter (~6)
