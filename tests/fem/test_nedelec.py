"""Tests for the Nédélec element kernels."""

import numpy as np
import pytest

from repro.fem import HexMesh, element_matrices, reference_basis, \
    reference_curl
from repro.fem.mesh import HexMesh as Mesh
from repro.fem.nedelec import geometry_jacobians
from repro.fem.quadrature import cube_rule, gauss_legendre_1d, segment_rule


class TestQuadrature:
    def test_gauss_1d_integrates_polynomials(self):
        x, w = gauss_legendre_1d(2)
        # degree-3 exactness on [0,1]: int x^3 = 1/4
        assert np.sum(w * x ** 3) == pytest.approx(0.25)

    def test_cube_rule_volume(self):
        pts, wts = cube_rule(2)
        assert wts.sum() == pytest.approx(1.0)
        assert pts.shape == (8, 3)

    def test_cube_rule_mixed_monomial(self):
        pts, wts = cube_rule(3)
        val = np.sum(wts * pts[:, 0] ** 2 * pts[:, 1] * pts[:, 2] ** 3)
        assert val == pytest.approx((1 / 3) * (1 / 2) * (1 / 4))

    def test_invalid_point_count(self):
        with pytest.raises(ValueError):
            gauss_legendre_1d(0)

    def test_segment_rule_matches_1d(self):
        np.testing.assert_allclose(segment_rule(3)[0],
                                   gauss_legendre_1d(3)[0])


class TestReferenceBasis:
    def test_unit_circulation_on_own_edge(self):
        # Basis e has unit line integral along edge e, zero along others.
        mesh = HexMesh(1, 1, 1)
        v = mesh.ref_vertices[mesh.cell_vertex_ids()[0]]
        s, w = gauss_legendre_1d(3)
        circ = np.zeros((12, 12))
        for e, (a, b) in enumerate(Mesh.LOCAL_EDGES):
            p0, p1 = v[a], v[b]
            pts = p0[None, :] + s[:, None] * (p1 - p0)[None, :]
            w_hat = reference_basis(pts)  # (nq, 12, 3)
            t = p1 - p0
            circ[e] = np.einsum("q,qe->e", w, w_hat @ t)
        np.testing.assert_allclose(circ, np.eye(12), atol=1e-12)

    def test_curl_is_actual_curl(self):
        # finite-difference check of the analytic curls
        rng = np.random.default_rng(0)
        pts = rng.random((5, 3)) * 0.8 + 0.1
        h = 1e-6
        curls = reference_curl(pts)
        for d, (i, j) in enumerate([(1, 2), (2, 0), (0, 1)]):
            # curl_d = dW_j/dx_i - dW_i/dx_j
            pp = pts.copy()
            pp[:, i] += h
            pm = pts.copy()
            pm[:, i] -= h
            dwj = (reference_basis(pp)[:, :, j] -
                   reference_basis(pm)[:, :, j]) / (2 * h)
            pp = pts.copy()
            pp[:, j] += h
            pm = pts.copy()
            pm[:, j] -= h
            dwi = (reference_basis(pp)[:, :, i] -
                   reference_basis(pm)[:, :, i]) / (2 * h)
            np.testing.assert_allclose(curls[:, :, d], dwj - dwi, atol=1e-6)


class TestElementMatrices:
    def unit_cell(self):
        mesh = HexMesh(1, 1, 1)
        return mesh.cell_vertex_coords()

    def test_symmetry_and_psd(self):
        pts, wts = cube_rule(2)
        K, M = element_matrices(self.unit_cell(), quad_pts=pts,
                                quad_wts=wts)
        np.testing.assert_allclose(K[0], K[0].T, atol=1e-14)
        np.testing.assert_allclose(M[0], M[0].T, atol=1e-14)
        assert np.linalg.eigvalsh(M[0]).min() > 0
        assert np.linalg.eigvalsh(K[0]).min() > -1e-12

    def test_curlcurl_nullspace_dimension(self):
        # lowest-order hex Nédélec: curl has rank 12 - 7 = 5? The gradient
        # subspace of the 12-dim space has dim 8-1=7 -> K rank 5.
        pts, wts = cube_rule(2)
        K, _ = element_matrices(self.unit_cell(), quad_pts=pts,
                                quad_wts=wts)
        rank = np.linalg.matrix_rank(K[0], tol=1e-10)
        assert rank == 5

    def test_gradient_fields_in_nullspace(self):
        # the edge-dof interpolation of a gradient (grad of trilinear
        # vertex function) lies in the curl-curl nullspace: dofs are
        # potential differences v(b) - v(a).
        pts, wts = cube_rule(2)
        K, _ = element_matrices(self.unit_cell(), quad_pts=pts,
                                quad_wts=wts)
        rng = np.random.default_rng(1)
        vvals = rng.standard_normal(8)
        dofs = np.array([vvals[b] - vvals[a] for a, b in Mesh.LOCAL_EDGES])
        assert np.abs(K[0] @ dofs).max() < 1e-12

    def test_constant_field_mass_integral(self):
        # the unit x-field has edge dofs = h on x-edges, 0 elsewhere;
        # its M-energy equals the volume.
        pts, wts = cube_rule(2)
        _, M = element_matrices(self.unit_cell(), quad_pts=pts,
                                quad_wts=wts)
        dofs = np.zeros(12)
        dofs[:4] = 1.0  # x-edges, edge length 1
        assert dofs @ M[0] @ dofs == pytest.approx(1.0)

    def test_scaling_with_cell_size(self):
        # shrink cell by h: M scales like h (curl energy like 1/h... for
        # edge elements: M ~ h diag in 3D with unit-circulation dofs).
        pts, wts = cube_rule(2)
        cell = self.unit_cell()
        K1, M1 = element_matrices(cell, quad_pts=pts, quad_wts=wts)
        K2, M2 = element_matrices(0.5 * cell, quad_pts=pts, quad_wts=wts)
        np.testing.assert_allclose(M2[0], 0.5 * M1[0], atol=1e-13)
        np.testing.assert_allclose(K2[0], 2.0 * K1[0], atol=1e-13)

    def test_inverted_cell_rejected(self):
        pts, wts = cube_rule(2)
        cell = self.unit_cell().copy()
        cell[0, :, 0] *= -1.0  # reflect: negative Jacobian
        with pytest.raises(ValueError, match="det J"):
            element_matrices(cell, quad_pts=pts, quad_wts=wts)

    def test_jacobian_affine_cell(self):
        pts, _ = cube_rule(1)
        cell = self.unit_cell() * np.array([2.0, 3.0, 4.0])
        J = geometry_jacobians(cell, pts)
        np.testing.assert_allclose(J[0, 0], np.diag([2.0, 3.0, 4.0]),
                                   atol=1e-13)
