"""Tests for the indefinite Maxwell problem assembly and solve."""

import numpy as np
import pytest
import scipy.sparse.linalg as spla

from repro.device import A100, Device
from repro.fem import HexMesh, MaxwellProblem, field_F, torus_map
from repro.sparse import SparseLU


class TestAssembly:
    def test_operator_symmetric(self):
        prob = MaxwellProblem.build(HexMesh(4, 4, 4), omega=5.0)
        d = (prob.operator - prob.operator.T)
        assert abs(d).max() < 1e-12

    def test_operator_indefinite_for_large_omega(self):
        prob = MaxwellProblem.build(HexMesh(5, 5, 5), omega=16.0)
        A, _ = prob.reduced_system()
        lo = spla.eigsh(A.tocsc(), k=1, which="SA",
                        return_eigenvectors=False)
        hi = spla.eigsh(A.tocsc(), k=1, which="LA",
                        return_eigenvectors=False)
        assert lo[0] < 0 < hi[0]

    def test_mass_positive_definite(self):
        prob = MaxwellProblem.build(HexMesh(3, 3, 3), omega=1.0)
        vals = spla.eigsh(prob.M.tocsc(), k=1, which="SA",
                          return_eigenvectors=False)
        assert vals[0] > 0

    def test_default_kappa_is_paper_ratio(self):
        prob = MaxwellProblem.build(HexMesh(2, 2, 2))
        assert prob.omega == 16.0
        assert prob.kappa == pytest.approx(16.0 / 1.05)

    def test_interior_boundary_partition(self):
        prob = MaxwellProblem.build(HexMesh(4, 4, 4), omega=2.0)
        all_edges = np.sort(np.concatenate([prob.interior, prob.boundary]))
        np.testing.assert_array_equal(all_edges,
                                      np.arange(prob.mesh.n_edges))


class TestManufacturedSolution:
    def test_exact_dofs_satisfy_discrete_equations_weakly(self):
        # residual of the interpolated exact solution shrinks with h
        errs = []
        for n in (4, 8):
            prob = MaxwellProblem.build(HexMesh(n, n, n), omega=3.0)
            A, b = prob.reduced_system()
            x = spla.spsolve(A.tocsc(), b)
            errs.append(prob.solution_error(x))
        assert errs[1] < 0.5 * errs[0]

    def test_convergence_on_torus(self):
        errs = []
        for dims in ((8, 4, 4), (16, 8, 8)):
            mesh = HexMesh(*dims, periodic_x=True, mapping=torus_map())
            prob = MaxwellProblem.build(mesh, omega=2.0)
            A, b = prob.reduced_system()
            x = spla.spsolve(A.tocsc(), b)
            errs.append(prob.solution_error(x))
        assert errs[1] < 0.45 * errs[0]

    def test_field_F_definition(self):
        x = np.array([[0.1, 0.2, 0.3]])
        k = 2.0
        f = field_F(k, x)[0]
        assert f[0] == pytest.approx(np.sin(k * 0.2))
        assert f[1] == pytest.approx(np.sin(k * 0.3))
        assert f[2] == pytest.approx(np.sin(k * 0.1))


class TestSolverIntegration:
    def test_sparse_lu_solves_maxwell(self, rng):
        """The paper's pipeline: Maxwell system through the batched GPU
        multifrontal solver, residual at machine precision after one
        refinement step (§V-B)."""
        prob = MaxwellProblem.build(HexMesh(6, 6, 6), omega=16.0)
        A, b = prob.reduced_system()
        s = SparseLU(A).analyze()
        s.factor(backend="batched", device=Device(A100()))
        x, info = s.solve(b, refine_steps=1)
        assert info.residuals[-1] < 1e-13
        assert info.residuals[-1] <= info.residuals[0]

    def test_full_solution_scatter(self):
        prob = MaxwellProblem.build(HexMesh(3, 3, 3), omega=2.0)
        xi = np.zeros(prob.n_dofs)
        full = prob.full_solution(xi)
        np.testing.assert_array_equal(full[prob.boundary], prob.g)
        assert np.all(full[prob.interior] == 0)

    def test_cpu_gpu_backends_same_answer(self, rng):
        prob = MaxwellProblem.build(HexMesh(5, 5, 5), omega=16.0)
        A, b = prob.reduced_system()
        xs = []
        for backend in ("cpu", "batched"):
            s = SparseLU(A).analyze()
            dev = None if backend == "cpu" else Device(A100())
            s.factor(backend=backend, device=dev)
            x, _ = s.solve(b)
            xs.append(x)
        np.testing.assert_allclose(xs[0], xs[1], rtol=1e-9, atol=1e-10)
