"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.device import A100, MI100, Device


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def a100():
    return Device(A100())


@pytest.fixture
def mi100():
    return Device(MI100())
