"""ABFT checksum verification of the batched drivers (``-m sdc``).

The contract under test: with kernel verification on, every injected
``corrupt`` fault is either *repaired* — the re-executed launch yields
results bitwise identical to a fault-free run — or surfaced as a typed
:class:`~repro.errors.CorruptionDetected`; and a fault-free verified
run is bitwise identical to an unverified one (the checks are
read-only).
"""

import numpy as np
import pytest

from repro.batched import IrrBatch, irr_getrf, lu_reconstruct
from repro.batched.abft import ABFT_MAX_REEXEC
from repro.batched.program import compile_workload
from repro.device import A100, PERSISTENT, Device, FaultPlan, FaultRule
from repro.errors import CorruptionDetected

pytestmark = [pytest.mark.sdc,
              pytest.mark.filterwarnings("error::RuntimeWarning")]


def corrupt(match, *, times=1, at=0, seed=7):
    return FaultPlan([FaultRule("corrupt", at=at, times=times,
                                match=match)], seed=seed)


def mats(rng, shapes):
    out = []
    for m, n in shapes:
        a = rng.standard_normal((m, n))
        k = min(m, n)
        a[:k, :k] += float(max(m, n)) * np.eye(k)
        out.append(a)
    return out


SHAPES = [(40, 40), (48, 33), (17, 40), (64, 64)]


def factor_ref(shapes, seed=12345, **kw):
    rng = np.random.default_rng(seed)
    dev = Device(A100())
    b = IrrBatch.from_host(dev, mats(rng, shapes))
    piv = irr_getrf(dev, b, **kw)
    return [a.data.copy() for a in b.arrays], piv


class TestRepair:
    @pytest.mark.parametrize("site", ["irrgemm", "irrtrsm:base",
                                      "irrgetf2"])
    def test_transient_corruption_repaired_bitwise(self, site, rng):
        ref, piv_ref = factor_ref(SHAPES)
        dev = Device(A100())
        b = IrrBatch.from_host(dev, mats(np.random.default_rng(12345),
                                         SHAPES))
        with dev.fault_scope(corrupt(site)) as inj:
            piv = irr_getrf(dev, b)
        assert [f.kind for f in inj.injected] == ["corrupt"]
        assert dev.recovery_log.count("kernel-reexec") >= 1
        for i in range(len(b)):
            np.testing.assert_array_equal(b.arrays[i].data, ref[i])
            np.testing.assert_array_equal(piv.ipiv[i], piv_ref.ipiv[i])

    def test_two_hit_corruption_uses_full_budget(self, rng):
        ref, _ = factor_ref(SHAPES)
        dev = Device(A100())
        b = IrrBatch.from_host(dev, mats(np.random.default_rng(12345),
                                         SHAPES))
        with dev.fault_scope(corrupt("irrgemm",
                                     times=ABFT_MAX_REEXEC)):
            irr_getrf(dev, b)
        assert dev.recovery_log.count("kernel-reexec") == ABFT_MAX_REEXEC
        for i in range(len(b)):
            np.testing.assert_array_equal(b.arrays[i].data, ref[i])

    def test_persistent_corruption_raises_typed(self, rng):
        dev = Device(A100())
        b = IrrBatch.from_host(dev, mats(np.random.default_rng(12345),
                                         SHAPES))
        with dev.fault_scope(corrupt("irrgemm", times=PERSISTENT)):
            with pytest.raises(CorruptionDetected) as ei:
                irr_getrf(dev, b)
        assert "irrgemm" in ei.value.site
        assert 0 <= ei.value.batch_index < len(SHAPES)
        # budget fully consumed before giving up
        assert dev.recovery_log.count("kernel-reexec") >= ABFT_MAX_REEXEC


class TestNoFalsePositives:
    def test_verified_fault_free_run_is_bitwise_clean(self, rng):
        ref, piv_ref = factor_ref(SHAPES)
        dev = Device(A100())
        b = IrrBatch.from_host(dev, mats(np.random.default_rng(12345),
                                         SHAPES))
        dev.verify_kernels = True
        try:
            piv = irr_getrf(dev, b)
        finally:
            dev.verify_kernels = False
        assert dev.recovery_log.count("kernel-reexec") == 0
        for i in range(len(b)):
            np.testing.assert_array_equal(b.arrays[i].data, ref[i])
            np.testing.assert_array_equal(piv.ipiv[i], piv_ref.ipiv[i])

    def test_singular_member_is_skipped_not_flagged(self, rng):
        # a structurally singular member reports info != 0; its factors
        # are undefined so the checksum must not flag it
        good = rng.standard_normal((24, 24)) + 24 * np.eye(24)
        bad = np.zeros((24, 24))
        dev = Device(A100())
        b = IrrBatch.from_host(dev, [good.copy(), bad])
        dev.verify_kernels = True
        try:
            piv = irr_getrf(dev, b)
        finally:
            dev.verify_kernels = False
        assert piv.info[1] != 0
        assert dev.recovery_log.count("kernel-reexec") == 0
        rec = lu_reconstruct(b.arrays[0].data, piv.ipiv[0])
        np.testing.assert_allclose(rec, good, atol=1e-10)

    def test_static_pivot_replacement_not_flagged(self, rng):
        # replaced pivots perturb the factors away from A0 on purpose;
        # the loosened tolerance must absorb that, not cry corruption
        a = rng.standard_normal((32, 32))
        a[0] = a[1]          # force a (near-)singular leading block
        dev = Device(A100())
        b = IrrBatch.from_host(dev, [a.copy()])
        dev.verify_kernels = True
        try:
            piv = irr_getrf(dev, b, static_pivot=True, pivot_tol=1e-8)
        finally:
            dev.verify_kernels = False
        assert piv.n_replaced[0] >= 1
        assert dev.recovery_log.count("kernel-reexec") == 0


class TestCompiledProgramABFT:
    def test_program_replay_repairs_transient_corruption(self, rng):
        shapes = [(40, 40)] * 4
        hosts = mats(np.random.default_rng(3), shapes)
        dev = Device(A100())
        prog = compile_workload(dev, "getrf", shapes)
        ref = prog.run(a=[h.copy() for h in hosts])
        with dev.fault_scope(corrupt("fused[")):
            res = prog.run(a=[h.copy() for h in hosts])
        assert dev.recovery_log.count("kernel-reexec") >= 1
        for i in range(len(shapes)):
            np.testing.assert_array_equal(res.factors[i], ref.factors[i])
            np.testing.assert_array_equal(res.ipiv[i], ref.ipiv[i])
        prog.free()

    def test_program_replay_persistent_corruption_raises(self, rng):
        shapes = [(40, 40)] * 4
        hosts = mats(np.random.default_rng(3), shapes)
        dev = Device(A100())
        prog = compile_workload(dev, "getrf", shapes)
        with dev.fault_scope(corrupt("fused[", times=PERSISTENT)):
            with pytest.raises(CorruptionDetected) as ei:
                prog.run(a=[h.copy() for h in hosts])
        assert ei.value.site == "program:getrf"
        # a later fault-free replay of the same program is clean
        res = prog.run(a=[h.copy() for h in hosts])
        assert (res.info == 0).all()
        prog.free()

    def test_factor_solve_program_verifies_solve_stage(self, rng):
        shapes = [(32, 32)] * 3
        hosts = mats(np.random.default_rng(5), shapes)
        rhs = [np.random.default_rng(6 + i).standard_normal((32, 2))
               for i in range(3)]
        dev = Device(A100())
        prog = compile_workload(dev, "factor_solve", shapes,
                                rhs_shapes=[(32, 2)] * 3)
        ref = prog.run(a=[h.copy() for h in hosts],
                       b=[r.copy() for r in rhs])
        with dev.fault_scope(corrupt("fused[", at=1)):
            res = prog.run(a=[h.copy() for h in hosts],
                           b=[r.copy() for r in rhs])
        for i in range(3):
            np.testing.assert_array_equal(res.solutions[i],
                                          ref.solutions[i])
        prog.free()
