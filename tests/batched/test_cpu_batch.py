"""Tests for the MKL-like CPU batch baseline."""

import numpy as np
import pytest

from repro.batched import cpu_getrf_batch, lu_reconstruct
from repro.device import XEON_6140_2S


class TestCpuGetrfBatch:
    def test_factors_correct(self, rng):
        mats = [rng.standard_normal((int(n), int(n)))
                for n in rng.integers(1, 60, 20)]
        res = cpu_getrf_batch(mats, XEON_6140_2S())
        for orig, f, p in zip(mats, res.factors, res.pivots):
            rec = lu_reconstruct(f, p)
            np.testing.assert_allclose(rec, orig, rtol=1e-10, atol=1e-10)

    def test_rectangular_matrices(self, rng):
        mats = [rng.standard_normal((12, 5)), rng.standard_normal((5, 12))]
        res = cpu_getrf_batch(mats, XEON_6140_2S())
        for orig, f, p in zip(mats, res.factors, res.pivots):
            rec = lu_reconstruct(f, p)
            np.testing.assert_allclose(rec, orig, rtol=1e-10, atol=1e-10)

    def test_empty_matrix_passthrough(self):
        res = cpu_getrf_batch([np.zeros((0, 3))], XEON_6140_2S())
        assert res.factors[0].shape == (0, 3)
        assert res.seconds == 0.0

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError, match="2-D"):
            cpu_getrf_batch([np.zeros(4)], XEON_6140_2S())

    def test_time_increases_with_work(self, rng):
        small = [rng.standard_normal((16, 16)) for _ in range(10)]
        big = [rng.standard_normal((128, 128)) for _ in range(10)]
        t_small = cpu_getrf_batch(small, XEON_6140_2S()).seconds
        t_big = cpu_getrf_batch(big, XEON_6140_2S()).seconds
        assert t_big > 10 * t_small

    def test_cores_give_parallel_speedup(self, rng):
        from dataclasses import replace
        mats = [rng.standard_normal((64, 64)) for _ in range(72)]
        spec36 = XEON_6140_2S()
        spec1 = replace(spec36, n_cores=1)
        t36 = cpu_getrf_batch(mats, spec36).seconds
        t1 = cpu_getrf_batch(mats, spec1).seconds
        assert t1 > 30 * t36  # near-linear scaling for an even batch

    def test_lpt_bound(self, rng):
        # Batch time is at least the largest single matrix's time and at
        # most the serial time.
        from repro.analysis import getrf_flops
        spec = XEON_6140_2S()
        mats = [rng.standard_normal((int(n), int(n)))
                for n in rng.integers(8, 200, 50)]
        t = cpu_getrf_batch(mats, spec).seconds
        core_rate = spec.freq_hz * spec.flops_per_cycle_per_core
        singles = [spec.per_call_overhead +
                   getrf_flops(*m.shape) / (core_rate *
                                            spec.getrf_efficiency(m.shape[0]))
                   for m in mats]
        assert t >= max(singles) - 1e-12
        assert t <= sum(singles) + 1e-12
