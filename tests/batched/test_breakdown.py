"""Pivot-breakdown detection and static replacement in the batched LU.

Covers the magnitude-threshold fix (subnormal pivots like 1e-310 used to
pass the old ``== 0.0`` test and overflow the column scaling), the
relative ``pivot_tol`` threshold, static-pivot replacement, and the
bitwise engine-parity contract for every diagnostic the kernels emit.
"""

import numpy as np
import pytest

from repro.batched import IrrBatch, PanelPivots, irr_getrf
from repro.batched.getrf import lu_reconstruct
from repro.batched.getrs import irr_getrs
from repro.batched.panel import DEFAULT_REPLACE_SCALE
from repro.errors import FactorizationError

ENGINES = ("naive", "bucketed")
PANELS = ("fused", "columnwise")


def subnormal_matrix():
    """Nonzero but subnormal second pivot: 1e-310 < tiny(float64)."""
    a = np.eye(3)
    a[1, 1] = 1e-310
    return a


class TestSubnormalPivotRegression:
    """The old detector tested ``pivot == 0.0``; a 1e-310 pivot passed
    and the column scaling ``1/pivot`` overflowed to inf."""

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("panel", PANELS)
    @pytest.mark.filterwarnings("error::RuntimeWarning")
    def test_1e310_pivot_flagged_not_overflowed(self, a100, engine, panel):
        b = IrrBatch.from_host(a100, [subnormal_matrix()])
        piv = irr_getrf(a100, b, panel=panel, engine=engine)
        assert piv.info[0] == 2  # 1-based column of the bad pivot
        assert np.all(np.isfinite(b.to_host()[0]))

    @pytest.mark.parametrize("engine", ENGINES)
    def test_exact_zero_still_flagged(self, a100, engine):
        a = np.eye(3)
        a[2, 2] = 0.0
        b = IrrBatch.from_host(a100, [a])
        piv = irr_getrf(a100, b, engine=engine)
        assert piv.info[0] == 3

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.filterwarnings("error::RuntimeWarning")
    def test_tiny_uniform_scaling_not_false_positive(self, a100, engine,
                                                     rng):
        # Every entry ~1e-300: pivots are far below any absolute cutoff
        # but healthy relative to max|A| — must factor cleanly.
        mats = [1e-300 * (np.eye(n) * 4.0 + rng.standard_normal((n, n)))
                for n in (4, 9, 17)]
        b = IrrBatch.from_host(a100, [m.copy() for m in mats])
        piv = irr_getrf(a100, b, engine=engine)
        assert np.all(piv.info == 0)
        assert piv.n_replaced.sum() == 0
        for m, arr, ip in zip(mats, b.arrays, piv.ipiv):
            rec = lu_reconstruct(arr.data[:m.shape[0], :m.shape[1]], ip)
            np.testing.assert_allclose(rec, m, rtol=1e-12, atol=0)


class TestPivotTol:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_relative_threshold_flags_small_pivot(self, a100, engine):
        # second pivot is 1e-12·max|A|: clean under the default policy,
        # broken down under pivot_tol=1e-8.
        a = np.diag([1.0, 1e-12])
        b0 = IrrBatch.from_host(a100, [a.copy()])
        assert irr_getrf(a100, b0, engine=engine).info[0] == 0
        b1 = IrrBatch.from_host(a100, [a.copy()])
        piv = irr_getrf(a100, b1, pivot_tol=1e-8, engine=engine)
        assert piv.info[0] == 2
        assert piv.min_pivot[0] == 1e-12

    def test_negative_pivot_tol_rejected(self, a100):
        b = IrrBatch.from_host(a100, [np.eye(2)])
        with pytest.raises(ValueError, match="pivot_tol"):
            irr_getrf(a100, b, pivot_tol=-1.0)

    def test_nonpositive_replace_scale_rejected(self, a100):
        b = IrrBatch.from_host(a100, [np.eye(2)])
        with pytest.raises(ValueError, match="replace_scale"):
            irr_getrf(a100, b, static_pivot=True, replace_scale=0.0)


class TestStaticPivot:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.filterwarnings("error::RuntimeWarning")
    def test_replacement_recovers_factorization(self, a100, engine):
        b = IrrBatch.from_host(a100, [subnormal_matrix()])
        piv = irr_getrf(a100, b, static_pivot=True, engine=engine)
        assert piv.info[0] == 0
        assert piv.n_replaced[0] == 1
        lu = b.to_host()[0]
        assert np.all(np.isfinite(lu))
        # the replaced pivot carries the documented magnitude
        assert lu[1, 1] == pytest.approx(DEFAULT_REPLACE_SCALE, rel=1e-12)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_replacement_preserves_sign(self, a100, engine):
        a = np.diag([1.0, -1e-320])
        b = IrrBatch.from_host(a100, [a])
        piv = irr_getrf(a100, b, static_pivot=True, engine=engine)
        assert piv.info[0] == 0
        assert b.to_host()[0][1, 1] < 0

    @pytest.mark.parametrize("engine", ENGINES)
    def test_zero_matrix_not_replaceable(self, a100, engine):
        # max|A| = 0: there is no scale to synthesize a pivot from, so
        # static pivoting must not "recover" an all-zero matrix.
        b = IrrBatch.from_host(a100, [np.zeros((3, 3))])
        piv = irr_getrf(a100, b, static_pivot=True, engine=engine)
        assert piv.info[0] == 1
        assert piv.n_replaced[0] == 0

    @pytest.mark.parametrize("engine", ENGINES)
    def test_growth_and_min_pivot_recorded(self, a100, engine, rng):
        mats = [rng.standard_normal((n, n)) for n in (5, 12)]
        b = IrrBatch.from_host(a100, mats)
        piv = irr_getrf(a100, b, engine=engine)
        assert np.all(piv.min_pivot > 0)
        assert np.all(np.isfinite(piv.min_pivot))
        assert np.all(piv.growth >= 1.0 - 1e-15)


class TestEngineParityOnBreakdown:
    """The bucketed engine must emit bitwise-identical factors *and*
    diagnostics on batches containing broken/replaced pivots."""

    def _mixed_batch(self, dev, rng):
        mats = []
        for n in (3, 5, 5, 5, 9, 16, 16, 33):
            m = rng.standard_normal((n, n))
            mats.append(m)
        mats[1] = subnormal_matrix()          # subnormal pivot
        z = rng.standard_normal((7, 7))
        z[:, 4] = 0.0
        z[4, :] = 0.0
        mats.append(z)                        # zero row+col (singular)
        mats.append(np.zeros((4, 4)))         # all-zero matrix
        return IrrBatch.from_host(dev, [m.copy() for m in mats])

    @pytest.mark.parametrize("static", [False, True])
    @pytest.mark.parametrize("pivot_tol", [0.0, 1e-8])
    def test_bitwise_identical_factors_and_diagnostics(
            self, a100, mi100, rng, static, pivot_tol):
        bn = self._mixed_batch(a100, np.random.default_rng(7))
        bb = self._mixed_batch(mi100, np.random.default_rng(7))
        pn = irr_getrf(a100, bn, engine="naive", pivot_tol=pivot_tol,
                       static_pivot=static)
        pb = irr_getrf(mi100, bb, engine="bucketed", pivot_tol=pivot_tol,
                       static_pivot=static)
        for xn, xb in zip(bn.to_host(), bb.to_host()):
            assert np.array_equal(xn, xb)
        for ipn, ipb in zip(pn.ipiv, pb.ipiv):
            assert np.array_equal(ipn, ipb)
        assert np.array_equal(pn.info, pb.info)
        assert np.array_equal(pn.n_replaced, pb.n_replaced)
        assert np.array_equal(pn.min_pivot, pb.min_pivot)
        assert np.array_equal(pn.growth, pb.growth)


class TestGetrsRefusal:
    def test_solve_from_broken_factors_refused(self, a100, rng):
        mats = [rng.standard_normal((4, 4)), np.zeros((3, 3))]
        b = IrrBatch.from_host(a100, mats)
        piv = irr_getrf(a100, b)
        assert piv.info[1] == 1
        rhs = IrrBatch.from_host(a100, [np.ones((4, 1)), np.ones((3, 1))])
        with pytest.raises(FactorizationError, match="broken-down"):
            irr_getrs(a100, b, piv, rhs)

    def test_check_info_false_opts_out(self, a100, rng):
        mats = [rng.standard_normal((4, 4)), rng.standard_normal((3, 3))]
        b = IrrBatch.from_host(a100, mats)
        piv = irr_getrf(a100, b)
        piv.info[1] = 1  # simulate a flagged member with usable factors
        rhs = IrrBatch.from_host(a100, [np.ones((4, 1)), np.ones((3, 1))])
        with pytest.raises(FactorizationError):
            irr_getrs(a100, b, piv, rhs)
        irr_getrs(a100, b, piv, rhs, check_info=False)
