"""Tests for the panel factorization paths (irrGETF2 vs column-wise)."""

import numpy as np
import pytest

from repro.batched import IrrBatch, PanelPivots, columnwise_getf2, \
    fused_getf2, panel_shared_bytes
from repro.batched.getrf import lu_reconstruct
from repro.device import A100, MI100, Device


def factor_fully(dev, batch, pivots, path, nb=8):
    """Run only the panel kernels over the whole width (no trsm/gemm) —
    valid when every matrix has at most nb columns."""
    kmax = batch.max_min_mn
    for j in range(0, kmax, nb):
        ib = min(nb, kmax - j)
        path(dev, batch, pivots, j, ib)


class TestFusedPanel:
    def test_single_panel_factors_narrow_matrices(self, a100, rng):
        mats = [rng.standard_normal((m, 6)) for m in (6, 10, 32)]
        b = IrrBatch.from_host(a100, mats)
        piv = PanelPivots(b)
        fused_getf2(a100, b, piv, 0, 8)
        for orig, arr, ip in zip(mats, b.arrays, piv.ipiv):
            rec = lu_reconstruct(arr.data[:orig.shape[0], :6], ip)
            np.testing.assert_allclose(rec, orig, rtol=1e-12, atol=1e-12)

    def test_partial_pivoting_selects_max_magnitude(self, a100):
        a = np.array([[1.0, 2.0], [4.0, 3.0]])
        b = IrrBatch.from_host(a100, [a])
        piv = PanelPivots(b)
        fused_getf2(a100, b, piv, 0, 2)
        assert piv.ipiv[0][0] == 1  # row 1 had the larger leading entry

    def test_wide_matrix_updates_extra_u_columns(self, a100, rng):
        # m < n and the last pivot column inside this panel: the panel
        # must also produce the U columns past min(m, n).
        a = rng.standard_normal((4, 10))
        b = IrrBatch.from_host(a100, [a])
        piv = PanelPivots(b)
        fused_getf2(a100, b, piv, 0, 16)
        rec = lu_reconstruct(b.arrays[0].data, piv.ipiv[0])
        np.testing.assert_allclose(rec, a, rtol=1e-12, atol=1e-12)

    def test_zero_pivot_sets_info(self, a100):
        a = np.zeros((3, 3))
        a[0, 0] = 1.0  # column 1 (0-based) is exactly zero below and on diag
        b = IrrBatch.from_host(a100, [a])
        piv = PanelPivots(b)
        fused_getf2(a100, b, piv, 0, 3)
        assert piv.info[0] == 2  # first zero pivot at column 2 (1-based)

    def test_exhausted_matrices_skipped(self, a100, rng):
        mats = [rng.standard_normal((8, 8)), rng.standard_normal((2, 2))]
        b = IrrBatch.from_host(a100, mats)
        piv = PanelPivots(b)
        before = b.to_host()[1]
        fused_getf2(a100, b, piv, 4, 4)  # j=4 past the 2x2 matrix
        np.testing.assert_array_equal(b.to_host()[1], before)

    def test_refuses_oversized_panel(self, mi100, rng):
        # MI100's 64 KB LDS: a 16-wide panel of height 1024 is 128 KB.
        mats = [rng.standard_normal((1024, 16))]
        b = IrrBatch.from_host(mi100, mats)
        piv = PanelPivots(b)
        with pytest.raises(ValueError, match="shared memory"):
            fused_getf2(mi100, b, piv, 0, 16)

    def test_same_panel_fits_on_a100(self, a100, rng):
        mats = [rng.standard_normal((1024, 16))]
        b = IrrBatch.from_host(a100, mats)
        piv = PanelPivots(b)
        fused_getf2(a100, b, piv, 0, 16)  # 128 KB < 163 KB limit
        rec = lu_reconstruct(b.arrays[0].data, piv.ipiv[0])
        np.testing.assert_allclose(rec, mats[0], rtol=1e-11, atol=1e-11)


class TestColumnwisePanel:
    def test_matches_fused_numerics(self, rng):
        mats = [rng.standard_normal((m, 8)) for m in (8, 20, 5)]
        dev_a, dev_b = Device(A100()), Device(A100())
        ba = IrrBatch.from_host(dev_a, [m.copy() for m in mats])
        bb = IrrBatch.from_host(dev_b, [m.copy() for m in mats])
        pa, pb = PanelPivots(ba), PanelPivots(bb)
        factor_fully(dev_a, ba, pa, fused_getf2)
        factor_fully(dev_b, bb, pb, columnwise_getf2)
        for i in range(len(mats)):
            np.testing.assert_array_equal(ba.arrays[i].data,
                                          bb.arrays[i].data)
            np.testing.assert_array_equal(pa.ipiv[i], pb.ipiv[i])

    def test_zero_pivot_info_matches_fused(self, rng):
        a = np.zeros((4, 4))
        a[0, 0] = 2.0
        for path in (fused_getf2, columnwise_getf2):
            dev = Device(A100())
            b = IrrBatch.from_host(dev, [a])
            piv = PanelPivots(b)
            path(dev, b, piv, 0, 4)
            assert piv.info[0] == 2

    def test_launch_count_is_four_per_column(self, a100, rng):
        b = IrrBatch.from_host(a100, [rng.standard_normal((16, 8))])
        piv = PanelPivots(b)
        n0 = a100.profiler.launch_count
        columnwise_getf2(a100, b, piv, 0, 8)
        assert a100.profiler.launch_count - n0 == 4 * 8

    def test_no_shared_memory_requirement(self, mi100, rng):
        # The fallback path must run where the fused kernel cannot.
        mats = [rng.standard_normal((1024, 16))]
        b = IrrBatch.from_host(mi100, mats)
        piv = PanelPivots(b)
        columnwise_getf2(mi100, b, piv, 0, 16)
        rec = lu_reconstruct(b.arrays[0].data, piv.ipiv[0])
        np.testing.assert_allclose(rec, mats[0], rtol=1e-11, atol=1e-11)


class TestSharedBytesEstimate:
    def test_paper_formula(self):
        # ib x (M_max - j) doubles.
        assert panel_shared_bytes(100, 20, 16) == 80 * 16 * 8

    def test_never_negative(self):
        assert panel_shared_bytes(10, 50, 16) == 0

    def test_switch_point_differs_by_device(self):
        # The §IV-E observation: the MI100 must switch to the column-wise
        # path at a much smaller panel height than the A100.
        a100, mi100 = A100(), MI100()
        ib = 32

        def max_height(spec):
            h = 0
            while panel_shared_bytes(h + 1, 0, ib) <= spec.max_shared_per_block:
                h += 1
            return h

        assert max_height(a100) > 2 * max_height(mi100)


class TestPanelPivots:
    def test_initialized_to_identity(self, a100):
        b = IrrBatch.zeros(a100, [4, 2], [3, 5])
        piv = PanelPivots(b)
        assert piv.ipiv[0].tolist() == [0, 1, 2]
        assert piv.ipiv[1].tolist() == [0, 1]
        assert piv.info.tolist() == [0, 0]


class TestSubnormalPivotMagnitude:
    """Regression: the breakdown test is a magnitude threshold, not an
    ``== 0.0`` comparison — a subnormal 1e-310 pivot must set ``info``
    in both panel kernels instead of overflowing the column scaling."""

    @pytest.mark.parametrize("path", [fused_getf2, columnwise_getf2])
    @pytest.mark.filterwarnings("error::RuntimeWarning")
    def test_subnormal_pivot_sets_info(self, a100, path):
        a = np.eye(3)
        a[1, 1] = 1e-310
        b = IrrBatch.from_host(a100, [a])
        piv = PanelPivots(b)
        path(a100, b, piv, 0, 3)
        assert piv.info[0] == 2
        assert np.all(np.isfinite(b.to_host()[0]))
        assert piv.min_pivot[0] == 1e-310

    @pytest.mark.parametrize("path", [fused_getf2, columnwise_getf2])
    def test_static_replacement_at_panel_level(self, a100, path):
        a = np.eye(3)
        a[1, 1] = 1e-310
        b = IrrBatch.from_host(a100, [a])
        piv = PanelPivots(b, static_pivot=True)
        path(a100, b, piv, 0, 3)
        assert piv.info[0] == 0
        assert piv.n_replaced[0] == 1
