"""Tests for the vendor-library execution models."""

import numpy as np
import pytest
import scipy.linalg as sla

from repro.batched import lu_reconstruct, vendor_gemm, vendor_getrf, \
    vendor_trsm


class TestVendorGemm:
    def test_basic(self, a100, rng):
        a = rng.standard_normal((5, 7))
        b = rng.standard_normal((7, 4))
        c = np.zeros((5, 4))
        vendor_gemm(a100, "N", "N", 1.0, a, b, 0.0, c)
        np.testing.assert_allclose(c, a @ b, rtol=1e-13)

    def test_trans_and_beta(self, a100, rng):
        a = rng.standard_normal((7, 5))
        b = rng.standard_normal((4, 7))
        c = rng.standard_normal((5, 4))
        want = 2.0 * a.T @ b.T + 0.5 * c
        vendor_gemm(a100, "T", "T", 2.0, a, b, 0.5, c)
        np.testing.assert_allclose(c, want, rtol=1e-13)

    def test_shape_mismatch(self, a100, rng):
        with pytest.raises(ValueError, match="shape mismatch"):
            vendor_gemm(a100, "N", "N", 1.0, np.zeros((2, 3)),
                        np.zeros((4, 5)), 0.0, np.zeros((2, 5)))

    def test_vendor_class_and_single_launch(self, a100, rng):
        a = rng.standard_normal((64, 64))
        c = np.zeros((64, 64))
        n0 = a100.profiler.launch_count
        cost = vendor_gemm(a100, "N", "N", 1.0, a, a, 0.0, c)
        assert a100.profiler.launch_count == n0 + 1
        assert cost.kernel_class == "gemm_vendor"
        assert cost.flops == pytest.approx(2 * 64 ** 3)


class TestVendorTrsm:
    def test_left_lower(self, a100, rng):
        t = np.tril(rng.standard_normal((8, 8))) + 8 * np.eye(8)
        b = rng.standard_normal((8, 3))
        x = b.copy()
        vendor_trsm(a100, "L", "L", "N", "N", 1.0, t, x)
        np.testing.assert_allclose(np.tril(t) @ x, b, rtol=1e-12)

    def test_right_upper(self, a100, rng):
        t = np.triu(rng.standard_normal((5, 5))) + 5 * np.eye(5)
        b = rng.standard_normal((3, 5))
        x = b.copy()
        vendor_trsm(a100, "R", "U", "N", "N", 1.0, t, x)
        np.testing.assert_allclose(x @ np.triu(t), b, rtol=1e-12)

    def test_unit_diag(self, a100, rng):
        t = np.tril(rng.standard_normal((6, 6)), -1) + np.eye(6)
        b = rng.standard_normal((6, 2))
        x = b.copy()
        vendor_trsm(a100, "L", "L", "N", "U", 1.0, t + 99 * np.eye(6), x)
        # the stored diagonal must be ignored
        np.testing.assert_allclose(t @ x, b, rtol=1e-12)


class TestVendorGetrf:
    def test_matches_scipy(self, a100, rng):
        a = rng.standard_normal((90, 90))
        work = a.copy()
        ipiv = vendor_getrf(a100, work)
        lu_ref, piv_ref = sla.lu_factor(a)
        np.testing.assert_allclose(work, lu_ref, rtol=1e-10, atol=1e-12)
        np.testing.assert_array_equal(ipiv, piv_ref)

    def test_rectangular(self, a100, rng):
        for shape in [(90, 30), (30, 90)]:
            a = rng.standard_normal(shape)
            work = a.copy()
            ipiv = vendor_getrf(a100, work)
            rec = lu_reconstruct(work, ipiv)
            np.testing.assert_allclose(rec, a, rtol=1e-11, atol=1e-11)

    def test_launch_sequence_per_panel(self, a100, rng):
        a = rng.standard_normal((256, 256))
        n0 = a100.profiler.launch_count
        vendor_getrf(a100, a)
        launches = a100.profiler.launch_count - n0
        # 4 panels of 64: 4 panel + 4 swap + 3 trsm + 3 gemm (nothing to
        # the right of or below the last panel).
        assert launches == 14

    def test_small_matrix_few_launches(self, a100, rng):
        a = rng.standard_normal((10, 10))
        n0 = a100.profiler.launch_count
        vendor_getrf(a100, a)
        assert a100.profiler.launch_count - n0 == 2  # panel + swap only
