"""Tests for the irrLU-GPU driver."""

import numpy as np
import pytest
import scipy.linalg as sla
from hypothesis import given, settings, strategies as st

from repro.analysis import lu_backward_error
from repro.batched import IrrBatch, irr_getrf, lu_reconstruct, \
    lu_solve_factored
from repro.device import A100, MI100, Device


def reconstruct_all(batch, pivots):
    return [lu_reconstruct(batch.arrays[i].data[:batch.m_vec[i],
                                                :batch.n_vec[i]],
                           pivots.ipiv[i])
            for i in range(len(batch))]


class TestCorrectness:
    def test_uniform_square_batch(self, a100, rng):
        mats = [rng.standard_normal((48, 48)) for _ in range(6)]
        b = IrrBatch.from_host(a100, [m.copy() for m in mats])
        piv = irr_getrf(a100, b)
        for rec, orig in zip(reconstruct_all(b, piv), mats):
            np.testing.assert_allclose(rec, orig, rtol=1e-11, atol=1e-11)

    def test_wildly_irregular_batch(self, a100, rng):
        shapes = [(1, 1), (2, 2), (3, 17), (17, 3), (64, 64), (100, 41),
                  (41, 100), (129, 129), (5, 5), (257, 31)]
        mats = [rng.standard_normal(s) for s in shapes]
        b = IrrBatch.from_host(a100, [m.copy() for m in mats])
        piv = irr_getrf(a100, b)
        for rec, orig in zip(reconstruct_all(b, piv), mats):
            assert np.abs(rec - orig).max() < 1e-11 * max(
                1, np.abs(orig).max())

    def test_matches_scipy_factors(self, a100, rng):
        a = rng.standard_normal((40, 40))
        b = IrrBatch.from_host(a100, [a.copy()])
        piv = irr_getrf(a100, b, nb=8)
        lu_ref, piv_ref = sla.lu_factor(a)
        np.testing.assert_allclose(b.arrays[0].data, lu_ref, rtol=1e-10,
                                   atol=1e-12)
        np.testing.assert_array_equal(piv.ipiv[0], piv_ref)

    def test_solve_from_factors(self, a100, rng):
        a = rng.standard_normal((30, 30)) + 30 * np.eye(30)
        x_true = rng.standard_normal(30)
        rhs = a @ x_true
        b = IrrBatch.from_host(a100, [a.copy()])
        piv = irr_getrf(a100, b)
        x = lu_solve_factored(b.arrays[0].data, piv.ipiv[0], rhs)
        np.testing.assert_allclose(x, x_true, rtol=1e-9)

    @pytest.mark.parametrize("nb", [1, 4, 32, 100])
    def test_panel_width_invariance(self, a100, rng, nb):
        mats = [rng.standard_normal((37, 37)), rng.standard_normal((9, 50))]
        b = IrrBatch.from_host(a100, [m.copy() for m in mats])
        piv = irr_getrf(a100, b, nb=nb)
        for rec, orig in zip(reconstruct_all(b, piv), mats):
            np.testing.assert_allclose(rec, orig, rtol=1e-11, atol=1e-11)

    @pytest.mark.parametrize("laswp", ["rehearsed", "looped"])
    @pytest.mark.parametrize("panel", ["auto", "columnwise"])
    def test_all_path_combinations(self, a100, rng, panel, laswp):
        mats = [rng.standard_normal((m, m)) for m in (7, 33, 70)]
        b = IrrBatch.from_host(a100, [m.copy() for m in mats])
        piv = irr_getrf(a100, b, panel=panel, laswp_variant=laswp)
        for rec, orig in zip(reconstruct_all(b, piv), mats):
            np.testing.assert_allclose(rec, orig, rtol=1e-11, atol=1e-11)


class TestEdgeCases:
    def test_empty_batch(self, a100):
        b = IrrBatch(a100, [], np.array([], dtype=np.int64),
                     np.array([], dtype=np.int64))
        piv = irr_getrf(a100, b)
        assert len(piv) == 0

    def test_batch_of_1x1(self, a100):
        b = IrrBatch.from_host(a100, [np.array([[3.0]]),
                                      np.array([[-2.0]])])
        piv = irr_getrf(a100, b)
        assert b.arrays[0].data[0, 0] == 3.0
        assert piv.ipiv[0].tolist() == [0]

    def test_zero_sized_matrices(self, a100):
        b = IrrBatch.zeros(a100, [0, 4], [3, 0])
        piv = irr_getrf(a100, b)
        assert piv.ipiv[0].size == 0
        assert piv.ipiv[1].size == 0

    def test_singular_matrix_reports_info(self, a100):
        a = np.ones((4, 4))  # rank 1
        b = IrrBatch.from_host(a100, [a])
        piv = irr_getrf(a100, b, nb=2)
        assert piv.info[0] > 0

    def test_singular_does_not_poison_others(self, a100, rng):
        good = rng.standard_normal((20, 20))
        b = IrrBatch.from_host(a100, [np.zeros((8, 8)), good.copy()])
        piv = irr_getrf(a100, b)
        assert piv.info[0] > 0
        assert piv.info[1] == 0
        rec = lu_reconstruct(b.arrays[1].data, piv.ipiv[1])
        np.testing.assert_allclose(rec, good, rtol=1e-11, atol=1e-11)

    def test_invalid_panel_mode(self, a100, rng):
        b = IrrBatch.from_host(a100, [rng.standard_normal((4, 4))])
        with pytest.raises(ValueError, match="panel mode"):
            irr_getrf(a100, b, panel="magic")

    def test_invalid_panel_width(self, a100, rng):
        b = IrrBatch.from_host(a100, [rng.standard_normal((4, 4))])
        with pytest.raises(ValueError, match="panel width"):
            irr_getrf(a100, b, nb=0)


class TestDeviceBehaviour:
    def test_mi100_splits_panels_deeper_than_a100(self, rng):
        """§IV-E/§V-A: the smaller LDS forces the fused-panel kernel onto
        narrower sub-panels (deeper recursion) on the MI100, so it issues
        more panel launches for the same matrix."""
        mats = [rng.standard_normal((900, 900))]
        counts = {}
        for make in (A100, MI100):
            dev = Device(make())
            b = IrrBatch.from_host(dev, [mats[0].copy()])
            irr_getrf(dev, b, nb=32)
            dev.synchronize()
            agg = dev.profiler.by_kernel()
            counts[make().name] = sum(
                s.count for name, s in agg.items()
                if name.startswith(("irrgetf2", "irrpanel")))
        assert counts["MI100"] > counts["A100-SXM4"]

    def test_same_factors_on_both_devices(self, rng):
        a = rng.standard_normal((150, 150))
        outs = []
        for make in (A100, MI100):
            dev = Device(make())
            b = IrrBatch.from_host(dev, [a.copy()])
            piv = irr_getrf(dev, b)
            outs.append((b.arrays[0].data.copy(), piv.ipiv[0].copy()))
        np.testing.assert_array_equal(outs[0][0], outs[1][0])
        np.testing.assert_array_equal(outs[0][1], outs[1][1])

    def test_launch_count_independent_of_batch_size(self, rng):
        """The whole point of batching: 10x the matrices, same launches."""
        counts = []
        for bs in (5, 50):
            dev = Device(A100())
            rng2 = np.random.default_rng(3)
            mats = [rng2.standard_normal((64, 64)) for _ in range(bs)]
            b = IrrBatch.from_host(dev, mats)
            irr_getrf(dev, b)
            counts.append(dev.profiler.launch_count)
        assert counts[0] == counts[1]


class TestBackwardError:
    def test_backward_error_near_machine_precision(self, a100, rng):
        mats = [rng.standard_normal((m, m)) for m in (10, 100, 300)]
        b = IrrBatch.from_host(a100, [m.copy() for m in mats])
        piv = irr_getrf(a100, b)
        for i, orig in enumerate(mats):
            err = lu_backward_error(orig, b.arrays[i].data, piv.ipiv[i])
            assert err < 1e-13

    def test_pivot_growth_bounded(self, a100, rng):
        # With partial pivoting, |L| entries are <= 1.
        mats = [rng.standard_normal((m, m)) for m in (17, 90)]
        b = IrrBatch.from_host(a100, [m.copy() for m in mats])
        irr_getrf(a100, b)
        for arr in b.arrays:
            lower = np.tril(arr.data, -1)
            assert np.abs(lower).max() <= 1.0 + 1e-12


class TestGetrfProperty:
    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.tuples(st.integers(1, 40), st.integers(1, 40)),
                    min_size=1, max_size=8),
           st.integers(0, 2 ** 32 - 1),
           st.integers(1, 17))
    def test_plu_reconstruction(self, shapes, seed, nb):
        rng = np.random.default_rng(seed)
        dev = Device(A100())
        mats = [rng.standard_normal(s) for s in shapes]
        b = IrrBatch.from_host(dev, [m.copy() for m in mats])
        piv = irr_getrf(dev, b, nb=nb)
        for i, orig in enumerate(mats):
            rec = lu_reconstruct(
                b.arrays[i].data[:shapes[i][0], :shapes[i][1]], piv.ipiv[i])
            assert np.abs(rec - orig).max() < 1e-10 * max(
                1.0, np.abs(orig).max())

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 2 ** 32 - 1))
    def test_pivot_vectors_are_valid_permutation_data(self, seed):
        rng = np.random.default_rng(seed)
        dev = Device(A100())
        mats = [rng.standard_normal((int(m), int(m)))
                for m in rng.integers(1, 60, 5)]
        b = IrrBatch.from_host(dev, mats)
        piv = irr_getrf(dev, b)
        for i, ip in enumerate(piv.ipiv):
            m = mats[i].shape[0]
            # ipiv[r] >= r and < m: a legal LAPACK-style swap sequence.
            assert np.all(ip >= np.arange(len(ip)))
            assert np.all(ip < m)
