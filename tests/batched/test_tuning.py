"""Tests for the distribution-aware auto-tuner (§VI)."""

import numpy as np
import pytest

from repro.batched import IrrBatch, autotune_getrf, irr_getrf, \
    size_distribution_summary
from repro.device import A100, Device
from repro.workloads import large_square_batch, random_square_batch


class TestSummary:
    def test_empty(self):
        s = size_distribution_summary([], [])
        assert s["count"] == 0

    def test_statistics(self):
        s = size_distribution_summary([10, 20, 30, 40], [40, 30, 20, 10])
        # k = min(m, n) = [10, 20, 20, 10]
        assert s["min"] == 10
        assert s["max"] == 20
        assert s["median"] == 15.0

    def test_uniform_batch_zero_spread(self):
        s = size_distribution_summary([32] * 8, [32] * 8)
        assert s["spread"] == 0.0


class TestAutotune:
    def test_returns_feasible_best(self, rng):
        mats = random_square_batch(40, 64, seed=1)
        res = autotune_getrf(A100(), mats, sample_size=10)
        assert res.best in [c for c, _ in res.trials]
        assert res.trials == sorted(res.trials, key=lambda kv: kv[1])

    def test_empty_batch(self):
        res = autotune_getrf(A100(), [])
        assert "nb" in res.best

    def test_best_config_runs_on_full_batch(self, rng):
        mats = random_square_batch(60, 96, seed=2)
        res = autotune_getrf(A100(), mats, sample_size=12)
        dev = Device(A100())
        b = IrrBatch.from_host(dev, [m.copy() for m in mats])
        piv = irr_getrf(dev, b, **res.best)
        assert all(i == 0 for i in piv.info)

    def test_tuning_matters(self, rng):
        # the candidate spread is real: worst/best > 1 on any batch
        mats = random_square_batch(30, 128, seed=3)
        res = autotune_getrf(A100(), mats, sample_size=10)
        assert res.speedup_over_worst() > 1.2

    def test_large_matrices_prefer_wide_panels(self, rng):
        mats = large_square_batch(4, 768, seed=4)
        res = autotune_getrf(A100(), mats, sample_size=4)
        assert res.best["nb"] >= 16

    def test_custom_candidates(self, rng):
        mats = random_square_batch(10, 32, seed=5)
        cands = [{"nb": 8}, {"nb": 32}]
        res = autotune_getrf(A100(), mats, candidates=cands)
        assert set(res.best) == {"nb"}
        assert len(res.trials) == 2

    def test_prediction_transfers_to_full_batch(self, rng):
        """The tuner's whole premise: the sampled winner is at least
        near-optimal on the full batch."""
        mats = random_square_batch(80, 96, seed=6)
        res = autotune_getrf(A100(), mats, sample_size=16, seed=1)

        def full_time(cfg):
            dev = Device(A100())
            b = IrrBatch.from_host(dev, [m.copy() for m in mats])
            with dev.timed_region() as t:
                irr_getrf(dev, b, **cfg)
            return t["elapsed"]

        t_best = full_time(res.best)
        t_worst = full_time(res.trials[-1][0])
        assert t_best < t_worst
