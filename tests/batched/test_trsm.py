"""Tests for irrTRSM (recursive) and the MAGMA-style baseline."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import max_trsm_backward_error
from repro.batched import IrrBatch, irr_trsm, magma_style_trsm
from repro.device import A100, Device


def make_tri_problem(rng, sizes_rhs, side="L", diag="N"):
    """Well-conditioned triangular systems of mixed sizes."""
    ts, bs = [], []
    for mr in sizes_rhs:
        m, r = mr
        b = rng.standard_normal((m, r))
        order = m if side == "L" else r
        t = 0.4 * rng.standard_normal((order, order)) / max(
            1.0, np.sqrt(order))
        t += np.eye(order) * (1.0 if diag == "U" else order)
        ts.append(t)
        bs.append(b)
    return ts, bs


def reference_solve(t, b, side, uplo, trans, diag):
    tt = np.tril(t) if uplo == "L" else np.triu(t)
    if diag == "U":
        tt = tt.copy()
        np.fill_diagonal(tt, 1.0)
    op = tt.T if trans == "T" else tt
    if side == "L":
        return np.linalg.solve(op, b)
    return np.linalg.solve(op.T, b.T).T


SIZES = [(5, 3), (37, 8), (64, 1), (100, 17), (1, 2)]


class TestAllCombinations:
    @pytest.mark.parametrize(
        "side,uplo,trans,diag",
        list(itertools.product("LR", "LU", "NT", "NU")))
    def test_residual_small(self, rng, side, uplo, trans, diag):
        dev = Device(A100())
        sizes = SIZES if side == "L" else [(r, m) for m, r in SIZES]
        ts, bs = make_tri_problem(rng, sizes, side=side, diag=diag)
        T = IrrBatch.from_host(dev, ts)
        B = IrrBatch.from_host(dev, [b.copy() for b in bs])
        m = max(b.shape[0] for b in bs)
        n = max(b.shape[1] for b in bs)
        irr_trsm(dev, side, uplo, trans, diag, m, n, 1.0, T, (0, 0),
                 B, (0, 0))
        for t, b, x in zip(ts, bs, B.to_host()):
            ref = reference_solve(t, b, side, uplo, trans, diag)
            np.testing.assert_allclose(x, ref, rtol=1e-9, atol=1e-9)


class TestMixedDtype:
    def test_real_triangles_complex_rhs(self, rng):
        # real factors against complex right-hand sides: the multifrontal
        # solve path after dtype promotion (complex b, real LU)
        ts, _ = make_tri_problem(rng, SIZES)
        bs = [rng.standard_normal((m, r)) + 1j * rng.standard_normal((m, r))
              for m, r in SIZES]
        m = max(b.shape[0] for b in bs)
        n = max(b.shape[1] for b in bs)
        results = {}
        for engine in ("naive", "bucketed"):
            dev = Device(A100())
            T = IrrBatch.from_host(dev, ts)
            B = IrrBatch.from_host(dev, [b.copy() for b in bs])
            irr_trsm(dev, "L", "L", "N", "U", m, n, 1.0, T, (0, 0),
                     B, (0, 0), engine=engine)
            results[engine] = B.to_host()
        for xn, xb in zip(results["naive"], results["bucketed"]):
            assert xn.dtype == np.complex128
            np.testing.assert_array_equal(xn, xb)
        for t, b, x in zip(ts, bs, results["naive"]):
            ref = reference_solve(t, b, "L", "L", "N", "U")
            np.testing.assert_allclose(x, ref, rtol=1e-9, atol=1e-9)


class TestSemantics:
    def test_alpha_scaling(self, a100, rng):
        ts, bs = make_tri_problem(rng, [(16, 4)])
        T = IrrBatch.from_host(a100, ts)
        B = IrrBatch.from_host(a100, [b.copy() for b in bs])
        irr_trsm(a100, "L", "L", "N", "N", 16, 4, 2.5, T, (0, 0), B, (0, 0))
        ref = 2.5 * reference_solve(ts[0], bs[0], "L", "L", "N", "N")
        np.testing.assert_allclose(B.to_host()[0], ref, rtol=1e-10)

    def test_offsets_solve_trailing_block(self, a100, rng):
        # Solve with the 4x4 trailing triangle of an 8x8 matrix against
        # the B rows 4:8 — the pattern irrLU uses at every panel.
        t = np.eye(8) * 8 + 0.1 * rng.standard_normal((8, 8))
        b = rng.standard_normal((8, 5))
        T = IrrBatch.from_host(a100, [t])
        B = IrrBatch.from_host(a100, [b.copy()])
        irr_trsm(a100, "L", "L", "N", "N", 4, 5, 1.0, T, (4, 4), B, (4, 0))
        want = b.copy()
        want[4:, :] = reference_solve(t[4:, 4:], b[4:, :], "L", "L", "N", "N")
        np.testing.assert_allclose(B.to_host()[0], want, rtol=1e-10)

    def test_finished_matrices_skipped(self, a100, rng):
        ts, bs = make_tri_problem(rng, [(32, 4), (2, 4)])
        T = IrrBatch.from_host(a100, ts)
        B = IrrBatch.from_host(a100, [b.copy() for b in bs])
        irr_trsm(a100, "L", "L", "N", "N", 16, 4, 1.0, T, (8, 8), B, (8, 0))
        # matrix 1 (2x2 triangle) is exhausted at offset 8: untouched.
        np.testing.assert_array_equal(B.to_host()[1], bs[1])

    def test_zero_dims_noop(self, a100, rng):
        ts, bs = make_tri_problem(rng, [(8, 3)])
        T = IrrBatch.from_host(a100, ts)
        B = IrrBatch.from_host(a100, [b.copy() for b in bs])
        n0 = a100.profiler.launch_count
        irr_trsm(a100, "L", "L", "N", "N", 0, 3, 1.0, T, (0, 0), B, (0, 0))
        irr_trsm(a100, "L", "L", "N", "N", 8, 0, 1.0, T, (0, 0), B, (0, 0))
        assert a100.profiler.launch_count == n0
        np.testing.assert_array_equal(B.to_host()[0], bs[0])

    def test_validation(self, a100, rng):
        ts, bs = make_tri_problem(rng, [(8, 3)])
        T = IrrBatch.from_host(a100, ts)
        B = IrrBatch.from_host(a100, bs)
        with pytest.raises(ValueError, match="side"):
            irr_trsm(a100, "X", "L", "N", "N", 8, 3, 1.0, T, (0, 0),
                     B, (0, 0))
        with pytest.raises(ValueError, match="uplo"):
            irr_trsm(a100, "L", "X", "N", "N", 8, 3, 1.0, T, (0, 0),
                     B, (0, 0))

    def test_recursion_reduces_to_base_and_gemm(self, a100, rng):
        ts, bs = make_tri_problem(rng, [(128, 4)])
        T = IrrBatch.from_host(a100, ts)
        B = IrrBatch.from_host(a100, [b.copy() for b in bs])
        n0 = a100.profiler.launch_count
        irr_trsm(a100, "L", "L", "N", "N", 128, 4, 1.0, T, (0, 0), B, (0, 0))
        launches = a100.profiler.launch_count - n0
        # 128 -> 4 base solves of 32 + 3 gemm updates = 7 launches
        assert launches == 7


class TestMagmaStyleBaseline:
    def test_matches_reference(self, a100, rng):
        ts, bs = make_tri_problem(rng, SIZES)
        T = IrrBatch.from_host(a100, ts)
        B = IrrBatch.from_host(a100, [b.copy() for b in bs])
        m = max(b.shape[0] for b in bs)
        n = max(b.shape[1] for b in bs)
        magma_style_trsm(a100, "L", "L", "N", "N", m, n, 1.0, T, (0, 0),
                         B, (0, 0))
        for t, b, x in zip(ts, bs, B.to_host()):
            ref = reference_solve(t, b, "L", "L", "N", "N")
            np.testing.assert_allclose(x, ref, rtol=1e-8, atol=1e-8)

    def test_upper_variant(self, a100, rng):
        ts, bs = make_tri_problem(rng, [(24, 4), (9, 2)])
        T = IrrBatch.from_host(a100, ts)
        B = IrrBatch.from_host(a100, [b.copy() for b in bs])
        magma_style_trsm(a100, "L", "U", "N", "N", 24, 4, 1.0, T, (0, 0),
                         B, (0, 0))
        for t, b, x in zip(ts, bs, B.to_host()):
            ref = reference_solve(t, b, "L", "U", "N", "N")
            np.testing.assert_allclose(x, ref, rtol=1e-8, atol=1e-8)

    def test_unsupported_configuration(self, a100, rng):
        ts, bs = make_tri_problem(rng, [(8, 3)])
        T = IrrBatch.from_host(a100, ts)
        B = IrrBatch.from_host(a100, bs)
        with pytest.raises(NotImplementedError):
            magma_style_trsm(a100, "R", "L", "N", "N", 8, 3, 1.0, T, (0, 0),
                             B, (0, 0))

    def test_workspace_freed(self, a100, rng):
        ts, bs = make_tri_problem(rng, [(32, 8)])
        T = IrrBatch.from_host(a100, ts)
        B = IrrBatch.from_host(a100, bs)
        before = a100.allocated_bytes
        magma_style_trsm(a100, "L", "L", "N", "N", 32, 8, 1.0, T, (0, 0),
                         B, (0, 0))
        assert a100.allocated_bytes == before


class TestAccuracyClaim:
    def test_irrtrsm_not_less_accurate_than_magma(self, rng):
        """Fig 6's claim: the true substitution achieves slightly better
        backward error than the explicit-inverse approach."""
        dev = Device(A100())
        # Moderately conditioned triangles so the inverse loses digits but
        # the paper's |b - Tx|/|b| metric stays meaningful.
        ts, bs = [], []
        for _ in range(24):
            n = int(rng.integers(16, 96))
            t = np.tril(rng.standard_normal((n, n))) / np.sqrt(n)
            signs = np.where(np.diag(t) < 0, -1.0, 1.0)
            np.fill_diagonal(t, signs * (0.5 + np.abs(np.diag(t))))
            ts.append(t)
            bs.append(rng.standard_normal((n, 8)))
        m = max(t.shape[0] for t in ts)

        Bi = IrrBatch.from_host(dev, [b.copy() for b in bs])
        Ti = IrrBatch.from_host(dev, ts)
        irr_trsm(dev, "L", "L", "N", "N", m, 8, 1.0, Ti, (0, 0), Bi, (0, 0))
        err_irr = max_trsm_backward_error(ts, Bi.to_host(), bs, uplo="L")

        Bm = IrrBatch.from_host(dev, [b.copy() for b in bs])
        magma_style_trsm(dev, "L", "L", "N", "N", m, 8, 1.0, Ti, (0, 0),
                         Bm, (0, 0))
        err_magma = max_trsm_backward_error(ts, Bm.to_host(), bs, uplo="L")

        assert err_irr <= err_magma * 1.5  # at least comparable
        assert err_irr < 1e-10


class TestTrsmProperty:
    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.tuples(st.integers(1, 48), st.integers(1, 8)),
                    min_size=1, max_size=5),
           st.integers(0, 2 ** 32 - 1),
           st.sampled_from(["L", "U"]), st.sampled_from(["N", "T"]))
    def test_left_solve_residual(self, sizes, seed, uplo, trans):
        rng = np.random.default_rng(seed)
        dev = Device(A100())
        ts, bs = make_tri_problem(rng, sizes)
        T = IrrBatch.from_host(dev, ts)
        B = IrrBatch.from_host(dev, [b.copy() for b in bs])
        m = max(b.shape[0] for b in bs)
        n = max(b.shape[1] for b in bs)
        irr_trsm(dev, "L", uplo, trans, "N", m, n, 1.0, T, (0, 0), B, (0, 0))
        for t, b, x in zip(ts, bs, B.to_host()):
            tt = np.tril(t) if uplo == "L" else np.triu(t)
            op = tt.T if trans == "T" else tt
            res = np.abs(op @ x - b).max() / max(np.abs(b).max(), 1e-300)
            assert res < 1e-11
