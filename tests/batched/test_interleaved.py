"""Tests for the interleaved-layout uniform small-batch kernels (§II)."""

import numpy as np
import pytest

from repro.batched import INTERLEAVED_MAX_N, InterleaveError, IrrBatch, \
    deinterleave, interleave, interleaved_getrf, irr_getrf, lu_reconstruct
from repro.device import A100, Device


class TestLayout:
    def test_roundtrip(self, rng):
        mats = [rng.standard_normal((5, 7)) for _ in range(9)]
        out = deinterleave(interleave(mats))
        for a, b in zip(mats, out):
            np.testing.assert_array_equal(a, b)

    @pytest.mark.parametrize("shape", [(9, 3), (3, 9), (1, 7), (7, 1)])
    def test_roundtrip_non_square(self, rng, shape):
        mats = [rng.standard_normal(shape) for _ in range(5)]
        packed = interleave(mats)
        assert packed.shape == shape + (5,)
        for a, b in zip(mats, deinterleave(packed)):
            np.testing.assert_array_equal(a, b)

    @pytest.mark.parametrize("shape", [(0, 0), (0, 4), (4, 0)])
    def test_roundtrip_zero_size(self, shape):
        mats = [np.empty(shape) for _ in range(3)]
        packed = interleave(mats)
        assert packed.shape == shape + (3,)
        out = deinterleave(packed)
        assert len(out) == 3
        for b in out:
            assert b.shape == shape

    @pytest.mark.parametrize("dtype", [np.float32, np.float64,
                                       np.complex64, np.complex128])
    def test_dtype_preserved(self, rng, dtype):
        mats = [rng.standard_normal((4, 6)).astype(dtype) for _ in range(4)]
        if np.issubdtype(dtype, np.complexfloating):
            mats = [m + 1j * np.asarray(rng.standard_normal((4, 6)),
                                        dtype=m.real.dtype) for m in mats]
        packed = interleave(mats)
        assert packed.dtype == np.dtype(dtype)
        for a, b in zip(mats, deinterleave(packed)):
            assert b.dtype == np.dtype(dtype)
            np.testing.assert_array_equal(a, b)

    def test_batch_axis_contiguous(self, rng):
        packed = interleave([rng.standard_normal((4, 4))] * 3)
        assert packed.strides[-1] == packed.itemsize

    def test_unequal_shapes_rejected(self, rng):
        with pytest.raises(InterleaveError, match="equal shapes"):
            interleave([rng.standard_normal((3, 3)),
                        rng.standard_normal((4, 4))])

    def test_mixed_dtypes_rejected(self, rng):
        with pytest.raises(InterleaveError, match="dtype"):
            interleave([rng.standard_normal((3, 3)),
                        rng.standard_normal((3, 3)).astype(np.float32)])

    def test_non_2d_rejected(self, rng):
        with pytest.raises(InterleaveError, match="2-D"):
            interleave([rng.standard_normal(4)])

    def test_typed_error_is_value_error(self):
        assert issubclass(InterleaveError, ValueError)

    def test_deinterleave_rejects_wrong_rank(self, rng):
        with pytest.raises(InterleaveError, match="interleaved"):
            deinterleave(rng.standard_normal((4, 4)))

    def test_empty(self):
        assert interleave([]).size == 0


class TestInterleavedGetrf:
    def test_matches_reference(self, a100, rng):
        mats = [rng.standard_normal((12, 12)) for _ in range(40)]
        d = a100.from_host(interleave([m.copy() for m in mats]))
        ipiv = interleaved_getrf(a100, d)
        out = deinterleave(d.data)
        for b, a in enumerate(mats):
            rec = lu_reconstruct(out[b], ipiv[:, b])
            assert np.abs(rec - a).max() < 1e-12 * max(1, np.abs(a).max())

    def test_matches_irr_factors_exactly(self, rng):
        # same pivoting rule => bitwise-identical factors
        mats = [np.random.default_rng(b).standard_normal((8, 8))
                for b in range(10)]
        dev1, dev2 = Device(A100()), Device(A100())
        d = dev1.from_host(interleave([m.copy() for m in mats]))
        ipiv = interleaved_getrf(dev1, d)
        b2 = IrrBatch.from_host(dev2, [m.copy() for m in mats])
        piv2 = irr_getrf(dev2, b2)
        for b in range(10):
            np.testing.assert_array_equal(deinterleave(d.data)[b],
                                          b2.matrix(b))
            np.testing.assert_array_equal(ipiv[:, b], piv2[b])

    def test_rectangular(self, a100, rng):
        mats = [rng.standard_normal((10, 6)) for _ in range(7)]
        d = a100.from_host(interleave([m.copy() for m in mats]))
        ipiv = interleaved_getrf(a100, d)
        for b, a in enumerate(mats):
            rec = lu_reconstruct(deinterleave(d.data)[b], ipiv[:, b])
            assert np.abs(rec - a).max() < 1e-12

    def test_single_launch(self, a100, rng):
        d = a100.from_host(interleave(
            [rng.standard_normal((8, 8)) for _ in range(100)]))
        n0 = a100.profiler.launch_count
        interleaved_getrf(a100, d)
        assert a100.profiler.launch_count == n0 + 1

    def test_size_limit_enforced(self, a100, rng):
        d = a100.from_host(interleave(
            [rng.standard_normal((INTERLEAVED_MAX_N + 1,
                                  INTERLEAVED_MAX_N + 1))]))
        with pytest.raises(ValueError, match="use irr_getrf"):
            interleaved_getrf(a100, d)

    def test_wrong_rank_rejected(self, a100, rng):
        d = a100.from_host(rng.standard_normal((4, 4)))
        with pytest.raises(ValueError, match="interleaved"):
            interleaved_getrf(a100, d)

    def test_zero_pivot_skipped(self, a100):
        # a singular matrix in the batch must not break the others
        good = np.random.default_rng(0).standard_normal((4, 4))
        bad = np.zeros((4, 4))
        d = a100.from_host(interleave([bad, good.copy()]))
        ipiv = interleaved_getrf(a100, d)
        rec = lu_reconstruct(deinterleave(d.data)[1], ipiv[:, 1])
        assert np.abs(rec - good).max() < 1e-13

    def test_empty_batch(self, a100):
        d = a100.from_host(np.empty((4, 4, 0)))
        ipiv = interleaved_getrf(a100, d)
        assert ipiv.shape == (4, 0)
