"""Tests for irrGEMM."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.batched import IrrBatch, irr_gemm
from repro.device import A100, Device


def make_batch(dev, rng, shapes):
    return IrrBatch.from_host(dev, [rng.standard_normal(s) for s in shapes])


class TestBasicCorrectness:
    def test_uniform_square(self, a100, rng):
        shapes = [(8, 8)] * 4
        A = make_batch(a100, rng, shapes)
        B = make_batch(a100, rng, shapes)
        C = make_batch(a100, rng, shapes)
        refs = [a @ b + 0.5 * c
                for a, b, c in zip(A.to_host(), B.to_host(), C.to_host())]
        irr_gemm(a100, "N", "N", 8, 8, 8, 1.0, A, (0, 0), B, (0, 0),
                 0.5, C, (0, 0))
        for got, want in zip(C.to_host(), refs):
            np.testing.assert_allclose(got, want, rtol=1e-13)

    def test_irregular_sizes(self, a100, rng):
        # C_i (m_i x n_i) = A_i (m_i x k_i) B_i (k_i x n_i), all different.
        dims = [(3, 4, 5), (7, 2, 1), (1, 1, 1), (12, 9, 6)]
        A = make_batch(a100, rng, [(m, k) for m, n, k in dims])
        B = make_batch(a100, rng, [(k, n) for m, n, k in dims])
        C = IrrBatch.zeros(a100, [m for m, n, k in dims],
                           [n for m, n, k in dims])
        refs = [a @ b for a, b in zip(A.to_host(), B.to_host())]
        irr_gemm(a100, "N", "N", 12, 9, 6, 1.0, A, (0, 0), B, (0, 0),
                 0.0, C, (0, 0))
        for got, want in zip(C.to_host(), refs):
            np.testing.assert_allclose(got, want, rtol=1e-13, atol=1e-13)

    @pytest.mark.parametrize("transa,transb", [("N", "N"), ("T", "N"),
                                               ("N", "T"), ("T", "T")])
    def test_transposes(self, a100, rng, transa, transb):
        m, n, k = 5, 6, 7
        a_shape = (m, k) if transa == "N" else (k, m)
        b_shape = (k, n) if transb == "N" else (n, k)
        A = make_batch(a100, rng, [a_shape] * 3)
        B = make_batch(a100, rng, [b_shape] * 3)
        C = IrrBatch.zeros(a100, [m] * 3, [n] * 3)
        refs = []
        for a, b in zip(A.to_host(), B.to_host()):
            opa = a if transa == "N" else a.T
            opb = b if transb == "N" else b.T
            refs.append(opa @ opb)
        irr_gemm(a100, transa, transb, m, n, k, 1.0, A, (0, 0), B, (0, 0),
                 0.0, C, (0, 0))
        for got, want in zip(C.to_host(), refs):
            np.testing.assert_allclose(got, want, rtol=1e-13)

    def test_offsets_select_submatrices(self, a100, rng):
        # C[1:3, 1:4] += A[0:2, 2:5] @ B[2:5, 0:3] on a single 6x6 matrix.
        A = make_batch(a100, rng, [(6, 6)])
        B = make_batch(a100, rng, [(6, 6)])
        C = make_batch(a100, rng, [(6, 6)])
        a, b, c = A.to_host()[0], B.to_host()[0], C.to_host()[0]
        want = c.copy()
        want[1:3, 1:4] = a[0:2, 2:5] @ b[2:5, 0:3] + want[1:3, 1:4]
        irr_gemm(a100, "N", "N", 2, 3, 3, 1.0, A, (0, 2), B, (2, 0),
                 1.0, C, (1, 1))
        np.testing.assert_allclose(C.to_host()[0], want, rtol=1e-13)


class TestDcwiBehaviour:
    def test_exhausted_matrices_untouched(self, a100, rng):
        # Second matrix has offset beyond its extent: must not change.
        A = make_batch(a100, rng, [(8, 8), (2, 2)])
        B = make_batch(a100, rng, [(8, 8), (2, 2)])
        C = make_batch(a100, rng, [(8, 8), (2, 2)])
        before = C.to_host()[1]
        irr_gemm(a100, "N", "N", 4, 4, 4, 1.0, A, (4, 4), B, (4, 4),
                 1.0, C, (4, 4))
        np.testing.assert_array_equal(C.to_host()[1], before)

    def test_partial_matrix_clipped(self, a100, rng):
        # 6x6 matrix in a required 4x4x4 product at offset (3,3): only a
        # 3x3 block with k=3 participates.
        A = make_batch(a100, rng, [(6, 6)])
        B = make_batch(a100, rng, [(6, 6)])
        C = make_batch(a100, rng, [(6, 6)])
        a, b, c = A.to_host()[0], B.to_host()[0], C.to_host()[0]
        want = c.copy()
        want[3:, 3:] += a[3:, 3:] @ b[3:, 3:]
        irr_gemm(a100, "N", "N", 4, 4, 4, 1.0, A, (3, 3), B, (3, 3),
                 1.0, C, (3, 3))
        np.testing.assert_allclose(C.to_host()[0], want, rtol=1e-13)

    def test_k_exhausted_still_scales_beta(self, a100, rng):
        # A has no columns left at the offset: C *= beta must still apply.
        A = make_batch(a100, rng, [(4, 2)])
        B = make_batch(a100, rng, [(4, 4)])
        C = make_batch(a100, rng, [(4, 4)])
        before = C.to_host()[0]
        irr_gemm(a100, "N", "N", 4, 4, 4, 1.0, A, (0, 2), B, (0, 0),
                 0.5, C, (0, 0))
        np.testing.assert_allclose(C.to_host()[0], 0.5 * before, rtol=1e-13)

    def test_zero_required_dims_noop(self, a100, rng):
        C = make_batch(a100, rng, [(4, 4)])
        before = C.to_host()[0]
        irr_gemm(a100, "N", "N", 0, 0, 0, 1.0, C, (0, 0), C, (0, 0),
                 1.0, C, (0, 0))
        np.testing.assert_array_equal(C.to_host()[0], before)


class TestValidation:
    def test_batch_size_mismatch(self, a100, rng):
        A = make_batch(a100, rng, [(4, 4)])
        B = make_batch(a100, rng, [(4, 4), (4, 4)])
        with pytest.raises(ValueError, match="equal batch size"):
            irr_gemm(a100, "N", "N", 4, 4, 4, 1.0, A, (0, 0), B, (0, 0),
                     0.0, A, (0, 0))

    def test_invalid_trans(self, a100, rng):
        A = make_batch(a100, rng, [(4, 4)])
        with pytest.raises(ValueError, match="trans"):
            irr_gemm(a100, "Q", "N", 4, 4, 4, 1.0, A, (0, 0), A, (0, 0),
                     0.0, A, (0, 0))

    def test_negative_required_dims(self, a100, rng):
        A = make_batch(a100, rng, [(4, 4)])
        with pytest.raises(ValueError, match="nonnegative"):
            irr_gemm(a100, "N", "N", -1, 4, 4, 1.0, A, (0, 0), A, (0, 0),
                     0.0, A, (0, 0))


class TestCostAccounting:
    def test_single_launch_for_whole_batch(self, a100, rng):
        A = make_batch(a100, rng, [(8, 8)] * 50)
        n0 = a100.profiler.launch_count
        irr_gemm(a100, "N", "N", 8, 8, 8, 1.0, A, (0, 0), A, (0, 0),
                 0.0, A, (0, 0))
        assert a100.profiler.launch_count == n0 + 1

    def test_flops_accounted(self, a100, rng):
        A = make_batch(a100, rng, [(8, 8)] * 3)
        cost = irr_gemm(a100, "N", "N", 8, 8, 8, 1.0, A, (0, 0), A, (0, 0),
                        0.0, A, (0, 0))
        assert cost.flops == pytest.approx(3 * 2 * 8 ** 3)

    def test_none_workloads_cost_nothing(self, a100, rng):
        A = make_batch(a100, rng, [(2, 2)] * 3)
        cost = irr_gemm(a100, "N", "N", 4, 4, 4, 1.0, A, (2, 2), A, (2, 2),
                        1.0, A, (2, 2))
        assert cost.flops == 0
        assert cost.bytes_total == 0


class TestGemmProperty:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.tuples(st.integers(1, 10), st.integers(1, 10),
                              st.integers(1, 10)), min_size=1, max_size=6),
           st.integers(0, 2 ** 32 - 1))
    def test_matches_numpy_for_random_irregular_batches(self, dims, seed):
        rng = np.random.default_rng(seed)
        dev = Device(A100())
        A = IrrBatch.from_host(dev, [rng.standard_normal((m, k))
                                     for m, n, k in dims])
        B = IrrBatch.from_host(dev, [rng.standard_normal((k, n))
                                     for m, n, k in dims])
        C = IrrBatch.zeros(dev, [m for m, n, k in dims],
                           [n for m, n, k in dims])
        m_req = max(m for m, n, k in dims)
        n_req = max(n for m, n, k in dims)
        k_req = max(k for m, n, k in dims)
        irr_gemm(dev, "N", "N", m_req, n_req, k_req, 1.0, A, (0, 0),
                 B, (0, 0), 0.0, C, (0, 0))
        for a, b, got in zip(A.to_host(), B.to_host(), C.to_host()):
            np.testing.assert_allclose(got, a @ b, rtol=1e-12, atol=1e-12)


class TestBetaAccounting:
    """Accounting of the beta-handling paths (both engines must agree;
    parity is enforced in test_engine.py — these pin the reference)."""

    def test_k_exhausted_beta_scaling_counts_flops(self, a100, rng):
        # A exhausted at the offset: the remaining work is C *= beta,
        # one flop per element, one read + one write.
        A = make_batch(a100, rng, [(4, 2)])
        B = make_batch(a100, rng, [(4, 4)])
        C = make_batch(a100, rng, [(4, 4)])
        cost = irr_gemm(a100, "N", "N", 4, 4, 4, 1.0, A, (0, 2),
                        B, (0, 0), 0.5, C, (0, 0))
        assert cost.flops == pytest.approx(4 * 4)
        assert cost.bytes_read == pytest.approx(4 * 4 * C.itemsize)
        assert cost.bytes_written == pytest.approx(4 * 4 * C.itemsize)

    def test_k_exhausted_beta_zero_skips_read(self, a100, rng):
        # beta == 0 writes zeros without reading C (BLAS semantics).
        A = make_batch(a100, rng, [(4, 2)])
        B = make_batch(a100, rng, [(4, 4)])
        C = make_batch(a100, rng, [(4, 4)])
        cost = irr_gemm(a100, "N", "N", 4, 4, 4, 1.0, A, (0, 2),
                        B, (0, 0), 0.0, C, (0, 0))
        assert cost.flops == 0
        assert cost.bytes_read == 0
        assert cost.bytes_written == pytest.approx(4 * 4 * C.itemsize)
        np.testing.assert_array_equal(C.to_host()[0], np.zeros((4, 4)))

    def test_k_exhausted_beta_one_is_free(self, a100, rng):
        A = make_batch(a100, rng, [(4, 2)])
        B = make_batch(a100, rng, [(4, 4)])
        C = make_batch(a100, rng, [(4, 4)])
        before = C.to_host()[0]
        cost = irr_gemm(a100, "N", "N", 4, 4, 4, 1.0, A, (0, 2),
                        B, (0, 0), 1.0, C, (0, 0))
        assert cost.flops == 0
        assert cost.bytes_total == 0
        np.testing.assert_array_equal(C.to_host()[0], before)

    def test_beta_zero_skips_c_read_in_main_path(self, a100, rng):
        A = make_batch(a100, rng, [(8, 8)])
        C = make_batch(a100, rng, [(8, 8)])
        c0 = irr_gemm(a100, "N", "N", 8, 8, 8, 1.0, A, (0, 0), A, (0, 0),
                      0.0, C, (0, 0))
        c1 = irr_gemm(a100, "N", "N", 8, 8, 8, 1.0, A, (0, 0), A, (0, 0),
                      1.0, C, (0, 0))
        # beta != 0 reads C in addition to A and B; beta == 0 must not.
        assert c1.bytes_read - c0.bytes_read == \
            pytest.approx(8 * 8 * C.itemsize)
