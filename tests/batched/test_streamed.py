"""Tests for the cuSOLVER-in-streams baseline."""

import numpy as np
import pytest

from repro.batched import IrrBatch, irr_getrf, lu_reconstruct, streamed_getrf
from repro.device import A100, Device


class TestStreamedGetrf:
    def test_factors_correct(self, a100, rng):
        mats = [rng.standard_normal((int(n), int(n)))
                for n in rng.integers(1, 80, 12)]
        b = IrrBatch.from_host(a100, [m.copy() for m in mats])
        piv = streamed_getrf(a100, b, n_streams=4)
        for i, orig in enumerate(mats):
            rec = lu_reconstruct(b.matrix(i), piv[i])
            np.testing.assert_allclose(rec, orig, rtol=1e-10, atol=1e-10)

    def test_zero_sized_matrix_skipped(self, a100):
        b = IrrBatch.zeros(a100, [0, 4], [4, 4])
        piv = streamed_getrf(a100, b)
        assert piv[0].size == 0
        assert piv[1].size == 4

    def test_needs_at_least_one_stream(self, a100, rng):
        b = IrrBatch.from_host(a100, [rng.standard_normal((4, 4))])
        with pytest.raises(ValueError, match="at least one stream"):
            streamed_getrf(a100, b, n_streams=0)

    def test_round_robin_uses_n_streams(self, a100, rng):
        mats = [rng.standard_normal((16, 16)) for _ in range(8)]
        b = IrrBatch.from_host(a100, mats)
        streamed_getrf(a100, b, n_streams=4)
        a100.synchronize()
        used = {r.stream for r in a100.profiler.records}
        assert used == {1, 2, 3, 4}

    def test_launch_count_scales_with_batch(self, rng):
        counts = []
        for bs in (4, 16):
            dev = Device(A100())
            mats = [np.eye(32) for _ in range(bs)]
            b = IrrBatch.from_host(dev, mats)
            streamed_getrf(dev, b)
            counts.append(dev.profiler.launch_count)
        assert counts[1] == 4 * counts[0]


class TestPaperEffect:
    def test_streamed_much_slower_than_irrlu_for_small_sizes(self, rng):
        """The Fig 10 effect: for many small irregular matrices, the
        streamed per-matrix solver loses big to the batched one."""
        sizes = rng.integers(1, 65, 200)
        mats = [rng.standard_normal((int(n), int(n))) for n in sizes]

        dev_irr = Device(A100())
        b = IrrBatch.from_host(dev_irr, [m.copy() for m in mats])
        with dev_irr.timed_region() as t_irr:
            irr_getrf(dev_irr, b)

        dev_str = Device(A100())
        b2 = IrrBatch.from_host(dev_str, [m.copy() for m in mats])
        with dev_str.timed_region() as t_str:
            streamed_getrf(dev_str, b2, n_streams=16)

        assert t_str["elapsed"] > 3 * t_irr["elapsed"]
