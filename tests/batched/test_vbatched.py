"""Tests for the paper-facsimile flat vbatched API (Figs 2-3)."""

import numpy as np
import pytest

from repro.batched import gemm_vbatched, getrf_vbatched, lu_reconstruct, \
    trsm_vbatched
from repro.device import A100, Device


def upload(dev, mats):
    return [dev.from_host(m) for m in mats]


class TestGemmVbatched:
    def test_basic_product(self, a100, rng):
        dims = [(3, 4, 5), (8, 2, 6), (1, 1, 1)]
        As = [rng.standard_normal((m, k)) for m, n, k in dims]
        Bs = [rng.standard_normal((k, n)) for m, n, k in dims]
        Cs = [np.zeros((m, n)) for m, n, k in dims]
        dA, dB, dC = upload(a100, As), upload(a100, Bs), upload(a100, Cs)
        gemm_vbatched(a100, "N", "N",
                      max(d[0] for d in dims), max(d[1] for d in dims),
                      max(d[2] for d in dims), 1.0,
                      dA, 0, 0, [a.shape[0] for a in As],
                      dB, 0, 0, [b.shape[0] for b in Bs], 0.0,
                      dC, 0, 0, [c.shape[0] for c in Cs],
                      [d[0] for d in dims], [d[1] for d in dims],
                      [d[2] for d in dims], 3)
        for a, b, c in zip(As, Bs, dC):
            np.testing.assert_allclose(c.data, a @ b, rtol=1e-13)

    def test_offsets_and_transpose(self, a100, rng):
        # C[1:3, 1:3] += A[0:2, 0:2]^T B[0:2, 0:2] inside 6x6 buffers
        a = rng.standard_normal((6, 6))
        b = rng.standard_normal((6, 6))
        c = rng.standard_normal((6, 6))
        dA, dB, dC = upload(a100, [a]), upload(a100, [b]), upload(a100,
                                                                  [c.copy()])
        gemm_vbatched(a100, "T", "N", 2, 2, 2, 1.0,
                      dA, 0, 0, 6, dB, 0, 0, 6, 1.0, dC, 1, 1, 6,
                      [2], [2], [2], 1)
        want = c.copy()
        want[1:3, 1:3] += a[:2, :2].T @ b[:2, :2]
        np.testing.assert_allclose(dC[0].data, want, rtol=1e-13)

    def test_ldda_mismatch_rejected(self, a100, rng):
        d = upload(a100, [rng.standard_normal((4, 4))])
        with pytest.raises(ValueError, match="leading dimension"):
            gemm_vbatched(a100, "N", "N", 4, 4, 4, 1.0,
                          d, 0, 0, 7, d, 0, 0, 4, 0.0, d, 0, 0, 4,
                          [4], [4], [4], 1)

    def test_batch_count_mismatch(self, a100, rng):
        d = upload(a100, [rng.standard_normal((4, 4))])
        with pytest.raises(ValueError, match="batch_count"):
            gemm_vbatched(a100, "N", "N", 4, 4, 4, 1.0,
                          d, 0, 0, 4, d, 0, 0, 4, 0.0, d, 0, 0, 4,
                          [4], [4], [4], 2)

    def test_dim_vector_length_mismatch(self, a100, rng):
        d = upload(a100, [rng.standard_normal((4, 4))])
        with pytest.raises(ValueError, match="dimension vectors"):
            gemm_vbatched(a100, "N", "N", 4, 4, 4, 1.0,
                          d, 0, 0, 4, d, 0, 0, 4, 0.0, d, 0, 0, 4,
                          [4, 4], [4], [4], 1)


class TestTrsmVbatched:
    def test_left_lower_solve(self, a100, rng):
        ts, bs = [], []
        for n, r in [(8, 2), (20, 3)]:
            ts.append(np.tril(rng.standard_normal((n, n))) + n * np.eye(n))
            bs.append(rng.standard_normal((n, r)))
        dT, dB = upload(a100, ts), upload(a100, [b.copy() for b in bs])
        trsm_vbatched(a100, "L", "L", "N", "N", 20, 3, 1.0,
                      dT, 0, 0, [8, 20], dB, 0, 0, [8, 20],
                      [8, 20], [2, 3], 2)
        for t, b, x in zip(ts, bs, dB):
            np.testing.assert_allclose(np.tril(t) @ x.data, b, rtol=1e-11)


class TestGetrfVbatched:
    def test_factors_irregular_batch(self, a100, rng):
        mats = [rng.standard_normal((int(n), int(n)))
                for n in rng.integers(1, 60, 8)]
        dA = upload(a100, [m.copy() for m in mats])
        piv = getrf_vbatched(a100, dA, [m.shape[0] for m in mats],
                             [m.shape[0] for m in mats],
                             [m.shape[1] for m in mats], 8)
        for i, a in enumerate(mats):
            rec = lu_reconstruct(dA[i].data, piv[i])
            assert np.abs(rec - a).max() < 1e-11 * max(1, np.abs(a).max())
