"""Tests for irrLASWP: looped vs rehearsed row interchanges."""

import numpy as np
import pytest

from repro.batched import IrrBatch, PanelPivots, fused_getf2, irr_laswp, \
    looped_laswp, rehearsed_laswp
from repro.device import A100, Device


def apply_reference_swaps(a, ipiv, j, ib, cols):
    out = a.copy()
    k = len(ipiv)
    for r in range(j, min(j + ib, k)):
        p = int(ipiv[r])
        if p != r:
            out[[r, p], cols] = out[[p, r], cols]
    return out


def make_pivoted_batch(dev, rng, shapes, j, ib):
    """A batch with a factored panel at (j, j) so pivots are realistic."""
    mats = [rng.standard_normal(s) for s in shapes]
    b = IrrBatch.from_host(dev, mats)
    piv = PanelPivots(b)
    fused_getf2(dev, b, piv, j, ib)
    return b, piv


class TestEquivalence:
    @pytest.mark.parametrize("part", ["left", "right"])
    def test_looped_equals_rehearsed(self, rng, part):
        shapes = [(20, 20), (9, 9), (33, 40), (40, 12)]
        j, ib = 4, 4
        dev_a, dev_b = Device(A100()), Device(A100())
        rng2 = np.random.default_rng(7)
        ba, piv_a = make_pivoted_batch(dev_a, rng2, shapes, j, ib)
        rng2 = np.random.default_rng(7)
        bb, piv_b = make_pivoted_batch(dev_b, rng2, shapes, j, ib)
        looped_laswp(dev_a, ba, piv_a, j, ib, part)
        rehearsed_laswp(dev_b, bb, piv_b, j, ib, part)
        for i in range(len(shapes)):
            np.testing.assert_array_equal(ba.arrays[i].data,
                                          bb.arrays[i].data)

    @pytest.mark.parametrize("variant", ["looped", "rehearsed"])
    def test_matches_reference_swaps(self, a100, rng, variant):
        shapes = [(24, 24), (10, 30)]
        j, ib = 8, 8
        b, piv = make_pivoted_batch(a100, rng, shapes, j, ib)
        snapshots = [a.data.copy() for a in b.arrays]
        irr_laswp(a100, b, piv, j, ib, "right", variant=variant)
        for i, (snap, arr) in enumerate(zip(snapshots, b.arrays)):
            n = b.n_vec[i]
            cols = slice(min(j + ib, n), n)
            want = apply_reference_swaps(snap, piv.ipiv[i], j, ib, cols)
            np.testing.assert_array_equal(arr.data, want)

    def test_left_part_only_touches_left_columns(self, a100, rng):
        b, piv = make_pivoted_batch(a100, rng, [(16, 16)], 4, 4)
        snap = b.arrays[0].data.copy()
        irr_laswp(a100, b, piv, 4, 4, "left", variant="rehearsed")
        # columns >= j untouched by the left swap
        np.testing.assert_array_equal(b.arrays[0].data[:, 4:], snap[:, 4:])


class TestDcwiWidths:
    def test_narrow_matrix_right_part_empty(self, a100, rng):
        # A matrix whose columns end inside the panel has w_r = 0.
        shapes = [(30, 30), (30, 8)]
        j, ib = 4, 8
        b, piv = make_pivoted_batch(a100, rng, shapes, j, ib)
        before = b.arrays[1].data.copy()
        irr_laswp(a100, b, piv, j, ib, "right", variant="rehearsed")
        np.testing.assert_array_equal(b.arrays[1].data, before)

    def test_finished_matrix_skipped(self, a100, rng):
        shapes = [(30, 30), (3, 3)]
        j, ib = 8, 8
        b, piv = make_pivoted_batch(a100, rng, shapes, j, ib)
        before = b.arrays[1].data.copy()
        for part in ("left", "right"):
            irr_laswp(a100, b, piv, j, ib, part, variant="looped")
            irr_laswp(a100, b, piv, j, ib, part, variant="rehearsed")
        np.testing.assert_array_equal(b.arrays[1].data, before)

    def test_invalid_variant(self, a100, rng):
        b, piv = make_pivoted_batch(a100, rng, [(8, 8)], 0, 4)
        with pytest.raises(ValueError, match="variant"):
            irr_laswp(a100, b, piv, 0, 4, "right", variant="bogus")

    def test_invalid_part(self, a100, rng):
        b, piv = make_pivoted_batch(a100, rng, [(8, 8)], 0, 4)
        with pytest.raises(ValueError, match="part"):
            looped_laswp(a100, b, piv, 0, 4, "middle")


class TestCostModel:
    def test_looped_launches_per_pivot_row(self, a100, rng):
        b, piv = make_pivoted_batch(a100, rng, [(64, 64)], 0, 16)
        n0 = a100.profiler.launch_count
        looped_laswp(a100, b, piv, 0, 16, "right")
        assert a100.profiler.launch_count - n0 == 16

    def test_rehearsed_always_three_launches(self, a100, rng):
        b, piv = make_pivoted_batch(a100, rng, [(64, 64)], 0, 16)
        n0 = a100.profiler.launch_count
        rehearsed_laswp(a100, b, piv, 0, 16, "right")
        assert a100.profiler.launch_count - n0 == 3

    def test_looped_free_when_pivots_on_diagonal(self, rng):
        # The §IV-F corner case: diagonally dominant matrices pivot on the
        # diagonal, so the looped variant moves zero bytes...
        dev = Device(A100())
        a = rng.standard_normal((32, 32)) + 1e3 * np.eye(32)
        b = IrrBatch.from_host(dev, [a])
        piv = PanelPivots(b)
        fused_getf2(dev, b, piv, 0, 8)
        assert np.all(piv.ipiv[0][:8] == np.arange(8))
        dev.synchronize()  # flush earlier records
        n0 = len(dev.profiler.records)
        looped_laswp(dev, b, piv, 0, 8, "right")
        dev.synchronize()
        cost_loop = sum(r.cost.bytes_total
                        for r in dev.profiler.records[n0:])
        assert cost_loop == 0.0

    def test_rehearsed_cost_pattern_independent(self, rng):
        # ... while the rehearsed variant pays the same traffic whether or
        # not any row actually moved.
        dev = Device(A100())
        a = rng.standard_normal((32, 32)) + 1e3 * np.eye(32)
        b = IrrBatch.from_host(dev, [a])
        piv = PanelPivots(b)
        fused_getf2(dev, b, piv, 0, 8)
        dev.synchronize()
        n0 = len(dev.profiler.records)
        rehearsed_laswp(dev, b, piv, 0, 8, "right")
        dev.synchronize()
        gather_bytes = sum(r.cost.bytes_total
                           for r in dev.profiler.records[n0:]
                           if r.name.endswith("gather"))
        assert gather_bytes > 0
