"""Tests for the shape-bucketed execution engine + DCWI plan cache.

The engine contract is *exact equivalence*: for every kernel it executes
(GEMM, TRSM, panel, LASWP, pivot application) the results must be
bitwise identical to the per-matrix reference loops and the simulated
:class:`KernelCost` records must match field-for-field.  These tests
sweep that contract over mixed batches (0x0, 1x1, tall, wide, inner
products), the full driver compositions (``irr_getrf``/``irr_getrs``)
and the multifrontal level loop, then pin the engine's internal routing
rules (interleaved buckets, plan-cache reuse).
"""

import numpy as np
import pytest

from repro.batched import BatchEngine, INTERLEAVED_MAX_N, IrrBatch, \
    PlanCache, irr_gemm, irr_getrf, irr_getrs, irr_trsm, resolve_engine
from repro.batched.engine import INTERLEAVED_MIN_BS
from repro.device import A100, Device


def records(dev):
    return [(r.name, r.cost.flops, r.cost.bytes_read, r.cost.bytes_written,
             r.cost.blocks, r.cost.threads_per_block,
             r.cost.shared_mem_per_block, r.cost.kernel_class,
             r.cost.compute_ramp, r.cost.peak_scale)
            for r in dev.profiler.records]


MIXED_SHAPES = [(0, 0), (1, 1), (1, 7), (7, 1), (17, 17), (17, 17),
                (17, 17), (40, 23), (23, 40), (64, 64), (3, 3), (3, 3),
                (33, 33), (33, 33), (128, 96), (5, 5)]


def mixed_batch(dev, rng, shapes=MIXED_SHAPES):
    return IrrBatch.from_host(dev, [rng.standard_normal(s) for s in shapes])


class TestResolveEngine:
    def test_naive_and_none(self):
        assert resolve_engine(None) is None
        assert resolve_engine("naive") is None

    def test_bucketed_string(self):
        assert isinstance(resolve_engine("bucketed"), BatchEngine)

    def test_shared_instance_passes_through(self):
        eng = BatchEngine()
        assert resolve_engine(eng) is eng

    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError):
            resolve_engine("turbo")


class TestGemmParity:
    @pytest.mark.parametrize("transa,transb", [("N", "N"), ("T", "N"),
                                               ("N", "T"), ("T", "C")])
    @pytest.mark.parametrize("alpha,beta", [(1.0, 1.0), (-1.0, 1.0),
                                            (0.5, 0.0), (2.0, 0.25)])
    def test_mixed_batch(self, rng, transa, transb, alpha, beta):
        # Square-ish locals so every trans combination stays meaningful.
        shapes = [(0, 0), (1, 1), (1, 9), (9, 1), (6, 6), (6, 6), (24, 24),
                  (24, 24), (24, 24), (13, 17), (17, 13), (40, 40)]
        out = []
        for engine in ("naive", "bucketed"):
            dev = Device(A100())
            r = np.random.default_rng(7)
            A = IrrBatch.from_host(dev, [r.standard_normal(s)
                                         for s in shapes])
            B = IrrBatch.from_host(dev, [r.standard_normal(s)
                                         for s in shapes])
            C = IrrBatch.from_host(dev, [r.standard_normal(s)
                                         for s in shapes])
            irr_gemm(dev, transa, transb, 20, 20, 20, alpha, A, (2, 2),
                     B, (2, 2), beta, C, (2, 2), engine=engine)
            dev.synchronize()
            out.append((C.to_host(), records(dev)))
        (cn, rn), (cb, rb) = out
        for a, b in zip(cn, cb):
            np.testing.assert_array_equal(a, b)
        assert rn == rb

    def test_inner_product_rows_stay_bitwise(self, rng):
        # (1, 1, k) workloads must match the reference summation order
        # exactly — the engine routes them per-matrix for that reason.
        shapes = [(1, 30)] * 6 + [(30, 30)] * 2
        out = []
        for engine in ("naive", "bucketed"):
            dev = Device(A100())
            r = np.random.default_rng(3)
            A = IrrBatch.from_host(dev, [r.standard_normal(s)
                                         for s in shapes])
            B = IrrBatch.from_host(dev, [r.standard_normal((30, 30))
                                         for _ in shapes])
            C = IrrBatch.from_host(dev, [r.standard_normal((1, 1))
                                         for _ in shapes])
            irr_gemm(dev, "N", "N", 1, 1, 30, 1.0, A, (0, 0), B, (0, 0),
                     1.0, C, (0, 0), engine=engine)
            out.append(C.to_host())
        for a, b in zip(*out):
            np.testing.assert_array_equal(a, b)

    def test_k_exhausted_beta_paths(self, rng):
        shapes = [(4, 2)] * 5 + [(4, 4)] * 3
        for beta in (0.0, 0.5, 1.0):
            out = []
            for engine in ("naive", "bucketed"):
                dev = Device(A100())
                r = np.random.default_rng(11)
                A = IrrBatch.from_host(dev, [r.standard_normal(s)
                                             for s in shapes])
                B = IrrBatch.from_host(dev, [r.standard_normal((4, 4))
                                             for _ in shapes])
                C = IrrBatch.from_host(dev, [r.standard_normal((4, 4))
                                             for _ in shapes])
                irr_gemm(dev, "N", "N", 4, 4, 4, 1.0, A, (0, 2), B, (0, 2),
                         beta, C, (0, 0), engine=engine)
                dev.synchronize()
                out.append((C.to_host(), records(dev)))
            (cn, rn), (cb, rb) = out
            for a, b in zip(cn, cb):
                np.testing.assert_array_equal(a, b)
            assert rn == rb


class TestTrsmParity:
    @pytest.mark.parametrize("side,uplo", [("L", "L"), ("L", "U"),
                                           ("R", "L"), ("R", "U")])
    @pytest.mark.parametrize("trans,diag", [("N", "N"), ("N", "U"),
                                            ("T", "N")])
    def test_mixed_batch(self, rng, side, uplo, trans, diag):
        tshapes = [(0, 0), (1, 1), (12, 12), (12, 12), (20, 20), (7, 7),
                   (7, 7), (30, 30)]
        out = []
        for engine in ("naive", "bucketed"):
            dev = Device(A100())
            r = np.random.default_rng(5)
            tri = [r.standard_normal(s) + np.eye(s[0]) * s[0]
                   for s in tshapes]
            T = IrrBatch.from_host(dev, [t.copy() for t in tri])
            B = IrrBatch.from_host(dev, [r.standard_normal((s[0], s[0]))
                                         for s in tshapes])
            irr_trsm(dev, side, uplo, trans, diag, 16, 16, 1.0,
                     T, (0, 0), B, (0, 0), engine=engine)
            dev.synchronize()
            out.append((B.to_host(), records(dev)))
        (bn, rn), (bb, rb) = out
        for a, b in zip(bn, bb):
            np.testing.assert_array_equal(a, b)
        assert rn == rb


class TestGetrfParity:
    def assert_parity(self, shapes, seed=0, **kw):
        out = []
        for engine in ("naive", "bucketed"):
            dev = Device(A100())
            r = np.random.default_rng(seed)
            mats = [r.standard_normal(s) for s in shapes]
            batch = IrrBatch.from_host(dev, mats)
            piv = irr_getrf(dev, batch, engine=engine, **kw)
            dev.synchronize()
            out.append((batch.to_host(), piv, records(dev)))
        (fn, pn, rn), (fb, pb, rb) = out
        for a, b in zip(fn, fb):
            np.testing.assert_array_equal(a, b)
        for a, b in zip(pn.ipiv, pb.ipiv):
            np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(pn.info, pb.info)
        assert rn == rb

    def test_mixed_batch(self, rng):
        self.assert_parity(MIXED_SHAPES)

    def test_uniform_small_batch_interleaved_path(self, rng):
        self.assert_parity([(12, 12)] * 40)

    def test_rectangular(self, rng):
        self.assert_parity([(30, 12), (12, 30), (45, 45), (45, 45),
                            (8, 64), (64, 8), (1, 1), (0, 0)])

    def test_large_mixed(self, rng):
        r = np.random.default_rng(42)
        shapes = [(int(s), int(s)) for s in r.integers(1, 90, size=120)]
        self.assert_parity(shapes, seed=1)

    def test_zero_pivots_and_info(self, rng):
        out = []
        for engine in ("naive", "bucketed"):
            dev = Device(A100())
            r = np.random.default_rng(9)
            mats = []
            for s in (10, 10, 24, 24, 24, 40):
                a = r.standard_normal((s, s))
                a[:, 0] = 0.0  # zero first column -> info > 0
                mats.append(a)
            batch = IrrBatch.from_host(dev, mats)
            piv = irr_getrf(dev, batch, engine=engine)
            dev.synchronize()
            out.append((batch.to_host(), piv))
        (fn, pn), (fb, pb) = out
        assert np.all(pn.info > 0)
        for a, b in zip(fn, fb):
            np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(pn.info, pb.info)
        for a, b in zip(pn.ipiv, pb.ipiv):
            np.testing.assert_array_equal(a, b)


class TestGetrsParity:
    def test_mixed_batch(self, rng):
        sizes = [1, 1, 9, 9, 24, 24, 24, 40, 17, 64]
        out = []
        for engine in ("naive", "bucketed"):
            dev = Device(A100())
            r = np.random.default_rng(13)
            mats = [r.standard_normal((s, s)) for s in sizes]
            rhs = [r.standard_normal((s, int(r.integers(1, 5))))
                   for s in sizes]
            fb = IrrBatch.from_host(dev, mats)
            piv = irr_getrf(dev, fb, engine=engine)
            rb_ = IrrBatch.from_host(dev, rhs)
            irr_getrs(dev, fb, piv, rb_, engine=engine)
            dev.synchronize()
            out.append((rb_.to_host(), records(dev)))
        (sn, rn), (sb, rb) = out
        for a, b in zip(sn, sb):
            np.testing.assert_array_equal(a, b)
        assert rn == rb


class TestMultifrontalParity:
    def test_grid2d(self):
        from repro.sparse import multifrontal_factor_gpu, \
            nested_dissection, symbolic_analysis
        from ..sparse.util import grid2d

        a = grid2d(12, 12)
        nd = nested_dissection(a, leaf_size=8)
        ap = a[nd.perm][:, nd.perm].tocsr()
        symb = symbolic_analysis(ap, nd)
        out = []
        for engine in ("naive", "bucketed"):
            dev = Device(A100())
            res = multifrontal_factor_gpu(dev, ap, symb, engine=engine)
            dev.synchronize()
            out.append((res, records(dev)))
        (resn, rn), (resb, rb) = out
        assert rn == rb
        for fa, fb in zip(resn.factors.fronts, resb.factors.fronts):
            np.testing.assert_array_equal(fa.f11, fb.f11)
            np.testing.assert_array_equal(fa.f12, fb.f12)
            np.testing.assert_array_equal(fa.f21, fb.f21)
            np.testing.assert_array_equal(fa.ipiv, fb.ipiv)


class TestEngineInternals:
    def test_plan_cache_reused_across_calls(self, rng):
        # Plans are keyed on (kind, dims, offsets, flags, dims_key): a
        # second factorization of an identically-shaped batch replays the
        # whole schedule from the cache — the multifrontal / repeated-
        # solve lifecycle the shared engine exists for.
        eng = BatchEngine()
        dev = Device(A100())
        mats = [rng.standard_normal((s, s)) for s in (70, 70, 70, 40, 40)]
        batch = IrrBatch.from_host(dev, mats)
        irr_getrf(dev, batch, engine=eng)
        dev.synchronize()
        misses_first = eng.cache.misses
        assert misses_first > 0
        irr_getrf(dev, batch, engine=eng)
        dev.synchronize()
        assert eng.cache.misses == misses_first  # no new plans
        assert eng.cache.hits >= misses_first

    def test_uniform_small_bucket_routes_interleaved(self, rng):
        eng = BatchEngine()
        dev = Device(A100())
        n = INTERLEAVED_MAX_N
        batch = IrrBatch.from_host(
            dev, [rng.standard_normal((n, n))
                  for _ in range(INTERLEAVED_MIN_BS + 2)])
        plan = eng._panel_plan(batch, 0, n)
        assert len(plan.inter_buckets) == 1
        assert len(plan.pad_groups) == 0
        assert len(plan.scalar_idx) == 0

    def test_oversize_bucket_not_interleaved(self, rng):
        eng = BatchEngine()
        dev = Device(A100())
        n = INTERLEAVED_MAX_N + 1
        batch = IrrBatch.from_host(
            dev, [rng.standard_normal((n, n))
                  for _ in range(INTERLEAVED_MIN_BS + 2)])
        plan = eng._panel_plan(batch, 0, min(n, 32))
        assert len(plan.inter_buckets) == 0

    def test_small_bucket_count_not_interleaved(self, rng):
        eng = BatchEngine()
        dev = Device(A100())
        n = INTERLEAVED_MAX_N
        batch = IrrBatch.from_host(
            dev, [rng.standard_normal((n, n))
                  for _ in range(INTERLEAVED_MIN_BS - 1)])
        plan = eng._panel_plan(batch, 0, n)
        assert len(plan.inter_buckets) == 0

    def test_shared_cache_across_engines(self):
        cache = PlanCache()
        e1 = BatchEngine(cache=cache)
        e2 = BatchEngine(cache=cache)
        assert e1.cache is e2.cache
