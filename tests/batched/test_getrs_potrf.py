"""Tests for irrGETRS (batched solve) and irrPOTRF (batched Cholesky)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.batched import IrrBatch, NotPositiveDefiniteError, irr_getrf, \
    irr_getrs, irr_potrf, potrf_flops
from repro.device import A100, Device


def spd(rng, n):
    g = rng.standard_normal((n, n))
    return g @ g.T + n * np.eye(n)


class TestGetrs:
    def test_solves_irregular_batch(self, a100, rng):
        mats = [rng.standard_normal((n, n)) + n * np.eye(n)
                for n in (1, 8, 30, 64)]
        rhss = [rng.standard_normal((m.shape[0], k))
                for m, k in zip(mats, (2, 1, 5, 3))]
        fb = IrrBatch.from_host(a100, [m.copy() for m in mats])
        rb = IrrBatch.from_host(a100, [r.copy() for r in rhss])
        piv = irr_getrf(a100, fb)
        irr_getrs(a100, fb, piv, rb)
        for a, x, r in zip(mats, rb.to_host(), rhss):
            assert np.abs(a @ x - r).max() < 1e-10 * max(1, np.abs(r).max())

    def test_matches_lu_solve_factored(self, a100, rng):
        from repro.batched import lu_solve_factored
        a = rng.standard_normal((40, 40))
        r = rng.standard_normal((40, 2))
        fb = IrrBatch.from_host(a100, [a.copy()])
        rb = IrrBatch.from_host(a100, [r.copy()])
        piv = irr_getrf(a100, fb)
        irr_getrs(a100, fb, piv, rb)
        ref = lu_solve_factored(fb.matrix(0), piv[0], r)
        np.testing.assert_allclose(rb.to_host()[0], ref, rtol=1e-11)

    def test_three_launch_phases_plus_trsm(self, a100, rng):
        mats = [rng.standard_normal((32, 32)) for _ in range(10)]
        fb = IrrBatch.from_host(a100, mats)
        rb = IrrBatch.from_host(a100,
                                [rng.standard_normal((32, 1))] * 10)
        piv = irr_getrf(a100, fb)
        n0 = a100.profiler.launch_count
        irr_getrs(a100, fb, piv, rb)
        # pivots + 1 lower-trsm base + 1 upper-trsm base
        assert a100.profiler.launch_count - n0 == 3

    def test_repeated_solves_memoize_rehearsal(self, a100, rng):
        # the rehearsed pivot permutation is cached on the pivots object,
        # so repeated solves against one factorization rehearse once
        from repro.batched.engine import BatchEngine
        mats = [rng.standard_normal((n, n)) + n * np.eye(n)
                for n in (7, 23, 23, 41)]
        rhss = [rng.standard_normal((m.shape[0], 2)) for m in mats]
        fb = IrrBatch.from_host(a100, [m.copy() for m in mats])
        piv = irr_getrf(a100, fb)
        eng = BatchEngine()
        xs = []
        for _ in range(2):
            rb = IrrBatch.from_host(a100, [r.copy() for r in rhss])
            irr_getrs(a100, fb, piv, rb, engine=eng)
            xs.append(rb.to_host())
            rb.free()
        assert piv._rehearsal is not None  # memoized after the first solve
        for x1, x2 in zip(*xs):
            np.testing.assert_array_equal(x1, x2)
        for a, x, r in zip(mats, xs[0], rhss):
            assert np.abs(a @ x - r).max() < 1e-10 * max(1, np.abs(r).max())

    def test_validation(self, a100, rng):
        fb = IrrBatch.from_host(a100, [rng.standard_normal((4, 5))])
        rb = IrrBatch.from_host(a100, [rng.standard_normal((4, 1))])
        piv = None
        with pytest.raises(ValueError, match="not square"):
            from repro.batched import PanelPivots
            irr_getrs(a100, fb, PanelPivots(fb), rb)

    def test_rhs_row_mismatch(self, a100, rng):
        from repro.batched import PanelPivots
        fb = IrrBatch.from_host(a100, [rng.standard_normal((4, 4))])
        rb = IrrBatch.from_host(a100, [rng.standard_normal((5, 1))])
        with pytest.raises(ValueError, match="rows"):
            irr_getrs(a100, fb, PanelPivots(fb), rb)

    def test_trans_unsupported(self, a100, rng):
        from repro.batched import PanelPivots
        fb = IrrBatch.from_host(a100, [rng.standard_normal((4, 4))])
        rb = IrrBatch.from_host(a100, [rng.standard_normal((4, 1))])
        with pytest.raises(NotImplementedError):
            irr_getrs(a100, fb, PanelPivots(fb), rb, trans="T")


class TestPotrf:
    def test_factors_irregular_batch(self, a100, rng):
        mats = [spd(rng, n) for n in (1, 7, 33, 64, 129)]
        b = IrrBatch.from_host(a100, [m.copy() for m in mats])
        irr_potrf(a100, b)
        for i, a in enumerate(mats):
            L = np.tril(b.matrix(i))
            assert np.abs(L @ L.T - a).max() < 1e-11 * np.abs(a).max()

    def test_matches_numpy_cholesky(self, a100, rng):
        a = spd(rng, 50)
        b = IrrBatch.from_host(a100, [a.copy()])
        irr_potrf(a100, b, nb=8)
        np.testing.assert_allclose(np.tril(b.matrix(0)),
                                   np.linalg.cholesky(a), rtol=1e-10)

    def test_upper_triangle_untouched(self, a100, rng):
        a = spd(rng, 20)
        b = IrrBatch.from_host(a100, [a.copy()])
        irr_potrf(a100, b, nb=32)  # single panel: no trailing update
        np.testing.assert_array_equal(np.triu(b.matrix(0), 1),
                                      np.triu(a, 1))

    def test_not_spd_raises(self, a100, rng):
        a = -np.eye(4)
        b = IrrBatch.from_host(a100, [a])
        with pytest.raises(NotPositiveDefiniteError, match="minor 1"):
            irr_potrf(a100, b)

    def test_rectangular_rejected(self, a100, rng):
        b = IrrBatch.from_host(a100, [rng.standard_normal((3, 5))])
        with pytest.raises(ValueError, match="not square"):
            irr_potrf(a100, b)

    def test_invalid_panel(self, a100, rng):
        b = IrrBatch.from_host(a100, [spd(rng, 4)])
        with pytest.raises(ValueError, match="panel width"):
            irr_potrf(a100, b, nb=0)

    def test_flop_formula(self):
        assert potrf_flops(1) == pytest.approx(1.0)
        n = 300.0
        assert potrf_flops(n) == pytest.approx(n ** 3 / 3, rel=1e-2)

    @settings(max_examples=10, deadline=None)
    @given(st.lists(st.integers(1, 40), min_size=1, max_size=5),
           st.integers(0, 2 ** 31 - 1), st.integers(1, 24))
    def test_property_cholesky(self, sizes, seed, nb):
        rng = np.random.default_rng(seed)
        dev = Device(A100())
        mats = [spd(rng, n) for n in sizes]
        b = IrrBatch.from_host(dev, [m.copy() for m in mats])
        irr_potrf(dev, b, nb=nb)
        for i, a in enumerate(mats):
            L = np.tril(b.matrix(i))
            assert np.abs(L @ L.T - a).max() < 1e-10 * np.abs(a).max()


class TestComplexGuards:
    def test_potrf_rejects_complex(self, a100, rng):
        a = np.eye(4, dtype=np.complex128)
        b = IrrBatch.from_host(a100, [a])
        with pytest.raises(NotImplementedError, match="Hermitian"):
            irr_potrf(a100, b)
