"""Tests for ahead-of-time workload programs (compile once, replay).

The contract under test: a :class:`WorkloadProgram` replays the exact
launch schedule the bucketed engine would issue — factors, pivots,
diagnostics and simulated ``KernelCost`` records all bitwise identical —
while ``run()`` itself performs zero DCWI planning and zero device
allocation after compile, and fusion only merges adjacent launch records
(identical cost *totals*, fewer records).
"""

import numpy as np
import pytest

from repro.batched import CompileError, GuardTripped, IrrBatch, \
    PayloadMismatch, WorkloadProgram, compile_workload, fuse_costs, \
    irr_getrf, irr_getrs
from repro.device import A100, Device
from repro.device.kernel import KernelCost
from repro.errors import FactorizationError
from repro.workloads.random_batch import random_square_batch

pytestmark = pytest.mark.compiled

#: the paper's Fig 10 mix in miniature: empty/degenerate members, shape
#: clusters, rectangulars and a couple of large outliers
MIXED = [(0, 0), (1, 1), (1, 7), (7, 1), (17, 17), (17, 17), (17, 17),
         (40, 23), (23, 40), (64, 64), (3, 3), (3, 3), (33, 33), (33, 33),
         (96, 64), (5, 5)]

SQ = [(17, 17), (5, 5), (33, 33), (17, 17), (64, 64), (5, 5)]
RHS = [(17, 2), None, (33, 1), (17, 2), (64, 4), None]


def _records(dev):
    return [(r.name, r.cost.flops, r.cost.bytes_read, r.cost.bytes_written,
             r.cost.blocks, r.cost.threads_per_block,
             r.cost.shared_mem_per_block, r.cost.kernel_class,
             r.cost.compute_ramp, r.cost.peak_scale)
            for r in dev.profiler.records]


def _totals(recs):
    return (sum(r.cost.flops for r in recs),
            sum(r.cost.bytes_read for r in recs),
            sum(r.cost.bytes_written for r in recs),
            sum(r.cost.blocks for r in recs))


def _baseline_getrf(payload, **lu):
    """Fresh-device bucketed factorization of one payload."""
    dev = Device(A100())
    batch = IrrBatch.from_host_packed(dev, payload)
    piv = irr_getrf(dev, batch, engine="bucketed", **lu)
    dev.synchronize()
    return dev, batch.to_host(), piv


class _View:
    def __init__(self, ipiv, info):
        self.ipiv = ipiv
        self.info = info


def _baseline_solve_subbatch(dev, batch, pivots, idxs, rhs_payloads):
    """The serve-style per-class sub-batch solve on resident factors."""
    idx = np.asarray(idxs)
    sub = IrrBatch(dev, [batch.arrays[i] for i in idxs],
                   batch.m_vec[idx], batch.n_vec[idx])
    view = _View([pivots.ipiv[i] for i in idxs], pivots.info[idx])
    rb = IrrBatch.from_host_packed(dev, rhs_payloads)
    irr_getrs(dev, sub, view, rb, engine="bucketed", check_info=False)
    dev.synchronize()
    out = rb.to_host()
    rb.free()
    return out


class TestGetrfParity:
    def test_mixed_bitwise_and_diagnostics(self, rng):
        payloads = [[rng.standard_normal(s) for s in MIXED]
                    for _ in range(2)]
        dev = Device(A100())
        prog = compile_workload(dev, "getrf", MIXED, fuse=False)
        for p in payloads:
            res = prog.run(a=p)
            _, facs, piv = _baseline_getrf(p)
            for a, b in zip(res.factors, facs):
                np.testing.assert_array_equal(a, b)
            for a, b in zip(res.ipiv, piv.ipiv):
                np.testing.assert_array_equal(a, b)
            np.testing.assert_array_equal(res.info, piv.info)
            np.testing.assert_array_equal(res.n_replaced,
                                          piv.ctrl.n_replaced)
            np.testing.assert_array_equal(res.min_pivot,
                                          piv.ctrl.min_pivot)
            np.testing.assert_array_equal(res.growth, piv.ctrl.growth)
        prog.free()

    def test_launch_records_identical_unfused(self, rng):
        p = [rng.standard_normal(s) for s in MIXED]
        dev = Device(A100())
        prog = compile_workload(dev, "getrf", MIXED, fuse=False)
        r0 = len(dev.profiler.records)
        prog.run(a=p)
        mine = _records(dev)[r0:]
        bdev, _, _ = _baseline_getrf(p)
        assert mine == _records(bdev)
        prog.free()

    def test_fig10_batch(self, rng):
        mats = random_square_batch(60, 48, seed=17)
        shapes = [m.shape for m in mats]
        dev = Device(A100())
        prog = compile_workload(dev, "getrf", shapes)
        res = prog.run(a=mats)
        _, facs, piv = _baseline_getrf(mats)
        for a, b in zip(res.factors, facs):
            np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(res.info, piv.info)
        prog.free()

    def test_fused_cost_totals_and_fewer_launches(self, rng):
        p = [rng.standard_normal(s) for s in MIXED]
        dev = Device(A100())
        prog = compile_workload(dev, "getrf", MIXED)  # fuse=True default
        n0 = len(dev.profiler.records)
        res = prog.run(a=p)
        run_recs = dev.profiler.records[n0:]
        bdev, facs, _ = _baseline_getrf(p)
        for a, b in zip(res.factors, facs):
            np.testing.assert_array_equal(a, b)
        # identical simulated work, fewer launch records
        assert _totals(run_recs) == _totals(bdev.profiler.records)
        assert prog.n_fused > 0
        assert len(run_recs) == len(bdev.profiler.records) - prog.n_fused
        prog.free()

    def test_static_pivot_replay(self, rng):
        # a tight pivot_tol forces static replacements on ordinary
        # random payloads; the zero members exercise info parity
        shapes = [(6, 6)] * 12
        sing = [np.zeros((6, 6)) if i == 0
                else rng.standard_normal((6, 6)) for i in range(12)]
        dev = Device(A100())
        prog = compile_workload(
            dev, "getrf", shapes,
            lu_kwargs={"static_pivot": True, "pivot_tol": 0.5})
        res = prog.run(a=sing)
        _, facs, piv = _baseline_getrf(sing, static_pivot=True,
                                       pivot_tol=0.5)
        for a, b in zip(res.factors, facs):
            np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(res.n_replaced, piv.ctrl.n_replaced)
        np.testing.assert_array_equal(res.info, piv.info)
        assert res.n_replaced.sum() > 0
        prog.free()

    def test_zero_misses_zero_allocs_after_first_run(self, rng):
        dev = Device(A100())
        prog = compile_workload(dev, "getrf", MIXED)
        prog.run(a=[rng.standard_normal(s) for s in MIXED])
        misses0 = prog.engine.cache.misses
        allocs0 = dev.alloc_count
        for _ in range(3):
            prog.run(a=[rng.standard_normal(s) for s in MIXED])
        assert prog.engine.cache.misses == misses0
        assert dev.alloc_count == allocs0
        prog.free()


class TestInterleavedLowering:
    def test_uniform_small_batch_single_launch(self, rng):
        shapes = [(12, 12)] * 20
        p = [rng.standard_normal(s) for s in shapes]
        dev = Device(A100())
        prog = compile_workload(dev, "getrf", shapes)
        assert prog.n_launches == 1
        res = prog.run(a=p)
        bdev, facs, piv = _baseline_getrf(p)
        for a, b in zip(res.factors, facs):
            np.testing.assert_array_equal(a, b)
        for a, b in zip(res.ipiv, piv.ipiv):
            np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(res.growth, piv.ctrl.growth)
        # the lowered kernel's launch record equals the bucketed
        # engine's single fused-panel record
        assert _records(dev)[-1:] == _records(bdev)[-1:]
        prog.free()

    def test_lowered_breakdown_diagnostics(self, rng):
        shapes = [(8, 8)] * 10
        p = [np.zeros((8, 8)) if i == 3 else rng.standard_normal((8, 8))
             for i in range(10)]
        dev = Device(A100())
        prog = compile_workload(dev, "getrf", shapes)
        assert prog.n_launches == 1
        res = prog.run(a=p)
        _, _, piv = _baseline_getrf(p)
        np.testing.assert_array_equal(res.info, piv.info)
        np.testing.assert_array_equal(res.min_pivot, piv.ctrl.min_pivot)
        assert res.info[3] != 0
        prog.free()

    def test_not_lowered_above_size_limit(self, rng):
        shapes = [(48, 48)] * 20
        dev = Device(A100())
        prog = compile_workload(dev, "getrf", shapes)
        assert prog.n_launches > 1
        prog.free()


class TestFactorSolve:
    def _baseline(self, As, Bs, grouping):
        dev = Device(A100())
        batch = IrrBatch.from_host_packed(dev, As)
        piv = irr_getrf(dev, batch, engine="bucketed")
        sel = [i for i, b in enumerate(Bs) if b is not None]
        sols = {}
        if grouping == "batch":
            groups = [sel]
        else:
            by_order = {}
            for i in sel:
                n = As[i].shape[1]
                by_order.setdefault(n if n > 32 else 0, []).append(i)
            groups = [by_order[c] for c in sorted(by_order)]
        for idxs in groups:
            out = _baseline_solve_subbatch(dev, batch, piv, idxs,
                                           [Bs[i] for i in idxs])
            for i, x in zip(idxs, out):
                sols[i] = x
        return sols

    @pytest.mark.parametrize("grouping", ["batch", "order_class"])
    def test_pipeline_parity(self, rng, grouping):
        As = [rng.standard_normal(s) for s in SQ]
        Bs = [rng.standard_normal(r) if r else None for r in RHS]
        dev = Device(A100())
        prog = compile_workload(dev, "factor_solve", SQ, rhs_shapes=RHS,
                                solve_grouping=grouping)
        res = prog.run(a=As, b=Bs)
        sols = self._baseline(As, Bs, grouping)
        for i, x in sols.items():
            np.testing.assert_array_equal(res.solutions[i], x)
        assert res.solutions[1] is None      # factor-only member
        assert res.solutions[5] is None
        prog.free()

    def test_guard_trips_on_breakdown_payload(self, rng):
        As = [rng.standard_normal(s) for s in SQ]
        Bs = [rng.standard_normal(r) if r else None for r in RHS]
        dev = Device(A100())
        prog = compile_workload(dev, "factor_solve", SQ, rhs_shapes=RHS)
        As[0] = np.zeros((17, 17))
        with pytest.raises(GuardTripped) as ei:
            prog.run(a=As, b=Bs)
        assert ei.value.info is not None
        assert ei.value.info[0] != 0
        prog.free()

    def test_replay_after_guard_trip(self, rng):
        # a tripped guard must not poison the program for later payloads
        As = [rng.standard_normal(s) for s in SQ]
        Bs = [rng.standard_normal(r) if r else None for r in RHS]
        dev = Device(A100())
        prog = compile_workload(dev, "factor_solve", SQ, rhs_shapes=RHS)
        bad = list(As)
        bad[0] = np.zeros((17, 17))
        with pytest.raises(GuardTripped):
            prog.run(a=bad, b=Bs)
        res = prog.run(a=As, b=Bs)
        sols = self._baseline(As, Bs, "batch")
        for i, x in sols.items():
            np.testing.assert_array_equal(res.solutions[i], x)
        prog.free()


class TestGetrs:
    def test_parity_with_pipeline(self, rng):
        As = [rng.standard_normal((17, 17)) for _ in range(6)]
        Bs = [rng.standard_normal((17, 3)) for _ in range(6)]
        bdev = Device(A100())
        fb = IrrBatch.from_host_packed(bdev, As)
        piv = irr_getrf(bdev, fb, engine="bucketed")
        bdev.synchronize()
        factors = fb.to_host()
        rb = IrrBatch.from_host_packed(bdev, Bs)
        irr_getrs(bdev, fb, piv, rb, engine="bucketed")
        bdev.synchronize()
        xs = rb.to_host()

        dev = Device(A100())
        prog = compile_workload(dev, "getrs", [(17, 17)] * 6,
                                rhs_shapes=[(17, 3)] * 6)
        res = prog.run(a=factors, ipiv=piv.ipiv, b=Bs, info=piv.info)
        for a, b in zip(res.solutions, xs):
            np.testing.assert_array_equal(a, b)
        prog.free()

    def test_broken_info_refused(self, rng):
        As = [rng.standard_normal((5, 5)) for _ in range(4)]
        Bs = [rng.standard_normal((5, 1)) for _ in range(4)]
        dev = Device(A100())
        prog = compile_workload(dev, "getrs", [(5, 5)] * 4,
                                rhs_shapes=[(5, 1)] * 4)
        info = np.zeros(4, dtype=np.int64)
        info[2] = 3
        with pytest.raises(FactorizationError, match="broken-down"):
            prog.run(a=As, ipiv=[np.arange(5)] * 4, b=Bs, info=info)
        prog.free()


class TestErrors:
    def test_payload_count_mismatch(self, rng):
        dev = Device(A100())
        prog = compile_workload(dev, "getrf", [(4, 4)] * 3)
        with pytest.raises(PayloadMismatch):
            prog.run(a=[rng.standard_normal((4, 4))] * 2)
        prog.free()

    def test_payload_shape_mismatch(self, rng):
        dev = Device(A100())
        prog = compile_workload(dev, "getrf", [(4, 4)] * 3)
        with pytest.raises(PayloadMismatch):
            prog.run(a=[rng.standard_normal((5, 5))] * 3)
        prog.free()

    def test_payload_name_mismatch(self, rng):
        dev = Device(A100())
        prog = compile_workload(dev, "getrf", [(4, 4)] * 3)
        with pytest.raises(PayloadMismatch):
            prog.run(b=[rng.standard_normal((4, 4))] * 3)
        prog.free()

    def test_concurrent_swaps_uncompilable(self):
        dev = Device(A100())
        with pytest.raises(CompileError, match="concurrent_swaps"):
            compile_workload(dev, "getrf", [(4, 4)] * 3,
                             lu_kwargs={"concurrent_swaps": True})

    def test_naive_engine_uncompilable(self):
        dev = Device(A100())
        with pytest.raises(CompileError):
            compile_workload(dev, "getrf", [(4, 4)] * 3, engine="naive")

    def test_unknown_op(self):
        dev = Device(A100())
        with pytest.raises(CompileError, match="unknown workload op"):
            compile_workload(dev, "potrf", [(4, 4)] * 3)

    def test_run_after_free(self, rng):
        dev = Device(A100())
        prog = compile_workload(dev, "getrf", [(4, 4)] * 3)
        prog.free()
        with pytest.raises(RuntimeError, match="freed"):
            prog.run(a=[rng.standard_normal((4, 4))] * 3)

    def test_free_releases_device_memory(self):
        dev = Device(A100())
        base = dev.allocated_bytes
        prog = compile_workload(dev, "getrf", MIXED)
        assert dev.allocated_bytes > base
        prog.free()
        assert dev.allocated_bytes == base
        prog.free()  # idempotent

    def test_context_manager_frees(self):
        dev = Device(A100())
        base = dev.allocated_bytes
        with compile_workload(dev, "getrf", [(4, 4)] * 3) as prog:
            assert isinstance(prog, WorkloadProgram)
        assert dev.allocated_bytes == base


class TestFuseCosts:
    def test_totals_sum_and_maxes(self):
        a = KernelCost(flops=100.0, bytes_read=10.0, bytes_written=5.0,
                       blocks=4, threads_per_block=128,
                       shared_mem_per_block=1024, kernel_class="getf2",
                       compute_ramp=0.5, memory_ramp=1.0, peak_scale=1.0)
        b = KernelCost(flops=300.0, bytes_read=30.0, bytes_written=15.0,
                       blocks=8, threads_per_block=256,
                       shared_mem_per_block=512, kernel_class="gemm_irr",
                       compute_ramp=1.0, memory_ramp=0.5, peak_scale=2.0)
        f = fuse_costs([a, b])
        assert f.flops == 400.0
        assert f.bytes_read == 40.0
        assert f.bytes_written == 20.0
        assert f.blocks == 12
        assert f.threads_per_block == 256
        assert f.shared_mem_per_block == 1024
        # dominated by the bigger launch
        assert f.kernel_class == "gemm_irr"
        assert f.peak_scale == 1.0           # conservative: min
        # flop-weighted compute ramp
        assert f.compute_ramp == pytest.approx((100 * 0.5 + 300 * 1.0)
                                               / 400)

    def test_single_cost_passthrough(self):
        a = KernelCost(flops=10.0, bytes_read=1.0, bytes_written=1.0,
                       blocks=1, kernel_class="trsm_irr")
        f = fuse_costs([a])
        assert f.flops == a.flops and f.kernel_class == a.kernel_class
