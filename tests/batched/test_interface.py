"""Tests for the expanded-interface batch container."""

import numpy as np
import pytest

from repro.batched import IrrBatch


class TestConstruction:
    def test_from_host_mixed_sizes(self, a100, rng):
        mats = [rng.standard_normal((m, n))
                for m, n in [(1, 1), (5, 3), (64, 64), (2, 100)]]
        b = IrrBatch.from_host(a100, mats)
        assert len(b) == 4
        assert b.m_vec.tolist() == [1, 5, 64, 2]
        assert b.n_vec.tolist() == [1, 3, 64, 100]

    def test_zeros(self, a100):
        b = IrrBatch.zeros(a100, [3, 7], [4, 2])
        assert b.matrix(1).shape == (7, 2)
        assert np.all(b.matrix(0) == 0)

    def test_length_mismatch_raises(self, a100):
        arr = a100.zeros((3, 3))
        with pytest.raises(ValueError, match="equal length"):
            IrrBatch(a100, [arr], np.array([3, 3]), np.array([3]))

    def test_negative_dims_raise(self, a100):
        arr = a100.zeros((3, 3))
        with pytest.raises(ValueError, match="nonnegative"):
            IrrBatch(a100, [arr], np.array([-1]), np.array([3]))

    def test_buffer_smaller_than_local_dims_raises(self, a100):
        arr = a100.zeros((3, 3))
        with pytest.raises(ValueError, match="smaller than local dims"):
            IrrBatch(a100, [arr], np.array([5]), np.array([3]))

    def test_cross_device_rejected(self, a100, mi100):
        arr = mi100.zeros((3, 3))
        with pytest.raises(ValueError, match="different device"):
            IrrBatch(a100, [arr], np.array([3]), np.array([3]))

    def test_leading_dimension_buffers_allowed(self, a100):
        # lda > m: the matrix lives in a larger buffer, as the paper's
        # lda_vec permits.
        arr = a100.zeros((10, 10))
        b = IrrBatch(a100, [arr], np.array([4]), np.array([6]))
        assert b.matrix(0).shape == (4, 6)

    def test_empty_batch(self, a100):
        b = IrrBatch(a100, [], np.array([], dtype=np.int64),
                     np.array([], dtype=np.int64))
        assert len(b) == 0
        assert b.max_m == 0
        assert b.max_min_mn == 0


class TestDimensions:
    def test_max_dims(self, a100, rng):
        b = IrrBatch.from_host(a100, [rng.standard_normal((m, n))
                                      for m, n in [(3, 9), (8, 2), (5, 5)]])
        assert b.max_m == 8
        assert b.max_n == 9
        # max over min(m, n) = max(3, 2, 5)
        assert b.max_min_mn == 5

    def test_total_elements(self, a100):
        b = IrrBatch.zeros(a100, [2, 3], [4, 5])
        assert b.total_elements() == 2 * 4 + 3 * 5


class TestSubviews:
    def test_sub_is_a_view(self, a100, rng):
        b = IrrBatch.from_host(a100, [rng.standard_normal((6, 6))])
        sub = b.sub(0, 2, 3, 2, 2)
        sub[...] = 42.0
        assert np.all(b.matrix(0)[2:4, 3:5] == 42.0)

    def test_sub_matches_offset_arithmetic(self, a100):
        host = np.arange(36.0).reshape(6, 6)
        b = IrrBatch.from_host(a100, [host])
        assert b.sub(0, 1, 2, 2, 3).tolist() == host[1:3, 2:5].tolist()


class TestTransfersAndCopy:
    def test_to_host_roundtrip(self, a100, rng):
        mats = [rng.standard_normal((4, 7)), rng.standard_normal((2, 2))]
        b = IrrBatch.from_host(a100, mats)
        out = b.to_host()
        for got, want in zip(out, mats):
            np.testing.assert_array_equal(got, want)

    def test_copy_is_independent(self, a100, rng):
        b = IrrBatch.from_host(a100, [rng.standard_normal((3, 3))])
        c = b.copy()
        c.matrix(0)[...] = 0.0
        assert not np.all(b.matrix(0) == 0.0)

    def test_free_releases_memory(self, a100):
        before = a100.allocated_bytes
        b = IrrBatch.zeros(a100, [100], [100])
        assert a100.allocated_bytes > before
        b.free()
        assert a100.allocated_bytes == before

    def test_1d_host_input_promoted(self, a100):
        b = IrrBatch.from_host(a100, [np.ones(5)])
        assert b.matrix(0).shape == (1, 5)
