"""FP32 support across the batched stack (the interface's generic "type T")."""

import numpy as np
import pytest

from repro.batched import IrrBatch, irr_gemm, irr_getrf, irr_getrs, \
    irr_trsm, lu_reconstruct
from repro.batched.panel import DEFAULT_REPLACE_SCALE, default_replace_scale
from repro.batched.program import compile_workload
from repro.device import A100, Device


def _well_conditioned(rng, m, n, dtype):
    a = rng.standard_normal((m, n))
    if np.dtype(dtype).kind == "c":
        a = a + 1j * rng.standard_normal((m, n))
    return (a + 4 * np.eye(m, n)).astype(dtype)


class TestDtypeHandling:
    def test_float32_preserved(self, a100, rng):
        b = IrrBatch.from_host(
            a100, [rng.standard_normal((4, 4)).astype(np.float32)])
        assert b.dtype == np.float32
        assert b.itemsize == 4
        assert b.peak_scale == 2.0

    def test_float64_default(self, a100, rng):
        b = IrrBatch.from_host(a100, [rng.standard_normal((4, 4))])
        assert b.dtype == np.float64
        assert b.peak_scale == 1.0

    def test_explicit_dtype_cast(self, a100, rng):
        b = IrrBatch.from_host(a100, [rng.standard_normal((4, 4))],
                               dtype=np.float32)
        assert b.dtype == np.float32

    def test_mixed_dtypes_rejected(self, a100, rng):
        a32 = a100.from_host(rng.standard_normal((2, 2)).astype(np.float32))
        a64 = a100.from_host(rng.standard_normal((2, 2)))
        with pytest.raises(ValueError, match="mixed data types"):
            IrrBatch(a100, [a32, a64], np.array([2, 2]), np.array([2, 2]))

    def test_integer_dtype_rejected(self, a100):
        arr = a100.from_host(np.ones((2, 2), dtype=np.int32))
        with pytest.raises(ValueError, match="unsupported data type"):
            IrrBatch(a100, [arr], np.array([2]), np.array([2]))


class TestFp32Numerics:
    def test_getrf_fp32(self, a100, rng):
        mats = [rng.standard_normal((int(n), int(n))).astype(np.float32)
                for n in rng.integers(1, 70, 10)]
        b = IrrBatch.from_host(a100, [m.copy() for m in mats])
        piv = irr_getrf(a100, b)
        for i, orig in enumerate(mats):
            rec = lu_reconstruct(b.matrix(i).astype(np.float64), piv[i])
            err = np.abs(rec - orig).max() / max(1.0, np.abs(orig).max())
            assert err < 1e-4   # single precision

    def test_factors_stay_fp32(self, a100, rng):
        b = IrrBatch.from_host(
            a100, [rng.standard_normal((40, 40)).astype(np.float32)])
        irr_getrf(a100, b)
        assert b.matrix(0).dtype == np.float32

    def test_gemm_fp32(self, a100, rng):
        mats = [rng.standard_normal((8, 8)).astype(np.float32)
                for _ in range(6)]
        A = IrrBatch.from_host(a100, mats[:2])
        B = IrrBatch.from_host(a100, mats[2:4])
        C = IrrBatch.from_host(a100, mats[4:])
        refs = [a @ b for a, b in zip(A.to_host(), B.to_host())]
        irr_gemm(a100, "N", "N", 8, 8, 8, 1.0, A, (0, 0), B, (0, 0),
                 0.0, C, (0, 0))
        for got, want in zip(C.to_host(), refs):
            np.testing.assert_allclose(got, want, rtol=1e-5)

    def test_trsm_fp32(self, a100, rng):
        t = (np.tril(rng.standard_normal((48, 48)).astype(np.float32))
             + 48 * np.eye(48, dtype=np.float32))
        bmat = rng.standard_normal((48, 4)).astype(np.float32)
        T = IrrBatch.from_host(a100, [t])
        B = IrrBatch.from_host(a100, [bmat.copy()])
        irr_trsm(a100, "L", "L", "N", "N", 48, 4, 1.0, T, (0, 0), B, (0, 0))
        res = np.abs(np.tril(t) @ B.to_host()[0] - bmat).max()
        assert res < 1e-4


@pytest.mark.precision
class TestThreeWayParity:
    """The reduced-precision kernel stack is engine-independent: the
    naive per-matrix loop, the bucketed DCWI engine and a compiled
    :class:`WorkloadProgram` replay must produce bitwise-identical
    factors, pivots, solutions and breakdown diagnostics — in float32
    and complex64 exactly as in double."""

    SHAPES = [(12, 12), (20, 20), (12, 12), (5, 5)]

    @pytest.mark.parametrize("dtype", [np.float32, np.complex64])
    def test_getrf_getrs_parity(self, rng, dtype):
        mats = [_well_conditioned(rng, m, n, dtype)
                for m, n in self.SHAPES]
        rhss = [_well_conditioned(rng, n, 2, dtype)
                for _, n in self.SHAPES]
        runs = {}
        for engine in ("naive", "bucketed"):
            dev = Device(A100())
            b = IrrBatch.from_host(dev, [m.copy() for m in mats])
            piv = irr_getrf(dev, b, engine=engine)
            r = IrrBatch.from_host(dev, [m.copy() for m in rhss])
            irr_getrs(dev, b, piv, r, engine=engine)
            runs[engine] = (b.to_host(), piv, r.to_host())
        dev = Device(A100())
        prog = compile_workload(dev, "factor_solve", self.SHAPES,
                                dtype=dtype,
                                rhs_shapes=[r.shape for r in rhss])
        res = prog.run(a=[m.copy() for m in mats],
                       b=[r.copy() for r in rhss])
        prog.free()
        ref_f, ref_piv, ref_x = runs["bucketed"]
        for i in range(len(mats)):
            assert res.factors[i].dtype == np.dtype(dtype)
            np.testing.assert_array_equal(runs["naive"][0][i], ref_f[i])
            np.testing.assert_array_equal(res.factors[i], ref_f[i])
            np.testing.assert_array_equal(runs["naive"][1].ipiv[i],
                                          ref_piv.ipiv[i])
            np.testing.assert_array_equal(res.ipiv[i], ref_piv.ipiv[i])
            np.testing.assert_array_equal(runs["naive"][2][i], ref_x[i])
            np.testing.assert_array_equal(res.solutions[i], ref_x[i])

    @pytest.mark.parametrize("dtype", [np.float32, np.complex64])
    def test_breakdown_diagnostics_parity(self, rng, dtype):
        """Static-pivot recovery diagnostics (info / n_replaced /
        min_pivot / growth) agree bitwise across all three paths when a
        member breaks down at working-precision eps."""
        mats = [_well_conditioned(rng, 8, 8, dtype) for _ in range(3)]
        sing = mats[1].copy()
        sing[3] = sing[2]          # dependent rows: exact zero pivot
        mats[1] = sing
        diags = {}
        for engine in ("naive", "bucketed"):
            dev = Device(A100())
            b = IrrBatch.from_host(dev, [m.copy() for m in mats])
            piv = irr_getrf(dev, b, engine=engine, static_pivot=True)
            diags[engine] = (piv.info.copy(), piv.n_replaced.copy(),
                             piv.min_pivot.copy(), piv.growth.copy(),
                             b.to_host())
        dev = Device(A100())
        prog = compile_workload(dev, "getrf", [(8, 8)] * 3, dtype=dtype,
                                lu_kwargs={"static_pivot": True})
        res = prog.run(a=[m.copy() for m in mats])
        prog.free()
        info, nrep, minp, growth, fac = diags["bucketed"]
        assert nrep[1] >= 1 and np.all(info == 0)
        for other in (diags["naive"][:4],
                      (res.info, res.n_replaced, res.min_pivot,
                       res.growth)):
            np.testing.assert_array_equal(other[0], info)
            np.testing.assert_array_equal(other[1], nrep)
            np.testing.assert_array_equal(other[2], minp)
            np.testing.assert_array_equal(other[3], growth)
        for got in (diags["naive"][4], res.factors):
            for a, ref in zip(got, fac):
                np.testing.assert_array_equal(a, ref)

    def test_replace_scale_tracks_working_eps(self):
        assert default_replace_scale(np.float32) == \
            pytest.approx(float(np.sqrt(np.finfo(np.float32).eps)))
        assert default_replace_scale(np.complex64) == \
            pytest.approx(float(np.sqrt(np.finfo(np.float32).eps)))
        assert default_replace_scale(np.float64) == DEFAULT_REPLACE_SCALE
        assert default_replace_scale(np.complex128) == \
            DEFAULT_REPLACE_SCALE

    def test_static_pivot_magnitude_at_fp32_eps(self, rng):
        """A replaced pivot in an f4 factorization sits at
        sqrt(eps_fp32)·|A|max: the fp64 default would vanish below
        fp32 roundoff and the 'recovered' factors would be garbage."""
        a = _well_conditioned(rng, 6, 6, np.float32)
        a[:, 0] = 0.0              # zero first column: immediate breakdown
        dev = Device(A100())
        b = IrrBatch.from_host(dev, [a.copy()])
        piv = irr_getrf(dev, b, static_pivot=True)
        assert piv.info[0] == 0 and piv.n_replaced[0] >= 1
        expected = float(np.sqrt(np.finfo(np.float32).eps)) * \
            float(np.abs(a).max())
        assert abs(b.matrix(0)[0, 0]) == pytest.approx(expected, rel=1e-5)


class TestFp32Performance:
    def test_fp32_faster_than_fp64_in_model(self, rng):
        """FP32 doubles the arithmetic peak and halves the traffic, so the
        modeled time must drop for a compute-heavy batch."""
        mats64 = [rng.standard_normal((256, 256)) for _ in range(16)]
        times = {}
        for dtype in (np.float64, np.float32):
            dev = Device(A100())
            b = IrrBatch.from_host(dev, [m.astype(dtype) for m in mats64])
            with dev.timed_region() as t:
                irr_getrf(dev, b)
            times[dtype] = t["elapsed"]
        assert times[np.float32] < 0.8 * times[np.float64]

    def test_fp32_panel_fits_taller(self):
        """Half the bytes per element: the fused panel reaches 2x the
        height before falling back (shared-memory capacity, §IV-E)."""
        from repro.batched import panel_shared_bytes
        spec = A100()
        h64 = h32 = 0
        while panel_shared_bytes(h64 + 1, 0, 32, 8) <= \
                spec.max_shared_per_block:
            h64 += 1
        while panel_shared_bytes(h32 + 1, 0, 32, 4) <= \
                spec.max_shared_per_block:
            h32 += 1
        assert h32 == 2 * h64
