"""FP32 support across the batched stack (the interface's generic "type T")."""

import numpy as np
import pytest

from repro.batched import IrrBatch, irr_gemm, irr_getrf, irr_trsm, \
    lu_reconstruct
from repro.device import A100, Device


class TestDtypeHandling:
    def test_float32_preserved(self, a100, rng):
        b = IrrBatch.from_host(
            a100, [rng.standard_normal((4, 4)).astype(np.float32)])
        assert b.dtype == np.float32
        assert b.itemsize == 4
        assert b.peak_scale == 2.0

    def test_float64_default(self, a100, rng):
        b = IrrBatch.from_host(a100, [rng.standard_normal((4, 4))])
        assert b.dtype == np.float64
        assert b.peak_scale == 1.0

    def test_explicit_dtype_cast(self, a100, rng):
        b = IrrBatch.from_host(a100, [rng.standard_normal((4, 4))],
                               dtype=np.float32)
        assert b.dtype == np.float32

    def test_mixed_dtypes_rejected(self, a100, rng):
        a32 = a100.from_host(rng.standard_normal((2, 2)).astype(np.float32))
        a64 = a100.from_host(rng.standard_normal((2, 2)))
        with pytest.raises(ValueError, match="mixed data types"):
            IrrBatch(a100, [a32, a64], np.array([2, 2]), np.array([2, 2]))

    def test_integer_dtype_rejected(self, a100):
        arr = a100.from_host(np.ones((2, 2), dtype=np.int32))
        with pytest.raises(ValueError, match="unsupported data type"):
            IrrBatch(a100, [arr], np.array([2]), np.array([2]))


class TestFp32Numerics:
    def test_getrf_fp32(self, a100, rng):
        mats = [rng.standard_normal((int(n), int(n))).astype(np.float32)
                for n in rng.integers(1, 70, 10)]
        b = IrrBatch.from_host(a100, [m.copy() for m in mats])
        piv = irr_getrf(a100, b)
        for i, orig in enumerate(mats):
            rec = lu_reconstruct(b.matrix(i).astype(np.float64), piv[i])
            err = np.abs(rec - orig).max() / max(1.0, np.abs(orig).max())
            assert err < 1e-4   # single precision

    def test_factors_stay_fp32(self, a100, rng):
        b = IrrBatch.from_host(
            a100, [rng.standard_normal((40, 40)).astype(np.float32)])
        irr_getrf(a100, b)
        assert b.matrix(0).dtype == np.float32

    def test_gemm_fp32(self, a100, rng):
        mats = [rng.standard_normal((8, 8)).astype(np.float32)
                for _ in range(6)]
        A = IrrBatch.from_host(a100, mats[:2])
        B = IrrBatch.from_host(a100, mats[2:4])
        C = IrrBatch.from_host(a100, mats[4:])
        refs = [a @ b for a, b in zip(A.to_host(), B.to_host())]
        irr_gemm(a100, "N", "N", 8, 8, 8, 1.0, A, (0, 0), B, (0, 0),
                 0.0, C, (0, 0))
        for got, want in zip(C.to_host(), refs):
            np.testing.assert_allclose(got, want, rtol=1e-5)

    def test_trsm_fp32(self, a100, rng):
        t = (np.tril(rng.standard_normal((48, 48)).astype(np.float32))
             + 48 * np.eye(48, dtype=np.float32))
        bmat = rng.standard_normal((48, 4)).astype(np.float32)
        T = IrrBatch.from_host(a100, [t])
        B = IrrBatch.from_host(a100, [bmat.copy()])
        irr_trsm(a100, "L", "L", "N", "N", 48, 4, 1.0, T, (0, 0), B, (0, 0))
        res = np.abs(np.tril(t) @ B.to_host()[0] - bmat).max()
        assert res < 1e-4


class TestFp32Performance:
    def test_fp32_faster_than_fp64_in_model(self, rng):
        """FP32 doubles the arithmetic peak and halves the traffic, so the
        modeled time must drop for a compute-heavy batch."""
        mats64 = [rng.standard_normal((256, 256)) for _ in range(16)]
        times = {}
        for dtype in (np.float64, np.float32):
            dev = Device(A100())
            b = IrrBatch.from_host(dev, [m.astype(dtype) for m in mats64])
            with dev.timed_region() as t:
                irr_getrf(dev, b)
            times[dtype] = t["elapsed"]
        assert times[np.float32] < 0.8 * times[np.float64]

    def test_fp32_panel_fits_taller(self):
        """Half the bytes per element: the fused panel reaches 2x the
        height before falling back (shared-memory capacity, §IV-E)."""
        from repro.batched import panel_shared_bytes
        spec = A100()
        h64 = h32 = 0
        while panel_shared_bytes(h64 + 1, 0, 32, 8) <= \
                spec.max_shared_per_block:
            h64 += 1
        while panel_shared_bytes(h32 + 1, 0, 32, 4) <= \
                spec.max_shared_per_block:
            h32 += 1
        assert h32 == 2 * h64
