"""Tests for irrQR (the paper's future-work decomposition)."""

import numpy as np
import pytest
import scipy.linalg as sla
from hypothesis import given, settings, strategies as st

from repro.batched import IrrBatch, apply_q, geqrf_flops, irr_geqrf, \
    qr_least_squares, qr_reconstruct
from repro.device import A100, Device


def factor_and_check(dev, mats, nb=16, tol=1e-12):
    b = IrrBatch.from_host(dev, [m.copy() for m in mats])
    taus = irr_geqrf(dev, b, nb=nb)
    for i, a in enumerate(mats):
        rec = qr_reconstruct(b.matrix(i), taus[i])
        assert np.abs(rec - a).max() <= tol * max(1.0, np.abs(a).max())
    return b, taus


class TestCorrectness:
    def test_square_batch(self, a100, rng):
        mats = [rng.standard_normal((n, n)) for n in (1, 5, 33, 64, 100)]
        factor_and_check(a100, mats)

    def test_rectangular_batch(self, a100, rng):
        mats = [rng.standard_normal(s)
                for s in [(50, 10), (10, 50), (3, 8), (8, 3), (64, 64)]]
        factor_and_check(a100, mats)

    def test_r_is_upper_triangular(self, a100, rng):
        mats = [rng.standard_normal((20, 12))]
        b, taus = factor_and_check(a100, mats)
        r = np.triu(b.matrix(0)[:12, :])
        # R with nonnegative-or-negative diag is fine; just shape/structure
        assert r.shape == (12, 12)

    def test_q_orthogonal(self, a100, rng):
        mats = [rng.standard_normal((40, 40)), rng.standard_normal((25, 9))]
        b, taus = factor_and_check(a100, mats)
        for i, a in enumerate(mats):
            m = a.shape[0]
            q = apply_q(b.matrix(i), taus[i], np.eye(m))
            np.testing.assert_allclose(q.T @ q, np.eye(m), atol=1e-13)

    def test_matches_scipy_r_up_to_signs(self, a100, rng):
        a = rng.standard_normal((30, 30))
        b, taus = factor_and_check(a100, [a])
        r_ours = np.triu(b.matrix(0))
        _q, r_ref = sla.qr(a)
        np.testing.assert_allclose(np.abs(np.diag(r_ours)),
                                   np.abs(np.diag(r_ref)), rtol=1e-10)

    @pytest.mark.parametrize("nb", [1, 4, 16, 64])
    def test_panel_width_invariance(self, a100, rng, nb):
        mats = [rng.standard_normal((37, 37)), rng.standard_normal((50, 9))]
        factor_and_check(a100, mats, nb=nb)

    def test_rank_deficient_column(self, a100, rng):
        a = rng.standard_normal((10, 5))
        a[:, 2] = 0.0  # zero column: tau = 0 there, QR still exact
        factor_and_check(a100, [a])


class TestEdgeCases:
    def test_empty_batch(self, a100):
        b = IrrBatch(a100, [], np.array([], dtype=np.int64),
                     np.array([], dtype=np.int64))
        taus = irr_geqrf(a100, b)
        assert len(taus) == 0

    def test_1x1(self, a100):
        b = IrrBatch.from_host(a100, [np.array([[-3.0]])])
        taus = irr_geqrf(a100, b)
        rec = qr_reconstruct(b.matrix(0), taus[0])
        assert rec[0, 0] == pytest.approx(-3.0)

    def test_invalid_panel_width(self, a100, rng):
        b = IrrBatch.from_host(a100, [rng.standard_normal((4, 4))])
        with pytest.raises(ValueError, match="panel width"):
            irr_geqrf(a100, b, nb=0)

    def test_workspace_freed(self, a100, rng):
        b = IrrBatch.from_host(a100, [rng.standard_normal((32, 32))])
        before = a100.allocated_bytes
        irr_geqrf(a100, b)
        assert a100.allocated_bytes == before

    def test_fp32(self, a100, rng):
        mats = [rng.standard_normal((24, 24)).astype(np.float32)]
        b = IrrBatch.from_host(a100, [m.copy() for m in mats])
        taus = irr_geqrf(a100, b)
        rec = qr_reconstruct(b.matrix(0).astype(np.float64), taus[0])
        assert np.abs(rec - mats[0]).max() < 1e-4


class TestLeastSquares:
    def test_overdetermined_solve(self, a100, rng):
        a = rng.standard_normal((60, 20))
        x_true = rng.standard_normal(20)
        bvec = a @ x_true
        b, taus = factor_and_check(a100, [a])
        x = qr_least_squares(b.matrix(0), taus[0], bvec)
        np.testing.assert_allclose(x, x_true, rtol=1e-9)

    def test_residual_orthogonal_to_range(self, a100, rng):
        a = rng.standard_normal((40, 10))
        bvec = rng.standard_normal(40)
        b, taus = factor_and_check(a100, [a])
        x = qr_least_squares(b.matrix(0), taus[0], bvec)
        r = bvec - a @ x
        assert np.abs(a.T @ r).max() < 1e-10

    def test_underdetermined_rejected(self, a100, rng):
        b, taus = factor_and_check(a100, [rng.standard_normal((5, 9))],
                                   tol=1e-11)
        with pytest.raises(ValueError, match="m >= n"):
            qr_least_squares(b.matrix(0), taus[0], np.zeros(5))


class TestCost:
    def test_flop_formula_square(self):
        n = 100.0
        assert geqrf_flops(n, n) == pytest.approx(4 * n ** 3 / 3, rel=1e-12)

    def test_single_launch_sequence_per_panel(self, a100, rng):
        mats = [rng.standard_normal((64, 64)) for _ in range(20)]
        b = IrrBatch.from_host(a100, mats)
        n0 = a100.profiler.launch_count
        irr_geqrf(a100, b, nb=32)
        launches = a100.profiler.launch_count - n0
        # 2 panels: [geqr2] + [geqr2+larft+3 trapezoid+2 gemm] = 8
        assert launches == 8

    def test_launch_count_independent_of_batch_size(self, rng):
        counts = []
        for bs in (3, 30):
            dev = Device(A100())
            mats = [np.eye(48) for _ in range(bs)]
            b = IrrBatch.from_host(dev, mats)
            irr_geqrf(dev, b)
            counts.append(dev.profiler.launch_count)
        assert counts[0] == counts[1]


class TestQrProperty:
    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.tuples(st.integers(1, 30), st.integers(1, 30)),
                    min_size=1, max_size=6),
           st.integers(0, 2 ** 31 - 1), st.integers(1, 20))
    def test_qr_reconstruction(self, shapes, seed, nb):
        rng = np.random.default_rng(seed)
        dev = Device(A100())
        mats = [rng.standard_normal(s) for s in shapes]
        b = IrrBatch.from_host(dev, [m.copy() for m in mats])
        taus = irr_geqrf(dev, b, nb=nb)
        for i, a in enumerate(mats):
            rec = qr_reconstruct(b.matrix(i), taus[i])
            assert np.abs(rec - a).max() < 1e-10 * max(1, np.abs(a).max())


class TestComplexQr:
    """Complex QR with the zlarfg/zgeqr2 reflector convention."""

    def make(self, rng, shapes):
        return [rng.standard_normal(s) + 1j * rng.standard_normal(s)
                for s in shapes]

    def test_reconstruction(self, a100, rng):
        mats = self.make(rng, [(5, 5), (40, 40), (30, 12), (12, 30)])
        b = IrrBatch.from_host(a100, [m.copy() for m in mats])
        taus = irr_geqrf(a100, b, nb=8)
        for i, a in enumerate(mats):
            rec = qr_reconstruct(b.matrix(i), taus[i])
            assert np.abs(rec - a).max() < 1e-12 * max(1, np.abs(a).max())

    def test_q_unitary(self, a100, rng):
        mats = self.make(rng, [(25, 25)])
        b = IrrBatch.from_host(a100, [m.copy() for m in mats])
        taus = irr_geqrf(a100, b)
        q = apply_q(b.matrix(0), taus[0], np.eye(25, dtype=np.complex128))
        np.testing.assert_allclose(q.conj().T @ q, np.eye(25), atol=1e-13)

    def test_r_diagonal_real(self, a100, rng):
        # the zlarfg convention produces a real beta on R's diagonal
        mats = self.make(rng, [(20, 20)])
        b = IrrBatch.from_host(a100, [m.copy() for m in mats])
        taus = irr_geqrf(a100, b, nb=4)
        d = np.diag(b.matrix(0))
        assert np.abs(d.imag).max() < 1e-12

    def test_complex_least_squares(self, a100, rng):
        a = self.make(rng, [(50, 10)])[0]
        x_true = rng.standard_normal(10) + 1j * rng.standard_normal(10)
        rhs = a @ x_true
        b = IrrBatch.from_host(a100, [a.copy()])
        taus = irr_geqrf(a100, b)
        x = qr_least_squares(b.matrix(0), taus[0], rhs)
        np.testing.assert_allclose(x, x_true, rtol=1e-9)

    def test_mixed_real_batch_unaffected(self, a100, rng):
        # the real path must be bit-compatible with the previous behaviour
        mats = [rng.standard_normal((16, 16))]
        b = IrrBatch.from_host(a100, [m.copy() for m in mats])
        taus = irr_geqrf(a100, b)
        assert taus[0].dtype == np.float64
        rec = qr_reconstruct(b.matrix(0), taus[0])
        assert np.abs(rec - mats[0]).max() < 1e-12
