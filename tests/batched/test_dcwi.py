"""Tests for the Dynamic Compute-Workload Inference layer."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.batched.dcwi import Workload, infer_extent, infer_gemm, \
    infer_gemm_batch, infer_matrix, infer_matrix_batch, infer_trsm, \
    infer_trsm_batch, op_shape, workload_code


class TestInferExtent:
    def test_full(self):
        assert infer_extent(10, 50, 0) == 10

    def test_partial(self):
        assert infer_extent(10, 7, 0) == 7

    def test_offset_consumes_local(self):
        assert infer_extent(10, 20, 15) == 5

    def test_exhausted_clamps_to_zero(self):
        assert infer_extent(10, 20, 25) == 0

    @given(st.integers(0, 100), st.integers(0, 100), st.integers(0, 200))
    def test_bounds_property(self, required, local, offset):
        e = infer_extent(required, local, offset)
        assert 0 <= e <= required
        assert e <= max(0, local - offset)


class TestInferMatrix:
    def test_full_workload(self):
        assert infer_matrix(5, 5, 20, 20, 0, 0) == (5, 5, Workload.FULL)

    def test_partial_workload(self):
        mi, ni, cls = infer_matrix(5, 5, 8, 8, 5, 5)
        assert (mi, ni) == (3, 3)
        assert cls is Workload.PARTIAL

    def test_none_workload(self):
        # The Fig 4 situation: a matrix already fully decomposed.
        _, _, cls = infer_matrix(5, 5, 8, 8, 10, 10)
        assert cls is Workload.NONE

    def test_one_exhausted_dim_is_none(self):
        _, _, cls = infer_matrix(5, 5, 8, 8, 2, 9)
        assert cls is Workload.NONE


class TestOpShape:
    def test_notrans(self):
        assert op_shape("N", 10, 6, 2, 1) == (8, 5)

    def test_trans_swaps_roles(self):
        # §IV-B: for op = T the offsets compare against swapped dims.
        assert op_shape("T", 10, 6, 2, 1) == (5, 8)

    def test_conjugate_treated_as_trans(self):
        assert op_shape("C", 10, 6, 0, 0) == (6, 10)

    def test_invalid_trans(self):
        with pytest.raises(ValueError):
            op_shape("X", 5, 5, 0, 0)

    def test_negative_clamps(self):
        assert op_shape("N", 3, 3, 5, 0) == (0, 3)


class TestInferGemm:
    def dims(self, m=4, n=4, k=4):
        return dict(m=m, n=n, k=k)

    def test_full(self):
        work, cls = infer_gemm("N", "N", 4, 4, 4,
                               (10, 10), (0, 0), (10, 10), (0, 0),
                               (10, 10), (0, 0))
        assert (work.m, work.n, work.k) == (4, 4, 4)
        assert cls is Workload.FULL

    def test_partial_k_from_a_columns(self):
        work, cls = infer_gemm("N", "N", 4, 4, 8,
                               (10, 6), (0, 0), (10, 10), (0, 0),
                               (10, 10), (0, 0))
        assert work.k == 6
        assert cls is Workload.PARTIAL

    def test_transposed_a_changes_inference(self):
        # Same matrix, same offsets; only the op flips — DCWI must compare
        # against (k, m) instead of (m, k).
        w_n, _ = infer_gemm("N", "N", 4, 4, 8,
                            (10, 6), (0, 0), (10, 10), (0, 0),
                            (10, 10), (0, 0))
        w_t, _ = infer_gemm("T", "N", 4, 4, 8,
                            (10, 6), (0, 0), (10, 10), (0, 0),
                            (10, 10), (0, 0))
        assert w_n.k == 6    # limited by A's 6 columns
        assert w_t.k == 8    # op(A) has 10 rows of k available
        assert w_t.m == 4

    def test_none_when_c_exhausted(self):
        _, cls = infer_gemm("N", "N", 4, 4, 4,
                            (10, 10), (0, 0), (10, 10), (0, 0),
                            (3, 3), (3, 3))
        assert cls is Workload.NONE

    def test_k_zero_is_partial_beta_scaling(self):
        work, cls = infer_gemm("N", "N", 4, 4, 4,
                               (10, 2), (0, 2), (10, 10), (0, 0),
                               (10, 10), (0, 0))
        assert work.k == 0
        assert cls is Workload.PARTIAL

    def test_flops(self):
        work, _ = infer_gemm("N", "N", 3, 4, 5,
                             (10, 10), (0, 0), (10, 10), (0, 0),
                             (10, 10), (0, 0))
        assert work.flops == 2 * 3 * 4 * 5

    @given(m=st.integers(0, 12), n=st.integers(0, 12), k=st.integers(0, 12),
           am=st.integers(0, 16), an=st.integers(0, 16),
           ai=st.integers(0, 20), aj=st.integers(0, 20))
    def test_inferred_dims_within_bounds(self, m, n, k, am, an, ai, aj):
        work, cls = infer_gemm("N", "N", m, n, k,
                               (am, an), (ai, aj), (16, 16), (0, 0),
                               (16, 16), (0, 0))
        assert 0 <= work.m <= m
        assert 0 <= work.n <= n
        assert 0 <= work.k <= min(k, max(0, an - aj))
        assert work.m <= max(0, am - ai)


class TestInferTrsm:
    def test_left_full(self):
        mi, ni, cls = infer_trsm("L", 4, 6, (10, 10), (0, 0),
                                 (10, 10), (0, 0))
        assert (mi, ni) == (4, 6)
        assert cls is Workload.FULL

    def test_left_order_limited_by_triangle(self):
        mi, ni, cls = infer_trsm("L", 8, 6, (10, 5), (0, 0),
                                 (10, 10), (0, 0))
        assert mi == 5  # triangle must fit in the stored submatrix
        assert cls is Workload.PARTIAL

    def test_right_order_limited_by_triangle(self):
        mi, ni, cls = infer_trsm("R", 6, 8, (5, 10), (0, 0),
                                 (10, 10), (0, 0))
        assert ni == 5
        assert cls is Workload.PARTIAL

    def test_none_when_b_exhausted(self):
        _, _, cls = infer_trsm("L", 4, 6, (10, 10), (0, 0),
                               (10, 10), (10, 0))
        assert cls is Workload.NONE

    def test_invalid_side(self):
        with pytest.raises(ValueError):
            infer_trsm("X", 4, 4, (8, 8), (0, 0), (8, 8), (0, 0))

    def test_offsets_shrink_order(self):
        mi, _, _ = infer_trsm("L", 8, 4, (10, 10), (7, 7), (10, 10), (7, 0))
        assert mi == 3


class TestGemmWorkCls:
    """Regression: ``GemmWork.cls`` used to be a property that returned
    PARTIAL for every nonempty workload — even when the inferred dims
    covered the whole required operation — so it could disagree with the
    classification ``infer_gemm`` itself returned."""

    def test_full_workload_is_full_not_partial(self):
        work, cls = infer_gemm("N", "N", 6, 6, 6, (6, 6), (0, 0),
                               (6, 6), (0, 0), (6, 6), (0, 0))
        assert cls is Workload.FULL
        assert work.cls is Workload.FULL  # the old property said PARTIAL

    def test_none_workload(self):
        work, cls = infer_gemm("N", "N", 4, 4, 4, (4, 4), (4, 0),
                               (4, 4), (0, 0), (4, 4), (0, 0))
        assert cls is Workload.NONE
        assert work.cls is Workload.NONE

    @given(st.integers(0, 8), st.integers(0, 8), st.integers(0, 8),
           st.integers(1, 10), st.integers(1, 10),
           st.integers(0, 10), st.integers(0, 10))
    def test_cls_always_agrees_with_returned_classification(
            self, m, n, k, am, an, ai, aj):
        work, cls = infer_gemm("N", "N", m, n, k, (am, an), (ai, aj),
                               (10, 10), (0, 0), (10, 10), (0, 0))
        assert work.cls is cls


class TestVectorizedBatchInference:
    """The ``*_batch`` functions must match the scalar reference
    element-for-element, including every edge the engine relies on."""

    # (local_m, local_n) per matrix: 0x0, 1x1, offsets landing exactly on
    # the local dim, offsets beyond it, and dims smaller than required.
    EDGE_LOCALS = [(0, 0), (1, 1), (5, 5), (5, 3), (3, 5), (8, 8),
                   (2, 7), (7, 2), (1, 8), (8, 1)]
    EDGE_CASES = [
        # (m, n, k, a_off, b_off, c_off)
        (5, 5, 5, (0, 0), (0, 0), (0, 0)),
        (5, 5, 5, (5, 0), (0, 0), (0, 0)),    # offset at local dim
        (5, 5, 5, (7, 7), (7, 7), (7, 7)),    # offset beyond local dim
        (8, 8, 8, (0, 0), (0, 0), (0, 0)),    # required > every local
        (12, 12, 12, (1, 1), (1, 1), (1, 1)),  # required > all, offset
        (1, 1, 1, (0, 0), (0, 0), (0, 0)),
        (5, 5, 0, (0, 0), (0, 0), (0, 0)),    # k == 0: beta-only
        (0, 5, 5, (0, 0), (0, 0), (0, 0)),    # zero required dim
        (5, 5, 5, (0, 3), (3, 0), (0, 0)),    # k clipped by offsets
    ]

    def _vecs(self):
        mv = np.array([m for m, _ in self.EDGE_LOCALS], dtype=np.int64)
        nv = np.array([n for _, n in self.EDGE_LOCALS], dtype=np.int64)
        return mv, nv

    @pytest.mark.parametrize("m,n,k,a_off,b_off,c_off", EDGE_CASES)
    @pytest.mark.parametrize("transa", ["N", "T", "C"])
    @pytest.mark.parametrize("transb", ["N", "T", "C"])
    def test_gemm_matches_scalar(self, m, n, k, a_off, b_off, c_off,
                                 transa, transb):
        mv, nv = self._vecs()
        mi, ni, ki, cls = infer_gemm_batch(transa, transb, m, n, k,
                                           mv, nv, a_off, mv, nv, b_off,
                                           mv, nv, c_off)
        for i, (lm, ln) in enumerate(self.EDGE_LOCALS):
            work, scls = infer_gemm(transa, transb, m, n, k,
                                    (lm, ln), a_off, (lm, ln), b_off,
                                    (lm, ln), c_off)
            assert (int(mi[i]), int(ni[i]), int(ki[i])) == \
                (work.m, work.n, work.k), (i, lm, ln)
            assert int(cls[i]) == workload_code(scls), (i, lm, ln)

    @pytest.mark.parametrize("m,n,a_off", [
        (5, 5, (0, 0)), (5, 5, (5, 5)), (5, 5, (9, 0)), (12, 12, (0, 0)),
        (1, 1, (0, 0)), (0, 4, (0, 0)), (12, 3, (2, 2)),
    ])
    def test_matrix_matches_scalar(self, m, n, a_off):
        mv, nv = self._vecs()
        mi, ni, cls = infer_matrix_batch(m, n, mv, nv, *a_off)
        for i, (lm, ln) in enumerate(self.EDGE_LOCALS):
            smi, sni, scls = infer_matrix(m, n, lm, ln, *a_off)
            assert (int(mi[i]), int(ni[i])) == (smi, sni), (i, lm, ln)
            assert int(cls[i]) == workload_code(scls), (i, lm, ln)

    @pytest.mark.parametrize("side", ["L", "R"])
    @pytest.mark.parametrize("m,n,t_off,b_off", [
        (5, 5, (0, 0), (0, 0)), (5, 5, (5, 0), (0, 0)),
        (5, 5, (0, 0), (7, 7)), (12, 12, (0, 0), (0, 0)),
        (1, 1, (0, 0), (0, 0)), (8, 3, (2, 2), (1, 0)),
        (3, 8, (2, 2), (0, 1)),
    ])
    def test_trsm_matches_scalar(self, side, m, n, t_off, b_off):
        mv, nv = self._vecs()
        mi, ni, cls = infer_trsm_batch(side, m, n, mv, nv, t_off,
                                       mv, nv, b_off)
        for i, (lm, ln) in enumerate(self.EDGE_LOCALS):
            smi, sni, scls = infer_trsm(side, m, n, (lm, ln), t_off,
                                        (lm, ln), b_off)
            assert (int(mi[i]), int(ni[i])) == (smi, sni), (i, lm, ln)
            assert int(cls[i]) == workload_code(scls), (i, lm, ln)

    @given(st.integers(0, 9), st.integers(0, 9), st.integers(0, 9),
           st.integers(0, 6), st.integers(0, 6),
           st.lists(st.tuples(st.integers(0, 8), st.integers(0, 8)),
                    min_size=1, max_size=12))
    def test_gemm_random_sweep(self, m, n, k, oi, oj, locals_):
        mv = np.array([a for a, _ in locals_], dtype=np.int64)
        nv = np.array([b for _, b in locals_], dtype=np.int64)
        off = (oi, oj)
        mi, ni, ki, cls = infer_gemm_batch("N", "T", m, n, k,
                                           mv, nv, off, mv, nv, off,
                                           mv, nv, (0, 0))
        for i, (lm, ln) in enumerate(locals_):
            work, scls = infer_gemm("N", "T", m, n, k, (lm, ln), off,
                                    (lm, ln), off, (lm, ln), (0, 0))
            assert (int(mi[i]), int(ni[i]), int(ki[i])) == \
                (work.m, work.n, work.k)
            assert int(cls[i]) == workload_code(scls)
