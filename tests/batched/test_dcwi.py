"""Tests for the Dynamic Compute-Workload Inference layer."""

import pytest
from hypothesis import given, strategies as st

from repro.batched.dcwi import Workload, infer_extent, infer_gemm, \
    infer_matrix, infer_trsm, op_shape


class TestInferExtent:
    def test_full(self):
        assert infer_extent(10, 50, 0) == 10

    def test_partial(self):
        assert infer_extent(10, 7, 0) == 7

    def test_offset_consumes_local(self):
        assert infer_extent(10, 20, 15) == 5

    def test_exhausted_clamps_to_zero(self):
        assert infer_extent(10, 20, 25) == 0

    @given(st.integers(0, 100), st.integers(0, 100), st.integers(0, 200))
    def test_bounds_property(self, required, local, offset):
        e = infer_extent(required, local, offset)
        assert 0 <= e <= required
        assert e <= max(0, local - offset)


class TestInferMatrix:
    def test_full_workload(self):
        assert infer_matrix(5, 5, 20, 20, 0, 0) == (5, 5, Workload.FULL)

    def test_partial_workload(self):
        mi, ni, cls = infer_matrix(5, 5, 8, 8, 5, 5)
        assert (mi, ni) == (3, 3)
        assert cls is Workload.PARTIAL

    def test_none_workload(self):
        # The Fig 4 situation: a matrix already fully decomposed.
        _, _, cls = infer_matrix(5, 5, 8, 8, 10, 10)
        assert cls is Workload.NONE

    def test_one_exhausted_dim_is_none(self):
        _, _, cls = infer_matrix(5, 5, 8, 8, 2, 9)
        assert cls is Workload.NONE


class TestOpShape:
    def test_notrans(self):
        assert op_shape("N", 10, 6, 2, 1) == (8, 5)

    def test_trans_swaps_roles(self):
        # §IV-B: for op = T the offsets compare against swapped dims.
        assert op_shape("T", 10, 6, 2, 1) == (5, 8)

    def test_conjugate_treated_as_trans(self):
        assert op_shape("C", 10, 6, 0, 0) == (6, 10)

    def test_invalid_trans(self):
        with pytest.raises(ValueError):
            op_shape("X", 5, 5, 0, 0)

    def test_negative_clamps(self):
        assert op_shape("N", 3, 3, 5, 0) == (0, 3)


class TestInferGemm:
    def dims(self, m=4, n=4, k=4):
        return dict(m=m, n=n, k=k)

    def test_full(self):
        work, cls = infer_gemm("N", "N", 4, 4, 4,
                               (10, 10), (0, 0), (10, 10), (0, 0),
                               (10, 10), (0, 0))
        assert (work.m, work.n, work.k) == (4, 4, 4)
        assert cls is Workload.FULL

    def test_partial_k_from_a_columns(self):
        work, cls = infer_gemm("N", "N", 4, 4, 8,
                               (10, 6), (0, 0), (10, 10), (0, 0),
                               (10, 10), (0, 0))
        assert work.k == 6
        assert cls is Workload.PARTIAL

    def test_transposed_a_changes_inference(self):
        # Same matrix, same offsets; only the op flips — DCWI must compare
        # against (k, m) instead of (m, k).
        w_n, _ = infer_gemm("N", "N", 4, 4, 8,
                            (10, 6), (0, 0), (10, 10), (0, 0),
                            (10, 10), (0, 0))
        w_t, _ = infer_gemm("T", "N", 4, 4, 8,
                            (10, 6), (0, 0), (10, 10), (0, 0),
                            (10, 10), (0, 0))
        assert w_n.k == 6    # limited by A's 6 columns
        assert w_t.k == 8    # op(A) has 10 rows of k available
        assert w_t.m == 4

    def test_none_when_c_exhausted(self):
        _, cls = infer_gemm("N", "N", 4, 4, 4,
                            (10, 10), (0, 0), (10, 10), (0, 0),
                            (3, 3), (3, 3))
        assert cls is Workload.NONE

    def test_k_zero_is_partial_beta_scaling(self):
        work, cls = infer_gemm("N", "N", 4, 4, 4,
                               (10, 2), (0, 2), (10, 10), (0, 0),
                               (10, 10), (0, 0))
        assert work.k == 0
        assert cls is Workload.PARTIAL

    def test_flops(self):
        work, _ = infer_gemm("N", "N", 3, 4, 5,
                             (10, 10), (0, 0), (10, 10), (0, 0),
                             (10, 10), (0, 0))
        assert work.flops == 2 * 3 * 4 * 5

    @given(m=st.integers(0, 12), n=st.integers(0, 12), k=st.integers(0, 12),
           am=st.integers(0, 16), an=st.integers(0, 16),
           ai=st.integers(0, 20), aj=st.integers(0, 20))
    def test_inferred_dims_within_bounds(self, m, n, k, am, an, ai, aj):
        work, cls = infer_gemm("N", "N", m, n, k,
                               (am, an), (ai, aj), (16, 16), (0, 0),
                               (16, 16), (0, 0))
        assert 0 <= work.m <= m
        assert 0 <= work.n <= n
        assert 0 <= work.k <= min(k, max(0, an - aj))
        assert work.m <= max(0, am - ai)


class TestInferTrsm:
    def test_left_full(self):
        mi, ni, cls = infer_trsm("L", 4, 6, (10, 10), (0, 0),
                                 (10, 10), (0, 0))
        assert (mi, ni) == (4, 6)
        assert cls is Workload.FULL

    def test_left_order_limited_by_triangle(self):
        mi, ni, cls = infer_trsm("L", 8, 6, (10, 5), (0, 0),
                                 (10, 10), (0, 0))
        assert mi == 5  # triangle must fit in the stored submatrix
        assert cls is Workload.PARTIAL

    def test_right_order_limited_by_triangle(self):
        mi, ni, cls = infer_trsm("R", 6, 8, (5, 10), (0, 0),
                                 (10, 10), (0, 0))
        assert ni == 5
        assert cls is Workload.PARTIAL

    def test_none_when_b_exhausted(self):
        _, _, cls = infer_trsm("L", 4, 6, (10, 10), (0, 0),
                               (10, 10), (10, 0))
        assert cls is Workload.NONE

    def test_invalid_side(self):
        with pytest.raises(ValueError):
            infer_trsm("X", 4, 4, (8, 8), (0, 0), (8, 8), (0, 0))

    def test_offsets_shrink_order(self):
        mi, _, _ = infer_trsm("L", 8, 4, (10, 10), (7, 7), (10, 10), (7, 0))
        assert mi == 3
