"""Chaos suite for the serving layer (``-m "chaos and serve"``).

The service contract under injected faults mirrors the pipeline-level
chaos contract, sharpened to *per-request* granularity:

- every submitted future resolves — with a result or a typed error
  (never a hang, never an untyped exception);
- a request that resolves successfully is **bitwise identical** to the
  same request run sequentially on a fault-free device (launch faults
  fire before numerics and transfer corruption is checksum-repaired, so
  survival implies exactness);
- a fault pinned to one kernel family fails only the requests that use
  that kernel — their batch neighbours and other request kinds are
  untouched; and
- device memory accounting returns to baseline, success or failure.

Schedules are pure functions of ``(seed, rules)``: a failing seed
reproduces exactly.
"""

import threading

import numpy as np
import pytest

from repro.device import A100, Device, FaultPlan, FaultRule
from repro.device.faults import PERSISTENT
from repro.errors import (CorruptionDetected, KernelLaunchError,
                          ResourceExhausted, TransferError)
from repro.serve import CoalescingPolicy, SolverService

pytestmark = [pytest.mark.chaos, pytest.mark.serve,
              pytest.mark.filterwarnings("error::RuntimeWarning")]

TYPED_FAILURES = (TransferError, ResourceExhausted, KernelLaunchError)
SEEDS = [3, 17, 101, 2024]
SIZES = [8, 20, 12, 8, 24, 16, 12, 5]


def storm(seed, p=0.02):
    """A transient-fault storm: every fault site misbehaves sometimes."""
    return FaultPlan([FaultRule("alloc", probability=p),
                      FaultRule("h2d", probability=p),
                      FaultRule("d2h", probability=p),
                      FaultRule("launch", probability=p),
                      FaultRule("stall", probability=p, stall=1e-4)],
                     seed=seed)


def dense(n, seed):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n))
    a += n * np.eye(n)
    return a


def traffic():
    mats = [dense(n, seed=i) for i, n in enumerate(SIZES)]
    rhss = [np.random.default_rng(100 + i).standard_normal(n)
            for i, n in enumerate(SIZES)]
    return mats, rhss


def fault_free_reference(mats, rhss):
    """Each request solo through the identical service code path."""
    svc = SolverService(Device(A100()),
                        policy=CoalescingPolicy(max_batch=1),
                        start=False)
    futs = [svc.submit_factor_solve(a, b) for a, b in zip(mats, rhss)]
    svc.run_once()
    out = [f.result(0) for f in futs]
    svc.close()
    return out


class TestServeStorm:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_inline_storm_isolates_per_request(self, seed):
        mats, rhss = traffic()
        ref = fault_free_reference(mats, rhss)

        dev = Device(A100())
        svc = SolverService(dev, policy=CoalescingPolicy(max_batch=4),
                            start=False)
        futs = [svc.submit_factor_solve(a, b)
                for a, b in zip(mats, rhss)]
        with dev.fault_scope(storm(seed)):
            svc.run_once()
        for fut, (x_ref, h_ref) in zip(futs, ref):
            err = fut.exception(0)
            if err is not None:
                assert isinstance(err, TYPED_FAILURES)
                continue
            x, h = fut.result(0)
            assert np.array_equal(x, x_ref)
            assert np.array_equal(h.lu, h_ref.lu)
        svc.close()
        assert dev.allocated_bytes == 0

    @pytest.mark.parametrize("seed", SEEDS)
    def test_live_concurrent_storm(self, seed):
        mats, rhss = traffic()
        ref = fault_free_reference(mats, rhss)

        dev = Device(A100())
        svc = SolverService(dev, policy=CoalescingPolicy(max_batch=8,
                                                         max_wait=5e-3))
        results = {}
        lock = threading.Lock()

        def client(i):
            fut = svc.submit_factor_solve(mats[i], rhss[i])
            try:
                got = fut.result(30.0)
            except TYPED_FAILURES as exc:
                got = exc
            with lock:
                results[i] = got

        with dev.fault_scope(storm(seed)):
            threads = [threading.Thread(target=client, args=(i,))
                       for i in range(len(mats))]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        svc.close()

        assert sorted(results) == list(range(len(mats)))
        for i, (x_ref, h_ref) in enumerate(ref):
            got = results[i]
            if isinstance(got, TYPED_FAILURES):
                continue                      # typed failure: in contract
            x, h = got
            assert np.array_equal(x, x_ref)
            assert np.array_equal(h.lu, h_ref.lu)
        snap = svc.stats.snapshot()
        assert snap["completed"] + snap["failed"] == len(mats)
        assert dev.allocated_bytes == 0


class TestFaultKindIsolation:
    def test_persistent_solve_fault_spares_factors(self):
        """A launch fault pinned to the ``irrgetrs`` kernel kills solve
        requests with a typed error while factor requests — dispatched
        through different kernels on the same device — keep succeeding
        bitwise."""
        mats, _ = traffic()
        ref = fault_free_reference(mats, [np.zeros(n) for n in SIZES])

        dev = Device(A100())
        svc = SolverService(dev, policy=CoalescingPolicy(max_batch=8),
                            start=False)
        handles = [svc.submit_factor(a) for a in mats[:3]]
        svc.run_once()
        handles = [f.result(0) for f in handles]

        plan = FaultPlan([FaultRule("launch", at=0, times=PERSISTENT,
                                    match="irrgetrs")], seed=0)
        with dev.fault_scope(plan):
            solves = [svc.submit_solve(h, np.ones(h.n))
                      for h in handles]
            factors = [svc.submit_factor(a) for a in mats[3:]]
            svc.run_once()

        for fut in solves:
            assert isinstance(fut.exception(0), KernelLaunchError)
        for fut, a, (_, h_ref) in zip(factors, mats[3:], ref[3:]):
            h = fut.result(0)
            assert np.array_equal(h.lu, h_ref.lu)
        # the poisoned kernel family left no residue: the same solves
        # succeed once the scope lifts
        x = svc.solve(handles[0], np.ones(handles[0].n))
        assert np.all(np.isfinite(x))
        svc.close()
        assert dev.allocated_bytes == 0

    @pytest.mark.parametrize("seed", SEEDS[:2])
    def test_transient_faults_recover_invisibly(self, seed):
        """A handful of positional transient faults (one retry each) are
        absorbed by the dispatch ladder: every request succeeds and the
        results are bitwise identical to the fault-free reference."""
        mats, rhss = traffic()
        ref = fault_free_reference(mats, rhss)

        dev = Device(A100())
        svc = SolverService(dev, policy=CoalescingPolicy(max_batch=4),
                            start=False)
        plan = FaultPlan([FaultRule("launch", at=1),
                          FaultRule("h2d", at=2),
                          FaultRule("d2h", at=0)], seed=seed)
        futs = [svc.submit_factor_solve(a, b)
                for a, b in zip(mats, rhss)]
        with dev.fault_scope(plan):
            svc.run_once()
        for fut, (x_ref, h_ref) in zip(futs, ref):
            x, h = fut.result(0)
            assert np.array_equal(x, x_ref)
            assert np.array_equal(h.lu, h_ref.lu)
        assert svc.stats.snapshot()["failed"] == 0
        svc.close()
        assert dev.allocated_bytes == 0


@pytest.mark.sdc
class TestServeCorruptionStorm:
    """Service-level SDC contract: every future resolves with either a
    result bitwise identical to the fault-free reference or a typed
    error; corruptions and re-executions are visible in the stats; a
    sustained storm opens the circuit breaker, and the breaker closes
    (compiled fast path resuming) once the faults clear."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_corrupt_storm_zero_undetected(self, seed):
        mats, rhss = traffic()
        ref = fault_free_reference(mats, rhss)
        dev = Device(A100())
        svc = SolverService(dev, policy=CoalescingPolicy(max_batch=4),
                            start=False)
        futs = [svc.submit_factor_solve(a, b)
                for a, b in zip(mats, rhss)]
        plan = FaultPlan([FaultRule("corrupt", probability=0.25)],
                         seed=seed)
        with dev.fault_scope(plan) as inj:
            svc.run_once()
        for fut, (x_ref, h_ref) in zip(futs, ref):
            err = fut.exception(0)
            if err is not None:
                assert isinstance(err, CorruptionDetected)
                continue
            x, h = fut.result(0)
            assert np.array_equal(x, x_ref)
            assert np.array_equal(h.lu, h_ref.lu)
        snap = svc.stats.snapshot()
        if inj.n_injected:
            assert snap["kernel_reexecs"] > 0
        svc.close()
        assert dev.allocated_bytes == 0

    def test_persistent_corruption_fails_typed_never_wrong(self):
        mats, rhss = traffic()
        dev = Device(A100())
        svc = SolverService(dev, policy=CoalescingPolicy(max_batch=4),
                            start=False)
        plan = FaultPlan([FaultRule("corrupt", at=0, times=PERSISTENT,
                                    match="irrgetf2")], seed=1)
        futs = [svc.submit_factor(a) for a in mats]
        with dev.fault_scope(plan):
            svc.run_once()
        # every future resolved: a handle that round-trips, or typed
        for fut, a in zip(futs, mats):
            err = fut.exception(0)
            if err is not None:
                assert isinstance(err, CorruptionDetected)
                continue
            h = fut.result(0)
            x = svc.solve(h, a @ np.ones(h.n))
            np.testing.assert_allclose(x, np.ones(h.n), atol=1e-8)
        snap = svc.stats.snapshot()
        assert snap["corruptions_detected"] > 0
        svc.close()
        assert dev.allocated_bytes == 0

    def test_breaker_opens_degrades_and_recloses(self):
        a = dense(48, 0)
        dev = Device(A100())
        pol = CoalescingPolicy(max_batch=4, compile_hot=True,
                               hot_threshold=2)
        svc = SolverService(dev, policy=pol, start=False)
        ref = svc.factor(a)

        def round_trip():
            fut = svc.submit_factor(a)
            svc.run_once()
            return fut.result(0)

        round_trip()
        assert svc.stats.snapshot()["compiled_dispatches"] >= 1

        # persistent corruption pinned to the compiled program's fused
        # replay steps: the compiled rung keeps failing, the bucketed
        # fallback (whose launches are not "fused[...]") stays clean
        plan = FaultPlan([FaultRule("corrupt", at=0, times=PERSISTENT,
                                    match="fused[")], seed=5)
        with dev.fault_scope(plan):
            for _ in range(10):
                h = round_trip()
                np.testing.assert_array_equal(h.lu, ref.lu)
            snap = svc.stats.snapshot()
            assert snap["breaker_state"] in ("open", "half-open")
            assert snap["corruptions_detected"] > 0
            assert snap["kernel_reexecs"] > 0
            assert snap["degraded_dispatches"] > 0
            assert snap["failed"] == 0
            assert "circuit breaker open" in snap["degraded_reason"]

        # faults clear: a half-open probe closes the breaker and the
        # compiled fast path resumes
        before = svc.stats.snapshot()["compiled_dispatches"]
        for _ in range(20):
            h = round_trip()
            np.testing.assert_array_equal(h.lu, ref.lu)
        snap = svc.stats.snapshot()
        assert snap["breaker_state"] == "closed"
        assert snap["degraded_reason"] is None
        assert snap["compiled_dispatches"] > before
        assert svc.breaker.probes >= 1
        svc.close()
        assert dev.allocated_bytes == 0

    def test_severity_two_steers_sparse_sessions_to_host(self):
        from ..sparse.util import grid2d
        dev = Device(A100())
        svc = SolverService(dev, start=False)
        # drive the breaker to severity 2 directly (the state machine
        # is unit-tested in tests/serve/test_health.py; here we check
        # the service honours it)
        for _ in range(8):
            svc.breaker.record(3)
        while not svc.breaker.force_host():
            svc.breaker.record(3)
        a = grid2d(9, 9)
        fut = svc.submit_factor(a)
        svc.run_once()
        session = fut.result(0)
        # the session factored on the host: no device kernels ran
        assert svc.breaker.force_host()
        b = np.ones(81)
        x, info = svc.solve(session, b)
        assert np.abs(a @ x - b).max() < 1e-10
        session.close()
        svc.close()
        assert dev.allocated_bytes == 0

