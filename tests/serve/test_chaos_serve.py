"""Chaos suite for the serving layer (``-m "chaos and serve"``).

The service contract under injected faults mirrors the pipeline-level
chaos contract, sharpened to *per-request* granularity:

- every submitted future resolves — with a result or a typed error
  (never a hang, never an untyped exception);
- a request that resolves successfully is **bitwise identical** to the
  same request run sequentially on a fault-free device (launch faults
  fire before numerics and transfer corruption is checksum-repaired, so
  survival implies exactness);
- a fault pinned to one kernel family fails only the requests that use
  that kernel — their batch neighbours and other request kinds are
  untouched; and
- device memory accounting returns to baseline, success or failure.

Schedules are pure functions of ``(seed, rules)``: a failing seed
reproduces exactly.
"""

import threading

import numpy as np
import pytest

from repro.device import A100, Device, FaultPlan, FaultRule
from repro.device.faults import PERSISTENT
from repro.errors import (KernelLaunchError, ResourceExhausted,
                          TransferError)
from repro.serve import CoalescingPolicy, SolverService

pytestmark = [pytest.mark.chaos, pytest.mark.serve,
              pytest.mark.filterwarnings("error::RuntimeWarning")]

TYPED_FAILURES = (TransferError, ResourceExhausted, KernelLaunchError)
SEEDS = [3, 17, 101, 2024]
SIZES = [8, 20, 12, 8, 24, 16, 12, 5]


def storm(seed, p=0.02):
    """A transient-fault storm: every fault site misbehaves sometimes."""
    return FaultPlan([FaultRule("alloc", probability=p),
                      FaultRule("h2d", probability=p),
                      FaultRule("d2h", probability=p),
                      FaultRule("launch", probability=p),
                      FaultRule("stall", probability=p, stall=1e-4)],
                     seed=seed)


def dense(n, seed):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n))
    a += n * np.eye(n)
    return a


def traffic():
    mats = [dense(n, seed=i) for i, n in enumerate(SIZES)]
    rhss = [np.random.default_rng(100 + i).standard_normal(n)
            for i, n in enumerate(SIZES)]
    return mats, rhss


def fault_free_reference(mats, rhss):
    """Each request solo through the identical service code path."""
    svc = SolverService(Device(A100()),
                        policy=CoalescingPolicy(max_batch=1),
                        start=False)
    futs = [svc.submit_factor_solve(a, b) for a, b in zip(mats, rhss)]
    svc.run_once()
    out = [f.result(0) for f in futs]
    svc.close()
    return out


class TestServeStorm:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_inline_storm_isolates_per_request(self, seed):
        mats, rhss = traffic()
        ref = fault_free_reference(mats, rhss)

        dev = Device(A100())
        svc = SolverService(dev, policy=CoalescingPolicy(max_batch=4),
                            start=False)
        futs = [svc.submit_factor_solve(a, b)
                for a, b in zip(mats, rhss)]
        with dev.fault_scope(storm(seed)):
            svc.run_once()
        for fut, (x_ref, h_ref) in zip(futs, ref):
            err = fut.exception(0)
            if err is not None:
                assert isinstance(err, TYPED_FAILURES)
                continue
            x, h = fut.result(0)
            assert np.array_equal(x, x_ref)
            assert np.array_equal(h.lu, h_ref.lu)
        svc.close()
        assert dev.allocated_bytes == 0

    @pytest.mark.parametrize("seed", SEEDS)
    def test_live_concurrent_storm(self, seed):
        mats, rhss = traffic()
        ref = fault_free_reference(mats, rhss)

        dev = Device(A100())
        svc = SolverService(dev, policy=CoalescingPolicy(max_batch=8,
                                                         max_wait=5e-3))
        results = {}
        lock = threading.Lock()

        def client(i):
            fut = svc.submit_factor_solve(mats[i], rhss[i])
            try:
                got = fut.result(30.0)
            except TYPED_FAILURES as exc:
                got = exc
            with lock:
                results[i] = got

        with dev.fault_scope(storm(seed)):
            threads = [threading.Thread(target=client, args=(i,))
                       for i in range(len(mats))]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        svc.close()

        assert sorted(results) == list(range(len(mats)))
        for i, (x_ref, h_ref) in enumerate(ref):
            got = results[i]
            if isinstance(got, TYPED_FAILURES):
                continue                      # typed failure: in contract
            x, h = got
            assert np.array_equal(x, x_ref)
            assert np.array_equal(h.lu, h_ref.lu)
        snap = svc.stats.snapshot()
        assert snap["completed"] + snap["failed"] == len(mats)
        assert dev.allocated_bytes == 0


class TestFaultKindIsolation:
    def test_persistent_solve_fault_spares_factors(self):
        """A launch fault pinned to the ``irrgetrs`` kernel kills solve
        requests with a typed error while factor requests — dispatched
        through different kernels on the same device — keep succeeding
        bitwise."""
        mats, _ = traffic()
        ref = fault_free_reference(mats, [np.zeros(n) for n in SIZES])

        dev = Device(A100())
        svc = SolverService(dev, policy=CoalescingPolicy(max_batch=8),
                            start=False)
        handles = [svc.submit_factor(a) for a in mats[:3]]
        svc.run_once()
        handles = [f.result(0) for f in handles]

        plan = FaultPlan([FaultRule("launch", at=0, times=PERSISTENT,
                                    match="irrgetrs")], seed=0)
        with dev.fault_scope(plan):
            solves = [svc.submit_solve(h, np.ones(h.n))
                      for h in handles]
            factors = [svc.submit_factor(a) for a in mats[3:]]
            svc.run_once()

        for fut in solves:
            assert isinstance(fut.exception(0), KernelLaunchError)
        for fut, a, (_, h_ref) in zip(factors, mats[3:], ref[3:]):
            h = fut.result(0)
            assert np.array_equal(h.lu, h_ref.lu)
        # the poisoned kernel family left no residue: the same solves
        # succeed once the scope lifts
        x = svc.solve(handles[0], np.ones(handles[0].n))
        assert np.all(np.isfinite(x))
        svc.close()
        assert dev.allocated_bytes == 0

    @pytest.mark.parametrize("seed", SEEDS[:2])
    def test_transient_faults_recover_invisibly(self, seed):
        """A handful of positional transient faults (one retry each) are
        absorbed by the dispatch ladder: every request succeeds and the
        results are bitwise identical to the fault-free reference."""
        mats, rhss = traffic()
        ref = fault_free_reference(mats, rhss)

        dev = Device(A100())
        svc = SolverService(dev, policy=CoalescingPolicy(max_batch=4),
                            start=False)
        plan = FaultPlan([FaultRule("launch", at=1),
                          FaultRule("h2d", at=2),
                          FaultRule("d2h", at=0)], seed=seed)
        futs = [svc.submit_factor_solve(a, b)
                for a, b in zip(mats, rhss)]
        with dev.fault_scope(plan):
            svc.run_once()
        for fut, (x_ref, h_ref) in zip(futs, ref):
            x, h = fut.result(0)
            assert np.array_equal(x, x_ref)
            assert np.array_equal(h.lu, h_ref.lu)
        assert svc.stats.snapshot()["failed"] == 0
        svc.close()
        assert dev.allocated_bytes == 0
