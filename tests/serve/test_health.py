"""Unit tests for the health monitor and dispatch circuit breaker.

The breaker is dispatch-clocked and lock-free: its whole contract is a
deterministic state machine over per-dispatch fault counts.  These
tests drive it directly — the service-level integration (stats keys,
degraded dispatch ladders) lives in ``test_chaos_serve.py``.
"""

import pytest

from repro.errors import ServiceDegraded
from repro.serve.health import (FAULT_ACTIONS, MAX_SEVERITY,
                                CircuitBreaker, HealthMonitor)

pytestmark = [pytest.mark.serve, pytest.mark.sdc,
              pytest.mark.filterwarnings("error::RuntimeWarning")]


class TestHealthMonitor:
    def test_validation(self):
        with pytest.raises(ValueError):
            HealthMonitor(window=0)

    def test_rate_counts_faulty_dispatches_not_events(self):
        mon = HealthMonitor(window=4)
        mon.observe(50)          # one pathological dispatch...
        mon.observe(0)
        mon.observe(0)
        mon.observe(0)
        # ...is one faulty dispatch out of four, not 50 events
        assert mon.fault_rate == pytest.approx(0.25)
        assert mon.faults_in_window == 50
        assert mon.total_faults == 50

    def test_window_slides(self):
        mon = HealthMonitor(window=2)
        mon.observe(1)
        mon.observe(1)
        assert mon.fault_rate == 1.0
        mon.observe(0)
        mon.observe(0)
        assert mon.fault_rate == 0.0        # faults slid out
        assert mon.total_faults == 2        # lifetime totals kept
        assert mon.observed == 4

    def test_reset_clears_window_keeps_totals(self):
        mon = HealthMonitor(window=8)
        for _ in range(5):
            mon.observe(2)
        mon.reset()
        assert len(mon) == 0
        assert mon.fault_rate == 0.0
        assert mon.total_faults == 10
        assert mon.observed == 5

    def test_empty_window_rate_is_zero(self):
        assert HealthMonitor().fault_rate == 0.0

    def test_negative_counts_clamped(self):
        mon = HealthMonitor()
        mon.observe(-3)
        assert mon.fault_rate == 0.0
        assert mon.total_faults == 0

    def test_fault_actions_cover_the_recovery_vocabulary(self):
        # the evidence set is resilience actions only — repair-side
        # memory bookkeeping must not feed the breaker
        assert "kernel-reexec" in FAULT_ACTIONS
        assert "transfer-retry" in FAULT_ACTIONS
        assert "front-quarantine" in FAULT_ACTIONS
        assert "cache-evict" not in FAULT_ACTIONS
        assert "chunk-shrink" not in FAULT_ACTIONS


class TestCircuitBreakerValidation:
    @pytest.mark.parametrize("kw", [dict(open_threshold=0.0),
                                    dict(open_threshold=1.5),
                                    dict(min_observations=0),
                                    dict(cooldown=0),
                                    dict(backoff=0.5)])
    def test_bad_params_raise(self, kw):
        with pytest.raises(ValueError):
            CircuitBreaker(**kw)


def trip(br, faults=1):
    """Feed faulty dispatches until the breaker opens."""
    n = 0
    while br.state == "closed":
        br.record(faults)
        n += 1
        assert n <= 1000, "breaker never opened"
    return n


class TestCircuitBreaker:
    def test_starts_closed_and_permissive(self):
        br = CircuitBreaker()
        assert br.state == "closed"
        assert br.allow_compiled()
        assert not br.force_host()
        assert not br.degraded
        assert br.last_degraded is None

    def test_min_observations_guards_startup(self):
        br = CircuitBreaker(min_observations=4)
        for _ in range(3):
            assert br.record(5) == "closed"   # rate 1.0 but untrusted
        assert br.record(5) == "open"         # 4th observation trips

    def test_opens_at_threshold_severity_one(self):
        br = CircuitBreaker(open_threshold=0.5, min_observations=4)
        br.record(0)
        br.record(1)
        br.record(0)
        assert br.state == "closed"
        br.record(1)                          # rate hits 2/4
        assert br.state == "open"
        assert br.severity == 1
        assert br.trips == 1
        assert not br.allow_compiled()
        assert not br.force_host()            # severity 1: compiled only
        deg = br.last_degraded
        assert isinstance(deg, ServiceDegraded)
        assert deg.fault_rate >= 0.5
        assert "severity 1" in str(deg)

    def test_cooldown_ticks_in_dispatches_then_half_open(self):
        br = CircuitBreaker(min_observations=1, cooldown=3)
        trip(br)
        assert br.record(7) == "open"         # open faults are not probes
        assert br.record(7) == "open"
        assert br.record(7) == "half-open"    # cooldown elapsed
        assert br.allow_compiled()            # the probe runs normally

    def test_clean_probe_closes_and_resets(self):
        br = CircuitBreaker(min_observations=1, cooldown=1)
        trip(br)
        br.record(0)                          # cooldown tick
        assert br.state == "half-open"
        assert br.record(0) == "closed"       # clean probe
        assert br.probes == 1
        assert br.severity == 0
        assert br.last_degraded is None
        assert len(br.monitor) == 0           # stale evidence dropped
        # cooldown is back to the initial value for the next storm
        trip(br)
        assert br.record(1) == "half-open"

    def test_faulty_probe_reopens_with_backoff_and_escalation(self):
        br = CircuitBreaker(min_observations=1, cooldown=2, backoff=2.0,
                            max_cooldown=8)
        trip(br)
        cooldowns = []
        for _ in range(4):                    # four failed probes
            while br.state == "open":
                br.record(1)
            assert br.state == "half-open"
            br.record(1)                      # probe sees a fault
            assert br.state == "open"
            cooldowns.append(br._cooldown)
        assert cooldowns == [4, 8, 8, 8]      # doubled, then capped
        assert br.severity == MAX_SEVERITY    # escalated and clamped
        assert br.force_host()
        assert "severity 2" in str(br.last_degraded)

    def test_probe_runs_normal_path_even_at_severity_two(self):
        br = CircuitBreaker(min_observations=1, cooldown=1)
        trip(br)
        br.record(1)          # cooldown
        br.record(1)          # failed probe -> severity 2
        assert br.severity == MAX_SEVERITY
        br.record(1)          # cooldown tick(s) toward next probe
        br.record(1)
        assert br.state == "half-open"
        # half-open must not steer to host: the probe has to exercise
        # the real device path to prove recovery
        assert not br.force_host()
        assert br.allow_compiled()

    def test_recovery_after_escalation(self):
        br = CircuitBreaker(min_observations=1, cooldown=1)
        trip(br)
        br.record(1)          # cooldown
        br.record(1)          # failed probe: severity 2, cooldown 2
        for _ in range(2):
            br.record(1)      # burn the doubled cooldown
        assert br.state == "half-open"
        assert br.record(0) == "closed"       # device recovered
        assert br.severity == 0
        assert not br.force_host()
        assert br.trips == 1                  # re-opens are not new trips

    def test_huge_min_observations_never_opens(self):
        # the bench uses this to build a no-breaker baseline
        br = CircuitBreaker(min_observations=10 ** 9)
        for _ in range(100):
            assert br.record(10) == "closed"
        assert br.allow_compiled()
