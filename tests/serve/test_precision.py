"""Per-request mixed precision through :class:`SolverService`.

``precision="fp32"`` requests carry half-sized payloads through the
coalescer and run the batched kernels in the working dtype; every
solution is finished by the service's FP64 refinement pass against the
caller's original matrix, so the answers handed back are full-precision
regardless of what the factors cost.  Reduced requests get their own
group keys (the ``"mixed"`` discriminator) — they never coalesce with
natively single-precision traffic — and a member whose refinement
stagnates is transparently re-factored in FP64, healing its handle in
place and bumping the ``precision_fallbacks`` counter.
"""

import numpy as np
import pytest

from repro.device import A100, Device
from repro.serve import CoalescingPolicy, ServeSession, SolverService
from repro.serve.scheduler import getrf_key, getrs_key
from repro.sparse.solver import REFINE_TARGET

from ..sparse.util import grid2d

pytestmark = pytest.mark.precision

RNG = np.random.default_rng(2024)


def dense_laplacian_sq(n):
    """Dense 1-D Laplacian squared: κ ~ (n/π)**4 defeats FP32-corrected
    refinement without troubling the FP64 fallback."""
    L = (np.diag(2.0 * np.ones(n)) - np.diag(np.ones(n - 1), 1)
         - np.diag(np.ones(n - 1), -1))
    return L @ L


def dense(n, dtype=np.float64, seed=None):
    rng = np.random.default_rng(seed) if seed is not None else RNG
    a = rng.standard_normal((n, n)) + n * np.eye(n)
    return a.astype(dtype)


def inline_service(device=None, **policy_kw):
    dev = device if device is not None else Device(A100())
    return SolverService(dev, policy=CoalescingPolicy(**policy_kw),
                         start=False)


def backward_error(a, x, b):
    return float(np.linalg.norm(b - a @ x) / np.linalg.norm(b))


class TestGroupKeys:
    def test_mixed_discriminator_separates_getrf(self):
        spec = A100()
        base = getrf_key(16, 16, np.float32, {}, spec, 0)
        mixed = getrf_key(16, 16, np.float32, {}, spec, 0, mixed=True)
        assert base != mixed and "mixed" in mixed

    def test_mixed_discriminator_separates_getrs(self):
        assert getrs_key(16, np.float32) != \
            getrs_key(16, np.float32, mixed=True)

    def test_mixed_and_native_f4_do_not_coalesce(self):
        svc = inline_service(max_batch=8)
        futs = [svc.submit_factor_solve(dense(12, seed=1),
                                        RNG.standard_normal(12),
                                        precision="fp32"),
                svc.submit_factor_solve(dense(12, np.float32, seed=2),
                                        RNG.standard_normal(12)
                                        .astype(np.float32))]
        assert svc.run_once() == 2             # separate launch groups
        for f in futs:
            f.result(0)
        svc.close()

    def test_invalid_precision_rejected_at_submit(self):
        svc = inline_service()
        with pytest.raises(ValueError, match="precision"):
            svc.submit_factor(dense(8), precision="fp16")
        svc.close()

    def test_unsupported_payload_dtype_rejected(self):
        svc = inline_service()
        with pytest.raises(ValueError, match="unsupported data type"):
            svc.submit_factor(np.ones((4, 4), dtype=np.int64))
        with pytest.raises(ValueError, match="unsupported data type"):
            svc.submit_factor(np.ones((4, 4), dtype=object))
        svc.close()


class TestDenseMixed:
    def test_coalesced_factor_solve_refines_to_fp64(self):
        sizes = [8, 24, 16, 33, 5]
        mats = [dense(n, seed=50 + n) for n in sizes]
        rhss = [np.random.default_rng(n).standard_normal(n)
                for n in sizes]
        svc = inline_service(max_batch=8)
        futs = [svc.submit_factor_solve(a, b, precision="fp32")
                for a, b in zip(mats, rhss)]
        assert svc.run_once() == 1             # still ONE mixed group
        for a, b, fut in zip(mats, rhss, futs):
            x, h = fut.result(0)
            assert x.dtype == np.float64
            assert backward_error(a, x, b) <= REFINE_TARGET
            assert h.precision == "fp32"
            assert h.lu.dtype == np.float32    # factors stay reduced
        snap = svc.stats.snapshot()
        assert snap["refine_passes"] >= len(sizes)
        assert snap["precision_fallbacks"] == 0
        svc.close()

    def test_handle_solve_runs_refinement(self):
        a = dense(20, seed=9)
        svc = inline_service()
        fh = svc.submit_factor(a, precision="fp32")
        svc.run_once()
        h = fh.result(0)
        assert h.precision == "fp32" and h.a_ref is not None
        b = RNG.standard_normal(20)
        fx = svc.submit_solve(h, b)
        svc.run_once()
        x = fx.result(0)
        assert x.dtype == np.float64
        assert backward_error(a, x, b) <= REFINE_TARGET
        svc.close()

    def test_complex_payload_reduces_to_complex64(self):
        n = 12
        a = dense(n) + 1j * RNG.standard_normal((n, n))
        b = RNG.standard_normal(n) + 1j * RNG.standard_normal(n)
        svc = inline_service()
        fut = svc.submit_factor_solve(a, b, precision="fp32")
        svc.run_once()
        x, h = fut.result(0)
        assert h.lu.dtype == np.complex64
        assert x.dtype == np.complex128
        assert backward_error(a, x, b) <= REFINE_TARGET
        svc.close()

    def test_stagnating_member_heals_to_fp64(self):
        """An ill-conditioned member defeats FP32 refinement; the
        service re-factors it alone in FP64, heals the handle and
        counts the fallback — while the healthy member of the same
        group refines normally."""
        bad = dense_laplacian_sq(120)
        good = dense(120, seed=3)
        rng = np.random.default_rng(11)
        b_bad, b_good = rng.standard_normal(120), rng.standard_normal(120)
        svc = inline_service(max_batch=8)
        f_bad = svc.submit_factor_solve(bad, b_bad, precision="fp32")
        f_good = svc.submit_factor_solve(good, b_good, precision="fp32")
        svc.run_once()
        x_bad, h_bad = f_bad.result(0)
        x_good, h_good = f_good.result(0)
        assert h_bad.precision == "fp64"       # healed in place
        assert h_bad.lu.dtype == np.float64
        assert h_good.precision == "fp32"
        assert backward_error(good, x_good, b_good) <= REFINE_TARGET
        # the fallback answer is the FP64 answer
        ref = inline_service(max_batch=1)
        rf = ref.submit_factor_solve(bad, b_bad)
        ref.run_once()
        x_ref, _ = rf.result(0)
        np.testing.assert_array_equal(x_bad, x_ref)
        assert svc.stats.snapshot()["precision_fallbacks"] >= 1
        ref.close()
        svc.close()

    def test_healed_handle_serves_fp64_solves(self):
        a = dense_laplacian_sq(120)
        b = np.random.default_rng(4).standard_normal(120)
        svc = inline_service()
        fut = svc.submit_factor_solve(a, b, precision="fp32")
        svc.run_once()
        _, h = fut.result(0)
        assert h.precision == "fp64"
        b2 = np.random.default_rng(5).standard_normal(120)
        fx = svc.submit_solve(h, b2)
        svc.run_once()
        x2 = fx.result(0)
        assert backward_error(a, x2, b2) < 1e-9   # native FP64 quality
        svc.close()


class TestCompiledMixed:
    def test_hot_mixed_signature_compiles_and_refines(self):
        sizes = [10, 18, 10]
        svc = inline_service(max_batch=8, compile_hot=True,
                             hot_threshold=2)
        for rnd in range(3):
            mats = [dense(n, seed=rnd * 10 + n) for n in sizes]
            rhss = [np.random.default_rng(rnd * 7 + n).standard_normal(n)
                    for n in sizes]
            futs = [svc.submit_factor_solve(a, b, precision="fp32")
                    for a, b in zip(mats, rhss)]
            svc.run_once()
            for a, b, fut in zip(mats, rhss, futs):
                x, h = fut.result(0)
                assert h.precision == "fp32"
                assert backward_error(a, x, b) <= REFINE_TARGET
        snap = svc.stats.snapshot()
        assert snap["programs_compiled"] == 1
        assert snap["compiled_dispatches"] >= 1
        svc.close()


class TestSparseMixed:
    def test_session_carries_precision(self):
        a = grid2d(10, 10)
        b = np.random.default_rng(8).standard_normal(100)
        svc = inline_service()
        fut = svc.submit_factor(a, precision="fp32")
        svc.run_once()
        sess = fut.result(0)
        assert isinstance(sess, ServeSession)
        assert sess.precision == "fp32"
        fx = svc.submit_solve(sess, b)
        svc.run_once()
        x, info = fx.result(0)
        assert info.precision == "fp32"
        assert info.final_residual <= REFINE_TARGET
        assert svc.stats.snapshot()["refine_passes"] >= 1
        sess.close()
        svc.close()

    def test_one_shot_sparse_mixed(self):
        a = grid2d(9, 9)
        b = np.random.default_rng(2).standard_normal(81)
        svc = inline_service()
        fut = svc.submit_factor_solve(a, b, precision="fp32")
        svc.run_once()
        x, info = fut.result(0)
        assert info.precision == "fp32"
        assert backward_error(a, x, b) <= REFINE_TARGET
        svc.close()

    def test_sparse_fallback_counted(self):
        import scipy.sparse as sp
        L = sp.diags([-1.0, 2.0, -1.0], [-1, 0, 1], shape=(120, 120),
                     format="csr")
        a = sp.csr_matrix(L @ L)
        b = np.random.default_rng(3).standard_normal(120)
        svc = inline_service()
        fut = svc.submit_factor(a, precision="fp32")
        svc.run_once()
        sess = fut.result(0)
        fx = svc.submit_solve(sess, b)
        svc.run_once()
        x, info = fx.result(0)
        assert info.fallback and info.precision == "fp64"
        assert sess.precision == "fp64"        # session healed too
        assert svc.stats.snapshot()["precision_fallbacks"] >= 1
        sess.close()
        svc.close()
