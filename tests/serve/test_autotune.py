"""Online autotuner, SLO-aware admission, hardened scheduler/stats layer.

Regression coverage for the five hardening fixes that ride with the
autotuner PR —

* ``autotune_getrf`` degrades (instead of crashing) when every candidate
  is infeasible, and only :class:`~repro.errors.InfeasibleConfig` is
  treated as "skip this candidate";
* :class:`~repro.serve.stats.ServiceStats` keeps a bounded dispatch ring
  while its derived aggregates stay exact over the full history;
* :class:`~repro.serve.stats.LatencyHistogram` is exact at bin edges and
  ``quantile(0.0)`` skips empty leading bins;
* :meth:`~repro.serve.scheduler.AdmissionQueue.collect` iterates (never
  recurses) under cancellation storms, and a purged head hands the wait
  anchor to the next request's *own* submit time;
* :meth:`~repro.serve.scheduler.ServiceFuture.result` raises a fresh,
  context-chained copy per waiter —

plus feature tests for the tentpole: hot-swappable dispatch policies,
SLO-aware hold budgets, the virtual-time traffic replay, and the
:class:`~repro.serve.autotune.OnlineAutotuner` decision loop
(hysteresis, swap, rollback, cooldown).
"""

import threading

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.batched.trsm import TRSM_BASE_NB
from repro.batched.tuning import (autotune_getrf, representative_orders,
                                  size_distribution_summary)
from repro.device import A100, Device
from repro.errors import (DeadlineExceeded, InfeasibleConfig,
                          RequestCancelled, ServiceOverloaded)
from repro.serve import (AutotuneConfig, CoalescingPolicy, DispatchPolicy,
                         LatencyHistogram, OnlineAutotuner, SolverService)
from repro.serve.autotune import Window, default_objective
from repro.serve.scheduler import (AdmissionQueue, Request, ServiceFuture,
                                   getrs_key)
from repro.serve.stats import DispatchRecord, ServiceStats
from repro.workloads import (RequestClass, TrafficMix, VirtualClock,
                             run_mix)

pytestmark = [pytest.mark.serve, pytest.mark.autotune]

RNG = np.random.default_rng(7)


def dense(n, dtype=np.float64, seed=None):
    rng = np.random.default_rng(seed) if seed is not None else RNG
    a = rng.standard_normal((n, n)) + n * np.eye(n)
    return a.astype(dtype)


def inline_service(device=None, **policy_kw):
    dev = device if device is not None else Device(A100())
    return SolverService(dev, policy=CoalescingPolicy(**policy_kw),
                         start=False)


def fresh_queue(clock=None):
    stats = ServiceStats()
    q = AdmissionQueue(stats, clock=clock) if clock is not None \
        else AdmissionQueue(stats)
    return q, stats


# ----------------------------------------------------------------------
# satellite 1: autotune_getrf degrades on all-infeasible grids
# ----------------------------------------------------------------------
class TestTunerInfeasibility:
    #: 400×400 with a forced 64-wide fused panel needs 400·64·8 =
    #: 204 800 shared bytes > the A100 model's per-block limit.
    BIG = 400

    def test_all_candidates_infeasible_degrades_to_default(self):
        mats = [dense(self.BIG, seed=1)]
        result = autotune_getrf(
            A100(), mats, sample_size=1,
            candidates=[{"panel": "fused", "nb": 64},
                        {"panel": "fused", "nb": 128}])
        assert result.exhausted
        assert result.trials == []
        assert result.best == {"nb": "auto", "laswp_variant": "rehearsed",
                               "concurrent_swaps": False}
        assert result.infeasible == [{"panel": "fused", "nb": 64},
                                     {"panel": "fused", "nb": 128}]
        # degraded result still ranks as "no speedup measured"
        assert result.speedup_over_worst() == 1.0

    def test_infeasible_candidates_skipped_not_fatal(self):
        mats = [dense(self.BIG, seed=2)]
        result = autotune_getrf(
            A100(), mats, sample_size=1,
            candidates=[{"panel": "fused", "nb": 64},
                        {"panel": "columnwise", "nb": 32}])
        assert not result.exhausted
        assert result.best == {"panel": "columnwise", "nb": 32}
        assert result.infeasible == [{"panel": "fused", "nb": 64}]
        assert len(result.trials) == 1

    def test_argument_bugs_still_propagate(self):
        # a malformed candidate is a bug, not an infeasibility — it must
        # raise, never be silently recorded as "skipped"
        with pytest.raises(ValueError, match="unknown panel mode"):
            autotune_getrf(A100(), [dense(16, seed=3)], sample_size=1,
                           candidates=[{"panel": "bogus"}])

    def test_infeasible_is_a_valueerror_subclass(self):
        # backward compatibility: callers catching ValueError still work
        assert issubclass(InfeasibleConfig, ValueError)


class TestRepresentativeOrders:
    def test_draws_span_the_summary(self):
        orders = [8, 12, 16, 16, 24, 48, 96]
        summary = size_distribution_summary(orders, orders)
        draws = representative_orders(summary, count=64, seed=5)
        assert len(draws) == 64
        assert all(summary["min"] <= d <= summary["max"] for d in draws)
        # deterministic under a fixed seed
        assert draws == representative_orders(summary, count=64, seed=5)

    def test_degenerate_summary(self):
        summary = size_distribution_summary([16] * 4, [16] * 4)
        assert representative_orders(summary, count=6) == [16] * 6


# ----------------------------------------------------------------------
# satellite 2: bounded dispatch history with exact aggregates
# ----------------------------------------------------------------------
class TestStatsRing:
    def test_ring_bounds_history_but_aggregates_stay_exact(self):
        s = ServiceStats(dispatch_history=4)
        for i in range(10):
            s.on_dispatch(DispatchRecord(
                kind="getrf", batch_size=i + 1, launches=3,
                occupancy=0.5, retries=i % 2, isolated=(i == 0),
                sim_seconds=1e-3), [2e-4])
        # the ring keeps only the newest 4 records...
        assert len(s.dispatches) == 4
        assert [r.batch_size for r in s.dispatches] == [7, 8, 9, 10]
        # ...while every derived number covers all 10 dispatches
        assert s.coalescing_ratio == pytest.approx(55 / 10)
        assert s.mean_occupancy == pytest.approx(0.5)
        snap = s.snapshot()
        assert snap["dispatches"] == 10
        assert snap["coalesced_requests"] == 55
        assert snap["launches"] == 30
        assert snap["retries"] == 5
        assert snap["isolated_dispatches"] == 1
        assert snap["sim_seconds"] == pytest.approx(1e-2)
        assert snap["wait"]["count"] == 10

    def test_dispatches_returns_a_snapshot(self):
        s = ServiceStats(dispatch_history=8)
        s.on_dispatch(DispatchRecord("getrf", 1, 3, 1.0, 0, False), [])
        view = s.dispatches
        view.clear()
        assert len(s.dispatches) == 1

    def test_history_bound_validated(self):
        with pytest.raises(ValueError, match="dispatch_history"):
            ServiceStats(dispatch_history=0)


# ----------------------------------------------------------------------
# satellite 3: histogram bin edges and quantile(0.0)
# ----------------------------------------------------------------------
class TestLatencyHistogram:
    def test_samples_on_a_bin_edge_stay_in_that_bin(self):
        h = LatencyHistogram()
        # the old float-log index pushed exact-edge samples (4 µs, 16 µs,
        # ...) one bin too high
        for b in range(h.NBINS - 1):
            assert h.bin_index(h.bin_edge(b)) == b
            assert h.bin_index(np.nextafter(h.bin_edge(b), np.inf)) == b + 1

    def test_subbase_and_overflow_clamp(self):
        h = LatencyHistogram()
        assert h.bin_index(0.0) == 0
        assert h.bin_index(h.BASE / 2) == 0
        assert h.bin_index(1e9) == h.NBINS - 1

    def test_quantile_zero_skips_empty_leading_bins(self):
        h = LatencyHistogram()
        h.record(1.0)
        # the smallest observed latency class, not the first bin's edge
        assert h.quantile(0.0) == h.bin_edge(h.bin_index(1.0))
        assert h.quantile(0.0) > 0.5

    def test_quantiles_rank_correctly(self):
        h = LatencyHistogram()
        for _ in range(99):
            h.record(1e-5)
        h.record(1.0)
        low_edge = h.bin_edge(h.bin_index(1e-5))
        assert h.quantile(0.5) == low_edge
        assert h.quantile(0.99) == low_edge
        assert h.quantile(1.0) == h.bin_edge(h.bin_index(1.0))
        with pytest.raises(ValueError):
            h.quantile(1.5)

    @given(st.floats(min_value=0.0, max_value=1e3, allow_nan=False))
    @settings(max_examples=200, deadline=None)
    def test_bin_invariant(self, seconds):
        h = LatencyHistogram()
        b = h.bin_index(seconds)
        assert 0 <= b < h.NBINS
        assert seconds <= h.bin_edge(b)
        if b > 0:
            assert seconds > h.bin_edge(b - 1)

    @given(st.lists(st.floats(min_value=0.0, max_value=1e2,
                              allow_nan=False), min_size=1, max_size=40),
           st.floats(min_value=0.0, max_value=1.0),
           st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=100, deadline=None)
    def test_quantile_monotone(self, samples, q1, q2):
        h = LatencyHistogram()
        for s in samples:
            h.record(s)
        lo, hi = sorted((q1, q2))
        assert h.quantile(lo) <= h.quantile(hi)


# ----------------------------------------------------------------------
# satellite 4: iterative collect + wait anchors
# ----------------------------------------------------------------------
class TestAdmissionHardening:
    KEY = ("getrf", "<f8", ())

    def request(self, clock=None, slo=None, deadline=None, key=None):
        kw = {"slo": slo}
        if clock is not None:
            kw["clock"] = clock
        return Request("factor", key or self.KEY, {}, deadline, **kw)

    def test_cancellation_storm_does_not_recurse(self):
        q, stats = fresh_queue()
        policy = CoalescingPolicy(max_batch=1, max_queue=4096)
        reqs = [self.request() for _ in range(1500)]
        for r in reqs:
            q.push(r, policy.max_queue)
        for r in reqs:
            assert r.future.cancel()
        # Simulate every cancellation landing *after* the purge pass so
        # the per-member claim race is the only guard — the recursive
        # collect unwound one stack frame pair per lost group and blew
        # the default 1000-frame limit well before 1500 requests.
        q._purge_locked = lambda now: None
        assert q.collect(policy, block=False) is None
        assert len(q) == 0
        assert stats.cancelled == 1500

    def test_cancelled_requests_never_dispatch(self):
        q, stats = fresh_queue()
        policy = CoalescingPolicy(max_batch=64, max_wait=10.0,
                                  max_queue=256)
        reqs = [self.request() for _ in range(50)]
        for r in reqs:
            q.push(r, policy.max_queue)
        for r in reqs[::2]:
            r.future.cancel()
        got = q.collect(policy, block=False)
        assert got == reqs[1::2]
        assert stats.cancelled == 25
        for r in got:
            assert not r.future.done()

    def test_wait_anchor_survives_head_cancellation(self):
        clock = VirtualClock()
        q, stats = fresh_queue(clock=clock)
        policy = CoalescingPolicy(max_batch=8, max_wait=2e-3,
                                  max_queue=256)
        r1 = self.request(clock=clock)          # t_submit = 0
        clock.advance(1e-3)
        r2 = self.request(clock=clock)          # t_submit = 1 ms
        q.push(r1, policy.max_queue)
        q.push(r2, policy.max_queue)
        assert q.next_ripe(policy, clock.now) == pytest.approx(2e-3)

        r1.future.cancel()
        # r2 is not ripe at 2.5 ms: its budget anchors at its OWN submit
        # time (1 ms + 2 ms = 3 ms), it neither inherits r1's elapsed
        # wait nor restarts from the adoption instant
        assert q.collect_ready(policy, 2.5e-3) is None
        assert stats.cancelled == 1
        assert q.next_ripe(policy, 2.5e-3) == pytest.approx(3e-3)
        assert q.collect_ready(policy, 3e-3) == [r2]

    def test_blocking_collect_recovers_after_head_cancellation(self):
        q, _ = fresh_queue()
        policy = CoalescingPolicy(max_batch=8, max_wait=0.25,
                                  max_queue=256)
        r1 = self.request()
        r2 = self.request()
        q.push(r1, policy.max_queue)
        q.push(r2, policy.max_queue)
        out = []
        t = threading.Thread(
            target=lambda: out.append(q.collect(policy)))
        t.start()
        r1.future.cancel()
        q.kick()
        t.join(timeout=5.0)
        assert not t.is_alive()
        assert out == [[r2]]

    def test_slo_caps_hold_budget_without_dropping_work(self):
        clock = VirtualClock()
        q, stats = fresh_queue(clock=clock)
        policy = CoalescingPolicy(max_batch=8, max_wait=10e-3,
                                  max_queue=256, slo_hold_fraction=0.5)
        r = self.request(clock=clock, slo=4e-3)
        q.push(r, policy.max_queue)
        # hold capped at 0.5 · slo = 2 ms, well under max_wait
        assert q.next_ripe(policy, 0.0) == pytest.approx(2e-3)
        got = q.collect_ready(policy, 2e-3)
        assert got == [r]                # dispatched, never expired
        assert stats.expired == 0

    def test_no_slo_uses_full_policy_budget(self):
        clock = VirtualClock()
        q, _ = fresh_queue(clock=clock)
        policy = CoalescingPolicy(max_batch=8, max_wait=10e-3,
                                  max_queue=256)
        q.push(self.request(clock=clock), policy.max_queue)
        assert q.next_ripe(policy, 0.0) == pytest.approx(10e-3)

    def test_deadline_still_hard(self):
        clock = VirtualClock()
        q, stats = fresh_queue(clock=clock)
        policy = CoalescingPolicy(max_batch=8, max_wait=50e-3,
                                  max_queue=256)
        r = self.request(clock=clock, slo=1.0, deadline=1e-3)
        q.push(r, policy.max_queue)
        assert q.collect_ready(policy, 2e-3) is None
        assert stats.expired == 1
        with pytest.raises(DeadlineExceeded):
            r.future.result(0)


# ----------------------------------------------------------------------
# satellite 5: per-waiter exception copies
# ----------------------------------------------------------------------
class TestFutureExceptionIsolation:
    def test_each_waiter_gets_a_fresh_copy(self):
        fut = ServiceFuture("factor")
        original = DeadlineExceeded(0.1, 0.25)
        fut._resolve(error=original)

        with pytest.raises(DeadlineExceeded) as exc1:
            fut.result(0)
        with pytest.raises(DeadlineExceeded) as exc2:
            fut.result(0)
        assert exc1.value is not original
        assert exc1.value is not exc2.value
        assert exc1.value.__traceback__ is not exc2.value.__traceback__
        # copies chain to — and faithfully mirror — the original
        assert exc1.value.__cause__ is original
        assert exc2.value.__cause__ is original
        assert exc1.value.args == original.args
        assert exc1.value.deadline == 0.1
        assert exc1.value.waited == 0.25
        # the stored original is never mutated by a waiter's raise
        assert fut.exception() is original
        assert original.__traceback__ is None

    def test_concurrent_waiters_see_distinct_tracebacks(self):
        fut = ServiceFuture("solve")
        fut._resolve(error=RequestCancelled("queued request cancelled"))
        caught = []
        barrier = threading.Barrier(2)

        def waiter():
            barrier.wait()
            try:
                fut.result(0)
            except RequestCancelled as err:
                caught.append(err)

        threads = [threading.Thread(target=waiter) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(caught) == 2
        assert caught[0] is not caught[1]
        assert caught[0].__traceback__ is not caught[1].__traceback__

    def test_multiarg_exceptions_copy_cleanly(self):
        # ServiceOverloaded's two-positional-arg __init__ breaks naive
        # re-instantiation (cls(*args) is fine, cls() is not) — the copy
        # path must not call __init__ at all
        fut = ServiceFuture("factor")
        fut._resolve(error=ServiceOverloaded(9, 8))
        with pytest.raises(ServiceOverloaded) as exc:
            fut.result(0)
        assert exc.value.args == fut.exception().args
        assert exc.value.__cause__ is fut.exception()


# ----------------------------------------------------------------------
# tentpole: pluggable, hot-swappable dispatch policies
# ----------------------------------------------------------------------
class TestPolicyHotSwap:
    def test_coalescing_policy_satisfies_protocol(self):
        assert isinstance(CoalescingPolicy(), DispatchPolicy)
        p = CoalescingPolicy(max_batch=4, max_wait=1e-3)
        assert p.group_limit(("getrf",)) == 4
        assert p.wait_budget(("getrf",)) == 1e-3
        assert p.replace(max_batch=8).max_batch == 8
        assert "trsm_class_cutoff" in p.describe()

    def test_policy_validation(self):
        with pytest.raises(ValueError, match="panel_regime"):
            CoalescingPolicy(panel_regime="fused")
        with pytest.raises(ValueError, match="trsm_class_cutoff"):
            CoalescingPolicy(trsm_class_cutoff=0)
        with pytest.raises(ValueError, match="trsm_class_cutoff"):
            CoalescingPolicy(trsm_class_cutoff=TRSM_BASE_NB + 1)
        with pytest.raises(ValueError, match="slo_hold_fraction"):
            CoalescingPolicy(slo_hold_fraction=0.0)

    def test_set_policy_rejects_non_policies(self):
        svc = inline_service()
        with pytest.raises(TypeError):
            svc.set_policy(object())
        svc.close()

    def test_hot_swap_preserves_queued_work_and_bits(self):
        sizes = [8, 24, 16, 8, 12, 20]
        mats = [dense(n, seed=200 + i) for i, n in enumerate(sizes)]
        rhss = [np.random.default_rng(300 + i).standard_normal(n)
                for i, n in enumerate(sizes)]

        ref_svc = inline_service(max_batch=1)
        ref = [ref_svc.submit_factor_solve(a, b)
               for a, b in zip(mats, rhss)]
        ref_svc.run_once()
        ref = [f.result(0) for f in ref]
        ref_svc.close()

        svc = inline_service(max_batch=1)
        futs = [svc.submit_factor_solve(a, b)
                for a, b in zip(mats, rhss)]
        old = svc.set_policy(svc.policy.replace(max_batch=8))
        assert old.max_batch == 1
        assert svc.policy.max_batch == 8
        assert svc.stats.policy_swaps == 1
        # the queued six now coalesce into ONE dispatch under the new
        # policy — nothing was dropped by the swap — and stay bitwise
        # equal to the solo reference
        assert svc.run_once() == 1
        for fut, (x_ref, h_ref) in zip(futs, ref):
            x, h = fut.result(0)
            assert np.array_equal(x, x_ref)
            assert np.array_equal(h.lu, h_ref.lu)
        svc.close()

    def test_policy_property_setter_swaps(self):
        svc = inline_service(max_wait=2e-3)
        svc.policy = svc.policy.replace(max_wait=0.0)
        assert svc.policy.max_wait == 0.0
        assert svc.stats.policy_swaps == 1
        svc.close()

    def test_panel_regime_is_bitwise_neutral(self):
        mats = [dense(n, seed=400 + n) for n in (8, 24, 40, 16)]
        rhss = [np.random.default_rng(500 + n).standard_normal(n)
                for n in (8, 24, 40, 16)]

        results = {}
        for regime in (None, "columnwise"):
            svc = inline_service(max_batch=8, panel_regime=regime)
            futs = [svc.submit_factor_solve(a, b)
                    for a, b in zip(mats, rhss)]
            svc.run_once()
            results[regime] = [f.result(0) for f in futs]
            svc.close()
        for (x0, h0), (x1, h1) in zip(results[None],
                                      results["columnwise"]):
            assert np.array_equal(x0, x1)
            assert np.array_equal(h0.lu, h1.lu)
            assert np.array_equal(h0.ipiv, h1.ipiv)

    def test_trsm_cutoff_regroups_solves_without_changing_bits(self):
        orders = (8, 20)
        mats = [dense(n, seed=600 + n) for n in orders]
        rhss = [np.random.default_rng(700 + n).standard_normal(n)
                for n in orders]

        def solve_all(cutoff):
            svc = inline_service(max_batch=8, max_wait=0.0,
                                 trsm_class_cutoff=cutoff)
            handles = [svc.submit_factor(a) for a in mats]
            svc.run_once()
            handles = [f.result(0) for f in handles]
            before = svc.stats.dispatch_count
            futs = [svc.submit_solve(h, b)
                    for h, b in zip(handles, rhss)]
            svc.run_once()
            xs = [f.result(0) for f in futs]
            n_solve_dispatches = svc.stats.dispatch_count - before
            svc.close()
            return xs, n_solve_dispatches

        wide, n_wide = solve_all(TRSM_BASE_NB)    # one shared class
        narrow, n_narrow = solve_all(4)           # exact-order classes
        assert n_wide == 1
        assert n_narrow == 2
        for x0, x1 in zip(wide, narrow):
            assert np.array_equal(x0, x1)

    def test_getrs_key_cutoff_semantics(self):
        f8 = np.float64
        assert getrs_key(8, f8, cutoff=32) == getrs_key(20, f8, cutoff=32)
        assert getrs_key(8, f8, cutoff=4) != getrs_key(20, f8, cutoff=4)
        # cutoffs are clamped to the base-kernel range
        assert getrs_key(8, f8, cutoff=10 * TRSM_BASE_NB) == \
            getrs_key(8, f8, cutoff=TRSM_BASE_NB)


# ----------------------------------------------------------------------
# tentpole: virtual-time traffic replay
# ----------------------------------------------------------------------
def mini_mix(arrival="poisson", count=40, **kw):
    classes = (RequestClass("mini", "factor_solve", 8, 16,
                            weight=1.0, slo=2e-2),)
    defaults = dict(rate=2000.0, clients=4, think_time=2e-3)
    defaults.update(kw)
    return TrafficMix(name=f"mini-{arrival}", classes=classes,
                      count=count, arrival=arrival, **defaults)


class TestTrafficReplay:
    def test_replay_is_deterministic(self):
        mix = mini_mix()
        r1 = run_mix(mix, seed=3)
        r2 = run_mix(mix, seed=3)
        assert r1.makespan == r2.makespan
        assert r1.dispatches == r2.dispatches
        assert r1.completed == r2.completed == mix.count
        for a, b in zip(r1.results, r2.results):
            assert np.array_equal(a, b)

    def test_policies_see_identical_payloads_and_match_bitwise(self):
        mix = mini_mix()
        solo = run_mix(mix, seed=5,
                       policy=CoalescingPolicy(max_batch=1, max_wait=0.0))
        coal = run_mix(mix, seed=5,
                       policy=CoalescingPolicy(max_batch=32,
                                               max_wait=5e-3))
        assert solo.completed == coal.completed == mix.count
        assert coal.dispatches < solo.dispatches   # coalescing happened
        for a, b in zip(solo.results, coal.results):
            assert np.array_equal(a, b)

    def test_closed_loop_completes_all_requests(self):
        mix = mini_mix(arrival="closed", count=24)
        res = run_mix(mix, seed=9)
        assert res.completed == 24
        assert res.rejected == 0
        assert res.slo_met() is not None      # per-class report exists
        assert set(res.per_class) == {"mini"}

    def test_burst_arrivals_replay(self):
        mix = mini_mix(arrival="burst", count=32, rate=400.0,
                       burst_factor=25.0, burst_period=5e-2,
                       storm_len=5e-3)
        res = run_mix(mix, seed=2)
        assert res.completed == 32
        assert res.per_class["mini"]["count"] == 32

    def test_autotuned_replay_keeps_parity(self):
        mix = mini_mix(count=64)
        base = CoalescingPolicy(max_queue=4096)
        static = run_mix(mix, policy=base, seed=11)
        cfg = AutotuneConfig(min_requests=8, min_dispatches=2)
        tuned = run_mix(
            mix, policy=base, seed=11, tune_every=5e-3,
            autotuner=lambda svc, clock: OnlineAutotuner(
                svc, clock=clock, config=cfg, seed=11))
        assert tuned.tuner is not None
        assert tuned.tuner["windows"] > 0
        assert tuned.completed == static.completed == mix.count
        # tuning changes launch shapes, never bits
        for a, b in zip(static.results, tuned.results):
            assert np.array_equal(a, b)


# ----------------------------------------------------------------------
# tentpole: the online tuner's decision loop
# ----------------------------------------------------------------------
def make_window(**kw):
    defaults = dict(seconds=0.1, sim_seconds=0.09, submitted=50,
                    completed=50, failed=0, expired=0, rejected=0,
                    dispatches=10, coalesced=100, launches=40,
                    occupancy=0.8, wait_p50=1e-3, wait_p99=1e-3,
                    exec_p50=1e-3, compiled_dispatches=0,
                    compiled_fallbacks=0, queue_depth=0, orders={})
    defaults.update(kw)
    return Window(**defaults)


class TestOnlineAutotuner:
    CFG = AutotuneConfig(min_requests=1, min_dispatches=1, hysteresis=2,
                         cooldown=2, rollback_tolerance=0.15,
                         regime_trial_every=10_000)

    def tuner_with_windows(self, svc, windows):
        tuner = OnlineAutotuner(svc, config=self.CFG)
        it = iter(windows)
        tuner._observe = lambda: next(it)
        return tuner

    def test_window_derived_rates(self):
        w = make_window(seconds=0.5, submitted=100, completed=80,
                        dispatches=20, coalesced=60, sim_seconds=0.25)
        assert w.arrival_rate == pytest.approx(200.0)
        assert w.throughput == pytest.approx(160.0)
        assert w.mean_group == pytest.approx(3.0)
        assert w.utilization == pytest.approx(0.5)
        assert default_objective(w) > 0
        assert default_objective(make_window(completed=0)) == 0.0

    def test_objective_penalizes_shed_work(self):
        clean = make_window()
        shed = make_window(expired=3)
        assert default_objective(shed) < default_objective(clean)

    def test_small_windows_hold(self):
        svc = inline_service()
        tuner = self.tuner_with_windows(svc, [make_window(submitted=0)])
        assert tuner.step().kind == "hold"
        assert svc.stats.policy_swaps == 0
        svc.close()

    def test_hysteresis_then_swap(self):
        svc = inline_service(max_wait=2e-3)
        shed = [make_window(expired=2) for _ in range(2)]
        tuner = self.tuner_with_windows(svc, shed)
        # one noisy window never moves a knob...
        assert tuner.step().kind == "hold"
        assert svc.policy.max_wait == 2e-3
        # ...the second agreeing window does
        act = tuner.step()
        assert act.kind == "swap"
        assert act.changes == {"max_wait": 1e-3}
        assert svc.policy.max_wait == 1e-3
        assert svc.stats.policy_swaps == 1
        svc.close()

    def test_disagreeing_windows_reset_votes(self):
        svc = inline_service(max_wait=2e-3)
        windows = [make_window(expired=2), make_window(),
                   make_window(expired=2)]
        tuner = self.tuner_with_windows(svc, windows)
        for _ in range(3):
            assert tuner.step().kind == "hold"
        assert svc.stats.policy_swaps == 0
        svc.close()

    def test_rollback_and_cooldown(self):
        svc = inline_service(max_wait=2e-3)
        good = make_window(expired=2)
        # post-swap window: objective collapses by far more than the
        # 15% tolerance
        bad = make_window(completed=2, wait_p99=1e-3)
        after = [make_window(expired=2) for _ in range(3)]
        tuner = self.tuner_with_windows(svc, [good, good, bad] + after)

        tuner.step()                      # vote
        assert tuner.step().kind == "swap"
        assert svc.policy.max_wait == 1e-3

        act = tuner.step()                # regression: roll back
        assert act.kind == "rollback"
        assert svc.policy.max_wait == 2e-3
        assert svc.stats.policy_swaps == 2   # swap + restore

        # cooldown: two windows of strong signal change nothing
        assert tuner.step().kind == "hold"
        assert tuner.step().kind == "hold"
        assert svc.policy.max_wait == 2e-3
        summary = tuner.summary()
        assert summary["swaps"] == 1
        assert summary["rollbacks"] == 1
        assert summary["windows"] == 5
        svc.close()

    def test_good_swap_is_kept(self):
        svc = inline_service(max_wait=2e-3)
        good = make_window(expired=2)
        better = make_window()            # no shed: objective improves
        tuner = self.tuner_with_windows(svc, [good, good, better])
        tuner.step()
        assert tuner.step().kind == "swap"
        assert tuner.step().kind == "hold"     # guard passes, no revert
        assert svc.policy.max_wait == 1e-3
        svc.close()

    def test_saturated_groups_grow_max_batch(self):
        svc = inline_service(max_batch=8)
        full = make_window(dispatches=10, coalesced=78, queue_depth=5)
        tuner = self.tuner_with_windows(svc, [full, full])
        tuner.step()
        act = tuner.step()
        assert act.kind == "swap"
        assert act.changes == {"max_batch": 16}
        svc.close()

    def test_base_kernel_traffic_widens_trsm_class(self):
        svc = inline_service(trsm_class_cutoff=4)
        w = make_window(orders={"count": 30, "min": 8, "median": 12,
                                "max": 24, "spread": 0.4})
        tuner = self.tuner_with_windows(svc, [w, make_window(
            orders=dict(w.orders))])
        tuner.step()
        act = tuner.step()
        assert act.kind == "swap"
        # (non-empty orders also arm the panel micro-trial, which may
        # ride along in the same swap — the cutoff move is what this
        # test pins down)
        assert act.changes["trsm_class_cutoff"] == TRSM_BASE_NB
        assert svc.policy.trsm_class_cutoff == TRSM_BASE_NB
        svc.close()
