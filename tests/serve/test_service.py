"""SolverService: coalescing, isolation, admission control, sessions.

The sequential reference throughout is the *same service code* with
``CoalescingPolicy(max_batch=1)`` — one request per launch group — which
runs each request through ``irr_getrf``/``irr_getrs``/``SparseLU``
exactly as a lone caller would.  Coalesced results must match it
bitwise (``np.array_equal``), never just to rounding.
"""

import threading

import numpy as np
import pytest
import scipy.sparse as sp

from repro.device import A100, Device
from repro.errors import (DeadlineExceeded, FactorizationError,
                          RequestCancelled, ServiceOverloaded)
from repro.serve import (CoalescingPolicy, FactorHandle, LatencyHistogram,
                         ServeSession, SolverService)
from repro.sparse import SparseLU

from ..sparse.util import grid2d

pytestmark = pytest.mark.serve

RNG = np.random.default_rng(42)


def dense(n, dtype=np.float64, seed=None):
    rng = np.random.default_rng(seed) if seed is not None else RNG
    a = rng.standard_normal((n, n)) + n * np.eye(n)
    return a.astype(dtype)


def inline_service(device=None, **policy_kw):
    dev = device if device is not None else Device(A100())
    return SolverService(dev, policy=CoalescingPolicy(**policy_kw),
                         start=False)


def sequential_reference(mats, rhss, device=None, **lu_kwargs):
    """One-request-per-launch results for factor_solve requests."""
    svc = inline_service(device=device, max_batch=1)
    futs = [svc.submit_factor_solve(a, b, **lu_kwargs)
            for a, b in zip(mats, rhss)]
    svc.run_once()
    out = [f.result(0) for f in futs]
    svc.close()
    return out


class TestDenseCoalescing:
    def test_factor_solve_bitwise_matches_sequential(self):
        sizes = [8, 24, 16, 8, 48, 33, 16, 5]
        mats = [dense(n, seed=100 + n) for n in sizes]
        rhss = [np.random.default_rng(n).standard_normal(n)
                for n in sizes]
        ref = sequential_reference(mats, rhss)

        svc = inline_service(max_batch=16)
        futs = [svc.submit_factor_solve(a, b)
                for a, b in zip(mats, rhss)]
        assert svc.run_once() == 1            # ONE coalesced dispatch
        for fut, (x_ref, h_ref) in zip(futs, ref):
            x, h = fut.result(0)
            assert np.array_equal(x, x_ref)
            assert np.array_equal(h.lu, h_ref.lu)
            assert np.array_equal(h.ipiv, h_ref.ipiv)
        svc.close()

    def test_coalesced_dispatch_is_one_launch_group(self):
        # N compatible requests must cost the launch count of ONE
        # batched run — identical to a single request's launch count
        # (the batch-size-independent launch structure of the paper),
        # not N times it.
        solo = inline_service(max_batch=1)
        solo.submit_factor(dense(16, seed=1))
        solo.run_once()
        solo_launches = solo.stats.dispatches[0].launches
        solo.close()

        svc = inline_service(max_batch=8)
        for i in range(8):
            svc.submit_factor(dense(16, seed=i))
        svc.run_once()
        assert len(svc.stats.dispatches) == 1
        rec = svc.stats.dispatches[0]
        assert rec.batch_size == 8
        assert rec.launches == solo_launches
        assert svc.stats.coalescing_ratio == 8.0
        assert rec.occupancy == 1.0           # uniform sizes fill fully
        svc.close()

    def test_occupancy_reflects_irregularity(self):
        svc = inline_service(max_batch=4)
        for n in (8, 8, 8, 32):
            svc.submit_factor(dense(n, seed=n))
        svc.run_once()
        rec = svc.stats.dispatches[0]
        want = (3 * 8 * 8 + 32 * 32) / (4 * 32 * 32)
        assert rec.occupancy == pytest.approx(want)
        svc.close()

    def test_incompatible_requests_do_not_coalesce(self):
        svc = inline_service(max_batch=8)
        svc.submit_factor(dense(8, dtype=np.float32, seed=0))
        svc.submit_factor(dense(8, dtype=np.float64, seed=1))
        svc.submit_factor(dense(8, seed=2), pivot_tol=1e-8)
        assert svc.run_once() == 3            # dtype / LU-policy splits
        svc.close()

    def test_oversize_matrix_dispatches_alone(self):
        # A matrix taller than the fused-panel limit must not drag the
        # small ones into the recursive panel split (whose blocking
        # depends on the batch's max_m, breaking bitwise identity).  A
        # shrunken shared memory makes the limit 16 rows (4096/(32*8)),
        # so the 24x24 request is "oversize" cheaply.
        import dataclasses
        spec = dataclasses.replace(A100(), max_shared_per_block=4096)
        sizes = [12, 24, 12, 12]
        mats = [dense(n, seed=n) for n in sizes]
        rhss = [np.random.default_rng(n).standard_normal(n)
                for n in sizes]
        ref = sequential_reference(mats, rhss, device=Device(spec))

        svc = inline_service(device=Device(spec), max_batch=8)
        futs = [svc.submit_factor_solve(a, b)
                for a, b in zip(mats, rhss)]
        assert svc.run_once() == 2            # small group + big solo
        sizes_seen = sorted(d.batch_size for d in svc.stats.dispatches)
        assert sizes_seen == [1, 3]
        for fut, (x_ref, h_ref) in zip(futs, ref):
            x, h = fut.result(0)
            assert np.array_equal(x, x_ref)
            assert np.array_equal(h.lu, h_ref.lu)
        svc.close()

    def test_solve_groups_by_order_class(self):
        # Orders at or below TRSM_BASE_NB all hit the per-matrix base
        # kernel, so mixed small orders share ONE getrs group; orders
        # above it split by exact order (the irrTRSM recursion tree
        # depends on the group's max order).
        svc = inline_service(max_batch=8)
        h_small = [svc.submit_factor(dense(n, seed=i))
                   for i, n in enumerate([16, 24, 32])]
        h_big = [svc.submit_factor(dense(n, seed=i + 10))
                 for i, n in enumerate([40, 40, 48])]
        svc.run_once()
        handles = [f.result(0) for f in h_small + h_big]
        rhss = [np.random.default_rng(i).standard_normal(h.n)
                for i, h in enumerate(handles)]

        ref_svc = inline_service(max_batch=1)
        ref_futs = [ref_svc.submit_solve(h, b)
                    for h, b in zip(handles, rhss)]
        ref_svc.run_once()
        refs = [f.result(0) for f in ref_futs]
        ref_svc.close()

        n0 = len(svc.stats.dispatches)
        futs = [svc.submit_solve(h, b) for h, b in zip(handles, rhss)]
        # base class {16,24,32} + exact orders {40,40} and {48}
        assert svc.run_once() == 3
        recs = svc.stats.dispatches[n0:]
        assert sorted(r.batch_size for r in recs) == [1, 2, 3]
        for fut, x_ref in zip(futs, refs):
            assert np.array_equal(fut.result(0), x_ref)
        svc.close()

    def test_multi_column_rhs_roundtrip(self):
        a = dense(20, seed=3)
        B = np.random.default_rng(4).standard_normal((20, 5))
        svc = inline_service()
        x, handle = svc.factor_solve(a, B)
        assert x.shape == (20, 5)
        np.testing.assert_allclose(a @ x, B, atol=1e-10)
        x2 = svc.solve(handle, B)
        assert np.array_equal(x2, x)
        svc.close()

    def test_rectangular_factor_allowed_solve_refused(self):
        svc = inline_service()
        h = svc.factor(np.random.default_rng(0).standard_normal((12, 8)))
        assert isinstance(h, FactorHandle) and (h.m, h.n) == (12, 8)
        with pytest.raises(ValueError, match="rectangular"):
            svc.submit_solve(h, np.zeros(8))
        with pytest.raises(ValueError, match="square"):
            svc.submit_factor_solve(
                np.random.default_rng(0).standard_normal((12, 8)),
                np.zeros(12))
        svc.close()

    def test_breakdown_isolated_to_its_request(self):
        good = [dense(10, seed=7), dense(10, seed=8)]
        rhss = [np.random.default_rng(i).standard_normal(10)
                for i in (7, 8)]
        ref = sequential_reference(good, rhss)

        svc = inline_service(max_batch=8)
        bad = np.zeros((10, 10))              # singular: breaks down
        f0 = svc.submit_factor_solve(good[0], rhss[0])
        fb = svc.submit_factor_solve(bad, np.ones(10))
        f1 = svc.submit_factor_solve(good[1], rhss[1])
        svc.run_once()
        with pytest.raises(FactorizationError, match="breakdown"):
            fb.result(0)
        # the poisoned batch member changed nothing for its neighbours
        for fut, (x_ref, h_ref) in zip((f0, f1), ref):
            x, h = fut.result(0)
            assert np.array_equal(x, x_ref)
            assert np.array_equal(h.lu, h_ref.lu)
        assert svc.stats.snapshot()["failed"] == 1
        svc.close()

    def test_static_pivot_recovers_in_service(self):
        a = dense(12, seed=9)
        a[:, 3] = a[:, 5]                     # singular: pivot ~ 1e-16
        svc = inline_service()
        with pytest.raises(FactorizationError):
            svc.factor(a, pivot_tol=1e-8)
        h = svc.factor(a, pivot_tol=1e-8, static_pivot=True)
        assert h.ok and h.n_replaced > 0
        svc.close()

    def test_solve_from_broken_handle_refused_synchronously(self):
        svc = inline_service()
        fut = svc.submit_factor(np.zeros((6, 6)))
        svc.run_once()
        with pytest.raises(FactorizationError):
            fut.result(0)
        h_ok = svc.factor(dense(6, seed=1))
        with pytest.raises(TypeError):
            svc.submit_solve(object(), np.zeros(6))
        with pytest.raises(ValueError, match="rows"):
            svc.submit_solve(h_ok, np.zeros(7))
        with pytest.raises(TypeError, match="dtype"):
            svc.submit_solve(svc.factor(dense(6, np.float32, seed=2)),
                             np.zeros(6, dtype=np.float64))
        svc.close()


class TestAdmissionControl:
    def test_bounded_queue_rejects_with_typed_error(self):
        svc = inline_service(max_queue=3)
        for i in range(3):
            svc.submit_factor(dense(8, seed=i))
        with pytest.raises(ServiceOverloaded, match="retry later") as ei:
            svc.submit_factor(dense(8, seed=99))
        assert ei.value.queue_depth == 3 and ei.value.max_queue == 3
        assert svc.stats.snapshot()["rejected"] == 1
        svc.run_once()                        # drains; admission reopens
        svc.submit_factor(dense(8, seed=100))
        svc.run_once()
        svc.close()

    def test_deadline_expires_before_dispatch(self):
        svc = inline_service()
        fut = svc.submit_factor(dense(8, seed=0), deadline=0.0)
        live = svc.submit_factor(dense(8, seed=1))
        svc.run_once()
        with pytest.raises(DeadlineExceeded, match="deadline"):
            fut.result(0)
        assert live.result(0).ok
        assert svc.stats.snapshot()["expired"] == 1
        svc.close()

    def test_cancel_queued_request(self):
        svc = inline_service()
        fut = svc.submit_factor(dense(8, seed=0))
        live = svc.submit_factor(dense(8, seed=1))
        assert fut.cancel() is True
        assert fut.cancel() is False          # already resolved
        with pytest.raises(RequestCancelled):
            fut.result(0)
        svc.run_once()
        assert live.result(0).ok
        assert svc.stats.snapshot()["cancelled"] == 1
        svc.close()

    def test_cannot_cancel_after_dispatch(self):
        svc = inline_service()
        fut = svc.submit_factor(dense(8, seed=0))
        svc.run_once()
        assert fut.cancel() is False
        assert fut.result(0).ok
        svc.close()

    def test_close_drains_pending_work(self):
        dev = Device(A100())
        svc = SolverService(dev, policy=CoalescingPolicy(max_wait=10.0,
                                                         max_batch=64))
        futs = [svc.submit_factor(dense(8, seed=i)) for i in range(5)]
        svc.close()                            # must not strand futures
        for f in futs:
            assert f.result(0).ok
        with pytest.raises(RuntimeError, match="closed"):
            svc.submit_factor(dense(8, seed=9))

    def test_policy_validation(self):
        with pytest.raises(ValueError, match="max_batch"):
            CoalescingPolicy(max_batch=0)
        with pytest.raises(ValueError, match="max_wait"):
            CoalescingPolicy(max_wait=-1.0)
        with pytest.raises(ValueError, match="max_queue"):
            CoalescingPolicy(max_queue=0)
        svc = inline_service()
        with pytest.raises(TypeError, match="unknown LU"):
            svc.submit_factor(dense(8), bogus=1)
        with pytest.raises(ValueError, match="deadline"):
            svc.submit_factor(dense(8), deadline=-1.0)
        svc.close()


class TestConcurrentTraffic:
    def test_threaded_submitters_all_bitwise_correct(self):
        n_threads, per_thread = 6, 4
        sizes = [10, 14, 18]
        mats, rhss = [], []
        for t in range(n_threads):
            for i in range(per_thread):
                n = sizes[(t + i) % len(sizes)]
                mats.append(dense(n, seed=1000 + t * 10 + i))
                rhss.append(np.random.default_rng(t * 10 + i)
                            .standard_normal(n))
        ref = sequential_reference(mats, rhss)

        dev = Device(A100())
        results = [None] * len(mats)
        with SolverService(dev, policy=CoalescingPolicy(
                max_batch=8, max_wait=5e-3)) as svc:
            def worker(t):
                for i in range(per_thread):
                    k = t * per_thread + i
                    results[k] = svc.factor_solve(mats[k], rhss[k],
                                                  timeout=60)

            threads = [threading.Thread(target=worker, args=(t,))
                       for t in range(n_threads)]
            for th in threads:
                th.start()
            for th in threads:
                th.join()
            snap = svc.stats.snapshot()
        for k, (x_ref, h_ref) in enumerate(ref):
            x, h = results[k]
            assert np.array_equal(x, x_ref)
            assert np.array_equal(h.lu, h_ref.lu)
        assert snap["completed"] == len(mats)
        assert snap["failed"] == 0
        assert dev.allocated_bytes == 0


class TestSparseSessions:
    def test_session_solve_bitwise_matches_direct_sparselu(self):
        a = grid2d(11, 9)
        b = np.random.default_rng(5).standard_normal(99)
        dev_ref = Device(A100())
        ref_solver = SparseLU(a).analyze()
        ref_solver.factor(backend="batched", device=dev_ref)
        x_ref, _ = ref_solver.solve(b, device=dev_ref)

        svc = inline_service()
        sess = None
        try:
            fut = svc.submit_factor(sp.csr_matrix(a))
            svc.run_once()
            sess = fut.result(0)
            assert isinstance(sess, ServeSession)
            fut2 = svc.submit_solve(sess, b)
            svc.run_once()
            x, info = fut2.result(0)
            assert np.array_equal(x, x_ref)
            assert info.final_residual < 1e-12
        finally:
            if sess is not None:
                sess.close()
            svc.close()

    def test_arbiter_splits_and_restores_budget(self):
        total = 1 << 22
        dev = Device(A100())
        svc = SolverService(dev, sparse_memory_budget=total, start=False)
        f1 = svc.submit_factor(grid2d(10, 10), backend="cpu")
        svc.run_once()
        s1 = f1.result(0)
        assert s1.budget == total
        f2 = svc.submit_factor(grid2d(8, 8), backend="cpu")
        svc.run_once()
        s2 = f2.result(0)
        assert s1.budget == total // 2 == s2.budget
        s2.close()
        assert s1.budget == total
        assert svc.stats.snapshot()["rebudgets"] >= 3
        s1.close()
        svc.close()
        assert dev.allocated_bytes == 0

    def test_closed_session_refuses_solves(self):
        svc = inline_service()
        fut = svc.submit_factor(grid2d(6, 6), backend="cpu")
        svc.run_once()
        sess = fut.result(0)
        sess.close()
        sess.close()                           # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            svc.submit_solve(sess, np.zeros(36))
        svc.close()

    def test_sparse_factor_solve_one_shot(self):
        a = grid2d(9, 9)
        b = np.random.default_rng(6).standard_normal(81)
        svc = inline_service()
        fut = svc.submit_factor_solve(a, b, refine_steps=1)
        svc.run_once()
        x, info = fut.result(0)
        assert np.linalg.norm(a @ x - b) / np.linalg.norm(b) < 1e-12
        assert svc.arbiter.n_active == 0       # one-shot session closed
        svc.close()

    def test_rhs_stacking_opt_in(self):
        a = grid2d(8, 8)
        rng = np.random.default_rng(7)
        b1, b2 = rng.standard_normal(64), rng.standard_normal(64)
        svc = inline_service(max_batch=4, coalesce_sparse_rhs=True)
        fut = svc.submit_factor(a, backend="cpu")
        svc.run_once()
        sess = fut.result(0)
        n0 = len(svc.stats.dispatches)
        fa = svc.submit_solve(sess, b1)
        fb = svc.submit_solve(sess, b2)
        svc.run_once()
        recs = svc.stats.dispatches[n0:]
        assert len(recs) == 1 and recs[0].batch_size == 2
        xa, _ = fa.result(0)
        xb, _ = fb.result(0)
        ref = SparseLU(a).analyze().factor(backend="cpu")
        np.testing.assert_allclose(xa, ref.solve(b1)[0], rtol=1e-12,
                                   atol=1e-14)
        np.testing.assert_allclose(xb, ref.solve(b2)[0], rtol=1e-12,
                                   atol=1e-14)
        sess.close()
        svc.close()


class TestStats:
    def test_latency_histogram(self):
        h = LatencyHistogram()
        for v in (1e-7, 1e-5, 1e-3, 0.1, 5.0):
            h.record(v)
        assert h.count == 5
        assert h.max == 5.0
        assert h.mean == pytest.approx(sum((1e-7, 1e-5, 1e-3, 0.1, 5.0))
                                       / 5)
        assert h.quantile(0.0) <= h.quantile(0.5) <= h.quantile(1.0)
        with pytest.raises(ValueError):
            h.quantile(1.5)
        snap = h.snapshot()
        assert snap["count"] == 5 and snap["p95"] >= snap["p50"]

    def test_wait_and_exec_latencies_recorded(self):
        svc = inline_service()
        svc.submit_factor(dense(8, seed=0))
        svc.run_once()
        snap = svc.stats.snapshot()
        assert snap["wait"]["count"] == 1
        assert snap["exec"]["count"] == 1
        assert snap["queue_peak"] == 1 and snap["queue_depth"] == 0
        svc.close()
