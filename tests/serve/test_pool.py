"""DevicePool: pooled serving across a multi-device node — bitwise
parity with the single-device service, plus routing and isolation."""

import numpy as np
import pytest

from repro.device import A100, Device, Node
from repro.serve import CoalescingPolicy, DevicePool, SolverService

pytestmark = pytest.mark.multidev


def dense_workload(n_reqs=24, seed=0):
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(n_reqs):
        n = int(rng.integers(8, 40))
        a = rng.standard_normal((n, n)) + n * np.eye(n)
        out.append((a, rng.standard_normal(n)))
    return out


def sparse_grid(nx, ny, seed=0):
    from ..sparse.util import grid2d
    return grid2d(nx, ny, seed=seed)


def drain(svc, futs):
    while any(not f.done() for f in futs):
        svc.run_once()
    return [f.result() for f in futs]


def make(n_devices, **kw):
    kw.setdefault("policy", CoalescingPolicy(max_batch=8))
    if n_devices == 1:
        return SolverService(Device(A100()), start=False, **kw)
    return DevicePool(Node(A100(), n_devices), start=False, **kw)


class TestPooledParity:
    @pytest.mark.parametrize("n_devices", [1, 2, 4])
    def test_factor_solve_bitwise_vs_single_service(self, n_devices):
        work = dense_workload()
        ref_svc = make(1)
        ref = drain(ref_svc, [ref_svc.submit_factor_solve(a, b)
                              for a, b in work])
        ref_svc.close()
        svc = make(n_devices)
        got = drain(svc, [svc.submit_factor_solve(a, b) for a, b in work])
        for (x0, h0), (x1, h1) in zip(ref, got):
            assert np.array_equal(x0, x1)
            assert np.array_equal(h0.lu, h1.lu)
            assert np.array_equal(h0.ipiv, h1.ipiv)
        svc.close()

    def test_dense_solve_routes_anywhere_bitwise(self, rng):
        work = dense_workload(8)
        svc = make(4)
        handles = [h for h in drain(
            svc, [svc.submit_factor(a) for a, _ in work])]
        xs = drain(svc, [svc.submit_solve(h, b)
                         for h, (_, b) in zip(handles, work)])
        ref_svc = make(1)
        ref_h = drain(ref_svc, [ref_svc.submit_factor(a) for a, _ in work])
        ref_x = drain(ref_svc, [ref_svc.submit_solve(h, b)
                                for h, (_, b) in zip(ref_h, work)])
        for x0, x1 in zip(ref_x, xs):
            assert np.array_equal(x0, x1)
        ref_svc.close()
        svc.close()


class TestRouting:
    def test_load_spreads_across_devices(self):
        svc = make(4, policy=CoalescingPolicy(max_batch=2))
        drain(svc, [svc.submit_factor_solve(a, b)
                    for a, b in dense_workload(32)])
        devs = svc.stats.snapshot()["devices"]
        assert set(devs) == {0, 1, 2, 3}
        assert all(d["dispatches"] > 0 for d in devs.values())
        assert all(d["link_bytes"] > 0 for d in devs.values())
        svc.close()

    def test_sparse_sessions_stick_to_their_device(self, rng):
        svc = make(4, policy=CoalescingPolicy(max_batch=4))
        mats = [sparse_grid(9 + i, 8, seed=i) for i in range(6)]
        sessions = [drain(svc, [svc.submit_factor(a)])[0] for a in mats]
        homes = {s.sid: svc._session_device[s.sid] for s in sessions}
        assert len(set(homes.values())) > 1      # spread over devices
        for s, a in zip(sessions, mats):
            b = rng.standard_normal(a.shape[0])
            (x, info), = drain(svc, [svc.submit_solve(s, b)])
            assert np.linalg.norm(a @ x - b) / np.linalg.norm(b) < 1e-10
            # stickiness: solving never migrated the session
            assert svc._session_device[s.sid] == homes[s.sid]
        for s in sessions:
            s.close()
        svc.close()
        assert svc.node.allocated_bytes == 0

    def test_open_breaker_diverts_new_work(self):
        svc = make(4)
        # trip device 0's breaker by hand
        b0 = svc._slots[0].breaker
        for _ in range(b0.min_observations):
            b0.record(1)
        assert b0.state == "open"
        drain(svc, [svc.submit_factor_solve(a, b)
                    for a, b in dense_workload(16)])
        devs = svc.stats.snapshot()["devices"]
        assert 0 not in devs or devs[0]["dispatches"] == 0
        for i in (1, 2, 3):
            assert svc._slots[i].breaker.state == "closed"
        svc.close()

    def test_all_breakers_open_still_serves(self):
        svc = make(2)
        for slot in svc._slots:
            for _ in range(slot.breaker.min_observations):
                slot.breaker.record(1)
        (x, _), = drain(svc, [svc.submit_factor_solve(
            *dense_workload(1)[0])])
        assert np.all(np.isfinite(x))
        svc.close()


class TestBudgetsAndStats:
    def test_budget_splits_evenly_per_device(self):
        svc = make(4, sparse_memory_budget=64 << 20)
        shares = {slot.arbiter.share() for slot in svc._slots}
        assert shares == {(64 << 20) // 4}
        svc.close()

    def test_resident_bytes_stay_under_device_share(self, rng):
        svc = make(4, sparse_memory_budget=64 << 20)
        sessions = []
        for i in range(8):
            a = sparse_grid(10 + i, 9, seed=i)
            s, = drain(svc, [svc.submit_factor(a)])
            b = rng.standard_normal(a.shape[0])
            drain(svc, [svc.submit_solve(s, b)])
            sessions.append(s)
        devs = svc.stats.snapshot()["devices"]
        for idx, d in devs.items():
            assert d["resident_factor_bytes"] <= svc._slots[idx].arbiter.share()
        for s in sessions:
            s.close()
        svc.close()

    def test_snapshot_device_schema(self):
        svc = make(2)
        drain(svc, [svc.submit_factor_solve(a, b)
                    for a, b in dense_workload(6)])
        devs = svc.stats.snapshot()["devices"]
        assert devs, "per-device counters missing"
        for d in devs.values():
            for key in ("dispatches", "coalesced_requests", "launches",
                        "occupancy_total", "sim_seconds", "link_bytes",
                        "resident_factor_bytes", "degraded_dispatches",
                        "breaker_state", "mean_occupancy"):
                assert key in d
            assert d["breaker_state"] == "closed"
            assert d["mean_occupancy"] > 0
        svc.close()


class TestLifecycle:
    def test_rejects_plain_device(self):
        with pytest.raises(TypeError, match="Node"):
            DevicePool(Device(A100()), start=False)

    def test_close_is_idempotent_and_frees_node(self):
        svc = make(4)
        drain(svc, [svc.submit_factor_solve(a, b)
                    for a, b in dense_workload(8)])
        svc.close()
        svc.close()
        assert svc.node.allocated_bytes == 0

    def test_threaded_pool_smoke(self):
        node = Node(A100(), 2)
        svc = DevicePool(node, policy=CoalescingPolicy(max_batch=4))
        try:
            futs = [svc.submit_factor_solve(a, b)
                    for a, b in dense_workload(8)]
            xs = [f.result(timeout=30)[0] for f in futs]
            assert all(np.all(np.isfinite(x)) for x in xs)
        finally:
            svc.close()
        assert node.allocated_bytes == 0
