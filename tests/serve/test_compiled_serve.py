"""Hot-signature compiled dispatch in :class:`SolverService`.

``CoalescingPolicy(compile_hot=True)`` lets the service recognize
recurring dense dispatch signatures and swap the bucketed group runner
for a :class:`~repro.batched.program.WorkloadProgram` replay.  The
contract: results stay bitwise identical to the ``compile_hot=False``
service on identical traffic, replays touch neither the plan cache nor
the allocator, and a payload that trips the replay guard falls back to
the ordinary runner with per-request isolation intact.
"""

import numpy as np
import pytest

from repro.device import A100, Device
from repro.errors import FactorizationError
from repro.serve import CoalescingPolicy, SolverService

pytestmark = [pytest.mark.serve, pytest.mark.compiled]

SIZES = [8, 12, 16, 20, 24, 16, 8, 12]


def make_round(seed):
    rng = np.random.default_rng(seed)
    mats = [rng.standard_normal((m, m)) + 2.0 * m * np.eye(m)
            for m in SIZES]
    rhss = [rng.standard_normal((m, 2)) for m in SIZES]
    return mats, rhss


def inline_service(device=None, **policy_kw):
    dev = device if device is not None else Device(A100())
    policy_kw.setdefault("max_wait", 0.0)
    return SolverService(dev, policy=CoalescingPolicy(**policy_kw),
                         start=False)


def submit_round(svc, mats, rhss):
    """Alternate factor_solve / factor members (one mixed signature)."""
    futs = []
    for i, (a, b) in enumerate(zip(mats, rhss)):
        if i % 2 == 0:
            futs.append(svc.submit_factor_solve(a, b))
        else:
            futs.append(svc.submit_factor(a))
    svc.run_once()
    return futs


def unpack(fut):
    v = fut.result(0)
    return v if isinstance(v, tuple) else (None, v)


class TestHotSignatureCompilation:
    def test_bitwise_identical_to_uncompiled_service(self):
        svc_ref = inline_service()
        svc = inline_service(compile_hot=True, hot_threshold=2)
        for rnd in range(5):
            mats, rhss = make_round(seed=rnd)
            ref = [unpack(f) for f in submit_round(svc_ref, mats, rhss)]
            got = [unpack(f) for f in submit_round(svc, mats, rhss)]
            for (xr, hr), (xg, hg) in zip(ref, got):
                if xr is None:
                    assert xg is None
                else:
                    np.testing.assert_array_equal(xr, xg)
                np.testing.assert_array_equal(hr.lu, hg.lu)
                np.testing.assert_array_equal(hr.ipiv, hg.ipiv)
                assert (hr.info, hr.n_replaced, hr.min_pivot, hr.growth) \
                    == (hg.info, hg.n_replaced, hg.min_pivot, hg.growth)
        snap = svc.stats.snapshot()
        assert snap["programs_compiled"] == 1
        assert snap["compiled_dispatches"] == 4   # rounds 2..5
        assert snap["compiled_fallbacks"] == 0
        svc.close()
        svc_ref.close()

    def test_replay_zero_misses_zero_allocs(self):
        dev = Device(A100())
        svc = inline_service(device=dev, compile_hot=True, hot_threshold=2)
        for rnd in range(3):
            mats, rhss = make_round(seed=rnd)
            submit_round(svc, mats, rhss)
        misses0 = svc._engine.cache.misses
        allocs0 = dev.alloc_count
        mats, rhss = make_round(seed=77)
        futs = submit_round(svc, mats, rhss)
        assert all(f.exception(0) is None for f in futs)
        assert svc._engine.cache.misses == misses0
        assert dev.alloc_count == allocs0
        svc.close()

    def test_cold_signatures_stay_uncompiled(self):
        svc = inline_service(compile_hot=True, hot_threshold=3)
        mats, rhss = make_round(seed=0)
        submit_round(svc, mats, rhss)
        submit_round(svc, mats, rhss)
        assert svc.stats.snapshot()["programs_compiled"] == 0
        svc.close()

    def test_guard_fallback_isolates_broken_member(self):
        svc = inline_service(compile_hot=True, hot_threshold=2)
        for rnd in range(3):
            mats, rhss = make_round(seed=rnd)
            submit_round(svc, mats, rhss)
        # hot now; a breakdown payload must fall back, fail only its
        # own request, and still serve the rest of the group
        mats, rhss = make_round(seed=9)
        mats[0] = np.zeros_like(mats[0])
        futs = submit_round(svc, mats, rhss)
        assert isinstance(futs[0].exception(0), FactorizationError)
        assert all(f.exception(0) is None for f in futs[1:])
        snap = svc.stats.snapshot()
        assert snap["compiled_fallbacks"] == 1

        # the fallback round matches the uncompiled service bitwise
        svc_ref = inline_service()
        mats_r, rhss_r = make_round(seed=9)
        mats_r[0] = np.zeros_like(mats_r[0])
        futs_ref = submit_round(svc_ref, mats_r, rhss_r)
        for fr, fg in zip(futs_ref[1:], futs[1:]):
            (xr, hr), (xg, hg) = unpack(fr), unpack(fg)
            if xr is not None:
                np.testing.assert_array_equal(xr, xg)
            np.testing.assert_array_equal(hr.lu, hg.lu)
        svc.close()
        svc_ref.close()

    def test_program_store_is_bounded_lru(self):
        svc = inline_service(compile_hot=True, hot_threshold=1,
                             max_programs=2)
        # three distinct hot signatures with threshold 1: every round
        # compiles; the store must keep only the 2 most recent
        for sizes_seed in range(3):
            rng = np.random.default_rng(sizes_seed)
            m = 8 + 4 * sizes_seed
            a = rng.standard_normal((m, m)) + 2.0 * m * np.eye(m)
            svc.submit_factor(a)
            svc.run_once()
        assert svc.stats.snapshot()["programs_compiled"] == 3
        assert len(svc._programs) == 2
        svc.close()
        assert len(svc._programs) == 0

    def test_getrf_only_group_compiles_and_matches(self):
        svc_ref = inline_service()
        svc = inline_service(compile_hot=True, hot_threshold=2)
        for rnd in range(4):
            rng = np.random.default_rng(rnd)
            mats = [rng.standard_normal((m, m)) + 2.0 * m * np.eye(m)
                    for m in SIZES]
            futs_ref, futs = [], []
            for a in mats:
                futs_ref.append(svc_ref.submit_factor(a))
                futs.append(svc.submit_factor(a))
            svc_ref.run_once()
            svc.run_once()
            for fr, fg in zip(futs_ref, futs):
                hr, hg = fr.result(0), fg.result(0)
                np.testing.assert_array_equal(hr.lu, hg.lu)
                np.testing.assert_array_equal(hr.ipiv, hg.ipiv)
        assert svc.stats.snapshot()["programs_compiled"] == 1
        svc.close()
        svc_ref.close()


class TestBoundedPlanCache:
    def test_capacity_and_counters_in_snapshot(self):
        svc = inline_service(plan_cache_capacity=2)
        rng = np.random.default_rng(0)
        for m in (8, 12, 16, 20, 24):
            svc.factor(rng.standard_normal((m, m)) + 3.0 * m * np.eye(m))
        snap = svc.stats.snapshot()["plan_cache"]
        assert snap["capacity"] == 2
        assert snap["size"] <= 2
        assert snap["evictions"] > 0
        assert snap["misses"] > 0
        svc.close()

    def test_unbounded_by_default(self):
        svc = inline_service()
        rng = np.random.default_rng(0)
        svc.factor(rng.standard_normal((8, 8)) + 24 * np.eye(8))
        snap = svc.stats.snapshot()["plan_cache"]
        assert snap["capacity"] is None
        assert snap["evictions"] == 0
        svc.close()

    def test_policy_validation(self):
        with pytest.raises(ValueError, match="plan_cache_capacity"):
            CoalescingPolicy(plan_cache_capacity=0)
        with pytest.raises(ValueError, match="hot_threshold"):
            CoalescingPolicy(hot_threshold=0)
        with pytest.raises(ValueError, match="max_programs"):
            CoalescingPolicy(max_programs=0)


class TestServeReplayTraffic:
    def test_500_request_replay_parity(self):
        """The acceptance traffic: 500 requests of recurring signatures
        through a compiled service match the uncompiled service
        bitwise."""
        svc_ref = inline_service()
        svc = inline_service(compile_hot=True, hot_threshold=2)
        n_requests = 0
        rnd = 0
        while n_requests < 500:
            mats, rhss = make_round(seed=rnd % 7)
            ref = [unpack(f) for f in submit_round(svc_ref, mats, rhss)]
            got = [unpack(f) for f in submit_round(svc, mats, rhss)]
            for (xr, hr), (xg, hg) in zip(ref, got):
                if xr is not None:
                    np.testing.assert_array_equal(xr, xg)
                np.testing.assert_array_equal(hr.lu, hg.lu)
                np.testing.assert_array_equal(hr.ipiv, hg.ipiv)
                assert hr.info == hg.info
            n_requests += len(mats)
            rnd += 1
        snap = svc.stats.snapshot()
        assert snap["programs_compiled"] >= 1
        assert snap["compiled_dispatches"] > 0
        assert snap["compiled_fallbacks"] == 0
        svc.close()
        svc_ref.close()
