"""Compiled workload programs vs per-call bucketed dispatch.

A ``WorkloadProgram`` pays the planning cost — DCWI inference, bucket
layout, permutation rehearsal, packed buffer allocation — once at
compile time; ``run()`` only copies payload bytes into a persistent
arena (one packed H2D transfer, one packed D2H) and replays the frozen
schedule.  This harness measures what that buys on two repeated
workloads:

* **fig10 replay** — the paper's mixed getrf batch (sizes ~ U[1, mx])
  factored ``reps`` times with fresh values.  The bucketed engine
  re-plans, re-allocates and moves every matrix in its own transfer
  each iteration; the program replays against its arena.  Metric:
  amortized *simulated* seconds per iteration (what the device-timing
  model charges for transfers + kernels).  Host wall-clock is reported
  for reference — the elimination numerics are bitwise identical on
  both sides, so host time mostly ties.  Acceptance gate: **>= 2x**.
* **serve replay** — recurring mixed factor/factor_solve rounds through
  :class:`SolverService`, ``compile_hot`` on vs off.  Hot-signature
  groups dispatch through fused compiled programs with arena-packed
  transfers.  Metric: requests per simulated second.  Acceptance gate:
  **>= 1.5x**.

Both comparisons verify the bitwise-parity contract before timing
counts.

Usage::

    PYTHONPATH=src python benchmarks/bench_compiled.py            # full
    PYTHONPATH=src python benchmarks/bench_compiled.py --smoke    # CI

Writes ``BENCH_compiled.json`` (repo root) and
``results/bench_compiled.txt``.  Exits non-zero on parity failure or a
missed gate.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

import numpy as np

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.batched import BatchEngine, IrrBatch, irr_getrf  # noqa: E402
from repro.batched.program import compile_workload  # noqa: E402
from repro.device import A100, Device  # noqa: E402
from repro.serve import CoalescingPolicy, SolverService  # noqa: E402
from repro.workloads import random_square_batch  # noqa: E402

REPLAY_GATE = 2.0       # amortized simulated speedup, compiled vs bucketed
SERVE_GATE = 1.5        # simulated serve throughput, compile_hot on/off
SMOKE_REPLAY_GATE = 1.5
SMOKE_SERVE_GATE = 1.1


def fresh_values(shapes, seed):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal(s) for s in shapes]


# ----------------------------------------------------------------------
# part 1: repeated Fig 10 getrf — bucketed re-dispatch vs program replay
# ----------------------------------------------------------------------

def bucketed_iteration(dev, engine, mats):
    batch = IrrBatch.from_host(dev, [a.copy() for a in mats])
    piv = irr_getrf(dev, batch, engine=engine)
    out = batch.to_host()
    ipiv = [p.copy() for p in piv.ipiv]
    batch.free()
    return out, ipiv


def run_fig10(bs, mx, reps):
    shapes = [a.shape for a in random_square_batch(bs, mx)]
    payloads = [fresh_values(shapes, it) for it in range(reps)]

    dev_b = Device(A100())
    engine = BatchEngine("bucketed")
    # warm the plan cache so the bucketed side is at ITS steady state
    bucketed_iteration(dev_b, engine, fresh_values(shapes, seed=999))
    sim0 = dev_b.synchronize()
    t0 = time.perf_counter()
    ref = None
    for mats in payloads:
        ref = bucketed_iteration(dev_b, engine, mats)
    bucketed_host = (time.perf_counter() - t0) / reps
    bucketed_sim = (dev_b.synchronize() - sim0) / reps

    dev_c = Device(A100())
    t0 = time.perf_counter()
    prog = compile_workload(dev_c, "getrf", shapes)
    compile_s = time.perf_counter() - t0
    prog.run(a=fresh_values(shapes, seed=999))      # first run: warm
    sim0 = dev_c.synchronize()
    t0 = time.perf_counter()
    res = None
    for mats in payloads:
        res = prog.run(a=mats)
    compiled_host = (time.perf_counter() - t0) / reps
    compiled_sim = (dev_c.synchronize() - sim0) / reps

    # parity on the last iteration (identical payload values)
    for a, b in zip(ref[0], res.factors):
        if not np.array_equal(a, b):
            raise SystemExit("PARITY FAILURE: fig10 factors differ")
    for a, b in zip(ref[1], res.ipiv):
        if not np.array_equal(a, b):
            raise SystemExit("PARITY FAILURE: fig10 pivots differ")

    prog.free()
    return {"batch_size": bs, "max_size": mx, "reps": reps,
            "bucketed_sim_s_per_iter": bucketed_sim,
            "compiled_sim_s_per_iter": compiled_sim,
            "bucketed_host_s_per_iter": bucketed_host,
            "compiled_host_s_per_iter": compiled_host,
            "compile_s": compile_s,
            "n_launches": prog.n_launches, "n_fused": prog.n_fused,
            "speedup": bucketed_sim / compiled_sim,
            "host_speedup": bucketed_host / compiled_host}


# ----------------------------------------------------------------------
# part 2: recurring serve traffic — compile_hot on vs off
# ----------------------------------------------------------------------

# four sizes spanning three TRSM order classes (<=32, 40, 64): the
# bucketed path moves each solve group separately, the compiled program
# packs everything into one arena transfer each way
SERVE_SIZES = [8, 8, 8, 8, 16, 16, 16, 16, 40, 40, 40, 40, 64, 64, 64, 64]


def serve_round(seed):
    rng = np.random.default_rng(seed)
    mats = [rng.standard_normal((m, m)) + 2.0 * m * np.eye(m)
            for m in SERVE_SIZES]
    rhss = [rng.standard_normal((m, 2)) for m in SERVE_SIZES]
    return mats, rhss


def run_serve_mode(rounds, compile_hot):
    dev = Device(A100())
    policy = CoalescingPolicy(max_wait=0.0,
                              max_queue=max(256, len(SERVE_SIZES)),
                              compile_hot=compile_hot, hot_threshold=2)
    svc = SolverService(dev, policy=policy, start=False)
    results = []
    host0 = time.perf_counter()
    for rnd in range(rounds):
        mats, rhss = serve_round(rnd % 5)
        futs = [svc.submit_factor_solve(a, b)
                for a, b in zip(mats, rhss)]
        svc.run_once()
        results.extend(f.result(0) for f in futs)
    sim = dev.synchronize()
    host = time.perf_counter() - host0
    snap = svc.stats.snapshot()
    launches = dev.profiler.launch_count
    svc.close()
    return results, sim, host, snap, launches


def run_serve(rounds):
    n = rounds * len(SERVE_SIZES)
    base, sim_b, host_b, snap_b, launches_b = run_serve_mode(rounds, False)
    comp, sim_c, host_c, snap_c, launches_c = run_serve_mode(rounds, True)

    for i, ((x_b, h_b), (x_c, h_c)) in enumerate(zip(base, comp)):
        if not (np.array_equal(x_b, x_c)
                and np.array_equal(h_b.lu, h_c.lu)
                and np.array_equal(h_b.ipiv, h_c.ipiv)):
            raise SystemExit(f"PARITY FAILURE: serve request {i} differs "
                             "between compiled and bucketed dispatch")
    if launches_c >= launches_b:
        raise SystemExit("FUSION FAILURE: compiled serve did not reduce "
                         f"launches ({launches_c} vs {launches_b})")

    return {"rounds": rounds, "requests": n,
            "bucketed": {"sim_seconds": sim_b, "throughput": n / sim_b,
                         "launches": launches_b,
                         "host_seconds": host_b},
            "compiled": {"sim_seconds": sim_c, "throughput": n / sim_c,
                         "launches": launches_c,
                         "host_seconds": host_c,
                         "programs_compiled": snap_c["programs_compiled"],
                         "compiled_dispatches":
                             snap_c["compiled_dispatches"]},
            "speedup": (n / sim_c) / (n / sim_b)}


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="small workload + relaxed gates (CI)")
    args = ap.parse_args()

    if args.smoke:
        bs, mx, reps, rounds = 60, 48, 3, 6
        replay_gate, serve_gate = SMOKE_REPLAY_GATE, SMOKE_SERVE_GATE
    else:
        bs, mx, reps, rounds = 500, 128, 5, 30
        replay_gate, serve_gate = REPLAY_GATE, SERVE_GATE

    fig10 = run_fig10(bs, mx, reps)
    serve = run_serve(rounds)

    lines = [
        "bench_compiled: workload-program replay vs per-call dispatch",
        "",
        f"fig10 getrf replay: batch {bs}, sizes ~ U[1, {mx}], "
        f"{reps} iterations",
        f"  bucketed  {fig10['bucketed_sim_s_per_iter'] * 1e6:9.1f} "
        "us/iter simulated (steady state, plans cached)",
        f"  compiled  {fig10['compiled_sim_s_per_iter'] * 1e6:9.1f} "
        f"us/iter simulated ({fig10['n_launches']} launches, "
        f"{fig10['n_fused']} fused, "
        f"one-time compile {fig10['compile_s'] * 1e3:.1f} ms)",
        f"  amortized simulated speedup: {fig10['speedup']:.2f}x "
        f"(gate >= {replay_gate:.1f}x)",
        f"  host wall-clock (identical numerics on both sides): "
        f"{fig10['bucketed_host_s_per_iter'] * 1e3:.2f} vs "
        f"{fig10['compiled_host_s_per_iter'] * 1e3:.2f} ms/iter "
        f"({fig10['host_speedup']:.2f}x)",
        "",
        f"serve replay: {serve['rounds']} rounds x {len(SERVE_SIZES)} "
        f"requests, hot-signature compilation",
        f"  bucketed  {serve['bucketed']['throughput']:9.1f} req/sim s "
        f"({serve['bucketed']['launches']} launches)",
        f"  compiled  {serve['compiled']['throughput']:9.1f} req/sim s "
        f"({serve['compiled']['launches']} launches, "
        f"{serve['compiled']['programs_compiled']} programs, "
        f"{serve['compiled']['compiled_dispatches']} compiled dispatches)",
        f"  simulated throughput speedup: {serve['speedup']:.2f}x "
        f"(gate >= {serve_gate:.1f}x)",
        "",
        "parity: bitwise identical in both comparisons",
    ]
    text = "\n".join(lines)
    print(text)

    (ROOT / "results").mkdir(exist_ok=True)
    (ROOT / "results" / "bench_compiled.txt").write_text(text + "\n")
    (ROOT / "BENCH_compiled.json").write_text(json.dumps({
        "fig10": fig10,
        "serve": serve,
        "gates": {"replay": replay_gate, "serve": serve_gate},
        "parity": "bitwise",
        "smoke": bool(args.smoke),
    }, indent=2) + "\n")

    ok = True
    if fig10["speedup"] < replay_gate:
        print(f"FAIL: fig10 replay speedup {fig10['speedup']:.2f}x below "
              f"gate {replay_gate:.1f}x", file=sys.stderr)
        ok = False
    if serve["speedup"] < serve_gate:
        print(f"FAIL: serve speedup {serve['speedup']:.2f}x below gate "
              f"{serve_gate:.1f}x", file=sys.stderr)
        ok = False
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
