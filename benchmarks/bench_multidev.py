"""Multi-device serving benchmark: one node, 1/2/4/8 pooled GPUs.

A :class:`~repro.serve.pool.DevicePool` routes coalesced launch groups
across the member devices of a :class:`~repro.device.node.Node`; each
device advances its own simulated timeline, so the pool's makespan (the
latest member clock once every device is idle) shrinks as devices are
added while the *results stay bitwise identical* — the pool changes
where work runs, never what it computes.

Two phases:

* **scaling** — the paper-style mixed workload (independent
  ``factor_solve`` requests, local sizes ~ U[lo, hi]) served by the
  same pool code at 1, 2, 4 and 8 devices.  Throughput is requests per
  simulated second of node makespan.  Gates: every device count
  returns bitwise-identical solutions to the 1-device run, and the
  4-device pool delivers **>= 3x** the 1-device throughput.
* **budget** — sparse sessions opened under a pool-wide
  ``sparse_memory_budget`` split evenly into per-device
  :class:`~repro.serve.session.MemoryArbiter` shares.  Gate: no
  device's resident factor bytes ever exceed its arbiter share.

Usage::

    PYTHONPATH=src python benchmarks/bench_multidev.py           # full run
    PYTHONPATH=src python benchmarks/bench_multidev.py --smoke   # CI smoke

Writes ``BENCH_multidev.json`` (repo root) and
``results/bench_multidev.txt``.  Exits non-zero if parity fails or any
gate is missed.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

import numpy as np

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.device import A100, Node  # noqa: E402
from repro.serve import CoalescingPolicy, DevicePool  # noqa: E402

DEVICE_COUNTS = (1, 2, 4, 8)
SPEEDUP_GATE = 3.0          # 4-device throughput vs 1-device


def dense_workload(n_reqs, lo, hi, seed):
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(n_reqs):
        n = int(rng.integers(lo, hi))
        a = rng.standard_normal((n, n)) + n * np.eye(n)
        out.append((a, rng.standard_normal(n)))
    return out


def serve(node, work, *, max_batch=8, budget=None):
    svc = DevicePool(node, policy=CoalescingPolicy(max_batch=max_batch),
                     sparse_memory_budget=budget, start=False)
    host_t0 = time.perf_counter()
    futs = [svc.submit_factor_solve(a, b) for a, b in work]
    while any(not f.done() for f in futs):
        svc.run_once()
    host_s = time.perf_counter() - host_t0
    xs = [f.result()[0] for f in futs]
    makespan = node.synchronize()
    snap = svc.stats.snapshot()
    svc.close()
    return xs, makespan, host_s, snap


def run_scaling(n_reqs, lo, hi, seed):
    work = dense_workload(n_reqs, lo, hi, seed)
    rows, ref_xs, base_thr = [], None, None
    for nd in DEVICE_COUNTS:
        node = Node(A100(), nd)
        xs, makespan, host_s, snap = serve(node, work)
        if ref_xs is None:
            ref_xs = xs
        elif not all(np.array_equal(a, b) for a, b in zip(ref_xs, xs)):
            raise AssertionError(
                f"parity failure: {nd}-device results differ from 1-device")
        thr = len(work) / makespan
        if base_thr is None:
            base_thr = thr
        devs = snap["devices"]
        rows.append({
            "devices": nd,
            "sim_seconds": makespan,
            "throughput": thr,
            "speedup": thr / base_thr,
            "host_seconds": host_s,
            "dispatches_per_device": {
                str(i): d["dispatches"] for i, d in devs.items()},
            "link_bytes": sum(d["link_bytes"] for d in devs.values()),
        })
    return rows


def run_budget(n_sessions, seed):
    sys.path.insert(0, str(ROOT / "tests" / "sparse"))
    from util import grid2d

    rng = np.random.default_rng(seed)
    budget = 64 << 20
    node = Node(A100(), 4)
    svc = DevicePool(node, policy=CoalescingPolicy(max_batch=4),
                     sparse_memory_budget=budget, start=False)
    share = svc._slots[0].arbiter.share()
    sessions, peak, ok = [], 0, True
    for i in range(n_sessions):
        a = grid2d(10 + i % 5, 9, seed=i)
        fut = svc.submit_factor(a)
        while not fut.done():
            svc.run_once()
        s = fut.result()
        b = rng.standard_normal(a.shape[0])
        fut = svc.submit_solve(s, b)
        while not fut.done():
            svc.run_once()
        x, _ = fut.result()
        if not np.all(np.isfinite(x)):
            ok = False
        sessions.append(s)
        for idx, d in svc.stats.snapshot()["devices"].items():
            resident = d["resident_factor_bytes"]
            peak = max(peak, resident)
            if resident > svc._slots[idx].arbiter.share():
                ok = False
    for s in sessions:
        s.close()
    svc.close()
    return {"pool_budget": budget, "initial_share": share,
            "sessions": n_sessions, "peak_resident_bytes": peak,
            "respected": ok}


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="small workload for CI")
    ap.add_argument("--requests", type=int, default=None)
    ap.add_argument("--seed", type=int, default=7)
    args = ap.parse_args()

    n = args.requests or (64 if args.smoke else 256)
    lo, hi = 16, 64
    rows = run_scaling(n, lo, hi, args.seed)
    budget = run_budget(8 if args.smoke else 16, args.seed)

    speedup4 = next(r["speedup"] for r in rows if r["devices"] == 4)
    gate_ok = speedup4 >= SPEEDUP_GATE and budget["respected"]

    lines = [
        "Multi-device pooled serving "
        f"({n} factor_solve requests, sizes U[{lo},{hi}))",
        f"{'devices':>8} {'sim s':>12} {'req/s':>12} {'speedup':>8}",
    ]
    for r in rows:
        lines.append(f"{r['devices']:>8} {r['sim_seconds']:>12.6f} "
                     f"{r['throughput']:>12.1f} {r['speedup']:>7.2f}x")
    lines += [
        "parity: bitwise identical at every device count",
        f"budget: peak resident {budget['peak_resident_bytes']} B of "
        f"{budget['initial_share']} B/device share -> "
        f"{'respected' if budget['respected'] else 'VIOLATED'}",
        f"gate: 4-device speedup {speedup4:.2f}x "
        f"(>= {SPEEDUP_GATE:.1f}x) -> {'PASS' if gate_ok else 'FAIL'}",
    ]
    text = "\n".join(lines)
    print(text)

    (ROOT / "results").mkdir(exist_ok=True)
    (ROOT / "results" / "bench_multidev.txt").write_text(text + "\n")
    bench_path = ROOT / "BENCH_multidev.json"
    merged = json.loads(bench_path.read_text()) \
        if bench_path.exists() else {}
    merged.update({
        "workload": {"requests": n, "size_lo": lo, "size_hi": hi,
                     "dtype": "float64"},
        "scaling": rows,
        "budget": budget,
        "speedup_at_4": speedup4,
        "gate": SPEEDUP_GATE,
        "parity": "bitwise",
        "smoke": bool(args.smoke),
    })
    bench_path.write_text(json.dumps(merged, indent=2) + "\n")

    if not gate_ok:
        print("FAIL: multi-device gates missed", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
