"""Host wall-clock benchmark: bucketed engine vs. naive per-matrix loops.

The simulated-device numbers (Figs 6/7/10) are engine-invariant by
construction — the bucketed engine replays the exact same ``KernelCost``
sequence.  What the engine changes is *host* time: how long the launch
bodies take to run on the machine driving the simulator.  This harness
measures that, on the two workloads the engine was built for:

* **Fig 10** — batches of 500 square matrices with sizes ~ U[1, max],
  swept over ``max``; the paper's synthetic irregular-LU workload.
* **Fig 13** — the per-level front batches of the Maxwell problem's
  assembly tree; deep levels are huge batches of small, shape-clustered
  fronts (the multifrontal case the bucketing exploits).

Timing protocol: engines are timed *interleaved* (naive, bucketed,
naive, bucketed, …) and the per-engine minimum over ``--reps`` rounds is
reported, which suppresses the machine's clock-frequency drift.  Every
round also verifies bitwise-identical factors/pivots/info and identical
simulated launch records between the engines.

``--repeat N`` switches to a *steady-state amortized* protocol on the
Fig 10 sweep: after an untimed warmup, each engine factors ``N``
consecutive fresh-valued batches of the same shapes and the amortized
per-iteration time (upload + factor + synchronize) is reported — plus a
**compiled** column, where a :class:`WorkloadProgram` is compiled once
and replayed ``N`` times.  This is the regime a time-stepping or
serving caller lives in; one-shot timings (the default mode) charge the
bucketed engine its planning cost on every call and the compiled path
its full compilation.

Usage::

    PYTHONPATH=src python benchmarks/bench_wallclock.py            # full sweep
    PYTHONPATH=src python benchmarks/bench_wallclock.py --smoke    # CI smoke
    PYTHONPATH=src python benchmarks/bench_wallclock.py --repeat 10

Writes ``BENCH_wallclock.json`` (repo root) and
``results/bench_wallclock.txt``.  Exits non-zero if the bucketed engine
is slower than the naive loop on any Fig 10 round, or (full mode) if the
headline 500-matrix mixed-size batch misses the 3x target.  The
``--repeat`` mode gates only on parity.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

import numpy as np

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.batched import BatchEngine, IrrBatch, irr_getrf  # noqa: E402
from repro.batched.program import compile_workload  # noqa: E402
from repro.device import A100, Device  # noqa: E402
from repro.workloads.fronts import build_maxwell_workload, \
    level_front_dims, synthetic_front_batch  # noqa: E402
from repro.workloads.random_batch import random_square_batch  # noqa: E402

HEADLINE = ("fig10", 500, 128)  # the acceptance workload


def _records(dev: Device):
    return [(r.name, r.cost.flops, r.cost.bytes_read, r.cost.bytes_written,
             r.cost.blocks, r.cost.compute_ramp, r.cost.kernel_class)
            for r in dev.profiler.records]


def _run_once(mats: list[np.ndarray], engine: str):
    work = [m.copy() for m in mats]
    dev = Device(A100())
    batch = IrrBatch.from_host(dev, work)
    t0 = time.perf_counter()
    piv = irr_getrf(dev, batch, engine=engine)
    dev.synchronize()
    dt = time.perf_counter() - t0
    return dt, work, piv, _records(dev)


def bench_case(mats: list[np.ndarray], reps: int) -> dict:
    """Interleaved min-of-reps timing + full parity verification."""
    t_naive, t_bucketed = [], []
    bitwise = costs = True
    ref = None
    for _ in range(reps):
        dn, fn, pn, rn = _run_once(mats, "naive")
        db, fb, pb, rb = _run_once(mats, "bucketed")
        t_naive.append(dn)
        t_bucketed.append(db)
        bitwise = bitwise and \
            all(np.array_equal(a, b) for a, b in zip(fn, fb)) and \
            all(np.array_equal(a, b) for a, b in zip(pn.ipiv, pb.ipiv)) and \
            np.array_equal(pn.info, pb.info)
        costs = costs and rn == rb
        if ref is None:
            ref = rn
    tn, tb = min(t_naive), min(t_bucketed)
    return {
        "naive_s": round(tn, 4),
        "bucketed_s": round(tb, 4),
        "speedup": round(tn / tb, 2) if tb > 0 else float("inf"),
        "bitwise_identical": bool(bitwise),
        "costs_identical": bool(costs),
        "launches": len(ref or ()),
    }


def bench_case_repeat(mats: list[np.ndarray], repeat: int) -> dict:
    """Steady-state amortized timing: warmup, then ``repeat`` fresh-
    valued iterations per engine (upload + factor + synchronize), plus
    a compile-once/replay-N compiled column."""
    shapes = [m.shape for m in mats]
    rng = np.random.default_rng(5)
    payloads = [[rng.standard_normal(s) for s in shapes]
                for _ in range(repeat)]

    def amortized(engine):
        dev = Device(A100())

        def one(mats_it):
            batch = IrrBatch.from_host(dev, [m.copy() for m in mats_it])
            irr_getrf(dev, batch, engine=engine)
            dev.synchronize()
            batch.free()

        one(mats)                               # untimed warmup
        t0 = time.perf_counter()
        for p in payloads:
            one(p)
        return (time.perf_counter() - t0) / repeat

    naive_s = amortized("naive")
    bucketed_eng = BatchEngine("bucketed")      # plan cache kept warm
    bucketed_s = amortized(bucketed_eng)

    dev_c = Device(A100())
    t0 = time.perf_counter()
    prog = compile_workload(dev_c, "getrf", shapes)
    compile_s = time.perf_counter() - t0
    prog.run(a=mats, download=False)            # warmup
    t0 = time.perf_counter()
    for p in payloads:
        prog.run(a=p, download=False)
    compiled_s = (time.perf_counter() - t0) / repeat

    # parity: replay the last payload on both sides, compare bitwise
    res = prog.run(a=payloads[-1])
    dev_b = Device(A100())
    batch = IrrBatch.from_host(dev_b, [m.copy() for m in payloads[-1]])
    piv = irr_getrf(dev_b, batch, engine=bucketed_eng)
    ref = batch.to_host()
    bitwise = \
        all(np.array_equal(a, b) for a, b in zip(ref, res.factors)) and \
        all(np.array_equal(a, b) for a, b in zip(piv.ipiv, res.ipiv)) and \
        np.array_equal(piv.info, res.info)
    batch.free()
    prog.free()
    return {
        "repeat": repeat,
        "naive_s_per_iter": round(naive_s, 4),
        "bucketed_s_per_iter": round(bucketed_s, 4),
        "compiled_s_per_iter": round(compiled_s, 4),
        "compile_s": round(compile_s, 4),
        "bucketed_speedup": round(naive_s / bucketed_s, 2),
        "compiled_speedup": round(naive_s / compiled_s, 2),
        "bitwise_identical": bool(bitwise),
    }


def run_fig10_repeat(batch_size: int, max_sizes: list[int],
                     repeat: int) -> list[dict]:
    out = []
    for mx in max_sizes:
        mats = random_square_batch(batch_size, mx, seed=17)
        row = bench_case_repeat(mats, repeat)
        row.update(workload="fig10", batch_size=batch_size, max_size=mx)
        print(f"  fig10  batch={batch_size:4d} max={mx:4d}  x{repeat}  "
              f"naive {row['naive_s_per_iter']:7.3f}s  "
              f"bucketed {row['bucketed_s_per_iter']:7.3f}s "
              f"({row['bucketed_speedup']:.2f}x)  "
              f"compiled {row['compiled_s_per_iter']:7.3f}s "
              f"({row['compiled_speedup']:.2f}x)  "
              f"bitwise={row['bitwise_identical']}")
        out.append(row)
    return out


def run_fig10(batch_size: int, max_sizes: list[int], reps: int) -> list[dict]:
    out = []
    for mx in max_sizes:
        mats = random_square_batch(batch_size, mx, seed=17)
        row = bench_case(mats, reps)
        row.update(workload="fig10", batch_size=batch_size, max_size=mx)
        print(f"  fig10  batch={batch_size:4d} max={mx:4d}  "
              f"naive {row['naive_s']:7.3f}s  bucketed {row['bucketed_s']:7.3f}s  "
              f"{row['speedup']:5.2f}x  bitwise={row['bitwise_identical']} "
              f"costs={row['costs_identical']}")
        out.append(row)
    return out


def run_fig13(mesh_n: int, reps: int, min_batch: int = 8) -> list[dict]:
    wl = build_maxwell_workload(mesh_n)
    out = []
    for lvl, dims in enumerate(level_front_dims(wl.symb)):
        if len(dims) < min_batch:
            continue  # shallow levels: a handful of large fronts
        mats = synthetic_front_batch(dims, seed=23 + lvl)
        row = bench_case(mats, reps)
        sizes = [s + u for s, u in dims]
        row.update(workload="fig13", level=lvl, batch_size=len(dims),
                   mean_front=round(float(np.mean(sizes)), 1),
                   max_front=int(max(sizes)))
        print(f"  fig13  level={lvl} batch={len(dims):4d} "
              f"mean_front={row['mean_front']:6.1f}  "
              f"naive {row['naive_s']:7.3f}s  bucketed {row['bucketed_s']:7.3f}s  "
              f"{row['speedup']:5.2f}x  bitwise={row['bitwise_identical']} "
              f"costs={row['costs_identical']}")
        out.append(row)
    return out


def report(rows: list[dict]) -> str:
    if rows and "repeat" in rows[0]:
        lines = ["wall-clock: irr_getrf steady-state amortized host time "
                 f"per iteration (x{rows[0]['repeat']} after warmup)",
                 "(upload + factor + synchronize; compiled = one program "
                 "compiled, then replayed)", ""]
        for r in rows:
            tag = f"fig10 batch={r['batch_size']} max={r['max_size']}"
            lines.append(
                f"{tag:44s} naive {r['naive_s_per_iter']:8.3f}s  "
                f"bucketed {r['bucketed_s_per_iter']:8.3f}s "
                f"({r['bucketed_speedup']:5.2f}x)  "
                f"compiled {r['compiled_s_per_iter']:8.3f}s "
                f"({r['compiled_speedup']:5.2f}x, "
                f"compile {r['compile_s']:.3f}s)  "
                f"parity={'ok' if r['bitwise_identical'] else 'FAIL'}")
        return "\n".join(lines)
    lines = ["wall-clock: irr_getrf host time, naive loop vs bucketed engine",
             "(min over interleaved reps; parity = bitwise factors/pivots/info"
             " + identical simulated launch records)", ""]
    for r in rows:
        tag = (f"fig10 batch={r['batch_size']} max={r['max_size']}"
               if r["workload"] == "fig10" else
               f"fig13 level={r['level']} batch={r['batch_size']} "
               f"mean_front={r['mean_front']}")
        lines.append(f"{tag:44s} naive {r['naive_s']:8.3f}s  "
                     f"bucketed {r['bucketed_s']:8.3f}s  "
                     f"speedup {r['speedup']:5.2f}x  "
                     f"parity={'ok' if r['bitwise_identical'] and r['costs_identical'] else 'FAIL'}")
    return "\n".join(lines)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="small CI workload: one Fig 10 case, one mesh level")
    ap.add_argument("--reps", type=int, default=None,
                    help="timing rounds per case (default 3; smoke 1)")
    ap.add_argument("--repeat", type=int, default=None, metavar="N",
                    help="steady-state mode: warm up, then amortize over "
                         "N consecutive fresh-valued iterations per "
                         "engine (adds a compiled replay column; Fig 10 "
                         "sweep only)")
    ap.add_argument("--out", default=str(ROOT / "BENCH_wallclock.json"))
    args = ap.parse_args(argv)
    if args.reps is not None and args.reps < 1:
        ap.error("--reps must be >= 1")
    if args.repeat is not None and args.repeat < 1:
        ap.error("--repeat must be >= 1")
    reps = args.reps if args.reps is not None else (1 if args.smoke else 3)

    if args.repeat is not None:
        if args.smoke:
            rows = run_fig10_repeat(batch_size=150, max_sizes=[48],
                                    repeat=args.repeat)
        else:
            rows = run_fig10_repeat(batch_size=500,
                                    max_sizes=[32, 64, 128, 256, 512],
                                    repeat=args.repeat)
        ok = all(r["bitwise_identical"] for r in rows)
        payload = {"workloads": rows, "parity_ok": ok,
                   "mode": "steady_state", "repeat": args.repeat}
        pathlib.Path(args.out).write_text(json.dumps(payload, indent=2)
                                          + "\n")
        text = report(rows)
        print()
        print(text)
        (ROOT / "results").mkdir(exist_ok=True)
        (ROOT / "results" / "bench_wallclock.txt").write_text(text + "\n")
        if not ok:
            print("FAIL: compiled replay lost bitwise parity")
            return 1
        return 0

    rows: list[dict] = []
    if args.smoke:
        rows += run_fig10(batch_size=150, max_sizes=[48], reps=reps)
        rows += run_fig13(mesh_n=6, reps=reps)
    else:
        rows += run_fig10(batch_size=500,
                          max_sizes=[32, 64, 128, 256, 512], reps=reps)
        rows += run_fig13(mesh_n=12, reps=reps)

    ok = all(r["bitwise_identical"] and r["costs_identical"] for r in rows)
    fig10 = [r for r in rows if r["workload"] == "fig10"]
    regressed = [r for r in fig10 if r["speedup"] < 1.0]
    headline = next((r for r in fig10
                     if (r["workload"], r["batch_size"], r["max_size"])
                     == HEADLINE), None)

    payload = {"workloads": rows, "parity_ok": ok,
               "headline": headline, "target_speedup": 3.0}
    pathlib.Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    text = report(rows)
    print()
    print(text)
    (ROOT / "results").mkdir(exist_ok=True)
    (ROOT / "results" / "bench_wallclock.txt").write_text(text + "\n")

    if not ok:
        print("FAIL: engines disagree (bitwise or cost records)")
        return 1
    if regressed:
        print(f"FAIL: bucketed slower than naive on {len(regressed)} "
              "fig10 case(s)")
        return 1
    if headline is not None and headline["speedup"] < 3.0:
        print(f"FAIL: headline speedup {headline['speedup']}x < 3x target")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
