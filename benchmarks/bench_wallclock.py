"""Host wall-clock benchmark: bucketed engine vs. naive per-matrix loops.

The simulated-device numbers (Figs 6/7/10) are engine-invariant by
construction — the bucketed engine replays the exact same ``KernelCost``
sequence.  What the engine changes is *host* time: how long the launch
bodies take to run on the machine driving the simulator.  This harness
measures that, on the two workloads the engine was built for:

* **Fig 10** — batches of 500 square matrices with sizes ~ U[1, max],
  swept over ``max``; the paper's synthetic irregular-LU workload.
* **Fig 13** — the per-level front batches of the Maxwell problem's
  assembly tree; deep levels are huge batches of small, shape-clustered
  fronts (the multifrontal case the bucketing exploits).

Timing protocol: engines are timed *interleaved* (naive, bucketed,
naive, bucketed, …) and the per-engine minimum over ``--reps`` rounds is
reported, which suppresses the machine's clock-frequency drift.  Every
round also verifies bitwise-identical factors/pivots/info and identical
simulated launch records between the engines.

Usage::

    PYTHONPATH=src python benchmarks/bench_wallclock.py            # full sweep
    PYTHONPATH=src python benchmarks/bench_wallclock.py --smoke    # CI smoke

Writes ``BENCH_wallclock.json`` (repo root) and
``results/bench_wallclock.txt``.  Exits non-zero if the bucketed engine
is slower than the naive loop on any Fig 10 round, or (full mode) if the
headline 500-matrix mixed-size batch misses the 3x target.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

import numpy as np

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.batched import IrrBatch, irr_getrf  # noqa: E402
from repro.device import A100, Device  # noqa: E402
from repro.workloads.fronts import build_maxwell_workload, \
    level_front_dims, synthetic_front_batch  # noqa: E402
from repro.workloads.random_batch import random_square_batch  # noqa: E402

HEADLINE = ("fig10", 500, 128)  # the acceptance workload


def _records(dev: Device):
    return [(r.name, r.cost.flops, r.cost.bytes_read, r.cost.bytes_written,
             r.cost.blocks, r.cost.compute_ramp, r.cost.kernel_class)
            for r in dev.profiler.records]


def _run_once(mats: list[np.ndarray], engine: str):
    work = [m.copy() for m in mats]
    dev = Device(A100())
    batch = IrrBatch.from_host(dev, work)
    t0 = time.perf_counter()
    piv = irr_getrf(dev, batch, engine=engine)
    dev.synchronize()
    dt = time.perf_counter() - t0
    return dt, work, piv, _records(dev)


def bench_case(mats: list[np.ndarray], reps: int) -> dict:
    """Interleaved min-of-reps timing + full parity verification."""
    t_naive, t_bucketed = [], []
    bitwise = costs = True
    ref = None
    for _ in range(reps):
        dn, fn, pn, rn = _run_once(mats, "naive")
        db, fb, pb, rb = _run_once(mats, "bucketed")
        t_naive.append(dn)
        t_bucketed.append(db)
        bitwise = bitwise and \
            all(np.array_equal(a, b) for a, b in zip(fn, fb)) and \
            all(np.array_equal(a, b) for a, b in zip(pn.ipiv, pb.ipiv)) and \
            np.array_equal(pn.info, pb.info)
        costs = costs and rn == rb
        if ref is None:
            ref = rn
    tn, tb = min(t_naive), min(t_bucketed)
    return {
        "naive_s": round(tn, 4),
        "bucketed_s": round(tb, 4),
        "speedup": round(tn / tb, 2) if tb > 0 else float("inf"),
        "bitwise_identical": bool(bitwise),
        "costs_identical": bool(costs),
        "launches": len(ref or ()),
    }


def run_fig10(batch_size: int, max_sizes: list[int], reps: int) -> list[dict]:
    out = []
    for mx in max_sizes:
        mats = random_square_batch(batch_size, mx, seed=17)
        row = bench_case(mats, reps)
        row.update(workload="fig10", batch_size=batch_size, max_size=mx)
        print(f"  fig10  batch={batch_size:4d} max={mx:4d}  "
              f"naive {row['naive_s']:7.3f}s  bucketed {row['bucketed_s']:7.3f}s  "
              f"{row['speedup']:5.2f}x  bitwise={row['bitwise_identical']} "
              f"costs={row['costs_identical']}")
        out.append(row)
    return out


def run_fig13(mesh_n: int, reps: int, min_batch: int = 8) -> list[dict]:
    wl = build_maxwell_workload(mesh_n)
    out = []
    for lvl, dims in enumerate(level_front_dims(wl.symb)):
        if len(dims) < min_batch:
            continue  # shallow levels: a handful of large fronts
        mats = synthetic_front_batch(dims, seed=23 + lvl)
        row = bench_case(mats, reps)
        sizes = [s + u for s, u in dims]
        row.update(workload="fig13", level=lvl, batch_size=len(dims),
                   mean_front=round(float(np.mean(sizes)), 1),
                   max_front=int(max(sizes)))
        print(f"  fig13  level={lvl} batch={len(dims):4d} "
              f"mean_front={row['mean_front']:6.1f}  "
              f"naive {row['naive_s']:7.3f}s  bucketed {row['bucketed_s']:7.3f}s  "
              f"{row['speedup']:5.2f}x  bitwise={row['bitwise_identical']} "
              f"costs={row['costs_identical']}")
        out.append(row)
    return out


def report(rows: list[dict]) -> str:
    lines = ["wall-clock: irr_getrf host time, naive loop vs bucketed engine",
             "(min over interleaved reps; parity = bitwise factors/pivots/info"
             " + identical simulated launch records)", ""]
    for r in rows:
        tag = (f"fig10 batch={r['batch_size']} max={r['max_size']}"
               if r["workload"] == "fig10" else
               f"fig13 level={r['level']} batch={r['batch_size']} "
               f"mean_front={r['mean_front']}")
        lines.append(f"{tag:44s} naive {r['naive_s']:8.3f}s  "
                     f"bucketed {r['bucketed_s']:8.3f}s  "
                     f"speedup {r['speedup']:5.2f}x  "
                     f"parity={'ok' if r['bitwise_identical'] and r['costs_identical'] else 'FAIL'}")
    return "\n".join(lines)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="small CI workload: one Fig 10 case, one mesh level")
    ap.add_argument("--reps", type=int, default=None,
                    help="timing rounds per case (default 3; smoke 1)")
    ap.add_argument("--out", default=str(ROOT / "BENCH_wallclock.json"))
    args = ap.parse_args(argv)
    if args.reps is not None and args.reps < 1:
        ap.error("--reps must be >= 1")
    reps = args.reps if args.reps is not None else (1 if args.smoke else 3)

    rows: list[dict] = []
    if args.smoke:
        rows += run_fig10(batch_size=150, max_sizes=[48], reps=reps)
        rows += run_fig13(mesh_n=6, reps=reps)
    else:
        rows += run_fig10(batch_size=500,
                          max_sizes=[32, 64, 128, 256, 512], reps=reps)
        rows += run_fig13(mesh_n=12, reps=reps)

    ok = all(r["bitwise_identical"] and r["costs_identical"] for r in rows)
    fig10 = [r for r in rows if r["workload"] == "fig10"]
    regressed = [r for r in fig10 if r["speedup"] < 1.0]
    headline = next((r for r in fig10
                     if (r["workload"], r["batch_size"], r["max_size"])
                     == HEADLINE), None)

    payload = {"workloads": rows, "parity_ok": ok,
               "headline": headline, "target_speedup": 3.0}
    pathlib.Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    text = report(rows)
    print()
    print(text)
    (ROOT / "results").mkdir(exist_ok=True)
    (ROOT / "results" / "bench_wallclock.txt").write_text(text + "\n")

    if not ok:
        print("FAIL: engines disagree (bitwise or cost records)")
        return 1
    if regressed:
        print(f"FAIL: bucketed slower than naive on {len(regressed)} "
              "fig10 case(s)")
        return 1
    if headline is not None and headline["speedup"] < 3.0:
        print(f"FAIL: headline speedup {headline['speedup']}x < 3x target")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
