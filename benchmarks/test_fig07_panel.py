"""Benchmark: regenerate Figure 7 (fused vs column-wise panel)."""

from repro.device.spec import MI100
from repro.experiments import fig07_panel


def test_fig07_panel_a100(benchmark, archive):
    results = benchmark.pedantic(fig07_panel.run, rounds=1, iterations=1)
    archive("fig07_panel_a100", fig07_panel.report(results))
    for fused, col, fits in zip(results["fused_gflops"],
                                results["columnwise_gflops"],
                                results["fused_fits"]):
        if fits:
            assert fused > col


def test_fig07_panel_mi100(benchmark, archive):
    # §IV-E: the MI100's 64 KB LDS forces the column-wise fallback at a
    # much smaller panel height than the A100.
    results = benchmark.pedantic(lambda: fig07_panel.run(spec=MI100()),
                                 rounds=1, iterations=1)
    archive("fig07_panel_mi100", fig07_panel.report(results))
    a100 = fig07_panel.run()
    assert sum(results["fused_fits"]) < sum(a100["fused_fits"])
