"""Benchmark: regenerate Figure 10 (irrLU-GPU vs CPU vs streamed)."""

from repro.experiments import fig10_irrlu


def test_fig10_irrlu(benchmark, archive):
    results = benchmark.pedantic(fig10_irrlu.run, rounds=1, iterations=1)
    archive("fig10_irrlu", fig10_irrlu.report(results))
    # paper shape: streamed solvers flat and low; A100 pulls ahead of the
    # CPU for larger workloads; CPU competitive against the MI100.
    for irr, st in zip(results["irrLU_A100"], results["streamed_A100"]):
        assert st < irr
    assert results["irrLU_A100"][-1] > 2 * results["CPU_MKL"][-1]
    assert results["irrLU_A100"][-1] > results["irrLU_MI100"][-1]
