"""Benchmark: regenerate Figure 14 (per-operation batched vs looped)."""

from repro.experiments import fig14_breakdown


def test_fig14_breakdown(benchmark, archive):
    results = benchmark.pedantic(fig14_breakdown.run, rounds=1, iterations=1)
    archive("fig14_breakdown", fig14_breakdown.report(results))
    # paper shape: irrLU/irrTRSM beat the looped vendor routines for
    # "almost all matrix sizes" — always once the batch is substantial,
    # and on the majority of levels overall.
    wins = 0
    for lev in results["levels"]:
        if lev["batched"]["lu"] < lev["looped"]["lu"]:
            wins += 1
        if lev["batch_size"] >= 8:
            assert lev["batched"]["lu"] < lev["looped"]["lu"]
            assert lev["batched"]["trsm"] < 1.5 * lev["looped"]["trsm"]
    assert wins >= len(results["levels"]) // 2
