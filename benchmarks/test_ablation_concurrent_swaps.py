"""Ablation: concurrent left/right row interchanges (§VI future work).

"There is also a chance of concurrent kernel execution which can be
exploited in the case of performing the right and left swaps
simultaneously."  We run irrLU with the left swaps on a secondary stream
(event-synchronized with each iteration's panel) and measure the overlap
benefit on the simulated A100.
"""

from repro.analysis.report import format_table
from repro.batched import IrrBatch, irr_getrf
from repro.device import A100, Device
from repro.experiments.common import is_fast_mode
from repro.workloads import random_square_batch


def test_ablation_concurrent_swaps(benchmark, archive):
    batch = 100 if is_fast_mode() else 500
    sizes = (128, 256, 512)

    def run_all():
        out = {}
        for mx in sizes:
            mats = random_square_batch(batch, mx, seed=23)
            for conc in (False, True):
                dev = Device(A100())
                b = IrrBatch.from_host(dev, [m.copy() for m in mats])
                with dev.timed_region() as t:
                    irr_getrf(dev, b, concurrent_swaps=conc)
                out[(mx, conc)] = t["elapsed"]
        return out

    times = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [[mx, times[(mx, False)] * 1e3, times[(mx, True)] * 1e3,
             times[(mx, False)] / times[(mx, True)]]
            for mx in sizes]
    archive("ablation_concurrent_swaps", format_table(
        ["max size", "serial swaps (ms)", "concurrent swaps (ms)",
         "speedup"],
        rows, title=(f"Ablation — overlapping left/right row interchanges "
                     f"(batch={batch}, A100 model)")))

    # overlap must help somewhere and never hurt measurably
    speedups = [times[(mx, False)] / times[(mx, True)] for mx in sizes]
    assert max(speedups) > 1.05
    assert min(speedups) > 0.97
