"""Solve-phase benchmark: solves/sec with the factor cache vs the seed path.

A production solver factors once and solves *many* times (§V-B amortizes
the factorization over repeated right-hand sides, Fig 12).  The seed
solve path re-did all per-solve setup every call: it re-uploaded every
factor level, applied pivots row-by-row in Python, and scatter-updated
front-by-front.  This harness measures what the ``SolvePlan`` +
``DeviceFactorCache`` layer buys on the Maxwell system's assembly tree,
in *host wall-clock* per solve:

* **naive**  — the pre-PR streaming path (``engine="naive"``), timed
  fresh each round: every solve re-uploads and re-derives everything.
* **cold**   — first plan-driven solve, including building the plan and
  uploading the cache (the one-time cost a request server pays once).
* **warm**   — repeated solves against the warm plan + cache (the
  steady-state cost; reported as solves/sec).

Swept over 1, 8 and 64 right-hand sides.  Every round verifies the
parity contract: bitwise-identical solutions and identical simulated
launch records between the naive and plan-driven paths.

Usage::

    PYTHONPATH=src python benchmarks/bench_solve.py            # full sweep
    PYTHONPATH=src python benchmarks/bench_solve.py --smoke    # CI smoke

Writes ``BENCH_solve.json`` (repo root) and ``results/bench_solve.txt``.
Exits non-zero if parity fails, if the warm path fails the minimum
speedup over naive on any case, or (full mode) if the headline —
warm-cache repeated single-RHS solves — misses the 3x target.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

import numpy as np

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.device import A100, Device  # noqa: E402
from repro.sparse.numeric.cpu_factor import multifrontal_factor_cpu  # noqa: E402
from repro.sparse.numeric.gpu_solve import multifrontal_solve_gpu  # noqa: E402
from repro.sparse.numeric.solve_plan import DeviceFactorCache, \
    SolvePlan  # noqa: E402
from repro.workloads.fronts import build_maxwell_workload  # noqa: E402

HEADLINE_NRHS = 1       # the acceptance case: repeated single-RHS solves
TARGET_SPEEDUP = 3.0    # full-mode warm-vs-naive target on the headline
MIN_SPEEDUP = 1.2       # every case, both modes: warm must beat naive


def _records(dev: Device):
    return [(r.name, r.cost.flops, r.cost.bytes_read, r.cost.bytes_written,
             r.cost.blocks, r.cost.compute_ramp, r.cost.kernel_class)
            for r in dev.profiler.records]


def bench_case(factors, b: np.ndarray, reps: int,
               warm_per_rep: int = 3) -> dict:
    """Interleaved min-of-reps timing + full parity verification."""
    t_naive, t_cold, t_warm = [], [], []
    bitwise = costs = True
    uploads_warm = 0
    for _ in range(reps):
        dev_n = Device(A100())
        t0 = time.perf_counter()
        rn = multifrontal_solve_gpu(dev_n, factors, b, engine="naive")
        dev_n.synchronize()
        t_naive.append(time.perf_counter() - t0)

        dev_p = Device(A100())
        t0 = time.perf_counter()
        plan = SolvePlan(factors)
        cache = DeviceFactorCache(dev_p, factors, plan)
        rc = multifrontal_solve_gpu(dev_p, factors, b,
                                    plan=plan, cache=cache)
        dev_p.synchronize()
        t_cold.append(time.perf_counter() - t0)
        uploads_cold = cache.uploads

        rw = rc
        for _ in range(warm_per_rep):
            n0 = len(dev_p.profiler.records)
            t0 = time.perf_counter()
            rw = multifrontal_solve_gpu(dev_p, factors, b,
                                        plan=plan, cache=cache)
            dev_p.synchronize()
            t_warm.append(time.perf_counter() - t0)
        uploads_warm = cache.uploads - uploads_cold   # 0 when fully warm
        cache.free()

        bitwise = bitwise and np.array_equal(rn.x, rw.x) and \
            np.array_equal(rn.x, rc.x)
        costs = costs and _records(dev_n) == _records(dev_p)[n0:]
    tn, tc, tw = min(t_naive), min(t_cold), min(t_warm)
    return {
        "naive_s": round(tn, 5),
        "cold_s": round(tc, 5),
        "warm_s": round(tw, 5),
        "warm_solves_per_s": round(1.0 / tw, 1) if tw > 0 else float("inf"),
        "speedup_warm": round(tn / tw, 2) if tw > 0 else float("inf"),
        "amortization": round(tc / tw, 2) if tw > 0 else float("inf"),
        "warm_reuploads": int(uploads_warm),
        "bitwise_identical": bool(bitwise),
        "costs_identical": bool(costs),
    }


def run_sweep(mesh_n: int, nrhs_list: list[int], reps: int) -> list[dict]:
    wl = build_maxwell_workload(mesh_n)
    factors = multifrontal_factor_cpu(wl.a_perm, wl.symb)
    n = wl.symb.n
    rng = np.random.default_rng(42)
    out = []
    for nrhs in nrhs_list:
        b = rng.standard_normal((n, nrhs)) if nrhs > 1 else \
            rng.standard_normal(n)
        row = bench_case(factors, b, reps)
        row.update(mesh_n=mesh_n, n=n, nrhs=nrhs)
        print(f"  maxwell n={n:5d} nrhs={nrhs:3d}  "
              f"naive {row['naive_s'] * 1e3:8.2f}ms  "
              f"cold {row['cold_s'] * 1e3:8.2f}ms  "
              f"warm {row['warm_s'] * 1e3:8.2f}ms  "
              f"{row['speedup_warm']:5.2f}x  "
              f"({row['warm_solves_per_s']:.0f} solves/s)  "
              f"bitwise={row['bitwise_identical']} "
              f"costs={row['costs_identical']} "
              f"reuploads={row['warm_reuploads']}")
        out.append(row)
    return out


def report(rows: list[dict]) -> str:
    lines = ["solve phase: host time per solve, streamed naive path vs "
             "SolvePlan + DeviceFactorCache",
             "(Maxwell assembly tree; min over interleaved reps; parity = "
             "bitwise solutions + identical",
             "simulated launch records; warm = repeated solves against the "
             "resident factor cache)", ""]
    for r in rows:
        parity = "ok" if r["bitwise_identical"] and r["costs_identical"] \
            else "FAIL"
        lines.append(
            f"maxwell n={r['n']:5d} nrhs={r['nrhs']:3d}   "
            f"naive {r['naive_s'] * 1e3:8.2f}ms  "
            f"cold {r['cold_s'] * 1e3:8.2f}ms  "
            f"warm {r['warm_s'] * 1e3:8.2f}ms  "
            f"speedup {r['speedup_warm']:5.2f}x  "
            f"solves/s {r['warm_solves_per_s']:8.1f}  "
            f"parity={parity}")
    return "\n".join(lines)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="small CI workload: mesh_n=6, nrhs 1 and 8")
    ap.add_argument("--reps", type=int, default=None,
                    help="timing rounds per case (default 3; smoke 1)")
    ap.add_argument("--out", default=str(ROOT / "BENCH_solve.json"))
    args = ap.parse_args(argv)
    if args.reps is not None and args.reps < 1:
        ap.error("--reps must be >= 1")
    reps = args.reps if args.reps is not None else (1 if args.smoke else 3)

    if args.smoke:
        rows = run_sweep(mesh_n=6, nrhs_list=[1, 8], reps=reps)
    else:
        rows = run_sweep(mesh_n=12, nrhs_list=[1, 8, 64], reps=reps)

    ok = all(r["bitwise_identical"] and r["costs_identical"] for r in rows)
    no_reuploads = all(r["warm_reuploads"] == 0 for r in rows)
    slow = [r for r in rows if r["speedup_warm"] < MIN_SPEEDUP]
    headline = next((r for r in rows if r["nrhs"] == HEADLINE_NRHS), None)

    payload = {"workloads": rows, "parity_ok": ok,
               "warm_zero_reuploads": no_reuploads,
               "headline": headline, "target_speedup": TARGET_SPEEDUP,
               "min_speedup": MIN_SPEEDUP}
    pathlib.Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    text = report(rows)
    print()
    print(text)
    (ROOT / "results").mkdir(exist_ok=True)
    (ROOT / "results" / "bench_solve.txt").write_text(text + "\n")

    if not ok:
        print("FAIL: paths disagree (bitwise solutions or cost records)")
        return 1
    if not no_reuploads:
        print("FAIL: warm solves re-uploaded factor levels")
        return 1
    if slow:
        print(f"FAIL: warm cache below {MIN_SPEEDUP}x over naive on "
              f"{len(slow)} case(s)")
        return 1
    if not args.smoke and headline is not None and \
            headline["speedup_warm"] < TARGET_SPEEDUP:
        print(f"FAIL: headline warm speedup {headline['speedup_warm']}x "
              f"< {TARGET_SPEEDUP}x target")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
