"""Benchmark: regenerate Figure 11 (few large matrices, crossover)."""

from repro.experiments import fig11_large


def test_fig11_large(benchmark, archive):
    results = benchmark.pedantic(fig11_large.run, rounds=1, iterations=1)
    archive("fig11_large", fig11_large.report(results))
    # paper shape: the gap is much smaller than in Fig 10, and the
    # streamed solver overtakes irrLU at the largest sizes.
    ratio = [s / i for i, s in zip(results["irrLU"], results["streamed"])]
    assert min(ratio) < 1.2          # irrLU competitive in the mid range
    assert ratio[-1] > ratio[len(ratio) // 2]  # streamed gaining at the top
