"""Benchmark: regenerate Figure 13 (front sizes/batch sizes per level)."""

from repro.experiments import fig13_levels


def test_fig13_levels(benchmark, archive):
    results = benchmark.pedantic(fig13_levels.run, rounds=1, iterations=1)
    archive("fig13_levels", fig13_levels.report(results))
    stats = results["levels"]  # deepest level first
    assert stats[0]["batch_size"] > stats[-1]["batch_size"]
    assert stats[-1]["mean_size"] > stats[0]["mean_size"]
    assert stats[-1]["batch_size"] == 1
