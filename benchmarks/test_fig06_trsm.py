"""Benchmark: regenerate Figure 6 (irrTRSM vs MAGMA-style TRSM)."""

from repro.experiments import fig06_trsm


def test_fig06_trsm(benchmark, archive):
    results = benchmark.pedantic(fig06_trsm.run, rounds=1, iterations=1)
    archive("fig06_trsm", fig06_trsm.report(results))
    # paper shape: clear asymptotic speedup, comparable accuracy
    assert results["speedup"][-1] > 2.0
    assert max(results["irrTRSM_err"]) < 1e-12
