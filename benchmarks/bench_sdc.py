"""SDC-defense benchmark: circuit breaker vs no-breaker under a storm.

A persistently corrupting device makes every dispatch pay the repair
bill: the compiled fast path detects the corruption via its program
checksum, re-runs the whole program (twice — the bounded ABFT budget),
raises a typed ``CorruptionDetected``, and falls back to the bucketed
ladder.  The request completes bitwise-correct — but its latency
carries two wasted program re-runs, on *every* dispatch of the storm.

The circuit breaker bounds that second payment.  Fed per-dispatch
recovery-log deltas, it opens under the storm and skips the compiled
rung entirely: storm-phase dispatches go straight to the bucketed path
(whose launches are not ``fused[...]`` sites, so the pinned fault never
fires), then a half-open probe re-closes the breaker once the faults
clear and compiled dispatch resumes.

This harness pushes identical three-phase traffic (warm / storm /
recovery) through two services:

* **no-breaker** — ``CircuitBreaker(min_observations=10**9)``: the
  monitor never accumulates enough trusted evidence to open, so every
  storm dispatch pays the compiled-detect-fallback tax.
* **breaker**    — the default ``CircuitBreaker()``.

Gates (exit non-zero on miss):

1. the breaker **opens** during the storm and the no-breaker baseline
   never does;
2. every completed request in *both* runs is **bitwise identical** to
   the fault-free reference — zero failed requests, zero wrong answers;
3. storm-phase **p99 latency** (simulated seconds per dispatch) is
   strictly better with the breaker than without;
4. after the faults clear the breaker **closes** and the compiled fast
   path **resumes** (compiled dispatches strictly increase in the
   recovery phase).

Usage::

    PYTHONPATH=src python benchmarks/bench_sdc.py            # full run
    PYTHONPATH=src python benchmarks/bench_sdc.py --smoke    # CI smoke

Writes ``BENCH_sdc.json`` (repo root) and ``results/bench_sdc.txt``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

import numpy as np

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.device import A100, PERSISTENT, Device, FaultPlan, \
    FaultRule  # noqa: E402
from repro.serve import CircuitBreaker, CoalescingPolicy, \
    SolverService  # noqa: E402

ORDER = 48          # one hot signature: every request compiles/coalesces


def reference_lu(a):
    svc = SolverService(Device(A100()), start=False)
    h = svc.factor(a)
    lu = h.lu.copy()
    svc.close()
    return lu


def run_service(a, ref_lu, *, with_breaker: bool, warm: int, storm: int,
                recover: int, seed: int):
    """Three-phase single-request traffic; returns a result dict with
    per-phase latencies (simulated seconds per dispatch) and counters."""
    dev = Device(A100())
    breaker = CircuitBreaker() if with_breaker else \
        CircuitBreaker(min_observations=10 ** 9)
    svc = SolverService(dev, policy=CoalescingPolicy(
        max_batch=4, compile_hot=True, hot_threshold=2),
        start=False, breaker=breaker)

    wrong = 0

    def round_trip():
        """One dispatch; returns (simulated latency, saw_fault)."""
        nonlocal wrong
        t0 = dev.synchronize()
        evidence0 = (svc.stats.corruptions_detected
                     + svc.stats.kernel_reexecs)
        fut = svc.submit_factor(a)
        svc.run_once()
        lat = dev.synchronize() - t0
        faulted = (svc.stats.corruptions_detected
                   + svc.stats.kernel_reexecs) > evidence0
        h = fut.result(0)
        if not np.array_equal(h.lu, ref_lu):
            wrong += 1
        return lat, faulted

    host0 = time.perf_counter()
    warm_lat = [round_trip()[0] for _ in range(warm)]

    plan = FaultPlan([FaultRule("corrupt", at=0, times=PERSISTENT,
                                match="fused[")], seed=seed)
    opened = False
    storm_lat = []
    with dev.fault_scope(plan):
        for _ in range(storm):
            storm_lat.append(round_trip())
            opened = opened or svc.breaker.state != "closed"
    storm_snap = svc.stats.snapshot()

    compiled_before = storm_snap["compiled_dispatches"]
    recover_lat = [round_trip()[0] for _ in range(recover)]
    host = time.perf_counter() - host0

    # "unaffected traffic": storm dispatches that saw no fault evidence
    # (with the breaker open these run the clean bucketed path; the
    # half-open probes deliberately exercise the faulty rung and are
    # excluded).  The no-breaker baseline hits the fault on every
    # dispatch, so its unaffected set falls back to the whole phase.
    all_lat = [lat for lat, _ in storm_lat]
    clean_lat = [lat for lat, faulted in storm_lat if not faulted] \
        or all_lat

    snap = svc.stats.snapshot()
    res = {
        "breaker": with_breaker,
        "opened": opened,
        "final_state": snap["breaker_state"],
        "wrong_answers": wrong,
        "failed": snap["failed"],
        "corruptions_detected": snap["corruptions_detected"],
        "kernel_reexecs": snap["kernel_reexecs"],
        "degraded_dispatches": snap["degraded_dispatches"],
        "compiled_resumed": snap["compiled_dispatches"] - compiled_before,
        "probes": svc.breaker.probes,
        "warm_p99": float(np.percentile(warm_lat, 99)),
        "storm_p50": float(np.percentile(all_lat, 50)),
        "storm_p99_all": float(np.percentile(all_lat, 99)),
        "storm_p99": float(np.percentile(clean_lat, 99)),
        "unaffected_dispatches": len(clean_lat)
        if clean_lat is not all_lat else 0,
        "recover_p99": float(np.percentile(recover_lat, 99)),
        "host_seconds": host,
    }
    svc.close()
    assert dev.allocated_bytes == 0, "service leaked device memory"
    return res


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="small workload (CI)")
    ap.add_argument("--seed", type=int, default=5)
    args = ap.parse_args()

    warm, storm, recover = (4, 16, 24) if args.smoke else (4, 40, 48)

    rng = np.random.default_rng(0)
    a = rng.standard_normal((ORDER, ORDER)) + ORDER * np.eye(ORDER)
    ref_lu = reference_lu(a)

    base = run_service(a, ref_lu, with_breaker=False, warm=warm,
                       storm=storm, recover=recover, seed=args.seed)
    brk = run_service(a, ref_lu, with_breaker=True, warm=warm,
                      storm=storm, recover=recover, seed=args.seed)

    failures = []
    if not brk["opened"]:
        failures.append("breaker never opened during the storm")
    if base["opened"]:
        failures.append("no-breaker baseline opened (must stay closed)")
    for tag, res in (("no-breaker", base), ("breaker", brk)):
        if res["wrong_answers"]:
            failures.append(f"{tag}: {res['wrong_answers']} requests "
                            "returned wrong factors")
        if res["failed"]:
            failures.append(f"{tag}: {res['failed']} requests failed")
    if not brk["storm_p99"] < base["storm_p99"]:
        failures.append(
            f"storm p99 with breaker ({brk['storm_p99']:.3e}s) not "
            f"better than without ({base['storm_p99']:.3e}s)")
    if brk["final_state"] != "closed":
        failures.append("breaker did not re-close after the faults "
                        f"cleared (state: {brk['final_state']})")
    if brk["compiled_resumed"] <= 0:
        failures.append("compiled fast path did not resume after the "
                        "breaker closed")

    gain = base["storm_p99"] / brk["storm_p99"] \
        if brk["storm_p99"] else float("inf")
    lines = [
        "bench_sdc: circuit breaker vs no-breaker under a persistent "
        "corruption storm",
        f"traffic: {warm} warm + {storm} storm + {recover} recovery "
        f"factor({ORDER}) requests, compiled hot path, seed {args.seed}",
        "",
        f"{'mode':<12} {'storm p50':>11} {'p99 clean':>11} "
        f"{'p99 all':>11} {'corruptions':>12} {'reexecs':>8} "
        f"{'degraded':>9} {'wrong':>6} {'failed':>7}",
    ]
    for tag, res in (("no-breaker", base), ("breaker", brk)):
        lines.append(
            f"{tag:<12} {res['storm_p50']:>11.3e} "
            f"{res['storm_p99']:>11.3e} "
            f"{res['storm_p99_all']:>11.3e} "
            f"{res['corruptions_detected']:>12d} "
            f"{res['kernel_reexecs']:>8d} "
            f"{res['degraded_dispatches']:>9d} "
            f"{res['wrong_answers']:>6d} {res['failed']:>7d}")
    lines += [
        "",
        "('p99 clean' is the tail of storm dispatches that saw no fault "
        "evidence — the unaffected traffic the breaker protects; "
        "half-open probes are excluded)",
        f"unaffected storm p99 improvement with breaker: {gain:.2f}x",
        f"breaker: opened={brk['opened']} "
        f"final_state={brk['final_state']} probes={brk['probes']} "
        f"compiled_resumed={brk['compiled_resumed']}",
        "every completed request bitwise identical to the fault-free "
        "reference in both modes",
    ]
    if failures:
        lines += [""] + [f"FAIL: {f}" for f in failures]
    else:
        lines += ["", "all gates met: breaker opened, zero wrong/failed "
                       "requests, storm p99 improved, breaker re-closed "
                       "with compiled dispatch resuming"]
    text = "\n".join(lines)
    print(text)

    (ROOT / "results").mkdir(exist_ok=True)
    (ROOT / "results" / "bench_sdc.txt").write_text(text + "\n")
    (ROOT / "BENCH_sdc.json").write_text(json.dumps({
        "workload": {"order": ORDER, "warm": warm, "storm": storm,
                     "recover": recover, "seed": args.seed},
        "no_breaker": base,
        "breaker": brk,
        "storm_p99_gain": gain,
        "smoke": bool(args.smoke),
        "gates_met": not failures,
        "failures": failures,
    }, indent=2) + "\n")

    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
