"""Ablation: the expanded interface + DCWI vs legacy setup kernels.

§III-C / §IV-A: without the expanded interface, every blocked step must
update the device-resident pointer arrays and dimension vectors with
auxiliary kernels ("the pointers and the sizes must be carefully updated
... undoubtedly daunting and costly").  We quantify that: run irrLU as
is, then re-run charging the legacy overhead — two setup launches
(pointer arithmetic + dimension update) before every computational step.
"""

from repro.analysis.report import format_table
from repro.batched import IrrBatch, irr_getrf
from repro.device import A100, Device, KernelCost
from repro.experiments.common import is_fast_mode
from repro.workloads import random_square_batch

_SETUPS_PER_STEP = 2


def _count_steps(dev) -> int:
    """Computational steps = kernel launches of the factorization."""
    return dev.profiler.launch_count


def _measure(mats, legacy: bool):
    dev = Device(A100())
    b = IrrBatch.from_host(dev, [m.copy() for m in mats])
    batch = len(mats)
    with dev.timed_region() as t:
        if legacy:
            # First pass counted the steps; charge the setup kernels the
            # legacy interface would interleave (pointer array + dim
            # vectors rewritten on the device before each step).
            probe = Device(A100())
            pb = IrrBatch.from_host(probe, [m.copy() for m in mats])
            probe.host_time = 0.0
            irr_getrf(probe, pb)
            steps = _count_steps(probe)
            for _ in range(steps * _SETUPS_PER_STEP):
                dev.launch("legacy:setup", None, KernelCost(
                    bytes_written=5 * batch * 8,
                    blocks=max(1, batch // 128), threads_per_block=128,
                    kernel_class="swap"))
        irr_getrf(dev, b)
    return t["elapsed"]


def test_ablation_dcwi(benchmark, archive):
    batch = 150 if is_fast_mode() else 1000
    results = {}

    def run_all():
        for max_size in (64, 128, 256):
            mats = random_square_batch(batch, max_size, seed=17)
            results[max_size] = (_measure(mats, legacy=False),
                                 _measure(mats, legacy=True))
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [[n, t0 * 1e3, t1 * 1e3, t1 / t0]
            for n, (t0, t1) in results.items()]
    archive("ablation_dcwi", format_table(
        ["max size", "DCWI (ms)", "legacy setup (ms)", "overhead x"],
        rows, title=("Ablation — expanded interface + DCWI vs legacy "
                     f"per-step setup kernels (batch={batch})")))

    # the legacy emulation is strictly slower, and relatively worse for
    # small matrices where setup launches dominate real work
    overheads = [t1 / t0 for _, (t0, t1) in sorted(results.items())]
    assert all(o > 1.1 for o in overheads)
    assert overheads[0] >= overheads[-1] * 0.9
