"""Benchmark: regenerate Table I (sparse-solver comparison on Maxwell)."""

from repro.experiments import table1_solvers


def test_table1_solvers(benchmark, archive):
    results = benchmark.pedantic(table1_solvers.run, rounds=1, iterations=1)
    archive("table1_solvers", table1_solvers.report(results))

    times = {(r["solver"], r["device"].split("-")[0]): r["factor_seconds"]
             for r in results["rows"]}
    t_best = times[("irr-batched", "A100")]
    # paper shape: the proposed solution outperforms every other solver.
    for key, t in times.items():
        if key[0] != "irr-batched":
            assert t_best < t
    # launch/sync counters shrink vs the STRUMPACK model (9.1s -> 0.33s,
    # 6.5s -> 0.16s in the paper; we assert the direction and margin).
    c = results["counters"]
    assert c["batched"]["launch_time"] < c["strumpack"]["launch_time"]
    assert c["batched"]["sync_wait"] < c["strumpack"]["sync_wait"]
    # §V-B: machine-precision residual after one refinement step.
    assert results["residuals"][-1] < 1e-14
