"""Ablation: rehearsed irrLASWP vs looped irrSWAP (§IV-F).

Two workloads: realistic random matrices (pivots scattered — the
rehearsed variant's bandwidth advantage shows) and the paper's corner
case of diagonally dominant matrices (pivots on the diagonal — the looped
variant skips every swap and can win, since the rehearsed cost is
pattern-independent).
"""

import numpy as np

from repro.analysis.report import format_table
from repro.batched import IrrBatch, irr_getrf
from repro.device import A100, Device
from repro.experiments.common import is_fast_mode
from repro.workloads import random_square_batch


def _measure(mats, variant):
    dev = Device(A100())
    b = IrrBatch.from_host(dev, [m.copy() for m in mats])
    with dev.timed_region() as t:
        irr_getrf(dev, b, laswp_variant=variant)
    return t["elapsed"]


def _diagonally_dominant(mats):
    return [m + 1e3 * m.shape[0] * np.eye(m.shape[0]) for m in mats]


def test_ablation_laswp(benchmark, archive):
    batch = 100 if is_fast_mode() else 500
    max_size = 256 if is_fast_mode() else 512
    mats = random_square_batch(batch, max_size, seed=11)

    def run_all():
        return {
            ("random pivots", "rehearsed"): _measure(mats, "rehearsed"),
            ("random pivots", "looped"): _measure(mats, "looped"),
            ("diagonal pivots", "rehearsed"):
                _measure(_diagonally_dominant(mats), "rehearsed"),
            ("diagonal pivots", "looped"):
                _measure(_diagonally_dominant(mats), "looped"),
        }

    times = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [[w, v, t * 1e3] for (w, v), t in times.items()]
    archive("ablation_laswp", format_table(
        ["workload", "laswp variant", "irrLU time (ms)"], rows,
        title="Ablation — rehearsed vs looped row interchanges"))

    # realistic pivoting: the rehearsed optimization wins
    assert times[("random pivots", "rehearsed")] < \
        times[("random pivots", "looped")]
    # corner case: the looped variant loses much less (or wins) because
    # diagonal pivots make its swaps free while the rehearsed cost stays.
    adv_random = times[("random pivots", "looped")] / \
        times[("random pivots", "rehearsed")]
    adv_diag = times[("diagonal pivots", "looped")] / \
        times[("diagonal pivots", "rehearsed")]
    assert adv_diag < adv_random
