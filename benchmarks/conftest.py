"""Benchmark-suite fixtures.

Each benchmark regenerates one paper figure/table, prints the
paper-shaped rows, and archives them under ``results/``.  Run with::

    pytest benchmarks/ --benchmark-only

Set ``REPRO_FULL=1`` for paper-scale workloads (much slower).
"""

import pathlib

import pytest


@pytest.fixture(scope="session")
def results_dir():
    d = pathlib.Path(__file__).resolve().parent.parent / "results"
    d.mkdir(exist_ok=True)
    return d


@pytest.fixture
def archive(results_dir):
    """Print a report and persist it to results/<name>.txt."""

    def _archive(name: str, text: str) -> None:
        print()
        print(text)
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _archive
