"""Benchmark: regenerate the Fig 12 / §V-B problem-pipeline record."""

from repro.experiments import fig12_problem


def test_fig12_problem(benchmark, archive):
    results = benchmark.pedantic(fig12_problem.run, rounds=1, iterations=1)
    archive("fig12_problem", fig12_problem.report(results))
    # §V-B: machine precision after one refinement step, for every RHS
    assert all(r < 1e-13 for r in results["residuals"])
    # amortization: repeated solves are cheap relative to analysis+factor
    assert max(results["t_solves_wall"]) < \
        5 * (results["t_analyze_wall"] + 1e-9)
    assert results["factor_nnz"] > results["nnz"]
