"""Ablation: interleaved layout vs the expanded interface (§II).

The interleaved (Kokkos/MKL-style) layout vectorizes perfectly over a
*uniform* small batch but cannot express irregular sizes at all; the
expanded interface handles both.  This quantifies what each gives up on
the other's home turf.
"""

import numpy as np
import pytest

from repro.analysis.report import format_table
from repro.batched import IrrBatch, interleave, interleaved_getrf, \
    irr_getrf, vendor_getrf
from repro.device import A100, Device
from repro.experiments.common import is_fast_mode
from repro.workloads import random_square_batch


def test_ablation_interleaved(benchmark, archive):
    batch = 500 if is_fast_mode() else 2000
    n = 16
    rng = np.random.default_rng(31)
    uniform = [rng.standard_normal((n, n)) for _ in range(batch)]

    def run_all():
        out = {}
        dev = Device(A100())
        d = dev.from_host(interleave([m.copy() for m in uniform]))
        with dev.timed_region() as t:
            interleaved_getrf(dev, d)
        out["interleaved"] = t["elapsed"]

        dev = Device(A100())
        b = IrrBatch.from_host(dev, [m.copy() for m in uniform])
        with dev.timed_region() as t:
            irr_getrf(dev, b)
        out["irrLU"] = t["elapsed"]

        dev = Device(A100())
        b = IrrBatch.from_host(dev, [m.copy() for m in uniform])
        with dev.timed_region() as t:
            for i in range(len(b)):
                vendor_getrf(dev, b.arrays[i], stream=1 + i % 16)
        out["vendor loop"] = t["elapsed"]
        return out

    times = benchmark.pedantic(run_all, rounds=1, iterations=1)
    archive("ablation_interleaved", format_table(
        ["kernel", "time (us)"],
        [[k, v * 1e6] for k, v in sorted(times.items(), key=lambda kv:
                                         kv[1])],
        title=(f"Ablation — uniform {n}x{n} batch of {batch}: interleaved "
               "layout vs expanded interface vs streamed vendor loop")))

    # On its home turf the interleaved kernel at least matches irrLU and
    # both demolish the per-matrix loop ...
    assert times["interleaved"] <= 1.3 * times["irrLU"]
    assert times["vendor loop"] > 5 * times["interleaved"]

    # ... but it cannot even express the irregular workload.
    irregular = random_square_batch(16, 32, seed=3)
    with pytest.raises(ValueError, match="equal shapes"):
        interleave(irregular)
