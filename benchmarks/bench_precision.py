"""Mixed-precision benchmark: FP32 factors + FP64 refinement vs native FP64.

``precision="fp32"`` halves every factor byte and doubles the modeled
arithmetic peak, and the half-sized factors double the effective
residency of a budgeted :class:`DeviceFactorCache`.  The solve phase
pays for the discount with FP64 iterative refinement against the
original matrix — so the interesting question is end-to-end: does the
refined mixed path beat native FP64 *after* the refinement sweeps are
paid for, at FP64 accuracy?  This harness measures both serving layers
in *simulated device seconds*:

* **warm sparse solves** — one factored system, repeated solves under a
  device budget of 0.6x the FP64 factor bytes: the FP64 cache evicts
  and re-streams levels every solve, the FP32 cache (0.5x the bytes)
  stays fully resident.  Gate: **>= 1.8x** solves/sec.
* **served dense traffic** — recurring large-front ``factor_solve``
  rounds through :class:`SolverService` with the hot signature
  compiled (arena-packed transfers), ``precision="fp32"`` per request
  vs the FP64 default.  Steady-state rounds are transfer-dominated, so
  halving the payload bytes shows up directly as throughput; the FP64
  refinement finisher runs against the program's still-resident
  reduced factors.  Gate: **>= 1.5x** requests/sec.

Every solution from every mode is checked against the FP64 backward
error target (``REFINE_TARGET``) — the speedups only count because the
answers are full-precision.  A final pathological case (a squared 1-D
Laplacian, condition number ~1e9) verifies the safety net: the mixed
solve must take the logged FP64 fallback and return exactly the native
FP64 answer.

Usage::

    PYTHONPATH=src python benchmarks/bench_precision.py            # full run
    PYTHONPATH=src python benchmarks/bench_precision.py --smoke    # CI smoke

Writes ``BENCH_precision.json`` (repo root) and
``results/bench_precision.txt``.  Exits non-zero if any accuracy check,
the fallback check or a speedup gate fails.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

import numpy as np
import scipy.sparse as sp

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.device import A100, Device  # noqa: E402
from repro.serve import CoalescingPolicy, SolverService  # noqa: E402
from repro.sparse import SparseLU  # noqa: E402
from repro.sparse.numeric.solve_plan import SolvePlan  # noqa: E402
from repro.sparse.solver import REFINE_TARGET  # noqa: E402

WARM_TARGET = 1.8     # warm budgeted solves/sec, fp32 over fp64
SERVE_TARGET = 1.5    # served requests/sec, fp32 over fp64
BUDGET_FRACTION = 0.6  # of the FP64 resident factor bytes


def grid2d(nx, ny, seed=0, diag=4.0):
    """Unsymmetric-valued 5-point grid operator (tests/sparse idiom)."""
    rng = np.random.default_rng(seed)
    rows, cols, vals = [], [], []
    for i in range(nx):
        for j in range(ny):
            k = i * ny + j
            rows.append(k)
            cols.append(k)
            vals.append(diag + rng.random())
            for di, dj in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                ii, jj = i + di, j + dj
                if 0 <= ii < nx and 0 <= jj < ny:
                    rows.append(k)
                    cols.append(ii * ny + jj)
                    vals.append(-1.0 - 0.3 * rng.random())
    n = nx * ny
    return sp.csr_matrix((vals, (rows, cols)), shape=(n, n))


def backward_error(a, x, b):
    return float(np.linalg.norm(b - a @ x) / np.linalg.norm(b))


# ----------------------------------------------------------------------
# warm budgeted sparse solves
# ----------------------------------------------------------------------
def bench_warm(nx: int, reps: int) -> dict:
    a = grid2d(nx, nx)
    n = a.shape[0]
    b = np.random.default_rng(7).standard_normal(n)

    # The budget lever: 0.6x the FP64 resident bytes.  FP64 must evict
    # and re-stream every solve; FP32 (0.5x) stays fully resident.
    probe = SparseLU(a).factor()
    budget = int(BUDGET_FRACTION * SolvePlan(probe.factors).total_nbytes())

    out = {"n": n, "budget_bytes": budget, "reps": reps}
    for prec in ("fp64", "fp32"):
        dev = Device(A100())
        s = SparseLU(a).analyze()
        s.factor(backend="batched", device=dev, precision=prec)
        s.solve(b, device=dev, memory_budget=budget)   # cold: build cache
        sim0 = dev.synchronize()
        errs = []
        for _ in range(reps):
            x, info = s.solve(b, device=dev, memory_budget=budget)
            errs.append(backward_error(a, x, b))
        sim = dev.synchronize() - sim0
        cache = s.solve_cache
        out[prec] = {
            "sim_s_per_solve": sim / reps,
            "solves_per_sim_s": reps / sim,
            "max_backward_error": max(errs),
            "resident_bytes": cache.resident_nbytes if cache else 0,
        }
    out["speedup"] = out["fp32"]["solves_per_sim_s"] / \
        out["fp64"]["solves_per_sim_s"]
    out["accuracy_ok"] = all(out[p]["max_backward_error"] <= REFINE_TARGET
                             for p in ("fp64", "fp32"))
    return out


# ----------------------------------------------------------------------
# served dense traffic
# ----------------------------------------------------------------------
def bench_serve(order: int, batch: int, rounds: int,
                warmup: int = 3) -> dict:
    """Recurring large-front ``factor_solve`` rounds through the hot
    compiled path — the transfer-dominated regime where the service
    spends its time moving payload bytes, which ``precision="fp32"``
    halves.  Steady-state rounds (program compiled, arena resident) are
    timed; the warm-up rounds cover the bucketed cold starts and the
    compile itself."""
    sizes = [order] * batch
    out = {"order": order, "batch": batch, "rounds": rounds,
           "warmup": warmup}
    for prec in ("fp64", "fp32"):
        dev = Device(A100())
        svc = SolverService(dev, policy=CoalescingPolicy(
            max_batch=max(64, batch), max_queue=max(256, batch),
            compile_hot=True, hot_threshold=2), start=False)
        kw = {} if prec == "fp64" else {"precision": "fp32"}
        sims, errs = [], []
        for rnd in range(rounds):
            rng = np.random.default_rng(rnd % 3)
            mats = [rng.standard_normal((n, n)) + n * np.eye(n)
                    for n in sizes]
            rhss = [rng.standard_normal(n) for n in sizes]
            futs = [svc.submit_factor_solve(a, b, **kw)
                    for a, b in zip(mats, rhss)]
            sim0 = dev.synchronize()
            svc.run_once()
            sims.append(dev.synchronize() - sim0)
            for a, b, f in zip(mats, rhss, futs):
                x, _ = f.result(0)
                errs.append(backward_error(a, x, b))
        snap = svc.stats.snapshot()
        svc.close()
        steady = float(np.mean(sims[warmup:]))
        out[prec] = {
            "sim_s_per_round": steady,
            "requests_per_sim_s": batch / steady,
            "max_backward_error": max(errs),
            "refine_passes": snap["refine_passes"],
            "precision_fallbacks": snap["precision_fallbacks"],
            "programs_compiled": snap["programs_compiled"],
        }
    out["speedup"] = out["fp32"]["requests_per_sim_s"] / \
        out["fp64"]["requests_per_sim_s"]
    out["accuracy_ok"] = all(out[p]["max_backward_error"] <= REFINE_TARGET
                             for p in ("fp64", "fp32"))
    return out


# ----------------------------------------------------------------------
# pathological fallback
# ----------------------------------------------------------------------
def bench_fallback(n: int = 120) -> dict:
    L = sp.diags([-1.0, 2.0, -1.0], [-1, 0, 1], shape=(n, n),
                 format="csr")
    a = sp.csr_matrix(L @ L)              # kappa ~ 1e9: defeats FP32
    b = np.random.default_rng(3).standard_normal(n)
    s = SparseLU(a).factor(precision="fp32")
    x, info = s.solve(b)
    ref, ref_info = SparseLU(a).factor().solve(b)
    logged = info.recovery is not None and any(
        e.action == "precision-fallback" for e in info.recovery.events)
    return {
        "n": n,
        "fallback_taken": bool(info.fallback),
        "fallback_logged": bool(logged),
        "gmres_cycles": int(info.gmres_cycles),
        "matches_fp64_bitwise": bool(np.array_equal(x, ref)),
        "final_residual": info.final_residual,
        "fp64_residual": ref_info.final_residual,
        "ok": bool(info.fallback and logged and np.array_equal(x, ref)),
    }


# ----------------------------------------------------------------------
def report(warm: dict, serve: dict, fb: dict) -> str:
    lines = [
        "mixed precision: FP32 factors + FP64 iterative refinement vs "
        "native FP64",
        "(simulated device seconds; every solution checked against the "
        f"FP64 backward-error target {REFINE_TARGET:g})", "",
        f"warm budgeted solves  n={warm['n']}  budget="
        f"{warm['budget_bytes']} B ({BUDGET_FRACTION:.0%} of FP64 factors)",
    ]
    for p in ("fp64", "fp32"):
        r = warm[p]
        lines.append(
            f"  {p}:  {r['sim_s_per_solve'] * 1e3:8.3f} sim-ms/solve  "
            f"{r['solves_per_sim_s']:8.1f} solves/s  "
            f"resident {r['resident_bytes']:>9d} B  "
            f"max err {r['max_backward_error']:.2e}")
    lines.append(f"  speedup {warm['speedup']:.2f}x  "
                 f"(gate >= {WARM_TARGET}x)")
    lines.append("")
    lines.append(f"served dense traffic  {serve['batch']} x order "
                 f"{serve['order']} factor_solve per round, "
                 f"{serve['rounds']} rounds, hot compiled path "
                 f"(steady state after {serve['warmup']} warm-up rounds)")
    for p in ("fp64", "fp32"):
        r = serve[p]
        lines.append(
            f"  {p}:  {r['sim_s_per_round'] * 1e3:8.2f} sim-ms/round  "
            f"{r['requests_per_sim_s']:8.1f} req/s  "
            f"refine passes {r['refine_passes']:4d}  "
            f"fallbacks {r['precision_fallbacks']}  "
            f"max err {r['max_backward_error']:.2e}")
    lines.append(f"  speedup {serve['speedup']:.2f}x  "
                 f"(gate >= {SERVE_TARGET}x)")
    lines.append("")
    lines.append(
        f"pathological fallback  L^2 n={fb['n']}:  "
        f"gmres cycles {fb['gmres_cycles']}, fallback="
        f"{fb['fallback_taken']}, logged={fb['fallback_logged']}, "
        f"bitwise FP64 match={fb['matches_fp64_bitwise']}")
    return "\n".join(lines)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="small CI workload")
    ap.add_argument("--out", default=str(ROOT / "BENCH_precision.json"))
    args = ap.parse_args(argv)

    if args.smoke:
        warm = bench_warm(nx=20, reps=3)
        serve = bench_serve(order=768, batch=6, rounds=5)
    else:
        warm = bench_warm(nx=24, reps=10)
        serve = bench_serve(order=1024, batch=8, rounds=6)
    fb = bench_fallback()

    payload = {"warm": warm, "serve": serve, "fallback": fb,
               "warm_target": WARM_TARGET, "serve_target": SERVE_TARGET,
               "refine_target": REFINE_TARGET}
    pathlib.Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    text = report(warm, serve, fb)
    print(text)
    (ROOT / "results").mkdir(exist_ok=True)
    (ROOT / "results" / "bench_precision.txt").write_text(text + "\n")

    rc = 0
    if not (warm["accuracy_ok"] and serve["accuracy_ok"]):
        print("FAIL: a solution missed the FP64 backward-error target")
        rc = 1
    if not fb["ok"]:
        print("FAIL: pathological case did not take the logged FP64 "
              "fallback / match native FP64")
        rc = 1
    if warm["speedup"] < WARM_TARGET:
        print(f"FAIL: warm-solve speedup {warm['speedup']:.2f}x < "
              f"{WARM_TARGET}x")
        rc = 1
    if serve["speedup"] < SERVE_TARGET:
        print(f"FAIL: serve speedup {serve['speedup']:.2f}x < "
              f"{SERVE_TARGET}x")
        rc = 1
    if rc == 0:
        print("\nPASS")
    return rc


if __name__ == "__main__":
    sys.exit(main())
