"""Ablation: the Fig 14 hybrid GEMM inside the sparse solver.

"cuBLAS outperforms irrGEMM for large matrix sizes and small batchcounts,
hence we combine irrGEMM for matrix sizes ≤ 256 with cuBLAS GEMM in a
loop for matrix sizes > 256."  We factor the Maxwell system with pure
irrGEMM, pure looped vendor GEMM, and the hybrid, and compare.
"""

from repro.analysis.report import format_table
from repro.device import A100, Device
from repro.experiments.common import is_fast_mode
from repro.sparse import multifrontal_factor_gpu
from repro.workloads import build_maxwell_workload


def test_ablation_hybrid_gemm(benchmark, archive):
    n = 10 if is_fast_mode() else 14
    wl = build_maxwell_workload(n, leaf_size=16)

    def run_all():
        out = {}
        for mode in ("irr", "vendor", "hybrid"):
            dev = Device(A100())
            res = multifrontal_factor_gpu(dev, wl.a_perm, wl.symb,
                                          strategy="batched",
                                          gemm_mode=mode)
            out[mode] = res.elapsed
        return out

    times = benchmark.pedantic(run_all, rounds=1, iterations=1)
    archive("ablation_hybrid_gemm", format_table(
        ["gemm mode", "factor time (ms)"],
        [[m, t * 1e3] for m, t in times.items()],
        title=(f"Ablation — Schur-update GEMM strategy inside the solver "
               f"(Maxwell n={n}, {wl.matrix.shape[0]} dofs, A100 model)")))

    # the hybrid must never lose badly to either pure strategy, and the
    # pure vendor loop pays per-front launches on the deep levels.
    assert times["hybrid"] <= 1.1 * min(times["irr"], times["vendor"])
    assert times["vendor"] > times["hybrid"]
