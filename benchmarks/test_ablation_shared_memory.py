"""Ablation: shared-memory capacity vs the fused-panel switch point.

§IV-E: "For a GPU with a relatively small shared memory, the panel
decomposition would switch from irrGETF2 to the slower column-wise
approach earlier than on a GPU with a large shared memory."  We sweep the
per-block shared-memory limit and report the tallest panel the fused
kernel can take, plus the end-to-end irrLU effect on a batch that
straddles the switch point.
"""

from dataclasses import replace

from repro.analysis.report import format_table
from repro.batched import IrrBatch, irr_getrf, panel_shared_bytes
from repro.device import A100, Device
from repro.experiments.common import is_fast_mode
from repro.workloads import random_square_batch

_KB = 1024


def _max_fused_height(limit_bytes, width=32):
    h = 0
    while panel_shared_bytes(h + 1, 0, width) <= limit_bytes:
        h += 1
    return h


def test_ablation_shared_memory(benchmark, archive):
    batch = 100 if is_fast_mode() else 400
    max_size = 384 if is_fast_mode() else 768
    mats = random_square_batch(batch, max_size, seed=13)
    limits = [32 * _KB, 64 * _KB, 163 * _KB]

    def run_all():
        out = []
        for limit in limits:
            spec = replace(A100(), max_shared_per_block=limit,
                           shared_mem_per_sm=max(limit, 64 * _KB),
                           name=f"A100/{limit // _KB}KB")
            dev = Device(spec)
            b = IrrBatch.from_host(dev, [m.copy() for m in mats])
            with dev.timed_region() as t:
                irr_getrf(dev, b)
            out.append((limit, _max_fused_height(limit), t["elapsed"]))
        return out

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    archive("ablation_shared_memory", format_table(
        ["smem/block (KB)", "max fused panel height", "irrLU time (ms)"],
        [[lim // _KB, h, t * 1e3] for lim, h, t in rows],
        title="Ablation — shared-memory capacity vs fused-panel reach"))

    heights = [h for _, h, _ in rows]
    times = [t for _, _, t in rows]
    assert heights == sorted(heights)          # more smem -> taller panels
    assert times[-1] <= times[0] * 1.05        # ... and never slower
