"""Serving benchmark: coalesced dispatch vs one-request-per-launch.

A solver service amortizes kernel launch overhead by coalescing the
compatible requests waiting in its admission queue into a single
irregular batch (§III: the irregular kernels were built exactly so that
mixed-size work shares one launch).  This harness measures what that
buys on the paper's mixed workload — 500 independent ``factor_solve``
requests with local sizes ~ U[lo, hi] — in *simulated device seconds*:

* **solo**      — ``CoalescingPolicy(max_batch=1)``: every request is
  its own batched launch group (the baseline a naive server pays).
* **coalesced** — ``CoalescingPolicy(max_batch=32)``: requests sharing
  a compatibility key ride one launch group.

Both modes run the identical dispatch code path, so the comparison
isolates the batching policy.  Throughput is requests per simulated
second; the acceptance gate is **>= 2x** coalesced over solo.  Every
run verifies the parity contract first: the coalesced results are
bitwise identical to the solo results, and the coalesced launch count
is strictly smaller.

``--slo`` switches to the traffic-replay benchmark: the standard mixes
(steady Poisson, burst-storm, heavy-tail, closed-loop — see
:data:`repro.workloads.traffic.STANDARD_MIXES`) replay in virtual time
against (a) the hand-picked ``CoalescingPolicy()`` default and (b) the
same default with the :class:`~repro.serve.autotune.OnlineAutotuner`
hot-swapping refined policies mid-run.  Gates, per mix: the autotuned
run delivers **strictly higher simulated throughput**, meets **every
per-class p99 SLO**, and its per-request results are **bitwise
identical** to the static run's (tuning changes launch shapes, never
bits).

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py            # full run
    PYTHONPATH=src python benchmarks/bench_serve.py --smoke    # CI smoke
    PYTHONPATH=src python benchmarks/bench_serve.py --slo      # traffic/SLO

Writes ``BENCH_serve.json`` (repo root) and ``results/bench_serve.txt``
(``results/bench_serve_slo.txt`` and an ``slo`` JSON section for
``--slo``).  Exits non-zero if parity fails or any gate is missed.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

import numpy as np

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.device import A100, Device  # noqa: E402
from repro.serve import AutotuneConfig, CoalescingPolicy, \
    OnlineAutotuner, SolverService  # noqa: E402
from repro.workloads.traffic import STANDARD_MIXES, run_mix  # noqa: E402

TARGET_SPEEDUP = 2.0    # acceptance: coalesced >= 2x solo throughput
SMOKE_SPEEDUP = 1.5     # relaxed gate for the tiny CI workload


def workload(n_requests: int, lo: int, hi: int, seed: int = 0):
    """Mixed diagonally-dominant systems, sizes ~ U[lo, hi]."""
    rng = np.random.default_rng(seed)
    sizes = rng.integers(lo, hi + 1, size=n_requests)
    mats, rhss = [], []
    for i, n in enumerate(sizes):
        a = rng.standard_normal((int(n), int(n)))
        a += int(n) * np.eye(int(n))
        mats.append(a)
        rhss.append(rng.standard_normal(int(n)))
    return mats, rhss


def run_mode(mats, rhss, max_batch: int):
    """Push the whole workload through one inline service; return
    (results, simulated_seconds, host_seconds, stats_snapshot,
    launch_count)."""
    dev = Device(A100())
    svc = SolverService(dev, policy=CoalescingPolicy(
        max_batch=max_batch, max_queue=max(256, len(mats))), start=False)
    host0 = time.perf_counter()
    futs = [svc.submit_factor_solve(a, b) for a, b in zip(mats, rhss)]
    svc.run_once()
    sim = dev.synchronize()
    host = time.perf_counter() - host0
    out = [f.result(0) for f in futs]
    snap = svc.stats.snapshot()
    launches = dev.profiler.launch_count
    svc.close()
    assert dev.allocated_bytes == 0, "service leaked device memory"
    return out, sim, host, snap, launches


def check_parity(solo, coalesced) -> None:
    for i, ((x_s, h_s), (x_c, h_c)) in enumerate(zip(solo, coalesced)):
        if not (np.array_equal(x_s, x_c)
                and np.array_equal(h_s.lu, h_c.lu)
                and all(np.array_equal(p, q)
                        for p, q in zip(h_s.ipiv, h_c.ipiv))):
            raise SystemExit(f"PARITY FAILURE: request {i} differs "
                             "between solo and coalesced dispatch")


def _mix_parity(static, tuned) -> bool:
    """Bitwise identity of every per-request result across the two
    replays (both submitted byte-identical payloads)."""
    for a, b in zip(static.results, tuned.results):
        if (a is None) != (b is None):
            return False
        if a is not None and not np.array_equal(a, b):
            return False
    return True


def run_slo(smoke: bool, seed: int) -> tuple[str, dict, int]:
    """The traffic/SLO benchmark: static default vs online-autotuned on
    every standard mix.  Returns (report text, json payload, exit code).
    """
    policy = CoalescingPolicy(max_queue=4096)
    cfg = AutotuneConfig(min_requests=12, min_dispatches=2)

    def tuner(svc, clock):
        return OnlineAutotuner(svc, clock=clock, config=cfg, seed=seed)

    lines = [
        "bench_serve --slo: static CoalescingPolicy() vs online autotuner",
        f"mixes: {', '.join(STANDARD_MIXES)} (virtual-time replay, "
        f"seed {seed})",
        "",
        f"{'mix':<12} {'static r/s':>11} {'tuned r/s':>10} {'gain':>7} "
        f"{'parity':>7} {'slo':>5} {'swaps':>6} {'rollbacks':>10}",
    ]
    payload: dict = {}
    failures: list[str] = []
    for name, mix in STANDARD_MIXES.items():
        if smoke:
            mix = type(mix)(**{**mix.__dict__,
                               "count": max(64, mix.count // 3)})
        static = run_mix(mix, policy=policy, seed=seed)
        tuned = run_mix(mix, policy=policy, seed=seed, autotuner=tuner,
                        tune_every=1e-2)
        parity = _mix_parity(static, tuned)
        slo_ok = tuned.slo_met()
        # full run: the tuner must strictly beat the hand-picked
        # default; the smoke workload is too short for convergence, so
        # CI gates on "never worse" (+ parity + SLOs) instead
        beat = tuned.throughput >= static.throughput if smoke \
            else tuned.throughput > static.throughput
        if not parity:
            failures.append(f"{name}: PARITY failure (tuning changed "
                            f"result bits)")
        if not slo_ok:
            misses = {k: v for k, v in tuned.per_class.items()
                      if not v["met"]}
            failures.append(f"{name}: p99 SLO missed: {misses}")
        if not beat:
            failures.append(
                f"{name}: autotuned throughput {tuned.throughput:.1f} "
                f"did not beat static {static.throughput:.1f}")
        lines.append(
            f"{name:<12} {static.throughput:>11.1f} "
            f"{tuned.throughput:>10.1f} "
            f"{tuned.throughput / static.throughput:>6.3f}x "
            f"{'yes' if parity else 'NO':>7} "
            f"{'met' if slo_ok else 'MISS':>5} "
            f"{tuned.tuner['swaps']:>6d} {tuned.tuner['rollbacks']:>10d}")
        payload[name] = {
            "static": {"throughput": static.throughput,
                       "makespan": static.makespan,
                       "dispatches": static.dispatches,
                       "per_class": static.per_class},
            "tuned": {"throughput": tuned.throughput,
                      "makespan": tuned.makespan,
                      "dispatches": tuned.dispatches,
                      "per_class": tuned.per_class,
                      "final_policy": {
                          k: v for k, v in tuned.policy.items()
                          if k in ("max_batch", "max_wait",
                                   "hot_threshold", "panel_regime",
                                   "trsm_class_cutoff")},
                      "tuner": tuned.tuner},
            "gain": tuned.throughput / static.throughput
            if static.throughput else 0.0,
            "parity": parity,
            "slo_met": slo_ok,
        }
    lines.append("")
    if failures:
        lines.extend(f"FAIL: {f}" for f in failures)
    else:
        lines.append("all gates met: throughput beaten, SLOs met, "
                     "bitwise parity on every mix")
    return "\n".join(lines), payload, 1 if failures else 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="small workload + relaxed gate (CI)")
    ap.add_argument("--requests", type=int, default=None,
                    help="override workload size")
    ap.add_argument("--slo", action="store_true",
                    help="traffic-replay benchmark: static vs autotuned "
                         "policies under per-class p99 SLO gates")
    ap.add_argument("--seed", type=int, default=7)
    args = ap.parse_args()

    if args.slo:
        text, payload, rc = run_slo(args.smoke, args.seed)
        print(text)
        (ROOT / "results").mkdir(exist_ok=True)
        (ROOT / "results" / "bench_serve_slo.txt").write_text(text + "\n")
        bench_path = ROOT / "BENCH_serve.json"
        merged = json.loads(bench_path.read_text()) \
            if bench_path.exists() else {}
        merged["slo"] = {"seed": args.seed, "smoke": bool(args.smoke),
                         "mixes": payload}
        bench_path.write_text(json.dumps(merged, indent=2) + "\n")
        return rc

    n = args.requests or (60 if args.smoke else 500)
    lo, hi = 4, 64
    gate = SMOKE_SPEEDUP if args.smoke else TARGET_SPEEDUP

    mats, rhss = workload(n, lo, hi)
    solo, sim_s, host_s, snap_s, launches_s = run_mode(mats, rhss, 1)
    coal, sim_c, host_c, snap_c, launches_c = run_mode(mats, rhss, 32)

    check_parity(solo, coal)
    if launches_c >= launches_s:
        raise SystemExit("COALESCING FAILURE: coalesced dispatch did not "
                         f"reduce launches ({launches_c} vs {launches_s})")

    thr_s = n / sim_s
    thr_c = n / sim_c
    speedup = thr_c / thr_s

    lines = [
        "bench_serve: coalesced dispatch vs one-request-per-launch",
        f"workload: {n} factor_solve requests, sizes ~ U[{lo}, {hi}] "
        "float64",
        "",
        f"{'mode':<12} {'sim s':>10} {'req/sim s':>12} {'launches':>10} "
        f"{'dispatches':>11} {'coalesce':>9} {'occupancy':>10}",
        f"{'solo':<12} {sim_s:>10.6f} {thr_s:>12.1f} {launches_s:>10d} "
        f"{snap_s['dispatches']:>11d} {snap_s['coalescing_ratio']:>9.2f} "
        f"{snap_s['mean_occupancy']:>10.3f}",
        f"{'coalesced':<12} {sim_c:>10.6f} {thr_c:>12.1f} "
        f"{launches_c:>10d} {snap_c['dispatches']:>11d} "
        f"{snap_c['coalescing_ratio']:>9.2f} "
        f"{snap_c['mean_occupancy']:>10.3f}",
        "",
        f"parity: bitwise identical across {n} requests",
        f"speedup (simulated throughput): {speedup:.2f}x "
        f"(gate >= {gate:.1f}x)",
        f"host wall-clock: solo {host_s:.3f}s, coalesced {host_c:.3f}s",
    ]
    text = "\n".join(lines)
    print(text)

    (ROOT / "results").mkdir(exist_ok=True)
    (ROOT / "results" / "bench_serve.txt").write_text(text + "\n")
    bench_path = ROOT / "BENCH_serve.json"
    merged = json.loads(bench_path.read_text()) \
        if bench_path.exists() else {}
    merged.update({
        "workload": {"requests": n, "size_lo": lo, "size_hi": hi,
                     "dtype": "float64"},
        "solo": {"sim_seconds": sim_s, "throughput": thr_s,
                 "launches": launches_s,
                 "dispatches": snap_s["dispatches"],
                 "coalescing_ratio": snap_s["coalescing_ratio"],
                 "mean_occupancy": snap_s["mean_occupancy"],
                 "host_seconds": host_s},
        "coalesced": {"sim_seconds": sim_c, "throughput": thr_c,
                      "launches": launches_c,
                      "dispatches": snap_c["dispatches"],
                      "coalescing_ratio": snap_c["coalescing_ratio"],
                      "mean_occupancy": snap_c["mean_occupancy"],
                      "host_seconds": host_c},
        "speedup": speedup,
        "gate": gate,
        "parity": "bitwise",
        "smoke": bool(args.smoke),
    })
    bench_path.write_text(json.dumps(merged, indent=2) + "\n")

    if speedup < gate:
        print(f"FAIL: speedup {speedup:.2f}x below gate {gate:.1f}x",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
