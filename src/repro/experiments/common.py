"""Shared experiment infrastructure.

Every experiment module exposes ``run(fast=None) -> dict`` (the data of
one paper figure/table) and ``report(results) -> str`` (the paper-shaped
ASCII rendering).  ``fast`` defaults to True unless ``REPRO_FULL=1`` is
set in the environment: fast mode shrinks batch sizes and sweeps so the
whole suite regenerates in minutes on a laptop, at the cost of noisier
absolute numbers.  The qualitative shapes (who wins, rough factors,
crossovers) are preserved in both modes.
"""

from __future__ import annotations

import os

__all__ = ["is_fast_mode", "resolve_fast"]


def is_fast_mode() -> bool:
    return os.environ.get("REPRO_FULL", "0") != "1"


def resolve_fast(fast: bool | None) -> bool:
    return is_fast_mode() if fast is None else fast
