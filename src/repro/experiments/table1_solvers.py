"""Table I — total numerical-factorization time of the sparse solvers.

Compares, on the Maxwell system:

* the proposed solver (irrLU/irrTRSM/irrGEMM batched per level, hybrid
  GEMM) on the A100 and MI100 models;
* the naive cuBLAS/cuSOLVER loop;
* the STRUMPACK v6.3.1 model (naive ≤32×32 batch + per-op sync);
* the SuperLU_Dist-style model (CPU panels + GPU GEMM offload);
* the 16-thread CPU multifrontal reference.

Also reports the Nsight-style counters the paper quotes: the batched
implementation cuts ``cudaStreamSynchronize``/``cudaLaunchKernel`` time by
more than an order of magnitude vs the STRUMPACK model (9.1 s → 0.33 s and
6.5 s → 0.16 s in the paper).  The §V-B accuracy claim (machine-precision
residual after one refinement step) is verified on the proposed solver.
"""

from __future__ import annotations

from ..analysis.flops import gemm_flops, getrf_flops, trsm_flops
from ..analysis.report import format_table
from ..device.simulator import Device
from ..device.spec import A100, MI100, XEON_6140_2S
from ..sparse.solver import SparseLU
from ..workloads.fronts import build_maxwell_workload
from .common import resolve_fast

__all__ = ["run", "report", "main"]


def _cpu_reference_seconds(symb, threads: int = 16) -> float:
    """16-OpenMP-thread CPU multifrontal time model (Table I's CPU rows).

    Tree-level parallelism across fronts plus threaded BLAS inside large
    fronts make the front flops ~threads-parallel at LAPACK efficiency.
    """
    cpu = XEON_6140_2S()
    core_rate = cpu.freq_hz * cpu.flops_per_cycle_per_core
    total = 0.0
    for f in symb.fronts:
        s, u = f.sep_size, f.upd_size
        flops = getrf_flops(s, s) + 2 * trsm_flops(s, u) \
            + gemm_flops(u, u, s)
        order = max(s + u, 1)
        eff = cpu.getrf_efficiency(order)
        # small fronts cannot keep 16 threads busy: effective parallelism
        # grows with the front order (tree + BLAS parallelism combined).
        eff_threads = min(threads, max(1.0, order / 48.0))
        total += flops / (eff_threads * core_rate * max(eff, 1e-3))
    return total


def run(fast: bool | None = None) -> dict:
    fast = resolve_fast(fast)
    n = 12 if fast else 16
    wl = build_maxwell_workload(n, leaf_size=16)
    rows = []
    counters = {}

    configs = [
        ("irr-batched", "batched", A100()),
        ("irr-batched", "batched", MI100()),
        ("cuBLAS/cuSOLVER loop", "looped", A100()),
        ("cuBLAS/cuSOLVER loop", "looped", MI100()),
        ("STRUMPACK-like", "strumpack", A100()),
        ("STRUMPACK-like", "strumpack", MI100()),
        ("SuperLU_Dist-like", "superlu", A100()),
        ("SuperLU_Dist-like", "superlu", MI100()),
    ]
    residuals = None
    for label, backend, spec in configs:
        dev = Device(spec)
        solver = SparseLU(wl.matrix, leaf_size=16)
        solver.analyze()
        solver.factor(backend=backend, device=dev)
        res = solver.factor_result
        rows.append({"solver": label, "device": spec.name,
                     "factor_seconds": res.elapsed,
                     "launches": res.counters["launch_count"],
                     "sync_wait": res.counters["sync_wait_time"],
                     "launch_time": res.counters["host_launch_time"]})
        if backend in ("batched", "strumpack") and spec.name.startswith("A"):
            counters[backend] = {
                "sync_wait": res.counters["sync_wait_time"],
                "launch_time": res.counters["host_launch_time"],
            }
        if backend == "batched" and spec.name.startswith("A"):
            x, info = solver.solve(wl.rhs, refine_steps=1)
            residuals = info.residuals

    rows.append({"solver": "CPU multifrontal (16 thr)", "device": "Xeon",
                 "factor_seconds": _cpu_reference_seconds(wl.symb),
                 "launches": 0, "sync_wait": 0.0, "launch_time": 0.0})
    return {"mesh_n": n, "n_dofs": wl.matrix.shape[0], "rows": rows,
            "counters": counters, "residuals": residuals}


def report(results: dict) -> str:
    table = format_table(
        ["solver", "device", "factor time (s)", "launches",
         "sync wait (s)", "launch time (s)"],
        [[r["solver"], r["device"], r["factor_seconds"], r["launches"],
          r["sync_wait"], r["launch_time"]] for r in results["rows"]],
        title=(f"Table I — Maxwell numerical factorization "
               f"(n={results['mesh_n']}, {results['n_dofs']} dofs)"))
    c = results["counters"]
    extra = ""
    if "batched" in c and "strumpack" in c:
        extra = (
            "\n\nNsight-style counters (A100): STRUMPACK-like sync "
            f"{c['strumpack']['sync_wait']:.4g}s / launch "
            f"{c['strumpack']['launch_time']:.4g}s  ->  batched sync "
            f"{c['batched']['sync_wait']:.4g}s / launch "
            f"{c['batched']['launch_time']:.4g}s")
    res = results["residuals"]
    acc = ""
    if res:
        acc = (f"\nSolve residuals (batched, A100): initial {res[0]:.3e}, "
               f"after 1 refinement step {res[-1]:.3e}")
    return table + extra + acc


def main() -> None:  # pragma: no cover - CLI entry
    print(report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
