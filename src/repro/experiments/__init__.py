"""Experiment harnesses — one module per paper figure/table.

Each module exposes ``run(fast=None) -> dict`` and ``report(dict) -> str``
and can be executed directly (``python -m repro.experiments.fig10_irrlu``).
Set ``REPRO_FULL=1`` for paper-scale workloads.
"""

from . import fig06_trsm, fig07_panel, fig10_irrlu, fig11_large, \
    fig12_problem, fig13_levels, fig14_breakdown, table1_solvers
from .common import is_fast_mode, resolve_fast

__all__ = [
    "fig06_trsm", "fig07_panel", "fig10_irrlu", "fig11_large",
    "fig12_problem", "fig13_levels", "fig14_breakdown", "table1_solvers",
    "is_fast_mode", "resolve_fast",
]
