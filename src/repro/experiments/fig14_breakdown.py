"""Figure 14 — per-operation runtime, batched vs vendor-in-a-loop.

"Figure 14 shows the runtime, on the A100 GPU, for the different
operations performed during the numerical factorization... The batch
operations are compared with a trivial implementation calling cuBLAS or
cuSOLVER in a loop.  cuBLAS outperforms irrGEMM for large matrix sizes
and small batchcounts, hence we combine irrGEMM for matrix sizes ≤ 256
with cuBLAS GEMM in a loop for matrix sizes > 256. ... irrLU and irrTRSM
outperform the corresponding routines GETRF and GETRS for almost all
matrix sizes."

We regenerate the comparison on the actual per-level front batches of the
Maxwell factorization: for each assembly-tree level, the three operations
(LU of the pivot blocks, the two triangular solves, the Schur GEMM) are
timed with the batched irr kernels and with the per-front vendor loop.
"""

from __future__ import annotations

import numpy as np

from ..analysis.report import format_table
from ..batched.gemm import irr_gemm
from ..batched.getrf import irr_getrf
from ..batched.interface import IrrBatch
from ..batched.trsm import irr_trsm
from ..batched.vendor import vendor_gemm, vendor_getrf, vendor_trsm
from ..device.simulator import Device
from ..device.spec import A100
from ..workloads.fronts import build_maxwell_workload, level_front_dims, \
    synthetic_front_batch
from .common import resolve_fast

__all__ = ["run", "report", "main"]


def _block_batches(device, fronts, dims):
    s_vec = np.array([s for s, _ in dims], dtype=np.int64)
    u_vec = np.array([u for _, u in dims], dtype=np.int64)
    arrays = [device.from_host(f) for f in fronts]
    f11 = IrrBatch(device, [a[:s, :s] for a, (s, u) in zip(arrays, dims)],
                   s_vec, s_vec)
    f12 = IrrBatch(device, [a[:s, s:] for a, (s, u) in zip(arrays, dims)],
                   s_vec, u_vec)
    f21 = IrrBatch(device, [a[s:, :s] for a, (s, u) in zip(arrays, dims)],
                   u_vec, s_vec)
    f22 = IrrBatch(device, [a[s:, s:] for a, (s, u) in zip(arrays, dims)],
                   u_vec, u_vec)
    return arrays, f11, f12, f21, f22


def _time_batched(dims, fronts) -> dict[str, float]:
    device = Device(A100())
    _, f11, f12, f21, f22 = _block_batches(device, fronts, dims)
    smax = int(f11.max_m)
    umax = int(f22.max_m)
    out = {}
    with device.timed_region() as t:
        irr_getrf(device, f11)
    out["lu"] = t["elapsed"]
    if smax and umax:
        with device.timed_region() as t:
            irr_trsm(device, "L", "L", "N", "U", smax, umax, 1.0,
                     f11, (0, 0), f12, (0, 0))
            irr_trsm(device, "R", "U", "N", "N", umax, smax, 1.0,
                     f11, (0, 0), f21, (0, 0))
        out["trsm"] = t["elapsed"]
        with device.timed_region() as t:
            irr_gemm(device, "N", "N", umax, umax, smax, -1.0, f21, (0, 0),
                     f12, (0, 0), 1.0, f22, (0, 0))
        out["gemm"] = t["elapsed"]
    else:
        out["trsm"] = 0.0
        out["gemm"] = 0.0
    return out


def _time_looped(dims, fronts) -> dict[str, float]:
    device = Device(A100())
    arrays, *_ = _block_batches(device, fronts, dims)
    out = {}
    with device.timed_region() as t:
        for a, (s, u) in zip(arrays, dims):
            if s:
                vendor_getrf(device, a[:s, :s])
    out["lu"] = t["elapsed"]
    with device.timed_region() as t:
        for a, (s, u) in zip(arrays, dims):
            if s and u:
                vendor_trsm(device, "L", "L", "N", "U", 1.0,
                            a.data[:s, :s], a.data[:s, s:])
                vendor_trsm(device, "R", "U", "N", "N", 1.0,
                            a.data[:s, :s], a.data[s:, :s])
    out["trsm"] = t["elapsed"]
    with device.timed_region() as t:
        for a, (s, u) in zip(arrays, dims):
            if s and u:
                vendor_gemm(device, "N", "N", -1.0, a.data[s:, :s],
                            a.data[:s, s:], 1.0, a.data[s:, s:])
    out["gemm"] = t["elapsed"]
    return out


def run(fast: bool | None = None, *, seed: int = 0) -> dict:
    fast = resolve_fast(fast)
    n = 8 if fast else 12
    wl = build_maxwell_workload(n)
    per_level = level_front_dims(wl.symb)

    levels = []
    for depth, dims in enumerate(per_level):
        fronts = synthetic_front_batch(dims, seed=seed + depth)
        batched = _time_batched(dims, fronts)
        fronts = synthetic_front_batch(dims, seed=seed + depth)
        looped = _time_looped(dims, fronts)
        levels.append({
            "level": len(per_level) - 1 - depth,
            "batch_size": len(dims),
            "max_front": max(s + u for s, u in dims),
            "batched": batched,
            "looped": looped,
        })
    return {"mesh_n": n, "n_dofs": wl.matrix.shape[0], "levels": levels}


def report(results: dict) -> str:
    rows = []
    for lev in reversed(results["levels"]):
        b, lo = lev["batched"], lev["looped"]
        rows.append([
            lev["level"], lev["batch_size"], lev["max_front"],
            b["lu"] * 1e3, lo["lu"] * 1e3,
            b["trsm"] * 1e3, lo["trsm"] * 1e3,
            b["gemm"] * 1e3, lo["gemm"] * 1e3,
        ])
    return format_table(
        ["level", "batch", "max front",
         "irrLU ms", "cusolver ms",
         "irrTRSM ms", "cublasTRSM ms",
         "irrGEMM ms", "cublasGEMM ms"],
        rows,
        title=(f"Fig 14 — per-operation runtime by tree level "
               f"(Maxwell n={results['mesh_n']}, {results['n_dofs']} dofs, "
               f"A100 model)"))


def main() -> None:  # pragma: no cover - CLI entry
    print(report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
