"""Figure 13 — front-size distribution and batch size per tree level.

"Figure 13 illustrates the distribution of the matrix sizes, as well as
the batchsize, for each batch.  As the assembly tree is traversed from
the leaves to the root (level 0), the average matrix size increases,
while the batchsize decreases."
"""

from __future__ import annotations

from ..analysis.report import format_table
from ..workloads.fronts import build_maxwell_workload
from .common import resolve_fast

__all__ = ["run", "report", "main"]


def run(fast: bool | None = None, *, torus: bool | None = None) -> dict:
    fast = resolve_fast(fast)
    n = 8 if fast else 12
    torus = (not fast) if torus is None else torus
    wl = build_maxwell_workload(n, torus=torus)
    stats = wl.symb.level_statistics()
    return {
        "mesh_n": n,
        "torus": torus,
        "n_dofs": wl.matrix.shape[0],
        "n_fronts": len(wl.symb.fronts),
        "levels": stats,
        "factor_flops": wl.symb.factor_flops(),
        "factor_nnz": wl.symb.factor_nonzeros(),
    }


def report(results: dict) -> str:
    geom = "torus" if results["torus"] else "box"
    rows = [[s["level"], s["batch_size"], s["min_size"],
             round(s["mean_size"], 1), s["max_size"]]
            for s in reversed(results["levels"])]  # root (level 0) first
    head = (f"Fig 13 — Maxwell ({geom}, n={results['mesh_n']}, "
            f"{results['n_dofs']} dofs, {results['n_fronts']} fronts, "
            f"{results['factor_flops']:.3g} factor flops)")
    return format_table(
        ["level", "batch size", "min front", "mean front", "max front"],
        rows, title=head)


def main() -> None:  # pragma: no cover - CLI entry
    print(report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
