"""Figure 10 — irrLU-GPU FP64 performance on irregular batches.

"Each testing point represents one thousand square matrices, whose sizes
are randomly sampled between 1 and the value shown on the x-axis."
Curves: irrLU-GPU on the A100 and MI100 models, the MKL-like CPU batch,
and cuSOLVER/rocSOLVER in 16 concurrent streams.  Expected shape: the
streamed baselines stay flat and low; the CPU is competitive (especially
vs the MI100); irrLU on the A100 pulls ahead to a ~4.5× asymptotic gain
over the CPU, the MI100 only ~2.7× and only for larger workloads.
"""

from __future__ import annotations

from ..analysis.flops import getrf_flops_paper_square
from ..analysis.report import fmt_rate, format_series
from ..batched.cpu_batch import cpu_getrf_batch
from ..batched.getrf import irr_getrf
from ..batched.interface import IrrBatch
from ..batched.streamed import streamed_getrf
from ..device.simulator import Device
from ..device.spec import A100, MI100, XEON_6140_2S
from ..workloads.random_batch import random_square_batch
from .common import resolve_fast

__all__ = ["run", "report", "main"]


def _aggregate_flops(mats) -> float:
    # the paper's Fig 10/11 accounting (§V-A)
    return sum(getrf_flops_paper_square(m.shape[0]) for m in mats)


def run(fast: bool | None = None, *, seed: int = 0,
        n_streams: int = 16) -> dict:
    fast = resolve_fast(fast)
    batch = 200 if fast else 1000
    max_sizes = [32, 64, 128, 256, 512] if fast else \
        [32, 64, 128, 256, 512, 768, 1024]

    series = {"irrLU_A100": [], "irrLU_MI100": [], "CPU_MKL": [],
              "streamed_A100": [], "streamed_MI100": []}
    for mx in max_sizes:
        mats = random_square_batch(batch, mx, seed=seed)
        flops = _aggregate_flops(mats)

        for label, spec in (("irrLU_A100", A100()),
                            ("irrLU_MI100", MI100())):
            dev = Device(spec)
            b = IrrBatch.from_host(dev, [m.copy() for m in mats])
            with dev.timed_region() as t:
                irr_getrf(dev, b)
            series[label].append(fmt_rate(flops, t["elapsed"]))

        res = cpu_getrf_batch(mats, XEON_6140_2S())
        series["CPU_MKL"].append(fmt_rate(flops, res.seconds))

        for label, spec in (("streamed_A100", A100()),
                            ("streamed_MI100", MI100())):
            dev = Device(spec)
            b = IrrBatch.from_host(dev, [m.copy() for m in mats])
            with dev.timed_region() as t:
                streamed_getrf(dev, b, n_streams=n_streams)
            series[label].append(fmt_rate(flops, t["elapsed"]))

    return {"max_sizes": max_sizes, "batch": batch,
            "n_streams": n_streams, **series}


def report(results: dict) -> str:
    return format_series(
        f"Fig 10 — irregular batched LU, FP64, batch="
        f"{results['batch']}, sizes ~ U[1, N] (Gflop/s)",
        "N", results["max_sizes"],
        {"irrLU A100": results["irrLU_A100"],
         "irrLU MI100": results["irrLU_MI100"],
         "CPU getrf_batch": results["CPU_MKL"],
         f"cuSOLVER {results['n_streams']}str": results["streamed_A100"],
         f"rocSOLVER {results['n_streams']}str":
             results["streamed_MI100"]})


def main() -> None:  # pragma: no cover - CLI entry
    print(report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
