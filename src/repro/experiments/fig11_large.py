"""Figure 11 — few large matrices: irrLU vs streamed vendor solver.

"Figure 11 shows another performance comparison for a small number of
matrices that are relatively large in size.  This is a typical case in
the sparse solver near the root of the assembly tree. ... We observe a
much smaller gap between irrLU-GPU and cuSOLVER/rocSOLVER, which even
turns into the favor of the latter for matrices beyond 5k × 5k."

The streams are "empirically tuned... at each test point": we sweep a few
stream counts per point and keep the best, as the paper did.
"""

from __future__ import annotations

from ..analysis.flops import getrf_flops_paper_square
from ..analysis.report import fmt_rate, format_series
from ..batched.getrf import irr_getrf
from ..batched.interface import IrrBatch
from ..batched.streamed import streamed_getrf
from ..device.simulator import Device
from ..device.spec import A100
from ..workloads.random_batch import large_square_batch
from .common import resolve_fast

__all__ = ["run", "report", "main"]


def run(fast: bool | None = None, *, seed: int = 0) -> dict:
    fast = resolve_fast(fast)
    count = 4 if fast else 8
    sizes = [512, 1024, 2048, 3072] if fast else \
        [512, 1024, 2048, 4096, 6144, 8192]
    stream_candidates = [count] if fast else [2, count, 2 * count]

    out = {"sizes": sizes, "count": count, "irrLU": [], "streamed": [],
           "best_streams": []}
    for n in sizes:
        mats = large_square_batch(count, n, seed=seed)
        flops = sum(getrf_flops_paper_square(m.shape[0]) for m in mats)

        dev = Device(A100())
        b = IrrBatch.from_host(dev, [m.copy() for m in mats])
        with dev.timed_region() as t:
            irr_getrf(dev, b)
        out["irrLU"].append(fmt_rate(flops, t["elapsed"]))

        best = 0.0
        best_s = stream_candidates[0]
        for ns in stream_candidates:
            dev = Device(A100())
            b = IrrBatch.from_host(dev, [m.copy() for m in mats])
            with dev.timed_region() as t:
                streamed_getrf(dev, b, n_streams=ns)
            rate = fmt_rate(flops, t["elapsed"])
            if rate > best:
                best, best_s = rate, ns
        out["streamed"].append(best)
        out["best_streams"].append(best_s)
    return out


def report(results: dict) -> str:
    ratio = [s / i if i else 0.0
             for i, s in zip(results["irrLU"], results["streamed"])]
    return format_series(
        f"Fig 11 — {results['count']} large matrices, FP64, A100 model "
        f"(Gflop/s; streamed/irrLU > 1 means the streamed solver wins)",
        "size", results["sizes"],
        {"irrLU": results["irrLU"],
         "cuSOLVER streams (tuned)": results["streamed"],
         "streamed/irrLU": ratio})


def main() -> None:  # pragma: no cover - CLI entry
    print(report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
