"""Regenerate every paper figure/table from the command line.

Usage::

    python -m repro.experiments                # all experiments, fast mode
    python -m repro.experiments fig10 table1   # a subset
    REPRO_FULL=1 python -m repro.experiments   # paper-scale workloads

Reports print to stdout and are archived under ``results/``.
"""

from __future__ import annotations

import pathlib
import sys
import time

from . import fig06_trsm, fig07_panel, fig10_irrlu, fig11_large, \
    fig12_problem, fig13_levels, fig14_breakdown, is_fast_mode, \
    table1_solvers

_EXPERIMENTS = {
    "fig06": fig06_trsm,
    "fig07": fig07_panel,
    "fig10": fig10_irrlu,
    "fig11": fig11_large,
    "fig12": fig12_problem,
    "fig13": fig13_levels,
    "fig14": fig14_breakdown,
    "table1": table1_solvers,
}


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    names = argv or list(_EXPERIMENTS)
    unknown = [n for n in names if n not in _EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {unknown}; "
              f"choose from {sorted(_EXPERIMENTS)}")
        return 2

    results_dir = pathlib.Path.cwd() / "results"
    results_dir.mkdir(exist_ok=True)
    mode = "fast" if is_fast_mode() else "FULL (paper-scale)"
    print(f"regenerating {len(names)} experiment(s) in {mode} mode\n")

    for name in names:
        mod = _EXPERIMENTS[name]
        t0 = time.perf_counter()
        report = mod.report(mod.run())
        dt = time.perf_counter() - t0
        print(report)
        print(f"[{name}: {dt:.1f}s wall]\n")
        (results_dir / f"{name}.txt").write_text(report + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
