"""Figure 7 — panel factorization: fused irrGETF2 vs column-wise path.

"Figure 7 shows sample performance results for panels of different
heights but of the same width."  The fused kernel wins while the largest
panel fits in shared memory (saving memory traffic); beyond the capacity
it cannot launch at all and the column-wise 4-kernel path takes over.
"""

from __future__ import annotations

from ..analysis.flops import batch_getrf_flops
from ..analysis.report import fmt_rate, format_series
from ..batched.interface import IrrBatch
from ..batched.panel import PanelPivots, columnwise_getf2, fused_getf2, \
    panel_shared_bytes
from ..device.simulator import Device
from ..device.spec import A100, DeviceSpec
from ..workloads.random_batch import panel_batch
from .common import resolve_fast

__all__ = ["run", "report", "main"]


def run(fast: bool | None = None, *, width: int = 32, seed: int = 0,
        spec: DeviceSpec | None = None) -> dict:
    fast = resolve_fast(fast)
    spec = spec or A100()
    batch = 100 if fast else 500
    heights = [64, 128, 256, 512] if fast else \
        [64, 128, 256, 512, 1024, 2048, 4096]

    out = {"heights": heights, "width": width, "batch": batch,
           "device": spec.name, "fused_gflops": [],
           "columnwise_gflops": [], "fused_fits": []}
    for h in heights:
        mats = panel_batch(batch, h, width, seed=seed)
        flops = batch_getrf_flops([m.shape[0] for m in mats],
                                  [width] * batch)
        fits = panel_shared_bytes(h, 0, width) <= spec.max_shared_per_block
        out["fused_fits"].append(fits)

        if fits:
            dev = Device(spec)
            b = IrrBatch.from_host(dev, [m.copy() for m in mats])
            piv = PanelPivots(b)
            with dev.timed_region() as t:
                fused_getf2(dev, b, piv, 0, width)
            out["fused_gflops"].append(fmt_rate(flops, t["elapsed"]))
        else:
            out["fused_gflops"].append(0.0)

        dev = Device(spec)
        b = IrrBatch.from_host(dev, [m.copy() for m in mats])
        piv = PanelPivots(b)
        with dev.timed_region() as t:
            columnwise_getf2(dev, b, piv, 0, width)
        out["columnwise_gflops"].append(fmt_rate(flops, t["elapsed"]))
    return out


def report(results: dict) -> str:
    fused = [g if fit else "n/a (smem)" for g, fit in
             zip(results["fused_gflops"], results["fused_fits"])]
    return format_series(
        f"Fig 7 — panel factorization, width={results['width']}, "
        f"batch={results['batch']} ({results['device']} model)",
        "height", results["heights"],
        {"irrGETF2 (fused) Gflop/s": fused,
         "column-wise Gflop/s": results["columnwise_gflops"]})


def main() -> None:  # pragma: no cover - CLI entry
    print(report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
