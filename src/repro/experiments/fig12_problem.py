"""Figure 12 / §V-B setup — the Maxwell problem and pipeline statistics.

Fig 12 itself is the problem illustration (the toroidal mesh and the
real part of the solution); its reproducible content is the pipeline
record the surrounding text gives: problem sizes, the cost of the
ordering and symbolic phases, and their *amortization* — "the costs for
both ordering and symbolic phase can be amortized when solving multiple
consecutive linear systems with the same sparsity pattern".
"""

from __future__ import annotations

import time

from ..analysis.report import format_table
from ..device.simulator import Device
from ..device.spec import A100
from ..fem.maxwell import MaxwellProblem
from ..fem.mesh import HexMesh, torus_map
from ..sparse.solver import SparseLU
from .common import resolve_fast

__all__ = ["run", "report", "main"]


def run(fast: bool | None = None, *, n_rhs: int = 4) -> dict:
    fast = resolve_fast(fast)
    n = 6 if fast else 10
    mesh = HexMesh(2 * n, n, n, periodic_x=True, mapping=torus_map())

    t0 = time.perf_counter()
    prob = MaxwellProblem.build(mesh, omega=16.0)
    a, b = prob.reduced_system()
    t_assemble = time.perf_counter() - t0

    solver = SparseLU(a, leaf_size=16)
    t0 = time.perf_counter()
    solver.analyze()
    t_analyze = time.perf_counter() - t0

    dev = Device(A100())
    solver.factor(backend="batched", device=dev)
    t_factor_sim = solver.factor_result.elapsed

    solve_times = []
    residuals = []
    import numpy as np
    rng = np.random.default_rng(0)
    for r in range(n_rhs):
        rhs = b if r == 0 else rng.standard_normal(a.shape[0])
        t0 = time.perf_counter()
        _x, info = solver.solve(rhs, refine_steps=1)
        solve_times.append(time.perf_counter() - t0)
        residuals.append(info.final_residual)

    symb = solver.symb
    stats = symb.level_statistics()
    return {
        "mesh": repr(mesh),
        "n_dofs": a.shape[0],
        "nnz": a.nnz,
        "omega": prob.omega,
        "kappa": prob.kappa,
        "n_fronts": len(symb.fronts),
        "n_levels": len(stats),
        "root_front": stats[-1]["max_size"],
        "factor_nnz": symb.factor_nonzeros(),
        "factor_flops": symb.factor_flops(),
        "t_assemble_wall": t_assemble,
        "t_analyze_wall": t_analyze,
        "t_factor_sim": t_factor_sim,
        "t_solves_wall": solve_times,
        "residuals": residuals,
        "n_rhs": n_rhs,
    }


def report(results: dict) -> str:
    r = results
    rows = [
        ["geometry", r["mesh"]],
        ["interior edge dofs", r["n_dofs"]],
        ["nonzeros in A", r["nnz"]],
        ["omega / kappa", f"{r['omega']} / {r['kappa']:.4f}"],
        ["fronts / levels / root front",
         f"{r['n_fronts']} / {r['n_levels']} / {r['root_front']}"],
        ["factor nonzeros (fill)", r["factor_nnz"]],
        ["factor flops", f"{r['factor_flops']:.3e}"],
        ["assembly (host wall)", f"{r['t_assemble_wall']:.3f} s"],
        ["ordering+symbolic (host wall)", f"{r['t_analyze_wall']:.3f} s"],
        ["numerical factorization (A100 model)",
         f"{r['t_factor_sim'] * 1e3:.3f} ms"],
        [f"solve+refine x{r['n_rhs']} (host wall each)",
         ", ".join(f"{t:.3f}" for t in r["t_solves_wall"])],
        ["residuals after 1 refinement",
         ", ".join(f"{x:.2e}" for x in r["residuals"])],
    ]
    note = ("\nThe analyze cost is paid once; every additional right-hand "
            "side reuses the\nfactorization (§I / §V-B amortization).")
    return format_table(["quantity", "value"], rows,
                        title="Fig 12 / §V-B — problem and pipeline record"
                        ) + note


def main() -> None:  # pragma: no cover - CLI entry
    print(report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
