"""Figure 6 — irrTRSM vs MAGMA-style TRSM: FLOP rate and backward error.

"The comparison focuses on small triangular systems while varying the
number of right hand sides, which is the typical use case in the LU
decomposition.  Figure 6 shows an asymptotic performance gain of 7.6×,
while achieving a slightly better accuracy."
"""

from __future__ import annotations

from ..analysis.errors import max_trsm_backward_error
from ..analysis.flops import batch_trsm_flops
from ..analysis.report import fmt_rate, format_series
from ..batched.interface import IrrBatch
from ..batched.trsm import irr_trsm, magma_style_trsm
from ..device.simulator import Device
from ..device.spec import A100
from ..workloads.random_batch import triangular_batch
from .common import resolve_fast

__all__ = ["run", "report", "main"]


def run(fast: bool | None = None, *, seed: int = 0) -> dict:
    fast = resolve_fast(fast)
    batch = 200 if fast else 1000
    max_order = 128 if fast else 256
    rhs_sweep = [1, 2, 4, 8, 16, 32, 64] if fast else \
        [1, 2, 4, 8, 16, 32, 64, 128, 256]

    rows = {"irrTRSM_gflops": [], "magma_gflops": [],
            "irrTRSM_err": [], "magma_err": [], "speedup": []}
    for nrhs in rhs_sweep:
        ts, bs = triangular_batch(batch, max_order, nrhs, seed=seed)
        m = max(t.shape[0] for t in ts)
        flops = batch_trsm_flops([t.shape[0] for t in ts],
                                 [nrhs] * batch)

        dev = Device(A100())
        T = IrrBatch.from_host(dev, ts)
        B = IrrBatch.from_host(dev, [b.copy() for b in bs])
        with dev.timed_region() as t_irr:
            irr_trsm(dev, "L", "L", "N", "N", m, nrhs, 1.0,
                     T, (0, 0), B, (0, 0))
        err_irr = max_trsm_backward_error(ts, B.to_host(), bs, uplo="L")

        dev2 = Device(A100())
        T2 = IrrBatch.from_host(dev2, ts)
        B2 = IrrBatch.from_host(dev2, [b.copy() for b in bs])
        with dev2.timed_region() as t_magma:
            magma_style_trsm(dev2, "L", "L", "N", "N", m, nrhs, 1.0,
                             T2, (0, 0), B2, (0, 0))
        err_magma = max_trsm_backward_error(ts, B2.to_host(), bs, uplo="L")

        rows["irrTRSM_gflops"].append(fmt_rate(flops, t_irr["elapsed"]))
        rows["magma_gflops"].append(fmt_rate(flops, t_magma["elapsed"]))
        rows["irrTRSM_err"].append(err_irr)
        rows["magma_err"].append(err_magma)
        rows["speedup"].append(t_magma["elapsed"] / t_irr["elapsed"])

    return {"rhs": rhs_sweep, "batch": batch, "max_order": max_order,
            **rows}


def report(results: dict) -> str:
    return format_series(
        f"Fig 6 — irrTRSM vs MAGMA-style TRSM "
        f"(batch={results['batch']}, orders<= {results['max_order']}, A100 "
        f"model)",
        "nrhs", results["rhs"],
        {"irrTRSM Gflop/s": results["irrTRSM_gflops"],
         "MAGMA Gflop/s": results["magma_gflops"],
         "speedup": results["speedup"],
         "irrTRSM bwd err": results["irrTRSM_err"],
         "MAGMA bwd err": results["magma_err"]})


def main() -> None:  # pragma: no cover - CLI entry
    print(report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
