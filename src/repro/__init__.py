"""irrLU-GPU reproduction (SC22).

A pure-Python, production-quality reproduction of "Addressing Irregular
Patterns of Matrix Computations on GPUs and Their Impact on Applications
Powered by Sparse Direct Solvers": variable-size batched dense kernels
(irrGEMM / irrTRSM / irrLU-GPU with the expanded interface and DCWI), a
multifrontal sparse direct solver built on them, an indefinite-Maxwell
FEM application, and a discrete-event GPU execution model that stands in
for the A100/MI100 hardware.

Quick start::

    from repro.device import Device, A100
    from repro.batched import IrrBatch, irr_getrf

    dev = Device(A100())
    batch = IrrBatch.from_host(dev, list_of_numpy_matrices)
    pivots = irr_getrf(dev, batch)
"""

from . import analysis, batched, device, fem, serve, sparse, workloads
from .errors import (DeadlineExceeded, FactorizationError,
                     KernelLaunchError, PrecisionFallback,
                     RequestCancelled, ResourceExhausted,
                     ServiceOverloaded, TransferError)
from .recovery import RecoveryEvent, RecoveryLog

__version__ = "1.0.0"

__all__ = ["device", "batched", "sparse", "fem", "workloads", "analysis",
           "serve",
           "FactorizationError", "PrecisionFallback", "TransferError",
           "KernelLaunchError",
           "ResourceExhausted", "ServiceOverloaded", "DeadlineExceeded",
           "RequestCancelled", "RecoveryLog", "RecoveryEvent",
           "__version__"]
