"""Sparse sessions: SparseLU handles multiplexed on one device.

A :class:`ServeSession` wraps one factored
:class:`~repro.sparse.solver.SparseLU` for service-mediated solves.  Each
session keeps its own :class:`~repro.sparse.numeric.solve_plan.DeviceFactorCache`
device residency, but all sessions of a service draw from *one* shared
``memory_budget``: the :class:`MemoryArbiter` splits the service budget
evenly across the sessions currently open, and every open/close
re-budgets the survivors.  A session whose share shrank simply rebuilds
its cache on the next solve (``SparseLU`` frees the old residency when
the budget changes), so device bytes follow the session population
without any explicit rebalancing pass.
"""

from __future__ import annotations

import itertools
import threading

from ..device.memory import validate_memory_budget

__all__ = ["MemoryArbiter", "ServeSession"]


class MemoryArbiter:
    """Splits one device-byte budget across the active sparse sessions.

    ``total=None`` means unbudgeted: every session keeps all its factor
    levels resident (the cache's own default).  Otherwise each active
    session is entitled to ``max(1, total // n_active)`` bytes.  The
    split is deliberately even — sessions are peers; a proportional
    policy can subclass :meth:`share`.
    """

    def __init__(self, total: int | None, *, stats=None):
        self.total = validate_memory_budget(total, name="sparse memory"
                                            " budget")
        self._active: set[int] = set()
        self._lock = threading.Lock()
        self._stats = stats

    @property
    def n_active(self) -> int:
        with self._lock:
            return len(self._active)

    def register(self, sid: int) -> None:
        with self._lock:
            self._active.add(sid)
        if self._stats is not None:
            self._stats.on_rebudget()

    def unregister(self, sid: int) -> None:
        with self._lock:
            self._active.discard(sid)
        if self._stats is not None:
            self._stats.on_rebudget()

    def share(self) -> int | None:
        """Current per-session budget in bytes (``None`` = unbudgeted)."""
        if self.total is None:
            return None
        with self._lock:
            n = max(1, len(self._active))
        return max(1, self.total // n)


class ServeSession:
    """A factored sparse system held open for repeated served solves.

    Returned by ``SolverService.factor(A)`` for sparse ``A`` — the
    sparse analogue of the dense ``FactorHandle``.  Solves submitted
    against it run on the service's dispatcher thread under the
    session's *current* arbiter share; the underlying ``SparseLU``
    already serializes cache use per handle, so a session is safe to
    solve from any thread through the service.

    Diagnostics ride on the session: :attr:`factor_report` is the
    factorization's :class:`~repro.sparse.numeric.report.FactorReport`
    (or ``None`` for report-less backends).
    """

    _ids = itertools.count(1)

    def __init__(self, solver, device, arbiter: MemoryArbiter):
        self.sid = next(self._ids)
        self.solver = solver
        self.device = device
        self._arbiter = arbiter
        self._closed = False
        arbiter.register(self.sid)

    # -- inspection ----------------------------------------------------
    @property
    def n(self) -> int:
        return self.solver.n

    @property
    def factor_report(self):
        return self.solver.factor_report

    @property
    def precision(self) -> str:
        """Working precision of the session's factors (``"fp64"`` or
        ``"fp32"``; solves always refine back to FP64 accuracy)."""
        return self.solver.precision

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def budget(self) -> int | None:
        """This session's current share of the service's sparse budget."""
        return self._arbiter.share()

    # -- dispatcher-side execution --------------------------------------
    def solve_on_device(self, b, **solve_kwargs):
        """Run one solve under the current arbiter share (dispatcher
        thread).  Budget churn between calls is handled by ``SparseLU``:
        a changed budget frees the old cache and builds a new one."""
        if self._closed:
            raise RuntimeError(f"session {self.sid} is closed")
        return self.solver.solve(b, device=self.device,
                                 memory_budget=self.budget, **solve_kwargs)

    def close(self) -> None:
        """Release the session's device residency and its budget share.

        Idempotent.  The remaining sessions' shares grow on their next
        solve (the arbiter re-splits on unregister).
        """
        if self._closed:
            return
        self._closed = True
        self._arbiter.unregister(self.sid)
        cache = self.solver.solve_cache
        if cache is not None:
            with cache.exclusive():
                cache.free()

    def __enter__(self) -> "ServeSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "closed" if self._closed else "open"
        return f"ServeSession(sid={self.sid}, n={self.n}, {state})"
