"""Service health: rolling fault monitoring and a dispatch circuit breaker.

A service running on a degrading device pays for every fault twice:
the recovery machinery (transfer retries with backoff, ABFT
re-executions, whole-program re-runs) repairs the fault, but the repair
*cost* lands on the latency of the request that happened to be in
flight — and on a persistently faulty device that cost recurs on every
dispatch.  The classes here bound that second payment:

* :class:`HealthMonitor` keeps a rolling window of per-dispatch fault
  counts, fed from the device's
  :class:`~repro.recovery.RecoveryLog` deltas (``transfer-retry``,
  ``kernel-reexec``, ``launch-retry``, …) — every resilience action the
  stack already records, with no extra instrumentation in the kernels.
* :class:`CircuitBreaker` turns that signal into a dispatch-path
  decision.  **Closed** (healthy): the compiled fast path is allowed.
  **Open**: the service degrades — severity 1 skips the compiled
  replay (a whole-program ABFT re-run is the most expensive repair
  rung; the bucketed path re-executes only the corrupted launch),
  severity 2 additionally steers new *sparse* sessions to the host
  backend (dense batches have no host path — they stay on the bucketed
  device ladder, which still repairs or isolates every fault).
  **Half-open**: after a cooldown measured in dispatches, one probe
  dispatch runs the normal path; a clean probe closes the breaker, a
  faulty probe re-opens it with the cooldown doubled (exponential
  backoff, bounded) and the severity escalated.

The breaker is deliberately *dispatch-clocked*, not wall-clocked: the
simulated device advances time only when work runs, so cooldowns are
counted in dispatches and the whole state machine is deterministic
under the seeded fault plans the chaos suites drive.

Degradation is never surfaced as a request failure — requests keep
completing on the degraded ladder.  The breaker's state and the typed
:class:`~repro.errors.ServiceDegraded` describing the trip are exposed
through ``ServiceStats.snapshot()`` (``breaker_state`` /
``degraded_reason``).
"""

from __future__ import annotations

from collections import deque

from ..errors import ServiceDegraded

__all__ = ["HealthMonitor", "CircuitBreaker", "FAULT_ACTIONS"]

#: Recovery-log actions that count as fault evidence for the health
#: window.  Repair-side bookkeeping (``cache-evict``, ``chunk-shrink``)
#: is excluded: it reflects memory pressure, not device faults.
FAULT_ACTIONS = ("transfer-retry", "launch-retry", "alloc-retry",
                 "kernel-reexec", "level-split", "front-quarantine",
                 "host-fallback")


class HealthMonitor:
    """Rolling window of per-dispatch fault observations.

    ``observe(n)`` records that one dispatch saw ``n`` fault events
    (recovery-log actions in :data:`FAULT_ACTIONS` plus any typed
    corruption/system errors the dispatcher caught).  The derived
    :attr:`fault_rate` is the fraction of windowed dispatches that saw
    at least one fault — a rate of faulty *dispatches*, not raw event
    counts, so one pathological dispatch with 50 retries cannot trip
    the breaker alone.
    """

    def __init__(self, window: int = 16):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.window = int(window)
        self._counts: deque[int] = deque(maxlen=window)
        self.total_faults = 0        #: fault events ever observed
        self.observed = 0            #: dispatches ever observed

    def observe(self, faults: int) -> None:
        faults = max(int(faults), 0)
        self._counts.append(faults)
        self.total_faults += faults
        self.observed += 1

    def reset(self) -> None:
        """Forget the window (kept totals stay); used when the breaker
        closes so stale storm evidence cannot re-trip it instantly."""
        self._counts.clear()

    def __len__(self) -> int:
        return len(self._counts)

    @property
    def fault_rate(self) -> float:
        """Fraction of windowed dispatches that saw >= 1 fault event."""
        if not self._counts:
            return 0.0
        return sum(1 for c in self._counts if c) / len(self._counts)

    @property
    def faults_in_window(self) -> int:
        return sum(self._counts)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"HealthMonitor(window={self.window}, "
                f"rate={self.fault_rate:.2f}, "
                f"faults={self.faults_in_window})")


#: breaker states
_CLOSED, _OPEN, _HALF_OPEN = "closed", "open", "half-open"

#: severity rungs: 1 = skip the compiled replay, 2 = additionally
#: steer new sparse sessions to the host backend.
MAX_SEVERITY = 2


class CircuitBreaker:
    """Closed / open / half-open dispatch gate over a fault monitor.

    Parameters
    ----------
    monitor:
        The :class:`HealthMonitor` supplying the rolling fault rate
        (a fresh ``HealthMonitor()`` by default).
    open_threshold:
        Windowed fault rate at or above which the breaker opens.
    min_observations:
        Dispatches that must be in the window before the rate is
        trusted — a single faulty dispatch after startup never opens
        the breaker.
    cooldown:
        Dispatches the breaker stays open before probing (half-open).
    backoff:
        Cooldown multiplier applied on every failed probe, capped at
        ``max_cooldown`` — a persistently faulty device is probed
        geometrically less often.
    max_cooldown:
        Upper bound on the cooldown (in dispatches).

    Feed it one :meth:`record` per dispatch (the dispatch's fault-event
    count); consult :meth:`allow_compiled` / :meth:`force_host` *before*
    dispatching.  All methods are called from the single dispatcher
    thread — the breaker needs no lock of its own.
    """

    def __init__(self, *, monitor: HealthMonitor | None = None,
                 open_threshold: float = 0.5, min_observations: int = 4,
                 cooldown: int = 4, backoff: float = 2.0,
                 max_cooldown: int = 64):
        if not 0.0 < open_threshold <= 1.0:
            raise ValueError(
                f"open_threshold must be in (0, 1], got {open_threshold}")
        if min_observations < 1:
            raise ValueError("min_observations must be >= 1")
        if cooldown < 1:
            raise ValueError("cooldown must be >= 1")
        if backoff < 1.0:
            raise ValueError("backoff must be >= 1.0")
        self.monitor = monitor if monitor is not None else HealthMonitor()
        self.open_threshold = float(open_threshold)
        self.min_observations = int(min_observations)
        self.initial_cooldown = int(cooldown)
        self.backoff = float(backoff)
        self.max_cooldown = int(max_cooldown)
        self.state = _CLOSED
        self.severity = 0
        self.trips = 0               #: closed->open transitions
        self.probes = 0              #: half-open probe dispatches
        self.last_degraded: ServiceDegraded | None = None
        self._cooldown = int(cooldown)
        self._remaining = 0

    # -- queries (before dispatch) --------------------------------------
    def allow_compiled(self) -> bool:
        """May this dispatch take the compiled fast path?  True when
        closed and for the half-open probe; False while open."""
        return self.state != _OPEN

    def force_host(self) -> bool:
        """Should new sparse sessions be steered to the host backend?
        Only at severity 2 while degraded (open); probes run the
        normal path so a recovered device is actually exercised."""
        return self.state == _OPEN and self.severity >= MAX_SEVERITY

    @property
    def degraded(self) -> bool:
        return self.state != _CLOSED

    # -- state machine (after dispatch) ---------------------------------
    def record(self, faults: int) -> str:
        """Feed one dispatch's fault-event count; returns the state the
        breaker is in *after* absorbing it."""
        if self.state == _CLOSED:
            self.monitor.observe(faults)
            if (len(self.monitor) >= self.min_observations
                    and self.monitor.fault_rate >= self.open_threshold):
                self._trip(1)
        elif self.state == _OPEN:
            # degraded dispatches tick the cooldown; their fault counts
            # are not probe evidence (the fast path was not exercised)
            self._remaining -= 1
            if self._remaining <= 0:
                self.state = _HALF_OPEN
        else:  # half-open: this dispatch WAS the probe
            self.probes += 1
            if faults:
                self._cooldown = min(int(self._cooldown * self.backoff),
                                     self.max_cooldown)
                self._trip(min(self.severity + 1, MAX_SEVERITY))
            else:
                self._close()
        return self.state

    def _trip(self, severity: int) -> None:
        if self.state == _CLOSED:
            self.trips += 1
        self.state = _OPEN
        self.severity = severity
        self._remaining = self._cooldown
        self.last_degraded = ServiceDegraded(
            _OPEN, self.monitor.fault_rate,
            detail=f"severity {severity}, probing after "
                   f"{self._cooldown} dispatch(es)")

    def _close(self) -> None:
        self.state = _CLOSED
        self.severity = 0
        self._cooldown = self.initial_cooldown
        self.monitor.reset()
        self.last_degraded = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"CircuitBreaker({self.state}, severity={self.severity}, "
                f"trips={self.trips}, rate={self.monitor.fault_rate:.2f})")
