"""DevicePool — multi-device serving over a :class:`~repro.device.node.Node`.

:class:`SolverService` funnels every dispatch through one simulated
device; a :class:`DevicePool` keeps the exact same admission queue,
coalescing rules and dispatch ladders, but routes each coalesced group
to one member device of a node.  Because a group always runs *whole* on
one device, and every member device is built from the same
:class:`~repro.device.spec.DeviceSpec`, pooled results are bitwise
identical to a single-device :class:`SolverService` at every device
count — the pool changes where work runs, never what it computes.

Placement policy (cheapest sufficient rule first):

1. **Sticky sparse sessions** — a sparse solve goes to the device that
   factored its session (the session's factor cache is device-resident;
   moving it would re-upload everything for nothing).
2. **Sticky hot signatures** — with ``policy.compile_hot``, a getrf
   group whose signature already has a compiled program on some device
   replays there (programs record device-specific launch schedules).
3. **Least outstanding work** — otherwise the group goes to the device
   whose simulated clock is furthest behind (ties to the lowest index),
   skipping devices whose circuit breaker is open (unless every breaker
   is open, in which case the sick devices must serve anyway rather
   than deadlock the queue).

Per-device isolation: each device gets its own
:class:`~repro.serve.health.CircuitBreaker`, batch engine (plan cache),
compiled-program store and :class:`~repro.serve.session.MemoryArbiter`
(the pool budget split evenly), so one sick or overloaded device
degrades only its own traffic.  Per-device counters — dispatches,
occupancy, simulated seconds, payload link bytes, resident factor bytes,
breaker state — surface under ``stats.snapshot()["devices"]``; the
global ``breaker_state`` mirrors the most recently dispatched device.

Threading model is unchanged from :class:`SolverService`: one
dispatcher thread owns every member device's launch surface (groups are
placed and executed sequentially in wall time; the *simulated* timelines
overlap, which is what the throughput numbers measure).
"""

from __future__ import annotations

import time
from collections import OrderedDict

import scipy.sparse as sp

from ..batched.engine import BatchEngine, PlanCache
from ..device.node import Node
from .health import CircuitBreaker
from .scheduler import DispatchPolicy, Request
from .service import SolverService
from .session import MemoryArbiter, ServeSession
from .stats import DispatchRecord

__all__ = ["DevicePool"]


class _DeviceSlot:
    """Everything one member device owns: its engine (plan cache),
    circuit breaker, memory arbiter, and compiled-program stores."""

    __slots__ = ("index", "device", "engine", "breaker", "arbiter",
                 "programs", "sig_seen", "uncompilable")


class DevicePool(SolverService):
    """Thread-safe serving front-end over a multi-device node.

    Parameters
    ----------
    node:
        The :class:`~repro.device.node.Node` whose member devices serve
        the traffic.  The pool's dispatcher thread is the single launch
        owner of *every* member device.
    policy:
        The batching knobs, exactly as for :class:`SolverService`.
    sparse_memory_budget:
        Total sparse-session device-byte budget for the whole pool,
        split evenly into per-device :class:`MemoryArbiter` budgets
        (``None`` = unbudgeted).  Sessions on one device share that
        device's split; a device can never be pushed over its share by
        sessions living elsewhere.
    start:
        As for :class:`SolverService`; ``start=False`` + ``run_once()``
        gives deterministic inline dispatch.
    """

    def __init__(self, node: Node, *,
                 policy: DispatchPolicy | None = None,
                 sparse_memory_budget: int | None = None,
                 start: bool = True, clock=time.monotonic):
        if not isinstance(node, Node):
            raise TypeError(f"DevicePool needs a repro.device.Node, "
                            f"got {type(node).__name__}")
        self.node = node
        per_dev = None if sparse_memory_budget is None \
            else max(1, int(sparse_memory_budget) // len(node))
        super().__init__(node[0], policy=policy,
                         sparse_memory_budget=per_dev, start=False,
                         clock=clock)
        self._slots: list[_DeviceSlot] = []
        for i, dev in enumerate(node):
            slot = _DeviceSlot()
            slot.index = i
            slot.device = dev
            if i == 0:
                # slot 0 adopts the state the base constructor built
                slot.engine = self._engine
                slot.breaker = self.breaker
                slot.arbiter = self.arbiter
                slot.programs = self._programs
                slot.sig_seen = self._sig_seen
                slot.uncompilable = self._uncompilable
            else:
                slot.engine = BatchEngine(
                    "bucketed", cache=PlanCache(capacity=getattr(
                        self._policy, "plan_cache_capacity", None)))
                slot.breaker = CircuitBreaker()
                slot.arbiter = MemoryArbiter(per_dev, stats=self.stats)
                slot.programs = OrderedDict()
                slot.sig_seen = {}
                slot.uncompilable = set()
            self._slots.append(slot)
        self._bound = 0
        #: session sid -> device index (sticky placement)
        self._session_device: dict[int, int] = {}
        #: device index -> open sessions (for the resident-bytes gauge)
        self._device_sessions: dict[int, list[ServeSession]] = {
            i: [] for i in range(len(node))}
        if start:
            self.start()

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------
    def _bind(self, index: int) -> _DeviceSlot:
        """Point the service surface at one member device.  Dispatcher-
        thread only: the base class reads these attributes exactly once
        per dispatch, always after the bind."""
        slot = self._slots[index]
        self.device = slot.device
        self._engine = slot.engine
        self.breaker = slot.breaker
        self.arbiter = slot.arbiter
        self._programs = slot.programs
        self._sig_seen = slot.sig_seen
        self._uncompilable = slot.uncompilable
        self._bound = index
        return slot

    def _place(self, group: list[Request],
               policy: DispatchPolicy) -> int:
        """Choose the device index one coalesced group runs on."""
        kind = group[0].key[0]
        if kind == "sparse-solve":
            idx = self._session_device.get(
                group[0].payload["session"].sid)
            if idx is not None:
                return idx
        elif kind == "getrf" and getattr(policy, "compile_hot", False):
            sig = self._group_signature(group, policy)
            for slot in self._slots:
                if sig in slot.programs:
                    return slot.index
        healthy = [s for s in self._slots if s.breaker.state != "open"]
        candidates = healthy or self._slots
        return min(candidates,
                   key=lambda s: (s.device.host_time, s.index)).index

    # ------------------------------------------------------------------
    # dispatch / sessions / lifecycle
    # ------------------------------------------------------------------
    def _safe_dispatch(self, group: list[Request],
                       policy: DispatchPolicy | None = None
                       ) -> DispatchRecord:
        if policy is None:
            policy = self.policy
        index = self._place(group, policy)
        slot = self._bind(index)
        was_open = slot.breaker.state == "open"
        record = super()._safe_dispatch(group, policy)
        self.stats.on_device_dispatch(index, record)
        self.stats.on_device_breaker(index, slot.breaker.state,
                                     degraded=was_open)
        self.stats.on_device_link(index, self._staged_nbytes(group))
        self.stats.on_device_resident(index,
                                      self._resident_nbytes(index))
        return record

    def _open_session(self, a, kwargs: dict) -> ServeSession:
        session = super()._open_session(a, kwargs)
        self._session_device[session.sid] = self._bound
        self._device_sessions[self._bound].append(session)
        return session

    def close(self) -> None:
        if self._closed:
            return
        super().close()        # drains, then frees the bound slot's store
        for slot in self._slots:
            for prog in slot.programs.values():
                prog.free()
            slot.programs.clear()

    # ------------------------------------------------------------------
    # accounting helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _staged_nbytes(group: list[Request]) -> int:
        """Host payload bytes this group stages onto its device (the
        matrices, right-hand sides and re-uploaded dense factors)."""
        total = 0
        for r in group:
            for key in ("a", "b2", "b"):
                v = r.payload.get(key)
                if v is None:
                    continue
                if sp.issparse(v):
                    total += v.data.nbytes + v.indices.nbytes + \
                        v.indptr.nbytes
                else:
                    total += v.nbytes
            h = r.payload.get("handle")
            if h is not None:
                total += h.lu.nbytes
        return total

    def _resident_nbytes(self, index: int) -> int:
        """Factor bytes currently device-resident for this slot's open
        sparse sessions (closed sessions are pruned as a side effect)."""
        live = []
        total = 0
        for s in self._device_sessions[index]:
            if s.closed:
                continue
            live.append(s)
            cache = s.solver.solve_cache
            if cache is not None:
                total += cache.resident_nbytes
        self._device_sessions[index] = live
        return total
