"""Service observability: latency histograms, dispatch records, counters.

Everything here is updated from two kinds of threads — submitters (admission
counters) and the dispatcher (dispatch records, latencies) — so every
mutator takes the stats lock.  Reads return snapshots; nothing hands out
internal mutable state.

The numbers the acceptance tests key on:

* *coalescing ratio* — requests dispatched per batched dispatch.  A ratio
  of ``k`` means ``k`` requests shared one launch group; 1.0 means the
  service degenerated to one-request-per-launch.
* *batch occupancy* — ``Σ mᵢ·nᵢ / (batch · m_req · n_req)``: how full the
  irregular batch was relative to the uniform batch the vendor interface
  would have padded to.  This is the paper's irregularity measure applied
  to the admission mix.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field

__all__ = ["LatencyHistogram", "DispatchRecord", "ServiceStats"]


class LatencyHistogram:
    """Log-bucketed latency accumulator (1 µs … ~17 min, ×4 per bin).

    Cheap enough to update under the stats lock on every request, precise
    enough for the "is wait time exploding" question a service dashboard
    answers.  Quantiles are bin-resolution estimates (upper bin edge).
    """

    BASE = 1e-6          # smallest resolvable latency: 1 µs
    FACTOR = 4.0         # geometric bin width
    NBINS = 16           # last edge = 1e-6 * 4**15 ≈ 1074 s

    def __init__(self) -> None:
        self.counts = [0] * self.NBINS
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    def record(self, seconds: float) -> None:
        seconds = max(float(seconds), 0.0)
        if seconds <= 0.0:
            b = 0
        else:
            b = int(math.log(seconds / self.BASE, self.FACTOR)) + 1 \
                if seconds > self.BASE else 0
            b = min(max(b, 0), self.NBINS - 1)
        self.counts[b] += 1
        self.count += 1
        self.total += seconds
        if seconds > self.max:
            self.max = seconds

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Upper-edge estimate of the ``q`` quantile (0 <= q <= 1)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for b, c in enumerate(self.counts):
            seen += c
            if seen >= rank:
                return self.BASE * self.FACTOR ** b
        return self.max

    def snapshot(self) -> dict:
        return {"count": self.count, "mean": self.mean, "max": self.max,
                "p50": self.quantile(0.5), "p95": self.quantile(0.95)}


@dataclass(frozen=True)
class DispatchRecord:
    """One batched dispatch as the scheduler executed it.

    ``launches`` is the device launch-count delta of the whole dispatch —
    for a coalesced group of N compatible requests it must match the
    launch count of a *single* request through the same kernel path (the
    paper's batch-size-independent launch structure), which is exactly
    what the acceptance test checks.
    """

    kind: str           #: "getrf" | "getrs" | "sparse-open" | "sparse-solve"
    batch_size: int     #: requests fused into this dispatch
    launches: int       #: device launch-count delta
    occupancy: float    #: Σ mᵢ·nᵢ / (batch · m_req · n_req); 1.0 = uniform
    retries: int        #: whole-batch retries consumed before success
    isolated: bool      #: True when the group fell back to per-request runs


@dataclass
class ServiceStats:
    """Aggregated service counters; every mutator is thread-safe."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0          #: futures resolved with an exception
    rejected: int = 0        #: ServiceOverloaded at admission
    expired: int = 0         #: DeadlineExceeded before dispatch
    cancelled: int = 0
    queue_depth: int = 0
    queue_peak: int = 0
    rebudgets: int = 0       #: sparse memory-arbiter budget recomputations
    programs_compiled: int = 0    #: hot signatures compiled to programs
    compiled_dispatches: int = 0  #: groups served by a program replay
    compiled_fallbacks: int = 0   #: replays that fell back to bucketed
    precision_fallbacks: int = 0  #: reduced-precision work redone in FP64
    refine_passes: int = 0        #: iterative-refinement correction sweeps
    wait: LatencyHistogram = field(default_factory=LatencyHistogram)
    exec: LatencyHistogram = field(default_factory=LatencyHistogram)
    dispatches: list = field(default_factory=list)
    _plan_cache: object = field(default=None, repr=False, compare=False)
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    # -- admission -----------------------------------------------------
    def on_submit(self, depth: int) -> None:
        with self._lock:
            self.submitted += 1
            self.queue_depth = depth
            if depth > self.queue_peak:
                self.queue_peak = depth

    def on_reject(self) -> None:
        with self._lock:
            self.rejected += 1

    def on_expire(self) -> None:
        with self._lock:
            self.expired += 1

    def on_cancel(self) -> None:
        with self._lock:
            self.cancelled += 1

    def on_depth(self, depth: int) -> None:
        with self._lock:
            self.queue_depth = depth

    # -- dispatch ------------------------------------------------------
    def on_dispatch(self, record: DispatchRecord,
                    waits: list[float]) -> None:
        with self._lock:
            self.dispatches.append(record)
            for w in waits:
                self.wait.record(w)

    def on_done(self, ok: bool, exec_seconds: float) -> None:
        with self._lock:
            if ok:
                self.completed += 1
            else:
                self.failed += 1
            self.exec.record(exec_seconds)

    def on_rebudget(self) -> None:
        with self._lock:
            self.rebudgets += 1

    # -- compiled workload programs --------------------------------------
    def attach_plan_cache(self, cache) -> None:
        """Surface a :class:`~repro.batched.engine.PlanCache`'s
        hit/miss/eviction counters through :meth:`snapshot` (the cache
        keeps its own lock; stats only read it)."""
        with self._lock:
            self._plan_cache = cache

    def on_program_compiled(self) -> None:
        with self._lock:
            self.programs_compiled += 1

    def on_compiled_dispatch(self) -> None:
        with self._lock:
            self.compiled_dispatches += 1

    def on_compiled_fallback(self) -> None:
        with self._lock:
            self.compiled_fallbacks += 1

    # -- mixed precision -------------------------------------------------
    def on_precision_fallback(self) -> None:
        with self._lock:
            self.precision_fallbacks += 1

    def on_refine_pass(self, n: int = 1) -> None:
        """``n`` members received one refinement correction sweep."""
        with self._lock:
            self.refine_passes += n

    # -- derived -------------------------------------------------------
    @property
    def coalescing_ratio(self) -> float:
        """Mean requests per batched dispatch (1.0 = no coalescing)."""
        with self._lock:
            if not self.dispatches:
                return 0.0
            return sum(d.batch_size for d in self.dispatches) / \
                len(self.dispatches)

    @property
    def mean_occupancy(self) -> float:
        with self._lock:
            if not self.dispatches:
                return 0.0
            return sum(d.occupancy for d in self.dispatches) / \
                len(self.dispatches)

    def snapshot(self) -> dict:
        """Point-in-time copy of every counter (safe to serialize)."""
        with self._lock:
            return {
                "submitted": self.submitted,
                "completed": self.completed,
                "failed": self.failed,
                "rejected": self.rejected,
                "expired": self.expired,
                "cancelled": self.cancelled,
                "queue_depth": self.queue_depth,
                "queue_peak": self.queue_peak,
                "rebudgets": self.rebudgets,
                "dispatches": len(self.dispatches),
                "coalesced_requests": sum(d.batch_size
                                          for d in self.dispatches),
                "coalescing_ratio": (
                    sum(d.batch_size for d in self.dispatches) /
                    len(self.dispatches) if self.dispatches else 0.0),
                "mean_occupancy": (
                    sum(d.occupancy for d in self.dispatches) /
                    len(self.dispatches) if self.dispatches else 0.0),
                "programs_compiled": self.programs_compiled,
                "compiled_dispatches": self.compiled_dispatches,
                "compiled_fallbacks": self.compiled_fallbacks,
                "precision_fallbacks": self.precision_fallbacks,
                "refine_passes": self.refine_passes,
                "plan_cache": (None if self._plan_cache is None else {
                    "size": len(self._plan_cache),
                    "capacity": self._plan_cache.capacity,
                    "hits": self._plan_cache.hits,
                    "misses": self._plan_cache.misses,
                    "evictions": self._plan_cache.evictions,
                }),
                "wait": self.wait.snapshot(),
                "exec": self.exec.snapshot(),
            }
