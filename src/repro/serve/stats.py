"""Service observability: latency histograms, dispatch records, counters.

Everything here is updated from two kinds of threads — submitters (admission
counters) and the dispatcher (dispatch records, latencies) — so every
mutator takes the stats lock.  Reads return snapshots; nothing hands out
internal mutable state.

The numbers the acceptance tests key on:

* *coalescing ratio* — requests dispatched per batched dispatch.  A ratio
  of ``k`` means ``k`` requests shared one launch group; 1.0 means the
  service degenerated to one-request-per-launch.
* *batch occupancy* — ``Σ mᵢ·nᵢ / (batch · m_req · n_req)``: how full the
  irregular batch was relative to the uniform batch the vendor interface
  would have padded to.  This is the paper's irregularity measure applied
  to the admission mix.

Long-lived services get bounded memory: the per-dispatch record history
is a capped ring buffer (:attr:`ServiceStats.dispatch_history` records),
while *running aggregates* (dispatch count, coalesced-request total,
occupancy/launch/sim-time sums) are updated on every dispatch so the
derived numbers — :attr:`~ServiceStats.coalescing_ratio`,
:attr:`~ServiceStats.mean_occupancy`, :meth:`~ServiceStats.snapshot` —
stay exact over the *full* history, not just the retained window.

:meth:`ServiceStats.snapshot` is the observation surface the online
autotuner (:mod:`repro.serve.autotune`) diffs: it includes the raw
latency-histogram bin counts and totals, so two snapshots subtract into
an exact windowed histogram.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from dataclasses import dataclass, field

__all__ = ["LatencyHistogram", "DispatchRecord", "ServiceStats"]


class LatencyHistogram:
    """Log-bucketed latency accumulator (1 µs … ~17 min, ×4 per bin).

    Cheap enough to update under the stats lock on every request, precise
    enough for the "is wait time exploding" question a service dashboard
    answers.  Quantiles are bin-resolution estimates (upper bin edge).

    Bin semantics: bin 0 covers ``[0, BASE]``; bin ``b`` covers
    ``(BASE·FACTOR^(b-1), BASE·FACTOR^b]`` — a sample exactly on a bin's
    upper edge belongs to that bin, never the next one (the float-log
    rounding that used to push edge samples one bin too high is corrected
    against the exact edge values).
    """

    BASE = 1e-6          # smallest resolvable latency: 1 µs
    FACTOR = 4.0         # geometric bin width
    NBINS = 16           # last edge = 1e-6 * 4**15 ≈ 1074 s

    def __init__(self) -> None:
        self.counts = [0] * self.NBINS
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    def bin_index(self, seconds: float) -> int:
        """The bin a sample belongs to (exact at bin edges)."""
        seconds = max(float(seconds), 0.0)
        if seconds <= self.BASE:
            return 0
        # float-log estimate, then correct against the exact edges: the
        # invariant is BASE*FACTOR**(b-1) < seconds <= BASE*FACTOR**b.
        b = int(math.ceil(math.log(seconds / self.BASE)
                          / math.log(self.FACTOR)))
        b = min(max(b, 1), self.NBINS - 1)
        while b > 1 and seconds <= self.BASE * self.FACTOR ** (b - 1):
            b -= 1
        while b < self.NBINS - 1 and seconds > self.BASE * self.FACTOR ** b:
            b += 1
        return b

    def bin_edge(self, b: int) -> float:
        """Upper edge of bin ``b``."""
        return self.BASE * self.FACTOR ** b

    def record(self, seconds: float) -> None:
        seconds = max(float(seconds), 0.0)
        self.counts[self.bin_index(seconds)] += 1
        self.count += 1
        self.total += seconds
        if seconds > self.max:
            self.max = seconds

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Upper-edge estimate of the ``q`` quantile (0 <= q <= 1).

        ``quantile(0.0)`` returns the upper edge of the first *non-empty*
        bin (the smallest latency class actually observed), not the edge
        of an empty leading bin.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        return self.quantile_of(self.counts, self.count, q, self.max)

    @classmethod
    def quantile_of(cls, counts, count: int, q: float,
                    fallback: float = 0.0) -> float:
        """Quantile over an externally supplied bin-count vector (used by
        the autotuner on windowed count deltas)."""
        if count <= 0:
            return 0.0
        rank = q * count
        seen = 0
        for b, c in enumerate(counts):
            if not c:
                continue
            seen += c
            if seen >= rank:
                return cls.BASE * cls.FACTOR ** b
        return fallback

    def snapshot(self) -> dict:
        return {"count": self.count, "mean": self.mean, "max": self.max,
                "total": self.total, "counts": list(self.counts),
                "p50": self.quantile(0.5), "p95": self.quantile(0.95),
                "p99": self.quantile(0.99)}


@dataclass(frozen=True)
class DispatchRecord:
    """One batched dispatch as the scheduler executed it.

    ``launches`` is the device launch-count delta of the whole dispatch —
    for a coalesced group of N compatible requests it must match the
    launch count of a *single* request through the same kernel path (the
    paper's batch-size-independent launch structure), which is exactly
    what the acceptance test checks.
    """

    kind: str           #: "getrf" | "getrs" | "sparse-open" | "sparse-solve"
    batch_size: int     #: requests fused into this dispatch
    launches: int       #: device launch-count delta
    occupancy: float    #: Σ mᵢ·nᵢ / (batch · m_req · n_req); 1.0 = uniform
    retries: int        #: whole-batch retries consumed before success
    isolated: bool      #: True when the group fell back to per-request runs
    sim_seconds: float = 0.0  #: simulated host seconds the dispatch consumed


#: recent request orders kept for the run-time size-distribution summary
#: the autotuner keys on (a reservoir, not an exact history).
_ORDER_RING = 512


@dataclass
class ServiceStats:
    """Aggregated service counters; every mutator is thread-safe.

    Per-dispatch :class:`DispatchRecord` history is a bounded ring
    (newest ``dispatch_history`` records, exposed through
    :attr:`dispatches` as a list snapshot); the derived aggregates are
    maintained as running sums and stay exact over the full history.
    """

    submitted: int = 0
    completed: int = 0
    failed: int = 0          #: futures resolved with an exception
    rejected: int = 0        #: ServiceOverloaded at admission
    expired: int = 0         #: DeadlineExceeded before dispatch
    cancelled: int = 0
    queue_depth: int = 0
    queue_peak: int = 0
    rebudgets: int = 0       #: sparse memory-arbiter budget recomputations
    programs_compiled: int = 0    #: hot signatures compiled to programs
    compiled_dispatches: int = 0  #: groups served by a program replay
    compiled_fallbacks: int = 0   #: replays that fell back to bucketed
    precision_fallbacks: int = 0  #: reduced-precision work redone in FP64
    refine_passes: int = 0        #: iterative-refinement correction sweeps
    policy_swaps: int = 0         #: hot DispatchPolicy replacements
    corruptions_detected: int = 0  #: CorruptionDetected caught dispatching
    kernel_reexecs: int = 0       #: ABFT re-execution rungs consumed
    degraded_dispatches: int = 0  #: dispatches run with the breaker open
    breaker_state: str = "closed"  #: circuit-breaker state after dispatch
    degraded_reason: str | None = None  #: str(ServiceDegraded) while open
    dispatch_history: int = 1024  #: ring-buffer bound on retained records
    wait: LatencyHistogram = field(default_factory=LatencyHistogram)
    exec: LatencyHistogram = field(default_factory=LatencyHistogram)
    # -- exact running aggregates over the FULL dispatch history --------
    dispatch_count: int = 0
    coalesced_requests: int = 0   #: Σ batch_size
    launches_total: int = 0
    occupancy_total: float = 0.0
    sim_seconds_total: float = 0.0
    isolated_dispatches: int = 0
    retries_total: int = 0
    _ring: deque = field(default=None, repr=False, compare=False)
    _orders: deque = field(default=None, repr=False, compare=False)
    _plan_cache: object = field(default=None, repr=False, compare=False)
    _devices: dict = field(default=None, repr=False, compare=False)
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    def __post_init__(self):
        if self.dispatch_history < 1:
            raise ValueError(f"dispatch_history must be >= 1, "
                             f"got {self.dispatch_history}")
        self._ring = deque(maxlen=self.dispatch_history)
        self._orders = deque(maxlen=_ORDER_RING)
        self._devices = {}

    # -- admission -----------------------------------------------------
    def on_submit(self, depth: int, order: int | None = None) -> None:
        with self._lock:
            self.submitted += 1
            self.queue_depth = depth
            if depth > self.queue_peak:
                self.queue_peak = depth
            if order is not None:
                self._orders.append(int(order))

    def on_reject(self) -> None:
        with self._lock:
            self.rejected += 1

    def on_expire(self) -> None:
        with self._lock:
            self.expired += 1

    def on_cancel(self) -> None:
        with self._lock:
            self.cancelled += 1

    def on_depth(self, depth: int) -> None:
        with self._lock:
            self.queue_depth = depth

    # -- dispatch ------------------------------------------------------
    def on_dispatch(self, record: DispatchRecord,
                    waits: list[float]) -> None:
        with self._lock:
            self._ring.append(record)
            self.dispatch_count += 1
            self.coalesced_requests += record.batch_size
            self.launches_total += record.launches
            self.occupancy_total += record.occupancy
            self.sim_seconds_total += record.sim_seconds
            self.retries_total += record.retries
            if record.isolated:
                self.isolated_dispatches += 1
            for w in waits:
                self.wait.record(w)

    def on_done(self, ok: bool, exec_seconds: float) -> None:
        with self._lock:
            if ok:
                self.completed += 1
            else:
                self.failed += 1
            self.exec.record(exec_seconds)

    def on_rebudget(self) -> None:
        with self._lock:
            self.rebudgets += 1

    def on_policy_swap(self) -> None:
        with self._lock:
            self.policy_swaps += 1

    # -- compiled workload programs --------------------------------------
    def attach_plan_cache(self, cache) -> None:
        """Surface a :class:`~repro.batched.engine.PlanCache`'s
        hit/miss/eviction counters through :meth:`snapshot` (the cache
        keeps its own lock; stats only read it)."""
        with self._lock:
            self._plan_cache = cache

    def on_program_compiled(self) -> None:
        with self._lock:
            self.programs_compiled += 1

    def on_compiled_dispatch(self) -> None:
        with self._lock:
            self.compiled_dispatches += 1

    def on_compiled_fallback(self) -> None:
        with self._lock:
            self.compiled_fallbacks += 1

    # -- corruption defense / circuit breaker ----------------------------
    def on_corruption(self) -> None:
        """One :class:`~repro.errors.CorruptionDetected` was caught by
        the dispatch ladder (the re-execution budget was exhausted)."""
        with self._lock:
            self.corruptions_detected += 1

    def on_kernel_reexec(self, n: int = 1) -> None:
        """``n`` ABFT re-execution rungs were consumed by a dispatch."""
        if n <= 0:
            return
        with self._lock:
            self.kernel_reexecs += n

    def on_degraded_dispatch(self) -> None:
        """One dispatch ran on the degraded ladder (breaker open)."""
        with self._lock:
            self.degraded_dispatches += 1

    def on_breaker_state(self, state: str,
                         degraded=None) -> None:
        """Record the breaker state after a dispatch; ``degraded`` is the
        :class:`~repro.errors.ServiceDegraded` describing an open
        breaker (``None`` once it closes)."""
        with self._lock:
            self.breaker_state = state
            self.degraded_reason = None if degraded is None \
                else str(degraded)

    # -- multi-device pools ----------------------------------------------
    def _device(self, index: int) -> dict:
        """The (locked-caller) per-device counter dict for one pool slot."""
        d = self._devices.get(index)
        if d is None:
            d = self._devices[index] = {
                "dispatches": 0, "coalesced_requests": 0, "launches": 0,
                "occupancy_total": 0.0, "sim_seconds": 0.0,
                "link_bytes": 0, "resident_factor_bytes": 0,
                "degraded_dispatches": 0, "breaker_state": "closed",
            }
        return d

    def on_device_dispatch(self, index: int, record: DispatchRecord) -> None:
        """Account one dispatch against the pool slot that executed it
        (the global :meth:`on_dispatch` aggregates still see it too)."""
        with self._lock:
            d = self._device(index)
            d["dispatches"] += 1
            d["coalesced_requests"] += record.batch_size
            d["launches"] += record.launches
            d["occupancy_total"] += record.occupancy
            d["sim_seconds"] += record.sim_seconds

    def on_device_link(self, index: int, nbytes: int) -> None:
        """``nbytes`` of request payload crossed a link to this device."""
        if nbytes <= 0:
            return
        with self._lock:
            self._device(index)["link_bytes"] += int(nbytes)

    def on_device_resident(self, index: int, nbytes: int) -> None:
        """Gauge: factor bytes currently resident on this device."""
        with self._lock:
            self._device(index)["resident_factor_bytes"] = int(nbytes)

    def on_device_breaker(self, index: int, state: str,
                          degraded: bool = False) -> None:
        """Record one device's breaker state after a dispatch."""
        with self._lock:
            d = self._device(index)
            d["breaker_state"] = state
            if degraded:
                d["degraded_dispatches"] += 1

    # -- mixed precision -------------------------------------------------
    def on_precision_fallback(self) -> None:
        with self._lock:
            self.precision_fallbacks += 1

    def on_refine_pass(self, n: int = 1) -> None:
        """``n`` members received one refinement correction sweep."""
        with self._lock:
            self.refine_passes += n

    # -- derived -------------------------------------------------------
    @property
    def dispatches(self) -> list:
        """Snapshot of the retained (newest) dispatch records."""
        with self._lock:
            return list(self._ring)

    @property
    def coalescing_ratio(self) -> float:
        """Mean requests per batched dispatch (1.0 = no coalescing);
        exact over the full history, not just the retained ring."""
        with self._lock:
            if not self.dispatch_count:
                return 0.0
            return self.coalesced_requests / self.dispatch_count

    @property
    def mean_occupancy(self) -> float:
        with self._lock:
            if not self.dispatch_count:
                return 0.0
            return self.occupancy_total / self.dispatch_count

    def order_summary(self) -> dict:
        """Size-distribution summary of recently admitted requests (the
        run-time analogue of
        :func:`~repro.batched.tuning.size_distribution_summary`)."""
        from ..batched.tuning import size_distribution_summary
        with self._lock:
            orders = list(self._orders)
        return size_distribution_summary(orders, orders)

    def snapshot(self) -> dict:
        """Point-in-time copy of every counter (safe to serialize).

        Includes the raw latency bin counts so two snapshots diff into
        an exact window; every aggregate is exact over the full history
        even after the dispatch ring has wrapped.
        """
        with self._lock:
            return {
                "submitted": self.submitted,
                "completed": self.completed,
                "failed": self.failed,
                "rejected": self.rejected,
                "expired": self.expired,
                "cancelled": self.cancelled,
                "queue_depth": self.queue_depth,
                "queue_peak": self.queue_peak,
                "rebudgets": self.rebudgets,
                "dispatches": self.dispatch_count,
                "coalesced_requests": self.coalesced_requests,
                "coalescing_ratio": (
                    self.coalesced_requests / self.dispatch_count
                    if self.dispatch_count else 0.0),
                "mean_occupancy": (
                    self.occupancy_total / self.dispatch_count
                    if self.dispatch_count else 0.0),
                "occupancy_total": self.occupancy_total,
                "launches": self.launches_total,
                "sim_seconds": self.sim_seconds_total,
                "isolated_dispatches": self.isolated_dispatches,
                "retries": self.retries_total,
                "programs_compiled": self.programs_compiled,
                "compiled_dispatches": self.compiled_dispatches,
                "compiled_fallbacks": self.compiled_fallbacks,
                "precision_fallbacks": self.precision_fallbacks,
                "refine_passes": self.refine_passes,
                "policy_swaps": self.policy_swaps,
                "corruptions_detected": self.corruptions_detected,
                "kernel_reexecs": self.kernel_reexecs,
                "degraded_dispatches": self.degraded_dispatches,
                "breaker_state": self.breaker_state,
                "degraded_reason": self.degraded_reason,
                "plan_cache": (None if self._plan_cache is None else {
                    "size": len(self._plan_cache),
                    "capacity": self._plan_cache.capacity,
                    "hits": self._plan_cache.hits,
                    "misses": self._plan_cache.misses,
                    "evictions": self._plan_cache.evictions,
                }),
                "wait": self.wait.snapshot(),
                "exec": self.exec.snapshot(),
                "devices": {
                    idx: dict(d, mean_occupancy=(
                        d["occupancy_total"] / d["dispatches"]
                        if d["dispatches"] else 0.0))
                    for idx, d in sorted(self._devices.items())},
            }
