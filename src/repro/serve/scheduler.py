"""Admission queue and coalescing policy for the solver service.

The scheduler answers one question: *which pending requests may share a
single batched launch group without changing anyone's bits?*  Grouping is
by a compatibility key computed at admission:

* **Dense factorizations** group by ``(dtype, LU-policy kwargs)`` — any
  mix of sizes — as long as every matrix stays in the *fused-panel
  regime* (``panel_shared_bytes(m, 0, nb, itemsize)`` within the
  device's per-block shared memory).  In that regime the blocked driver's
  panel grid and per-matrix kernels are independent of the batch's
  required dimensions, so the coalesced factors are bitwise-identical to
  a one-request batch.  A matrix too tall for the fused panel would pull
  the whole batch into the recursive panel split, whose blocking depends
  on ``max_m`` across the batch — those requests get singleton keys and
  dispatch alone.
* **Dense solves** group by ``(dtype, exact order)``: the irrTRSM
  recursion splits the *required* order, so mixing orders would change
  the blocking (and the accumulation order) of every member.  Same-order
  systems share the recursion exactly and stay bitwise-identical.
* **Sparse solves** are singleton by default — stacking right-hand sides
  changes the BLAS accumulation width and the refinement's global
  residual norm, neither bitwise-safe.  ``coalesce_sparse_rhs=True``
  opts a session into same-session RHS stacking (results then match to
  rounding, not bitwise).

The queue is bounded (admission raises
:class:`~repro.errors.ServiceOverloaded` when full), FIFO per key, and
deadline/cancellation aware: expired and cancelled requests are resolved
and dropped during collection, never dispatched.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

import numpy as np

from ..batched.getrf import DEFAULT_PANEL_WIDTH
from ..batched.panel import panel_shared_bytes
from ..batched.trsm import TRSM_BASE_NB
from ..errors import DeadlineExceeded, RequestCancelled, ServiceOverloaded

__all__ = ["CoalescingPolicy", "ServiceFuture", "Request", "AdmissionQueue"]

#: Future/request states.
_PENDING, _DISPATCHED, _DONE = "pending", "dispatched", "done"


@dataclass(frozen=True)
class CoalescingPolicy:
    """Batching knobs of the service (a pure value; safe to share).

    Attributes
    ----------
    max_batch:
        Largest number of requests fused into one launch group.
        ``max_batch=1`` disables coalescing — every request dispatches
        alone (the sequential reference the benchmarks compare against).
    max_wait:
        Longest time (host seconds) the oldest request of a group may
        sit in the queue while the scheduler waits for more compatible
        arrivals.  ``0.0`` dispatches whatever is present immediately.
    max_queue:
        Admission bound; a full queue rejects with
        :class:`~repro.errors.ServiceOverloaded`.
    dispatch_retries:
        Whole-batch retries (from pristine host inputs) on a transient
        device fault before the group falls back to per-request
        isolation runs.
    coalesce_sparse_rhs:
        Allow same-session sparse solves to stack their right-hand
        sides into one multi-column sweep.  Off by default: stacked
        solves match to rounding, not bitwise.
    compile_hot:
        Compile recurring dense dispatch signatures into
        :class:`~repro.batched.program.WorkloadProgram` replays.  A
        signature seen ``hot_threshold`` times gets a compiled program;
        later identical groups replay it (payload copies only — no
        planning, no allocation).  Results stay bitwise identical to
        the bucketed dispatch path; a replay whose payload trips a
        breakdown guard falls back to the ordinary runner for that
        group.
    hot_threshold:
        Dispatches of one signature before it is considered hot and
        compiled (``compile_hot=True`` only).
    max_programs:
        Bound on live compiled programs; least-recently-replayed
        programs are freed when the store overflows.
    plan_cache_capacity:
        LRU bound for the service engine's DCWI plan cache (``None`` =
        unbounded, the historical behavior).  Long-lived services with
        unbounded shape diversity should set this.
    """

    max_batch: int = 32
    max_wait: float = 2e-3
    max_queue: int = 256
    dispatch_retries: int = 2
    coalesce_sparse_rhs: bool = False
    compile_hot: bool = False
    hot_threshold: int = 3
    max_programs: int = 32
    plan_cache_capacity: int | None = None

    def __post_init__(self):
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {self.max_queue}")
        if self.max_wait < 0:
            raise ValueError(f"max_wait must be >= 0, got {self.max_wait}")
        if self.dispatch_retries < 0:
            raise ValueError(f"dispatch_retries must be >= 0, "
                             f"got {self.dispatch_retries}")
        if self.hot_threshold < 1:
            raise ValueError(f"hot_threshold must be >= 1, "
                             f"got {self.hot_threshold}")
        if self.max_programs < 1:
            raise ValueError(f"max_programs must be >= 1, "
                             f"got {self.max_programs}")
        if self.plan_cache_capacity is not None \
                and self.plan_cache_capacity < 1:
            raise ValueError(f"plan_cache_capacity must be >= 1 or None, "
                             f"got {self.plan_cache_capacity}")


class ServiceFuture:
    """Handle to one submitted request (thread-safe).

    ``result()`` blocks until the dispatcher resolves the request and
    returns the value or re-raises the request's own typed error —
    failures are *per-request*: a pivot breakdown or injected fault on
    one request of a coalesced batch surfaces here and nowhere else.
    """

    def __init__(self, kind: str):
        self.kind = kind
        self._event = threading.Event()
        self._lock = threading.Lock()
        self._state = _PENDING
        self._value = None
        self._error: BaseException | None = None

    # -- caller side ---------------------------------------------------
    def done(self) -> bool:
        return self._event.is_set()

    def cancelled(self) -> bool:
        with self._lock:
            return isinstance(self._error, RequestCancelled)

    def cancel(self) -> bool:
        """Cancel iff still queued; returns whether cancellation won.

        A request the dispatcher already collected cannot be cancelled —
        its launches may be in flight — and resolves normally.
        """
        with self._lock:
            if self._state != _PENDING:
                return False
            self._state = _DONE
            self._error = RequestCancelled(
                f"{self.kind} request cancelled while queued")
        self._event.set()
        return True

    def result(self, timeout: float | None = None):
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"{self.kind} request not resolved within {timeout}s")
        if self._error is not None:
            raise self._error
        return self._value

    def exception(self, timeout: float | None = None):
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"{self.kind} request not resolved within {timeout}s")
        return self._error

    # -- dispatcher side -----------------------------------------------
    def _claim(self) -> bool:
        """Move pending → dispatched; False if cancelled/resolved first."""
        with self._lock:
            if self._state != _PENDING:
                return False
            self._state = _DISPATCHED
            return True

    def _resolve(self, value=None, error: BaseException | None = None
                 ) -> bool:
        with self._lock:
            if self._state == _DONE:
                return False
            self._state = _DONE
            self._value = value
            self._error = error
        self._event.set()
        return True


class Request:
    """One queued unit of work (internal to the service)."""

    __slots__ = ("kind", "key", "payload", "future", "t_submit",
                 "deadline", "t_deadline")

    def __init__(self, kind: str, key: tuple, payload: dict,
                 deadline: float | None):
        if deadline is not None and deadline < 0:
            raise ValueError(f"deadline must be >= 0, got {deadline}")
        self.kind = kind
        self.key = key
        self.payload = payload
        self.future = ServiceFuture(kind)
        self.t_submit = time.monotonic()
        self.deadline = deadline
        self.t_deadline = None if deadline is None else \
            self.t_submit + deadline

    def waited(self, now: float | None = None) -> float:
        return (time.monotonic() if now is None else now) - self.t_submit

    def expired(self, now: float) -> bool:
        return self.t_deadline is not None and now > self.t_deadline


# ----------------------------------------------------------------------
# compatibility keys
# ----------------------------------------------------------------------
def getrf_key(m: int, n: int, dtype: np.dtype, lu_kwargs: dict,
              spec, serial: int, *, mixed: bool = False) -> tuple:
    """Group key for a dense factorization (and the factor step of
    ``factor_solve``): dtype + LU policy + fused-regime membership.

    Matrices outside the fused-panel regime get a singleton key (the
    ``serial`` discriminator) so they never drag a batch into the
    recursive panel split, whose blocking depends on the batch's
    ``max_m`` and is therefore not bitwise-stable under coalescing.

    ``mixed`` marks a reduced-precision (``precision="fp32"``) request:
    its dispatch carries an FP64 refinement finisher, so it must never
    coalesce with natively single-precision requests of the same device
    dtype (the discriminator also keeps compiled hot-signature programs
    separate).
    """
    nb = lu_kwargs.get("nb", DEFAULT_PANEL_WIDTH)
    if nb == "auto":
        nb = DEFAULT_PANEL_WIDTH
    itemsize = np.dtype(dtype).itemsize
    fused = panel_shared_bytes(max(m, n), 0, nb, itemsize) <= \
        spec.max_shared_per_block
    policy = tuple(sorted(lu_kwargs.items()))
    key = ("getrf", np.dtype(dtype).str, policy)
    if mixed:
        key += ("mixed",)
    if not fused:
        key += ("solo", serial)
    return key


def getrs_key(order: int, dtype: np.dtype, *, mixed: bool = False) -> tuple:
    """Group key for a dense solve: dtype + order *class* (shape-bucket
    affinity).  The irrTRSM recursion splits the required order — the
    group's max — so two orders share a launch group bitwise-safely only
    when they produce identical blocking.  Orders above the base width
    get their own recursion tree (exact-order keys); every order at or
    below ``TRSM_BASE_NB`` hits the single base-case kernel, whose
    numerics run per matrix over local dims, so they all share one
    class.  ``mixed`` separates solves against reduced-precision
    (``precision="fp32"``) handles — they run the FP64 refinement
    finisher after the batched sweep."""
    cls = int(order) if order > TRSM_BASE_NB else 0
    key = ("getrs", np.dtype(dtype).str, cls)
    if mixed:
        key += ("mixed",)
    return key


def sparse_key(session_id: int, solve_kwargs: tuple, *,
               coalesce: bool, serial: int) -> tuple:
    """Group key for a sparse solve: singleton unless the policy opts
    the session into RHS stacking (same session + same solve kwargs)."""
    if coalesce:
        return ("sparse-solve", session_id, solve_kwargs)
    return ("sparse-solve", session_id, solve_kwargs, "solo", serial)


# ----------------------------------------------------------------------
class AdmissionQueue:
    """Bounded FIFO with compatibility-key group collection."""

    def __init__(self, stats):
        self._q: list[Request] = []
        self._cond = threading.Condition()
        self._stopped = False
        self._stats = stats

    def __len__(self) -> int:
        with self._cond:
            return len(self._q)

    # -- submit side ---------------------------------------------------
    def push(self, req: Request, max_queue: int) -> None:
        with self._cond:
            if self._stopped:
                raise RuntimeError("service is closed")
            if len(self._q) >= max_queue:
                self._stats.on_reject()
                raise ServiceOverloaded(len(self._q), max_queue)
            self._q.append(req)
            self._stats.on_submit(len(self._q))
            self._cond.notify_all()

    def stop(self) -> None:
        with self._cond:
            self._stopped = True
            self._cond.notify_all()

    # -- dispatcher side -----------------------------------------------
    def _purge_locked(self, now: float) -> None:
        """Resolve and drop cancelled/expired requests (lock held)."""
        keep = []
        for req in self._q:
            if req.future.done():           # cancelled by the caller
                self._stats.on_cancel()
                continue
            if req.expired(now):
                if req.future._resolve(error=DeadlineExceeded(
                        req.deadline, req.waited(now))):
                    self._stats.on_expire()
                continue
            keep.append(req)
        self._q = keep

    def collect(self, policy: CoalescingPolicy, *, block: bool = True
                ) -> list[Request] | None:
        """Remove and return the next dispatchable group, FIFO by oldest.

        Blocks (when ``block``) until work arrives or :meth:`stop`.
        Holds the oldest compatible request at most ``policy.max_wait``
        seconds while waiting for the group to fill to
        ``policy.max_batch``.  Returns ``None`` when stopped (or, with
        ``block=False``, when the queue is empty).
        """
        with self._cond:
            while True:
                self._purge_locked(time.monotonic())
                if self._q:
                    break
                if self._stopped or not block:
                    self._stats.on_depth(0)
                    return None
                self._cond.wait()

            head = self._q[0]
            while True:
                now = time.monotonic()
                group = [r for r in self._q if r.key == head.key]
                if len(group) >= policy.max_batch:
                    break
                remaining = policy.max_wait - (now - head.t_submit)
                if remaining <= 0 or self._stopped or not block:
                    break
                self._cond.wait(timeout=remaining)
                self._purge_locked(time.monotonic())
                if not self._q:
                    # everything expired/cancelled while we waited
                    return self.collect(policy, block=block)
                if self._q[0] is not head:
                    head = self._q[0]

            group = group[:policy.max_batch]
            taken = []
            for r in group:
                if r.future._claim():
                    taken.append(r)
                else:                       # lost a cancellation race
                    self._stats.on_cancel()
            ids = {id(r) for r in group}
            self._q = [r for r in self._q if id(r) not in ids]
            self._stats.on_depth(len(self._q))
            if not taken:    # every member lost a cancellation race
                return self.collect(policy, block=block)
            return taken
