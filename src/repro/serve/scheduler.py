"""Admission queue and dispatch policy for the solver service.

The scheduler answers one question: *which pending requests may share a
single batched launch group without changing anyone's bits?*  Grouping is
by a compatibility key computed at admission:

* **Dense factorizations** group by ``(dtype, LU-policy kwargs)`` — any
  mix of sizes — as long as every matrix stays in the *fused-panel
  regime* (``panel_shared_bytes(m, 0, nb, itemsize)`` within the
  device's per-block shared memory).  In that regime the blocked driver's
  panel grid and per-matrix kernels are independent of the batch's
  required dimensions, so the coalesced factors are bitwise-identical to
  a one-request batch.  A matrix too tall for the fused panel would pull
  the whole batch into the recursive panel split, whose blocking depends
  on ``max_m`` across the batch — those requests get singleton keys and
  dispatch alone.
* **Dense solves** group by ``(dtype, order class)``: the irrTRSM
  recursion splits the *required* order, so mixing orders would change
  the blocking (and the accumulation order) of every member.  Orders at
  or below the class cutoff share the single base-case kernel (whose
  numerics run per matrix over local dims — bitwise-safe for any mix);
  larger orders get exact-order keys.
* **Sparse solves** are singleton by default — stacking right-hand sides
  changes the BLAS accumulation width and the refinement's global
  residual norm, neither bitwise-safe.  ``coalesce_sparse_rhs=True``
  opts a session into same-session RHS stacking (results then match to
  rounding, not bitwise).

*How long to hold a group open* is the :class:`DispatchPolicy`'s call.
:class:`CoalescingPolicy` is the static implementation — fixed
``max_batch``/``max_wait`` knobs — and the online autotuner
(:mod:`repro.serve.autotune`) swaps refined instances in atomically
between dispatches (:meth:`~repro.serve.service.SolverService.set_policy`)
without dropping queued work.  Admission is SLO-aware: a request
submitted with ``slo=`` caps its own hold time at
``slo_hold_fraction · slo``, so batching never spends a request's whole
latency budget waiting for company.

The queue is bounded (admission raises
:class:`~repro.errors.ServiceOverloaded` when full), FIFO per key, and
deadline/cancellation aware: expired and cancelled requests are resolved
and dropped during collection, never dispatched.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, replace as _dc_replace
from typing import Protocol, runtime_checkable

import numpy as np

from ..batched.getrf import DEFAULT_PANEL_WIDTH
from ..batched.panel import panel_shared_bytes
from ..batched.trsm import TRSM_BASE_NB
from ..errors import DeadlineExceeded, RequestCancelled, ServiceOverloaded

__all__ = ["DispatchPolicy", "CoalescingPolicy", "ServiceFuture",
           "Request", "AdmissionQueue"]

#: Future/request states.
_PENDING, _DISPATCHED, _DONE = "pending", "dispatched", "done"

#: Attribute surface a hot-swappable policy must provide (validated by
#: ``SolverService.set_policy`` — duck-typed, any object with these
#: attributes and the two per-key hooks qualifies).
_POLICY_ATTRS = ("max_batch", "max_wait", "max_queue", "dispatch_retries",
                 "coalesce_sparse_rhs", "compile_hot", "hot_threshold",
                 "max_programs", "panel_regime", "trsm_class_cutoff",
                 "slo_hold_fraction")


@runtime_checkable
class DispatchPolicy(Protocol):
    """What the service and queue ask of a batching policy.

    A policy is consulted at three points, always through one
    atomically-read reference (see ``SolverService.set_policy``):

    * **admission** — ``max_queue`` bounds the queue; ``trsm_class_cutoff``
      and ``coalesce_sparse_rhs`` shape compatibility keys.
    * **collection** — :meth:`group_limit` and :meth:`wait_budget` decide
      how large a group may grow and how long its oldest member may be
      held waiting for company.
    * **dispatch** — ``dispatch_retries``, ``compile_hot`` /
      ``hot_threshold`` / ``max_programs`` and ``panel_regime`` steer the
      execution ladder.

    Every knob changes *launch shapes only*: any two policies must
    produce bitwise-identical per-request results (the service's
    coalescing contract guarantees this for group composition; the
    remaining knobs are restricted to bit-stable ranges — see
    :class:`CoalescingPolicy`).  That is what makes hot-swapping safe.
    """

    max_batch: int
    max_wait: float
    max_queue: int
    dispatch_retries: int
    coalesce_sparse_rhs: bool
    compile_hot: bool
    hot_threshold: int
    max_programs: int
    panel_regime: str | None
    trsm_class_cutoff: int
    slo_hold_fraction: float

    def group_limit(self, key: tuple) -> int:
        """Largest group size for requests sharing ``key``."""
        ...

    def wait_budget(self, key: tuple) -> float:
        """Longest hold (seconds) for the oldest request under ``key``."""
        ...


@dataclass(frozen=True)
class CoalescingPolicy:
    """Static batching knobs of the service (a pure value; safe to share).

    The reference :class:`DispatchPolicy` implementation: every knob is a
    constant, :meth:`group_limit`/:meth:`wait_budget` ignore the key.
    The online autotuner derives refined instances via :meth:`replace`
    and installs them with ``SolverService.set_policy``.

    Attributes
    ----------
    max_batch:
        Largest number of requests fused into one launch group.
        ``max_batch=1`` disables coalescing — every request dispatches
        alone (the sequential reference the benchmarks compare against).
    max_wait:
        Longest time (host seconds) the oldest request of a group may
        sit in the queue while the scheduler waits for more compatible
        arrivals.  ``0.0`` dispatches whatever is present immediately.
    max_queue:
        Admission bound; a full queue rejects with
        :class:`~repro.errors.ServiceOverloaded`.
    dispatch_retries:
        Whole-batch retries (from pristine host inputs) on a transient
        device fault before the group falls back to per-request
        isolation runs.
    coalesce_sparse_rhs:
        Allow same-session sparse solves to stack their right-hand
        sides into one multi-column sweep.  Off by default: stacked
        solves match to rounding, not bitwise.
    compile_hot:
        Compile recurring dense dispatch signatures into
        :class:`~repro.batched.program.WorkloadProgram` replays.  A
        signature seen ``hot_threshold`` times gets a compiled program;
        later identical groups replay it (payload copies only — no
        planning, no allocation).  Results stay bitwise identical to
        the bucketed dispatch path; a replay whose payload trips a
        breakdown guard falls back to the ordinary runner for that
        group.
    hot_threshold:
        Dispatches of one signature before it is considered hot and
        compiled (``compile_hot=True`` only).
    max_programs:
        Bound on live compiled programs; least-recently-replayed
        programs are freed when the store overflows.
    plan_cache_capacity:
        LRU bound for the service engine's DCWI plan cache (``None`` =
        unbounded, the historical behavior).  Long-lived services with
        unbounded shape diversity should set this.  Applied when the
        service constructs its engine; a hot swap does not resize the
        live cache.
    panel_regime:
        Dispatch-time default for the dense panel path when a request
        does not pin ``panel=`` itself: ``None`` (leave the kernel
        default, ``"auto"``), ``"auto"`` or ``"columnwise"``.  The fused
        and column-wise panel kernels are bitwise-identical (same
        elimination arithmetic, different launch structure), so this
        knob is tunable without parity loss; ``"fused"`` is deliberately
        not offered here because it raises on batches outside the
        shared-memory regime.
    trsm_class_cutoff:
        Order at or below which dense solves share the base-case solve
        class (one group key).  Tunable in ``[1, TRSM_BASE_NB]`` only:
        within that range every grouped solve runs the single base-case
        kernel whose numerics are per-matrix, so regrouping is
        bitwise-safe; above ``TRSM_BASE_NB`` the recursion would split
        the *group's* required order and change members' bits.
    slo_hold_fraction:
        Fraction of a request's soft latency objective (``slo=`` at
        submission) the scheduler may spend holding it for batching.
        The remainder is headroom for execution.
    """

    max_batch: int = 32
    max_wait: float = 2e-3
    max_queue: int = 256
    dispatch_retries: int = 2
    coalesce_sparse_rhs: bool = False
    compile_hot: bool = False
    hot_threshold: int = 3
    max_programs: int = 32
    plan_cache_capacity: int | None = None
    panel_regime: str | None = None
    trsm_class_cutoff: int = TRSM_BASE_NB
    slo_hold_fraction: float = 0.5

    def __post_init__(self):
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {self.max_queue}")
        if self.max_wait < 0:
            raise ValueError(f"max_wait must be >= 0, got {self.max_wait}")
        if self.dispatch_retries < 0:
            raise ValueError(f"dispatch_retries must be >= 0, "
                             f"got {self.dispatch_retries}")
        if self.hot_threshold < 1:
            raise ValueError(f"hot_threshold must be >= 1, "
                             f"got {self.hot_threshold}")
        if self.max_programs < 1:
            raise ValueError(f"max_programs must be >= 1, "
                             f"got {self.max_programs}")
        if self.plan_cache_capacity is not None \
                and self.plan_cache_capacity < 1:
            raise ValueError(f"plan_cache_capacity must be >= 1 or None, "
                             f"got {self.plan_cache_capacity}")
        if self.panel_regime not in (None, "auto", "columnwise"):
            raise ValueError(
                f"panel_regime must be None, 'auto' or 'columnwise', got "
                f"{self.panel_regime!r} ('fused' raises outside the "
                f"shared-memory regime and is not a safe service default)")
        if not 1 <= self.trsm_class_cutoff <= TRSM_BASE_NB:
            raise ValueError(
                f"trsm_class_cutoff must be in [1, {TRSM_BASE_NB}], got "
                f"{self.trsm_class_cutoff}: above TRSM_BASE_NB the "
                f"recursion would split the group's required order and "
                f"coalesced solves would lose bitwise parity")
        if not 0.0 < self.slo_hold_fraction <= 1.0:
            raise ValueError(f"slo_hold_fraction must be in (0, 1], got "
                             f"{self.slo_hold_fraction}")

    # -- DispatchPolicy hooks ------------------------------------------
    def group_limit(self, key: tuple) -> int:
        return self.max_batch

    def wait_budget(self, key: tuple) -> float:
        return self.max_wait

    def replace(self, **changes) -> "CoalescingPolicy":
        """A copy with ``changes`` applied (validation re-runs)."""
        return _dc_replace(self, **changes)

    def describe(self) -> dict:
        """The tunable knobs as a plain dict (stable across swaps)."""
        return {k: getattr(self, k) for k in _POLICY_ATTRS}


class ServiceFuture:
    """Handle to one submitted request (thread-safe).

    ``result()`` blocks until the dispatcher resolves the request and
    returns the value or raises the request's own typed error —
    failures are *per-request*: a pivot breakdown or injected fault on
    one request of a coalesced batch surfaces here and nowhere else.

    Each ``result()`` call raises a *fresh* copy of the stored error,
    context-chained (``__cause__``) to the original: concurrent waiters
    each get their own exception object, so one waiter's raise never
    mutates the ``__traceback__`` another waiter is formatting.
    ``exception()`` returns the original object (read-only access does
    not raise, so it cannot race).
    """

    def __init__(self, kind: str):
        self.kind = kind
        self._event = threading.Event()
        self._lock = threading.Lock()
        self._state = _PENDING
        self._value = None
        self._error: BaseException | None = None

    # -- caller side ---------------------------------------------------
    def done(self) -> bool:
        return self._event.is_set()

    def cancelled(self) -> bool:
        with self._lock:
            return isinstance(self._error, RequestCancelled)

    def cancel(self) -> bool:
        """Cancel iff still queued; returns whether cancellation won.

        A request the dispatcher already collected cannot be cancelled —
        its launches may be in flight — and resolves normally.
        """
        with self._lock:
            if self._state != _PENDING:
                return False
            self._state = _DONE
            self._error = RequestCancelled(
                f"{self.kind} request cancelled while queued")
        self._event.set()
        return True

    def _rearmed_error(self) -> BaseException:
        """A per-waiter copy of the stored error, chained to the
        original.  Falls back to the original object only if the class
        cannot be shallow-copied at all."""
        err = self._error
        try:
            clone = err.__class__.__new__(err.__class__)
            clone.args = err.args
            if getattr(err, "__dict__", None):
                clone.__dict__.update(err.__dict__)
        except Exception:   # exotic exception class: degrade gracefully
            return err
        clone.__cause__ = err
        return clone

    def result(self, timeout: float | None = None):
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"{self.kind} request not resolved within {timeout}s")
        if self._error is not None:
            raise self._rearmed_error()
        return self._value

    def exception(self, timeout: float | None = None):
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"{self.kind} request not resolved within {timeout}s")
        return self._error

    # -- dispatcher side -----------------------------------------------
    def _claim(self) -> bool:
        """Move pending → dispatched; False if cancelled/resolved first."""
        with self._lock:
            if self._state != _PENDING:
                return False
            self._state = _DISPATCHED
            return True

    def _resolve(self, value=None, error: BaseException | None = None
                 ) -> bool:
        with self._lock:
            if self._state == _DONE:
                return False
            self._state = _DONE
            self._value = value
            self._error = error
        self._event.set()
        return True


class Request:
    """One queued unit of work (internal to the service).

    ``deadline`` is the hard bound: a request that waits past it is
    dropped with :class:`~repro.errors.DeadlineExceeded`.  ``slo`` is
    the *soft* latency objective: it never drops work, it only caps how
    long the scheduler may hold the request for batching (see
    :meth:`AdmissionQueue.collect`).  ``order`` is the request's
    characteristic problem size (min(m, n) / solve order), recorded for
    the run-time size-distribution summary the autotuner reads.
    """

    __slots__ = ("kind", "key", "payload", "future", "t_submit",
                 "deadline", "t_deadline", "slo", "order", "cls", "_clock")

    def __init__(self, kind: str, key: tuple, payload: dict,
                 deadline: float | None, *, slo: float | None = None,
                 order: int | None = None, cls: str | None = None,
                 clock=time.monotonic):
        if deadline is not None and deadline < 0:
            raise ValueError(f"deadline must be >= 0, got {deadline}")
        if slo is not None and slo <= 0:
            raise ValueError(f"slo must be > 0, got {slo}")
        self.kind = kind
        self.key = key
        self.payload = payload
        self.future = ServiceFuture(kind)
        self._clock = clock
        self.t_submit = clock()
        self.deadline = deadline
        self.t_deadline = None if deadline is None else \
            self.t_submit + deadline
        self.slo = slo
        self.order = order
        self.cls = cls

    def waited(self, now: float | None = None) -> float:
        return (self._clock() if now is None else now) - self.t_submit

    def expired(self, now: float) -> bool:
        return self.t_deadline is not None and now > self.t_deadline


# ----------------------------------------------------------------------
# compatibility keys
# ----------------------------------------------------------------------
def getrf_key(m: int, n: int, dtype: np.dtype, lu_kwargs: dict,
              spec, serial: int, *, mixed: bool = False) -> tuple:
    """Group key for a dense factorization (and the factor step of
    ``factor_solve``): dtype + LU policy + fused-regime membership.

    Matrices outside the fused-panel regime get a singleton key (the
    ``serial`` discriminator) so they never drag a batch into the
    recursive panel split, whose blocking depends on the batch's
    ``max_m`` and is therefore not bitwise-stable under coalescing.

    ``mixed`` marks a reduced-precision (``precision="fp32"``) request:
    its dispatch carries an FP64 refinement finisher, so it must never
    coalesce with natively single-precision requests of the same device
    dtype (the discriminator also keeps compiled hot-signature programs
    separate).
    """
    nb = lu_kwargs.get("nb", DEFAULT_PANEL_WIDTH)
    if nb == "auto":
        nb = DEFAULT_PANEL_WIDTH
    itemsize = np.dtype(dtype).itemsize
    fused = panel_shared_bytes(max(m, n), 0, nb, itemsize) <= \
        spec.max_shared_per_block
    policy = tuple(sorted(lu_kwargs.items()))
    key = ("getrf", np.dtype(dtype).str, policy)
    if mixed:
        key += ("mixed",)
    if not fused:
        key += ("solo", serial)
    return key


def getrs_key(order: int, dtype: np.dtype, *, mixed: bool = False,
              cutoff: int = TRSM_BASE_NB) -> tuple:
    """Group key for a dense solve: dtype + order *class* (shape-bucket
    affinity).  The irrTRSM recursion splits the required order — the
    group's max — so two orders share a launch group bitwise-safely only
    when they produce identical blocking.  Orders above the class
    ``cutoff`` get their own recursion tree (exact-order keys); every
    order at or below the cutoff hits the single base-case kernel,
    whose numerics run per matrix over local dims, so they all share
    one class.  ``cutoff`` is policy-tunable within
    ``[1, TRSM_BASE_NB]`` — any cutoff in that range keeps every class-0
    group inside the base-case kernel, so regrouping under a swapped
    policy never changes bits.  ``mixed`` separates solves against
    reduced-precision (``precision="fp32"``) handles — they run the
    FP64 refinement finisher after the batched sweep."""
    cutoff = min(int(cutoff), TRSM_BASE_NB)
    cls = int(order) if order > cutoff else 0
    key = ("getrs", np.dtype(dtype).str, cls)
    if mixed:
        key += ("mixed",)
    return key


def sparse_key(session_id: int, solve_kwargs: tuple, *,
               coalesce: bool, serial: int) -> tuple:
    """Group key for a sparse solve: singleton unless the policy opts
    the session into RHS stacking (same session + same solve kwargs)."""
    if coalesce:
        return ("sparse-solve", session_id, solve_kwargs)
    return ("sparse-solve", session_id, solve_kwargs, "solo", serial)


# ----------------------------------------------------------------------
class AdmissionQueue:
    """Bounded FIFO with compatibility-key group collection.

    ``clock`` is the monotonic time source every wait/deadline/SLO
    computation uses (``time.monotonic`` by default; the traffic
    simulator injects a virtual clock so admission dynamics replay
    deterministically in virtual time).
    """

    def __init__(self, stats, clock=time.monotonic):
        self._q: list[Request] = []
        self._cond = threading.Condition()
        self._stopped = False
        self._stats = stats
        self._clock = clock

    def __len__(self) -> int:
        with self._cond:
            return len(self._q)

    # -- submit side ---------------------------------------------------
    def push(self, req: Request, max_queue: int) -> None:
        with self._cond:
            if self._stopped:
                raise RuntimeError("service is closed")
            if len(self._q) >= max_queue:
                self._stats.on_reject()
                raise ServiceOverloaded(len(self._q), max_queue)
            self._q.append(req)
            self._stats.on_submit(len(self._q), req.order)
            self._cond.notify_all()

    def stop(self) -> None:
        with self._cond:
            self._stopped = True
            self._cond.notify_all()

    def kick(self) -> None:
        """Wake a blocked collector so it re-reads its policy — called
        after a hot swap, where a shortened hold budget must take effect
        now, not after the old budget's timeout."""
        with self._cond:
            self._cond.notify_all()

    # -- dispatcher side -----------------------------------------------
    def _purge_locked(self, now: float) -> None:
        """Resolve and drop cancelled/expired requests (lock held)."""
        keep = []
        for req in self._q:
            if req.future.done():           # cancelled by the caller
                self._stats.on_cancel()
                continue
            if req.expired(now):
                if req.future._resolve(error=DeadlineExceeded(
                        req.deadline, req.waited(now))):
                    self._stats.on_expire()
                continue
            keep.append(req)
        self._q = keep

    def _hold_budget(self, req: Request, policy: DispatchPolicy) -> float:
        """How long ``req`` may be held waiting for company: the
        policy's wait budget, capped by the request's soft latency
        objective (SLO-aware admission — batching never spends more
        than ``slo_hold_fraction`` of a request's latency budget in the
        queue)."""
        budget = float(policy.wait_budget(req.key))
        if req.slo is not None:
            frac = getattr(policy, "slo_hold_fraction", 0.5)
            budget = min(budget, frac * req.slo)
        return budget

    def _take_locked(self, group: list[Request]) -> list[Request]:
        """Claim and remove ``group`` from the queue (lock held)."""
        taken = []
        for r in group:
            if r.future._claim():
                taken.append(r)
            else:                       # lost a cancellation race
                self._stats.on_cancel()
        ids = {id(r) for r in group}
        self._q = [r for r in self._q if id(r) not in ids]
        self._stats.on_depth(len(self._q))
        return taken

    def collect(self, policy: DispatchPolicy, *, block: bool = True
                ) -> list[Request] | None:
        """Remove and return the next dispatchable group, FIFO by oldest.

        Blocks (when ``block``) until work arrives or :meth:`stop`.
        Holds the oldest compatible request at most its hold budget
        (``policy.wait_budget`` capped by the request's SLO) while
        waiting for the group to fill to ``policy.group_limit``.
        Returns ``None`` when stopped (or, with ``block=False``, when
        the queue is empty).

        Every restart path — the queue emptying while we waited, or all
        claimed members losing a cancellation race — *iterates* back to
        the head scan.  (The old implementation recursed while holding
        the condition; a cancellation storm could push it past the
        recursion limit.)
        """
        with self._cond:
            while True:      # one iteration per head-scan attempt
                self._purge_locked(self._clock())
                if not self._q:
                    if self._stopped or not block:
                        self._stats.on_depth(0)
                        return None
                    self._cond.wait()
                    continue

                head = self._q[0]
                while True:   # grow head's group until full/ripe
                    now = self._clock()
                    group = [r for r in self._q if r.key == head.key]
                    limit = policy.group_limit(head.key)
                    if len(group) >= limit:
                        break
                    remaining = self._hold_budget(head, policy) - \
                        (now - head.t_submit)
                    if remaining <= 0 or self._stopped or not block:
                        break
                    self._cond.wait(timeout=remaining)
                    self._purge_locked(self._clock())
                    if not self._q:
                        group = []
                        break     # everything expired/cancelled: rescan
                    if self._q[0] is not head:
                        # head purged: adopt the new oldest request and
                        # account the wait it has *already* served — its
                        # own t_submit anchors the budget, so an old
                        # request adopted late never waits from zero.
                        head = self._q[0]
                if not group:
                    continue      # iterate, never recurse

                taken = self._take_locked(group[:policy.group_limit(
                    head.key)])
                if not taken:     # every member lost a cancellation race
                    continue      # iterate, never recurse
                return taken

    # -- virtual-time collection (traffic simulation) -------------------
    def collect_ready(self, policy: DispatchPolicy,
                      now: float | None = None) -> list[Request] | None:
        """Non-blocking: the oldest group that is *ripe* at ``now`` —
        full to its group limit, or its head's hold budget spent.
        ``None`` when nothing is ripe yet.

        This is the discrete-event twin of :meth:`collect`: the traffic
        simulator advances a virtual clock to :meth:`next_ripe` and
        drains ripe groups here, reproducing exactly the decisions the
        blocking dispatcher would make in real time.
        """
        with self._cond:
            while True:
                if now is None:
                    now = self._clock()
                self._purge_locked(now)
                seen: set = set()
                for head in list(self._q):
                    if head.key in seen:
                        continue
                    seen.add(head.key)
                    limit = policy.group_limit(head.key)
                    group = [r for r in self._q if r.key == head.key]
                    ripe = len(group) >= limit or \
                        (now - head.t_submit) >= \
                        self._hold_budget(head, policy)
                    if not ripe:
                        continue
                    taken = self._take_locked(group[:limit])
                    if taken:
                        return taken
                    break         # cancellation race: rescan from top
                else:
                    return None

    def next_ripe(self, policy: DispatchPolicy,
                  now: float | None = None) -> float | None:
        """Earliest time at which some queued group becomes ripe
        (``now`` for already-full groups); ``None`` when the queue is
        empty.  Purges nothing and takes nothing."""
        with self._cond:
            if now is None:
                now = self._clock()
            best = None
            seen: set = set()
            counts: dict = {}
            for r in self._q:
                counts[r.key] = counts.get(r.key, 0) + 1
            for head in self._q:
                if head.key in seen:
                    continue
                seen.add(head.key)
                if counts[head.key] >= policy.group_limit(head.key):
                    t = now
                else:
                    t = head.t_submit + self._hold_budget(head, policy)
                if head.t_deadline is not None:
                    # an expired request becomes purgeable — also an event
                    t = min(t, head.t_deadline)
                best = t if best is None else min(best, t)
            return best
