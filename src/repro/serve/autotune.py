"""Online policy autotuning for the solver service (§VI, taken online).

:mod:`repro.batched.tuning` answers the paper's open auto-tuning problem
for *one batch whose sizes are known at run time*.  A serving system has
a harder version of the same problem: the "batch" is the arrival process
itself, its size distribution drifts, and the knobs that matter —
``max_batch``, ``max_wait``, ``hot_threshold``, the panel regime, the
solve-class cutoff — live in the
:class:`~repro.serve.scheduler.DispatchPolicy`, not in a kernel call.
This module closes that loop:

1. **Observe.**  :class:`OnlineAutotuner.step` diffs two
   :meth:`~repro.serve.stats.ServiceStats.snapshot` calls into an exact
   :class:`Window` — arrival/completion rates, mean group size,
   occupancy, wait/exec histogram deltas (the snapshots carry raw bin
   counts), compiled-replay fallback rate, shed work — plus the
   run-time size-distribution summary of recent arrivals.
2. **Decide.**  Signal rules propose one bounded knob move per window
   (double/halve ``max_wait``/``max_batch``, step ``hot_threshold``);
   the panel regime is chosen by a *measured micro-trial*: a synthetic
   batch matching the observed size distribution
   (:func:`~repro.batched.tuning.representative_orders`) runs through
   :func:`~repro.batched.tuning.autotune_getrf` on a scratch device,
   and the faster regime wins.  A proposal must repeat for
   ``hysteresis`` consecutive windows before it is applied — one noisy
   window never moves a knob.
3. **Guard.**  Every applied move records the pre-swap policy and the
   pre-swap objective.  If the next full window's objective regresses
   by more than ``rollback_tolerance``, the previous policy is restored
   (:class:`~repro.serve.service.SolverService.set_policy` is atomic and
   drops nothing) and the tuner holds still for ``cooldown`` windows.

Every knob the tuner touches changes *launch shapes only* — group
composition, hold times, panel launch structure, compiled-replay
thresholds.  None changes the bits of any individual result: the policy
validation in :class:`~repro.serve.scheduler.CoalescingPolicy` restricts
``panel_regime`` to the bitwise-identical pair and
``trsm_class_cutoff`` to the base-kernel range, and the service's
coalescing contract covers the rest.  ``bench_serve --slo`` checks
exactly that: autotuned runs must beat the static policy on throughput
*and* stay bitwise-equal to it, request by request.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..batched.trsm import TRSM_BASE_NB
from ..batched.tuning import autotune_getrf, representative_orders
from .stats import LatencyHistogram

__all__ = ["AutotuneConfig", "Window", "TuneAction", "OnlineAutotuner",
           "default_objective"]


@dataclass(frozen=True)
class AutotuneConfig:
    """Bounds and pacing of the online tuner (a pure value).

    The knob bounds are deliberately wide — the rollback guard, not the
    bounds, is the safety net — but every bound keeps the policy inside
    :class:`~repro.serve.scheduler.CoalescingPolicy` validation, i.e.
    inside the bitwise-safe tunable space.
    """

    min_requests: int = 16     #: smallest window worth acting on
    min_dispatches: int = 4
    hysteresis: int = 2        #: consecutive agreeing windows before a move
    cooldown: int = 2          #: windows to hold still after a rollback
    rollback_tolerance: float = 0.15   #: fractional objective regression
    max_batch_bounds: tuple = (4, 256)
    max_wait_bounds: tuple = (1e-5, 5e-2)
    hot_threshold_bounds: tuple = (2, 64)
    regime_trial_every: int = 8   #: windows between panel micro-trials
    regime_trial_orders: int = 8  #: synthetic batch size for the trial
    regime_trial_cap: int = 96    #: largest synthetic order trialed


@dataclass
class Window:
    """One observation window: the exact difference of two stats
    snapshots plus the arrival-size summary, in rates the objective can
    consume.  ``sim_seconds`` is simulated device time actually spent
    dispatching; ``seconds`` is the observing clock's span (virtual
    under the traffic simulator)."""

    seconds: float
    sim_seconds: float
    submitted: int
    completed: int
    failed: int
    expired: int
    rejected: int
    dispatches: int
    coalesced: int
    launches: int
    occupancy: float        #: mean per-dispatch occupancy in the window
    wait_p50: float
    wait_p99: float
    exec_p50: float
    compiled_dispatches: int
    compiled_fallbacks: int
    queue_depth: int        #: at window end
    orders: dict = field(default_factory=dict)

    @property
    def arrival_rate(self) -> float:
        return self.submitted / self.seconds if self.seconds > 0 else 0.0

    @property
    def mean_group(self) -> float:
        return self.coalesced / self.dispatches if self.dispatches else 0.0

    @property
    def throughput(self) -> float:
        """Completions per observed second (virtual under the traffic
        simulator) — the delivered rate, not the busy-time rate."""
        return self.completed / self.seconds if self.seconds > 0 else 0.0

    @property
    def utilization(self) -> float:
        """Fraction of the window the device spent dispatching."""
        return min(self.sim_seconds / self.seconds, 1.0) \
            if self.seconds > 0 else 0.0

    @property
    def fallback_rate(self) -> float:
        served = self.compiled_dispatches + self.compiled_fallbacks
        return self.compiled_fallbacks / served if served else 0.0


def default_objective(w: Window) -> float:
    """Higher is better: delivered throughput, discounted by tail wait
    latency and shed work.

    Delivered (per observed second), not busy-time: a policy that
    batches harder always looks better per *busy* second, yet in an
    underloaded or closed-loop system it can deliver strictly fewer
    answers per wall second — the quantity callers experience.  The
    latency scale (5 ms) keeps the discount gentle until queueing
    genuinely explodes; shed work divides linearly — shedding is the
    worst signal a batching policy can emit."""
    if w.seconds <= 0 or w.completed == 0:
        return 0.0
    latency_discount = 1.0 + w.wait_p99 / 5e-3
    shed_discount = 1.0 + w.expired + w.rejected
    return w.throughput / (latency_discount * shed_discount)


@dataclass
class TuneAction:
    """One tuner decision, kept in :attr:`OnlineAutotuner.history`."""

    kind: str               #: "swap" | "rollback" | "hold"
    changes: dict           #: knob -> new value ({} for hold/rollback)
    objective: float        #: the window objective that drove it
    window: Window


def _hist_window(after: dict, before: dict) -> tuple[list, int]:
    """Exact bin-count delta of one histogram between two snapshots."""
    counts = [a - b for a, b in zip(after["counts"], before["counts"])]
    return counts, after["count"] - before["count"]


class OnlineAutotuner:
    """Closed-loop policy tuner over one :class:`SolverService`.

    Owns no thread: call :meth:`step` at window boundaries (the traffic
    simulator does so between mix segments; a live deployment would call
    it from a timer).  Each step observes the window since the previous
    step, then either holds, applies one hysteresis-backed knob move via
    ``service.set_policy`` (atomic; queued work survives), or rolls the
    previous move back if it regressed the objective.
    """

    def __init__(self, service, *, config: AutotuneConfig | None = None,
                 objective=None, clock=None, seed: int = 0):
        self.service = service
        self.config = config or AutotuneConfig()
        self.objective = objective or default_objective
        self._clock = clock if clock is not None else \
            getattr(service, "_clock", time.monotonic)
        self._seed = seed
        self._last_snap = service.stats.snapshot()
        self._last_t = self._clock()
        self.history: list[TuneAction] = []
        self._votes: dict[str, int] = {}
        self._cooldown = 0
        self._windows_seen = 0
        self._pending_guard: tuple | None = None  # (policy, objective)
        self._regime_choice: str | None = None

    # -- observation ---------------------------------------------------
    def _observe(self) -> Window:
        snap = self.service.stats.snapshot()
        now = self._clock()
        before, self._last_snap = self._last_snap, snap
        t0, self._last_t = self._last_t, now
        wait_counts, wait_n = _hist_window(snap["wait"], before["wait"])
        exec_counts, exec_n = _hist_window(snap["exec"], before["exec"])
        dispatches = snap["dispatches"] - before["dispatches"]
        occ = snap["occupancy_total"] - before["occupancy_total"]
        return Window(
            seconds=max(now - t0, 0.0),
            sim_seconds=snap["sim_seconds"] - before["sim_seconds"],
            submitted=snap["submitted"] - before["submitted"],
            completed=snap["completed"] - before["completed"],
            failed=snap["failed"] - before["failed"],
            expired=snap["expired"] - before["expired"],
            rejected=snap["rejected"] - before["rejected"],
            dispatches=dispatches,
            coalesced=snap["coalesced_requests"]
            - before["coalesced_requests"],
            launches=snap["launches"] - before["launches"],
            occupancy=occ / dispatches if dispatches else 0.0,
            wait_p50=LatencyHistogram.quantile_of(wait_counts, wait_n, 0.5),
            wait_p99=LatencyHistogram.quantile_of(wait_counts, wait_n,
                                                  0.99),
            exec_p50=LatencyHistogram.quantile_of(exec_counts, exec_n, 0.5),
            compiled_dispatches=snap["compiled_dispatches"]
            - before["compiled_dispatches"],
            compiled_fallbacks=snap["compiled_fallbacks"]
            - before["compiled_fallbacks"],
            queue_depth=snap["queue_depth"],
            orders=self.service.stats.order_summary(),
        )

    # -- panel-regime micro-trial --------------------------------------
    def _trial_regime(self, orders_summary: dict) -> str | None:
        """Measure fused-auto vs column-wise panels on a synthetic batch
        matching the observed size distribution; the faster regime wins.
        Returns ``None`` when the trial is degenerate (no orders seen or
        every candidate infeasible)."""
        if not orders_summary.get("count"):
            return None
        cfg = self.config
        orders = [min(o, cfg.regime_trial_cap) for o in
                  representative_orders(orders_summary,
                                        count=cfg.regime_trial_orders,
                                        seed=self._seed)]
        rng = np.random.default_rng(self._seed)
        mats = []
        for n in orders:
            a = rng.standard_normal((n, n))
            a += n * np.eye(n)        # diagonally dominant: no breakdown
            mats.append(a)
        result = autotune_getrf(
            self.service.device.spec, mats,
            sample_size=len(mats), seed=self._seed,
            candidates=[{"panel": "auto"}, {"panel": "columnwise"}])
        if result.exhausted:
            return None
        return result.best["panel"]

    # -- proposal rules ------------------------------------------------
    def _proposals(self, w: Window, policy) -> dict:
        """Signal rules: window + current policy -> knob moves wanted
        *this* window (hysteresis gates actual application)."""
        cfg = self.config
        want: dict = {}
        lo_b, hi_b = cfg.max_batch_bounds
        lo_w, hi_w = cfg.max_wait_bounds

        # Group-size pressure: saturated groups with a backlog want a
        # larger cap; chronically tiny groups under a huge cap shrink it
        # (bounded queue headroom matters more than a cap nobody fills).
        if w.mean_group >= 0.9 * policy.max_batch and w.queue_depth > 0 \
                and policy.max_batch < hi_b:
            want["max_batch"] = min(policy.max_batch * 2, hi_b)
        elif w.mean_group <= 1.5 and policy.max_batch > 8 \
                and w.arrival_rate * policy.max_wait < 1.0:
            want["max_batch"] = max(policy.max_batch // 2, lo_b)

        # Hold-time pressure: when groups ripen by timeout (median wait
        # pinned at the budget) the budget is the active constraint —
        # lengthen it if arrivals are fast enough that waiting buys
        # company, shorten it if they are not (waiting buys only
        # latency).  Shed work always shortens it.
        timeout_bound = w.dispatches > 0 and \
            w.wait_p50 >= 0.5 * policy.max_wait and \
            w.mean_group < 0.75 * policy.max_batch
        if w.expired or w.rejected:
            want["max_wait"] = max(policy.max_wait / 2, lo_w)
        elif timeout_bound:
            expected = w.arrival_rate * policy.max_wait
            if expected >= 2.0 * max(2.0, w.mean_group) \
                    and policy.max_wait < hi_w:
                want["max_wait"] = min(policy.max_wait * 2, hi_w)
            elif w.utilization < 0.5 and policy.max_wait > lo_w:
                # the device is mostly idle and requests still ripen by
                # timeout: holding buys amortization nobody needs —
                # trade it back for latency (the rollback guard catches
                # the case where the amortization WAS load-bearing)
                want["max_wait"] = max(policy.max_wait / 2, lo_w)

        # Compiled-replay pressure: frequent guard-tripped fallbacks
        # mean signatures are compiled too eagerly; raise the bar.
        lo_h, hi_h = cfg.hot_threshold_bounds
        if policy.compile_hot and w.fallback_rate > 0.25 \
                and policy.hot_threshold < hi_h:
            want["hot_threshold"] = min(policy.hot_threshold * 2, hi_h)
        elif policy.compile_hot and w.compiled_dispatches == 0 \
                and w.dispatches >= 8 and policy.hot_threshold > lo_h:
            want["hot_threshold"] = max(policy.hot_threshold - 1, lo_h)

        # Solve-class cutoff: when every observed order fits the base
        # kernel, the widest class groups maximally (bitwise-safe by
        # construction); mixed traffic keeps the cutoff where it is.
        omax = w.orders.get("max", 0)
        if omax and omax <= TRSM_BASE_NB \
                and policy.trsm_class_cutoff < TRSM_BASE_NB:
            want["trsm_class_cutoff"] = TRSM_BASE_NB

        # Panel regime: measured, not inferred (see _trial_regime).
        if self._regime_choice is not None \
                and policy.panel_regime != self._regime_choice:
            want["panel_regime"] = self._regime_choice
        return want

    # -- the loop ------------------------------------------------------
    def step(self) -> TuneAction:
        """Observe the window since the last step and maybe act.

        Always returns the action taken (``kind="hold"`` when nothing
        changed) and appends it to :attr:`history`.
        """
        w = self._observe()
        self._windows_seen += 1
        obj = self.objective(w)
        policy = self.service.policy
        cfg = self.config

        small = w.submitted < cfg.min_requests or \
            w.dispatches < cfg.min_dispatches

        # rollback guard: the previous swap must justify itself on the
        # first full window that follows it
        if self._pending_guard is not None and not small:
            prev_policy, prev_obj = self._pending_guard
            self._pending_guard = None
            if prev_obj > 0 and \
                    obj < (1.0 - cfg.rollback_tolerance) * prev_obj:
                self.service.set_policy(prev_policy)
                self._cooldown = cfg.cooldown
                self._votes.clear()
                action = TuneAction("rollback", {}, obj, w)
                self.history.append(action)
                return action

        if small or self._cooldown > 0:
            if self._cooldown > 0 and not small:
                self._cooldown -= 1
            action = TuneAction("hold", {}, obj, w)
            self.history.append(action)
            return action

        # periodic measured micro-trial for the panel regime
        if self._windows_seen % cfg.regime_trial_every == 1:
            self._regime_choice = self._trial_regime(w.orders)

        want = self._proposals(w, policy)

        # hysteresis: a knob moves only after agreeing votes in
        # consecutive windows (direction changes reset the count)
        changes: dict = {}
        for knob, value in want.items():
            token = f"{knob}->{value}"
            self._votes[token] = self._votes.get(token, 0) + 1
            if self._votes[token] >= cfg.hysteresis:
                changes[knob] = value
        for token in list(self._votes):
            knob = token.split("->", 1)[0]
            if knob not in want or f"{knob}->{want[knob]}" != token:
                del self._votes[token]

        if not changes:
            action = TuneAction("hold", {}, obj, w)
            self.history.append(action)
            return action

        new_policy = policy.replace(**changes)
        self.service.set_policy(new_policy)
        self._pending_guard = (policy, obj)
        for knob in changes:
            for token in [t for t in self._votes
                          if t.startswith(f"{knob}->")]:
                del self._votes[token]
        action = TuneAction("swap", dict(changes), obj, w)
        self.history.append(action)
        return action

    # -- reporting -----------------------------------------------------
    def summary(self) -> dict:
        """Counts of swaps/rollbacks/holds and the current knobs."""
        kinds = [a.kind for a in self.history]
        return {
            "windows": len(kinds),
            "swaps": kinds.count("swap"),
            "rollbacks": kinds.count("rollback"),
            "holds": kinds.count("hold"),
            "policy": self.service.policy.describe(),
        }
