"""SolverService — concurrent factor/solve serving with batch coalescing.

The paper's batched kernels amortize launch overhead across a batch; a
service receiving *independent* small factorizations one at a time
forfeits exactly that amortization.  :class:`SolverService` wins it
back: concurrent ``factor(A)`` / ``solve(handle, b)`` /
``factor_solve(A, b)`` submissions land in an admission queue, a single
dispatcher thread groups compatible requests (see
:mod:`repro.serve.scheduler` for the bitwise-safety rules), and each
group runs as **one** irregular-batch launch sequence through
:func:`~repro.batched.getrf.irr_getrf` /
:func:`~repro.batched.getrs.irr_getrs` — N requests, one launch group,
results sliced back per request.

Threading model
---------------
Submission (``submit_*``, the sync wrappers, ``cancel``) is safe from
any thread.  All device work runs on the dispatcher thread — the
simulated :class:`~repro.device.simulator.Device` requires a single
launch owner (its docstring states the contract) — so the service
funnels every kernel through one thread while callers block on
futures.  Construct with ``start=False`` and drive :meth:`run_once`
for deterministic single-threaded tests.

Isolation
---------
Failures are per-request.  A pivot breakdown poisons only its own
future (:class:`~repro.errors.FactorizationError`); an injected device
fault first triggers whole-batch retries from pristine host inputs
(launch faults fire before numerics, so retries are bitwise-safe), and
if the fault persists the group re-runs one request at a time so only
the genuinely faulted requests fail
(:class:`~repro.errors.ResourceExhausted`, transfer/launch errors).
"""

from __future__ import annotations

import dataclasses
import threading
import time
from collections import OrderedDict

import numpy as np
import scipy.sparse as sp

from ..batched.engine import BatchEngine, PlanCache
from ..batched.getrf import irr_getrf
from ..batched.getrs import irr_getrs
from ..batched.interface import IrrBatch
from ..batched.program import CompileError, GuardTripped, PayloadMismatch, \
    compile_workload
from ..batched.trsm import TRSM_BASE_NB
from ..device.memory import DeviceOutOfMemory
from ..device.simulator import Device
from ..errors import CorruptionDetected, FactorizationError, \
    KernelLaunchError, ResourceExhausted, TransferError
from ..sparse.solver import ESCALATED_REFINE_STEPS, REFINE_TARGET, \
    SparseLU, _REDUCED_OF
from .health import FAULT_ACTIONS, CircuitBreaker
from .scheduler import _POLICY_ATTRS, AdmissionQueue, CoalescingPolicy, \
    DispatchPolicy, Request, ServiceFuture, getrf_key, getrs_key, sparse_key
from .session import MemoryArbiter, ServeSession
from .stats import DispatchRecord, ServiceStats

__all__ = ["SolverService", "FactorHandle"]

#: Device-side failures the dispatch ladder retries / isolates.
#: :class:`CorruptionDetected` belongs here because every retry rung
#: re-uploads from the pristine host payloads — corrupted device bytes
#: never feed a retry.
_SYSTEM_ERRORS = (KernelLaunchError, TransferError, DeviceOutOfMemory,
                  ResourceExhausted, CorruptionDetected)

#: LU policy keywords a dense factor request may carry (all pass through
#: to :func:`~repro.batched.getrf.irr_getrf` and are part of the
#: compatibility key — requests with different policies never coalesce).
_LU_KWARGS = frozenset({"nb", "panel", "laswp_variant", "concurrent_swaps",
                        "pivot_tol", "static_pivot", "replace_scale"})

#: Solve keywords a sparse solve request may carry.
_SPARSE_SOLVE_KWARGS = frozenset({"refine_steps", "rhs_block"})

#: Keywords a sparse factor request may carry (``SparseLU`` constructor
#: + factor backend + breakdown policy + working precision).
_SPARSE_FACTOR_KWARGS = frozenset({"use_mc64", "leaf_size", "backend",
                                   "pivot_tol", "static_pivot",
                                   "replace_scale", "breakdown",
                                   "precision", "precision_fallback"})

#: Working precisions a dense/sparse request may ask for.
_PRECISIONS = (None, "fp64", "fp32")


def _pick_dtype(a: np.ndarray) -> np.dtype:
    """The device precision a host matrix factors in (mirrors
    :meth:`IrrBatch.from_host`): float32/complex stay, other floats
    promote to float64.  Integer/bool/object payloads are rejected with
    the same typed error :class:`IrrBatch` raises — never silently
    promoted to a precision the caller did not ask for."""
    d = np.asarray(a).dtype
    if d.kind not in "fc":
        raise ValueError(f"unsupported data type {d}")
    if d in (np.float32, np.complex64, np.complex128):
        return np.dtype(d)
    return np.dtype(np.float64)


class _PivotView:
    """Adapter giving :func:`irr_getrs` the pivot surface it needs
    (``ipiv`` + ``info``) for factors rehydrated from host handles."""

    def __init__(self, ipiv: list, info: np.ndarray):
        self.ipiv = ipiv
        self.info = info


class FactorHandle:
    """A served dense factorization: host-resident packed LU + pivots.

    Returned by ``factor``/``factor_solve`` on dense inputs; pass it to
    ``solve`` for coalesced repeated solves.  Holds the *host* copy of
    the factors (the service re-uploads per solve group), so a handle
    survives device resets and its solves can coalesce with systems
    from entirely different factor batches.

    Per-request diagnostics sliced from the batch factorization:
    ``info`` (LAPACK semantics), ``n_replaced`` / ``min_pivot`` /
    ``growth`` (static-pivot recovery and stability measures).

    Mixed precision: a handle factored with ``precision="fp32"`` keeps
    the original FP64 matrix in ``a_ref`` — solves against it run the
    batched sweep in the reduced dtype and refine the solution back to
    FP64 accuracy against ``a_ref``.  When refinement cannot reach the
    target the service re-factors ``a_ref`` in FP64 and *heals the
    handle in place* (``precision`` flips to ``"fp64"``), so later
    solves skip the doomed reduced path.
    """

    __slots__ = ("lu", "ipiv", "m", "n", "dtype", "info", "n_replaced",
                 "min_pivot", "growth", "precision", "a_ref")

    def __init__(self, lu: np.ndarray, ipiv: np.ndarray, info: int,
                 n_replaced: int, min_pivot: float, growth: float,
                 precision: str = "fp64", a_ref: np.ndarray | None = None):
        self.lu = lu
        self.ipiv = ipiv
        self.m, self.n = lu.shape
        self.dtype = lu.dtype
        self.info = info
        self.n_replaced = n_replaced
        self.min_pivot = min_pivot
        self.growth = growth
        self.precision = precision
        self.a_ref = a_ref

    @property
    def ok(self) -> bool:
        """True when the factors carry no unrecovered breakdown."""
        return self.info == 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"FactorHandle({self.m}x{self.n}, {self.dtype}, "
                f"info={self.info}, n_replaced={self.n_replaced})")


def _validate_policy(policy) -> None:
    """Duck-typed check that ``policy`` covers the DispatchPolicy
    surface; a hot swap must fail loudly *before* it is installed, not
    at the next dispatch."""
    missing = [a for a in _POLICY_ATTRS if not hasattr(policy, a)]
    for meth in ("group_limit", "wait_budget"):
        if not callable(getattr(policy, meth, None)):
            missing.append(f"{meth}()")
    if missing:
        raise TypeError(
            f"{type(policy).__name__} does not implement DispatchPolicy: "
            f"missing {sorted(missing)}")


class SolverService:
    """Thread-safe serving front-end over one simulated device.

    Parameters
    ----------
    device:
        The :class:`~repro.device.simulator.Device` all dispatches run
        on.  The service's dispatcher thread is the device's single
        launch owner; don't launch kernels on it from other threads
        while the service is live.
    policy:
        The :class:`~repro.serve.scheduler.CoalescingPolicy` batching
        knobs.  ``CoalescingPolicy(max_batch=1)`` is the
        one-request-per-launch reference configuration.
    sparse_memory_budget:
        One shared device-byte budget split evenly across open sparse
        sessions by the :class:`~repro.serve.session.MemoryArbiter`
        (``None`` = unbudgeted residency).
    start:
        Start the dispatcher thread immediately.  ``start=False`` +
        :meth:`run_once` gives deterministic inline dispatch for tests.
    breaker:
        The :class:`~repro.serve.health.CircuitBreaker` guarding the
        dispatch fast path (a default-configured one when omitted).
        It is fed the recovery-log fault delta of every dispatch; when
        it opens, dispatches degrade (compiled replay off, and at
        severity 2 new sparse sessions go to the host backend) until a
        half-open probe comes back clean.  Degradation is observable —
        ``stats.snapshot()["breaker_state"]`` / ``["degraded_reason"]``
        — never raised at request callers.
    """

    def __init__(self, device: Device, *,
                 policy: DispatchPolicy | None = None,
                 sparse_memory_budget: int | None = None,
                 start: bool = True, clock=time.monotonic,
                 breaker: CircuitBreaker | None = None):
        self.device = device
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self._policy_lock = threading.Lock()
        self._policy = policy if policy is not None else CoalescingPolicy()
        _validate_policy(self._policy)
        self.stats = ServiceStats()
        self._clock = clock
        self.arbiter = MemoryArbiter(sparse_memory_budget,
                                     stats=self.stats)
        self._queue = AdmissionQueue(self.stats, clock=clock)
        # One engine for the service's lifetime: every dispatch reuses
        # the same DCWI plan cache, so recurring shapes re-plan nothing.
        # The cache is LRU-bounded by policy.plan_cache_capacity and its
        # hit/miss/eviction counters surface through stats.snapshot().
        self._engine = BatchEngine(
            "bucketed",
            cache=PlanCache(capacity=getattr(
                self._policy, "plan_cache_capacity", None)))
        self.stats.attach_plan_cache(self._engine.cache)
        # Hot-signature workload programs (policy.compile_hot): dispatch
        # signature -> compiled program, LRU by last replay.
        self._programs: OrderedDict[tuple, object] = OrderedDict()
        self._sig_seen: dict[tuple, int] = {}
        self._uncompilable: set[tuple] = set()
        self._serial = 0
        self._serial_lock = threading.Lock()
        self._thread: threading.Thread | None = None
        self._closed = False
        if start:
            self.start()

    # ------------------------------------------------------------------
    # policy (hot-swappable)
    # ------------------------------------------------------------------
    @property
    def policy(self) -> DispatchPolicy:
        """The live dispatch policy (read atomically; see
        :meth:`set_policy`)."""
        with self._policy_lock:
            return self._policy

    @policy.setter
    def policy(self, new: DispatchPolicy) -> None:
        self.set_policy(new)

    def set_policy(self, new: DispatchPolicy) -> DispatchPolicy:
        """Atomically install ``new`` as the dispatch policy; returns
        the policy it replaced.

        Safe at any time, from any thread, with work in flight: every
        admission/collection/dispatch cycle reads the policy reference
        exactly once and threads that snapshot through, so a dispatch
        never sees half of one policy and half of another.  Queued
        requests are **not** dropped or re-keyed — compatibility keys
        are fixed at admission, and every key computed under any valid
        policy stays bitwise-safe under every other (stale keys can at
        most fragment groups, never corrupt one).  The swap takes full
        effect from the next collection cycle.
        """
        _validate_policy(new)
        with self._policy_lock:
            old, self._policy = self._policy, new
        self.stats.on_policy_swap()
        self._queue.kick()
        return old

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "SolverService":
        if self._thread is not None:
            raise RuntimeError("service already started")
        if self._closed:
            raise RuntimeError("service is closed")
        self._thread = threading.Thread(target=self._run,
                                        name="solver-service", daemon=True)
        self._thread.start()
        return self

    def close(self) -> None:
        """Drain the queue, dispatch everything pending, stop the
        dispatcher.  Idempotent; no future is left unresolved."""
        if self._closed:
            return
        self._closed = True
        self._queue.stop()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        else:
            self._drain_inline()
        for prog in self._programs.values():
            prog.free()
        self._programs.clear()

    def __enter__(self) -> "SolverService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def run_once(self) -> int:
        """Dispatch every group currently admissible; return the number
        of groups dispatched.  Only valid with ``start=False`` (the
        dispatcher thread otherwise owns the queue)."""
        if self._thread is not None:
            raise RuntimeError("run_once() requires start=False")
        return self._drain_inline()

    def _drain_inline(self) -> int:
        n = 0
        while True:
            policy = self.policy        # one atomic read per cycle
            group = self._queue.collect(policy, block=False)
            if group is None:
                return n
            self._safe_dispatch(group, policy)
            n += 1

    def _run(self) -> None:
        while True:
            policy = self.policy        # one atomic read per cycle
            group = self._queue.collect(policy)
            if group is None:
                return
            self._safe_dispatch(group, policy)

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def _next_serial(self) -> int:
        with self._serial_lock:
            self._serial += 1
            return self._serial

    def _admit(self, req: Request) -> ServiceFuture:
        self._queue.push(req, self.policy.max_queue)
        return req.future

    @staticmethod
    def _check_kwargs(kwargs: dict, allowed: frozenset, what: str) -> None:
        bad = set(kwargs) - allowed
        if bad:
            raise TypeError(f"unknown {what} keyword(s) {sorted(bad)}; "
                            f"allowed: {sorted(allowed)}")

    def _dense_payload(self, a, need_square: bool) -> tuple[np.ndarray,
                                                            np.dtype]:
        a = np.asarray(a)
        if a.ndim != 2:
            raise ValueError(f"matrix must be 2-D, got ndim={a.ndim}")
        if need_square and a.shape[0] != a.shape[1]:
            raise ValueError(f"matrix must be square to solve, "
                             f"got {a.shape}")
        dtype = _pick_dtype(a)
        return np.array(a, dtype=dtype, copy=True), dtype

    @staticmethod
    def _rhs_payload(b, n: int, dtype: np.dtype) -> tuple[np.ndarray, int]:
        b = np.asarray(b)
        if b.ndim not in (1, 2) or b.shape[0] != n:
            raise ValueError(
                f"rhs must have {n} rows (1-D or 2-D), got {b.shape}")
        rt = np.result_type(dtype, b.dtype)
        if rt != dtype:
            raise TypeError(
                f"rhs dtype {b.dtype} does not fit the factor dtype "
                f"{dtype} (result type {rt}); factor in the wider type")
        ndim = b.ndim
        b2 = np.array(b if b.ndim == 2 else b[:, None], dtype=dtype,
                      copy=True)
        return b2, ndim

    @staticmethod
    def _check_precision(precision) -> None:
        if precision not in _PRECISIONS:
            raise ValueError(f"unknown precision {precision!r}; "
                             f"choose 'fp32', 'fp64' or None")

    @staticmethod
    def _reduce_payload(host: np.ndarray, dtype: np.dtype,
                        precision) -> tuple[np.ndarray, np.dtype,
                                            np.ndarray | None]:
        """Cast a dense factor payload to the requested working
        precision: ``(device payload, device dtype, FP64 reference)``.
        The reference is ``None`` unless the request is mixed (natively
        single-precision inputs have no FP64 truth to refine against)."""
        if precision != "fp32" or np.dtype(dtype) not in _REDUCED_OF:
            return host, dtype, None
        work = _REDUCED_OF[np.dtype(dtype)]
        return host.astype(work), work, host

    def submit_factor(self, a, *, deadline: float | None = None,
                      slo: float | None = None,
                      precision: str | None = None,
                      **kwargs) -> ServiceFuture:
        """Queue a factorization.  Dense ``a`` resolves to a
        :class:`FactorHandle`; sparse ``a`` to an open
        :class:`~repro.serve.session.ServeSession`.  ``deadline`` is
        seconds in the queue before the request expires with
        :class:`~repro.errors.DeadlineExceeded`; ``slo`` is the *soft*
        latency objective — it never drops work, it only caps how long
        the scheduler may hold this request for batching
        (``policy.slo_hold_fraction`` of it).

        ``precision="fp32"`` factors in the reduced working precision
        (float32 / complex64): dense handles keep the FP64 matrix for
        refinement at solve time; sparse sessions delegate to
        ``SparseLU.factor(precision=...)``.  The working precision is
        part of the coalescing key — requests of different precisions
        never share a launch group.
        """
        self._check_precision(precision)
        if sp.issparse(a):
            self._check_kwargs(kwargs, _SPARSE_FACTOR_KWARGS,
                               "sparse factor")
            if precision is not None:
                kwargs["precision"] = precision
            key = ("sparse-open", "solo", self._next_serial())
            return self._admit(Request("sparse-factor", key,
                                       {"a": a.copy(), "kwargs": kwargs},
                                       deadline, slo=slo,
                                       order=a.shape[0],
                                       clock=self._clock))
        self._check_kwargs(kwargs, _LU_KWARGS, "LU")
        host, dtype = self._dense_payload(a, need_square=False)
        host, dtype, a_ref = self._reduce_payload(host, dtype, precision)
        key = getrf_key(host.shape[0], host.shape[1], dtype, kwargs,
                        self.device.spec, self._next_serial(),
                        mixed=a_ref is not None)
        return self._admit(Request("factor", key,
                                   {"a": host, "a_ref": a_ref,
                                    "lu_kwargs": kwargs},
                                   deadline, slo=slo,
                                   order=min(host.shape),
                                   clock=self._clock))

    def submit_solve(self, handle, b, *, deadline: float | None = None,
                     slo: float | None = None, **kwargs) -> ServiceFuture:
        """Queue a solve against a served factorization.

        Dense ``handle`` (:class:`FactorHandle`) resolves to ``x``;
        sparse ``handle`` (:class:`ServeSession`) resolves to
        ``(x, SolveInfo)``.  Broken dense factors are refused here,
        synchronously — they can never produce a solution.
        """
        policy = self.policy            # one atomic read per admission
        if isinstance(handle, ServeSession):
            self._check_kwargs(kwargs, _SPARSE_SOLVE_KWARGS,
                               "sparse solve")
            if handle.closed:
                raise RuntimeError(f"session {handle.sid} is closed")
            key = sparse_key(handle.sid, tuple(sorted(kwargs.items())),
                             coalesce=policy.coalesce_sparse_rhs,
                             serial=self._next_serial())
            b = np.asarray(b)
            return self._admit(Request(
                "sparse-solve", key,
                {"session": handle, "b": np.array(b, copy=True),
                 "kwargs": kwargs}, deadline, slo=slo, order=b.shape[0],
                clock=self._clock))
        if not isinstance(handle, FactorHandle):
            raise TypeError(f"expected FactorHandle or ServeSession, "
                            f"got {type(handle).__name__}")
        if kwargs:
            raise TypeError(f"dense solve takes no keywords, "
                            f"got {sorted(kwargs)}")
        if handle.m != handle.n:
            raise ValueError(
                f"cannot solve from a rectangular factorization "
                f"({handle.m}x{handle.n})")
        if not handle.ok:
            raise FactorizationError(
                f"cannot solve from broken-down LU factors (info="
                f"{handle.info}); re-factor with static_pivot=True")
        cutoff = policy.trsm_class_cutoff
        if handle.precision == "fp32":
            # mixed handle: the rhs is validated (and refined) against
            # the FP64 reference; the sweep runs in the reduced dtype
            b_ref, ndim = self._rhs_payload(b, handle.n,
                                            handle.a_ref.dtype)
            key = getrs_key(handle.n, handle.dtype, mixed=True,
                            cutoff=cutoff)
            return self._admit(Request(
                "solve", key,
                {"handle": handle, "b2": b_ref.astype(handle.dtype),
                 "b_ref": b_ref, "ndim": ndim}, deadline, slo=slo,
                order=handle.n, clock=self._clock))
        b2, ndim = self._rhs_payload(b, handle.n, handle.dtype)
        key = getrs_key(handle.n, handle.dtype, cutoff=cutoff)
        return self._admit(Request("solve", key,
                                   {"handle": handle, "b2": b2,
                                    "ndim": ndim}, deadline, slo=slo,
                                   order=handle.n, clock=self._clock))

    def submit_factor_solve(self, a, b, *,
                            deadline: float | None = None,
                            slo: float | None = None,
                            precision: str | None = None,
                            **kwargs) -> ServiceFuture:
        """Queue factor+solve as one request.  Dense resolves to
        ``(x, FactorHandle)``; sparse to ``(x, SolveInfo)`` (one-shot:
        the session is closed after the solve).  The factor step
        coalesces with pending ``factor`` requests; the solve step
        sub-batches by exact order within the dispatch.
        ``precision="fp32"`` behaves as in :meth:`submit_factor`; the
        returned solution is always refined to FP64 accuracy."""
        self._check_precision(precision)
        if sp.issparse(a):
            self._check_kwargs(kwargs, _SPARSE_FACTOR_KWARGS |
                               _SPARSE_SOLVE_KWARGS, "sparse factor_solve")
            if precision is not None:
                kwargs["precision"] = precision
            key = ("sparse-open", "solo", self._next_serial())
            return self._admit(Request(
                "sparse-factor-solve", key,
                {"a": a.copy(), "b": np.array(np.asarray(b), copy=True),
                 "kwargs": kwargs}, deadline, slo=slo, order=a.shape[0],
                clock=self._clock))
        self._check_kwargs(kwargs, _LU_KWARGS, "LU")
        host, dtype = self._dense_payload(a, need_square=True)
        b_ref, ndim = self._rhs_payload(b, host.shape[0], dtype)
        host, dtype, a_ref = self._reduce_payload(host, dtype, precision)
        b2 = b_ref if a_ref is None else b_ref.astype(dtype)
        key = getrf_key(host.shape[0], host.shape[1], dtype, kwargs,
                        self.device.spec, self._next_serial(),
                        mixed=a_ref is not None)
        return self._admit(Request("factor_solve", key,
                                   {"a": host, "a_ref": a_ref, "b2": b2,
                                    "b_ref": b_ref if a_ref is not None
                                    else None, "ndim": ndim,
                                    "lu_kwargs": kwargs}, deadline,
                                   slo=slo, order=host.shape[0],
                                   clock=self._clock))

    # -- sync convenience ----------------------------------------------
    def _await(self, fut, timeout):
        """Wait for ``fut``; on an unstarted service, drain the queue on
        the calling thread first (there is no dispatcher to do it)."""
        if self._thread is None:
            self._drain_inline()
        return fut.result(timeout)

    def factor(self, a, *, timeout: float | None = None, **kwargs):
        """Synchronous :meth:`submit_factor` (submit + wait)."""
        return self._await(self.submit_factor(a, **kwargs), timeout)

    def solve(self, handle, b, *, timeout: float | None = None, **kwargs):
        """Synchronous :meth:`submit_solve`."""
        return self._await(self.submit_solve(handle, b, **kwargs), timeout)

    def factor_solve(self, a, b, *, timeout: float | None = None,
                     **kwargs):
        """Synchronous :meth:`submit_factor_solve`."""
        return self._await(self.submit_factor_solve(a, b, **kwargs),
                           timeout)

    # ------------------------------------------------------------------
    # dispatch (single dispatcher thread)
    # ------------------------------------------------------------------
    def _safe_dispatch(self, group: list[Request],
                       policy: DispatchPolicy | None = None
                       ) -> DispatchRecord:
        """Dispatch one group; guarantee every member's future resolves.

        ``policy`` is the snapshot the collection cycle read — one
        object for the whole cycle, so a concurrent hot swap cannot
        split its knobs across a dispatch.  Returns the
        :class:`DispatchRecord`, stamped with the *simulated* device
        seconds the dispatch consumed (host-clock delta across a final
        ``synchronize()``) — the currency the traffic simulator and the
        autotuner's objective run on.
        """
        if policy is None:
            policy = self.policy
        waits = [r.waited() for r in group]
        t0 = time.perf_counter()
        dev_t0 = self.device.host_time
        mark = self.device.recovery_log.mark()
        corr0 = self.stats.corruptions_detected
        was_open = self.breaker.state == "open"
        try:
            kind = group[0].key[0]
            if kind == "getrf":
                record = self._dispatch_dense(group, self._run_getrf_group,
                                              policy)
            elif kind == "getrs":
                record = self._dispatch_dense(group, self._run_getrs_group,
                                              policy)
            elif kind == "sparse-open":
                record = self._dispatch_sparse_open(group)
            else:
                record = self._dispatch_sparse_solve(group, policy)
        except BaseException as exc:  # noqa: BLE001 - resolve, re-raise
            elapsed = time.perf_counter() - t0
            for r in group:
                self._fail(r, RuntimeError(
                    f"internal dispatch failure: {type(exc).__name__}: "
                    f"{exc}"))
                self.stats.on_done(False, elapsed)
            raise
        record = dataclasses.replace(
            record, sim_seconds=self.device.synchronize() - dev_t0)
        # feed the circuit breaker: this dispatch's recovery-log delta
        # (every repair action the stack recorded on its behalf) plus
        # the typed corruptions the ladder caught.
        delta = self.device.recovery_log.since(mark).counts()
        self.stats.on_kernel_reexec(delta.get("kernel-reexec", 0))
        faults = sum(delta.get(a, 0) for a in FAULT_ACTIONS) \
            + (self.stats.corruptions_detected - corr0)
        if was_open:
            self.stats.on_degraded_dispatch()
        state = self.breaker.record(faults)
        self.stats.on_breaker_state(state, self.breaker.last_degraded)
        self.stats.on_dispatch(record, waits)
        elapsed = time.perf_counter() - t0
        for r in group:
            if not r.future.done():
                self._fail(r, RuntimeError(
                    "dispatch completed without resolving this request"))
            self.stats.on_done(r.future.exception() is None, elapsed)
        return record

    @staticmethod
    def _fail(req: Request, error: BaseException) -> None:
        req.future._resolve(error=error)

    def _dispatch_dense(self, group: list[Request], runner,
                        policy: DispatchPolicy) -> DispatchRecord:
        """Retry-then-isolate ladder around one dense batch runner.

        Launch faults fire *before* kernel numerics and every attempt
        re-uploads from the pristine host payloads, so whole-batch
        retries are bitwise-safe.  When retries are spent the group
        degrades to per-request runs: only the requests whose own runs
        keep faulting fail.
        """
        kind = group[0].key[0]
        for attempt in range(policy.dispatch_retries + 1):
            try:
                launches, occupancy = runner(group, policy)
                return DispatchRecord(kind, len(group), launches,
                                      occupancy, attempt, False)
            except _SYSTEM_ERRORS as exc:
                if isinstance(exc, CorruptionDetected):
                    self.stats.on_corruption()
                continue
        launches = 0
        occs = []
        for req in group:
            done = False
            for attempt in range(policy.dispatch_retries + 1):
                try:
                    solo_launches, occ = runner([req], policy)
                    launches += solo_launches
                    occs.append(occ)
                    done = True
                    break
                except _SYSTEM_ERRORS as exc:
                    if isinstance(exc, CorruptionDetected):
                        self.stats.on_corruption()
                    last = exc
            if not done:
                self._fail(req, last)
        occupancy = sum(occs) / len(occs) if occs else 0.0
        return DispatchRecord(kind, len(group), launches, occupancy,
                              policy.dispatch_retries + 1, True)

    # -- dense runners ---------------------------------------------------
    def _run_getrf_group(self, group: list[Request],
                         policy: DispatchPolicy | None = None
                         ) -> tuple[int, float]:
        """One coalesced getrf (+ embedded getrs for factor_solve).

        Resolves every member future on success.  On a device fault the
        partial device state is freed and *no* future is touched — the
        caller's ladder retries from the pristine host payloads.
        """
        if policy is None:
            policy = self.policy
        if policy.compile_hot and self.breaker.allow_compiled():
            compiled = self._run_getrf_compiled(group, policy)
            if compiled is not None:
                return compiled
        device = self.device
        lu_kwargs = self._effective_lu_kwargs(group, policy)
        dtype = np.dtype(group[0].key[1])
        mixed = "mixed" in group[0].key
        launch0 = device.profiler.launch_count
        batch = IrrBatch.from_host_packed(device,
                                   [r.payload["a"] for r in group],
                                   dtype=dtype)
        try:
            occupancy = self._occupancy(batch)
            pivots = irr_getrf(device, batch, engine=self._engine,
                               **lu_kwargs)
            # factor_solve members with clean factors: sub-batch the
            # solve step by order class (bitwise getrs affinity: one
            # shared base-case class at <= TRSM_BASE_NB, exact order
            # above) and reuse the still-resident factored arrays — no
            # re-upload.
            by_order: dict[int, list[int]] = {}
            for i, r in enumerate(group):
                if r.kind == "factor_solve" and pivots.info[i] == 0:
                    order = int(batch.m_vec[i])
                    ocls = order if order > TRSM_BASE_NB else 0
                    by_order.setdefault(ocls, []).append(i)
            xs: dict[int, np.ndarray] = {}
            pending: list[tuple[list[int], IrrBatch]] = []
            try:
                # issue every order class's solve before the single
                # synchronize — one sync covers all sub-groups
                for order in sorted(by_order):
                    idxs = by_order[order]
                    fsub = IrrBatch(device,
                                    [batch.arrays[i] for i in idxs],
                                    batch.m_vec[idxs], batch.n_vec[idxs])
                    rhs = IrrBatch.from_host_packed(
                        device, [group[i].payload["b2"] for i in idxs],
                        dtype=dtype)
                    pending.append((idxs, rhs))
                    view = _PivotView([pivots.ipiv[i] for i in idxs],
                                      pivots.info[idxs])
                    irr_getrs(device, fsub, view, rhs,
                              engine=self._engine)
                device.synchronize()
                for idxs, rhs in pending:
                    sols = rhs.to_host()
                    for j, i in enumerate(idxs):
                        xs[i] = sols[j]
            finally:
                for _, rhs in pending:
                    rhs.free()
            bad: list[int] = []
            if mixed and xs:
                # FP64 finisher over the still-resident reduced factors
                items = [(i, group[i].payload["a_ref"],
                          group[i].payload["b_ref"], xs[i]) for i in xs]
                xs, bad = self._refine_members(batch, pivots.ipiv, items)
            lu_host = batch.to_host()
        finally:
            batch.free()

        handles = [FactorHandle(
            lu_host[i], pivots.ipiv[i].copy(),
            int(pivots.info[i]), int(pivots.n_replaced[i]),
            float(pivots.min_pivot[i]), float(pivots.growth[i]),
            precision="fp32" if mixed else "fp64",
            a_ref=group[i].payload.get("a_ref"))
            for i in range(len(group))]
        failures: dict[int, BaseException] = {}
        if mixed:
            for i, (req, h) in enumerate(zip(group, handles)):
                if h.info != 0 or i in bad:
                    try:
                        xs[i] = self._dense_precision_fallback(
                            h, req.payload.get("b_ref"), lu_kwargs)
                    except FactorizationError as exc:
                        failures[i] = exc
        launches = device.profiler.launch_count - launch0

        for i, req in enumerate(group):
            if i in failures:
                self._fail(req, failures[i])
            else:
                self._resolve_getrf_member(req, handles[i], xs.get(i))
        return launches, occupancy

    def _resolve_getrf_member(self, req: Request, handle: FactorHandle,
                              x: np.ndarray | None) -> None:
        """Resolve one factor/factor_solve member from its handle (+
        solution, for clean factor_solve members)."""
        if handle.info != 0:
            self._fail(req, FactorizationError(
                f"pivot breakdown at elimination step {handle.info} "
                f"(min |pivot| = {handle.min_pivot:.3e}); re-factor "
                f"with static_pivot=True or a looser pivot_tol"))
        elif req.kind == "factor":
            req.future._resolve(value=handle)
        else:
            if req.payload["ndim"] == 1:
                x = x[:, 0]
            req.future._resolve(value=(x, handle))

    # -- compiled hot-signature dispatch --------------------------------
    @staticmethod
    def _effective_lu_kwargs(group: list[Request],
                             policy: DispatchPolicy) -> dict:
        """The group's LU kwargs with the policy's dispatch-time panel
        regime applied.  A request that pinned ``panel=`` itself always
        wins; the regime fills the default only.  Safe to vary across
        swaps: the fused and column-wise panel kernels run the same
        elimination arithmetic (bitwise-identical results), they differ
        only in launch structure."""
        lu_kwargs = dict(group[0].payload["lu_kwargs"])
        regime = getattr(policy, "panel_regime", None)
        if regime is not None:
            lu_kwargs.setdefault("panel", regime)
        return lu_kwargs

    @staticmethod
    def _group_signature(group: list[Request],
                         policy: DispatchPolicy) -> tuple:
        """Replayable identity of one getrf dispatch group: the
        compatibility key (minus the solo serial) plus the ordered
        member kinds/shapes, plus the policy's panel regime (a program
        records its regime's launch schedule — a swap must recompile,
        not replay the old shape).  Two groups with equal signatures run
        the identical launch schedule, so one compiled program serves
        both.
        """
        base = tuple(x for x in group[0].key if not isinstance(x, int))
        members = tuple(
            (r.kind, r.payload["a"].shape,
             r.payload["b2"].shape if r.kind == "factor_solve" else None)
            for r in group)
        return base + (members, getattr(policy, "panel_regime", None))

    def _compiled_program_for(self, group: list[Request],
                              policy: DispatchPolicy):
        """The hot-signature program for this group, compiling it when
        the signature crosses ``policy.hot_threshold``; ``None`` while
        cold or when the signature cannot be compiled."""
        sig = self._group_signature(group, policy)
        if sig in self._uncompilable:
            return None
        prog = self._programs.get(sig)
        if prog is not None:
            self._programs.move_to_end(sig)
            return prog
        seen = self._sig_seen.pop(sig, 0) + 1
        self._sig_seen[sig] = seen    # re-insert: newest position
        if seen < policy.hot_threshold:
            # bound the cold-signature tracker like the program store:
            # high-diversity traffic must not grow state without limit
            while len(self._sig_seen) > 32 * policy.max_programs:
                self._sig_seen.pop(next(iter(self._sig_seen)))
            return None
        dtype = np.dtype(group[0].key[1])
        lu_kwargs = self._effective_lu_kwargs(group, policy)
        shapes = [r.payload["a"].shape for r in group]
        try:
            if any(r.kind == "factor_solve" for r in group):
                prog = compile_workload(
                    self.device, "factor_solve", shapes, dtype=dtype,
                    rhs_shapes=[r.payload["b2"].shape
                                if r.kind == "factor_solve" else None
                                for r in group],
                    lu_kwargs=lu_kwargs, engine=self._engine,
                    solve_grouping="order_class")
            else:
                prog = compile_workload(self.device, "getrf", shapes,
                                        dtype=dtype, lu_kwargs=lu_kwargs,
                                        engine=self._engine)
        except CompileError:
            self._uncompilable.add(sig)
            while len(self._uncompilable) > 32 * policy.max_programs:
                self._uncompilable.pop()
            return None
        self._programs[sig] = prog
        self._sig_seen.pop(sig, None)
        self.stats.on_program_compiled()
        while len(self._programs) > policy.max_programs:
            _, old = self._programs.popitem(last=False)
            old.free()
        return prog

    def _run_getrf_compiled(self, group: list[Request],
                            policy: DispatchPolicy
                            ) -> tuple[int, float] | None:
        """Serve one getrf group by program replay; ``None`` hands the
        group to the ordinary bucketed runner (signature cold or
        uncompilable, or the replay guard tripped on this payload)."""
        prog = self._compiled_program_for(group, policy)
        if prog is None:
            return None
        device = self.device
        launch0 = device.profiler.launch_count
        payloads = {"a": [r.payload["a"] for r in group]}
        if prog.op == "factor_solve":
            payloads["b"] = [r.payload["b2"]
                             if r.kind == "factor_solve" else None
                             for r in group]
        try:
            res = prog.run(**payloads)
        except GuardTripped:
            # a pivot breakdown invalidates the recorded solve schedule
            # for THIS payload only — the bucketed runner isolates the
            # broken member and still solves the rest
            self.stats.on_compiled_fallback()
            return None
        except CorruptionDetected:
            # the program's whole-replay ABFT budget is spent; the
            # bucketed runner re-uploads the pristine payloads and
            # verifies at per-launch granularity, repairing or isolating
            # exactly the corrupted members
            self.stats.on_corruption()
            self.stats.on_compiled_fallback()
            return None
        except PayloadMismatch:
            # stale program (should not happen: programs are keyed by
            # signature) — drop it and fall back
            self.stats.on_compiled_fallback()
            stale = [s for s, p in self._programs.items() if p is prog]
            for s in stale:
                self._programs.pop(s).free()
            return None
        self.stats.on_compiled_dispatch()
        mixed = "mixed" in group[0].key
        handles = [FactorHandle(
            res.factors[i], res.ipiv[i],
            int(res.info[i]), int(res.n_replaced[i]),
            float(res.min_pivot[i]), float(res.growth[i]),
            precision="fp32" if mixed else "fp64",
            a_ref=group[i].payload.get("a_ref"))
            for i in range(len(group))]
        xs = {} if res.solutions is None else \
            {i: x for i, x in enumerate(res.solutions) if x is not None}
        failures: dict[int, BaseException] = {}
        if mixed:
            # same finisher as the bucketed path; the program's arena
            # still holds the reduced factors device-resident, so the
            # correction solves run against them with zero factor
            # re-upload (the fallback re-uploads only when a program
            # variant does not expose its batch)
            items = [(i, group[i].payload["a_ref"],
                      group[i].payload["b_ref"], xs[i])
                     for i in xs if handles[i].info == 0]
            bad: list[int] = []
            if items:
                fbatch = prog.factor_batch
                owned = fbatch is None
                if owned:
                    fbatch = IrrBatch.from_host_packed(
                        device, [h.lu for h in handles],
                        dtype=np.dtype(group[0].key[1]))
                try:
                    refined, bad = self._refine_members(
                        fbatch, [h.ipiv for h in handles], items)
                    xs.update(refined)
                finally:
                    if owned:
                        fbatch.free()
            lu_kwargs = self._effective_lu_kwargs(group, policy)
            for i, (req, h) in enumerate(zip(group, handles)):
                if h.info != 0 or i in bad:
                    try:
                        xs[i] = self._dense_precision_fallback(
                            h, req.payload.get("b_ref"), lu_kwargs)
                    except FactorizationError as exc:
                        failures[i] = exc
        launches = device.profiler.launch_count - launch0
        ms = np.array([r.payload["a"].shape[0] for r in group])
        ns = np.array([r.payload["a"].shape[1] for r in group])
        denom = len(group) * int(ms.max()) * int(ns.max())
        occupancy = float((ms * ns).sum()) / denom if denom else 1.0
        for i, req in enumerate(group):
            if i in failures:
                self._fail(req, failures[i])
            else:
                self._resolve_getrf_member(req, handles[i], xs.get(i))
        return launches, occupancy

    def _run_getrs_group(self, group: list[Request],
                         policy: DispatchPolicy | None = None
                         ) -> tuple[int, float]:
        """One coalesced getrs over same-order handles (re-uploaded).

        Mixed (``precision="fp32"``) groups run the same batched sweep
        in the reduced dtype, then the shared FP64 refinement finisher
        against each handle's reference matrix; members whose
        refinement stagnates take the solo FP64 fallback (which heals
        their handles for later solves)."""
        device = self.device
        dtype = np.dtype(group[0].key[1])
        mixed = "mixed" in group[0].key
        launch0 = device.profiler.launch_count
        handles = [r.payload["handle"] for r in group]
        factored = IrrBatch.from_host_packed(device,
                                            [h.lu for h in handles],
                                      dtype=dtype)
        bad: list[int] = []
        try:
            rhs = IrrBatch.from_host_packed(device,
                                     [r.payload["b2"] for r in group],
                                     dtype=dtype)
            try:
                occupancy = self._occupancy(rhs)
                view = _PivotView([h.ipiv for h in handles],
                                  np.zeros(len(handles), dtype=np.int64))
                irr_getrs(device, factored, view, rhs,
                          engine=self._engine)
                device.synchronize()
                sols = rhs.to_host()
            finally:
                rhs.free()
            if mixed:
                items = [(i, handles[i].a_ref,
                          group[i].payload["b_ref"], sols[i])
                         for i in range(len(group))]
                xs, bad = self._refine_members(
                    factored, [h.ipiv for h in handles], items)
                sols = [xs[i] for i in range(len(group))]
        finally:
            factored.free()
        failures: dict[int, BaseException] = {}
        for i in bad:
            try:
                sols[i] = self._dense_precision_fallback(
                    handles[i], group[i].payload["b_ref"])
            except FactorizationError as exc:
                failures[i] = exc
        launches = device.profiler.launch_count - launch0
        for i, (req, x) in enumerate(zip(group, sols)):
            if i in failures:
                self._fail(req, failures[i])
                continue
            if req.payload["ndim"] == 1:
                x = x[:, 0]
            req.future._resolve(value=x)
        return launches, occupancy

    @staticmethod
    def _occupancy(batch: IrrBatch) -> float:
        denom = len(batch) * batch.max_m * batch.max_n
        return float(batch.total_elements()) / denom if denom else 1.0

    # -- mixed-precision finisher ----------------------------------------
    def _refine_members(self, batch: IrrBatch, ipiv,
                        items: list[tuple]) -> tuple[dict, list[int]]:
        """FP64 iterative-refinement finisher shared by every dense
        dispatch path (bucketed getrf, compiled replay, getrs groups).

        ``batch`` holds the reduced-precision factored arrays
        (device-resident, indexed like the dispatch group); ``items``
        is ``(index, a_ref, b_ref, x_work)`` per mixed member.  Each
        pass computes FP64 residuals on the host against the members'
        reference matrices and runs **one irregular batched correction
        solve** over every active member in the working precision —
        N members of mixed orders refine for the launch cost of one
        sweep (the irregular kernels exist precisely so mixed sizes
        share a launch).  Unlike the primary solves, corrections are
        *not* order-class-grouped: a refined solution is bounded by
        the FP64 backward-error target, not promised bitwise-stable
        across coalescing compositions (native-precision requests keep
        the bitwise contract).  Members that reach
        :data:`~repro.sparse.solver.REFINE_TARGET` drop out; the ones
        still above it after :data:`ESCALATED_REFINE_STEPS` passes are
        returned as stagnated (the caller runs the FP64 fallback).
        """
        device = batch.device
        work = batch.dtype
        xs, arefs, brefs, denoms = {}, {}, {}, {}
        for i, a_ref, b_ref, x0 in items:
            arefs[i], brefs[i] = a_ref, b_ref
            xs[i] = np.asarray(x0, dtype=b_ref.dtype)
            nb = float(np.linalg.norm(b_ref))
            denoms[i] = nb if nb else 1.0

        def err(i):
            return float(np.linalg.norm(brefs[i] - arefs[i] @ xs[i])) \
                / denoms[i]

        active = [i for i, *_ in items]
        for _ in range(ESCALATED_REFINE_STEPS):
            active = [i for i in active if err(i) > REFINE_TARGET]
            if not active:
                break
            self.stats.on_refine_pass(len(active))
            idxs = np.asarray(active)
            fsub = IrrBatch(device, [batch.arrays[i] for i in active],
                            batch.m_vec[idxs], batch.n_vec[idxs])
            rs = [(brefs[i] - arefs[i] @ xs[i]).astype(work)
                  for i in active]
            rhs = IrrBatch.from_host_packed(device, rs, dtype=work)
            try:
                view = _PivotView([ipiv[i] for i in active],
                                  np.zeros(len(active), dtype=np.int64))
                irr_getrs(device, fsub, view, rhs, engine=self._engine)
                device.synchronize()
                cs = rhs.to_host()
                for j, i in enumerate(active):
                    xs[i] = xs[i] + np.asarray(cs[j], dtype=xs[i].dtype)
            finally:
                rhs.free()
        bad = [i for i in active if err(i) > REFINE_TARGET]
        return xs, bad

    def _dense_precision_fallback(self, handle: FactorHandle,
                                  b_ref: np.ndarray | None,
                                  lu_kwargs: dict | None = None
                                  ) -> np.ndarray | None:
        """Solo FP64 re-factorization of a mixed handle whose reduced
        factors broke down or whose refinement stagnated.

        Heals the handle in place — its factors, pivots and
        ``precision`` flip to FP64, so later solves against it skip the
        doomed reduced path — records a ``precision-fallback`` in the
        device's recovery log, and returns the FP64 solution when a
        right-hand side is given."""
        device = self.device
        a64 = handle.a_ref
        batch = IrrBatch.from_host_packed(device, [a64], dtype=a64.dtype)
        x = None
        try:
            pivots = irr_getrf(device, batch, engine=self._engine,
                               **(lu_kwargs or {}))
            if b_ref is not None and pivots.info[0] == 0:
                rhs = IrrBatch.from_host_packed(device, [b_ref],
                                                dtype=a64.dtype)
                try:
                    view = _PivotView([pivots.ipiv[0]], pivots.info[:1])
                    irr_getrs(device, batch, view, rhs,
                              engine=self._engine)
                    device.synchronize()
                    x = rhs.to_host()[0]
                finally:
                    rhs.free()
            lu_host = batch.to_host()[0]
        finally:
            batch.free()
        handle.lu = lu_host
        handle.ipiv = pivots.ipiv[0].copy()
        handle.dtype = lu_host.dtype
        handle.info = int(pivots.info[0])
        handle.n_replaced = int(pivots.n_replaced[0])
        handle.min_pivot = float(pivots.min_pivot[0])
        handle.growth = float(pivots.growth[0])
        handle.precision = "fp64"
        device.recovery_log.record(
            "precision-fallback", site="SolverService",
            detail=f"{handle.m}x{handle.n} {a64.dtype} re-factored in "
                   f"full precision")
        self.stats.on_precision_fallback()
        if handle.info != 0:
            raise FactorizationError(
                f"pivot breakdown at elimination step {handle.info} even "
                f"after the FP64 re-factorization (min |pivot| = "
                f"{handle.min_pivot:.3e}); re-factor with "
                f"static_pivot=True or a looser pivot_tol")
        return x

    # -- sparse runners --------------------------------------------------
    def _note_sparse_info(self, info) -> None:
        """Fold one sparse ``SolveInfo`` into the service counters."""
        self.stats.on_refine_pass(max(0, len(info.residuals) - 1))
        if getattr(info, "fallback", False):
            self.stats.on_precision_fallback()

    def _open_session(self, a, kwargs: dict) -> ServeSession:
        factor_kw = dict(kwargs)
        pinned = "backend" in factor_kw
        backend = factor_kw.pop("backend", "batched")
        if not pinned and self.breaker.force_host():
            # severity-2 degradation: the device is persistently
            # faulting, so sessions the caller did not pin to a backend
            # factor on the host (an explicit backend= always wins)
            backend = "cpu"
            self.stats.on_degraded_dispatch()
        ctor_kw = {k: factor_kw.pop(k) for k in ("use_mc64", "leaf_size")
                   if k in factor_kw}
        solver = SparseLU(a, **ctor_kw).analyze()
        device = None if backend == "cpu" else self.device
        solver.factor(backend=backend, device=device, **factor_kw)
        return ServeSession(solver, self.device, self.arbiter)

    def _dispatch_sparse_open(self, group: list[Request]
                              ) -> DispatchRecord:
        device = self.device
        launch0 = device.profiler.launch_count
        for req in group:     # singleton keys: len(group) == 1
            try:
                if req.kind == "sparse-factor":
                    session = self._open_session(req.payload["a"],
                                                 req.payload["kwargs"])
                    req.future._resolve(value=session)
                else:  # sparse-factor-solve: one-shot
                    kw = dict(req.payload["kwargs"])
                    solve_kw = {k: kw.pop(k) for k in
                                _SPARSE_SOLVE_KWARGS if k in kw}
                    session = self._open_session(req.payload["a"], kw)
                    try:
                        x, info = session.solve_on_device(
                            req.payload["b"], **solve_kw)
                    finally:
                        session.close()
                    self._note_sparse_info(info)
                    req.future._resolve(value=(x, info))
            except (*_SYSTEM_ERRORS, FactorizationError,
                    ValueError) as exc:
                if isinstance(exc, CorruptionDetected):
                    self.stats.on_corruption()
                self._fail(req, exc)
        device.synchronize()
        return DispatchRecord("sparse-open", len(group),
                              device.profiler.launch_count - launch0,
                              1.0, 0, False)

    def _dispatch_sparse_solve(self, group: list[Request],
                               policy: DispatchPolicy | None = None
                               ) -> DispatchRecord:
        """Sparse solves: per-request by default; same-session RHS
        stacking when the policy opts in (rounding-level identity)."""
        if policy is None:
            policy = self.policy
        device = self.device
        launch0 = device.profiler.launch_count
        session = group[0].payload["session"]
        kwargs = dict(group[0].payload["kwargs"])
        if len(group) == 1 or not policy.coalesce_sparse_rhs:
            for req in group:
                try:
                    x, info = req.payload["session"].solve_on_device(
                        req.payload["b"], **req.payload["kwargs"])
                    self._note_sparse_info(info)
                    req.future._resolve(value=(x, info))
                except (*_SYSTEM_ERRORS, FactorizationError,
                        RuntimeError) as exc:
                    if isinstance(exc, CorruptionDetected):
                        self.stats.on_corruption()
                    self._fail(req, exc)
        else:
            cols = []
            spans = []
            for req in group:
                b = req.payload["b"]
                b2 = b if b.ndim == 2 else b[:, None]
                spans.append((len(cols), len(cols) + b2.shape[1],
                              b.ndim))
                cols.extend(b2.T)
            stacked = np.array(cols).T
            try:
                x, info = session.solve_on_device(stacked, **kwargs)
                self._note_sparse_info(info)
                for req, (lo, hi, ndim) in zip(group, spans):
                    xi = x[:, lo:hi]
                    req.future._resolve(
                        value=(xi[:, 0] if ndim == 1 else xi, info))
            except (*_SYSTEM_ERRORS, FactorizationError,
                    RuntimeError) as exc:
                if isinstance(exc, CorruptionDetected):
                    self.stats.on_corruption()
                for req in group:
                    self._fail(req, exc)
        device.synchronize()
        return DispatchRecord("sparse-solve", len(group),
                              device.profiler.launch_count - launch0,
                              1.0, 0, False)
