"""Serving layer: concurrent solver requests coalesced into irregular
batches.

Public surface::

    from repro.serve import SolverService, CoalescingPolicy

    svc = SolverService(Device(A100()))
    fut = svc.submit_factor_solve(A, b)        # thread-safe
    x, handle = fut.result()
    x2 = svc.solve(handle, b2)                 # sync convenience
    svc.close()

See :class:`~repro.serve.service.SolverService` for the threading and
isolation contracts, :class:`~repro.serve.scheduler.CoalescingPolicy`
for the batching knobs (a hot-swappable
:class:`~repro.serve.scheduler.DispatchPolicy` — see
:meth:`SolverService.set_policy`),
:class:`~repro.serve.autotune.OnlineAutotuner` for closed-loop policy
tuning, and :class:`~repro.serve.stats.ServiceStats` for observability.
"""

from .autotune import AutotuneConfig, OnlineAutotuner, TuneAction, Window
from .health import CircuitBreaker, HealthMonitor
from .pool import DevicePool
from .scheduler import AdmissionQueue, CoalescingPolicy, DispatchPolicy, \
    ServiceFuture
from .service import FactorHandle, SolverService
from .session import MemoryArbiter, ServeSession
from .stats import DispatchRecord, LatencyHistogram, ServiceStats

__all__ = ["SolverService", "DevicePool", "CoalescingPolicy",
           "DispatchPolicy",
           "ServiceFuture", "FactorHandle", "ServeSession",
           "MemoryArbiter", "ServiceStats", "DispatchRecord",
           "LatencyHistogram", "AdmissionQueue", "OnlineAutotuner",
           "AutotuneConfig", "TuneAction", "Window",
           "CircuitBreaker", "HealthMonitor"]
