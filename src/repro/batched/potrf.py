"""irrPOTRF — Cholesky on a nonuniform batch of SPD matrices.

Another decomposition built from the expanded interface and DCWI (§VI:
"the proposed interface and the DCWI layer would work seamlessly for
other decompositions").  Cholesky is what the SPD-only solvers the paper
cites (Cholmod, §II) rely on; the blocked structure mirrors irrLU-GPU
without the pivoting machinery:

for each panel ``j``:

1. fused ``irrPOTF2`` — lower Cholesky of every matrix's diagonal block;
2. ``irrTRSM`` (side=R, upper, trans=T is equivalent to a right solve
   against L₁₁ᵀ) — panel below the diagonal block;
3. ``irrSYRK`` (via :func:`irr_gemm`) — trailing update
   ``A₂₂ −= L₂₁·L₂₁ᵀ``.

Only the lower triangle is referenced and written, as LAPACK ``potrf``
with ``uplo='L'``.
"""

from __future__ import annotations

import numpy as np

from ..device.kernel import KernelCost, gemm_compute_ramp
from ..device.simulator import Device
from .gemm import irr_gemm
from .interface import IrrBatch
from .trsm import irr_trsm

__all__ = ["irr_potrf", "potrf_flops", "NotPositiveDefiniteError"]


class NotPositiveDefiniteError(np.linalg.LinAlgError):
    """A pivot block failed the Cholesky (matrix not SPD)."""


def potrf_flops(n: int) -> float:
    """Cholesky flop count: ``n³/3 + n²/2 + n/6``."""
    n = float(n)
    return n ** 3 / 3.0 + n ** 2 / 2.0 + n / 6.0


def _potf2_fused(device: Device, batch: IrrBatch, j: int, ib: int,
                 stream) -> None:
    """One launch: lower Cholesky of every matrix's diagonal block."""

    def kernel() -> KernelCost:
        flops = 0.0
        nbytes = 0.0
        blocks = 0
        for i in range(len(batch)):
            n_i = int(batch.n_vec[i])
            w = max(0, min(j + ib, n_i) - j)
            if w == 0:
                continue
            a = batch.sub(i, j, j, w, w)
            for c in range(w):
                d = a[c, c] - a[c, :c] @ a[c, :c]
                if d <= 0:
                    raise NotPositiveDefiniteError(
                        f"matrix {i}: leading minor {j + c + 1} not "
                        "positive definite")
                a[c, c] = np.sqrt(d)
                if c + 1 < w:
                    a[c + 1:, c] = (a[c + 1:, c] -
                                    a[c + 1:, :c] @ a[c, :c]) / a[c, c]
                flops += 2.0 * (w - c) * c + (w - c)
            nbytes += w * w * batch.itemsize
            blocks += 1
        return KernelCost(flops=flops, bytes_read=nbytes,
                          bytes_written=nbytes, blocks=max(blocks, 1),
                          threads_per_block=256,
                          shared_mem_per_block=min(
                              ib * ib * batch.itemsize,
                              device.spec.max_shared_per_block),
                          kernel_class="getf2",
                          compute_ramp=min(1.0, ib / 16.0),
                          peak_scale=batch.peak_scale)

    device.launch("irrpotf2", kernel, stream=stream)


def irr_potrf(device: Device, batch: IrrBatch, *, nb: int = 32,
              stream=None) -> None:
    """Lower Cholesky of every (square, SPD) matrix of the batch.

    Overwrites the lower triangle of each matrix with its ``L`` factor
    (``A = L·Lᵀ``); the strict upper triangle is left untouched.  Raises
    :class:`NotPositiveDefiniteError` on the first failed pivot block
    (LAPACK ``potrf`` info semantics).
    """
    if nb < 1:
        raise ValueError("panel width must be positive")
    if np.issubdtype(batch.dtype, np.complexfloating):
        raise NotImplementedError(
            "irr_potrf implements the real SPD case; Hermitian complex "
            "Cholesky needs conjugated inner products")
    for i in range(len(batch)):
        m, n = batch.local_dims(i)
        if m != n:
            raise ValueError(f"matrix {i} is not square ({m}x{n})")
    kmax = batch.max_n
    if kmax == 0 or len(batch) == 0:
        return

    for j in range(0, kmax, nb):
        ib = min(nb, kmax - j)
        _potf2_fused(device, batch, j, ib, stream)
        if kmax > j + ib:
            # L21 <- A21 * L11^{-T}: a right solve against the transposed
            # lower triangle.
            irr_trsm(device, "R", "L", "T", "N", kmax - j - ib, ib, 1.0,
                     batch, (j, j), batch, (j + ib, j), stream=stream,
                     name="irrpotrf:trsm")
            # A22 -= L21 * L21^T (SYRK shape, lower triangle only; the
            # kernel updates the full block — extra work the cost model
            # halves below by symmetry).
            irr_gemm(device, "N", "T", kmax - j - ib, kmax - j - ib, ib,
                     -1.0, batch, (j + ib, j), batch, (j + ib, j), 1.0,
                     batch, (j + ib, j + ib), stream=stream,
                     name="irrsyrk")
