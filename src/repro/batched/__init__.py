"""Irregular batched dense linear algebra — the paper's core contribution.

Public surface:

* :class:`IrrBatch` — the expanded-interface batch container (§IV-A).
* :func:`irr_getrf` — irrLU-GPU, blocked LU with partial pivoting on a
  batch of matrices of completely arbitrary sizes.
* :func:`irr_gemm`, :func:`irr_trsm` — the building blocks (irrGEMM,
  recursive irrTRSM), usable standalone.
* :func:`irr_geqrf` — irrQR, the blocked Householder QR the paper's
  conclusion names as the interface's natural next decomposition.
* Panel and row-swap kernels (``fused_getf2`` / ``columnwise_getf2``,
  ``rehearsed_laswp`` / ``looped_laswp``) for ablation studies.
* Baselines: :func:`magma_style_trsm`, :func:`streamed_getrf`,
  :func:`vendor_gemm` / :func:`vendor_getrf`, :func:`cpu_getrf_batch`.
"""

from .cpu_batch import CpuBatchResult, cpu_getrf_batch
from .dcwi import GemmWork, Workload, infer_extent, infer_gemm, \
    infer_gemm_batch, infer_matrix, infer_matrix_batch, infer_trsm, \
    infer_trsm_batch, op_shape
from .engine import BatchEngine, PlanCache, resolve_engine
from .gemm import irr_gemm
from .getrf import DEFAULT_PANEL_WIDTH, irr_getrf, lu_reconstruct, \
    lu_solve_factored
from .getrs import irr_getrs
from .interface import IrrBatch, Offsets
from .interleaved import INTERLEAVED_MAX_N, InterleaveError, deinterleave, \
    interleave, interleaved_getrf
from .laswp import irr_laswp, looped_laswp, rehearsed_laswp
from .panel import PanelPivots, columnwise_getf2, factor_panel_block, \
    fused_getf2, panel_shared_bytes
from .potrf import NotPositiveDefiniteError, irr_potrf, potrf_flops
from .program import CompileError, GuardTripped, PayloadMismatch, \
    ProgramResult, WorkloadProgram, compile_workload, fuse_costs
from .qr import DEFAULT_QR_PANEL, QrTaus, apply_q, geqrf_flops, irr_geqrf, \
    qr_least_squares, qr_reconstruct
from .streamed import streamed_getrf
from .trsm import TRSM_BASE_NB, irr_trsm, magma_style_trsm
from .tuning import TuningResult, autotune_getrf, size_distribution_summary
from .vbatched import gemm_vbatched, getrf_vbatched, trsm_vbatched
from .vendor import VENDOR_PANEL_NB, vendor_gemm, vendor_getrf, vendor_trsm

__all__ = [
    "IrrBatch", "Offsets", "Workload", "GemmWork",
    "infer_extent", "infer_matrix", "infer_gemm", "infer_trsm", "op_shape",
    "infer_matrix_batch", "infer_gemm_batch", "infer_trsm_batch",
    "BatchEngine", "PlanCache", "resolve_engine",
    "irr_gemm", "irr_trsm", "magma_style_trsm", "TRSM_BASE_NB",
    "PanelPivots", "fused_getf2", "columnwise_getf2", "panel_shared_bytes",
    "factor_panel_block",
    "irr_laswp", "looped_laswp", "rehearsed_laswp",
    "irr_getrf", "lu_reconstruct", "lu_solve_factored",
    "DEFAULT_PANEL_WIDTH",
    "streamed_getrf", "vendor_gemm", "vendor_trsm", "vendor_getrf",
    "VENDOR_PANEL_NB", "cpu_getrf_batch", "CpuBatchResult",
    "irr_geqrf", "QrTaus", "apply_q", "qr_reconstruct",
    "qr_least_squares", "geqrf_flops", "DEFAULT_QR_PANEL",
    "autotune_getrf", "TuningResult", "size_distribution_summary",
    "interleave", "deinterleave", "interleaved_getrf", "INTERLEAVED_MAX_N",
    "InterleaveError",
    "irr_getrs", "irr_potrf", "potrf_flops", "NotPositiveDefiniteError",
    "gemm_vbatched", "trsm_vbatched", "getrf_vbatched",
    "compile_workload", "WorkloadProgram", "ProgramResult", "fuse_costs",
    "CompileError", "GuardTripped", "PayloadMismatch",
]
