"""Interleaved-layout batch kernels for uniform small matrices (§II).

"Libraries such as Kokkos Kernels and MKL use interleaved data layouts
for batch kernels on small matrices, which provides a performance
advantage for SIMD architectures."  This module implements that layout as
a counterpoint to the pointer-array interface: the batch is ONE dense
3-D array ``A[b, i, j]`` — matrix index fastest-moving in memory for the
elementwise kernels — and every elimination step is a *vectorized*
operation across the whole batch (one argmax, one swap, one rank-1
update, all with batch-axis SIMD).

The price is exactly the paper's point: this only works when every
matrix has the *same* shape.  It is the right tool for the uniform small
fronts at the very bottom of an assembly tree, and the wrong interface
for everything irrLU-GPU targets; ``benchmarks/test_ablation_interleaved``
measures both sides of that trade.
"""

from __future__ import annotations

import numpy as np

from ..device.kernel import KernelCost
from ..device.memory import DeviceArray
from ..device.simulator import Device

__all__ = ["interleaved_getrf", "interleave", "deinterleave",
            "interleaved_lu_core", "InterleaveError", "INTERLEAVED_MAX_N"]

#: the small-matrix regime the layout targets (STRUMPACK's naive batch
#: kernels and the Kokkos/MKL interleaved kernels live below this, §II).
INTERLEAVED_MAX_N = 32


class InterleaveError(ValueError):
    """A batch cannot be packed into (or out of) the interleaved layout.

    Subclasses :class:`ValueError` so callers that guarded the old
    untyped errors keep working.
    """


def interleave(matrices: list[np.ndarray],
               dtype=None) -> np.ndarray:
    """Pack equal-shape matrices into the interleaved ``(m, n, batch)``
    layout (batch index contiguous: unit-stride SIMD over the batch).

    Every member must be a 2-D array of the same shape and dtype —
    non-square and zero-size shapes included — or an
    :class:`InterleaveError` is raised.  The members' dtype (complex
    included) is preserved through the packed layout; for an empty batch
    ``dtype`` selects the dtype of the ``(0, 0, 0)`` result (default
    ``float64``).
    """
    if not matrices:
        return np.empty((0, 0, 0),
                        dtype=np.float64 if dtype is None else dtype)
    mats = [np.asarray(m) for m in matrices]
    shape, dt = mats[0].shape, mats[0].dtype
    for m in mats:
        if m.ndim != 2:
            raise InterleaveError(
                f"interleaved layout requires 2-D matrices "
                f"(got a {m.ndim}-D array)")
        if m.shape != shape:
            raise InterleaveError(
                "interleaved layout requires equal shapes "
                f"(got {m.shape} vs {shape}) — use IrrBatch for irregular "
                "batches")
        if m.dtype != dt:
            raise InterleaveError(
                f"interleaved layout requires a single dtype "
                f"(got {m.dtype} vs {dt})")
    if dtype is not None and np.dtype(dtype) != dt:
        raise InterleaveError(
            f"requested dtype {np.dtype(dtype)} does not match the "
            f"members' dtype {dt}")
    if mats[0].size == 0:
        # np.stack handles zero-size members, but keep the exact shape
        # and dtype explicit.
        return np.empty(shape + (len(mats),), dtype=dt)
    return np.ascontiguousarray(np.stack(mats, axis=-1))


def deinterleave(packed: np.ndarray) -> list[np.ndarray]:
    """Unpack the interleaved layout back to a list of matrices.

    Inverse of :func:`interleave` for any uniform batch (non-square and
    zero-size shapes round-trip, dtype preserved).  Raises
    :class:`InterleaveError` unless ``packed`` is a 3-D
    ``(m, n, batch)`` array.
    """
    packed = np.asarray(packed)
    if packed.ndim != 3:
        raise InterleaveError(
            f"expected an interleaved (m, n, batch) array, got shape "
            f"{packed.shape}")
    return [np.ascontiguousarray(packed[..., b])
            for b in range(packed.shape[-1])]


def interleaved_lu_core(data: np.ndarray, k: int, *,
                        thresh: np.ndarray | None = None,
                        repl: np.ndarray | None = None,
                        ) -> tuple[np.ndarray, np.ndarray, np.ndarray,
                                   np.ndarray, np.ndarray]:
    """The vectorized right-looking elimination on an interleaved batch.

    ``data`` is ``(m, n, batch)``; ``k`` is the number of pivot columns
    to eliminate (``min(m, n)`` for a full LU).  Every elimination step
    is one vectorized operation across the whole batch — elementwise, so
    each matrix's factors are bitwise identical to a scalar unblocked
    elimination of the same matrix.  Factors overwrite ``data``.

    A pivot with ``|pivot| < thresh[b]`` is a breakdown (``thresh``
    defaults to the smallest normal number of the dtype, flagging exact
    zeros and subnormals): where ``repl[b] > 0`` it is replaced by
    ``±repl[b]`` keeping the sign/phase (static pivoting), otherwise the
    column's scaling and update are skipped for that matrix.

    Returns ``(ipiv, nz_counts, first_bad, n_replaced, min_pivot)``: the
    ``(k, batch)`` pivot array, the per-column count of matrices that
    proceeded (nonzero-or-replaced pivot, for exact flop accounting by
    callers that exclude skipped columns), the per-matrix 1-based column
    of the first *unrecovered* breakdown (0 = none, LAPACK ``info``
    semantics), the per-matrix count of replaced pivots and the
    per-matrix smallest ``|pivot|`` encountered.
    """
    m, n, bs = data.shape
    ipiv = np.tile(np.arange(k, dtype=np.int64)[:, None], (1, bs))
    nz_counts = np.zeros(k, dtype=np.int64)
    first_bad = np.zeros(bs, dtype=np.int64)
    n_replaced = np.zeros(bs, dtype=np.int64)
    min_pivot = np.full(bs, np.inf)
    if k == 0 or bs == 0:
        return ipiv, nz_counts, first_bad, n_replaced, min_pivot
    if thresh is None:
        thresh = np.full(bs, float(np.finfo(data.dtype).tiny))
    if repl is None:
        repl = np.zeros(bs)
    batch_ix = np.arange(bs)
    for c in range(k):
        # vectorized pivot search across the whole batch
        p = np.argmax(np.abs(data[c:, c, :]), axis=0) + c   # (bs,)
        ipiv[c, :] = p
        # vectorized row interchange (rows c and p_b in every matrix)
        rows_c = data[c, :, batch_ix]          # (bs, n)
        rows_p = data[p, :, batch_ix]
        data[c, :, batch_ix] = rows_p
        data[p, :, batch_ix] = rows_c
        piv = data[c, c, :]                    # (bs,)
        apiv = np.abs(piv)
        np.minimum(min_pivot, apiv, out=min_pivot)
        bad = apiv < thresh
        rep = bad & (repl > 0.0)
        if rep.any():
            scale = np.where(apiv > 0.0, apiv, 1.0)
            sgn = np.where(apiv > 0.0, piv / scale, 1.0)
            piv = np.where(rep, sgn * repl, piv)
            data[c, c, :] = piv
            n_replaced += rep
        nz = ~(bad & ~rep)
        nz_counts[c] = int(np.count_nonzero(nz))
        newly = (~nz) & (first_bad == 0)
        if newly.any():
            first_bad[newly] = c + 1
        if c + 1 < m:
            inv = np.where(nz, piv, 1.0)
            data[c + 1:, c, :] = np.where(
                nz[None, :], data[c + 1:, c, :] / inv[None, :],
                data[c + 1:, c, :])
            if c + 1 < n:
                data[c + 1:, c + 1:, :] -= np.where(
                    nz[None, None, :],
                    data[c + 1:, c, :][:, None, :] *
                    data[c, c + 1:, :][None, :, :], 0.0)
    return ipiv, nz_counts, first_bad, n_replaced, min_pivot


def interleaved_getrf(device: Device, packed: DeviceArray | np.ndarray, *,
                      stream=None) -> np.ndarray:
    """LU with partial pivoting on an interleaved uniform batch.

    ``packed`` is ``(m, n, batch)``.  One kernel launch; inside, every
    elimination step is one vectorized operation over the batch axis —
    the SIMD structure the interleaved layout exists for.  Returns the
    ``(k, batch)`` pivot array; factors overwrite ``packed``.
    """
    data = packed.data if isinstance(packed, DeviceArray) else packed
    if data.ndim != 3:
        raise ValueError("expected an interleaved (m, n, batch) array")
    m, n, bs = data.shape
    k = min(m, n)
    ipiv = np.tile(np.arange(k, dtype=np.int64)[:, None], (1, bs))
    if k == 0 or bs == 0:
        return ipiv
    if max(m, n) > INTERLEAVED_MAX_N:
        raise ValueError(
            f"interleaved kernel is limited to matrices <= "
            f"{INTERLEAVED_MAX_N}x{INTERLEAVED_MAX_N} (got {m}x{n}); "
            "use irr_getrf")

    def kernel() -> KernelCost:
        core_ipiv = interleaved_lu_core(data, k)[0]
        ipiv[...] = core_ipiv
        flops = 0.0
        for c in range(k):
            if c + 1 < m:
                flops += bs * ((m - c - 1) +
                               2.0 * (m - c - 1) * (n - c - 1))
        itemsize = data.dtype.itemsize
        # one pass over the packed array per column, but the batch axis is
        # unit-stride: perfectly coalesced (the layout's selling point).
        # one thread block per matrix (like the irr kernels), but the
        # elimination arithmetic vectorizes along the unit-stride batch
        # axis: a dedicated, higher efficiency class.
        nbytes = 2.0 * data.nbytes
        return KernelCost(
            flops=flops, bytes_read=nbytes / 2, bytes_written=nbytes / 2,
            blocks=max(1, bs), threads_per_block=256,
            shared_mem_per_block=min(m * n * itemsize,
                                     device.spec.max_shared_per_block),
            kernel_class="getf2_interleaved",
            compute_ramp=min(1.0, bs / 256.0),
            memory_ramp=0.95)

    device.launch("interleaved_getrf", kernel, stream=stream)
    return ipiv
