"""irrGEMM — matrix multiply on a nonuniform batch (§IV-C).

One kernel launch performs ``C[i] ← α·op(A[i])·op(B[i]) + β·C[i]`` for the
whole batch, with every matrix's actual workload inferred by DCWI from the
required dimensions, local dimensions and pointer offsets.  Matrices whose
inferred workload is NONE contribute no flops and no traffic (their thread
blocks retire immediately), which is how a single launch sequence written
against the largest matrix remains efficient as small matrices finish.
"""

from __future__ import annotations

import numpy as np

from ..device.kernel import KernelCost, gemm_compute_ramp
from ..device.simulator import Device
from .abft import gemm_check, verified_launch
from .dcwi import Workload, infer_gemm
from .engine import GEMM_TILE as _GEMM_TILE, resolve_engine
from .interface import IrrBatch, Offsets

__all__ = ["irr_gemm"]


def _apply_op(a: np.ndarray, trans: str) -> np.ndarray:
    if trans == "N":
        return a
    return a.conj().T if trans == "C" else a.T


def _gemm_targets(transa: str, transb: str, m: int, n: int, k: int,
                  A: IrrBatch, a_off: Offsets, B: IrrBatch, b_off: Offsets,
                  beta: float, C: IrrBatch, c_off: Offsets
                  ) -> list[tuple[int, int, int, int]]:
    """``(i, mi, ni, ki)`` for every member whose C block gets written.

    Mirrors the kernel's own DCWI inference: NONE members and the
    ``ki == 0, beta == 1`` no-op are not outputs of the launch.
    """
    targets = []
    for i in range(len(C)):
        work, cls = infer_gemm(
            transa, transb, m, n, k,
            A.local_dims(i), a_off, B.local_dims(i), b_off,
            C.local_dims(i), c_off)
        if cls is Workload.NONE:
            continue
        if work.k == 0 and beta == 1.0:
            continue
        targets.append((i, work.m, work.n, work.k))
    return targets


def irr_gemm(device: Device, transa: str, transb: str,
             m: int, n: int, k: int, alpha: float,
             A: IrrBatch, a_off: Offsets,
             B: IrrBatch, b_off: Offsets,
             beta: float,
             C: IrrBatch, c_off: Offsets, *,
             stream=None, kernel_class: str = "gemm_irr",
             name: str = "irrgemm", engine=None) -> KernelCost:
    """Nonuniform batched GEMM with the expanded interface.

    Parameters mirror Fig 3 of the paper: ``m, n, k`` are the *required*
    dimensions (defined by the largest matrix); per-matrix local dims live
    in the batches; ``a_off``/``b_off``/``c_off`` are the scalar pointer
    offsets ``(Ai, Aj)`` etc.  Returns the accounted kernel cost.

    ``engine`` selects the host execution path for the launch body:
    ``None``/``"naive"`` runs the per-matrix reference loop,
    ``"bucketed"`` (or a shared :class:`~repro.batched.engine.BatchEngine`)
    executes shape buckets with stacked ``np.matmul`` calls — bitwise
    identical results and identical :class:`KernelCost`.
    """
    if not (len(A) == len(B) == len(C)):
        raise ValueError("operand batches must have equal batch size")
    if transa not in ("N", "T", "C") or transb not in ("N", "T", "C"):
        raise ValueError("trans must be 'N', 'T' or 'C'")
    if m < 0 or n < 0 or k < 0:
        raise ValueError("required dimensions must be nonnegative")

    itemsize = C.itemsize
    eng = resolve_engine(engine)

    def kernel() -> KernelCost:
        if eng is not None:
            return eng.exec_gemm(device, transa, transb, m, n, k, alpha,
                                 A, a_off, B, b_off, beta, C, c_off,
                                 kernel_class)
        flops = 0.0
        bytes_r = 0.0
        bytes_w = 0.0
        blocks = 0
        ramp_weighted = 0.0
        for i in range(len(C)):
            work, cls = infer_gemm(
                transa, transb, m, n, k,
                A.local_dims(i), a_off, B.local_dims(i), b_off,
                C.local_dims(i), c_off)
            if cls is Workload.NONE:
                continue
            mi, ni, ki = work.m, work.n, work.k
            c_sub = C.sub(i, c_off[0], c_off[1], mi, ni)
            if ki > 0:
                if transa == "N":
                    a_sub = A.sub(i, a_off[0], a_off[1], mi, ki)
                else:  # T or C: stored transposed
                    a_sub = A.sub(i, a_off[0], a_off[1], ki, mi)
                if transb == "N":
                    b_sub = B.sub(i, b_off[0], b_off[1], ki, ni)
                else:
                    b_sub = B.sub(i, b_off[0], b_off[1], ni, ki)
                prod = _apply_op(a_sub, transa) @ _apply_op(b_sub, transb)
                if beta == 0.0:
                    c_sub[...] = alpha * prod
                else:
                    c_sub[...] = alpha * prod + beta * c_sub
                flops += work.flops
                bytes_r += (mi * ki + ki * ni) * itemsize
                if beta != 0.0:
                    bytes_r += mi * ni * itemsize
                bytes_w += mi * ni * itemsize
                ramp_weighted += work.flops * gemm_compute_ramp(mi, ni, ki)
            else:
                # k exhausted for this matrix: only the beta scaling
                # remains.  beta == 0 writes zeros without reading C
                # (BLAS semantics); any other beta != 1 reads, scales
                # (one flop per element) and writes.
                if beta == 0.0:
                    c_sub[...] = 0.0
                    bytes_w += mi * ni * itemsize
                elif beta != 1.0:
                    c_sub *= beta
                    flops += mi * ni
                    bytes_r += mi * ni * itemsize
                    bytes_w += mi * ni * itemsize
            blocks += max(1, -(-mi // _GEMM_TILE)) * max(1, -(-ni // _GEMM_TILE))
        # flop-weighted efficiency ramp: one tiny matrix must not drag the
        # whole batch, but a batch of tiny matrices runs far from peak.
        ramp = ramp_weighted / flops if flops > 0 else 1.0
        # tile buffers sized to the architecture (a real kernel picks a
        # smaller tiling on devices with little shared memory)
        smem = min(2 * _GEMM_TILE * _GEMM_TILE * itemsize,
                   device.spec.max_shared_per_block)
        return KernelCost(
            flops=flops, bytes_read=bytes_r, bytes_written=bytes_w,
            blocks=max(blocks, 1), threads_per_block=256,
            shared_mem_per_block=smem,
            kernel_class=kernel_class,
            compute_ramp=ramp,
            peak_scale=C.peak_scale,
        )

    # Outputs are registered lazily (evaluated only when an injector is
    # installed), making this launch a ``corrupt`` fault site; with
    # kernel verification on, the launch also carries its ABFT checksum
    # invariant and re-executes on mismatch.
    def _targets():
        return _gemm_targets(transa, transb, m, n, k, A, a_off,
                             B, b_off, beta, C, c_off)

    if device.verify_kernels:
        check = gemm_check(transa, transb, alpha, beta, A, a_off,
                           B, b_off, C, c_off, _targets())
        return verified_launch(device, name, kernel, check, stream=stream)

    def _outputs():
        return [C.sub(i, c_off[0], c_off[1], mi, ni)
                for (i, mi, ni, _ki) in _targets()]

    return device.launch(name, kernel, stream=stream, outputs=_outputs)
