"""MKL-like ``getrf_batch`` CPU baseline (§V-A's reference CPU solution).

Numerics are real (LAPACK via SciPy); the simulated time models a batch
of independent factorizations spread across the cores of a
:class:`~repro.device.spec.CpuSpec`: each matrix runs on one core at a
size-dependent efficiency, and the batch finishes when the most loaded
core does (longest-processing-time assignment, the schedule a
work-stealing batch library approximates).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np
import scipy.linalg as sla

from ..analysis.flops import getrf_flops
from ..device.spec import CpuSpec

__all__ = ["cpu_getrf_batch", "CpuBatchResult"]


@dataclass
class CpuBatchResult:
    """Factors, pivots and the modeled execution time of a CPU batch."""

    factors: list[np.ndarray]
    pivots: list[np.ndarray]
    seconds: float


def _matrix_seconds(m: int, n: int, spec: CpuSpec) -> float:
    flops = getrf_flops(m, n)
    core_rate = spec.freq_hz * spec.flops_per_cycle_per_core
    eff = spec.getrf_efficiency(min(m, n))
    return spec.per_call_overhead + flops / (core_rate * eff)


def cpu_getrf_batch(matrices: list[np.ndarray], spec: CpuSpec,
                    ) -> CpuBatchResult:
    """Factor a batch of host matrices; model the multicore batch time.

    Matrices may have arbitrary independent sizes.  Returns packed LU
    factors (LAPACK layout), 0-based pivot vectors, and the modeled
    wall-clock seconds.
    """
    factors: list[np.ndarray] = []
    pivots: list[np.ndarray] = []
    times: list[float] = []
    for a in matrices:
        a = np.asarray(a, dtype=np.float64)
        if a.ndim != 2:
            raise ValueError("matrices must be 2-D")
        m, n = a.shape
        if min(m, n) == 0:
            factors.append(a.copy())
            pivots.append(np.empty(0, dtype=np.int64))
            continue
        lu, piv = sla.lu_factor(a, check_finite=False) if m == n else \
            _rect_lu(a)
        factors.append(lu)
        pivots.append(np.asarray(piv, dtype=np.int64))
        times.append(_matrix_seconds(m, n, spec))

    # LPT schedule onto the cores: sort descending, always give the next
    # matrix to the least-loaded core.
    loads = [0.0] * spec.n_cores
    heapq.heapify(loads)
    for t in sorted(times, reverse=True):
        heapq.heappush(loads, heapq.heappop(loads) + t)
    seconds = max(loads) if times else 0.0
    return CpuBatchResult(factors=factors, pivots=pivots, seconds=seconds)


def _rect_lu(a: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """LAPACK-style packed LU of a rectangular matrix."""
    lu = a.copy()
    m, n = lu.shape
    k = min(m, n)
    ipiv = np.arange(k, dtype=np.int64)
    info = np.zeros(1, dtype=np.int64)
    from .panel import factor_panel_block
    factor_panel_block(lu, k, ipiv, info, 0, 0)
    return lu, ipiv
