"""Shape-bucketed vectorized execution engine + DCWI plan cache.

The ``irr_*`` kernels are semantically "one launch for the whole batch",
but the simulator executes each launch with a per-matrix Python loop that
re-runs DCWI inference for every matrix at every blocked step — so host
wall-clock scales as O(batch × panels) in interpreter overhead.  This
module removes that overhead without changing a single bit of output:

* **DCWI plan cache** (:class:`PlanCache`): workload inference is a pure
  function of ``(required dims, local dims, offsets, trans/side flags)``.
  ``irr_getrf``'s offset schedule is fixed, so each signature's inference
  — vectorized over the whole batch by the ``*_batch`` functions in
  :mod:`repro.batched.dcwi` — is computed once per factorization and
  reused, keyed by :attr:`IrrBatch.dims_key` (so batches with identical
  local dims, e.g. successive levels of a multifrontal traversal, share
  plans too).

* **Shape-bucketed dispatch** (:class:`BatchEngine`): matrices whose
  inferred workload shapes match are stacked into one contiguous
  ``(bucket, m, n)`` array and executed with a single vectorized NumPy
  call — one ``np.matmul`` per GEMM bucket, one vectorized elimination
  per panel group.  Uniform small panel groups (every dimension ≤
  ``INTERLEAVED_MAX_N``) route through the interleaved-layout elimination
  core (:func:`~repro.batched.interleaved.interleaved_lu_core`), the fast
  path the paper's §II credits to Kokkos/MKL-style interleaved kernels.
  Singleton buckets fall back to the existing per-matrix path.

Bitwise-identity contract
-------------------------
``engine="bucketed"`` must produce factors, pivots **and** simulated
``KernelCost`` totals bitwise identical to ``engine="naive"``:

* stacked 3-D ``np.matmul`` equals the per-matrix 2-D product (same
  elementwise FMA sequence per output element);
* the padded/interleaved eliminations use only elementwise ops (argmax,
  row swap, divide, rank-1 subtract), so each matrix's factors match the
  scalar loop exactly;
* TRSM base-case solves stay **per matrix** in both engines: LAPACK's
  blocked ``trsm`` accumulation order cannot be reproduced bitwise by a
  stacked substitution, so bucketing only amortizes the inference and
  accounting, never the solve itself;
* integer-valued cost sums (flops, bytes, blocks) are order-independent
  in IEEE double below 2^53; the one non-integer accumulator (the
  flop-weighted GEMM ramp) is summed sequentially in ascending matrix
  order, matching the naive loop's ``+=`` order.
"""

from __future__ import annotations

import threading

import numpy as np

from ..device.kernel import KernelCost, gemm_compute_ramp
from .dcwi import WORKLOAD_NONE, infer_gemm_batch, infer_trsm_batch
from .interleaved import INTERLEAVED_MAX_N, interleaved_lu_core
from .panel import factor_panel_block

__all__ = ["BatchEngine", "PlanCache", "resolve_engine",
           "MIN_BUCKET", "PAD_BYTES_LIMIT", "GEMM_TILE",
           "INTERLEAVED_MIN_BS"]

#: logical tile edge used for GEMM block-count accounting (shared with
#: the naive loop in :mod:`repro.batched.gemm`).
GEMM_TILE = 32

#: buckets smaller than this run the per-matrix fallback path — stacking
#: a single matrix costs a copy and buys nothing.
MIN_BUCKET = 2

#: ceiling on the scratch a padded panel super-bucket may allocate; above
#: it the engine falls back to the scalar per-matrix elimination.
PAD_BYTES_LIMIT = 1 << 28  # 256 MiB

#: row-class granularity of the padded panel groups: matrices are padded
#: to the next multiple of this many rows, bounding padding waste while
#: keeping the group count (and per-group dispatch overhead) small.
ROW_CLASS = 32

#: deferred-update block width of the padded panel: a block of finished
#: steps is applied to every trailing column while its low columns are
#: still cache-resident, so each trailing column streams once per block
#: rather than once per step.
_PANEL_KBLOCK = 8

#: element count of one padded-panel batch chunk (~4 MiB of doubles).
#: The whole chunk stays cache-resident across every column of the
#: elimination, so its slab is streamed from main memory once per panel
#: rather than once per column.
_PANEL_CHUNK_ELEMS = 1 << 19

#: minimum members before a uniform small panel shape is routed through
#: the interleaved core; below this the padded row-class group absorbs it
#: (a near-empty interleaved call is pure dispatch overhead).
INTERLEAVED_MIN_BS = 8


class PlanCache:
    """Memoized DCWI inference plans, keyed by workload signature.

    Keys are ``(kind, flags..., required dims, offsets, dims_key...)``
    tuples; values are the immutable plan objects built by
    :class:`BatchEngine`.  ``hits``/``misses`` expose the reuse rate (a
    blocked factorization should miss once per distinct offset signature
    and hit every later panel iteration).

    The cache is bounded: with ``capacity=k`` it keeps the ``k`` most
    recently used plans and evicts least-recently-used entries beyond
    that (``evictions`` counts them), so a long-lived service facing
    unbounded shape diversity cannot grow plans without limit.
    ``capacity=None`` disables the bound.  All operations are
    thread-safe; concurrent ``get_or_build`` calls for the same key may
    both build, but they return equal plans (builds are pure functions
    of the key) and the counters stay coherent.
    """

    def __init__(self, capacity: int | None = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, "
                             f"got {capacity}")
        from collections import OrderedDict
        self.capacity = capacity
        self._plans: "OrderedDict" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def clear(self) -> None:
        with self._lock:
            self._plans.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    def get_or_build(self, key, build):
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                self.hits += 1
                self._plans.move_to_end(key)
                return plan
            self.misses += 1
        # Build outside the lock: plans are pure functions of the key,
        # so a racing duplicate build is wasted work, never wrong.
        plan = build()
        with self._lock:
            self._plans[key] = plan
            self._plans.move_to_end(key)
            if self.capacity is not None:
                while len(self._plans) > self.capacity:
                    self._plans.popitem(last=False)
                    self.evictions += 1
        return plan


def resolve_engine(engine) -> "BatchEngine | None":
    """Normalize an ``engine=`` argument to a :class:`BatchEngine` or None.

    ``None`` / ``"naive"`` → None (per-matrix reference path);
    ``"bucketed"`` / ``"compiled"`` → a fresh engine in that mode; a
    :class:`BatchEngine` instance is passed through (or mapped to None
    when its mode is ``"naive"``), so drivers can share one plan cache
    across many kernel calls.  A ``"compiled"`` engine executes kernels
    exactly like a bucketed one — the mode marks it as eligible for
    ahead-of-time :mod:`repro.batched.program` compilation by drivers
    that replay recurring workloads.
    """
    if engine is None or engine == "naive":
        return None
    if isinstance(engine, BatchEngine):
        return engine if engine.bucketed else None
    if engine in ("bucketed", "compiled"):
        return BatchEngine(engine)
    raise ValueError(f"unknown engine {engine!r}")


def _ceil_div(x: np.ndarray, d: int) -> np.ndarray:
    return -(-x // d)


class _GemmPlan:
    __slots__ = ("mi", "ni", "ki", "buckets", "singles", "scales",
                 "flops_mult", "ramp_weighted", "ab_read_elems",
                 "c_mult_elems", "c_scale_elems", "blocks")


class _TrsmPlan:
    __slots__ = ("idx", "order", "mi", "ni", "flops", "ord2_sum",
                 "b_elems", "blocks")


class _PanelPlan:
    __slots__ = ("inter_buckets", "pad_groups", "scalar_idx", "scalar_rows",
                 "scalar_width", "scalar_npiv", "nbytes_elems", "blocks")


class _LaswpPlan:
    __slots__ = ("length", "npiv", "c0", "c1", "lmax", "init_elems",
                 "rehearse_elems")


class BatchEngine:
    """Plan-cached, shape-bucketed executor for the irregular kernels.

    One engine instance carries one :class:`PlanCache`; drivers create a
    single engine per factorization (or share one across a multifrontal
    traversal) so every panel iteration after the first reuses its plans.
    ``mode="naive"`` makes :func:`resolve_engine` discard the engine,
    forcing the per-matrix reference path everywhere.
    """

    def __init__(self, mode: str = "bucketed", *,
                 min_bucket: int = MIN_BUCKET,
                 pad_bytes_limit: int = PAD_BYTES_LIMIT,
                 cache: PlanCache | None = None) -> None:
        if mode not in ("bucketed", "naive", "compiled"):
            raise ValueError(f"unknown engine mode {mode!r}")
        self.mode = mode
        self.min_bucket = int(min_bucket)
        self.pad_bytes_limit = int(pad_bytes_limit)
        self.cache = PlanCache() if cache is None else cache
        self._bufs: dict = {}
        self._lapack: dict = {}

    def clear_plan_caches(self) -> None:
        """Drop cached plans and scratch buffers (host-side backpressure).

        Called by the recovery ladder before restarting a factorization
        under a smaller traversal budget: the new chunking changes the
        level compositions, so the old plans' keys would mostly go cold
        while their buffers pin host memory.
        """
        self.cache.clear()
        self._bufs.clear()

    def _scratch(self, name: str, n: int, dtype) -> np.ndarray:
        """Reusable flat scratch buffer (grown geometrically, never shrunk).

        Reuse keeps the hot panel loop free of large allocations and the
        page faults that come with touching fresh memory every launch.
        """
        buf = self._bufs.get(name)
        if buf is None or buf.size < n or buf.dtype != dtype:
            buf = np.empty(max(n, 2 * (buf.size if buf is not None else 0)),
                           dtype=dtype)
            self._bufs[name] = buf
        return buf[:n]

    @property
    def bucketed(self) -> bool:
        # "compiled" engines execute single calls exactly like bucketed
        # ones; the mode only opts drivers into program compilation.
        return self.mode != "naive"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"BatchEngine(mode={self.mode!r}, plans={len(self.cache)}, "
                f"hits={self.cache.hits}, misses={self.cache.misses})")

    # ------------------------------------------------------------------
    # GEMM
    # ------------------------------------------------------------------
    def _gemm_plan(self, transa, transb, m, n, k, A, a_off, B, b_off,
                   C, c_off) -> _GemmPlan:
        key = ("gemm", transa, transb, m, n, k, a_off, b_off, c_off,
               A.dims_key, B.dims_key, C.dims_key)

        def build() -> _GemmPlan:
            mi, ni, ki, cls = infer_gemm_batch(
                transa, transb, m, n, k,
                A.m_vec, A.n_vec, a_off, B.m_vec, B.n_vec, b_off,
                C.m_vec, C.n_vec, c_off)
            active = cls != WORKLOAD_NONE
            mult = active & (ki > 0)
            mult_idx = np.nonzero(mult)[0]
            scale_idx = np.nonzero(active & (ki == 0))[0]

            p = _GemmPlan()
            p.mi, p.ni, p.ki = mi, ni, ki
            p.flops_mult = float(
                2 * np.sum(mi[mult_idx] * ni[mult_idx] * ki[mult_idx]))
            p.ab_read_elems = int(np.sum(
                mi[mult_idx] * ki[mult_idx] + ki[mult_idx] * ni[mult_idx]))
            p.c_mult_elems = int(np.sum(mi[mult_idx] * ni[mult_idx]))
            p.c_scale_elems = int(np.sum(mi[scale_idx] * ni[scale_idx]))
            p.blocks = int(np.sum(
                np.maximum(1, _ceil_div(mi[active], GEMM_TILE)) *
                np.maximum(1, _ceil_div(ni[active], GEMM_TILE))))

            buckets: list = []
            single_parts: list = []
            ramp_of = np.empty(0)
            inv = np.empty(0, dtype=np.int64)
            if len(mult_idx):
                shapes = np.stack(
                    [mi[mult_idx], ni[mult_idx], ki[mult_idx]], axis=1)
                uniq, inv = np.unique(shapes, axis=0, return_inverse=True)
                inv = inv.ravel()
                for u in range(len(uniq)):
                    members = mult_idx[inv == u]
                    shape = (int(uniq[u, 0]), int(uniq[u, 1]),
                             int(uniq[u, 2]))
                    # m=n=1 is the inner-product shape: NumPy's 2-D path
                    # takes a strided-dot route whose summation order
                    # differs from the stacked 3-D dgemm, so bucketing it
                    # would break bitwise identity with the naive loop.
                    if len(members) >= self.min_bucket and \
                            not (shape[0] == 1 and shape[1] == 1):
                        buckets.append((shape, members))
                    else:
                        single_parts.append(members)
                ramp_of = np.array(
                    [gemm_compute_ramp(int(u[0]), int(u[1]), int(u[2]))
                     for u in uniq])
            p.buckets = [(shape, members.tolist()) for shape, members
                         in buckets]
            singles = (np.sort(np.concatenate(single_parts))
                       if single_parts else np.empty(0, dtype=np.int64))
            # Pre-resolved python tuples: the exec loop pays no per-launch
            # numpy-scalar conversion cost (plans are cached across panels).
            p.singles = [(int(i), int(mi[i]), int(ni[i]), int(ki[i]))
                         for i in singles]
            p.scales = [(int(i), int(mi[i]), int(ni[i]))
                        for i in scale_idx]

            # The flop-weighted efficiency ramp is the one non-integer
            # accumulator; replicate the naive loop's ascending-index
            # sequential addition exactly.
            rw = 0.0
            if len(mult_idx):
                flops_each = 2.0 * (mi[mult_idx] * ni[mult_idx]
                                    * ki[mult_idx]).astype(np.float64)
                for v in (flops_each * ramp_of[inv]).tolist():
                    rw += v
            p.ramp_weighted = rw
            return p

        return self.cache.get_or_build(key, build)

    def exec_gemm(self, device, transa, transb, m, n, k, alpha,
                  A, a_off, B, b_off, beta, C, c_off,
                  kernel_class: str) -> KernelCost:
        """Bucketed body of one ``irr_gemm`` launch (numerics + cost)."""
        plan = self._gemm_plan(transa, transb, m, n, k, A, a_off, B, b_off,
                               C, c_off)
        itemsize = C.itemsize
        a_sub, b_sub, c_sub = A.sub, B.sub, C.sub
        ao0, ao1 = a_off
        bo0, bo1 = b_off
        co0, co1 = c_off

        # In-place ``multiply``/``add`` below compute the same values as
        # the naive loop's ``alpha*prod + beta*c`` expression (elementwise
        # ops, identical operand order; ``1.0*x`` is bitwise ``x``) while
        # skipping its three temporaries.
        for (bm, bn, bk), idx in plan.buckets:
            ar, ac = (bm, bk) if transa == "N" else (bk, bm)
            br, bc = (bk, bn) if transb == "N" else (bn, bk)
            bs = len(idx)
            a_stack = self._scratch("gemm_a", bs * ar * ac,
                                    C.dtype).reshape(bs, ar, ac)
            b_stack = self._scratch("gemm_b", bs * br * bc,
                                    C.dtype).reshape(bs, br, bc)
            for t, i in enumerate(idx):
                a_stack[t] = a_sub(i, ao0, ao1, ar, ac)
                b_stack[t] = b_sub(i, bo0, bo1, br, bc)
            prod = self._scratch("gemm_p", bs * bm * bn,
                                 C.dtype).reshape(bs, bm, bn)
            np.matmul(_apply_op3(a_stack, transa),
                      _apply_op3(b_stack, transb), out=prod)
            if alpha != 1.0:
                np.multiply(prod, alpha, out=prod)
            if beta == 0.0:
                for t, i in enumerate(idx):
                    c_sub(i, co0, co1, bm, bn)[...] = prod[t]
            elif beta == 1.0:
                for t, i in enumerate(idx):
                    cs = c_sub(i, co0, co1, bm, bn)
                    np.add(prod[t], cs, out=cs)
            else:
                for t, i in enumerate(idx):
                    cs = c_sub(i, co0, co1, bm, bn)
                    np.add(prod[t], beta * cs, out=cs)

        for i, mi, ni, ki in plan.singles:
            ar, ac = (mi, ki) if transa == "N" else (ki, mi)
            br, bc = (ki, ni) if transb == "N" else (ni, ki)
            prod = _apply_op2(a_sub(i, ao0, ao1, ar, ac), transa) @ \
                _apply_op2(b_sub(i, bo0, bo1, br, bc), transb)
            if alpha != 1.0:
                np.multiply(prod, alpha, out=prod)
            cs = c_sub(i, co0, co1, mi, ni)
            if beta == 0.0:
                cs[...] = prod
            elif beta == 1.0:
                np.add(prod, cs, out=cs)
            else:
                np.add(prod, beta * cs, out=cs)

        if beta != 1.0:
            for i, mi, ni in plan.scales:
                cs = c_sub(i, co0, co1, mi, ni)
                if beta == 0.0:
                    cs[...] = 0.0
                else:
                    cs *= beta

        flops = plan.flops_mult
        bytes_r = float(plan.ab_read_elems) * itemsize
        bytes_w = float(plan.c_mult_elems) * itemsize
        if beta != 0.0:
            bytes_r += float(plan.c_mult_elems) * itemsize
        if beta == 0.0:
            bytes_w += float(plan.c_scale_elems) * itemsize
        elif beta != 1.0:
            flops += float(plan.c_scale_elems)
            bytes_r += float(plan.c_scale_elems) * itemsize
            bytes_w += float(plan.c_scale_elems) * itemsize
        ramp = plan.ramp_weighted / flops if flops > 0 else 1.0
        smem = min(2 * GEMM_TILE * GEMM_TILE * itemsize,
                   device.spec.max_shared_per_block)
        return KernelCost(
            flops=flops, bytes_read=bytes_r, bytes_written=bytes_w,
            blocks=max(plan.blocks, 1), threads_per_block=256,
            shared_mem_per_block=smem, kernel_class=kernel_class,
            compute_ramp=ramp, peak_scale=C.peak_scale)

    # ------------------------------------------------------------------
    # TRSM base case
    # ------------------------------------------------------------------
    def _trsm_plan(self, side, m, n, T, t_off, B, b_off) -> _TrsmPlan:
        key = ("trsm", side, m, n, t_off, b_off, T.dims_key, B.dims_key)

        def build() -> _TrsmPlan:
            mi, ni, cls = infer_trsm_batch(side, m, n, T.m_vec, T.n_vec,
                                           t_off, B.m_vec, B.n_vec, b_off)
            idx = np.nonzero(cls != WORKLOAD_NONE)[0]
            order = (mi if side == "L" else ni)[idx]
            rhs = (ni if side == "L" else mi)[idx]
            p = _TrsmPlan()
            p.idx = idx
            p.order = order
            p.mi, p.ni = mi[idx], ni[idx]
            p.flops = float(np.sum(order * order * rhs))
            p.ord2_sum = int(np.sum(order * order))
            p.b_elems = int(np.sum(mi[idx] * ni[idx]))
            p.blocks = int(np.sum(np.maximum(1, _ceil_div(rhs, 32))))
            return p

        return self.cache.get_or_build(key, build)

    def _solve_fast(self, t, b, side, uplo, trans, diag, alpha,
                    solve) -> None:
        """Low-overhead equivalent of :func:`~repro.batched.trsm._solve_small`.

        Calls the same LAPACK ``?trtrs`` routine the scipy wrapper resolves
        to, with the identical contiguity-dependent argument mapping scipy
        uses, so the solution is bitwise that of the reference path — only
        the Python-level validation layers are skipped.  Any nonzero
        ``info`` falls back to the reference ``solve`` so singular
        triangles raise the exact scipy error.
        """
        unit = diag == "U"
        lower = (uplo == "L") != (trans == "T")
        tt = t.T if trans == "T" else t
        ab = b if alpha == 1.0 else alpha * b
        if side == "L":
            a1, b1 = tt, ab
        else:
            a1, b1 = tt.T, ab.T
            lower = not lower
        key = (a1.dtype.char, b1.dtype.char)
        trtrs = self._lapack.get(key)
        if trtrs is None:
            from scipy.linalg.lapack import get_lapack_funcs
            trtrs, = get_lapack_funcs(("trtrs",), (a1, b1))
            self._lapack[key] = trtrs
        if a1.flags.f_contiguous:
            x, info = trtrs(a1, b1, overwrite_b=True, lower=lower,
                            trans=0, unitdiag=unit)
        else:
            # trtrs wants Fortran order: solve the transposed system on
            # the C-ordered view instead of copying (scipy does the same).
            x, info = trtrs(a1.T, b1, overwrite_b=True, lower=not lower,
                            trans=1, unitdiag=unit)
        if info != 0:
            solve(t, b, side, uplo, trans, diag, alpha)
            return
        if side == "L":
            b[...] = x
        else:
            b[...] = x.T

    def exec_trsm_base(self, device, side, uplo, trans, diag, m, n, alpha,
                       T, t_off, B, b_off, kernel_class: str,
                       solve) -> KernelCost:
        """Plan-cached body of one ``irr_trsm`` base-case launch.

        The solves stay per matrix in both engines — see the
        bitwise-identity contract above — so the engine removes the
        inference/accounting overhead and routes each solve through
        :meth:`_solve_fast` (same LAPACK call, no wrapper layers).
        """
        plan = self._trsm_plan(side, m, n, T, t_off, B, b_off)
        itemsize = B.itemsize
        order_req = m if side == "L" else n
        for b in range(len(plan.idx)):
            i = int(plan.idx[b])
            order = int(plan.order[b])
            mi, ni = int(plan.mi[b]), int(plan.ni[b])
            t_sub = T.sub(i, t_off[0], t_off[1], order, order)
            b_sub = B.sub(i, b_off[0], b_off[1], mi, ni)
            self._solve_fast(t_sub, b_sub, side, uplo, trans, diag, alpha,
                             solve)
        bytes_r = plan.ord2_sum * itemsize / 2 + \
            float(plan.b_elems) * itemsize
        smem = min(order_req * order_req * itemsize,
                   device.spec.max_shared_per_block)
        return KernelCost(
            flops=plan.flops, bytes_read=bytes_r,
            bytes_written=float(plan.b_elems) * itemsize,
            blocks=max(plan.blocks, 1), threads_per_block=128,
            shared_mem_per_block=smem, kernel_class=kernel_class,
            compute_ramp=gemm_compute_ramp(order_req, order_req, order_req,
                                           halfsize=32.0),
            peak_scale=B.peak_scale)

    # ------------------------------------------------------------------
    # fused panel factorization
    # ------------------------------------------------------------------
    def _panel_plan(self, batch, j: int, ib: int) -> _PanelPlan:
        key = ("panel", j, ib, batch.dims_key)

        def build() -> _PanelPlan:
            m_vec, n_vec = batch.m_vec, batch.n_vec
            rows = np.maximum(m_vec - j, 0)
            width = np.maximum(np.minimum(j + ib, n_vec) - j, 0)
            npiv = np.maximum(
                np.minimum(ib, np.minimum(m_vec, n_vec) - j), 0)
            active = np.nonzero(npiv > 0)[0]

            p = _PanelPlan()
            p.nbytes_elems = int(np.sum(rows[active] * width[active]))
            p.blocks = len(active)
            p.inter_buckets = []
            p.pad_groups = []
            rest_parts: list = []
            if len(active):
                shapes = np.stack(
                    [rows[active], width[active], npiv[active]], axis=1)
                uniq, inv = np.unique(shapes, axis=0, return_inverse=True)
                inv = inv.ravel()
                for u in range(len(uniq)):
                    r, w, np_ = int(uniq[u, 0]), int(uniq[u, 1]), \
                        int(uniq[u, 2])
                    members = active[inv == u]
                    if len(members) >= INTERLEAVED_MIN_BS and \
                            max(r, w) <= INTERLEAVED_MAX_N:
                        p.inter_buckets.append((r, w, np_, members))
                    else:
                        rest_parts.append(members)
            scalar_parts: list = []
            if rest_parts:
                rest = np.sort(np.concatenate(rest_parts))
                # Row-class groups: pad each matrix only up to the next
                # multiple of ROW_CLASS rows, so one huge matrix cannot
                # force every small one to its height and the padding
                # waste per matrix stays below one class step.
                cls = _ceil_div(np.maximum(rows[rest], 1),
                                ROW_CLASS) * ROW_CLASS
                cls = np.maximum(cls, INTERLEAVED_MAX_N)
                for c in np.unique(cls):
                    members = rest[cls == c]
                    r_g, w_g, p_g = rows[members], width[members], \
                        npiv[members]
                    pad_bytes = int(r_g.max()) * int(w_g.max()) * \
                        len(members) * batch.itemsize
                    if len(members) >= self.min_bucket and \
                            pad_bytes <= self.pad_bytes_limit:
                        p.pad_groups.append(
                            (int(r_g.max()), int(w_g.max()),
                             int(p_g.max()), members, r_g, w_g, p_g))
                    else:
                        scalar_parts.append(members)
            scal = (np.sort(np.concatenate(scalar_parts)) if scalar_parts
                    else np.empty(0, dtype=np.int64))
            p.scalar_idx = scal
            p.scalar_rows = rows[scal]
            p.scalar_width = width[scal]
            p.scalar_npiv = npiv[scal]
            return p

        return self.cache.get_or_build(key, build)

    def exec_panel(self, device, batch, pivots, j: int, ib: int,
                   smem: int) -> KernelCost:
        """Bucketed body of one fused-``irrGETF2`` launch."""
        plan = self._panel_plan(batch, j, ib)
        flops = 0.0
        for (rows, width, npiv, idx) in plan.inter_buckets:
            flops += self._panel_interleaved(batch, pivots, j, rows, width,
                                             npiv, idx)
        for (R, W, P, idx, rows, width, npiv) in plan.pad_groups:
            flops += self._panel_padded(batch, pivots, j, idx,
                                        rows, width, npiv, R, W, P)
        for b in range(len(plan.scalar_idx)):
            i = int(plan.scalar_idx[b])
            a = batch.sub(i, j, j, int(plan.scalar_rows[b]),
                          int(plan.scalar_width[b]))
            flops += factor_panel_block(
                a, int(plan.scalar_npiv[b]), pivots.ipiv[i],
                pivots.info, i, j, ctrl=pivots.ctrl)
        nbytes = float(plan.nbytes_elems) * batch.itemsize
        return KernelCost(
            flops=float(flops), bytes_read=nbytes, bytes_written=nbytes,
            blocks=max(plan.blocks, 1), threads_per_block=256,
            shared_mem_per_block=smem, kernel_class="getf2",
            compute_ramp=min(1.0, ib / 16.0),
            peak_scale=batch.peak_scale)

    def _panel_interleaved(self, batch, pivots, j: int, rows: int,
                           width: int, npiv: int, idx: np.ndarray) -> int:
        """Route one uniform small bucket through the interleaved core."""
        bs = len(idx)
        ctrl = pivots.ctrl
        data = np.empty((rows, width, bs), dtype=batch.dtype)
        for b in range(bs):
            data[:, :, b] = batch.sub(int(idx[b]), j, j, rows, width)
        ipiv, nz_counts, first_bad, n_rep, min_p = interleaved_lu_core(
            data, npiv, thresh=ctrl.thresh[idx], repl=ctrl.repl[idx])
        for b in range(bs):
            i = int(idx[b])
            batch.sub(i, j, j, rows, width)[...] = data[:, :, b]
            pivots.ipiv[i][j:j + npiv] = j + ipiv[:, b]
            if first_bad[b] and pivots.info[i] == 0:
                pivots.info[i] = j + int(first_bad[b])
        ctrl.n_replaced[idx] += n_rep
        ctrl.min_pivot[idx] = np.minimum(ctrl.min_pivot[idx], min_p)
        # Exact flop accounting: an unrecovered pivot breakdown skips its
        # column's scaling and rank-1 update, exactly as in the scalar
        # elimination (a replaced pivot proceeds and counts in full).
        flops = 0
        for c in range(npiv):
            cnt = int(nz_counts[c])
            if cnt and c + 1 < rows:
                flops += cnt * (rows - c - 1)
                if c + 1 < width:
                    flops += 2 * cnt * (rows - c - 1) * (width - c - 1)
        return flops

    def _panel_padded(self, batch, pivots, j: int, idx: np.ndarray,
                      rows: np.ndarray, width: np.ndarray,
                      npiv: np.ndarray, R: int, W: int, P: int) -> int:
        """Mixed-shape row-class group: zero-padded vectorized LU.

        The group lives in one batch-last ``(R, W, bs)`` scratch array
        (the interleaved layout, so every cross-batch operation streams
        over a contiguous axis).  Zero padding is self-protecting: pad
        rows/columns contribute zero to every pivot search, scaling and
        rank-1 update, so each matrix's factors are bitwise those of the
        scalar elimination.  The elimination is evaluated in the deferred
        (left-looking) order — bitwise identical to the right-looking
        rank-1 sequence, but each column is finished in one cache-resident
        pass instead of re-streaming the whole trailing slab per step.

        The group is processed in batch-axis chunks sized to stay
        cache-resident across the whole column loop (matrices are
        independent, so chunking cannot change any value).
        """
        flops = 0
        chunk = max(self.min_bucket, _PANEL_CHUNK_ELEMS // max(R * W, 1))
        for s0 in range(0, len(idx), chunk):
            s1 = min(s0 + chunk, len(idx))
            flops += self._panel_padded_chunk(
                batch, pivots, j, idx[s0:s1], rows[s0:s1], width[s0:s1],
                npiv[s0:s1], R, W, P)
        return flops

    def _panel_padded_chunk(self, batch, pivots, j: int, idx: np.ndarray,
                            rows: np.ndarray, width: np.ndarray,
                            npiv: np.ndarray, R: int, W: int,
                            P: int) -> int:
        bs = len(idx)
        # Column-major group layout (W, R, bs): every per-column slice —
        # pivot search, scaling and all deferred updates — is contiguous.
        data = self._scratch("pad", W * R * bs,
                             batch.dtype).reshape(W, R, bs)
        data.fill(0.0)
        for b in range(bs):
            data[:width[b], :rows[b], b] = batch.sub(
                int(idx[b]), j, j, int(rows[b]), int(width[b])).T
        prod = self._scratch("prod", max(R - 1, 1) * bs, batch.dtype)
        binx = np.arange(bs)
        piv_store = np.empty((P, bs), dtype=np.int64)
        # Local gathers of the breakdown state (threshold, replacement
        # value, info, diagnostics); scattered back after the chunk.
        ctrl = pivots.ctrl
        brk = (ctrl.thresh[idx], ctrl.repl[idx], pivots.info[idx],
               ctrl.n_replaced[idx], ctrl.min_pivot[idx])
        # Per-column flop totals for the common all-pivots-nonzero case,
        # computed in one vectorized shot; the loop falls back to the
        # masked per-column sums only when a zero pivot appears.
        cols = np.arange(P)[:, None]
        r1m = rows[None, :] - cols - 1
        w1m = width[None, :] - cols - 1
        actm = (npiv[None, :] > cols) & (r1m > 0)
        flops_tab = np.where(actm, r1m, 0).sum(axis=1) + \
            2 * np.where(actm & (w1m > 0), r1m * w1m, 0).sum(axis=1)
        flops = 0
        nz_hist = np.empty((P, bs), dtype=bool)
        plain = [False] * P      # step needed no mask: all active, nonzero

        def update(colv, k):
            # One deferred rank-1 column update.  Applying update k after
            # the later row swaps is elementwise identical to the
            # right-looking order: both operand columns carry the same
            # row permutation, so every element receives the exact
            # subtraction sequence of the scalar elimination.
            low = data[k, k + 1:, :]
            u = colv[k]
            if not plain[k]:
                m = nz_hist[k]
                low = np.where(m, low, 0.0)
                u = np.where(m, u, 0.0)
            pv = prod[:(R - k - 1) * bs].reshape(R - k - 1, bs)
            np.multiply(low, u, out=pv)
            np.subtract(colv[k + 1:], pv, out=colv[k + 1:])

        for k0 in range(0, P, _PANEL_KBLOCK):
            k1 = min(k0 + _PANEL_KBLOCK, P)
            for c in range(k0, k1):
                self._panel_pivot_step(
                    batch, j, c, k0, R, rows, width, npiv, data, prod,
                    binx, piv_store, brk, nz_hist, plain, flops_tab,
                    update)
            # Apply the finished block of steps to the trailing columns
            # while its low columns are still cache-resident; each
            # trailing column is streamed once per block instead of once
            # per step.
            for c in range(k1, W):
                colv = data[c]
                for k in range(k0, k1):
                    if k + 1 >= R:
                        break
                    update(colv, k)
        for c in range(P):
            if plain[c]:
                flops += int(flops_tab[c])
            else:
                r1v = rows - c - 1
                m1 = nz_hist[c] & (r1v > 0)
                if m1.any():
                    flops += int(np.sum(r1v[m1]))
                    w1 = width - c - 1
                    m2 = m1 & (w1 > 0)
                    if m2.any():
                        flops += int(2 * np.sum(r1v[m2] * w1[m2]))
        for b in range(bs):
            i = int(idx[b])
            batch.sub(i, j, j, int(rows[b]), int(width[b]))[...] = \
                data[:width[b], :rows[b], b].T
            np_b = int(npiv[b])
            pivots.ipiv[i][j:j + np_b] = piv_store[:np_b, b]
        pivots.info[idx] = brk[2]
        ctrl.n_replaced[idx] = brk[3]
        ctrl.min_pivot[idx] = brk[4]
        return flops

    def _panel_pivot_step(self, batch, j, c, k0, R, rows, width, npiv,
                          data, prod, binx, piv_store, brk, nz_hist,
                          plain, flops_tab, update) -> None:
        """Bring column ``c`` up to date, pivot, swap and scale it."""
        thresh_loc, repl_loc, info_loc, nrep_loc, minp_loc = brk
        colv = data[c]
        for k in range(k0, c):
            if k + 1 >= R:
                break
            update(colv, k)
        act = npiv > c
        act_all = bool(act.all())
        p = np.argmax(np.abs(colv[c:]), axis=0)
        if not act_all:
            p = np.where(act, p, 0)
        pr = c + p
        piv_store[c] = j + pr
        row_c = data[:, c, :].copy()                 # (W, bs)
        row_p = data[:, pr, binx]                    # (W, bs) gather
        if act_all:
            data[:, c, :] = row_p
            data[:, pr, binx] = row_c
        else:
            data[:, c, :] = np.where(act, row_p, row_c)
            data[:, pr, binx] = np.where(act, row_c, row_p)
        piv = colv[c]
        apiv = np.abs(piv)
        if act_all:
            np.minimum(minp_loc, apiv, out=minp_loc)
        else:
            np.minimum(minp_loc, np.where(act, apiv, np.inf), out=minp_loc)
        bad = (apiv < thresh_loc) & act
        if bad.any():
            rep = bad & (repl_loc > 0.0)
            if rep.any():
                # static pivoting: replace, keeping the sign/phase
                scale = np.where(apiv > 0.0, apiv, 1.0)
                sgn = np.where(apiv > 0.0, piv / scale, 1.0)
                piv = np.where(rep, sgn * repl_loc, piv)
                colv[c] = piv
                nrep_loc += rep
            unrec = bad & ~rep
            newly = unrec & (info_loc == 0)
            if newly.any():
                info_loc[newly] = j + c + 1
            nz = act & ~unrec
        else:
            nz = act
        nz_all = bool(nz.all())
        if R - c - 1 > 0:
            # An unrecovered-breakdown column is either all zero below
            # the diagonal (an exactly-zero pivot chosen by magnitude) or
            # excluded from the division by the masked 1.0, so no select
            # temporary is needed and nothing overflows.
            inv = piv if nz_all else np.where(nz, piv, 1.0)
            low = colv[c + 1:]
            np.divide(low, inv, out=low)
        nz_hist[c] = nz
        plain[c] = nz_all

    # ------------------------------------------------------------------
    # rehearsed LASWP
    # ------------------------------------------------------------------
    def _laswp_plan(self, batch, j: int, ib: int, part) -> _LaswpPlan:
        key = ("laswp", j, ib,
               part if isinstance(part, str) else ("win",) + tuple(part),
               batch.dims_key)

        def build() -> _LaswpPlan:
            m_vec, n_vec = batch.m_vec, batch.n_vec
            p = _LaswpPlan()
            p.length = np.maximum(m_vec - j, 0)
            p.npiv = np.maximum(
                np.minimum(ib, np.minimum(m_vec, n_vec) - j), 0)
            if part == "left":
                p.c0 = np.zeros(len(batch), dtype=np.int64)
                p.c1 = np.minimum(j, n_vec)
            elif part == "right":
                p.c0 = np.minimum(j + ib, n_vec)
                p.c1 = n_vec.copy()
            elif isinstance(part, tuple) and len(part) == 2:
                p.c0 = np.minimum(int(part[0]), n_vec)
                p.c1 = np.minimum(int(part[1]), n_vec)
            else:
                raise ValueError(f"invalid part {part!r}")
            p.lmax = int(p.length.max()) if len(batch) else 0
            p.init_elems = int(np.sum(p.length))
            p.rehearse_elems = int(np.sum(p.npiv))
            return p

        return self.cache.get_or_build(key, build)

    def laswp_session(self, batch, pivots, j: int, ib: int, part,
                      chunk_rows: int = 32) -> "_LaswpSession":
        return _LaswpSession(self, batch, pivots, j, ib, part, chunk_rows)

    # ------------------------------------------------------------------
    # pivot application (getrs / multifrontal F12)
    # ------------------------------------------------------------------
    @staticmethod
    def _rehearse_permutation(pivots_list, nrows: int
                              ) -> tuple[np.ndarray, np.ndarray]:
        """Replay every matrix's swap sequence on an index matrix.

        Returns ``(perm, swaps)``: ``perm[i, r]`` is the source row that
        ends up at row ``r`` of matrix ``i`` after its swaps, and
        ``swaps[i]`` the number of off-diagonal pivots (the count the
        naive loop's traffic accounting depends on).
        """
        bs = len(pivots_list)
        klen = np.array([len(pv) for pv in pivots_list], dtype=np.int64)
        kmax = int(klen.max()) if bs else 0
        ip_pad = np.zeros((bs, max(kmax, 1)), dtype=np.int64)
        for i, pv in enumerate(pivots_list):
            ip_pad[i, :len(pv)] = pv
        perm = np.broadcast_to(np.arange(max(nrows, 1), dtype=np.int64),
                               (bs, max(nrows, 1))).copy()
        binx = np.arange(bs)
        for r in range(kmax):
            if r >= perm.shape[1]:
                break
            act = klen > r
            if not act.any():
                continue
            p = np.where(act, ip_pad[:, r], r)
            col_r = perm[:, r].copy()
            col_p = perm[binx, p]
            perm[binx, p] = np.where(act, col_r, col_p)
            perm[:, r] = np.where(act, col_p, col_r)
        valid = np.arange(max(kmax, 1))[None, :] < klen[:, None]
        swaps = np.sum(
            (ip_pad != np.arange(max(kmax, 1))[None, :]) & valid, axis=1)
        return perm, swaps

    def exec_apply_pivots(self, rhs, pivots) -> KernelCost:
        """Bucketed body of the ``irrgetrs:pivots`` launch.

        The rehearsed permutation depends only on the pivot sequences
        and the row count, so it is memoized on the pivots object —
        repeated solves against one set of factors (the getrs analogue
        of the solve plan) rehearse once and replay the gather.
        """
        memo = getattr(pivots, "_rehearsal", None)
        if memo is not None and memo[0] == rhs.max_m:
            _m, perm, swaps = memo
        else:
            perm, swaps = self._rehearse_permutation(pivots.ipiv, rhs.max_m)
            pivots._rehearsal = (rhs.max_m, perm, swaps)
        itemsize = rhs.itemsize
        nbytes = 0
        blocks = 0
        for i in range(len(rhs)):
            n, k = rhs.local_dims(i)
            if n == 0 or k == 0:
                continue
            b = rhs.matrix(i)
            b[...] = b[perm[i, :n], :]
            nbytes += 4 * k * itemsize * int(swaps[i])
            blocks += 1
        return KernelCost(bytes_read=nbytes / 2, bytes_written=nbytes / 2,
                          blocks=max(blocks, 1), kernel_class="swap",
                          memory_ramp=0.3)

    def exec_apply_pivots_f12(self, f12, pivots_list) -> KernelCost:
        """Bucketed body of the multifrontal ``irrlaswp:f12`` launch."""
        perm, _swaps = self._rehearse_permutation(pivots_list, f12.max_m)
        itemsize = f12.itemsize
        nbytes = 0
        blocks = 0
        for i in range(len(f12)):
            s, u = f12.local_dims(i)
            if s == 0 or u == 0:
                continue
            b = f12.arrays[i].data
            b[:s, :] = b[perm[i, :s], :]
            nbytes += 2 * s * u * itemsize
            blocks += 1
        return KernelCost(bytes_read=nbytes / 2, bytes_written=nbytes / 2,
                          blocks=max(blocks, 1), kernel_class="swap",
                          memory_ramp=0.4)

    # ------------------------------------------------------------------
    # multifrontal solve phase (plan-driven level kernels)
    # ------------------------------------------------------------------
    # ``lp`` below is a LevelSolvePlan from repro.sparse.numeric.solve_plan
    # (duck-typed here to keep the dependency one-directional);
    # ``stacks`` the per-bucket 3-D DeviceArray factor stacks.  Costs
    # reproduce the reference closures in gpu_solve bit-for-bit: the
    # accumulators are integer-valued, so the precomputed sums equal the
    # naive loop's sequential ``+=`` in IEEE double.

    def exec_solve_pivots(self, x, lp, nrhs: int,
                          itemsize: int) -> KernelCost:
        """Planned body of the ``solve:pivots`` launch.

        The per-front swap loops were rehearsed at plan-build time into
        one global ``(dst, src)`` row gather; the fancy-index read
        completes before any write, so permutation cycles resolve to the
        same rows as the sequential swaps they replay.
        """
        if len(lp.piv_dst):
            x[lp.piv_dst, :] = x[lp.piv_src, :]
        nbytes = 4.0 * nrhs * itemsize * lp.swaps_total
        return KernelCost(bytes_read=nbytes / 2, bytes_written=nbytes / 2,
                          blocks=max(lp.nfronts, 1),
                          kernel_class="swap", memory_ramp=0.3)

    def exec_solve_scatter(self, x, lp, stacks, nrhs: int,
                           itemsize: int) -> KernelCost:
        """Planned body of the ``solve:scatter`` launch (forward updates).

        Every bucket's ``f21 @ y`` products are computed stacked into a
        contiguous delta buffer first — safe, because same-level
        separators never appear in same-level update sets, so no product
        reads a row the subtraction writes.  The conflict-free rounds
        then drain the buffer with one vectorized subtract each, hitting
        every row in the reference's per-front order.
        """
        total = len(lp.upd_rows)
        delta = self._scratch("solve_delta", total * nrhs,
                              x.dtype).reshape(total, nrhs)
        for b, stack in zip(lp.buckets, stacks):
            bs = len(b.fids)
            blocks3 = stack.data
            # The (u=1, nrhs=1) product is the inner-product shape whose
            # 2-D summation order differs from stacked matmul (the GEMM
            # bucketing rule); it and sub-MIN_BUCKET buckets stay 2-D.
            if bs >= self.min_bucket and not (b.u == 1 and nrhs == 1):
                y = x[b.sep_mat, :]
                prod = np.matmul(blocks3, y)
                delta[b.out_pos, :] = prod.reshape(bs * b.u, nrhs)
            else:
                for j in range(bs):
                    s0 = int(b.sep_start[j])
                    g0 = int(b.seg_start[j])
                    delta[g0:g0 + b.u, :] = \
                        blocks3[j] @ x[s0:s0 + b.s, :]
        for rows, pos in lp.rounds:
            x[rows, :] -= delta[pos, :]
        flops = 2.0 * lp.sum_us * nrhs
        nbytes = float(lp.sum_us + 2 * lp.sum_u * nrhs) * itemsize
        return KernelCost(flops=flops, bytes_read=nbytes * 0.7,
                          bytes_written=nbytes * 0.3,
                          blocks=max(lp.nfronts, 1),
                          kernel_class="gemm_irr", memory_ramp=0.5)

    def exec_solve_gather(self, x, lp, stacks, nrhs: int,
                          itemsize: int) -> KernelCost:
        """Planned body of the ``solve:gather`` launch (backward updates).

        Reads ancestor rows (finished by earlier backward levels) and
        writes this level's disjoint separator ranges, so the bucket
        subtracts are conflict-free by construction.
        """
        for b, stack in zip(lp.buckets, stacks):
            bs = len(b.fids)
            blocks3 = stack.data
            if bs >= self.min_bucket and not (b.s == 1 and nrhs == 1):
                xu = x[b.upd_mat, :]
                prod = np.matmul(blocks3, xu)
                x[b.sep_flat, :] -= prod.reshape(bs * b.s, nrhs)
            else:
                for j in range(bs):
                    s0 = int(b.sep_start[j])
                    g0 = int(b.seg_start[j])
                    xu = x[lp.upd_rows[g0:g0 + b.u], :]
                    x[s0:s0 + b.s, :] -= blocks3[j] @ xu
        flops = 2.0 * lp.sum_us * nrhs
        nbytes = float(lp.sum_us + 2 * lp.sum_s_active * nrhs) * itemsize
        return KernelCost(flops=flops, bytes_read=nbytes * 0.7,
                          bytes_written=nbytes * 0.3,
                          blocks=max(lp.nfronts, 1),
                          kernel_class="gemm_irr", memory_ramp=0.5)


class _LaswpSession:
    """Shared state of one rehearsed-LASWP call's three launches.

    The auxiliary index columns of every matrix live in one padded
    ``(batch, Lmax)`` matrix so the rehearsal — the naive path's
    O(batch × npiv) Python hotspot — becomes ``ib`` vectorized row-swap
    steps across the whole batch.
    """

    def __init__(self, engine: BatchEngine, batch, pivots, j: int, ib: int,
                 part, chunk_rows: int = 32) -> None:
        self.plan = engine._laswp_plan(batch, j, ib, part)
        self.batch = batch
        self.pivots = pivots
        self.j = j
        self.ib = ib
        self.chunk_rows = chunk_rows
        self.aux: np.ndarray | None = None

    def init(self) -> KernelCost:
        plan = self.plan
        self.aux = self.j + np.broadcast_to(
            np.arange(max(plan.lmax, 1), dtype=np.int64),
            (len(self.batch), max(plan.lmax, 1))).copy()
        return KernelCost(bytes_written=float(plan.init_elems) * 8,
                          blocks=max(len(self.batch), 1),
                          threads_per_block=256, kernel_class="swap")

    def rehearse(self) -> KernelCost:
        plan = self.plan
        bs = len(self.batch)
        aux = self.aux
        npiv = plan.npiv
        ip_pad = np.zeros((bs, max(self.ib, 1)), dtype=np.int64)
        for i in range(bs):
            np_i = int(npiv[i])
            if np_i:
                ip_pad[i, :np_i] = self.pivots.ipiv[i][self.j:self.j + np_i]
        binx = np.arange(bs)
        for r in range(self.ib):
            if r >= plan.lmax:
                break
            act = npiv > r
            if not act.any():
                continue
            p = np.where(act, ip_pad[:, r] - self.j, r)
            col_r = aux[:, r].copy()
            col_p = aux[binx, p]
            aux[binx, p] = np.where(act, col_r, col_p)
            aux[:, r] = np.where(act, col_p, col_r)
        return KernelCost(bytes_read=float(plan.rehearse_elems) * 16,
                          bytes_written=float(plan.rehearse_elems) * 16,
                          blocks=max(bs, 1), threads_per_block=64,
                          kernel_class="swap")

    def gather(self) -> KernelCost:
        plan = self.plan
        batch = self.batch
        aux = self.aux
        itemsize = batch.itemsize
        j = self.j
        lmax = max(plan.lmax, 1)
        ident = j + np.arange(lmax, dtype=np.int64)
        valid = np.arange(lmax)[None, :] < plan.length[:, None]
        touch = ((np.arange(lmax)[None, :] < plan.npiv[:, None]) |
                 ((aux != ident[None, :]) & valid))
        nbytes = 0
        blocks = 0
        for i in range(len(batch)):
            np_i = int(plan.npiv[i])
            if np_i == 0:
                continue
            c0, c1 = int(plan.c0[i]), int(plan.c1[i])
            width = c1 - c0
            if width <= 0:
                continue
            a = batch.arrays[i].data
            rel = np.nonzero(touch[i, :int(plan.length[i])])[0]
            a[rel + j, c0:c1] = a[aux[i, rel], c0:c1]
            nbytes += 2 * len(rel) * width * itemsize
            blocks += max(1, -(-width // 32))
        return KernelCost(bytes_read=float(nbytes), bytes_written=float(nbytes),
                          blocks=max(blocks, 1), threads_per_block=256,
                          shared_mem_per_block=min(
                              self.chunk_rows * 32 * 8,
                              batch.device.spec.max_shared_per_block),
                          kernel_class="swap", memory_ramp=0.85)


def _apply_op2(a: np.ndarray, trans: str) -> np.ndarray:
    if trans == "N":
        return a
    return a.conj().T if trans == "C" else a.T


def _apply_op3(a: np.ndarray, trans: str) -> np.ndarray:
    """Per-matrix ``op`` on a stacked ``(bucket, rows, cols)`` array."""
    if trans == "N":
        return a
    swapped = a.transpose(0, 2, 1)
    return swapped.conj() if trans == "C" else swapped
