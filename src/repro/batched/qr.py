"""irrQR — Householder QR on a nonuniform batch.

The paper's conclusion singles QR out as the natural next decomposition
for the expanded interface: "the proposed interface and the DCWI layer
would work seamlessly for other decompositions, such as the QR
factorization, which can be used in Sparse QR algorithms."  This module
is that extension, built from the same ingredients as irrLU-GPU:

* ``irrGEQR2`` — a fused panel kernel computing the Householder QR of
  every matrix's current panel in shared memory (reflectors stored below
  the diagonal, R on/above, ``tau`` per column);
* ``irrLARFT`` — forms each panel's compact-WY ``T`` factor;
* ``irrLARFB`` — applies the block reflector ``(I − V·T·Vᵀ)ᵀ`` to the
  trailing columns, composed of two small triangular-multiply kernels
  plus two :func:`~repro.batched.gemm.irr_gemm` calls on offset
  submatrices — no pointer arithmetic, exactly like the LU driver.

Workspaces (the ``T`` factors and the ``W = VᵀC`` buffer) are allocated
*once* with fixed local dimensions and revisited with moving offsets, so
the factorization remains fully asynchronous — the property §IV-D credits
the interface for.

The result is LAPACK ``geqrf``-compatible per matrix: packed ``R`` and
reflectors plus a ``tau`` vector.
"""

from __future__ import annotations

import numpy as np

from ..device.kernel import KernelCost, gemm_compute_ramp
from ..device.simulator import Device
from .gemm import irr_gemm
from .interface import IrrBatch

__all__ = ["irr_geqrf", "QrTaus", "qr_reconstruct", "apply_q",
           "qr_least_squares", "geqrf_flops", "DEFAULT_QR_PANEL"]

DEFAULT_QR_PANEL = 32


class QrTaus:
    """Per-matrix Householder scalar vectors (``tau``)."""

    def __init__(self, batch: IrrBatch):
        dt = batch.dtype if np.issubdtype(batch.dtype,
                                          np.complexfloating) \
            else np.float64
        self.tau = [np.zeros(min(int(m), int(n)), dtype=dt)
                    for m, n in zip(batch.m_vec, batch.n_vec)]

    def __len__(self) -> int:
        return len(self.tau)

    def __getitem__(self, i: int) -> np.ndarray:
        return self.tau[i]


def geqrf_flops(m: int, n: int) -> float:
    """Householder QR flop count (leading terms).

    ``Σ_c 4(m−c)(n−c)`` over the ``k = min(m, n)`` reflector columns —
    ``2mn² − 2n³/3`` in the familiar tall-matrix (m ≥ n) form.
    """
    m, n = float(m), float(n)
    k = min(m, n)
    return 4.0 * m * n * k - 2.0 * (m + n) * k ** 2 + 4.0 * k ** 3 / 3.0


def _panel_extents(batch: IrrBatch, i: int, j: int, ib: int):
    m, n = batch.local_dims(i)
    k = min(m, n)
    rows = max(0, m - j)
    width = max(0, min(j + ib, n) - j)
    nref = max(0, min(ib, k - j))
    return rows, width, nref


def _householder_panel(a: np.ndarray, nref: int, tau_out: np.ndarray,
                       j: int) -> float:
    """In-place Householder QR of one panel block; returns flops.

    Real path: the classical `dlarfg` convention.  Complex path: the
    `zlarfg`/`zgeqr2` convention — ``H = I − τ·v·vᴴ`` with real β, and
    the panel update applies ``Hᴴ`` (i.e. uses ``conj(τ)``).
    """
    rows, width = a.shape
    complex_path = np.issubdtype(a.dtype, np.complexfloating)
    flops = 0.0
    cf = 4.0 if complex_path else 1.0
    for c in range(nref):
        alpha = a[c, c]
        xnorm = np.linalg.norm(a[c + 1:, c]) if c + 1 < rows else 0.0
        if xnorm == 0.0 and (not complex_path or alpha.imag == 0.0):
            tau_out[j + c] = 0.0
            continue
        if complex_path:
            anorm = np.sqrt(alpha.real ** 2 + alpha.imag ** 2 +
                            xnorm ** 2)
            beta = -anorm if alpha.real >= 0 else anorm
            tau_out[j + c] = (beta - alpha) / beta
        else:
            beta = -np.sign(alpha) * np.hypot(alpha, xnorm)
            if beta == 0.0:
                beta = -np.hypot(alpha, xnorm)
            tau_out[j + c] = (beta - alpha) / beta
        a[c + 1:, c] /= (alpha - beta)
        a[c, c] = beta
        flops += cf * 3.0 * (rows - c)
        if c + 1 < width:
            v = np.empty(rows - c, dtype=a.dtype)
            v[0] = 1.0
            v[1:] = a[c + 1:, c]
            # apply H^H to the remaining panel columns
            tau_eff = np.conj(tau_out[j + c]) if complex_path \
                else tau_out[j + c]
            w = v.conj() @ a[c:, c + 1:]
            a[c:, c + 1:] -= tau_eff * np.outer(v, w)
            flops += cf * 4.0 * (rows - c) * (width - c - 1)
    return flops


def _geqr2_fused(device: Device, batch: IrrBatch, taus: QrTaus,
                 j: int, ib: int, stream) -> None:
    def kernel() -> KernelCost:
        flops = 0.0
        nbytes = 0.0
        blocks = 0
        for i in range(len(batch)):
            rows, width, nref = _panel_extents(batch, i, j, ib)
            if nref == 0:
                continue
            a = batch.sub(i, j, j, rows, width)
            flops += _householder_panel(a, nref, taus.tau[i], j)
            nbytes += rows * width * batch.itemsize
            blocks += 1
        smem = min(ib * 2048 * batch.itemsize,
                   device.spec.max_shared_per_block)
        return KernelCost(flops=flops, bytes_read=nbytes,
                          bytes_written=nbytes, blocks=max(blocks, 1),
                          threads_per_block=256, shared_mem_per_block=smem,
                          kernel_class="getf2",
                          compute_ramp=min(1.0, ib / 16.0),
                          peak_scale=batch.peak_scale)

    device.launch("irrgeqr2", kernel, stream=stream)


def _larft(device: Device, batch: IrrBatch, T: IrrBatch, taus: QrTaus,
           j: int, ib: int, stream) -> None:
    """T[i] ← compact-WY triangular factor of panel i's reflectors."""

    def kernel() -> KernelCost:
        flops = 0.0
        blocks = 0
        for i in range(len(batch)):
            rows, _w, nref = _panel_extents(batch, i, j, ib)
            if nref == 0:
                continue
            v = np.tril(batch.sub(i, j, j, rows, nref), -1)
            np.fill_diagonal(v, 1.0)
            t = T.arrays[i].data
            t[:] = 0.0
            for c in range(nref):
                tau = taus.tau[i][j + c]
                t[c, c] = tau
                if c > 0 and tau != 0.0:
                    # t[:c, c] = -tau * T[:c, :c] @ (V[:, :c]^H v_c)
                    w = v[:, :c].conj().T @ v[:, c]
                    t[:c, c] = -tau * (t[:c, :c] @ w)
                    flops += 2.0 * rows * c + 2.0 * c * c
            blocks += 1
        return KernelCost(flops=flops, blocks=max(blocks, 1),
                          threads_per_block=128, kernel_class="trsm_irr",
                          compute_ramp=gemm_compute_ramp(ib, ib, ib),
                          peak_scale=batch.peak_scale)

    device.launch("irrlarft", kernel, stream=stream)


def _trapezoid_apply(device: Device, batch: IrrBatch, T: IrrBatch,
                     W: IrrBatch, j: int, ib: int, phase: str,
                     stream) -> None:
    """The LARFB pieces that touch triangles (custom kernels).

    ``phase="head"``: ``W ← V₁ᵀ·C₁`` (unit-lower-triangular multiply into
    the workspace).  ``phase="t"``: ``W ← Tᵀ·W``.  ``phase="tail"``:
    ``C₁ ← C₁ − V₁·W``.
    """

    def kernel() -> KernelCost:
        flops = 0.0
        nbytes = 0.0
        blocks = 0
        for i in range(len(batch)):
            _rows, _w, nref = _panel_extents(batch, i, j, ib)
            n_i = int(batch.n_vec[i])
            n2 = max(0, n_i - j - ib)
            if nref == 0 or n2 == 0:
                continue
            c1 = batch.sub(i, j, j + ib, nref, n2)
            w = W.sub(i, 0, j + ib, nref, n2)
            if phase == "head":
                v1 = np.tril(batch.sub(i, j, j, nref, nref), -1) + \
                    np.eye(nref, dtype=batch.dtype.type)
                w[...] = v1.conj().T @ c1
            elif phase == "t":
                t = T.arrays[i].data[:nref, :nref]
                w[...] = t.conj().T @ w
            else:
                v1 = np.tril(batch.sub(i, j, j, nref, nref), -1) + \
                    np.eye(nref, dtype=batch.dtype.type)
                c1 -= v1 @ w
            flops += 2.0 * nref * nref * n2
            nbytes += 2.0 * nref * n2 * batch.itemsize
            blocks += max(1, -(-n2 // 32))
        return KernelCost(flops=flops, bytes_read=nbytes / 2,
                          bytes_written=nbytes / 2, blocks=max(blocks, 1),
                          threads_per_block=128, kernel_class="trsm_irr",
                          compute_ramp=gemm_compute_ramp(ib, ib, ib),
                          peak_scale=batch.peak_scale)

    device.launch(f"irrlarfb:{phase}", kernel, stream=stream)


def irr_geqrf(device: Device, batch: IrrBatch, *,
              nb: int = DEFAULT_QR_PANEL, stream=None) -> QrTaus:
    """Blocked Householder QR of every matrix in an irregular batch.

    Overwrites each matrix with its packed QR (R on/above the diagonal,
    reflector vectors below) and returns the per-matrix ``tau`` vectors —
    LAPACK ``geqrf`` semantics, sizes completely arbitrary.
    """
    if nb < 1:
        raise ValueError("panel width must be positive")
    taus = QrTaus(batch)
    kmax = batch.max_min_mn
    if kmax == 0 or len(batch) == 0:
        return taus
    bs = len(batch)
    m_req, n_req = batch.max_m, batch.max_n

    # Fixed-local-dimension workspaces revisited with moving offsets.
    T = IrrBatch.zeros(device, [nb] * bs, [nb] * bs, dtype=batch.dtype)
    W = IrrBatch.zeros(device, [nb] * bs, batch.n_vec, dtype=batch.dtype)

    for j in range(0, kmax, nb):
        ib = min(nb, kmax - j)
        _geqr2_fused(device, batch, taus, j, ib, stream)
        if n_req > j + ib:
            _larft(device, batch, T, taus, j, ib, stream)
            # W <- V1^T C1  (unit-lower triangle)
            _trapezoid_apply(device, batch, T, W, j, ib, "head", stream)
            # W += V2^H C2  (V2^T in the real case)
            opv = "C" if np.issubdtype(batch.dtype,
                                       np.complexfloating) else "T"
            if m_req > j + ib:
                irr_gemm(device, opv, "N", ib, n_req - j - ib,
                         m_req - j - ib, 1.0, batch, (j + ib, j),
                         batch, (j + ib, j + ib), 1.0, W, (0, j + ib),
                         stream=stream, name="irrgemm:qr")
            # W <- T^T W
            _trapezoid_apply(device, batch, T, W, j, ib, "t", stream)
            # C2 -= V2 W
            if m_req > j + ib:
                irr_gemm(device, "N", "N", m_req - j - ib, n_req - j - ib,
                         ib, -1.0, batch, (j + ib, j), W, (0, j + ib),
                         1.0, batch, (j + ib, j + ib), stream=stream,
                         name="irrgemm:qr")
            # C1 -= V1 W
            _trapezoid_apply(device, batch, T, W, j, ib, "tail", stream)

    T.free()
    W.free()
    return taus


# ----------------------------------------------------------------------
# host-side utilities (verification / least squares)
# ----------------------------------------------------------------------

def apply_q(factored: np.ndarray, tau: np.ndarray, x: np.ndarray,
            trans: bool = False) -> np.ndarray:
    """Apply ``Q`` (or ``Qᴴ`` with ``trans=True``) from packed QR factors.

    ``Q = H₁·H₂···H_k`` with ``H = I − τ·v·vᴴ`` (the LAPACK convention;
    for real data ``vᴴ = vᵀ`` and ``Qᴴ = Qᵀ``).
    """
    m = factored.shape[0]
    k = len(tau)
    dtype = np.result_type(factored.dtype, np.asarray(x).dtype,
                           tau.dtype if hasattr(tau, "dtype")
                           else np.float64)
    y = np.array(x, dtype=dtype, copy=True)
    squeeze = y.ndim == 1
    if squeeze:
        y = y[:, None]
    order = range(k) if trans else range(k - 1, -1, -1)
    for c in order:
        if tau[c] == 0.0:
            continue
        v = np.zeros(m, dtype=dtype)
        v[c] = 1.0
        v[c + 1:] = factored[c + 1:, c]
        t = np.conj(tau[c]) if trans else tau[c]
        y -= t * np.outer(v, v.conj() @ y)
    return y[:, 0] if squeeze else y


def qr_reconstruct(factored: np.ndarray, tau: np.ndarray) -> np.ndarray:
    """Rebuild ``A = Q·R`` from packed QR factors (test utility)."""
    m, n = factored.shape
    k = min(m, n)
    r = np.triu(factored[:k, :])
    qr = np.vstack([r, np.zeros((m - k, n), dtype=factored.dtype)])
    return apply_q(factored, tau, qr, trans=False)


def qr_least_squares(factored: np.ndarray, tau: np.ndarray,
                     b: np.ndarray) -> np.ndarray:
    """Solve the least-squares problem ``min ‖A·x − b‖₂`` (m ≥ n)."""
    import scipy.linalg as sla

    m, n = factored.shape
    if m < n:
        raise ValueError("least squares needs m >= n")
    qtb = apply_q(factored, tau, b, trans=True)
    return sla.solve_triangular(factored[:n, :n], qtb[:n],
                                lower=False, check_finite=False)
