"""irrLASWP — full-width row interchanges (§IV-F).

After the panel factorization at step ``j``, the pivoting row swaps must
be propagated to the matrix columns *outside* the panel: the left part
(columns ``[0, j)``) and the right part (columns ``[j+ib, n_i)``).  The
per-matrix widths ``w_l`` and ``w_r`` differ across the batch and are
inferred by DCWI from the local dimensions.

Two implementations with identical numerics:

* :func:`looped_laswp` — the reference: one ``irrSWAP`` launch per pivot
  row.  Row accesses in a column-major layout are strided, so each launch
  moves little data at poor bandwidth efficiency — but a swap whose pivot
  is already on the diagonal is skipped entirely, which is why the paper
  notes this variant can win in the (rare) mostly-diagonal-pivot corner
  case.

* :func:`rehearsed_laswp` — the paper's optimization: (1) initialize a
  one-column auxiliary vector ``0, 1, …``, (2) *rehearse* the swap
  sequence on it (cheap: single column), (3) gather the affected rows
  through shared-memory-sized chunks and write them back contiguously.
  Three launches total, high bandwidth efficiency, but the cost is
  *independent of the pivot pattern* (rows that stayed in place are moved
  anyway).
"""

from __future__ import annotations

import numpy as np

from ..device.kernel import KernelCost
from ..device.simulator import Device
from .interface import IrrBatch
from .panel import PanelPivots

__all__ = ["looped_laswp", "rehearsed_laswp", "irr_laswp"]

_ITEM = 8


def _pivot_count(batch: IrrBatch, i: int, j: int, ib: int) -> int:
    m, n = batch.local_dims(i)
    return max(0, min(ib, min(m, n) - j))


def _col_range(batch: IrrBatch, i: int, j: int, ib: int,
               part) -> tuple[int, int]:
    """DCWI: the (start, stop) column range of ``part`` for matrix ``i``.

    ``part`` is ``"left"`` (columns before the panel), ``"right"``
    (columns after it), or an explicit ``(c0, c1)`` window — the latter is
    what the recursive panel factorization uses to confine swaps to the
    other half of its own panel.
    """
    _m, n = batch.local_dims(i)
    if part == "left":
        return 0, min(j, n)
    if part == "right":
        return min(j + ib, n), n
    if isinstance(part, tuple) and len(part) == 2:
        c0, c1 = part
        return min(int(c0), n), min(int(c1), n)
    raise ValueError(f"invalid part {part!r}")


def _part_label(part) -> str:
    return part if isinstance(part, str) else f"win{part[0]}:{part[1]}"


def looped_laswp(device: Device, batch: IrrBatch, pivots: PanelPivots,
                 j: int, ib: int, part: str, *, stream=None,
                 wait_events=None, name: str = "irrswap") -> None:
    """Reference: one strided-row irrSWAP launch per pivot row."""
    for r in range(ib):
        def kernel(r=r) -> KernelCost:
            nbytes = 0.0
            blocks = 0
            for i in range(len(batch)):
                if r >= _pivot_count(batch, i, j, ib):
                    continue
                p = int(pivots.ipiv[i][j + r])
                if p == j + r:
                    continue  # pivot on the diagonal: free for this variant
                c0, c1 = _col_range(batch, i, j, ib, part)
                if c1 <= c0:
                    continue
                a = batch.arrays[i].data
                a[[j + r, p], c0:c1] = a[[p, j + r], c0:c1]
                nbytes += 2 * (c1 - c0) * batch.itemsize
                blocks += 1
            # Strided row access in a column-major layout: each element
            # touches a separate cache line, hence the low memory ramp.
            return KernelCost(bytes_read=nbytes, bytes_written=nbytes,
                              blocks=max(blocks, 1), threads_per_block=128,
                              kernel_class="swap", memory_ramp=0.08)

        device.launch(f"{name}:{_part_label(part)}", kernel, stream=stream,
                      wait_events=wait_events if r == 0 else None)


def rehearsed_laswp(device: Device, batch: IrrBatch, pivots: PanelPivots,
                    j: int, ib: int, part: str, *, stream=None,
                    wait_events=None, chunk_rows: int = 32,
                    name: str = "irrlaswp", engine=None) -> None:
    """Rehearse swaps on an index column, then move rows in chunks.

    With a bucketed ``engine`` the three launches keep their names and
    costs, but the auxiliary columns live in one padded matrix and the
    rehearsal runs as ``ib`` vectorized swap steps across the batch
    instead of a per-matrix per-pivot Python loop.
    """
    from .engine import resolve_engine  # deferred: engine imports panel
    eng = resolve_engine(engine)
    if eng is not None:
        sess = eng.laswp_session(batch, pivots, j, ib, part, chunk_rows)
        label = _part_label(part)
        device.launch(f"{name}:{label}:init", sess.init, stream=stream,
                      wait_events=wait_events)
        device.launch(f"{name}:{label}:rehearse", sess.rehearse,
                      stream=stream)
        device.launch(f"{name}:{label}:gather", sess.gather, stream=stream)
        return

    bs = len(batch)
    # The auxiliary one-column matrices: aux[i][r] = source row that must
    # end up at row r.  Rehearsal only involves rows >= j that the current
    # pivot window can touch.
    aux: list[np.ndarray] = [np.empty(0, dtype=np.int64)] * bs

    def init_kernel() -> KernelCost:
        nbytes = 0.0
        blocks = 0
        for i in range(bs):
            m, _n = batch.local_dims(i)
            aux[i] = np.arange(j, m, dtype=np.int64)
            nbytes += max(0, m - j) * _ITEM
            blocks += 1
        return KernelCost(bytes_written=nbytes, blocks=max(blocks, 1),
                          threads_per_block=256, kernel_class="swap")

    def rehearse_kernel() -> KernelCost:
        nbytes = 0.0
        blocks = 0
        for i in range(bs):
            npiv = _pivot_count(batch, i, j, ib)
            a = aux[i]
            for r in range(npiv):
                p = int(pivots.ipiv[i][j + r]) - j
                if p != r:
                    a[r], a[p] = a[p], a[r]
            nbytes += 2 * npiv * _ITEM
            blocks += 1
        return KernelCost(bytes_read=nbytes, bytes_written=nbytes,
                          blocks=max(blocks, 1), threads_per_block=64,
                          kernel_class="swap")

    def gather_kernel() -> KernelCost:
        nbytes = 0.0
        blocks = 0
        for i in range(bs):
            npiv = _pivot_count(batch, i, j, ib)
            if npiv == 0:
                continue
            c0, c1 = _col_range(batch, i, j, ib, part)
            width = c1 - c0
            if width <= 0:
                continue
            a = batch.arrays[i].data
            # Rows the rehearsal says participate: the pivot window plus
            # any row a pivot displaced (aux entry differs from identity).
            # The cost model charges the whole participating set
            # regardless of how many actually moved — the
            # pattern-independence the paper describes.
            rel = np.arange(len(aux[i]), dtype=np.int64)
            moved = np.nonzero(aux[i] != rel + j)[0]
            touched = np.unique(np.concatenate(
                [np.arange(npiv, dtype=np.int64), moved]))
            dest_rows = touched + j
            src_rows = aux[i][touched]
            gathered = a[src_rows, c0:c1].copy()
            # Chunked write-back: contiguous blocks via shared memory.
            for s in range(0, len(dest_rows), chunk_rows):
                e = min(s + chunk_rows, len(dest_rows))
                a[dest_rows[s:e], c0:c1] = gathered[s:e]
            nbytes += 2 * len(dest_rows) * width * batch.itemsize
            blocks += max(1, -(-width // 32))
        return KernelCost(bytes_read=nbytes, bytes_written=nbytes,
                          blocks=max(blocks, 1), threads_per_block=256,
                          shared_mem_per_block=min(
                              chunk_rows * 32 * _ITEM,
                              device.spec.max_shared_per_block),
                          kernel_class="swap", memory_ramp=0.85)

    label = _part_label(part)
    device.launch(f"{name}:{label}:init", init_kernel, stream=stream,
                  wait_events=wait_events)
    device.launch(f"{name}:{label}:rehearse", rehearse_kernel, stream=stream)
    device.launch(f"{name}:{label}:gather", gather_kernel, stream=stream)


def irr_laswp(device: Device, batch: IrrBatch, pivots: PanelPivots,
              j: int, ib: int, part: str, *, variant: str = "rehearsed",
              stream=None, wait_events=None, engine=None) -> None:
    """Dispatch to the selected row-interchange implementation.

    ``engine`` only affects the rehearsed variant; the looped variant is
    a per-pivot launch sequence by definition and always runs naive.
    """
    if variant == "rehearsed":
        rehearsed_laswp(device, batch, pivots, j, ib, part, stream=stream,
                        wait_events=wait_events, engine=engine)
    elif variant == "looped":
        looped_laswp(device, batch, pivots, j, ib, part, stream=stream,
                     wait_events=wait_events)
    else:
        raise ValueError(f"unknown laswp variant {variant!r}")
